#!/bin/sh
# verify.sh — the repo's full verification ladder in one shot.
#
#   tier 0: go vet ./...
#   tier 1: go build ./... && go test ./...          (ROADMAP.md tier-1)
#   tier 2: go test -race <concurrent packages>      (ROADMAP.md tier-2)
#
# Tier 2 runs the packages with real concurrency under the race
# detector: the ball engine's shared caches, the suite fan-out, the
# pipeline's DAG scheduler, the result store, and the observability
# layer's concurrent span/counter attachment
# (obs.TestConcurrentSpansAndCounters).
set -eu

echo "== tier 0: go vet =="
go vet ./...

echo "== tier 1: build + full test suite =="
go build ./...
go test ./...

echo "== tier 2: race detector on concurrent packages =="
go test -race ./internal/core ./internal/ball ./internal/experiments \
    ./internal/cache ./internal/obs

echo "verify.sh: all tiers passed"
