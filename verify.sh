#!/bin/sh
# verify.sh — the repo's full verification ladder in one shot.
#
#   tier 0: gofmt -l cleanliness + go vet ./...
#   tier 1: go build ./... && go test ./...          (ROADMAP.md tier-1)
#   tier 2: go test -race <concurrent packages>      (ROADMAP.md tier-2)
#   endpoint smoke: live /metrics + /debug/progress mid-run
#   serve smoke: topocmpd answers, dedups and observes end to end
#   bench smoke: one iteration of the kernel benchmarks
#   bench sentinel: benchdiff against the committed baselines
#
# Tier 2 runs the packages with real concurrency under the race
# detector: the ball engine's shared caches and batched distance path
# (ball.TestMSBFSRaceShort, ball.TestWideMSBFSRaceShort for multi-word
# strips), the suite fan-out, the pipeline's DAG scheduler, the result
# store, the observability layer's concurrent span/counter attachment
# and background time-series sampler (obs.TestConcurrentSpansAndCounters,
# obs.TestSamplerRaceShort), the pooled per-worker cut/flow
# kernels (partition.TestResilienceRaceShort,
# flow.TestSurfaceMaxFlowRaceShort), the pooled Brandes/distortion
# workspaces (metrics.TestBrandesRaceShort), the sigma-batched
# link-value sweeps leasing MSBFS workspaces from the shared pool
# (hierarchy.TestLinkValueRaceShort), and the serving layer's singleflight
# dedup, sweep coalescer and admission semaphore under mixed concurrent
# traffic at P=4 (serve.TestServeRaceShort).
set -eu

echo "== tier 0: gofmt cleanliness =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:"
    echo "$unformatted"
    exit 1
fi

echo "== tier 0: go vet =="
go vet ./...

echo "== tier 1: build + full test suite =="
go build ./...
go test ./...

echo "== tier 2: race detector on concurrent packages =="
# Race instrumentation on a single core pushes the experiments package
# (full metric suites per figure) well past go test's default 10m
# per-package timeout; give the tier an explicit ceiling instead.
go test -race -timeout 45m ./internal/core ./internal/ball ./internal/experiments \
    ./internal/cache ./internal/obs ./internal/partition ./internal/flow \
    ./internal/metrics ./internal/hierarchy ./internal/serve

echo "== scale smoke: 1M-node streamed build + sampled expansion =="
# Builds a million-node PLRG through the streamed CSR path, checks the
# >= 4x build-overhead advantage over the map builder, and runs a sampled
# expansion with confidence bounds inside an explicit time/heap budget.
TOPOCMP_SCALE_SMOKE=1 go test -run '^TestScaleSmoke$' -timeout 10m .

echo "== endpoint smoke: /metrics + /debug/progress serve mid-run =="
# Builds the real reproduce binary, starts a -quick run with
# -http 127.0.0.1:0, and asserts the live plane answers while the
# pipeline is still executing: Prometheus text with histogram buckets,
# the progress DAG with a running stage, and /debug/pprof/.
TOPOCMP_ENDPOINT_SMOKE=1 go test -run '^TestEndpointSmoke$' -timeout 10m .

echo "== serve smoke: topocmpd answers, dedups and observes mid-run =="
# Builds the real topocmpd daemon, starts it on a kernel-chosen port, and
# asserts the serving layer end to end: a suite query answers, a duplicate
# fired while the first is in flight is served from the same execution
# (serve_dedup_hits_total moves), and /metrics + /debug/progress serve
# mid-run.
TOPOCMP_SERVE_SMOKE=1 go test -run '^TestServeSmoke$' -timeout 10m .

echo "== bench smoke: kernel benchmarks compile and run =="
# The root-package benchmarks rewrite their BENCH_*.json baselines as they
# run, so snapshot the committed baselines first — the sentinel below must
# compare fresh numbers against the tree's state, not against themselves.
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cp BENCH_*.json "$workdir"
bench_out="$workdir/bench.out"
go test -run '^$' -bench 'CutSize|SurfaceMaxFlow|ResilienceMesh' \
    -benchtime 1x ./internal/partition ./internal/metrics > "$bench_out"
go test -run '^$' -bench 'BenchmarkMSBFS|BenchmarkWideMSBFS|BenchmarkBrandes|BenchmarkLinkValues|BenchmarkServe' \
    -benchtime 1x . >> "$bench_out"
# Scale benchmarks refresh BENCH_scale.json (map-vs-streamed peak memory
# and the size-vs-time/RSS trajectory; the full-RL pipeline row is skipped
# here to keep the smoke fast — run the full Scale suite to update it).
go test -run '^$' -bench 'BenchmarkScaleBuild|BenchmarkScaleTrajectory' \
    -benchtime 1x . >> "$bench_out"
cat "$bench_out"

echo "== bench sentinel: compare against committed baselines =="
# One -benchtime 1x iteration is noisy, so the default tolerances are
# loose (4x time, 1.5x + 64 allocs); the sentinel catches accidental
# order-of-magnitude regressions, not drift.
go run ./cmd/benchdiff -baseline "$workdir/BENCH_*.json" "$bench_out"

echo "verify.sh: all tiers passed"
