package topocmp

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"topocmp/internal/graph"
)

// kernels2BenchRow is one line of BENCH_kernels2.json: the wave-2 kernel
// record (wide multi-word MSBFS strips and bit-parallel Brandes) per graph
// family, the machine-readable form of the kernel-wave-2 table in
// EXPERIMENTS.md. Rewritten after every benchmark so a partial -bench run
// still leaves a consistent file.
type kernels2BenchRow struct {
	Name         string  `json:"name"`
	Graph        string  `json:"graph"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Sources      int     `json:"sources"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

var kernels2Bench struct {
	sync.Mutex
	rows []kernels2BenchRow
}

// benchKernels2 runs fn b.N times with alloc accounting and records the row.
func benchKernels2(b *testing.B, g *graph.Graph, gname string, sources int, fn func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	row := kernels2BenchRow{
		Name:         b.Name(),
		Graph:        gname,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Sources:      sources,
		SecondsPerOp: b.Elapsed().Seconds() / n,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	kernels2Bench.Lock()
	defer kernels2Bench.Unlock()
	replaced := false
	for i := range kernels2Bench.rows {
		if kernels2Bench.rows[i].Name == row.Name {
			kernels2Bench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		kernels2Bench.rows = append(kernels2Bench.rows, row)
	}
	data, err := json.MarshalIndent(kernels2Bench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels2.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWideMSBFS sweeps the same 256 sources as four single-word
// 64-source batches versus one four-word strip, counts-only (RunLevels) in
// both arms — the multi-word payoff is the shared frontier amortized over
// four times the sources per edge scan.
func BenchmarkWideMSBFS(b *testing.B) {
	for _, net := range msbfsBenchNets() {
		g := net.Graph
		nsrc := 4 * graph.MSBFSWordBits
		if n := g.NumNodes(); nsrc > n {
			nsrc = n
		}
		perm := rand.New(rand.NewSource(2)).Perm(g.NumNodes())
		sources := make([]int32, nsrc)
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		ms := graph.NewMSBFSScratch()
		b.Run("words1/"+net.Name, func(b *testing.B) {
			benchKernels2(b, g, net.Name, nsrc, func() {
				for lo := 0; lo < nsrc; lo += graph.MSBFSWordBits {
					hi := lo + graph.MSBFSWordBits
					if hi > nsrc {
						hi = nsrc
					}
					ms.RunLevels(g, sources[lo:hi])
				}
			})
		})
		b.Run("words4/"+net.Name, func(b *testing.B) {
			benchKernels2(b, g, net.Name, nsrc, func() {
				ms.RunLevels(g, sources)
			})
		})
	}
}

// BenchmarkBrandes accumulates betweenness from 64 sources the scalar way
// (per-source BFSCounts plus the dependency sweep, the historical
// topBetweenness hot loop) versus one bit-parallel Brandes batch.
func BenchmarkBrandes(b *testing.B) {
	for _, net := range msbfsBenchNets() {
		g := net.Graph
		n := g.NumNodes()
		nsrc := graph.BrandesWidth
		if nsrc > n {
			nsrc = n
		}
		perm := rand.New(rand.NewSource(3)).Perm(n)
		sources := make([]int32, nsrc)
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		bc := make([]float64, n)
		delta := make([]float64, n)
		s := graph.NewBFSScratch()
		br := graph.NewBrandesScratch()
		b.Run("scalar/"+net.Name, func(b *testing.B) {
			benchKernels2(b, g, net.Name, nsrc, func() {
				clear(bc)
				for _, src := range sources {
					order := s.Counts(g, src)
					clear(delta)
					for i := len(order) - 1; i >= 0; i-- {
						w := order[i]
						dw := s.Dist(w)
						for _, v := range g.Neighbors(w) {
							if s.Dist(v) == dw-1 {
								delta[v] += s.Sigma(v) / s.Sigma(w) * (1 + delta[w])
							}
						}
						if w != src {
							bc[w] += delta[w]
						}
					}
				}
			})
		})
		b.Run("batched/"+net.Name, func(b *testing.B) {
			benchKernels2(b, g, net.Name, nsrc, func() {
				clear(bc)
				br.Accumulate(g, sources, bc)
			})
		})
	}
}
