package topocmp

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"topocmp/internal/core"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
)

// linkValueBenchRow is one line of BENCH_linkvalue.json: the scalar-vs-sigma
// link-value sweep record per graph family, the machine-readable form of the
// link-value table in EXPERIMENTS.md. Rewritten after every benchmark so a
// partial -bench run still leaves a consistent file.
type linkValueBenchRow struct {
	Name         string  `json:"name"`
	Graph        string  `json:"graph"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Sources      int     `json:"sources"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

var linkValueBench struct {
	sync.Mutex
	rows []linkValueBenchRow
}

// benchLinkValue runs fn b.N times with alloc accounting and records the row.
func benchLinkValue(b *testing.B, g *graph.Graph, gname string, sources int, fn func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	row := linkValueBenchRow{
		Name:         b.Name(),
		Graph:        gname,
		Nodes:        g.NumNodes(),
		Edges:        g.NumEdges(),
		Sources:      sources,
		SecondsPerOp: b.Elapsed().Seconds() / n,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	linkValueBench.Lock()
	defer linkValueBench.Unlock()
	replaced := false
	for i := range linkValueBench.rows {
		if linkValueBench.rows[i].Name == row.Name {
			linkValueBench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		linkValueBench.rows = append(linkValueBench.rows, row)
	}
	data, err := json.MarshalIndent(linkValueBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_linkvalue.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

var linkValueNetsOnce struct {
	sync.Once
	nets []*core.Network
}

// linkValueBenchNets builds the benchmark's graph families once: the
// acceptance workload RL (reduced to its core, exactly as the suite computes
// link values), AS, and PLRG — plus Mesh, whose diameter sends the auto
// route to the scalar fallback, so its pair of rows documents the fallback
// costing nothing rather than a speedup.
func linkValueBenchNets() []*core.Network {
	linkValueNetsOnce.Do(func() {
		opts := core.PaperSetOptions{Seed: 1, Scale: 0.12}
		ms := core.BuildMeasured(opts)
		rl := ms.RL
		if rl.Overlay != nil {
			if c, _ := rl.Graph.Core(); c.NumNodes() >= 3 {
				rl = &core.Network{Name: rl.Name, Category: rl.Category, Graph: c}
			}
		}
		linkValueNetsOnce.nets = []*core.Network{
			rl, ms.AS,
			core.BuildNetwork("PLRG", opts),
			core.BuildNetwork("Mesh", opts),
		}
	})
	return linkValueNetsOnce.nets
}

// BenchmarkLinkValues compares one full link-value pass done the scalar way
// (one counting BFS + target sweep per source) against the sigma-carrying
// MSBFS route (SigmaAuto: one CSR sweep per 64–256-source strip, or the
// scalar fallback when the diameter probe rejects batching). Parallelism is
// pinned to 1 so the ratio isolates the kernel, matching the reproduce
// -quick -j 1 acceptance run.
func BenchmarkLinkValues(b *testing.B) {
	const numSources = 384
	for _, n := range linkValueBenchNets() {
		g := n.Graph
		opts := func(mode hierarchy.SigmaMode) hierarchy.Options {
			return hierarchy.Options{
				MaxSources:  numSources,
				Rand:        rand.New(rand.NewSource(7)),
				Parallelism: 1,
				Sigma:       mode,
			}
		}
		b.Run("scalar/"+n.Name, func(b *testing.B) {
			benchLinkValue(b, g, n.Name, numSources, func() {
				hierarchy.LinkValues(g, opts(hierarchy.SigmaScalar))
			})
		})
		b.Run("sigma/"+n.Name, func(b *testing.B) {
			benchLinkValue(b, g, n.Name, numSources, func() {
				hierarchy.LinkValues(g, opts(hierarchy.SigmaAuto))
			})
		})
	}
}
