// Package topocmp is a from-scratch Go reproduction of Tangmunarunkit,
// Govindan, Jamin, Shenker and Willinger, "Network Topology Generators:
// Degree-Based vs. Structural" (SIGCOMM 2002).
//
// The module's root package carries only the repository-level benchmarks
// (bench_test.go), one per table and figure of the paper. The library lives
// under internal/ — see README.md for the architecture, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The examples/ directory shows the intended
// call patterns; cmd/reproduce regenerates every artifact.
package topocmp
