package topocmp

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/core"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/obs"
	"topocmp/internal/rng"
)

// scaleBenchRow is one line of BENCH_scale.json: the million-node scale
// pass's machine-readable record — map-vs-streamed builder peak memory, the
// size-vs-time/RSS build trajectory, and the full-RL sampled-metrics run.
// Rewritten after every benchmark so a partial -bench run still leaves a
// consistent file.
type scaleBenchRow struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"` // "map", "streamed", "pipeline"
	Nodes         int     `json:"nodes"`
	EdgeAdds      int     `json:"edge_adds"`
	DistinctEdges int     `json:"distinct_edges"`
	Seconds       float64 `json:"seconds"`
	// PeakHeapBytes is the high-water heap over the build, measured with the
	// collector paused so allocation churn — the map path's dominant cost —
	// is counted deterministically instead of depending on GC timing.
	PeakHeapBytes int64 `json:"peak_heap_bytes"`
	// CSRBytes is the size of the finished off+adj arrays: the product both
	// builder paths share. BuildOverheadBytes = PeakHeapBytes - CSRBytes is
	// the memory attributable to building itself; the >= 4x streamed-vs-map
	// acceptance bar (asserted by TestScaleSmoke) is on this overhead.
	CSRBytes           int64 `json:"csr_bytes,omitempty"`
	BuildOverheadBytes int64 `json:"build_overhead_bytes,omitempty"`
	RSSBytes           int64 `json:"rss_bytes,omitempty"`
	// MeanStdErr is the mean per-point standard error of the sampled
	// expansion computed on the built graph (full-RL row only).
	MeanStdErr float64 `json:"mean_stderr,omitempty"`
}

var scaleBench struct {
	sync.Mutex
	rows []scaleBenchRow
}

func scaleBenchRecord(b *testing.B, row scaleBenchRow) {
	b.Helper()
	scaleBench.Lock()
	defer scaleBench.Unlock()
	replaced := false
	for i := range scaleBench.rows {
		if scaleBench.rows[i].Name == row.Name {
			scaleBench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		scaleBench.rows = append(scaleBench.rows, row)
	}
	data, err := json.MarshalIndent(scaleBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// plrgEdgeStream reproduces the PLRG clone-matching edge stream at the given
// node count (the exact multiset plrg.FromDegrees feeds its builder), so the
// two builder implementations can be fed identical input.
func plrgEdgeStream(seed int64, n int) (adds [][2]int32, _ int) {
	r := rand.New(rand.NewSource(seed))
	degrees := rng.PowerLawDegrees(r, n, 2.246, n-1)
	total := 0
	for _, d := range degrees {
		total += d
	}
	copies := make([]int32, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			copies = append(copies, int32(v))
		}
	}
	rng.Shuffle(r, copies)
	adds = make([][2]int32, 0, total/2)
	for i := 0; i+1 < len(copies); i += 2 {
		adds = append(adds, [2]int32{copies[i], copies[i+1]})
	}
	return adds, n
}

func heapAlloc() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// csrBytes is the footprint of a frozen graph's off+adj arrays — the
// identical product of both builder paths, subtracted out to isolate build
// overhead.
func csrBytes(g *graph.Graph) int64 {
	return int64(4*(g.NumNodes()+1) + 4*2*g.NumEdges())
}

// buildPeak runs one build — add every edge, freeze — inside a paused-GC
// window and returns the graph and the peak heap delta over the window.
// With the collector off the heap only grows, so sampling after the add
// loop and after the freeze (builder and CSR both still referenced)
// captures the high-water mark exactly, rehash churn and freeze transients
// included, with no dependence on collector scheduling.
func buildPeak(adds [][2]int32, mk func() (addEdge func(u, v int32), freeze func() *graph.Graph)) (*graph.Graph, int64) {
	prev := debug.SetGCPercent(-1)
	runtime.GC()
	base := heapAlloc()
	addEdge, freeze := mk() // inside the window: builder allocations count
	for _, e := range adds {
		addEdge(e[0], e[1])
	}
	loaded := heapAlloc() - base
	g := freeze()
	frozen := heapAlloc() - base
	debug.SetGCPercent(prev)
	peak := loaded
	if frozen > peak {
		peak = frozen
	}
	return g, peak
}

// BenchmarkScaleBuild is the tentpole acceptance benchmark: a
// million-node-shape PLRG edge stream through the map-backed Builder and
// the streamed StreamBuilder, recording each path's paused-GC peak heap and
// build overhead (peak minus the shared CSR). The streamed path must hold a
// >= 4x overhead advantage (asserted by the TOPOCMP_SCALE_SMOKE=1 smoke
// test; recorded here for EXPERIMENTS.md).
func BenchmarkScaleBuild(b *testing.B) {
	adds, n := plrgEdgeStream(11, 1_000_000)
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ResetTimer()
			g, peak := buildPeak(adds, func() (func(u, v int32), func() *graph.Graph) {
				mb := graph.NewBuilder(n)
				return mb.AddEdge, mb.Graph
			})
			b.StopTimer()
			scaleBenchRecord(b, scaleBenchRow{
				Name: b.Name(), Mode: "map", Nodes: n, EdgeAdds: len(adds),
				DistinctEdges: g.NumEdges(), Seconds: b.Elapsed().Seconds() / float64(i+1),
				PeakHeapBytes: peak, CSRBytes: csrBytes(g), BuildOverheadBytes: peak - csrBytes(g),
			})
		}
	})
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ResetTimer()
			g, peak := buildPeak(adds, func() (func(u, v int32), func() *graph.Graph) {
				sb := graph.NewStreamBuilder(n)
				sb.Reserve(len(adds))
				return sb.AddEdge, sb.Graph
			})
			b.StopTimer()
			scaleBenchRecord(b, scaleBenchRow{
				Name: b.Name(), Mode: "streamed", Nodes: n, EdgeAdds: len(adds),
				DistinctEdges: g.NumEdges(), Seconds: b.Elapsed().Seconds() / float64(i+1),
				PeakHeapBytes: peak, CSRBytes: csrBytes(g), BuildOverheadBytes: peak - csrBytes(g),
			})
		}
	})
}

// BenchmarkScaleTrajectory records the size-vs-time/RSS trajectory of the
// streamed PLRG build at 10k, 100k and 1M nodes: the scale axis table of
// EXPERIMENTS.md.
func BenchmarkScaleTrajectory(b *testing.B) {
	for _, size := range []struct {
		label string
		n     int
	}{{"10k", 10_000}, {"100k", 100_000}, {"1m", 1_000_000}} {
		b.Run(size.label, func(b *testing.B) {
			adds, n := plrgEdgeStream(11, size.n)
			for i := 0; i < b.N; i++ {
				b.ResetTimer()
				g, peak := buildPeak(adds, func() (func(u, v int32), func() *graph.Graph) {
					sb := graph.NewStreamBuilder(n)
					sb.Reserve(len(adds))
					return sb.AddEdge, sb.Graph
				})
				b.StopTimer()
				rss, _ := obs.ReadRSS()
				scaleBenchRecord(b, scaleBenchRow{
					Name: b.Name(), Mode: "streamed", Nodes: n, EdgeAdds: len(adds),
					DistinctEdges: g.NumEdges(), Seconds: b.Elapsed().Seconds() / float64(i+1),
					PeakHeapBytes: peak, CSRBytes: csrBytes(g), BuildOverheadBytes: peak - csrBytes(g),
					RSSBytes: rss,
				})
			}
		})
	}
}

// BenchmarkScaleFullRL runs the measurement pipeline at the full-rl preset
// — the scale whose traceroute sweep discovers the real SCAN/Mercator map's
// ~170k routers — and computes a sampled expansion with confidence bounds
// on the resulting RL graph.
func BenchmarkScaleFullRL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runtime.GC()
		base := heapAlloc()
		b.ResetTimer()
		ms := core.BuildMeasured(core.PaperSetOptions{Seed: 1, Scale: core.ScalePresets["full-rl"]})
		g := ms.RL.Graph
		exp := metrics.ExpansionWith(ball.NewEngine(g, 0), ball.Config{
			MaxSources: 256, Rand: rand.New(rand.NewSource(1)),
		})
		b.StopTimer()
		runtime.GC()
		peak := heapAlloc() - base
		rss, _ := obs.ReadRSS()
		meanSE := 0.0
		for _, se := range exp.StdErr {
			meanSE += se
		}
		if len(exp.StdErr) > 0 {
			meanSE /= float64(len(exp.StdErr))
		}
		scaleBenchRecord(b, scaleBenchRow{
			Name: b.Name(), Mode: "pipeline", Nodes: g.NumNodes(), EdgeAdds: g.NumEdges(),
			DistinctEdges: g.NumEdges(), Seconds: b.Elapsed().Seconds() / float64(i+1),
			PeakHeapBytes: peak, RSSBytes: rss, MeanStdErr: meanSE,
		})
	}
}
