package topocmp

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeSmoke is the verify.sh daemon gate (run with
// TOPOCMP_SERVE_SMOKE=1): build the real topocmpd binary, start it on a
// kernel-chosen port, and assert the serving layer end to end — a suite
// query answers, a duplicate fired while the first is in flight dedups
// against it (serve_dedup_hits_total moves), and /metrics plus
// /debug/progress serve mid-run. The daemon is then killed; byte-identity
// and coalescing have their own in-process tests (internal/serve).
func TestServeSmoke(t *testing.T) {
	if os.Getenv("TOPOCMP_SERVE_SMOKE") == "" {
		t.Skip("set TOPOCMP_SERVE_SMOKE=1 to run the topocmpd serve smoke")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "topocmpd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/topocmpd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/topocmpd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-j", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck // best-effort teardown
		cmd.Wait()         //nolint:errcheck // exit status is the kill
	}()

	// The daemon prints its bound address before accepting traffic.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "topocmpd listening on http://") {
				addrCh <- strings.Fields(strings.TrimPrefix(line, "topocmpd listening on "))[0]
				break
			}
		}
		close(addrCh)
		io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	}()
	var base string
	select {
	case a, ok := <-addrCh:
		if !ok || a == "" {
			t.Fatal("topocmpd exited without printing its address")
		}
		base = a
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the topocmpd address")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// A Random-network suite at modest options runs long enough (seconds)
	// that the duplicate fired shortly after demonstrably overlaps it, and
	// that the mid-run probes sample a live computation.
	req := `{"Network":"Random","Set":{"Seed":3,"Scale":0.12},` +
		`"Suite":{"Sources":8,"MaxBallSize":800,"EigenRank":12,"LinkSources":64,"Seed":5}}`
	post := func() (int, http.Header, []byte) {
		resp, err := http.Post(base+"/v1/suite", "application/json", strings.NewReader(req))
		if err != nil {
			t.Errorf("POST /v1/suite: %v", err)
			return 0, nil, nil
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, body
	}

	type result struct {
		code   int
		source string
		body   []byte
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i == 1 {
				time.Sleep(200 * time.Millisecond) // land inside the first run
			}
			code, hdr, body := post()
			results[i] = result{code, hdr.Get("X-Topocmp-Source"), body}
		}(i)
	}

	// Probe the observability plane while the suite computes.
	var sawMetrics, sawProgress bool
	for i := 0; i < 40 && !(sawMetrics && sawProgress); i++ {
		if code, body := get("/metrics"); code == http.StatusOK &&
			strings.Contains(body, "serve_requests_total") {
			sawMetrics = true
		}
		if code, body := get("/debug/progress"); code == http.StatusOK &&
			strings.Contains(body, "stages") {
			sawProgress = true
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !sawMetrics {
		t.Error("/metrics never served serve_* counters mid-run")
	}
	if !sawProgress {
		t.Error("/debug/progress never answered mid-run")
	}

	wg.Wait()
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
	}
	if !bytes.Equal(results[0].body, results[1].body) {
		t.Error("duplicate request returned different bytes")
	}
	if !(results[0].source == "dedup" || results[1].source == "dedup") {
		t.Errorf("no request served via dedup (sources %q, %q)", results[0].source, results[1].source)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "serve_dedup_hits_total 1") ||
		!strings.Contains(body, "serve_suite_runs_total 1") {
		t.Errorf("/metrics after dedup = %d, want serve_dedup_hits_total 1 and "+
			"serve_suite_runs_total 1:\n%s", code, grepServe(body))
	}
}

// grepServe trims a Prometheus exposition to its serve_* lines for
// readable failure output.
func grepServe(body string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, "serve_") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
