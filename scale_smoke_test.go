package topocmp

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
)

// TestScaleSmoke is the verify.sh scale gate (run with TOPOCMP_SCALE_SMOKE=1):
// build a million-node PLRG through the streamed path, check the >= 4x
// build-overhead advantage over the map builder on the identical edge
// stream, and run one sampled expansion with confidence bounds — all within
// an explicit time and heap budget.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("TOPOCMP_SCALE_SMOKE") == "" {
		t.Skip("set TOPOCMP_SCALE_SMOKE=1 to run the million-node scale smoke")
	}
	const (
		timeBudget = 180 * time.Second
		heapBudget = int64(64 << 20) // streamed build peak, paused-GC accounting
	)
	start := time.Now()
	adds, n := plrgEdgeStream(11, 1_000_000)

	gm, mapPeak := buildPeak(adds, func() (func(u, v int32), func() *graph.Graph) {
		mb := graph.NewBuilder(n)
		return mb.AddEdge, mb.Graph
	})
	gs, streamPeak := buildPeak(adds, func() (func(u, v int32), func() *graph.Graph) {
		sb := graph.NewStreamBuilder(n)
		sb.Reserve(len(adds))
		return sb.AddEdge, sb.Graph
	})
	if gm.Fingerprint() != gs.Fingerprint() {
		t.Fatalf("map and streamed builders disagree: %x vs %x", gm.Fingerprint(), gs.Fingerprint())
	}
	mapOv, streamOv := mapPeak-csrBytes(gm), streamPeak-csrBytes(gs)
	if streamOv <= 0 || mapOv < 4*streamOv {
		t.Errorf("streamed build overhead %d B vs map %d B: want >= 4x advantage", streamOv, mapOv)
	}
	if streamPeak > heapBudget {
		t.Errorf("streamed 1M build peak heap %d B exceeds budget %d B", streamPeak, heapBudget)
	}

	exp := metrics.ExpansionWith(ball.NewEngine(gs, 0), ball.Config{
		MaxSources: 64, Rand: rand.New(rand.NewSource(1)),
	})
	if len(exp.Points) == 0 || len(exp.StdErr) != len(exp.Points) {
		t.Fatalf("sampled expansion: %d points, %d bounds", len(exp.Points), len(exp.StdErr))
	}
	nonzero := false
	for _, se := range exp.StdErr {
		if se > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("sampled expansion on 1M nodes reported all-zero confidence bounds")
	}

	if elapsed := time.Since(start); elapsed > timeBudget {
		t.Errorf("scale smoke took %v, budget %v", elapsed, timeBudget)
	}
}
