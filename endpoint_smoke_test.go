package topocmp

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndpointSmoke is the verify.sh live-plane gate (run with
// TOPOCMP_ENDPOINT_SMOKE=1): build the real reproduce binary, launch a
// -quick run serving -http on a kernel-chosen port, and assert — while the
// pipeline is still executing — that /metrics serves Prometheus text with
// histogram buckets, /debug/progress serves the stage DAG with a running
// stage, and /debug/pprof/ responds. The run is then killed; the smoke
// checks the live plane, not the artifacts (cmd/reproduce's own tests pin
// those).
func TestEndpointSmoke(t *testing.T) {
	if os.Getenv("TOPOCMP_ENDPOINT_SMOKE") == "" {
		t.Skip("set TOPOCMP_ENDPOINT_SMOKE=1 to run the live-endpoint smoke")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "reproduce")
	build := exec.Command("go", "build", "-o", bin, "./cmd/reproduce")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/reproduce: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-quick", "-j", "2",
		"-http", "127.0.0.1:0", "-out", filepath.Join(dir, "results"))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck // best-effort teardown
		cmd.Wait()         //nolint:errcheck // exit status is the kill
	}()

	// The binary prints its bound address before the first stage runs.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "debug server listening on http://") {
				addrCh <- strings.Fields(strings.TrimPrefix(line, "debug server listening on "))[0]
				break
			}
		}
		close(addrCh)
		io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
	}()
	var base string
	select {
	case a, ok := <-addrCh:
		if !ok || a == "" {
			t.Fatal("reproduce exited without printing the debug server address")
		}
		base = a
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the debug server address")
	}

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Poll until the pipeline is demonstrably mid-run: a running stage in
	// the progress DAG and histogram buckets in the exposition. The -quick
	// run takes minutes, so well before it finishes both must appear.
	deadline := time.Now().Add(2 * time.Minute)
	var sawRunning, sawBuckets bool
	for time.Now().Before(deadline) && !(sawRunning && sawBuckets) {
		if code, body := get("/debug/progress"); code == http.StatusOK {
			var snap struct {
				Fraction float64 `json:"fraction"`
				Stages   []struct {
					State string `json:"state"`
				} `json:"stages"`
			}
			if err := json.Unmarshal([]byte(body), &snap); err != nil {
				t.Fatalf("/debug/progress is not JSON: %v\n%s", err, body)
			}
			if snap.Fraction >= 1 {
				t.Fatal("run finished before the smoke sampled it mid-flight")
			}
			for _, st := range snap.Stages {
				if st.State == "running" {
					sawRunning = true
				}
			}
		}
		if code, body := get("/metrics"); code == http.StatusOK {
			if strings.Contains(body, "_bucket{le=") && strings.Contains(body, "# TYPE") {
				sawBuckets = true
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !sawRunning {
		t.Error("/debug/progress never reported a running stage mid-run")
	}
	if !sawBuckets {
		t.Error("/metrics never served histogram buckets mid-run")
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "pipeline_workers 2") {
		t.Errorf("/metrics = %d, want 200 with pipeline_workers gauge:\n%s", code, body)
	}
}
