// Package topocmp's root benchmarks regenerate every table and figure of
// the paper (see DESIGN.md's experiment index). Each BenchmarkTableN /
// BenchmarkFigureN prints the rows or series the paper reports (once) and
// times the artifact's assembly against a shared, lazily warmed experiment
// runner; the BenchmarkAblation* family measures the design choices called
// out in DESIGN.md on live workloads.
//
// Run with:
//
//	go test -bench=. -benchmem
package topocmp

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/bgp"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/flow"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
	"topocmp/internal/metrics"
	"topocmp/internal/multicast"
	"topocmp/internal/partition"
	"topocmp/internal/policy"
	"topocmp/internal/stats"
)

var (
	runnerOnce sync.Once
	runner     *experiments.Runner
	printOnce  sync.Map
)

// benchRunner returns the shared runner at bench scale; the expensive suite
// computations are memoized inside it, so each figure bench warms exactly
// the networks it needs.
func benchRunner() *experiments.Runner {
	runnerOnce.Do(func() {
		cfg := experiments.QuickConfig(1)
		cfg.Set.Scale = 0.1
		cfg.Suite.Sources = 10
		cfg.Suite.MaxBallSize = 1200
		cfg.Suite.LinkSources = 320
		runner = experiments.NewRunner(cfg)
	})
	return runner
}

// printHeader emits the artifact's rows exactly once across -bench runs.
func printHeader(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

func warmSuites(names ...string) {
	r := benchRunner()
	for _, n := range names {
		r.Suite(n)
	}
}

func BenchmarkTable1Inventory(b *testing.B) {
	r := benchRunner()
	r.Networks()
	b.ResetTimer()
	var rows []core.Description
	for i := 0; i < b.N; i++ {
		rows = r.Table1()
	}
	printHeader("table1", func() {
		fmt.Println("\nTable 1: topology inventory")
		for _, d := range rows {
			fmt.Printf("  %-9s %-9s %6d nodes  avg degree %.2f\n",
				d.Category, d.Name, d.Nodes, d.AvgDegree)
		}
	})
}

func benchFigure2(b *testing.B, group string, names []string) {
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var p experiments.Figure2Panel
	for i := 0; i < b.N; i++ {
		p = r.Figure2(group, names)
	}
	printHeader("fig2-"+group, func() {
		fmt.Printf("\nFigure 2 (%s): series lengths — ", group)
		for i := range p.Expansion {
			fmt.Printf("%s E=%d ", p.Expansion[i].Name, p.Expansion[i].Len())
		}
		fmt.Println()
	})
}

func BenchmarkFigure2ExpansionCanonical(b *testing.B) {
	benchFigure2(b, "canonical", experiments.CanonicalNames)
}

func BenchmarkFigure2ExpansionMeasured(b *testing.B) {
	benchFigure2(b, "measured", experiments.MeasuredNames)
}

func BenchmarkFigure2ExpansionGenerated(b *testing.B) {
	benchFigure2(b, "generated", experiments.GeneratedNames)
}

// BenchmarkFigure2ResilienceRaw times the resilience computation itself on
// the PLRG (the suite memoizes it for the panel benches above).
func BenchmarkFigure2ResilienceRaw(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Resilience(g, ball.Config{MaxSources: 6, MaxBallSize: 800,
			Rand: rand.New(rand.NewSource(int64(i)))}, partition.Options{})
	}
}

// BenchmarkFigure2DistortionRaw times the distortion computation.
func BenchmarkFigure2DistortionRaw(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Distortion(g, ball.Config{MaxSources: 6, MaxBallSize: 800,
			Rand: rand.New(rand.NewSource(int64(i)))}, 3)
	}
}

var benchGraphOnce sync.Once
var benchG *graph.Graph

func benchGraph() *graph.Graph {
	benchGraphOnce.Do(func() {
		benchG = plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 2000, Beta: 2.246})
	})
	return benchG
}

func BenchmarkTable2CanonicalSignatures(b *testing.B) {
	warmSuites("Mesh", "Random", "Tree", "Complete", "Linear")
	r := benchRunner()
	b.ResetTimer()
	var rows []core.Row
	for i := 0; i < b.N; i++ {
		rows = r.Table2()
	}
	printHeader("table2", func() {
		fmt.Println("\nTable 2: canonical signatures")
		core.WriteTable(os.Stdout, rows)
	})
}

func BenchmarkTable3Classification(b *testing.B) {
	warmSuites(experiments.AllTableNames...)
	r := benchRunner()
	b.ResetTimer()
	var rows []core.Row
	for i := 0; i < b.N; i++ {
		rows = r.Table3()
	}
	printHeader("table3", func() {
		fmt.Println("\nTable 3 (§4.4): classification")
		core.WriteTable(os.Stdout, rows)
	})
}

func BenchmarkFigure3LinkValues(b *testing.B) {
	names := []string{"Tree", "Mesh", "RL", "AS", "TS", "Tiers", "Waxman", "PLRG"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure3(names)
	}
	printHeader("fig3", func() {
		fmt.Println("\nFigures 3/4: top normalized link values")
		for _, s := range series {
			fmt.Printf("  %-12s top=%.4f\n", s.Name, s.Points[0].Y)
		}
	})
}

func BenchmarkTable4HierarchyGroups(b *testing.B) {
	r := benchRunner()
	r.Table4() // warm
	b.ResetTimer()
	var rows []experiments.HierarchyRow
	for i := 0; i < b.N; i++ {
		rows = r.Table4()
	}
	printHeader("table4", func() {
		fmt.Println("\nTable 4 (§5.1): hierarchy groups")
		for _, row := range rows {
			fmt.Printf("  %-8s %s (paper: %s)\n", row.Name, row.Class,
				core.ExpectedHierarchy[row.Name])
		}
	})
}

func BenchmarkFigure5Correlation(b *testing.B) {
	r := benchRunner()
	r.Figure5() // warm
	b.ResetTimer()
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		rows = r.Figure5()
	}
	printHeader("fig5", func() {
		fmt.Println("\nFigure 5: link value / min degree correlation")
		for _, row := range rows {
			fmt.Printf("  %-12s %.3f\n", row.Name, row.Correlation)
		}
	})
}

func BenchmarkFigure6DegreeDistributions(b *testing.B) {
	r := benchRunner()
	r.Networks()
	names := append(append([]string{}, experiments.CanonicalNames...),
		"AS", "RL", "PLRG", "TS", "Tiers", "Waxman")
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure6(names)
	}
	printHeader("fig6", func() {
		fmt.Println("\nFigure 6: degree CCDF tail exponents (log-log slope)")
		for _, s := range series {
			fit := stats.LogLogFit(s.Points)
			fmt.Printf("  %-8s slope=%.2f R2=%.2f\n", s.Name, fit.Slope, fit.R2)
		}
	})
}

func BenchmarkFigure7Eigenvalues(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure7Eigen(names)
	}
	printHeader("fig7e", func() {
		fmt.Println("\nFigure 7(a-c): top eigenvalues")
		for _, s := range series {
			if s.Len() > 0 {
				fmt.Printf("  %-8s lambda1=%.2f ranks=%d\n", s.Name, s.Points[0].Y, s.Len())
			}
		}
	})
}

func BenchmarkFigure7Eccentricity(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure7Ecc(names)
	}
	printHeader("fig7d", func() {
		fmt.Println("\nFigure 7(d-f): eccentricity distributions (bins)")
		for _, s := range series {
			fmt.Printf("  %-8s bins=%d\n", s.Name, s.Len())
		}
	})
}

func BenchmarkFigure8VertexCover(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure8Cover(names)
	}
	printHeader("fig8c", func() {
		fmt.Println("\nFigure 8(a-c): vertex cover at largest measured ball")
		for _, s := range series {
			if s.Len() > 0 {
				last := s.Points[s.Len()-1]
				fmt.Printf("  %-8s cover(%0.f)=%.0f\n", s.Name, last.X, last.Y)
			}
		}
	})
}

func BenchmarkFigure8Biconnectivity(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure8Bicon(names)
	}
	printHeader("fig8b", func() {
		fmt.Println("\nFigure 8(d-f): biconnected components at largest ball")
		for _, s := range series {
			if s.Len() > 0 {
				last := s.Points[s.Len()-1]
				fmt.Printf("  %-8s bicomp(%0.f)=%.0f\n", s.Name, last.X, last.Y)
			}
		}
	})
}

func BenchmarkFigure9Attack(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var att []stats.Series
	for i := 0; i < b.N; i++ {
		att, _ = r.Figure9(names)
	}
	printHeader("fig9a", func() {
		fmt.Println("\nFigure 9(a-c): attack tolerance (APL at f=0 and f=0.05)")
		for _, s := range att {
			fmt.Printf("  %-12s %.2f -> %.2f\n", s.Name, s.YAt(0), s.YAt(0.05))
		}
	})
}

func BenchmarkFigure9Error(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var errTol []stats.Series
	for i := 0; i < b.N; i++ {
		_, errTol = r.Figure9(names)
	}
	printHeader("fig9e", func() {
		fmt.Println("\nFigure 9(d-f): error tolerance (APL at f=0 and f=0.05)")
		for _, s := range errTol {
			fmt.Printf("  %-12s %.2f -> %.2f\n", s.Name, s.YAt(0), s.YAt(0.05))
		}
	})
}

func BenchmarkFigure10Clustering(b *testing.B) {
	names := []string{"Tree", "Mesh", "Random", "RL", "AS", "PLRG", "TS", "Tiers", "Waxman"}
	warmSuites(names...)
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure10(names)
	}
	printHeader("fig10", func() {
		fmt.Println("\nFigure 10: whole-graph clustering coefficients")
		for _, name := range names {
			fmt.Printf("  %-8s C=%.3f\n", name, r.Suite(name).WholeGraphClustering)
		}
		_ = series
	})
}

func BenchmarkFigure11ParameterSpace(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	var rows []experiments.Figure11Row
	for i := 0; i < b.N; i++ {
		rows = r.Figure11()
	}
	printHeader("fig11", func() {
		fmt.Println("\nFigure 11 (Appendix C): parameter exploration")
		for _, row := range rows {
			fmt.Printf("  %-7s %-24s %6d nodes  deg=%.2f  %s\n",
				row.Generator, row.Params, row.Nodes, row.AvgDegree, row.Signature)
		}
	})
}

func BenchmarkFigure12DegreeBasedVariants(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	var p experiments.VariantPanel
	for i := 0; i < b.N; i++ {
		p = r.Figure12()
	}
	printHeader("fig12", func() {
		fmt.Println("\nFigure 12 (Appendix D.1): degree-based variants")
		for i := range p.Expansion {
			sig := core.Signature{
				Expansion:  core.ClassifyExpansion(p.Expansion[i]),
				Resilience: core.ClassifyResilience(p.Resilience[i]),
				Distortion: core.ClassifyDistortion(p.Distortion[i]),
			}
			fmt.Printf("  %-6s %s (want HHL)\n", p.Expansion[i].Name, sig)
		}
	})
}

func BenchmarkFigure13Reconnection(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	var p experiments.VariantPanel
	for i := 0; i < b.N; i++ {
		p = r.Figure13()
	}
	printHeader("fig13", func() {
		fmt.Println("\nFigure 13 (Appendix D.1): PLRG reconnection")
		for i := range p.Expansion {
			fmt.Printf("  %-15s E=%s D=%s\n", p.Expansion[i].Name,
				core.ClassifyExpansion(p.Expansion[i]),
				core.ClassifyDistortion(p.Distortion[i]))
		}
	})
}

func BenchmarkFigure14VariantHierarchy(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	var series []stats.Series
	for i := 0; i < b.N; i++ {
		series = r.Figure14()
	}
	printHeader("fig14", func() {
		fmt.Println("\nFigure 14 (Appendix D.2): variant link values")
		for _, s := range series {
			fmt.Printf("  %-6s top=%.4f\n", s.Name, s.Points[0].Y)
		}
	})
}

// --- Ball-engine benches (the parallel ball-growing engine of DESIGN.md) ---

// BenchmarkRunSuite times the full metric suite on the bench PLRG through
// the shared ball engine, sequentially and at NumCPU parallelism.
func BenchmarkRunSuite(b *testing.B) {
	g := benchGraph()
	n := &core.Network{Name: "PLRG", Category: core.Generated, Graph: g}
	for _, c := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"numcpu", 0}} {
		b.Run(c.name, func(b *testing.B) {
			opts := core.SuiteOptions{Sources: 10, MaxBallSize: 1200,
				LinkSources: 256, Seed: 1, Parallelism: c.par}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunSuite(n, opts)
			}
		})
	}
}

// BenchmarkBallEngine compares one full ball-growing pass (grow balls
// around sampled centers, build each ball's induced subgraph) through the
// legacy Visit+Subgraph path against the engine, plus the engine's
// steady-state where the profile and subgraph caches are warm.
func BenchmarkBallEngine(b *testing.B) {
	g := benchGraph()
	cfg := func() ball.Config {
		return ball.Config{MaxSources: 10, MaxBallSize: 1200,
			Rand: rand.New(rand.NewSource(1))}
	}
	count := func(sub *graph.Graph, _ *rand.Rand) (float64, bool) {
		return float64(sub.NumNodes()), true
	}
	b.Run("legacy-visit", func(b *testing.B) {
		b.ReportAllocs()
		balls := 0
		for i := 0; i < b.N; i++ {
			balls = 0
			ball.Visit(g, cfg(), func(bb ball.Ball) {
				ball.Subgraph(g, bb)
				balls++
			})
		}
		b.ReportMetric(float64(balls), "balls")
	})
	b.Run("engine-cold", func(b *testing.B) {
		b.ReportAllocs()
		balls := 0
		for i := 0; i < b.N; i++ {
			e := ball.NewEngine(g, 1)
			pts := e.BallPoints(cfg(), 1, count)
			balls = len(pts)
		}
		b.ReportMetric(float64(balls), "balls")
	})
	b.Run("engine-warm", func(b *testing.B) {
		e := ball.NewEngine(g, 1)
		e.BallPoints(cfg(), 1, count) // warm the caches
		b.ReportAllocs()
		b.ResetTimer()
		balls := 0
		for i := 0; i < b.N; i++ {
			pts := e.BallPoints(cfg(), 1, count)
			balls = len(pts)
		}
		b.ReportMetric(float64(balls), "balls")
	})
}

// --- Ablation benches (DESIGN.md design choices) ---

func BenchmarkAblationDistortionRoots(b *testing.B) {
	g := benchGraph()
	for _, roots := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("roots=%d", roots), func(b *testing.B) {
			var last stats.Series
			for i := 0; i < b.N; i++ {
				last = metrics.Distortion(g, ball.Config{MaxSources: 4, MaxBallSize: 600,
					Rand: rand.New(rand.NewSource(1))}, roots)
			}
			if last.Len() > 0 {
				b.ReportMetric(last.Points[last.Len()-1].Y, "distortion")
			}
		})
	}
}

func BenchmarkAblationPartitioner(b *testing.B) {
	g := benchGraph()
	sub := g.Subgraph(g.Ball(0, 4))
	cases := []struct {
		name string
		opts partition.Options
	}{
		{"fm-multilevel", partition.Options{}},
		{"no-refinement", partition.Options{Refinements: -1, Seeds: 1}},
		{"many-seeds", partition.Options{Seeds: 12}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cut := 0
			for i := 0; i < b.N; i++ {
				o := c.opts
				o.Rand = rand.New(rand.NewSource(int64(i)))
				cut = partition.CutSize(sub, o)
			}
			b.ReportMetric(float64(cut), "cut")
		})
	}
}

func BenchmarkAblationBallSampling(b *testing.B) {
	g := benchGraph()
	for _, sources := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("sources=%d", sources), func(b *testing.B) {
			var e stats.Series
			for i := 0; i < b.N; i++ {
				e = metrics.Expansion(g, ball.Config{MaxSources: sources,
					Rand: rand.New(rand.NewSource(1))})
			}
			b.ReportMetric(e.YAt(4), "E(4)")
		})
	}
}

func BenchmarkAblationLinkValueSampling(b *testing.B) {
	g := benchGraph()
	for _, q := range []int{128, 320, 512} {
		b.Run(fmt.Sprintf("Q=%d", q), func(b *testing.B) {
			var top float64
			for i := 0; i < b.N; i++ {
				res := hierarchy.LinkValues(g, hierarchy.Options{
					MaxSources: q, Rand: rand.New(rand.NewSource(1))})
				top = res.RankDistribution().Points[0].Y
			}
			b.ReportMetric(top, "topvalue")
		})
	}
}

func BenchmarkAblationConnectivity(b *testing.B) {
	for _, c := range []plrg.Connectivity{
		plrg.CloneMatching, plrg.UniformRandom,
		plrg.ProportionalUnsatisfied, plrg.Deterministic,
	} {
		b.Run(c.String(), func(b *testing.B) {
			var g *graph.Graph
			for i := 0; i < b.N; i++ {
				g = plrg.MustGenerate(rand.New(rand.NewSource(int64(i))),
					plrg.Params{N: 3000, Beta: 2.246, Connect: c})
			}
			b.ReportMetric(float64(g.NumNodes()), "component")
		})
	}
}

// --- Primitive benches: the algorithms the figures run on ---

func BenchmarkPrimitiveDinicFlow(b *testing.B) {
	g := benchGraph()
	nw := flow.NewNetwork(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.MaxFlow(0, int32(1+i%(g.NumNodes()-1)))
	}
}

func BenchmarkPrimitiveMulticastTree(b *testing.B) {
	g := benchGraph()
	r := rand.New(rand.NewSource(5))
	receivers := make([]int32, 200)
	for i := range receivers {
		receivers[i] = int32(r.Intn(g.NumNodes()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multicast.TreeLinks(g, 0, receivers)
	}
}

func BenchmarkPrimitivePolicyBFS(b *testing.B) {
	r := benchRunner()
	as := r.Measured().TruthAS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Annotated.Dist(int32(i % as.Graph.NumNodes()))
	}
}

func BenchmarkPrimitiveGaoInference(b *testing.B) {
	r := benchRunner()
	as := r.Measured().TruthAS
	vantages := bgp.PickVantages(as.Graph, 10, rand.New(rand.NewSource(6)))
	table := bgp.Collect(as.Annotated, vantages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.InferGao(as.Graph, table.Paths)
	}
}

func BenchmarkPrimitiveLinkValues(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hierarchy.LinkValues(g, hierarchy.Options{MaxSources: 256,
			Rand: rand.New(rand.NewSource(int64(i)))})
	}
}

func BenchmarkPrimitiveEigenSpectrum(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.EigenvalueSpectrum(g, 40)
	}
}

func BenchmarkNullModelRewiring(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	var p experiments.VariantPanel
	for i := 0; i < b.N; i++ {
		p = r.RewiringPanel()
	}
	printHeader("nullmodel", func() {
		fmt.Println("\nNull model: AS vs degree-preserving rewiring")
		for i := range p.Expansion {
			sig := core.Signature{
				Expansion:  core.ClassifyExpansion(p.Expansion[i]),
				Resilience: core.ClassifyResilience(p.Resilience[i]),
				Distortion: core.ClassifyDistortion(p.Distortion[i]),
			}
			fmt.Printf("  %-12s %s\n", p.Expansion[i].Name, sig)
		}
	})
}
