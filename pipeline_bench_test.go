package topocmp

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
)

// pipeCfg is the pipeline benchmark configuration: small enough that a
// full cold run fits in a benchmark iteration, large enough that network
// construction and suite runs dominate the scheduler overhead.
func pipeCfg() experiments.Config {
	return experiments.Config{
		Set: core.PaperSetOptions{Seed: 1, Scale: 0.06},
		Suite: core.SuiteOptions{Sources: 4, MaxBallSize: 300, EigenRank: 8,
			LinkSources: 64, Seed: 1},
	}
}

// pipelineBenchRow is one line of BENCH_pipeline.json, rewritten after
// every pipeline benchmark so a partial -bench run still leaves a
// consistent file.
type pipelineBenchRow struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Cache         string  `json:"cache"`
	SecondsPerOp  float64 `json:"seconds_per_op"`
	NetworkBuilds int64   `json:"network_builds"`
	SuiteRuns     int64   `json:"suite_runs"`
}

var pipelineBench struct {
	sync.Mutex
	rows []pipelineBenchRow
}

func recordPipelineBench(b *testing.B, workers int, cacheState string, st experiments.Stats) {
	b.Helper()
	pipelineBench.Lock()
	defer pipelineBench.Unlock()
	pipelineBench.rows = append(pipelineBench.rows, pipelineBenchRow{
		Name:          b.Name(),
		Workers:       workers,
		Cache:         cacheState,
		SecondsPerOp:  b.Elapsed().Seconds() / float64(b.N),
		NetworkBuilds: st.NetworkBuilds,
		SuiteRuns:     st.SuiteRuns,
	})
	data, err := json.MarshalIndent(pipelineBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pipeline.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

var pipelineWidths = []struct {
	name    string
	workers int
}{
	{"seq", 1},
	{"numcpu", runtime.NumCPU()},
}

// BenchmarkPipeline times the full build-and-measure DAG: cold with an
// empty cache (computes and persists everything) at 1 and NumCPU workers,
// then warm against a populated cache (restores everything, zero builds).
func BenchmarkPipeline(b *testing.B) {
	for _, w := range pipelineWidths {
		b.Run("cold_"+w.name, func(b *testing.B) {
			var st experiments.Stats
			for i := 0; i < b.N; i++ {
				dir, err := os.MkdirTemp(b.TempDir(), "cache")
				if err != nil {
					b.Fatal(err)
				}
				store, err := cache.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				r := experiments.NewRunner(pipeCfg())
				r.Workers = w.workers
				r.Cache = store
				r.Prefetch()
				st = r.Stats()
			}
			recordPipelineBench(b, w.workers, "cold", st)
		})
	}
	b.Run("warm_numcpu", func(b *testing.B) {
		dir := b.TempDir()
		store, err := cache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		seed := experiments.NewRunner(pipeCfg())
		seed.Cache = store
		seed.Prefetch()
		b.ResetTimer()
		var st experiments.Stats
		for i := 0; i < b.N; i++ {
			warmStore, err := cache.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			r := experiments.NewRunner(pipeCfg())
			r.Workers = runtime.NumCPU()
			r.Cache = warmStore
			r.Prefetch()
			st = r.Stats()
		}
		recordPipelineBench(b, runtime.NumCPU(), "warm", st)
	})
}

// BenchmarkBuildPaperNetworks isolates the construction stage: all eleven
// table networks built over the worker pool, no metric suites.
func BenchmarkBuildPaperNetworks(b *testing.B) {
	for _, w := range pipelineWidths {
		b.Run(w.name, func(b *testing.B) {
			var st experiments.Stats
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(pipeCfg())
				r.Workers = w.workers
				r.PrefetchNetworks()
				st = r.Stats()
			}
			recordPipelineBench(b, w.workers, "none", st)
		})
	}
}
