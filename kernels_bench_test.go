package topocmp

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/metrics"
	"topocmp/internal/partition"
)

// kernelBenchRow is one line of BENCH_kernels.json, rewritten after every
// kernel benchmark so a partial -bench run still leaves a consistent file.
// These rows are the machine-readable form of the cut/flow kernel table in
// EXPERIMENTS.md.
type kernelBenchRow struct {
	Name         string  `json:"name"`
	SecondsPerOp float64 `json:"seconds_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
}

var kernelBench struct {
	sync.Mutex
	rows []kernelBenchRow
}

// benchKernel runs fn b.N times with alloc accounting and records the row.
func benchKernel(b *testing.B, fn func()) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	row := kernelBenchRow{
		Name:         b.Name(),
		SecondsPerOp: b.Elapsed().Seconds() / n,
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:   float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
	kernelBench.Lock()
	defer kernelBench.Unlock()
	// The harness re-enters the function while calibrating b.N; keep only
	// the latest (largest-N) row per benchmark name.
	replaced := false
	for i := range kernelBench.rows {
		if kernelBench.rows[i].Name == row.Name {
			kernelBench.rows[i] = row
			replaced = true
			break
		}
	}
	if !replaced {
		kernelBench.rows = append(kernelBench.rows, row)
	}
	data, err := json.MarshalIndent(kernelBench.rows, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

func kernelCfg() ball.Config {
	return ball.Config{MaxSources: 4, Rand: rand.New(rand.NewSource(1))}
}

// BenchmarkKernelResilience is the headline kernel workload: the full
// resilience curve of a 900-node mesh (the same shape as the package-level
// BenchmarkResilienceMesh), whose per-ball balanced bisections now run on
// the engine's pooled workspaces.
func BenchmarkKernelResilience(b *testing.B) {
	g := canonical.Mesh(30, 30)
	benchKernel(b, func() {
		metrics.Resilience(g, kernelCfg(), partition.Options{})
	})
}

// BenchmarkKernelCutSize isolates one balanced bisection: a throwaway
// solver per call versus a warm reused workspace.
func BenchmarkKernelCutSize(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.Run("fresh", func(b *testing.B) {
		benchKernel(b, func() {
			partition.CutSize(g, partition.Options{Rand: rand.New(rand.NewSource(1))})
		})
	})
	b.Run("workspace", func(b *testing.B) {
		ws := partition.NewWorkspace()
		partition.CutSizeWith(ws, g, partition.Options{Rand: rand.New(rand.NewSource(1))})
		benchKernel(b, func() {
			partition.CutSizeWith(ws, g, partition.Options{Rand: rand.New(rand.NewSource(1))})
		})
	})
}

// BenchmarkKernelSurfaceFlow covers both surface-max-flow paths: the legacy
// sequential curve with its reused local scratch, and the engine form with
// pooled per-worker Dinic solvers.
func BenchmarkKernelSurfaceFlow(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.Run("legacy", func(b *testing.B) {
		benchKernel(b, func() {
			metrics.SurfaceMaxFlowCurve(g, kernelCfg(), 6)
		})
	})
	b.Run("engine", func(b *testing.B) {
		benchKernel(b, func() {
			metrics.SurfaceMaxFlowCurveWith(ball.NewEngine(g, 1), kernelCfg(), 6, 1)
		})
	})
}
