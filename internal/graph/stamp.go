package graph

// Stamp is the epoch-stamped visited set shared by every scratch family in
// the repository (BFSScratch, MSBFSScratch, SubgraphScratch, the Brandes
// accumulator, partition.Workspace's coarse-adjacency and region-growing
// marks). A traversal opens a new epoch with Begin instead of clearing its
// arrays, so starting one costs O(1) rather than O(N); per-node liveness is
// stamp[v] == epoch. Centralizing the rules here (growth resets the epoch,
// wraparound clears and restarts) keeps every kernel's ownership story
// identical: a Stamp — like the scratch that embeds it — is single-owner
// state, not safe for concurrent use, and anything guarded by it is valid
// only until the next Begin.
type Stamp struct {
	epoch int32
	marks []int32
}

// Begin sizes the stamp for ids in [0, n) and opens a new epoch. It reports
// whether the backing array was (re)grown, so embedding scratch types know
// to grow their own parallel arrays.
func (s *Stamp) Begin(n int) (grown bool) {
	if len(s.marks) < n {
		s.marks = make([]int32, n)
		s.epoch = 0
		grown = true
	}
	s.epoch++
	if s.epoch < 0 { // epoch wrapped: clear marks and restart
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.epoch = 1
	}
	return grown
}

// Visit marks v live in the current epoch and reports whether this was v's
// first visit since Begin.
func (s *Stamp) Visit(v int32) bool {
	if s.marks[v] == s.epoch {
		return false
	}
	s.marks[v] = s.epoch
	return true
}

// Seen reports whether v has been visited in the current epoch.
func (s *Stamp) Seen(v int32) bool { return s.marks[v] == s.epoch }

// Len returns the id range the stamp currently covers.
func (s *Stamp) Len() int { return len(s.marks) }
