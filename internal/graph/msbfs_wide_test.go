package graph

import (
	"math/rand"
	"testing"
)

// TestWideMSBFSMatchesScalarBFS drives the multi-word sweep at every word
// width, including the odd widths that leave the last word partially
// populated, against a scalar BFS per source.
func TestWideMSBFSMatchesScalarBFS(t *testing.T) {
	g := msbfsTestGraph(21, 500, 1100)
	s := NewMSBFSScratch()
	r := rand.New(rand.NewSource(23))
	for _, width := range []int{65, 100, 128, 129, 200, 255, 256} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumNodes()))
		}
		checkBatchMatchesScalar(t, g, s, sources)
	}
}

// TestWideMSBFSWidthReuse interleaves narrow and wide runs on one scratch:
// the strip width changes between epochs and stale mask words must never
// leak across runs.
func TestWideMSBFSWidthReuse(t *testing.T) {
	g := msbfsTestGraph(29, 300, 800)
	s := NewMSBFSScratch()
	r := rand.New(rand.NewSource(31))
	for _, width := range []int{256, 3, 130, 64, 200, 1} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumNodes()))
		}
		checkBatchMatchesScalar(t, g, s, sources)
	}
}

// TestRunLevelsMatchesRun pins the counts-only mode to the full run's level
// counts at one- and multi-word widths.
func TestRunLevelsMatchesRun(t *testing.T) {
	g := msbfsTestGraph(37, 400, 900)
	full, lean := NewMSBFSScratch(), NewMSBFSScratch()
	r := rand.New(rand.NewSource(41))
	for _, width := range []int{1, 48, 64, 96, 192, 256} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumNodes()))
		}
		full.Run(g, sources)
		lean.RunLevels(g, sources)
		for i := range sources {
			want, got := full.LevelCounts(i), lean.LevelCounts(i)
			if len(want) != len(got) {
				t.Fatalf("width %d source %d: %d levels, want %d", width, i, len(got), len(want))
			}
			for h := range want {
				if want[h] != got[h] {
					t.Fatalf("width %d source %d level %d: count %d, want %d",
						width, i, h, got[h], want[h])
				}
			}
		}
	}
}

// TestApproxDiameter checks the double-sweep estimate on shapes with known
// diameters: exact on paths (trees), and a valid lower bound that reaches
// the true value on small lattices.
func TestApproxDiameter(t *testing.T) {
	// Path of 50 nodes: diameter 49, double sweep is exact on trees.
	b := NewBuilder(50)
	for i := int32(0); i < 49; i++ {
		b.AddEdge(i, i+1)
	}
	if d := ApproxDiameter(b.Graph(), NewBFSScratch()); d != 49 {
		t.Fatalf("path diameter %d, want 49", d)
	}
	// 8x8 grid: diameter 14.
	grid := NewBuilder(64)
	at := func(r, c int32) int32 { return r*8 + c }
	for r := int32(0); r < 8; r++ {
		for c := int32(0); c < 8; c++ {
			if c+1 < 8 {
				grid.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < 8 {
				grid.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	if d := ApproxDiameter(grid.Graph(), NewBFSScratch()); d != 14 {
		t.Fatalf("grid diameter %d, want 14", d)
	}
	if d := ApproxDiameter(&Graph{}, NewBFSScratch()); d != 0 {
		t.Fatalf("empty diameter %d, want 0", d)
	}
}
