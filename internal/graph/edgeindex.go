package graph

import "sort"

// EdgeIndex assigns every undirected edge a dense id in [0, NumEdges()), in
// the (U, V) order of Edges(), straight off the CSR: id(u, v) is the rank
// of v among u's higher-numbered neighbors plus u's prefix of up-edges.
// Dense ids replace the map[packed-pair] lookups the sweep metrics used to
// pay on every path hop — a lookup is one binary search over one adjacency
// list, and per-edge state (coverage marks, accumulators) becomes a flat
// array. The index is immutable after construction and safe for concurrent
// readers.
type EdgeIndex struct {
	g       *Graph
	upStart []int32 // index into adj of u's first neighbor > u
	base    []int32 // edge id of u's first up-edge; base[n] == NumEdges()
}

// NewEdgeIndex builds the index in one CSR pass.
func NewEdgeIndex(g *Graph) *EdgeIndex {
	n := g.NumNodes()
	ix := &EdgeIndex{g: g, upStart: make([]int32, n), base: make([]int32, n+1)}
	for u := int32(0); u < int32(n); u++ {
		nb := g.Neighbors(u)
		// Adjacency is sorted ascending: the up-neighbors are the tail.
		lo := sort.Search(len(nb), func(i int) bool { return nb[i] > u })
		ix.upStart[u] = g.off[u] + int32(lo)
		ix.base[u+1] = ix.base[u] + int32(len(nb)-lo)
	}
	return ix
}

// NumEdges returns the number of indexed edges.
func (ix *EdgeIndex) NumEdges() int { return int(ix.base[len(ix.base)-1]) }

// ID returns the dense id of edge {u, v}, or -1 if the graph has no such
// edge. Orientation does not matter.
func (ix *EdgeIndex) ID(u, v int32) int32 {
	if u > v {
		u, v = v, u
	}
	lo, hi := ix.upStart[u], ix.g.off[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.g.adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == ix.g.off[u+1] || ix.g.adj[lo] != v {
		return -1
	}
	return ix.base[u] + (lo - ix.upStart[u])
}

// ArcIDs returns a per-arc edge-id table parallel to the CSR adjacency:
// for the arc at position p in node u's adjacency slice, out[p] is
// ID(u, neighbor). One O(n+m) pass, no searches: up-arcs read their id
// straight off the (base, upStart) prefix sums, and each down-arc is the
// reverse of an up-arc that arrives in exactly the adjacency-prefix order
// (adjacency is ascending, and up-arcs are visited in ascending u), so a
// per-node cursor scatters the reverse ids sequentially. The table lets
// tight sweep loops trade the per-hop binary search of ID for one array
// read.
func (ix *EdgeIndex) ArcIDs() []uint32 {
	g := ix.g
	n := int32(g.NumNodes())
	out := make([]uint32, len(g.adj))
	cur := make([]int32, n)
	for v := int32(0); v < n; v++ {
		cur[v] = g.off[v]
	}
	for u := int32(0); u < n; u++ {
		for pos := ix.upStart[u]; pos < g.off[u+1]; pos++ {
			v := g.adj[pos]
			id := uint32(ix.base[u] + (pos - ix.upStart[u]))
			out[pos] = id
			out[cur[v]] = id
			cur[v]++
		}
	}
	return out
}

// Edge returns the (U, V) endpoints of the edge with the given id — the
// inverse of ID, one binary search over the per-node prefix sums.
func (ix *EdgeIndex) Edge(id int32) Edge {
	u := sort.Search(len(ix.base)-1, func(i int) bool { return ix.base[i+1] > id })
	pos := ix.upStart[u] + (id - ix.base[u])
	return Edge{U: int32(u), V: ix.g.adj[pos]}
}
