package graph_test

import (
	"fmt"

	"topocmp/internal/graph"
)

func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Graph()
	fmt.Println(g.NumNodes(), g.NumEdges(), g.AvgDegree())
	// Output: 4 4 2
}

func ExampleGraph_BFS() {
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	dist, _ := b.Graph().BFS(0)
	fmt.Println(dist)
	// Output: [0 1 2 3 4]
}

func ExampleGraph_Core() {
	// A triangle with a two-hop tail: the core strips the tail.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	core, orig := b.Graph().Core()
	fmt.Println(core.NumNodes(), orig)
	// Output: 3 [0 1 2]
}
