package graph

import (
	"math/rand"
	"testing"
)

// msbfsTestGraph builds a sparse random graph; leaving isolated nodes and
// multiple components in is deliberate, the kernel must handle both.
func msbfsTestGraph(seed int64, n, edges int) *Graph {
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Graph()
}

// checkBatchMatchesScalar verifies one Run against a scalar BFS per source:
// every distance row, level-count row, eccentricity and reach count.
func checkBatchMatchesScalar(t *testing.T, g *Graph, s *MSBFSScratch, sources []int32) {
	t.Helper()
	s.Run(g, sources)
	if s.NumSources() != len(sources) {
		t.Fatalf("NumSources = %d, want %d", s.NumSources(), len(sources))
	}
	for i, src := range sources {
		dist, order := g.BFS(src)
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if got := s.Dist(i, v); got != dist[v] {
				t.Fatalf("source %d (%d): Dist(%d) = %d, want %d", i, src, v, got, dist[v])
			}
		}
		ecc := int(dist[order[len(order)-1]])
		if got := s.Eccentricity(i); got != ecc {
			t.Fatalf("source %d (%d): eccentricity %d, want %d", i, src, got, ecc)
		}
		if got := s.Reached(i); got != len(order) {
			t.Fatalf("source %d (%d): reached %d, want %d", i, src, got, len(order))
		}
		want := make([]int32, ecc+1)
		for _, v := range order {
			want[dist[v]]++
		}
		lc := s.LevelCounts(i)
		if len(lc) != len(want) {
			t.Fatalf("source %d (%d): %d levels, want %d", i, src, len(lc), len(want))
		}
		for h := range want {
			if lc[h] != want[h] {
				t.Fatalf("source %d (%d): level %d count %d, want %d", i, src, h, lc[h], want[h])
			}
		}
	}
}

func TestMSBFSMatchesScalarBFS(t *testing.T) {
	g := msbfsTestGraph(7, 300, 700) // sparse: isolated nodes + several components
	s := NewMSBFSScratch()
	r := rand.New(rand.NewSource(9))
	for _, width := range []int{1, 2, 7, 63, 64} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumNodes()))
		}
		checkBatchMatchesScalar(t, g, s, sources)
	}
}

// TestMSBFSScratchReuse reruns one scratch across graphs of different sizes
// and shapes; the epoch stamping must isolate every run.
func TestMSBFSScratchReuse(t *testing.T) {
	s := NewMSBFSScratch()
	big := msbfsTestGraph(1, 400, 1200)
	small := msbfsTestGraph(2, 50, 60)
	checkBatchMatchesScalar(t, big, s, []int32{0, 17, 399})
	checkBatchMatchesScalar(t, small, s, []int32{0, 1, 2, 49})
	checkBatchMatchesScalar(t, big, s, []int32{399, 17, 0, 5})
}

// TestMSBFSDuplicateSources: the same node may carry several source bits.
func TestMSBFSDuplicateSources(t *testing.T) {
	g := msbfsTestGraph(3, 120, 300)
	s := NewMSBFSScratch()
	checkBatchMatchesScalar(t, g, s, []int32{5, 5, 9, 5})
}

func TestMSBFSBatchWidthPanics(t *testing.T) {
	g := msbfsTestGraph(4, 80, 160)
	s := NewMSBFSScratch()
	for _, sources := range [][]int32{nil, make([]int32, MSBFSMaxWidth+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Run with %d sources did not panic", len(sources))
				}
			}()
			s.Run(g, sources)
		}()
	}
}

// TestBallScratchMatchesBFS pins the scratch-backed Graph.Ball (and the
// BFSScratch.Ball primitive beneath it) to the distances of a full BFS.
func TestBallScratchMatchesBFS(t *testing.T) {
	g := msbfsTestGraph(11, 200, 500)
	s := NewBFSScratch()
	for _, src := range []int32{0, 3, 77, 199} {
		dist, _ := g.BFS(src)
		for h := 0; h <= 6; h++ {
			want := []int32{}
			prev := int32(-1)
			for _, v := range g.Ball(src, h) {
				want = append(want, v)
				if dist[v] > int32(h) {
					t.Fatalf("src %d h %d: node %d at distance %d in ball", src, h, v, dist[v])
				}
				if dist[v] < prev {
					t.Fatalf("src %d h %d: ball not in BFS order", src, h)
				}
				prev = dist[v]
			}
			inBall := 0
			for v := int32(0); v < int32(g.NumNodes()); v++ {
				if dist[v] != Unreached && int(dist[v]) <= h {
					inBall++
				}
			}
			if len(want) != inBall {
				t.Fatalf("src %d h %d: ball has %d nodes, want %d", src, h, len(want), inBall)
			}
			scratch := s.Ball(g, src, h)
			if len(scratch) != len(want) {
				t.Fatalf("src %d h %d: scratch ball %d nodes, Graph.Ball %d", src, h, len(scratch), len(want))
			}
			for i := range scratch {
				if scratch[i] != want[i] {
					t.Fatalf("src %d h %d: scratch ball diverges at %d", src, h, i)
				}
			}
		}
	}
}
