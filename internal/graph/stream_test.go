package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// requireSameGraph asserts two graphs have byte-identical CSR arrays.
func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("node count: want %d, got %d", want.NumNodes(), got.NumNodes())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("edge count: want %d, got %d", want.NumEdges(), got.NumEdges())
	}
	if !reflect.DeepEqual(want.off, got.off) {
		t.Fatalf("offset arrays differ")
	}
	if !reflect.DeepEqual(want.adj, got.adj) {
		t.Fatalf("adjacency arrays differ")
	}
	if want.Fingerprint() != got.Fingerprint() {
		t.Fatalf("fingerprints differ on identical CSR")
	}
}

// TestStreamBuilderMatchesMapBuilder pushes randomized edge multisets —
// duplicates, self-loops, isolated nodes — through both builders and
// requires identical CSR output.
func TestStreamBuilderMatchesMapBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		edges := r.Intn(4 * n)
		mb := NewBuilder(n)
		sb := NewStreamBuilder(n)
		for i := 0; i < edges; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n)) // may equal u: self-loop dropped by both
			mb.AddEdge(u, v)
			sb.AddEdge(u, v)
			if r.Intn(3) == 0 { // duplicate, possibly flipped
				mb.AddEdge(v, u)
				sb.AddEdge(v, u)
			}
		}
		requireSameGraph(t, mb.Graph(), sb.Graph())
	}
}

func TestStreamBuilderEmptyAndTiny(t *testing.T) {
	requireSameGraph(t, NewBuilder(0).Graph(), NewStreamBuilder(0).Graph())
	requireSameGraph(t, NewBuilder(5).Graph(), NewStreamBuilder(5).Graph())

	mb, sb := NewBuilder(2), NewStreamBuilder(2)
	for i := 0; i < 3; i++ {
		mb.AddEdge(0, 1)
		sb.AddEdge(1, 0)
	}
	g := sb.Graph()
	if g.NumEdges() != 1 {
		t.Fatalf("dedup: want 1 edge, got %d", g.NumEdges())
	}
	requireSameGraph(t, mb.Graph(), g)
}

func TestStreamBuilderNeighborsSorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 500
	b := NewStreamBuilder(n)
	b.Reserve(3 * n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := b.Graph()
	for v := int32(0); v < int32(n); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("node %d: neighbors not strictly sorted: %v", v, nb)
			}
		}
	}
}

// TestStreamBuilderReusableAfterFreeze freezes, adds more edges, freezes
// again — mirroring the map builder's freeze-then-continue contract.
func TestStreamBuilderReusableAfterFreeze(t *testing.T) {
	b := NewStreamBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g1 := b.Graph()
	if g1.NumEdges() != 2 {
		t.Fatalf("first freeze: want 2 edges, got %d", g1.NumEdges())
	}
	b.AddEdge(2, 3)
	b.AddEdge(0, 1) // duplicate of an already-frozen edge
	g2 := b.Graph()
	if g2.NumEdges() != 3 {
		t.Fatalf("second freeze: want 3 edges, got %d", g2.NumEdges())
	}
	if !g2.HasEdge(2, 3) || !g2.HasEdge(0, 1) {
		t.Fatalf("second freeze lost edges")
	}
}

func TestStreamBuilderEnsureNodes(t *testing.T) {
	b := NewStreamBuilder(0)
	b.EnsureNodes(2)
	b.AddEdge(0, 1)
	b.EnsureNodes(5) // trailing isolated nodes survive
	g := b.Graph()
	if g.NumNodes() != 5 || g.NumEdges() != 1 {
		t.Fatalf("want 5 nodes / 1 edge, got %d / %d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(4) != 0 {
		t.Fatalf("node 4 should be isolated")
	}
}

func TestStreamBuilderRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range AddEdge did not panic")
		}
	}()
	NewStreamBuilder(3).AddEdge(0, 3)
}

func TestFingerprintDistinguishes(t *testing.T) {
	a := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	b := FromEdges(3, []Edge{{0, 1}, {0, 2}})
	c := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("different graphs share a fingerprint")
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatalf("identical graphs disagree")
	}
}
