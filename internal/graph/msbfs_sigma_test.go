package graph

import (
	"math/rand"
	"testing"
)

// checkSigmaMatchesScalar verifies one RunSigma against a scalar
// BFSScratch.Counts per source: every distance row and every path count.
func checkSigmaMatchesScalar(t *testing.T, g *Graph, s *MSBFSScratch, sources []int32) {
	t.Helper()
	s.RunSigma(g, sources)
	if s.NumSources() != len(sources) {
		t.Fatalf("NumSources = %d, want %d", s.NumSources(), len(sources))
	}
	sc := NewBFSScratch()
	n := int32(g.NumNodes())
	for i, src := range sources {
		sc.Counts(g, src)
		drow, srow := s.DistRow(i), s.SigmaRow(i)
		for v := int32(0); v < n; v++ {
			if got, want := drow[v], sc.Dist(v); got != want {
				t.Fatalf("source %d (%d): dist[%d] = %d, want %d", i, src, v, got, want)
			}
			if got, want := srow[v], sc.Sigma(v); got != want {
				t.Fatalf("source %d (%d): sigma[%d] = %v, want %v", i, src, v, got, want)
			}
			// The guarded accessor must agree with the raw row.
			if got := s.Dist(i, v); got != drow[v] {
				t.Fatalf("source %d (%d): Dist(%d) = %d, row says %d", i, src, v, got, drow[v])
			}
		}
	}
}

func TestRunSigmaMatchesScalarCounts(t *testing.T) {
	g := msbfsTestGraph(11, 300, 700) // isolated nodes + several components
	s := NewMSBFSScratch()
	r := rand.New(rand.NewSource(13))
	for _, width := range []int{1, 2, 63, 64, 65, 128, 130, 256} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(g.NumNodes()))
		}
		checkSigmaMatchesScalar(t, g, s, sources)
	}
}

func TestRunSigmaDuplicateSources(t *testing.T) {
	g := msbfsTestGraph(17, 120, 300)
	s := NewMSBFSScratch()
	// Lanes are independent: the same source twice in one strip must yield
	// two identical rows, including across the one-word/multi-word split.
	for _, width := range []int{6, 70} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32((i % 3) * 5) // heavy duplication
		}
		checkSigmaMatchesScalar(t, g, s, sources)
	}
}

func TestRunSigmaAfterRunAndBack(t *testing.T) {
	g := msbfsTestGraph(19, 150, 400)
	s := NewMSBFSScratch()
	// Interleave plain runs and sigma runs on one scratch: the epoch reset
	// and the pre-filled rows must not leak state between modes.
	checkSigmaMatchesScalar(t, g, s, []int32{0, 3, 9})
	s.Run(g, []int32{1, 2})
	checkSigmaMatchesScalar(t, g, s, []int32{4, 4, 7, 0})
	s.RunLevels(g, []int32{5})
	checkSigmaMatchesScalar(t, g, s, []int32{8})
}

func TestSigmaRowPanicsWithoutRunSigma(t *testing.T) {
	g := msbfsTestGraph(23, 40, 80)
	s := NewMSBFSScratch()
	s.Run(g, []int32{0})
	defer func() {
		if recover() == nil {
			t.Fatal("SigmaRow after Run did not panic")
		}
	}()
	s.SigmaRow(0)
}

// scalarDirectedCounts is a reference BFS-with-counts over a raw directed
// CSR, mirroring BFSScratch.Counts' queue-order accumulation.
func scalarDirectedCounts(n int, off, adj []int32, src int32) ([]int32, []float64) {
	dist := make([]int32, n)
	sigma := make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[src], sigma[src] = 0, 1
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range adj[off[u]:off[u+1]] {
			if dist[v] == Unreached {
				dist[v] = du + 1
				queue = append(queue, v)
			}
			if dist[v] == du+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	return dist, sigma
}

func TestRunSigmaCSRDirected(t *testing.T) {
	// A directed CSR the Graph type cannot express: a layered DAG with
	// cross arcs plus a back edge, so shortest-path counts multiply.
	r := rand.New(rand.NewSource(29))
	const n, layers = 260, 13
	per := n / layers
	var heads [][]int32
	for u := 0; u < n; u++ {
		layer := u / per
		var hs []int32
		if layer+1 < layers {
			for k := 0; k < 3; k++ {
				hs = append(hs, int32((layer+1)*per+r.Intn(per)))
			}
		}
		if layer > 1 && r.Intn(4) == 0 {
			hs = append(hs, int32(r.Intn(per))) // back arc to layer 0
		}
		heads = append(heads, hs)
	}
	off := make([]int32, n+1)
	var adj []int32
	for u := 0; u < n; u++ {
		off[u] = int32(len(adj))
		adj = append(adj, heads[u]...)
	}
	off[n] = int32(len(adj))

	s := NewMSBFSScratch()
	for _, width := range []int{1, 5, 64, 96} {
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(r.Intn(n))
		}
		s.RunSigmaCSR(n, off, adj, sources)
		for i, src := range sources {
			wantDist, wantSigma := scalarDirectedCounts(n, off, adj, src)
			drow, srow := s.DistRow(i), s.SigmaRow(i)
			for v := 0; v < n; v++ {
				if drow[v] != wantDist[v] {
					t.Fatalf("width %d source %d (%d): dist[%d] = %d, want %d", width, i, src, v, drow[v], wantDist[v])
				}
				if srow[v] != wantSigma[v] {
					t.Fatalf("width %d source %d (%d): sigma[%d] = %v, want %v", width, i, src, v, srow[v], wantSigma[v])
				}
			}
		}
	}
}
