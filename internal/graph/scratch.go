package graph

import (
	"slices"
	"sync"
)

// bfsScratchPool backs the Graph convenience traversals (Ball,
// Eccentricity) so their steady-state cost is the traversal itself, not
// fresh dist/order arrays per call. Hot loops should still hold their own
// scratch (or batch through MSBFSScratch); the pool only serves the
// one-shot entry points.
var bfsScratchPool = sync.Pool{New: func() any { return NewBFSScratch() }}

// BFSScratch holds reusable buffers for repeated breadth-first traversals so
// steady-state BFS is allocation-free. Visited-ness is epoch-stamped: each
// traversal bumps an epoch counter instead of clearing the arrays, so
// starting a traversal costs O(1) rather than O(N).
//
// A scratch is not safe for concurrent use; give each worker its own. The
// results of a traversal (Order, Dist, Sigma) are owned by the scratch and
// valid only until the next traversal.
type BFSScratch struct {
	live  Stamp // v reached in the current traversal
	dist  []int32
	sigma []float64 // shortest-path counts, valid where stamped (Counts only)
	order []int32
}

// NewBFSScratch returns an empty scratch; buffers grow on first use.
func NewBFSScratch() *BFSScratch { return &BFSScratch{} }

// begin sizes the buffers for an n-node graph and opens a new epoch.
func (s *BFSScratch) begin(n int) {
	if s.live.Begin(n) {
		s.dist = make([]int32, n)
		if s.sigma != nil {
			s.sigma = make([]float64, n)
		}
		s.order = make([]int32, 0, n)
	}
	s.order = s.order[:0]
}

// BFS runs a traversal from src and returns the reached nodes in visit
// order (src first). Distances are available through Dist until the next
// traversal.
func (s *BFSScratch) BFS(g *Graph, src int32) []int32 {
	s.begin(g.NumNodes())
	s.live.Visit(src)
	s.dist[src] = 0
	s.order = append(s.order, src)
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		for _, v := range g.Neighbors(u) {
			if s.live.Visit(v) {
				s.dist[v] = du + 1
				s.order = append(s.order, v)
			}
		}
	}
	return s.order
}

// Counts runs a traversal from src that also accumulates the number of
// distinct shortest paths to every reached node (the sigma values of
// Graph.BFSCounts), available through Sigma until the next traversal.
func (s *BFSScratch) Counts(g *Graph, src int32) []int32 {
	s.begin(g.NumNodes())
	if len(s.sigma) < s.live.Len() {
		s.sigma = make([]float64, s.live.Len())
	}
	s.live.Visit(src)
	s.dist[src] = 0
	s.sigma[src] = 1
	s.order = append(s.order, src)
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		for _, v := range g.Neighbors(u) {
			if s.live.Visit(v) {
				s.dist[v] = du + 1
				s.sigma[v] = 0
				s.order = append(s.order, v)
			}
			if s.dist[v] == du+1 {
				s.sigma[v] += s.sigma[u]
			}
		}
	}
	return s.order
}

// Ball runs a traversal from src bounded at h hops and returns the nodes
// within h hops (including src) in BFS order. Like BFS, the returned slice
// is owned by the scratch and valid only until the next traversal, and
// distances are available through Dist.
func (s *BFSScratch) Ball(g *Graph, src int32, h int) []int32 {
	s.begin(g.NumNodes())
	s.live.Visit(src)
	s.dist[src] = 0
	s.order = append(s.order, src)
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		du := s.dist[u]
		if int(du) >= h {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if s.live.Visit(v) {
				s.dist[v] = du + 1
				s.order = append(s.order, v)
			}
		}
	}
	return s.order
}

// Dist returns v's hop distance in the last traversal, or Unreached.
func (s *BFSScratch) Dist(v int32) int32 {
	if !s.live.Seen(v) {
		return Unreached
	}
	return s.dist[v]
}

// Sigma returns v's shortest-path count in the last Counts traversal, or 0
// for unreached nodes.
func (s *BFSScratch) Sigma(v int32) float64 {
	if !s.live.Seen(v) {
		return 0
	}
	return s.sigma[v]
}

// Rows returns the raw distance and path-count rows backing the last Counts
// traversal, for hot loops that index them directly instead of paying the
// per-read epoch guard of Dist/Sigma. Entries are valid only at nodes that
// traversal reached — stale values persist elsewhere, so callers must gate
// on reachability (via Dist or the returned order) before indexing. Owned by
// the scratch until the next traversal.
func (s *BFSScratch) Rows() (dist []int32, sigma []float64) {
	return s.dist, s.sigma
}

// SubgraphScratch builds induced subgraphs repeatedly without the per-call
// hash maps of Graph.Subgraph. Like BFSScratch it is epoch-stamped and not
// safe for concurrent use.
type SubgraphScratch struct {
	live Stamp
	idx  []int32 // local id of stamped nodes
}

// NewSubgraphScratch returns an empty scratch; buffers grow on first use.
func NewSubgraphScratch() *SubgraphScratch { return &SubgraphScratch{} }

func (s *SubgraphScratch) begin(n int) {
	if s.live.Begin(n) {
		s.idx = make([]int32, n)
	}
}

// Induced returns the subgraph induced by nodes (which must not contain
// duplicates); new node i corresponds to nodes[i]. The result is identical
// to g.Subgraph(nodes) but built directly in CSR form: the only allocations
// are the returned graph's own arrays.
func (s *SubgraphScratch) Induced(g *Graph, nodes []int32) *Graph {
	s.begin(g.NumNodes())
	for i, v := range nodes {
		s.live.Visit(v)
		s.idx[v] = int32(i)
	}
	k := len(nodes)
	off := make([]int32, k+1)
	for i, v := range nodes {
		d := int32(0)
		for _, w := range g.Neighbors(v) {
			if s.live.Seen(w) {
				d++
			}
		}
		off[i+1] = d
	}
	for i := 0; i < k; i++ {
		off[i+1] += off[i]
	}
	adj := make([]int32, off[k])
	for i, v := range nodes {
		c := off[i]
		for _, w := range g.Neighbors(v) {
			if s.live.Seen(w) {
				adj[c] = s.idx[w]
				c++
			}
		}
		// Source adjacency is sorted by original id; the BFS-order local ids
		// are not monotone in it, so restore the sorted-neighbor invariant.
		slices.Sort(adj[off[i]:c])
	}
	return &Graph{off: off, adj: adj, m: int(off[k]) / 2}
}
