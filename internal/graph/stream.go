package graph

import (
	"fmt"
	"slices"
)

// EdgeAdder is the minimal sink a generator streams edges into. Both
// Builder (map-backed, answers HasEdge mid-build) and StreamBuilder
// (append-only, dedups at freeze) implement it, so generation code that
// never queries membership can run on either.
type EdgeAdder interface {
	AddEdge(u, v int32)
}

var (
	_ EdgeAdder = (*Builder)(nil)
	_ EdgeAdder = (*StreamBuilder)(nil)
)

// StreamBuilder accumulates edges as packed uint64 keys in an append-only
// slice and normalizes — sort, in-place dedup, two-pass CSR fill — only at
// freeze. It holds 8 bytes per added edge (duplicates included) against the
// map Builder's ~50 bytes per distinct edge plus hash churn, which is what
// makes million-node generation fit in memory. The price is the missing
// HasEdge: generators that must test membership mid-build (BA's
// preferential attachment, Inet, BRITE, BT, the AS-level peering of
// internetsim) stay on Builder; everything else streams.
//
// Graph freezes to exactly the same CSR as Builder.Graph over the same edge
// multiset: sorted neighbor slices, self-loops and duplicates dropped.
type StreamBuilder struct {
	n    int
	keys []uint64
}

// NewStreamBuilder returns a streamed builder for a graph with n nodes.
func NewStreamBuilder(n int) *StreamBuilder {
	return &StreamBuilder{n: n}
}

// Reserve pre-sizes the key buffer for the given number of AddEdge calls so
// generators that know their edge budget (clone matching knows the stub
// count, Mesh knows its grid) build with a single allocation and no append
// doubling transients.
func (b *StreamBuilder) Reserve(edges int) {
	if edges > cap(b.keys)-len(b.keys) {
		grown := make([]uint64, len(b.keys), len(b.keys)+edges)
		copy(grown, b.keys)
		b.keys = grown
	}
}

// EnsureNodes raises the node count to at least n. Pipelines that mint node
// ids while streaming (the traceroute sweep, BGP graph extraction) call it
// as ids appear; ids already added stay valid.
func (b *StreamBuilder) EnsureNodes(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// It panics if either endpoint is out of range.
func (b *StreamBuilder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.keys = append(b.keys, edgeKey(u, v))
}

// NumNodes returns the current node count.
func (b *StreamBuilder) NumNodes() int { return b.n }

// PendingEdges returns the number of AddEdge calls buffered so far,
// duplicates included (distinct edges are only known at freeze).
func (b *StreamBuilder) PendingEdges() int { return len(b.keys) }

// Graph freezes the builder into an immutable Graph. The key buffer is
// sorted and dedup'd in place, then filled into CSR form in two streaming
// passes that emit every neighbor slice already sorted — no per-node sort:
//
//	pass 1 writes each key (u,v), u<v, into v's slice; for a fixed v the
//	sorted keys visit u in increasing order, so the lower-than-owner
//	neighbors land sorted. Pass 2 writes (u,v) into u's slice; for a fixed
//	u its keys are contiguous with v increasing, so the greater-than-owner
//	neighbors land sorted after the (all smaller) pass-1 entries.
//
// The offset array doubles as the fill cursor and is shifted back
// afterwards, so freeze allocates only off and adj beyond the key buffer.
// The builder remains usable afterwards: its keys are simply the dedup'd
// edge set, and further AddEdge calls append to it.
func (b *StreamBuilder) Graph() *Graph {
	slices.Sort(b.keys)
	b.keys = slices.Compact(b.keys)
	keys := b.keys
	m := len(keys)

	// Degree counts accumulate directly into off[v+1], then prefix-sum.
	off := make([]int32, b.n+1)
	for _, k := range keys {
		u, v := int32(k>>32), int32(uint32(k))
		off[u+1]++
		off[v+1]++
	}
	for i := 0; i < b.n; i++ {
		off[i+1] += off[i]
	}

	adj := make([]int32, off[b.n])
	// off[v] now serves as v's write cursor; after both passes it has
	// advanced by deg(v), i.e. to the original off[v+1].
	for _, k := range keys {
		u, v := int32(k>>32), int32(uint32(k))
		adj[off[v]] = u
		off[v]++
	}
	for _, k := range keys {
		u, v := int32(k>>32), int32(uint32(k))
		adj[off[u]] = v
		off[u]++
	}
	// Shift the cursors back into offsets: off[v] holds end(v) == start(v+1).
	copy(off[1:], off[:b.n])
	off[0] = 0
	return &Graph{off: off, adj: adj, m: m}
}

// Fingerprint returns a 64-bit FNV-1a hash over the graph's node count and
// CSR arrays. Two graphs with equal fingerprints are byte-identical in
// adjacency with overwhelming probability; the generator determinism tests
// and the streamed-vs-map golden tests compare these instead of full edge
// lists, so million-node graphs hash in one pass without materializing
// anything.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.NumNodes()))
	for _, o := range g.off {
		mix(uint64(uint32(o)))
	}
	for _, a := range g.adj {
		mix(uint64(uint32(a)))
	}
	return h
}
