package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	// node 3 isolated
	g := b.Graph()
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, "demo", func(v int32) string {
		if v == 0 {
			return `color="red"`
		}
		return ""
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "demo" {`, `0 [color="red"];`, "0 -- 1;", "1 -- 2;", "3;", "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1 -- 0") {
		t.Fatal("reverse edges should not be emitted")
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := NewBuilder(2)
	g.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := g.Graph().WriteDOT(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "G" {`) {
		t.Fatalf("default name missing:\n%s", buf.String())
	}
}
