// Package graph provides the undirected-graph substrate used throughout
// topocmp: a compact immutable adjacency representation, a builder that
// normalizes away self-loops and duplicate edges, breadth-first traversals
// (distances, shortest-path counts, balls), component analysis, induced
// subgraphs, core reduction, and degree statistics.
//
// Node identifiers are dense int32 values in [0, N). Graphs are immutable
// once constructed, which makes them safe for concurrent metric computation.
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph. The zero value is the empty
// graph.
type Graph struct {
	// off[i]..off[i+1] delimits node i's neighbor slice in adj.
	off []int32
	adj []int32
	m   int // number of undirected edges
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the neighbor slice of node v. The slice is shared with
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// CSR exposes the graph's compressed-sparse-row arrays — off has length
// NumNodes()+1 and node v's neighbors are adj[off[v]:off[v+1]], sorted
// ascending. The slices are the graph's internal storage and must not be
// modified; they exist so tight kernels (and arc-position tables like
// EdgeIndex.ArcIDs) can index arcs directly instead of re-deriving
// positions per Neighbors call.
func (g *Graph) CSR() (off, adj []int32) { return g.off, g.adj }

// AvgDegree returns the average node degree 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// MaxDegree returns the largest node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether an edge {u,v} exists. It runs in O(min deg) by
// binary search over the sorted neighbor slices.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int32 }

// Edges returns all edges with U < V, ordered by (U, V).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	return es
}

// Degrees returns a slice of node degrees indexed by node id.
func (g *Graph) Degrees() []int {
	ds := make([]int, g.NumNodes())
	for v := range ds {
		ds[v] = g.Degree(int32(v))
	}
	return ds
}

// DegreeHistogram returns counts[k] = number of nodes with degree k.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// Builder accumulates edges for a graph of a fixed node count. Self-loops
// and duplicate edges are silently dropped, matching the paper's handling of
// the "superfluous links" the PLRG matching can produce.
type Builder struct {
	n     int
	edges map[uint64]struct{}
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[uint64]struct{})}
}

func edgeKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// It panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.edges[edgeKey(u, v)] = struct{}{}
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	_, ok := b.edges[edgeKey(u, v)]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Graph freezes the builder into an immutable Graph with sorted neighbor
// slices. The builder remains usable afterwards.
func (b *Builder) Graph() *Graph {
	deg := make([]int32, b.n)
	for k := range b.edges {
		u, v := int32(k>>32), int32(uint32(k))
		deg[u]++
		deg[v]++
	}
	off := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		off[i+1] = off[i] + deg[i]
	}
	adj := make([]int32, off[b.n])
	pos := make([]int32, b.n)
	copy(pos, off[:b.n])
	for k := range b.edges {
		u, v := int32(k>>32), int32(uint32(k))
		adj[pos[u]] = v
		pos[u]++
		adj[pos[v]] = u
		pos[v]++
	}
	g := &Graph{off: off, adj: adj, m: len(b.edges)}
	for v := int32(0); v < int32(b.n); v++ {
		// slices.Sort (pdqsort on a concrete []int32) beats the sort.Slice
		// closure it replaced: no interface dispatch per comparison.
		slices.Sort(g.adj[g.off[v]:g.off[v+1]])
	}
	return g
}

// FromEdges constructs a graph with n nodes from an edge list. It runs on
// the streamed builder — an edge list needs no mid-build membership
// queries — and produces the same CSR a map Builder would.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewStreamBuilder(n)
	b.Reserve(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// Unreached marks nodes not reached by a traversal.
const Unreached = int32(math.MaxInt32)

// BFS computes hop distances from src. dist[v] == Unreached for nodes in
// other components. The returned queue buffer holds the visit order of the
// reached nodes (src first).
func (g *Graph) BFS(src int32) (dist []int32, order []int32) {
	n := g.NumNodes()
	dist = make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	order = make([]int32, 0, n)
	dist[src] = 0
	order = append(order, src)
	for head := 0; head < len(order); head++ {
		u := order[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = du + 1
				order = append(order, v)
			}
		}
	}
	return dist, order
}

// BFSCounts computes hop distances and the number of distinct shortest paths
// sigma[v] from src to every node (float64 to avoid overflow on dense
// shortest-path DAGs). order is the BFS visit order.
func (g *Graph) BFSCounts(src int32) (dist []int32, sigma []float64, order []int32) {
	n := g.NumNodes()
	dist = make([]int32, n)
	sigma = make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	order = make([]int32, 0, n)
	dist[src] = 0
	sigma[src] = 1
	order = append(order, src)
	for head := 0; head < len(order); head++ {
		u := order[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreached {
				dist[v] = du + 1
				order = append(order, v)
			}
			if dist[v] == du+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	return dist, sigma, order
}

// Ball returns the nodes within h hops of src (including src), in BFS order.
// The traversal runs on pooled epoch-stamped scratch; only the returned
// slice is allocated.
func (g *Graph) Ball(src int32, h int) []int32 {
	s := bfsScratchPool.Get().(*BFSScratch)
	ball := s.Ball(g, src, h)
	out := make([]int32, len(ball))
	copy(out, ball)
	bfsScratchPool.Put(s)
	return out
}

// Eccentricity returns the maximum finite BFS distance from src, i.e. the
// hop radius of src's component as seen from src. Runs on pooled scratch;
// sweeps over many sources should batch through MSBFSScratch instead.
func (g *Graph) Eccentricity(src int32) int {
	s := bfsScratchPool.Get().(*BFSScratch)
	order := s.BFS(g, src)
	ecc := int(s.Dist(order[len(order)-1]))
	bfsScratchPool.Put(s)
	return ecc
}

// Components labels each node with a component id and returns the labels and
// the size of each component.
func (g *Graph) Components() (label []int32, sizes []int) {
	n := g.NumNodes()
	label = make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if label[s] != -1 {
			continue
		}
		id := int32(len(sizes))
		label[s] = id
		queue = append(queue[:0], s)
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for _, v := range g.Neighbors(u) {
				if label[v] == -1 {
					label[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return label, sizes
}

// IsConnected reports whether the graph is connected (the empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	_, sizes := g.Components()
	return len(sizes) == 1
}

// LargestComponent returns the induced subgraph of the largest connected
// component plus the mapping orig[newID] = oldID. Ties break toward the
// component with the smallest minimum node id.
func (g *Graph) LargestComponent() (*Graph, []int32) {
	label, sizes := g.Components()
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	nodes := make([]int32, 0, sizes[best])
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if label[v] == int32(best) {
			nodes = append(nodes, v)
		}
	}
	sub := g.Subgraph(nodes)
	return sub, nodes
}

// Subgraph returns the subgraph induced by nodes, which must not contain
// duplicates. New node i corresponds to nodes[i]. Built directly in CSR
// form (the source graph is simple, so the induced graph needs no edge
// dedup); use a SubgraphScratch to amortize the index arrays across calls.
func (g *Graph) Subgraph(nodes []int32) *Graph {
	var s SubgraphScratch
	return s.Induced(g, nodes)
}

// Core returns the subgraph obtained by recursively removing degree-1 nodes
// (the "core topology" the paper uses for router-level link values), plus the
// mapping orig[newID] = oldID. Isolated nodes are removed as well.
func (g *Graph) Core() (*Graph, []int32) {
	n := g.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	var stack []int32
	for v := int32(0); v < int32(n); v++ {
		deg[v] = g.Degree(v)
		if deg[v] <= 1 {
			stack = append(stack, v)
			removed[v] = true
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Neighbors(u) {
			if removed[v] {
				continue
			}
			deg[v]--
			if deg[v] <= 1 {
				removed[v] = true
				stack = append(stack, v)
			}
		}
	}
	var nodes []int32
	for v := int32(0); v < int32(n); v++ {
		if !removed[v] {
			nodes = append(nodes, v)
		}
	}
	return g.Subgraph(nodes), nodes
}

// RemoveNodes returns the subgraph with the given nodes deleted, plus the
// orig mapping of the surviving nodes.
func (g *Graph) RemoveNodes(drop []int32) (*Graph, []int32) {
	gone := make([]bool, g.NumNodes())
	for _, v := range drop {
		gone[v] = true
	}
	var keep []int32
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if !gone[v] {
			keep = append(keep, v)
		}
	}
	return g.Subgraph(keep), keep
}

// KCore returns the maximal subgraph in which every node has degree >= k
// (the k-core), plus the mapping orig[newID] = oldID. KCore(2) equals
// Core().
func (g *Graph) KCore(k int) (*Graph, []int32) {
	n := g.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	var stack []int32
	for v := int32(0); v < int32(n); v++ {
		deg[v] = g.Degree(v)
		if deg[v] < k {
			stack = append(stack, v)
			removed[v] = true
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Neighbors(u) {
			if removed[v] {
				continue
			}
			deg[v]--
			if deg[v] < k {
				removed[v] = true
				stack = append(stack, v)
			}
		}
	}
	var nodes []int32
	for v := int32(0); v < int32(n); v++ {
		if !removed[v] {
			nodes = append(nodes, v)
		}
	}
	return g.Subgraph(nodes), nodes
}

// CoreNumbers returns each node's core number: the largest k such that the
// node belongs to the k-core. Computed by the standard peeling order.
func (g *Graph) CoreNumbers() []int {
	n := g.NumNodes()
	deg := make([]int, n)
	maxDeg := 0
	for v := int32(0); v < int32(n); v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree for O(V+E) peeling.
	buckets := make([][]int32, maxDeg+1)
	for v := int32(0); v < int32(n); v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	core := make([]int, n)
	processed := make([]bool, n)
	cur := make([]int, n)
	copy(cur, deg)
	k := 0
	for d := 0; d <= maxDeg; d++ {
		for i := 0; i < len(buckets[d]); i++ {
			v := buckets[d][i]
			if processed[v] || cur[v] != d {
				continue
			}
			if d > k {
				k = d
			}
			core[v] = k
			processed[v] = true
			for _, w := range g.Neighbors(v) {
				if !processed[w] && cur[w] > d {
					cur[w]--
					buckets[cur[w]] = append(buckets[cur[w]], w)
				}
			}
		}
	}
	return core
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edge endpoints (Newman's assortativity coefficient). Internet graphs are
// disassortative (hubs attach to leaves, r < 0); Barabási-Albert graphs
// are near-neutral. Returns 0 for graphs without edges or with uniform
// degrees.
func (g *Graph) DegreeAssortativity() float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	// Pearson over the 2m ordered endpoint pairs.
	var sxy, sx, sx2 float64
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			dv := float64(g.Degree(v))
			sxy += du * dv
			sx += du
			sx2 += du * du
		}
	}
	n2 := float64(2 * m)
	mean := sx / n2
	varr := sx2/n2 - mean*mean
	if varr == 0 {
		return 0
	}
	cov := sxy/n2 - mean*mean
	return cov / varr
}
