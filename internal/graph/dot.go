package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes the graph in Graphviz DOT format for visualization.
// attrs, if non-nil, supplies per-node attribute strings (e.g.
// `color="red"`); nodes with empty attributes are emitted only if they have
// no edges (DOT infers the rest).
func (g *Graph) WriteDOT(w io.Writer, name string, attrs func(v int32) string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n", name); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		var a string
		if attrs != nil {
			a = attrs(v)
		}
		switch {
		case a != "":
			fmt.Fprintf(bw, "  %d [%s];\n", v, a)
		case g.Degree(v) == 0:
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(bw, "  %d -- %d;\n", u, v)
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
