package graph

import (
	"fmt"
	"math/bits"
	"slices"
)

// BrandesWidth is the maximum number of sources one bit-parallel Brandes
// batch accumulates: one bit of a uint64 frontier word per source.
const BrandesWidth = MSBFSWordBits

// BrandesScratch runs batched Brandes betweenness accumulation: up to
// BrandesWidth sources advance through one shared MS-BFS level sweep, with
// per-source sigma (shortest-path count) and delta (dependency) rows laid
// out node-major so the per-level accumulation walks each adjacency list
// once per node instead of once per source.
//
// Instead of per-source distance rows, the sweep keeps one "bits of v at
// the previous level" mask per node (prev), ping-ponged with the mask of
// the level being built (curm): the predecessor test Brandes runs per
// (edge, source) collapses to a single AND against prev, and the backward
// sweep reloads prev per level from the recorded level events.
//
// Ordering contract: within every level, nodes are processed in increasing
// id, and each dependency term is evaluated as sigma[a]/sigma[v]*(1+delta[v])
// exactly as the scalar accumulation writes it. For any one (node, source)
// slot the contributing terms arrive level by level in adjacency order, so
// sigma values are exact integers in float64 matching any scalar order
// bit-for-bit; delta sums are added in the canonical (level desc, id asc,
// adjacency, bit asc) order, which can differ from a scalar per-source run
// in the last float ulps — consumers rank by betweenness, and the golden
// tests pin the ranks to the scalar path.
//
// Like the other scratch families the buffers are epoch-stamped
// (graph.Stamp), single-owner, and valid only until the next Accumulate.
type BrandesScratch struct {
	live     Stamp
	seen     []uint64  // bit i set ⇔ sources[i] has reached v
	next     []uint64  // frontier bits accumulated for the level being built
	prev     []uint64  // bits of v at the level below the one in flight
	curm     []uint64  // bits of v at the level in flight (swapped into prev)
	cur, nxt []int32   // active node lists for the level sweep
	sigma    []float64 // node-major rows: sigma[v*B+i], valid where seen
	delta    []float64
	levOff   []int32  // event ranges per level: events[levOff[h]:levOff[h+1]]
	levNode  []int32  // event node ids, ascending within a level
	levMask  []uint64 // fresh source bits of the event node
	width    int      // B of the current run
	n        int
}

// NewBrandesScratch returns an empty scratch; buffers grow on first use.
func NewBrandesScratch() *BrandesScratch { return &BrandesScratch{} }

func (b *BrandesScratch) begin(n, width int) {
	if b.live.Begin(n) {
		b.seen = make([]uint64, n)
		b.next = make([]uint64, n)
		b.prev = make([]uint64, n)
		b.curm = make([]uint64, n)
		b.cur = make([]int32, 0, n)
		b.nxt = make([]int32, 0, n)
	}
	if need := n * width; len(b.sigma) < need {
		b.sigma = make([]float64, need)
		b.delta = make([]float64, need)
	}
	b.levOff = b.levOff[:0]
	b.levNode = b.levNode[:0]
	b.levMask = b.levMask[:0]
	b.cur = b.cur[:0]
	b.width, b.n = width, n
}

// touch opens v's masks and zeroes its sigma/delta rows for this run.
func (b *BrandesScratch) touch(v int32) {
	if b.live.Visit(v) {
		b.seen[v] = 0
		b.next[v] = 0
		b.prev[v] = 0
		b.curm[v] = 0
		row := int(v) * b.width
		for i := 0; i < b.width; i++ {
			b.sigma[row+i] = 0
			b.delta[row+i] = 0
		}
	}
}

// Accumulate adds every source's Brandes dependency contributions into bc
// (which must have length g.NumNodes(); contributions are added, so callers
// accumulate across batches by looping). The batch size must be
// 1..BrandesWidth; a repeated source simply contributes once per occurrence,
// as a scalar loop over the same list would. A source's own bc entry
// receives no contribution from its own traversal, mirroring the scalar
// accumulation.
func (b *BrandesScratch) Accumulate(g *Graph, sources []int32, bc []float64) {
	if len(sources) == 0 || len(sources) > BrandesWidth {
		panic(fmt.Sprintf("graph: Brandes batch of %d sources, want 1..%d", len(sources), BrandesWidth))
	}
	n := g.NumNodes()
	B := len(sources)
	b.begin(n, B)

	// Level 0: seed the sources. prev carries each node's level-0 bits
	// while level 1 is built.
	for i, src := range sources {
		b.touch(src)
		if b.seen[src] == 0 {
			b.cur = append(b.cur, src)
		}
		b.seen[src] |= uint64(1) << uint(i)
		b.prev[src] |= uint64(1) << uint(i)
		b.sigma[int(src)*B+i] = 1
	}
	slices.Sort(b.cur)
	b.levOff = append(b.levOff, 0)
	for _, v := range b.cur {
		b.levNode = append(b.levNode, v)
		b.levMask = append(b.levMask, b.seen[v])
	}
	b.levOff = append(b.levOff, int32(len(b.levNode)))

	// Forward sweep: shared frontier expansion, then per-level sigma
	// accumulation in canonical (id asc, adjacency, bit asc) order. A
	// neighbor a is a predecessor of v for exactly the bits of prev[a].
	for len(b.cur) > 0 {
		b.nxt = b.nxt[:0]
		for _, u := range b.cur {
			fu := b.prev[u]
			for _, v := range g.Neighbors(u) {
				b.touch(v)
				add := fu &^ b.seen[v]
				if add == 0 {
					continue
				}
				if b.next[v] == 0 {
					b.nxt = append(b.nxt, v)
				}
				b.next[v] |= add
			}
		}
		slices.Sort(b.nxt)
		for _, v := range b.nxt {
			fresh := b.next[v]
			b.next[v] = 0
			b.seen[v] |= fresh
			b.curm[v] = fresh
			b.levNode = append(b.levNode, v)
			b.levMask = append(b.levMask, fresh)
			row := int(v) * B
			for _, a := range g.Neighbors(v) {
				arow := int(a) * B
				for m := b.prev[a] & fresh; m != 0; m &= m - 1 {
					i := bits.TrailingZeros64(m)
					b.sigma[row+i] += b.sigma[arow+i]
				}
			}
		}
		b.levOff = append(b.levOff, int32(len(b.levNode)))
		// Retire the finished level's masks and promote the fresh ones;
		// both arrays drain back to all-zero by the time the sweep ends.
		for _, u := range b.cur {
			b.prev[u] = 0
		}
		b.prev, b.curm = b.curm, b.prev
		b.cur, b.nxt = b.nxt, b.cur
	}

	// Backward sweep: dependency accumulation level by level, deepest
	// first, nodes ascending within a level. prev is reloaded per level
	// from the recorded events, so the predecessor test is again one AND.
	// Each term is written exactly as the scalar loop writes it.
	for h := len(b.levOff) - 2; h >= 1; h-- {
		for e := b.levOff[h-1]; e < b.levOff[h]; e++ {
			b.prev[b.levNode[e]] = b.levMask[e]
		}
		for e := b.levOff[h]; e < b.levOff[h+1]; e++ {
			v := b.levNode[e]
			row := int(v) * B
			fresh := b.levMask[e]
			for _, a := range g.Neighbors(v) {
				arow := int(a) * B
				for m := b.prev[a] & fresh; m != 0; m &= m - 1 {
					i := bits.TrailingZeros64(m)
					b.delta[arow+i] += b.sigma[arow+i] / b.sigma[row+i] * (1 + b.delta[row+i])
				}
			}
		}
		for e := b.levOff[h-1]; e < b.levOff[h]; e++ {
			b.prev[b.levNode[e]] = 0
		}
	}

	// Fold the delta rows into bc: node ascending, source bits ascending,
	// matching a scalar sweep that processes sources in index order.
	for v := int32(0); v < int32(n); v++ {
		if !b.live.Seen(v) {
			continue
		}
		row := int(v) * B
		for m := b.seen[v]; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if sources[i] != v {
				bc[v] += b.delta[row+i]
			}
		}
	}
}
