package graph

import (
	"fmt"
	"math/bits"
)

// MSBFSWordBits is the number of sources one uint64 mask word tracks.
const MSBFSWordBits = 64

// MSBFSMaxWords bounds the mask width: a batch uses W = ceil(sources/64)
// words per node, up to this many.
const MSBFSMaxWords = 4

// MSBFSWidth is the single-word batch width, kept as the conservative
// default for callers that size their own batches.
const MSBFSWidth = MSBFSWordBits

// MSBFSMaxWidth is the maximum number of sources one bit-parallel batch
// processes with multi-word masks.
const MSBFSMaxWidth = MSBFSWordBits * MSBFSMaxWords

// MSBFSScratch runs bit-parallel multi-source breadth-first traversals
// (MS-BFS style): up to MSBFSMaxWidth sources advance through one shared
// CSR sweep per level, tracked by per-node seen/frontier/next mask strips of
// W×uint64 where bit i (word i/64, bit i%64) belongs to sources[i]. The
// metric sweeps (expansion, eccentricity, path length, hop plots) are
// embarrassingly source-parallel but were paying one full adjacency scan
// per source; a batch pays one scan per level for the whole strip, which is
// what makes the paper-scale sweeps fast on a single core. W is chosen per
// Run from the batch size, so narrow batches keep the one-word fast path.
//
// Like BFSScratch, visited-ness is epoch-stamped through graph.Stamp: a run
// bumps an epoch instead of clearing the mask arrays, so starting a batch
// costs O(sources), not O(N). The same ownership rules apply: a scratch is
// not safe for concurrent use (give each worker its own), and every result
// accessor (Dist, LevelCounts, Reached, Eccentricity) reads buffers owned
// by the scratch that are valid only until the next run.
type MSBFSScratch struct {
	live     Stamp
	words    int       // mask strip width W of the current run
	seen     []uint64  // strided strips: word w of node v at [v*W+w]
	frontier []uint64  // bit i set ⇔ v entered i's frontier at the current level
	next     []uint64  // bits accumulated for the next level's frontier
	dist     []int32   // per-source distance rows: dist[i*n+v]; empty after RunLevels
	cur, nxt []int32   // active node lists for the level sweep
	counts   [][]int32 // counts[i][h] = nodes at distance exactly h from sources[i]
	nsrc     int
	n        int
}

// NewMSBFSScratch returns an empty scratch; buffers grow on first use.
func NewMSBFSScratch() *MSBFSScratch { return &MSBFSScratch{} }

// begin sizes the buffers for an n-node graph, nsrc sources (mask width
// words) and opens a new epoch.
func (s *MSBFSScratch) begin(n, nsrc int, withDist bool) {
	words := (nsrc + MSBFSWordBits - 1) / MSBFSWordBits
	if s.live.Begin(n) {
		s.cur = make([]int32, 0, n)
		s.nxt = make([]int32, 0, n)
	}
	if need := n * words; len(s.seen) < need {
		s.seen = make([]uint64, need)
		s.frontier = make([]uint64, need)
		s.next = make([]uint64, need)
	}
	s.words = words
	if withDist {
		if need := nsrc * n; cap(s.dist) < need {
			s.dist = make([]int32, need)
		} else {
			s.dist = s.dist[:need]
		}
	} else {
		s.dist = s.dist[:0]
	}
	for len(s.counts) < nsrc {
		s.counts = append(s.counts, nil)
	}
	for i := 0; i < nsrc; i++ {
		s.counts[i] = s.counts[i][:0]
	}
	s.cur = s.cur[:0]
	s.n, s.nsrc = n, nsrc
}

// touch opens v's mask strip for the current epoch.
func (s *MSBFSScratch) touch(v int32) {
	if s.live.Visit(v) {
		base := int(v) * s.words
		for w := 0; w < s.words; w++ {
			s.seen[base+w] = 0
			s.frontier[base+w] = 0
			s.next[base+w] = 0
		}
	}
}

// Run traverses g from all sources at once (1 to MSBFSMaxWidth of them; it
// panics otherwise). Afterwards Dist(i, v) is sources[i]'s hop distance to
// v and LevelCounts(i) its per-level reach counts, both valid until the
// next run. Distances are exactly those of a scalar BFS per source.
func (s *MSBFSScratch) Run(g *Graph, sources []int32) {
	s.run(g, sources, true)
}

// RunLevels is Run without the per-source distance rows: only the level
// counts (LevelCounts, Reached, Eccentricity) are filled, so wide batches
// skip the nsrc×n distance matrix entirely. Dist must not be called after
// RunLevels. The level counts are identical to Run's.
func (s *MSBFSScratch) RunLevels(g *Graph, sources []int32) {
	s.run(g, sources, false)
}

func (s *MSBFSScratch) run(g *Graph, sources []int32, withDist bool) {
	if len(sources) == 0 || len(sources) > MSBFSMaxWidth {
		panic(fmt.Sprintf("graph: MSBFS batch of %d sources, want 1..%d", len(sources), MSBFSMaxWidth))
	}
	n := g.NumNodes()
	s.begin(n, len(sources), withDist)
	W := s.words
	for i, src := range sources {
		word, bit := i/MSBFSWordBits, uint64(1)<<uint(i%MSBFSWordBits)
		s.touch(src)
		base := int(src) * W
		queued := false
		for w := 0; w < W; w++ {
			if s.frontier[base+w] != 0 {
				queued = true
				break
			}
		}
		if !queued {
			s.cur = append(s.cur, src)
		}
		s.seen[base+word] |= bit
		s.frontier[base+word] |= bit
		if withDist {
			s.dist[i*n+int(src)] = 0
		}
		s.counts[i] = append(s.counts[i], 1)
	}
	if W == 1 {
		s.sweepOne(g, withDist)
	} else {
		s.sweepWide(g, withDist)
	}
}

// sweepOne is the single-word level sweep (batches of up to 64 sources),
// kept free of the per-word strip loops.
func (s *MSBFSScratch) sweepOne(g *Graph, withDist bool) {
	n := s.n
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			fu := s.frontier[u]
			for _, v := range g.Neighbors(u) {
				s.touch(v)
				// seen is only updated when the level closes, so the same
				// node can collect frontier bits from several level-h
				// neighbors; next deduplicates them.
				add := fu &^ s.seen[v]
				if add == 0 {
					continue
				}
				if s.next[v] == 0 {
					s.nxt = append(s.nxt, v)
				}
				s.next[v] |= add
			}
		}
		for _, v := range s.nxt {
			fresh := s.next[v]
			s.next[v] = 0
			s.seen[v] |= fresh
			s.frontier[v] = fresh
			row := int(v)
			for m := fresh; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				if withDist {
					s.dist[i*n+row] = level
				}
				// A source's frontier drains monotonically, so its count
				// row is contiguous: level == len(row) on first touch.
				if len(s.counts[i]) <= int(level) {
					s.counts[i] = append(s.counts[i], 0)
				}
				s.counts[i][level]++
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// sweepWide is the multi-word level sweep: identical traversal with W-word
// mask strips per node.
func (s *MSBFSScratch) sweepWide(g *Graph, withDist bool) {
	n, W := s.n, s.words
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			ub := int(u) * W
			fu := s.frontier[ub : ub+W]
			for _, v := range g.Neighbors(u) {
				s.touch(v)
				vb := int(v) * W
				var had, added uint64
				for w := 0; w < W; w++ {
					had |= s.next[vb+w]
					add := fu[w] &^ s.seen[vb+w]
					s.next[vb+w] |= add
					added |= add
				}
				if added != 0 && had == 0 {
					s.nxt = append(s.nxt, v)
				}
			}
		}
		for _, v := range s.nxt {
			vb := int(v) * W
			row := int(v)
			for w := 0; w < W; w++ {
				fresh := s.next[vb+w]
				s.next[vb+w] = 0
				s.seen[vb+w] |= fresh
				s.frontier[vb+w] = fresh
				hi := w * MSBFSWordBits
				for m := fresh; m != 0; m &= m - 1 {
					i := hi + bits.TrailingZeros64(m)
					if withDist {
						s.dist[i*n+row] = level
					}
					if len(s.counts[i]) <= int(level) {
						s.counts[i] = append(s.counts[i], 0)
					}
					s.counts[i][level]++
				}
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// NumSources returns the batch width of the last run.
func (s *MSBFSScratch) NumSources() int { return s.nsrc }

// Dist returns v's hop distance from sources[i] in the last Run, or
// Unreached for nodes in other components. Only valid after Run (not
// RunLevels, which skips the distance rows).
func (s *MSBFSScratch) Dist(i int, v int32) int32 {
	if !s.live.Seen(v) {
		return Unreached
	}
	word, bit := i/MSBFSWordBits, uint64(1)<<uint(i%MSBFSWordBits)
	if s.seen[int(v)*s.words+word]&bit == 0 {
		return Unreached
	}
	return s.dist[i*s.n+int(v)]
}

// LevelCounts returns sources[i]'s per-level reach counts: counts[h] nodes
// sit at distance exactly h, and len(counts) is the source's eccentricity
// plus one. The slice is owned by the scratch and valid until the next run.
func (s *MSBFSScratch) LevelCounts(i int) []int32 { return s.counts[i] }

// Eccentricity returns sources[i]'s hop radius within its component.
func (s *MSBFSScratch) Eccentricity(i int) int { return len(s.counts[i]) - 1 }

// Reached returns how many nodes sources[i] reached, including itself.
func (s *MSBFSScratch) Reached(i int) int {
	total := 0
	for _, c := range s.counts[i] {
		total += int(c)
	}
	return total
}

// ApproxDiameter estimates g's diameter with a double BFS sweep (BFS from
// node 0, then from the farthest node found): a classic lower bound that is
// exact on trees and within a small factor on the paper's graphs. The
// batched kernels use it to route high-diameter graphs (lattices) onto the
// scalar path, where bit-parallel batching loses (mask traffic repeats per
// level while frontiers stay thin). Deterministic; costs two traversals on
// s's scratch.
func ApproxDiameter(g *Graph, s *BFSScratch) int {
	if g.NumNodes() == 0 {
		return 0
	}
	order := s.BFS(g, 0)
	far := order[len(order)-1]
	order = s.BFS(g, far)
	return int(s.Dist(order[len(order)-1]))
}
