package graph

import (
	"fmt"
	"math/bits"
)

// MSBFSWidth is the maximum number of sources one bit-parallel BFS batch
// processes: one bit of a uint64 mask per source.
const MSBFSWidth = 64

// MSBFSScratch runs bit-parallel multi-source breadth-first traversals
// (MS-BFS style): up to MSBFSWidth sources advance through one shared CSR
// sweep per level, tracked by per-node uint64 seen/frontier/next masks where
// bit i belongs to sources[i]. The metric sweeps (expansion, eccentricity,
// path length, hop plots) are embarrassingly source-parallel but were paying
// one full adjacency scan per source; a batch pays one scan per level for
// all 64, which is what makes the paper-scale sweeps fast on a single core.
//
// Like BFSScratch, visited-ness is epoch-stamped: a run bumps an epoch
// counter instead of clearing the mask arrays, so starting a batch costs
// O(sources), not O(N). The same ownership rules apply: a scratch is not
// safe for concurrent use (give each worker its own), and every result
// accessor (Dist, LevelCounts, Reached, Eccentricity) reads buffers owned
// by the scratch that are valid only until the next Run.
type MSBFSScratch struct {
	epoch    int32
	stamp    []int32   // stamp[v] == epoch ⇔ v's masks are live this run
	seen     []uint64  // bit i set ⇔ sources[i] has reached v
	frontier []uint64  // bit i set ⇔ v entered i's frontier at the current level
	next     []uint64  // bits accumulated for the next level's frontier
	dist     []int32   // per-source distance rows: dist[i*n+v], valid where seen
	cur, nxt []int32   // active node lists for the level sweep
	counts   [][]int32 // counts[i][h] = nodes at distance exactly h from sources[i]
	nsrc     int
	n        int
}

// NewMSBFSScratch returns an empty scratch; buffers grow on first use.
func NewMSBFSScratch() *MSBFSScratch { return &MSBFSScratch{} }

// begin sizes the buffers for an n-node graph and nsrc sources and opens a
// new epoch.
func (s *MSBFSScratch) begin(n, nsrc int) {
	if len(s.stamp) < n {
		s.stamp = make([]int32, n)
		s.seen = make([]uint64, n)
		s.frontier = make([]uint64, n)
		s.next = make([]uint64, n)
		s.cur = make([]int32, 0, n)
		s.nxt = make([]int32, 0, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch < 0 { // epoch wrapped: clear stamps and restart
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	if need := nsrc * n; cap(s.dist) < need {
		s.dist = make([]int32, need)
	} else {
		s.dist = s.dist[:need]
	}
	for len(s.counts) < nsrc {
		s.counts = append(s.counts, nil)
	}
	for i := 0; i < nsrc; i++ {
		s.counts[i] = s.counts[i][:0]
	}
	s.cur = s.cur[:0]
	s.n, s.nsrc = n, nsrc
}

// touch opens v's masks for the current epoch.
func (s *MSBFSScratch) touch(v int32) {
	if s.stamp[v] != s.epoch {
		s.stamp[v] = s.epoch
		s.seen[v] = 0
		s.frontier[v] = 0
		s.next[v] = 0
	}
}

// Run traverses g from all sources at once (1 to MSBFSWidth of them; it
// panics otherwise). Afterwards Dist(i, v) is sources[i]'s hop distance to
// v and LevelCounts(i) its per-level reach counts, both valid until the
// next Run. Distances are exactly those of a scalar BFS per source.
func (s *MSBFSScratch) Run(g *Graph, sources []int32) {
	if len(sources) == 0 || len(sources) > MSBFSWidth {
		panic(fmt.Sprintf("graph: MSBFS batch of %d sources, want 1..%d", len(sources), MSBFSWidth))
	}
	n := g.NumNodes()
	s.begin(n, len(sources))
	for i, src := range sources {
		bit := uint64(1) << uint(i)
		s.touch(src)
		if s.frontier[src] == 0 {
			s.cur = append(s.cur, src)
		}
		s.seen[src] |= bit
		s.frontier[src] |= bit
		s.dist[i*n+int(src)] = 0
		s.counts[i] = append(s.counts[i], 1)
	}
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			fu := s.frontier[u]
			for _, v := range g.Neighbors(u) {
				s.touch(v)
				// seen is only updated when the level closes, so the same
				// node can collect frontier bits from several level-h
				// neighbors; next deduplicates them.
				add := fu &^ s.seen[v]
				if add == 0 {
					continue
				}
				if s.next[v] == 0 {
					s.nxt = append(s.nxt, v)
				}
				s.next[v] |= add
			}
		}
		for _, v := range s.nxt {
			fresh := s.next[v]
			s.next[v] = 0
			s.seen[v] |= fresh
			s.frontier[v] = fresh
			row := int(v)
			for m := fresh; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				s.dist[i*n+row] = level
				// A source's frontier drains monotonically, so its count
				// row is contiguous: level == len(row) on first touch.
				if len(s.counts[i]) <= int(level) {
					s.counts[i] = append(s.counts[i], 0)
				}
				s.counts[i][level]++
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// NumSources returns the batch width of the last Run.
func (s *MSBFSScratch) NumSources() int { return s.nsrc }

// Dist returns v's hop distance from sources[i] in the last Run, or
// Unreached for nodes in other components.
func (s *MSBFSScratch) Dist(i int, v int32) int32 {
	if s.stamp[v] != s.epoch || s.seen[v]&(uint64(1)<<uint(i)) == 0 {
		return Unreached
	}
	return s.dist[i*s.n+int(v)]
}

// LevelCounts returns sources[i]'s per-level reach counts: counts[h] nodes
// sit at distance exactly h, and len(counts) is the source's eccentricity
// plus one. The slice is owned by the scratch and valid until the next Run.
func (s *MSBFSScratch) LevelCounts(i int) []int32 { return s.counts[i] }

// Eccentricity returns sources[i]'s hop radius within its component.
func (s *MSBFSScratch) Eccentricity(i int) int { return len(s.counts[i]) - 1 }

// Reached returns how many nodes sources[i] reached, including itself.
func (s *MSBFSScratch) Reached(i int) int {
	total := 0
	for _, c := range s.counts[i] {
		total += int(c)
	}
	return total
}
