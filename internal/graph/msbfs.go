package graph

import (
	"fmt"
	"math/bits"
)

// MSBFSWordBits is the number of sources one uint64 mask word tracks.
const MSBFSWordBits = 64

// MSBFSMaxWords bounds the mask width: a batch uses W = ceil(sources/64)
// words per node, up to this many.
const MSBFSMaxWords = 4

// MSBFSWidth is the single-word batch width, kept as the conservative
// default for callers that size their own batches.
const MSBFSWidth = MSBFSWordBits

// MSBFSMaxWidth is the maximum number of sources one bit-parallel batch
// processes with multi-word masks.
const MSBFSMaxWidth = MSBFSWordBits * MSBFSMaxWords

// MSBFSScratch runs bit-parallel multi-source breadth-first traversals
// (MS-BFS style): up to MSBFSMaxWidth sources advance through one shared
// CSR sweep per level, tracked by per-node seen/frontier/next mask strips of
// W×uint64 where bit i (word i/64, bit i%64) belongs to sources[i]. The
// metric sweeps (expansion, eccentricity, path length, hop plots) are
// embarrassingly source-parallel but were paying one full adjacency scan
// per source; a batch pays one scan per level for the whole strip, which is
// what makes the paper-scale sweeps fast on a single core. W is chosen per
// Run from the batch size, so narrow batches keep the one-word fast path.
//
// Like BFSScratch, visited-ness is epoch-stamped through graph.Stamp: a run
// bumps an epoch instead of clearing the mask arrays, so starting a batch
// costs O(sources), not O(N). The same ownership rules apply: a scratch is
// not safe for concurrent use (give each worker its own), and every result
// accessor (Dist, LevelCounts, Reached, Eccentricity) reads buffers owned
// by the scratch that are valid only until the next run.
type MSBFSScratch struct {
	live     Stamp
	words    int       // mask strip width W of the current run
	seen     []uint64  // strided strips: word w of node v at [v*W+w]
	frontier []uint64  // bit i set ⇔ v entered i's frontier at the current level
	next     []uint64  // bits accumulated for the next level's frontier
	dist     []int32   // per-source distance rows: dist[i*n+v]; empty after RunLevels
	sigma    []float64 // per-source path-count rows: sigma[i*n+v]; only after RunSigma
	// Node-major working buffers for the sigma sweeps (lane i of node v at
	// [v*nsrc+i]): a sigma push touches every active lane of one arc, so
	// node-major keeps those updates on adjacent words instead of scattering
	// them across nsrc distance-n rows — the difference between the kernel
	// streaming from cache and thrashing it on sparse graphs. Transposed
	// into the row-major dist/sigma rows once per run.
	distT    []int32
	sigT     []float64
	cur, nxt []int32   // active node lists for the level sweep
	counts   [][]int32 // counts[i][h] = nodes at distance exactly h from sources[i]
	nsrc     int
	n        int
	sigmaOK  bool // last run was RunSigma: row accessors are valid
}

// NewMSBFSScratch returns an empty scratch; buffers grow on first use.
func NewMSBFSScratch() *MSBFSScratch { return &MSBFSScratch{} }

// begin sizes the buffers for an n-node graph, nsrc sources (mask width
// words) and opens a new epoch.
func (s *MSBFSScratch) begin(n, nsrc int, withDist bool) {
	words := (nsrc + MSBFSWordBits - 1) / MSBFSWordBits
	if s.live.Begin(n) {
		s.cur = make([]int32, 0, n)
		s.nxt = make([]int32, 0, n)
	}
	if need := n * words; len(s.seen) < need {
		s.seen = make([]uint64, need)
		s.frontier = make([]uint64, need)
		s.next = make([]uint64, need)
	}
	s.words = words
	if withDist {
		if need := nsrc * n; cap(s.dist) < need {
			s.dist = make([]int32, need)
		} else {
			s.dist = s.dist[:need]
		}
	} else {
		s.dist = s.dist[:0]
	}
	for len(s.counts) < nsrc {
		s.counts = append(s.counts, nil)
	}
	for i := 0; i < nsrc; i++ {
		s.counts[i] = s.counts[i][:0]
	}
	s.cur = s.cur[:0]
	s.n, s.nsrc = n, nsrc
}

// touch opens v's mask strip for the current epoch.
func (s *MSBFSScratch) touch(v int32) {
	if s.live.Visit(v) {
		base := int(v) * s.words
		for w := 0; w < s.words; w++ {
			s.seen[base+w] = 0
			s.frontier[base+w] = 0
			s.next[base+w] = 0
		}
	}
}

// Run traverses g from all sources at once (1 to MSBFSMaxWidth of them; it
// panics otherwise). Afterwards Dist(i, v) is sources[i]'s hop distance to
// v and LevelCounts(i) its per-level reach counts, both valid until the
// next run. Distances are exactly those of a scalar BFS per source.
func (s *MSBFSScratch) Run(g *Graph, sources []int32) {
	s.run(g, sources, true)
}

// RunLevels is Run without the per-source distance rows: only the level
// counts (LevelCounts, Reached, Eccentricity) are filled, so wide batches
// skip the nsrc×n distance matrix entirely. Dist must not be called after
// RunLevels. The level counts are identical to Run's.
func (s *MSBFSScratch) RunLevels(g *Graph, sources []int32) {
	s.run(g, sources, false)
}

func (s *MSBFSScratch) run(g *Graph, sources []int32, withDist bool) {
	if len(sources) == 0 || len(sources) > MSBFSMaxWidth {
		panic(fmt.Sprintf("graph: MSBFS batch of %d sources, want 1..%d", len(sources), MSBFSMaxWidth))
	}
	n := g.NumNodes()
	s.begin(n, len(sources), withDist)
	s.sigmaOK = false
	W := s.words
	for i, src := range sources {
		word, bit := i/MSBFSWordBits, uint64(1)<<uint(i%MSBFSWordBits)
		s.touch(src)
		base := int(src) * W
		queued := false
		for w := 0; w < W; w++ {
			if s.frontier[base+w] != 0 {
				queued = true
				break
			}
		}
		if !queued {
			s.cur = append(s.cur, src)
		}
		s.seen[base+word] |= bit
		s.frontier[base+word] |= bit
		if withDist {
			s.dist[i*n+int(src)] = 0
		}
		s.counts[i] = append(s.counts[i], 1)
	}
	if W == 1 {
		s.sweepOne(g, withDist)
	} else {
		s.sweepWide(g, withDist)
	}
}

// RunSigma traverses g from all sources at once like Run, additionally
// propagating per-source shortest-path counts (Brandes' sigma) alongside the
// seen/frontier/next bitmasks: one CSR sweep per level replaces up to
// MSBFSMaxWidth scalar BFSScratch.Counts traversals. Afterwards DistRow(i)
// and SigmaRow(i) return sources[i]'s full distance and path-count rows —
// unlike Run, the rows are pre-filled (Unreached / 0), so they are valid at
// every node, reached or not. Level counts are not maintained (the rows
// subsume them); LevelCounts/Eccentricity/Reached panic until the next
// Run/RunLevels.
//
// Sigma values are exact: path counts are integers accumulated in float64,
// and integer sums below 2^53 are associative, so each count equals the
// scalar BFS's bit for bit regardless of accumulation order. Callers route
// graphs whose path counts could overflow that range (high-diameter
// lattices, whose binomial path counts explode) to the scalar path — the
// same graphs the diameter probe already excludes for performance.
func (s *MSBFSScratch) RunSigma(g *Graph, sources []int32) {
	s.runSigma(g.NumNodes(), g.off, g.adj, sources)
}

// RunSigmaCSR is RunSigma over a raw CSR given as off/adj slices, so
// callers with graphs outside the Graph type — the policy layer's directed
// valley-free product graph — batch through the same kernel. The CSR may be
// directed; len(off) must be n+1 and adj entries must lie in [0,n).
func (s *MSBFSScratch) RunSigmaCSR(n int, off, adj []int32, sources []int32) {
	if len(off) != n+1 {
		panic(fmt.Sprintf("graph: RunSigmaCSR offsets len %d, want n+1 = %d", len(off), n+1))
	}
	s.runSigma(n, off, adj, sources)
}

func (s *MSBFSScratch) runSigma(n int, off, adj []int32, sources []int32) {
	if len(sources) == 0 || len(sources) > MSBFSMaxWidth {
		panic(fmt.Sprintf("graph: MSBFS sigma batch of %d sources, want 1..%d", len(sources), MSBFSMaxWidth))
	}
	s.begin(n, len(sources), true)
	nsrc := len(sources)
	need := nsrc * n
	if cap(s.sigma) < need {
		s.sigma = make([]float64, need)
	} else {
		s.sigma = s.sigma[:need]
	}
	if cap(s.sigT) < need {
		s.sigT = make([]float64, need)
	} else {
		s.sigT = s.sigT[:need]
		clear(s.sigT)
	}
	if cap(s.distT) < need {
		s.distT = make([]int32, need)
	} else {
		s.distT = s.distT[:need]
	}
	// Pre-fill the working distances so the transposed rows are valid at
	// every node without the seen-mask guard Dist applies; one memset per
	// batch is noise next to the traversals the batch replaces.
	for i := range s.distT {
		s.distT[i] = Unreached
	}
	W := s.words
	for i, src := range sources {
		word, bit := i/MSBFSWordBits, uint64(1)<<uint(i%MSBFSWordBits)
		s.touch(src)
		base := int(src) * W
		queued := false
		for w := 0; w < W; w++ {
			if s.frontier[base+w] != 0 {
				queued = true
				break
			}
		}
		if !queued {
			s.cur = append(s.cur, src)
		}
		s.seen[base+word] |= bit
		s.frontier[base+word] |= bit
		s.distT[int(src)*nsrc+i] = 0
		s.sigT[int(src)*nsrc+i] = 1
	}
	if W == 1 {
		s.sweepOneSigma(off, adj)
	} else {
		s.sweepWideSigma(off, adj)
	}
	s.transposeSigma(n, nsrc)
	s.sigmaOK = true
}

// transposeSigma rewrites the node-major working buffers into the row-major
// DistRow/SigmaRow layout, tiled so both sides stay cache-resident. Pure
// data movement: per-lane values and their accumulation order are whatever
// the sweep produced, so rows are bit-identical to a row-major kernel's.
func (s *MSBFSScratch) transposeSigma(n, nsrc int) {
	const tile = 32
	for vb := 0; vb < n; vb += tile {
		vend := min(vb+tile, n)
		for ib := 0; ib < nsrc; ib += tile {
			iend := min(ib+tile, nsrc)
			for v := vb; v < vend; v++ {
				base := v * nsrc
				for i := ib; i < iend; i++ {
					s.dist[i*n+v] = s.distT[base+i]
					s.sigma[i*n+v] = s.sigT[base+i]
				}
			}
		}
	}
}

// sweepOne is the single-word level sweep (batches of up to 64 sources),
// kept free of the per-word strip loops.
func (s *MSBFSScratch) sweepOne(g *Graph, withDist bool) {
	n := s.n
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			fu := s.frontier[u]
			for _, v := range g.Neighbors(u) {
				s.touch(v)
				// seen is only updated when the level closes, so the same
				// node can collect frontier bits from several level-h
				// neighbors; next deduplicates them.
				add := fu &^ s.seen[v]
				if add == 0 {
					continue
				}
				if s.next[v] == 0 {
					s.nxt = append(s.nxt, v)
				}
				s.next[v] |= add
			}
		}
		for _, v := range s.nxt {
			fresh := s.next[v]
			s.next[v] = 0
			s.seen[v] |= fresh
			s.frontier[v] = fresh
			row := int(v)
			for m := fresh; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				if withDist {
					s.dist[i*n+row] = level
				}
				// A source's frontier drains monotonically, so its count
				// row is contiguous: level == len(row) on first touch.
				if len(s.counts[i]) <= int(level) {
					s.counts[i] = append(s.counts[i], 0)
				}
				s.counts[i][level]++
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// sweepWide is the multi-word level sweep: identical traversal with W-word
// mask strips per node.
func (s *MSBFSScratch) sweepWide(g *Graph, withDist bool) {
	n, W := s.n, s.words
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			ub := int(u) * W
			fu := s.frontier[ub : ub+W]
			for _, v := range g.Neighbors(u) {
				s.touch(v)
				vb := int(v) * W
				var had, added uint64
				for w := 0; w < W; w++ {
					had |= s.next[vb+w]
					add := fu[w] &^ s.seen[vb+w]
					s.next[vb+w] |= add
					added |= add
				}
				if added != 0 && had == 0 {
					s.nxt = append(s.nxt, v)
				}
			}
		}
		for _, v := range s.nxt {
			vb := int(v) * W
			row := int(v)
			for w := 0; w < W; w++ {
				fresh := s.next[vb+w]
				s.next[vb+w] = 0
				s.seen[vb+w] |= fresh
				s.frontier[vb+w] = fresh
				hi := w * MSBFSWordBits
				for m := fresh; m != 0; m &= m - 1 {
					i := hi + bits.TrailingZeros64(m)
					if withDist {
						s.dist[i*n+row] = level
					}
					if len(s.counts[i]) <= int(level) {
						s.counts[i] = append(s.counts[i], 0)
					}
					s.counts[i][level]++
				}
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// sweepOneSigma is sweepOne over a raw CSR with per-source sigma pushes: when
// the edge scan discovers v at the next level for source i (bit i in add), u
// is a shortest-path predecessor of v for i, so sigma_i(v) += sigma_i(u).
// seen only advances when the level closes, so every level-(h-1) predecessor
// contributes exactly once per edge before v's own sigma is ever read —
// matching the scalar queue-order accumulation in BFSScratch.Counts.
func (s *MSBFSScratch) sweepOneSigma(off, adj []int32) {
	nsrc := s.nsrc
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			fu := s.frontier[u]
			su := int(u) * nsrc
			for _, v := range adj[off[u]:off[u+1]] {
				s.touch(v)
				add := fu &^ s.seen[v]
				if add == 0 {
					continue
				}
				if s.next[v] == 0 {
					s.nxt = append(s.nxt, v)
				}
				s.next[v] |= add
				sv := int(v) * nsrc
				for m := add; m != 0; m &= m - 1 {
					i := bits.TrailingZeros64(m)
					s.sigT[sv+i] += s.sigT[su+i]
				}
			}
		}
		for _, v := range s.nxt {
			fresh := s.next[v]
			s.next[v] = 0
			s.seen[v] |= fresh
			s.frontier[v] = fresh
			row := int(v) * nsrc
			for m := fresh; m != 0; m &= m - 1 {
				s.distT[row+bits.TrailingZeros64(m)] = level
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// sweepWideSigma is the multi-word sigma sweep: sweepWide's strip walk with
// the same per-bit sigma pushes as sweepOneSigma.
func (s *MSBFSScratch) sweepWideSigma(off, adj []int32) {
	W, nsrc := s.words, s.nsrc
	for level := int32(1); len(s.cur) > 0; level++ {
		s.nxt = s.nxt[:0]
		for _, u := range s.cur {
			ub := int(u) * W
			fu := s.frontier[ub : ub+W]
			su := int(u) * nsrc
			for _, v := range adj[off[u]:off[u+1]] {
				s.touch(v)
				vb := int(v) * W
				sv := int(v) * nsrc
				var had, added uint64
				for w := 0; w < W; w++ {
					had |= s.next[vb+w]
					add := fu[w] &^ s.seen[vb+w]
					if add == 0 {
						continue
					}
					s.next[vb+w] |= add
					added |= add
					hi := w * MSBFSWordBits
					for m := add; m != 0; m &= m - 1 {
						i := hi + bits.TrailingZeros64(m)
						s.sigT[sv+i] += s.sigT[su+i]
					}
				}
				if added != 0 && had == 0 {
					s.nxt = append(s.nxt, v)
				}
			}
		}
		for _, v := range s.nxt {
			vb := int(v) * W
			row := int(v) * nsrc
			for w := 0; w < W; w++ {
				fresh := s.next[vb+w]
				s.next[vb+w] = 0
				s.seen[vb+w] |= fresh
				s.frontier[vb+w] = fresh
				hi := w * MSBFSWordBits
				for m := fresh; m != 0; m &= m - 1 {
					s.distT[row+hi+bits.TrailingZeros64(m)] = level
				}
			}
		}
		s.cur, s.nxt = s.nxt, s.cur
	}
}

// DistRow returns sources[i]'s full distance row after RunSigma: row[v] is
// the hop distance or Unreached. Unlike Dist, no seen-mask guard is needed —
// RunSigma pre-fills the rows. Owned by the scratch until the next run;
// panics after Run/RunLevels.
func (s *MSBFSScratch) DistRow(i int) []int32 {
	if !s.sigmaOK {
		panic("graph: DistRow called without a preceding RunSigma")
	}
	return s.dist[i*s.n : (i+1)*s.n]
}

// SigmaRow returns sources[i]'s shortest-path-count row after RunSigma:
// row[v] counts the shortest paths from sources[i] to v (0 when unreached).
// Owned by the scratch until the next run; panics after Run/RunLevels.
func (s *MSBFSScratch) SigmaRow(i int) []float64 {
	if !s.sigmaOK {
		panic("graph: SigmaRow called without a preceding RunSigma")
	}
	return s.sigma[i*s.n : (i+1)*s.n]
}

// NumSources returns the batch width of the last run.
func (s *MSBFSScratch) NumSources() int { return s.nsrc }

// Dist returns v's hop distance from sources[i] in the last Run, or
// Unreached for nodes in other components. Only valid after Run (not
// RunLevels, which skips the distance rows).
func (s *MSBFSScratch) Dist(i int, v int32) int32 {
	if !s.live.Seen(v) {
		return Unreached
	}
	word, bit := i/MSBFSWordBits, uint64(1)<<uint(i%MSBFSWordBits)
	if s.seen[int(v)*s.words+word]&bit == 0 {
		return Unreached
	}
	return s.dist[i*s.n+int(v)]
}

// LevelCounts returns sources[i]'s per-level reach counts: counts[h] nodes
// sit at distance exactly h, and len(counts) is the source's eccentricity
// plus one. The slice is owned by the scratch and valid until the next run.
// Valid after Run/RunLevels only: the sigma kernel's consumers read full
// distance rows instead, so RunSigma skips the per-discovery count
// bookkeeping and these accessors panic.
func (s *MSBFSScratch) LevelCounts(i int) []int32 {
	s.checkCounts()
	return s.counts[i]
}

// Eccentricity returns sources[i]'s hop radius within its component.
// Valid after Run/RunLevels only (see LevelCounts).
func (s *MSBFSScratch) Eccentricity(i int) int {
	s.checkCounts()
	return len(s.counts[i]) - 1
}

// Reached returns how many nodes sources[i] reached, including itself.
// Valid after Run/RunLevels only (see LevelCounts).
func (s *MSBFSScratch) Reached(i int) int {
	s.checkCounts()
	total := 0
	for _, c := range s.counts[i] {
		total += int(c)
	}
	return total
}

func (s *MSBFSScratch) checkCounts() {
	if s.sigmaOK {
		panic("graph: level counts are not maintained by RunSigma; use Run or RunLevels")
	}
}

// ApproxDiameter estimates g's diameter with a double BFS sweep (BFS from
// node 0, then from the farthest node found): a classic lower bound that is
// exact on trees and within a small factor on the paper's graphs. The
// batched kernels use it to route high-diameter graphs (lattices) onto the
// scalar path, where bit-parallel batching loses (mask traffic repeats per
// level while frontiers stay thin). Deterministic; costs two traversals on
// s's scratch.
func ApproxDiameter(g *Graph, s *BFSScratch) int {
	if g.NumNodes() == 0 {
		return 0
	}
	order := s.BFS(g, 0)
	far := order[len(order)-1]
	order = s.BFS(g, far)
	return int(s.Dist(order[len(order)-1]))
}
