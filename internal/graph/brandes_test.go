package graph

import (
	"math"
	"math/rand"
	"testing"
)

// scalarBrandes is the reference accumulation: per source, a sigma-counting
// BFS followed by the reverse-visit-order dependency pass, exactly the loop
// the scalar metrics path runs.
func scalarBrandes(g *Graph, sources []int32) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	delta := make([]float64, n)
	for _, src := range sources {
		dist, sigma, order := g.BFSCounts(src)
		for i := range delta {
			delta[i] = 0
		}
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, v := range g.Neighbors(w) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			bc[w] += delta[w]
		}
	}
	return bc
}

func checkBrandesMatches(t *testing.T, g *Graph, b *BrandesScratch, sources []int32) {
	t.Helper()
	want := scalarBrandes(g, sources)
	got := make([]float64, g.NumNodes())
	b.Accumulate(g, sources, got)
	for v := range want {
		diff := math.Abs(got[v] - want[v])
		if diff > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("bc[%d] = %g, want %g (batch of %d)", v, got[v], want[v], len(sources))
		}
	}
}

func TestBrandesMatchesScalar(t *testing.T) {
	g := msbfsTestGraph(13, 300, 700)
	b := NewBrandesScratch()
	r := rand.New(rand.NewSource(17))
	for _, width := range []int{1, 2, 7, 33, 64} {
		perm := r.Perm(g.NumNodes())
		sources := make([]int32, width)
		for i := range sources {
			sources[i] = int32(perm[i])
		}
		checkBrandesMatches(t, g, b, sources)
	}
}

// TestBrandesScratchReuse reruns one scratch across graphs and widths; the
// epoch stamping and row sizing must isolate every run.
func TestBrandesScratchReuse(t *testing.T) {
	b := NewBrandesScratch()
	big := msbfsTestGraph(19, 400, 1200)
	small := msbfsTestGraph(29, 60, 90)
	checkBrandesMatches(t, big, b, []int32{0, 17, 399, 201})
	checkBrandesMatches(t, small, b, []int32{5, 0, 59})
	checkBrandesMatches(t, big, b, []int32{399})
}

// TestBrandesSplitBatches pins the additive contract: accumulating sources
// in two batches must equal one scalar pass over all of them.
func TestBrandesSplitBatches(t *testing.T) {
	g := msbfsTestGraph(31, 250, 600)
	b := NewBrandesScratch()
	sources := []int32{3, 9, 27, 81, 10, 200, 121, 42}
	want := scalarBrandes(g, sources)
	got := make([]float64, g.NumNodes())
	b.Accumulate(g, sources[:5], got)
	b.Accumulate(g, sources[5:], got)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
			t.Fatalf("split bc[%d] = %g, want %g", v, got[v], want[v])
		}
	}
}

// TestBrandesDuplicateSources: a repeated source contributes once per
// occurrence, matching a scalar loop over the same list.
func TestBrandesDuplicateSources(t *testing.T) {
	g := msbfsTestGraph(41, 120, 300)
	b := NewBrandesScratch()
	checkBrandesMatches(t, g, b, []int32{5, 5, 9, 5})
}

func TestBrandesBatchPanics(t *testing.T) {
	g := msbfsTestGraph(37, 50, 100)
	b := NewBrandesScratch()
	for _, sources := range [][]int32{nil, make([]int32, BrandesWidth+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Accumulate with %v did not panic", sources)
				}
			}()
			b.Accumulate(g, sources, make([]float64, g.NumNodes()))
		}()
	}
}
