package graph

import "testing"

// TestEdgeIndexMatchesEdges pins the index to Edges(): ids follow (U, V)
// order, both orientations resolve, non-edges return -1, and Edge inverts.
func TestEdgeIndexMatchesEdges(t *testing.T) {
	g := msbfsTestGraph(43, 200, 600)
	ix := NewEdgeIndex(g)
	edges := g.Edges()
	if ix.NumEdges() != len(edges) {
		t.Fatalf("NumEdges = %d, want %d", ix.NumEdges(), len(edges))
	}
	for id, e := range edges {
		if got := ix.ID(e.U, e.V); got != int32(id) {
			t.Fatalf("ID(%d,%d) = %d, want %d", e.U, e.V, got, id)
		}
		if got := ix.ID(e.V, e.U); got != int32(id) {
			t.Fatalf("ID(%d,%d) = %d, want %d", e.V, e.U, got, id)
		}
		if back := ix.Edge(int32(id)); back != e {
			t.Fatalf("Edge(%d) = %v, want %v", id, back, e)
		}
	}
	seen := map[Edge]bool{}
	for _, e := range edges {
		seen[e] = true
	}
	n := int32(g.NumNodes())
	for u := int32(0); u < n; u += 7 {
		for v := int32(0); v < n; v += 5 {
			if u == v || seen[Edge{U: min32(u, v), V: max32(u, v)}] {
				continue
			}
			if got := ix.ID(u, v); got != -1 {
				t.Fatalf("ID(%d,%d) = %d for a non-edge, want -1", u, v, got)
			}
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a < b {
		return b
	}
	return a
}
