package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in the classic whitespace edge-list format
// used by topology tools: a header line "# nodes N edges M" followed by one
// "u v" pair per line with u < v.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d edges %d\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes the graph to path via WriteEdgeList.
func (g *Graph) WriteEdgeListFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteEdgeList(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the header are ignored, as are blank lines. If no
// header is present the node count is inferred as max id + 1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var edges []Edge
	maxID := int32(-1)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var hn, hm int
			if _, err := fmt.Sscanf(line, "# nodes %d edges %d", &hn, &hm); err == nil {
				n = hn
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want \"u v\", got %q", lineno, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineno, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineno)
		}
		e := Edge{int32(u), int32(v)}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxID + 1)
	}
	if int(maxID) >= n {
		return nil, fmt.Errorf("graph: node id %d exceeds declared node count %d", maxID, n)
	}
	return FromEdges(n, edges), nil
}

// ReadEdgeListFile reads a graph from path via ReadEdgeList.
func ReadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}
