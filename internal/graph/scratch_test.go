package graph

import (
	"math/rand"
	"testing"
)

func randomTestGraph(r *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Graph()
}

func TestBFSScratchMatchesBFS(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomTestGraph(r, 300, 500) // sparse: several components
	s := NewBFSScratch()
	for src := int32(0); src < 50; src++ {
		wantDist, wantOrder := g.BFS(src)
		order := s.BFS(g, src)
		if len(order) != len(wantOrder) {
			t.Fatalf("src %d: order length %d, want %d", src, len(order), len(wantOrder))
		}
		for i, v := range order {
			if v != wantOrder[i] {
				t.Fatalf("src %d: order[%d] = %d, want %d", src, i, v, wantOrder[i])
			}
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if s.Dist(v) != wantDist[v] {
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, v, s.Dist(v), wantDist[v])
			}
		}
	}
}

func TestBFSScratchCountsMatchesBFSCounts(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	g := randomTestGraph(r, 200, 600)
	s := NewBFSScratch()
	for src := int32(0); src < 40; src++ {
		wantDist, wantSigma, wantOrder := g.BFSCounts(src)
		order := s.Counts(g, src)
		if len(order) != len(wantOrder) {
			t.Fatalf("src %d: order length %d, want %d", src, len(order), len(wantOrder))
		}
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if s.Dist(v) != wantDist[v] {
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, v, s.Dist(v), wantDist[v])
			}
			want := wantSigma[v]
			if wantDist[v] == Unreached {
				want = 0
			}
			if s.Sigma(v) != want {
				t.Fatalf("src %d: sigma[%d] = %v, want %v", src, v, s.Sigma(v), want)
			}
		}
	}
}

func TestBFSScratchGrowsAcrossGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := NewBFSScratch()
	for _, n := range []int{10, 500, 50} {
		g := randomTestGraph(r, n, 2*n)
		wantDist, _ := g.BFS(0)
		s.BFS(g, 0)
		for v := int32(0); v < int32(n); v++ {
			if s.Dist(v) != wantDist[v] {
				t.Fatalf("n=%d: dist[%d] = %d, want %d", n, v, s.Dist(v), wantDist[v])
			}
		}
	}
}

func TestBFSScratchSteadyStateAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	g := randomTestGraph(r, 400, 1200)
	s := NewBFSScratch()
	s.BFS(g, 0) // warm the buffers
	allocs := testing.AllocsPerRun(20, func() {
		s.BFS(g, int32(r.Intn(g.NumNodes())))
	})
	if allocs != 0 {
		t.Fatalf("steady-state BFS allocates %v objects per run, want 0", allocs)
	}
}

// naiveInduced is an independent map-based reference for Induced, kept in the
// test so the production fast path is not compared against itself.
func naiveInduced(g *Graph, nodes []int32) *Graph {
	idx := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		idx[v] = int32(i)
	}
	b := NewBuilder(len(nodes))
	for _, v := range nodes {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[w]; ok && idx[v] < j {
				b.AddEdge(idx[v], j)
			}
		}
	}
	return b.Graph()
}

func TestSubgraphScratchMatchesSubgraph(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomTestGraph(r, 250, 900)
	s := NewSubgraphScratch()
	for trial := 0; trial < 30; trial++ {
		k := 1 + r.Intn(g.NumNodes())
		perm := r.Perm(g.NumNodes())
		nodes := make([]int32, k)
		for i := range nodes {
			nodes[i] = int32(perm[i])
		}
		want := naiveInduced(g, nodes)
		got := s.Induced(g, nodes)
		if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: got %d nodes/%d edges, want %d/%d", trial,
				got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
		}
		for v := int32(0); v < int32(want.NumNodes()); v++ {
			wn, gn := want.Neighbors(v), got.Neighbors(v)
			if len(wn) != len(gn) {
				t.Fatalf("trial %d: node %d degree %d, want %d", trial, v, len(gn), len(wn))
			}
			for i := range wn {
				if wn[i] != gn[i] {
					t.Fatalf("trial %d: node %d neighbor %d = %d, want %d",
						trial, v, i, gn[i], wn[i])
				}
			}
		}
	}
}
