package graph

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Graph()
}

func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Graph()
}

func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Graph()
}

// randomGraph returns a G(n,p)-ish graph for property tests.
func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Graph()
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop ignored
	b.AddEdge(2, 3)
	g := b.Graph()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edge present")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestDegreeAndAverages(t *testing.T) {
	g := completeGraph(5)
	for v := int32(0); v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if got := g.AvgDegree(); got != 4 {
		t.Fatalf("AvgDegree = %v, want 4", got)
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d, want 4", g.MaxDegree())
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	dist, order := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if len(order) != 6 || order[0] != 0 {
		t.Fatalf("bad BFS order %v", order)
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Graph()
	dist, order := g.BFS(0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatal("expected Unreached for other component")
	}
	if len(order) != 2 {
		t.Fatalf("order = %v, want 2 nodes", order)
	}
}

func TestBFSCountsCycle(t *testing.T) {
	g := cycleGraph(6)
	_, sigma, _ := g.BFSCounts(0)
	// Node 3 is antipodal: two shortest paths around the cycle.
	if sigma[3] != 2 {
		t.Fatalf("sigma[3] = %v, want 2", sigma[3])
	}
	if sigma[1] != 1 || sigma[5] != 1 {
		t.Fatalf("sigma[1],sigma[5] = %v,%v, want 1,1", sigma[1], sigma[5])
	}
}

func TestBallSizes(t *testing.T) {
	g := pathGraph(10)
	for h, want := range map[int]int{0: 1, 1: 2, 2: 3, 9: 10, 15: 10} {
		if got := len(g.Ball(0, h)); got != want {
			t.Fatalf("Ball(0,%d) size = %d, want %d", h, got, want)
		}
	}
	mid := g.Ball(5, 2)
	if len(mid) != 5 {
		t.Fatalf("Ball(5,2) size = %d, want 5", len(mid))
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(7)
	if got := g.Eccentricity(0); got != 6 {
		t.Fatalf("Eccentricity(0) = %d, want 6", got)
	}
	if got := g.Eccentricity(3); got != 3 {
		t.Fatalf("Eccentricity(3) = %d, want 3", got)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Graph()
	_, sizes := g.Components()
	if len(sizes) != 4 {
		t.Fatalf("components = %d, want 4", len(sizes))
	}
	lc, orig := g.LargestComponent()
	if lc.NumNodes() != 3 || lc.NumEdges() != 2 {
		t.Fatalf("largest component %d nodes %d edges, want 3/2", lc.NumNodes(), lc.NumEdges())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2}) {
		t.Fatalf("orig = %v", orig)
	}
	if g.IsConnected() {
		t.Fatal("graph should not be connected")
	}
	if !lc.IsConnected() {
		t.Fatal("largest component should be connected")
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := completeGraph(5)
	sub := g.Subgraph([]int32{0, 2, 4})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("subgraph %d/%d, want 3 nodes 3 edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestCoreRemovesTrees(t *testing.T) {
	// A 4-cycle with a path of two pendant nodes hanging off node 0.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 4)
	b.AddEdge(4, 5)
	g := b.Graph()
	core, orig := g.Core()
	if core.NumNodes() != 4 || core.NumEdges() != 4 {
		t.Fatalf("core %d/%d, want 4/4", core.NumNodes(), core.NumEdges())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2, 3}) {
		t.Fatalf("core orig = %v", orig)
	}
}

func TestCoreOfTreeIsEmpty(t *testing.T) {
	g := pathGraph(8)
	core, _ := g.Core()
	if core.NumNodes() != 0 {
		t.Fatalf("core of a path has %d nodes, want 0", core.NumNodes())
	}
}

func TestRemoveNodes(t *testing.T) {
	g := cycleGraph(5)
	sub, keep := g.RemoveNodes([]int32{0})
	if sub.NumNodes() != 4 || sub.NumEdges() != 3 {
		t.Fatalf("after removal %d/%d, want 4/3", sub.NumNodes(), sub.NumEdges())
	}
	if len(keep) != 4 {
		t.Fatalf("keep = %v", keep)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomGraph(r, 40, 0.1)
	g2 := FromEdges(g.NumNodes(), g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count mismatch %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestEdgeListIORoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := randomGraph(r, 60, 0.08)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %d/%d vs %d/%d", g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Fatal("edge sets differ after round trip")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 b\n", "-1 2\n"} {
		if _, err := ReadEdgeList(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("ReadEdgeList(%q) succeeded, want error", bad)
		}
	}
	// Header declares too few nodes.
	if _, err := ReadEdgeList(bytes.NewBufferString("# nodes 2 edges 1\n0 5\n")); err == nil {
		t.Fatal("expected node-count error")
	}
}

func TestReadEdgeListNoHeader(t *testing.T) {
	g, err := ReadEdgeList(bytes.NewBufferString("0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d/%d, want 3/2", g.NumNodes(), g.NumEdges())
	}
}

// Property: sum of degrees equals 2|E| (handshake lemma).
func TestHandshakeLemmaProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%50) + 2
		p := float64(pRaw%90+5) / 100
		g := randomGraph(rand.New(rand.NewSource(seed)), n, p)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbor slices are sorted, symmetric and loop-free.
func TestAdjacencyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 30, 0.15)
		for u := int32(0); u < int32(g.NumNodes()); u++ {
			nb := g.Neighbors(u)
			for i, v := range nb {
				if v == u {
					return false // self loop
				}
				if i > 0 && nb[i-1] >= v {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(v, u) {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle property along edges:
// |dist(u) - dist(v)| <= 1 for every edge {u,v} in the same component.
func TestBFSEdgeDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 40, 0.08)
		if g.NumNodes() == 0 {
			return true
		}
		dist, _ := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if (du == Unreached) != (dv == Unreached) {
				return false
			}
			if du != Unreached && (du-dv > 1 || dv-du > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: component sizes sum to N, and ball of radius >= eccentricity
// covers the whole component.
func TestBallCoversComponentProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 35, 0.1)
		label, sizes := g.Components()
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != g.NumNodes() {
			return false
		}
		if g.NumNodes() == 0 {
			return true
		}
		ecc := g.Eccentricity(0)
		ball := g.Ball(0, ecc)
		return len(ball) == sizes[label[0]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFS10k(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	builder := NewBuilder(10000)
	for i := 0; i < 25000; i++ {
		builder.AddEdge(int32(r.Intn(10000)), int32(r.Intn(10000)))
	}
	g := builder.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(int32(i % 10000))
	}
}

func TestKCore(t *testing.T) {
	// Triangle with two pendant chains: 3-core empty, 2-core = triangle.
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 5)
	b.AddEdge(5, 6)
	g := b.Graph()
	two, orig := g.KCore(2)
	if two.NumNodes() != 3 || two.NumEdges() != 3 {
		t.Fatalf("2-core = %d/%d, want 3/3", two.NumNodes(), two.NumEdges())
	}
	if !reflect.DeepEqual(orig, []int32{0, 1, 2}) {
		t.Fatalf("2-core orig = %v", orig)
	}
	three, _ := g.KCore(3)
	if three.NumNodes() != 0 {
		t.Fatalf("3-core = %d nodes, want 0", three.NumNodes())
	}
	// KCore(2) matches Core().
	coreG, coreOrig := g.Core()
	if coreG.NumNodes() != two.NumNodes() || !reflect.DeepEqual(coreOrig, orig) {
		t.Fatal("KCore(2) should equal Core()")
	}
}

func TestKCoreComplete(t *testing.T) {
	g := completeGraph(6)
	five, orig := g.KCore(5)
	if five.NumNodes() != 6 || len(orig) != 6 {
		t.Fatalf("K6 5-core = %d nodes", five.NumNodes())
	}
	six, _ := g.KCore(6)
	if six.NumNodes() != 0 {
		t.Fatalf("K6 6-core = %d nodes, want 0", six.NumNodes())
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// Triangle + pendant: triangle nodes have core 2, pendants 1.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	cores := b.Graph().CoreNumbers()
	want := []int{2, 2, 2, 1, 1}
	if !reflect.DeepEqual(cores, want) {
		t.Fatalf("core numbers = %v, want %v", cores, want)
	}
}

// Property: node v is in the k-core iff CoreNumbers()[v] >= k.
func TestCoreNumbersConsistentWithKCore(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), 40, 0.1)
		cores := g.CoreNumbers()
		for k := 1; k <= 4; k++ {
			_, members := g.KCore(k)
			inCore := map[int32]bool{}
			for _, v := range members {
				inCore[v] = true
			}
			for v := 0; v < g.NumNodes(); v++ {
				if inCore[int32(v)] != (cores[v] >= k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative (r = -1 for any star).
	b := NewBuilder(6)
	for i := int32(1); i < 6; i++ {
		b.AddEdge(0, i)
	}
	if r := b.Graph().DegreeAssortativity(); math.Abs(r+1) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
	// Regular graphs have zero variance: defined as 0.
	if r := cycleGraph(8).DegreeAssortativity(); r != 0 {
		t.Fatalf("cycle assortativity = %v, want 0", r)
	}
	if r := pathGraph(1).DegreeAssortativity(); r != 0 {
		t.Fatalf("edgeless assortativity = %v, want 0", r)
	}
	// Two disjoint stars joined hub-to-hub push r upward vs a single star.
	b2 := NewBuilder(10)
	for i := int32(1); i < 5; i++ {
		b2.AddEdge(0, i)
		b2.AddEdge(5, 5+i)
	}
	b2.AddEdge(0, 5)
	joined := b2.Graph().DegreeAssortativity()
	if joined <= -1 || joined >= 1 {
		t.Fatalf("joined-stars assortativity = %v out of range", joined)
	}
}
