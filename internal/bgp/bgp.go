// Package bgp simulates the measurement process behind the paper's AS
// graph: a route collector (like route-views.oregon-ix.net) peers with
// several backbone ASes and records each peer's best AS path to every
// destination; the AS graph is then re-assembled from adjacent pairs on
// those paths. The result inherits BGP collection's characteristic
// incompleteness — backup links and distant peerings that no collected best
// path crosses are invisible, exactly as in the measured graph the paper
// analyzes.
//
// The package also parses/serializes the table format so real AS-path data
// can be substituted for the simulation.
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// Table is a collected set of AS paths (one per (vantage, destination)
// pair, vantage first).
type Table struct {
	Paths [][]int32
}

// Collect gathers best valley-free paths from each vantage AS to every
// reachable destination, as a route collector peering with those ASes
// would. Unreachable destinations are skipped.
func Collect(a *policy.Annotated, vantages []int32) *Table {
	t := &Table{}
	n := a.G.NumNodes()
	var pt *policy.PathTree
	for _, v := range vantages {
		pt = a.PathsInto(pt, v)
		for dst := int32(0); dst < int32(n); dst++ {
			if dst == v {
				continue
			}
			if path := pt.Path(dst); path != nil {
				t.Paths = append(t.Paths, path)
			}
		}
	}
	return t
}

// PickVantages selects k distinct vantage ASes preferring the
// highest-degree ones (route collectors peer with backbone ASes; the
// paper's table peers with more than 20 backbone routers).
func PickVantages(g *graph.Graph, k int, r *rand.Rand) []int32 {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	// Order by degree descending with random jitter among ties.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	r.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.Degree(order[j]) > g.Degree(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order[:k]
}

// ExtractGraph re-assembles the measured AS graph: nodes are renumbered
// densely over the ASes appearing on any path; edges join path-adjacent
// ASes. It returns the graph and the mapping orig[newID] = AS id.
func (t *Table) ExtractGraph() (*graph.Graph, []int32) {
	index := map[int32]int32{}
	var orig []int32
	id := func(as int32) int32 {
		if i, ok := index[as]; ok {
			return i
		}
		i := int32(len(orig))
		index[as] = i
		orig = append(orig, as)
		return i
	}
	// Path-adjacent pairs stream into the builder as ids are minted; the
	// freeze dedups, so no seen-set or edge list is held alongside the CSR.
	sb := graph.NewStreamBuilder(0)
	for _, p := range t.Paths {
		for i := 0; i+1 < len(p); i++ {
			u, v := id(p[i]), id(p[i+1])
			if u == v {
				continue
			}
			sb.EnsureNodes(len(orig))
			sb.AddEdge(u, v)
		}
	}
	sb.EnsureNodes(len(orig))
	return sb.Graph(), orig
}

// Write serializes the table, one path per line: space-separated AS ids,
// vantage first (the format ParseTable reads and Gao-style tooling
// consumes).
func (t *Table) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range t.Paths {
		for i, as := range p {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(as))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTable reads the format produced by Write. Blank lines and lines
// starting with '#' are skipped. AS-path prepending (repeated ids) is
// collapsed, as Gao's algorithm expects.
func ParseTable(rd io.Reader) (*Table, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Table{}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		path := make([]int32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: bad AS id %q: %v", lineno, f, err)
			}
			if len(path) > 0 && path[len(path)-1] == int32(v) {
				continue // collapse prepending
			}
			path = append(path, int32(v))
		}
		if len(path) > 0 {
			t.Paths = append(t.Paths, path)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
