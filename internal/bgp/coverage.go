package bgp

import (
	"topocmp/internal/policy"
	"topocmp/internal/stats"
)

// CoverageCurve measures how the fraction of ground-truth AS adjacencies
// visible in the collected table grows with the number of vantage points —
// the incompleteness phenomenon Chang et al. ("On Inferring AS-Level
// Connectivity from BGP Routing Tables", INFOCOM 2002) quantified on real
// collectors, and the reason the paper treats its measured graphs as
// incomplete. The vantages are added in the given order.
func CoverageCurve(a *policy.Annotated, vantages []int32) stats.Series {
	truthEdges := a.G.NumEdges()
	s := stats.Series{Name: "coverage"}
	if truthEdges == 0 {
		return s
	}
	type pair struct{ u, v int32 }
	seen := map[pair]bool{}
	n := a.G.NumNodes()
	var pt *policy.PathTree
	for i, vp := range vantages {
		pt = a.PathsInto(pt, vp)
		for dst := int32(0); dst < int32(n); dst++ {
			if dst == vp {
				continue
			}
			path := pt.Path(dst)
			for j := 0; j+1 < len(path); j++ {
				u, v := path[j], path[j+1]
				if u > v {
					u, v = v, u
				}
				seen[pair{u, v}] = true
			}
		}
		s.Add(float64(i+1), float64(len(seen))/float64(truthEdges))
	}
	return s
}
