package bgp

import (
	"topocmp/internal/graph"
	"topocmp/internal/policy"
	"topocmp/internal/stats"
)

// CoverageCurve measures how the fraction of ground-truth AS adjacencies
// visible in the collected table grows with the number of vantage points —
// the incompleteness phenomenon Chang et al. ("On Inferring AS-Level
// Connectivity from BGP Routing Tables", INFOCOM 2002) quantified on real
// collectors, and the reason the paper treats its measured graphs as
// incomplete. The vantages are added in the given order.
//
// Each vantage's table contributes the union of its selected-path edges.
// The union is collected by stamped parent-chain walks over the vantage's
// path tree (shared suffixes are walked once, so a vantage costs one visit
// per product state rather than one per path hop) into dense edge-id marks,
// and is identical to enumerating every destination's full path.
func CoverageCurve(a *policy.Annotated, vantages []int32) stats.Series {
	truthEdges := a.G.NumEdges()
	s := stats.Series{Name: "coverage"}
	if truthEdges == 0 {
		return s
	}
	ix := graph.NewEdgeIndex(a.G)
	covered := make([]bool, ix.NumEdges())
	count := 0
	mark := func(u, v int32) {
		if id := ix.ID(u, v); id >= 0 && !covered[id] {
			covered[id] = true
			count++
		}
	}
	n := a.G.NumNodes()
	var stamp graph.Stamp
	var pt *policy.PathTree
	for i, vp := range vantages {
		pt = a.PathsInto(pt, vp)
		stamp.Begin(pt.NumProductStates())
		for dst := int32(0); dst < int32(n); dst++ {
			if dst == vp {
				continue
			}
			pt.VisitPathEdges(&stamp, dst, mark)
		}
		s.Add(float64(i+1), float64(count)/float64(truthEdges))
	}
	return s
}
