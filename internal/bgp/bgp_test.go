package bgp

import (
	"bytes"
	"math/rand"
	"testing"

	"topocmp/internal/internetsim"
	"topocmp/internal/policy"
	"topocmp/internal/stats"
)

func testInternet(t *testing.T, n int, seed int64) *internetsim.ASLevel {
	t.Helper()
	return internetsim.MustGenerateAS(rand.New(rand.NewSource(seed)), internetsim.ASParams{NumAS: n})
}

func TestCollectAndExtract(t *testing.T) {
	as := testInternet(t, 1500, 1)
	r := rand.New(rand.NewSource(2))
	vantages := PickVantages(as.Graph, 10, r)
	table := Collect(as.Annotated, vantages)
	if len(table.Paths) < 1000 {
		t.Fatalf("only %d paths collected", len(table.Paths))
	}
	measured, orig := table.ExtractGraph()
	if measured.NumNodes() < as.Graph.NumNodes()*8/10 {
		t.Fatalf("measured graph covers %d of %d ASes", measured.NumNodes(), as.Graph.NumNodes())
	}
	// Collection bias: the measured graph misses some ground-truth edges.
	if measured.NumEdges() >= as.Graph.NumEdges() {
		t.Fatalf("measured edges %d >= truth %d; expected incompleteness",
			measured.NumEdges(), as.Graph.NumEdges())
	}
	if len(orig) != measured.NumNodes() {
		t.Fatal("orig mapping length mismatch")
	}
	if !measured.IsConnected() {
		t.Fatal("path-union graph must be connected")
	}
}

func TestMeasuredGraphKeepsHeavyTail(t *testing.T) {
	as := testInternet(t, 3000, 3)
	vantages := PickVantages(as.Graph, 15, rand.New(rand.NewSource(4)))
	table := Collect(as.Annotated, vantages)
	measured, _ := table.ExtractGraph()
	ccdf := stats.CCDF(measured.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	if fit.Slope > -0.7 {
		t.Fatalf("measured CCDF slope = %.2f; heavy tail lost", fit.Slope)
	}
}

func TestPickVantagesPrefersBackbone(t *testing.T) {
	as := testInternet(t, 800, 5)
	vs := PickVantages(as.Graph, 5, rand.New(rand.NewSource(6)))
	if len(vs) != 5 {
		t.Fatalf("vantages = %d", len(vs))
	}
	avgAll := as.Graph.AvgDegree()
	for _, v := range vs {
		if float64(as.Graph.Degree(v)) < avgAll {
			t.Fatalf("vantage %d has below-average degree", v)
		}
	}
}

func TestTableRoundTrip(t *testing.T) {
	table := &Table{Paths: [][]int32{{1, 2, 3}, {7, 5}, {9}}}
	var buf bytes.Buffer
	if err := table.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Paths) != 3 || got.Paths[0][2] != 3 || got.Paths[1][1] != 5 {
		t.Fatalf("round trip = %v", got.Paths)
	}
}

func TestParseTableCollapsesPrepending(t *testing.T) {
	table, err := ParseTable(bytes.NewBufferString("1 2 2 2 3\n# comment\n\n4 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Paths) != 2 {
		t.Fatalf("paths = %v", table.Paths)
	}
	if len(table.Paths[0]) != 3 {
		t.Fatalf("prepending not collapsed: %v", table.Paths[0])
	}
	if len(table.Paths[1]) != 1 {
		t.Fatalf("second path = %v", table.Paths[1])
	}
}

func TestParseTableErrors(t *testing.T) {
	if _, err := ParseTable(bytes.NewBufferString("1 x 3\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestGaoOnCollectedTable(t *testing.T) {
	// End-to-end: ground truth -> BGP collection -> Gao inference.
	// Accuracy should be substantially better than chance.
	as := testInternet(t, 1200, 7)
	vantages := PickVantages(as.Graph, 12, rand.New(rand.NewSource(8)))
	table := Collect(as.Annotated, vantages)
	inferred := policy.InferGao(as.Graph, table.Paths)
	acc := policy.InferenceAccuracy(as.Annotated, inferred)
	if acc < 0.6 {
		t.Fatalf("Gao accuracy on simulated Internet = %.2f, want > 0.6", acc)
	}
}
