package bgp

import (
	"math/rand"
	"testing"
)

func TestCoverageCurveMonotoneAndIncomplete(t *testing.T) {
	as := testInternet(t, 1500, 21)
	vantages := PickVantages(as.Graph, 12, rand.New(rand.NewSource(22)))
	curve := CoverageCurve(as.Annotated, vantages)
	if curve.Len() != 12 {
		t.Fatalf("points = %d", curve.Len())
	}
	for i := 1; i < curve.Len(); i++ {
		if curve.Points[i].Y < curve.Points[i-1].Y {
			t.Fatal("coverage must be nondecreasing")
		}
	}
	first, last := curve.Points[0].Y, curve.Points[curve.Len()-1].Y
	if last <= first {
		t.Fatalf("more vantages should reveal more: %v -> %v", first, last)
	}
	// Chang et al.'s point: even many vantages miss edges (backup links
	// off every best path).
	if last >= 1 {
		t.Fatalf("coverage = %v; expected residual incompleteness", last)
	}
	if first < 0.3 {
		t.Fatalf("single backbone vantage coverage = %v; suspiciously low", first)
	}
}
