package core

import (
	"math"
	"testing"

	"topocmp/internal/stats"
)

func expSeries(rate float64, n int, total float64) stats.Series {
	var s stats.Series
	for h := 0; h < n; h++ {
		y := math.Exp(rate*float64(h)) / total
		if y > 1 {
			y = 1
		}
		s.Add(float64(h), y)
	}
	return s
}

func polySeries(power float64, n int, total float64) stats.Series {
	var s stats.Series
	for h := 1; h < n; h++ {
		y := math.Pow(float64(h), power) / total
		if y > 1 {
			y = 1
		}
		s.Add(float64(h), y)
	}
	return s
}

func TestClassifyExpansionForms(t *testing.T) {
	if got := ClassifyExpansion(expSeries(1.2, 12, 10000)); got != High {
		t.Fatalf("exponential expansion classified %v", got)
	}
	if got := ClassifyExpansion(polySeries(2, 40, 1600)); got != Low {
		t.Fatalf("quadratic expansion classified %v", got)
	}
	// Degenerate: saturates instantly (complete graph) -> High.
	var sat stats.Series
	sat.Add(0, 0.01)
	sat.Add(1, 1)
	if got := ClassifyExpansion(sat); got != High {
		t.Fatalf("instant saturation classified %v", got)
	}
}

func TestClassifyResilienceForms(t *testing.T) {
	// Linear R(n) = 0.4n: High.
	var lin stats.Series
	for n := 4.0; n < 2000; n *= 1.6 {
		lin.Add(n, 0.4*n)
	}
	if got := ClassifyResilience(lin); got != High {
		t.Fatalf("linear resilience classified %v", got)
	}
	// Flat R(n) ~ 2: Low.
	var flat stats.Series
	for n := 4.0; n < 2000; n *= 1.6 {
		flat.Add(n, 2)
	}
	if got := ClassifyResilience(flat); got != Low {
		t.Fatalf("flat resilience classified %v", got)
	}
	// Log-growth (tree-like): Low.
	var lg stats.Series
	for n := 4.0; n < 2000; n *= 1.6 {
		lg.Add(n, math.Log2(n))
	}
	if got := ClassifyResilience(lg); got != Low {
		t.Fatalf("log resilience classified %v", got)
	}
	// sqrt growth (mesh): High.
	var sq stats.Series
	for n := 4.0; n < 2000; n *= 1.6 {
		sq.Add(n, 1.5*math.Sqrt(n))
	}
	if got := ClassifyResilience(sq); got != High {
		t.Fatalf("sqrt resilience classified %v", got)
	}
	if got := ClassifyResilience(stats.Series{}); got != Low {
		t.Fatalf("empty resilience classified %v", got)
	}
}

func TestClassifyDistortionForms(t *testing.T) {
	// Log-growing to ~6 (mesh/random): High.
	var grow stats.Series
	for n := 4.0; n < 3000; n *= 1.6 {
		grow.Add(n, 1+1.5*math.Log10(n))
	}
	if got := ClassifyDistortion(grow); got != High {
		t.Fatalf("log-growing distortion classified %v", got)
	}
	// Flat at 1 (tree): Low.
	var one stats.Series
	for n := 4.0; n < 3000; n *= 1.6 {
		one.Add(n, 1)
	}
	if got := ClassifyDistortion(one); got != Low {
		t.Fatalf("tree distortion classified %v", got)
	}
	// Flattening near 2 (measured/PLRG): Low.
	var meas stats.Series
	for n := 4.0; n < 3000; n *= 1.6 {
		meas.Add(n, 2-1/math.Log2(n+2))
	}
	if got := ClassifyDistortion(meas); got != Low {
		t.Fatalf("measured-like distortion classified %v", got)
	}
	if got := ClassifyDistortion(stats.Series{}); got != Low {
		t.Fatalf("empty distortion classified %v", got)
	}
}

func TestLevelStrings(t *testing.T) {
	if Low.String() != "L" || High.String() != "H" {
		t.Fatal("bad level strings")
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{Measured: "measured", Generated: "generated", Canonical: "canonical"}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Category(%d) = %q, want %q", c, c.String(), s)
		}
	}
}

func TestMatchesPaperUnknownName(t *testing.T) {
	r := Row{Name: "NotInPaper", Signature: Signature{Low, Low, Low}}
	if !r.MatchesPaper() || !r.HierarchyMatchesPaper() {
		t.Fatal("unknown networks should count as matching")
	}
}
