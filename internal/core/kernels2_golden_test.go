package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/bgp"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/policy"
	"topocmp/internal/stats"
	"topocmp/internal/traceroute"
)

// TestBrandesGoldenScalarVsBitParallel pins the wave-2 betweenness reroute:
// on ball subgraphs of every paper network family, the distortion estimate
// must be byte-identical whether the top-roots ranking ran through the
// scalar per-source accumulation or the bit-parallel Brandes kernel. The
// distortion value is computed from the selected roots, so equality here
// means the two rankings picked identical root sets on every subgraph.
func TestBrandesGoldenScalarVsBitParallel(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	nets := []*Network{ms.AS, ms.RL}
	for _, name := range []string{"PLRG", "TS", "Mesh", "Tree", "Random"} {
		nets = append(nets, BuildNetwork(name, opts))
	}
	k := &ball.Kernels{BFS: graph.NewBFSScratch(), Brandes: graph.NewBrandesScratch()}
	for _, n := range nets {
		g := n.Graph
		e := ball.NewEngine(g, 1)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 4; i++ {
			c := int32(r.Intn(g.NumNodes()))
			p := e.Profile(c)
			for _, h := range []int{2, 3} {
				sub := e.BallSubgraph(p, h)
				if sub.NumNodes() < 3 {
					continue
				}
				sc := metrics.SubgraphDistortionKernels(sub, 8, metrics.BetweennessScalar, k)
				bp := metrics.SubgraphDistortionKernels(sub, 8, metrics.BetweennessBitParallel, k)
				if math.Float64bits(sc) != math.Float64bits(bp) {
					t.Errorf("%s center %d h=%d: scalar distortion %v, bit-parallel %v",
						n.Name, c, h, sc, bp)
				}
			}
		}
	}
}

// scalarCoverageCurve is the historical bgp.CoverageCurve implementation:
// every destination's full selected path is enumerated and its edges
// unioned through a map. Kept verbatim as the reference for the stamped
// parent-chain walk.
func scalarCoverageCurve(a *policy.Annotated, vantages []int32) stats.Series {
	truthEdges := a.G.NumEdges()
	s := stats.Series{Name: "coverage"}
	if truthEdges == 0 {
		return s
	}
	covered := map[uint64]bool{}
	n := int32(a.G.NumNodes())
	for i, vp := range vantages {
		pt := a.Paths(vp)
		for dst := int32(0); dst < n; dst++ {
			if dst == vp {
				continue
			}
			path := pt.Path(dst)
			for j := 0; j+1 < len(path); j++ {
				u, v := path[j], path[j+1]
				if u > v {
					u, v = v, u
				}
				covered[uint64(u)<<32|uint64(uint32(v))] = true
			}
		}
		s.Add(float64(i+1), float64(len(covered))/float64(truthEdges))
	}
	return s
}

// TestCoverageGoldenScalarVsStamped byte-compares the stamped parent-chain
// coverage curve against the historical per-path scalar union, on the
// measured AS truth and on every paper network carrying policy annotations.
func TestCoverageGoldenScalarVsStamped(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	cases := []*policy.Annotated{ms.TruthAS.Annotated}
	if ms.AS.Policy != nil {
		cases = append(cases, ms.AS.Policy)
	}
	for ci, a := range cases {
		vantages := bgp.PickVantages(a.G, 10, rand.New(rand.NewSource(3)))
		want := scalarCoverageCurve(a, vantages)
		got := bgp.CoverageCurve(a, vantages)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: stamped coverage curve differs from scalar union", ci)
		}
	}
}

// TestTracerouteSweepDeterministic pins the path-buffer reuse in the
// traceroute sweep: two sweeps with identical inputs must produce the same
// discovered graph and origin mapping (pseudo-node numbering depends on the
// walk order, so any state leaking through the reused path buffer would
// show up here).
func TestTracerouteSweepDeterministic(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	run := func() (*graph.Graph, []int32) {
		return traceroute.Sweep(ms.TruthRL.Overlay, ms.TruthRL.Backbone,
			traceroute.Options{
				Sources: 8, DestFraction: 0.5, Rand: rand.New(rand.NewSource(9)),
			})
	}
	g1, o1 := run()
	g2, o2 := run()
	if g1.NumNodes() != g2.NumNodes() || !reflect.DeepEqual(g1.Edges(), g2.Edges()) {
		t.Fatal("repeated traceroute sweeps produced different graphs")
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("repeated traceroute sweeps produced different origin maps")
	}
}
