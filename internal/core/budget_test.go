package core

import (
	"testing"
)

// TestSampleBudgetWiring checks the SuiteOptions.SampleBudget contract end
// to end: an explicit budget overrides the legacy Sources-derived sampling
// counts, a node-count budget turns the sampled estimators into full
// enumerations with zero-width bounds, and the budget is part of the cache
// key so budgeted and legacy runs never collide.
func TestSampleBudgetWiring(t *testing.T) {
	net := BuildNetwork("TS", PaperSetOptions{Seed: 1, Scale: 0.06})
	n := net.Graph.NumNodes()

	base := SuiteOptions{Sources: 4, MaxBallSize: 200, EigenRank: 6, Seed: 1,
		SkipHierarchy: true, Parallelism: 2}

	budgeted := base
	budgeted.SampleBudget = 48
	sampled := RunSuite(net, budgeted)
	if len(sampled.Expansion.StdErr) != len(sampled.Expansion.Points) {
		t.Fatal("expansion series missing bounds")
	}
	nonzero := false
	for _, se := range sampled.Expansion.StdErr {
		if se > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Error("budget 48 expansion reported all-zero bounds")
	}

	exhaustive := base
	exhaustive.SampleBudget = n
	full := RunSuite(net, exhaustive)
	for _, s := range []struct {
		name string
		se   []float64
	}{
		{"expansion", full.Expansion.StdErr},
		{"eccentricity", full.Eccentricity.StdErr},
		{"attack", full.Attack.StdErr},
		{"error", full.Error.StdErr},
	} {
		for i, se := range s.se {
			if se != 0 {
				t.Errorf("full-budget %s: StdErr[%d] = %v, want exactly 0", s.name, i, se)
				break
			}
		}
	}

	if base.CacheKey() == budgeted.CacheKey() {
		t.Error("SampleBudget missing from the suite cache key")
	}
}
