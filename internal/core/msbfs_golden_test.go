package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/stats"
)

// The scalar references below are the historical per-source g.BFS
// implementations of the three distance sweeps, kept verbatim so the
// bit-parallel kernel path can be byte-compared against them across the
// paper's network families.

func scalarExpansion(g *graph.Graph, cfg ball.Config) stats.Series {
	out := stats.Series{Name: "expansion"}
	n := g.NumNodes()
	if n == 0 {
		return out
	}
	centers := ball.Centers(g, &cfg)
	var cums [][]int32
	maxEcc := 0
	for _, src := range centers {
		dist, order := g.BFS(src)
		ecc := int(dist[order[len(order)-1]])
		cum := make([]int32, ecc+1)
		for _, v := range order {
			cum[dist[v]]++
		}
		for h := 1; h <= ecc; h++ {
			cum[h] += cum[h-1]
		}
		cums = append(cums, cum)
		if ecc > maxEcc {
			maxEcc = ecc
		}
	}
	total := float64(n)
	for h := 0; h <= maxEcc; h++ {
		sum := 0.0
		for _, cum := range cums {
			hh := h
			if hh >= len(cum) {
				hh = len(cum) - 1
			}
			sum += float64(cum[hh])
		}
		out.Add(float64(h), sum/float64(len(cums))/total)
	}
	return out
}

func scalarEccentricity(g *graph.Graph, maxSamples int, binWidth float64, rng *rand.Rand) stats.Series {
	out := stats.Series{Name: "eccentricity"}
	n := g.NumNodes()
	if n == 0 {
		return out
	}
	cfg := ball.Config{MaxSources: maxSamples, Rand: rng}
	centers := ball.Centers(g, &cfg)
	eccs := make([]int, len(centers))
	sum := 0.0
	for i, src := range centers {
		dist, order := g.BFS(src)
		eccs[i] = int(dist[order[len(order)-1]])
		sum += float64(eccs[i])
	}
	mean := sum / float64(len(centers))
	if mean == 0 {
		return out
	}
	bins := map[int]int{}
	for _, ecc := range eccs {
		bins[int(float64(ecc)/mean/binWidth)]++
	}
	for b, cnt := range bins {
		out.Add(float64(b)*binWidth+binWidth/2, float64(cnt)/float64(len(centers)))
	}
	out.SortByX()
	return out
}

func scalarAveragePathLength(g *graph.Graph, maxSources int) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	sources := n
	if maxSources > 0 && maxSources < n {
		sources = maxSources
	}
	r := rand.New(rand.NewSource(int64(n)))
	perm := r.Perm(n)
	totalDist, totalPairs := 0.0, 0.0
	for i := 0; i < sources; i++ {
		src := int32(perm[i])
		dist, order := g.BFS(src)
		for _, v := range order {
			if v != src {
				totalDist += float64(dist[v])
				totalPairs++
			}
		}
	}
	if totalPairs == 0 {
		return 0
	}
	return totalDist / totalPairs
}

func seriesBytes(s stats.Series) []byte {
	return []byte(fmt.Sprintf("%s|%v", s.Name, s.Points))
}

// TestMSBFSGoldenSeriesScalarVsBatched byte-compares the batched kernel
// form of every distance-only sweep — expansion, eccentricity distribution,
// average path length — against the historical scalar implementation across
// the paper's network families (the two measured graphs and the generated /
// canonical generators), at engine parallelism 1 and 4.
func TestMSBFSGoldenSeriesScalarVsBatched(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	nets := []*Network{ms.AS, ms.RL}
	for _, name := range []string{"PLRG", "TS", "Mesh", "Tree", "Random"} {
		nets = append(nets, BuildNetwork(name, opts))
	}
	for _, n := range nets {
		g := n.Graph
		expCfg := func() ball.Config {
			return ball.Config{MaxSources: 48, Rand: rand.New(rand.NewSource(1))}
		}
		wantExp := scalarExpansion(g, expCfg())
		wantEcc := scalarEccentricity(g, 48, 0.1, rand.New(rand.NewSource(1)))
		wantAPL := scalarAveragePathLength(g, 24)
		for _, parallel := range []int{1, 4} {
			eng := ball.NewEngine(g, parallel)
			// The kernel path now also attaches sampling standard errors
			// (absent from the historical scalar references), so the golden
			// comparison is over Name and Points — the plotted values.
			gotExp := metrics.ExpansionWith(eng, expCfg())
			if !reflect.DeepEqual(gotExp.Points, wantExp.Points) || !bytes.Equal(seriesBytes(gotExp), seriesBytes(wantExp)) {
				t.Errorf("%s P=%d: batched expansion differs from scalar", n.Name, parallel)
			}
			if len(gotExp.StdErr) != len(gotExp.Points) {
				t.Errorf("%s P=%d: expansion StdErr length %d, want %d", n.Name, parallel, len(gotExp.StdErr), len(gotExp.Points))
			}
			gotEcc := metrics.EccentricityDistributionWith(eng, 48, 0.1, rand.New(rand.NewSource(1)))
			if !reflect.DeepEqual(gotEcc.Points, wantEcc.Points) || !bytes.Equal(seriesBytes(gotEcc), seriesBytes(wantEcc)) {
				t.Errorf("%s P=%d: batched eccentricity differs from scalar", n.Name, parallel)
			}
			if len(gotEcc.StdErr) != len(gotEcc.Points) {
				t.Errorf("%s P=%d: eccentricity StdErr length %d, want %d", n.Name, parallel, len(gotEcc.StdErr), len(gotEcc.Points))
			}
		}
		if got := metrics.AveragePathLength(g, 24); got != wantAPL {
			t.Errorf("%s: batched path length %v, scalar %v", n.Name, got, wantAPL)
		}
	}
}
