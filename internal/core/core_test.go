package core

import (
	"bytes"
	"strings"
	"testing"

	"topocmp/internal/hierarchy"
)

// quickOpts keeps suite runs fast in tests.
func quickOpts() SuiteOptions {
	return SuiteOptions{
		Sources:     12,
		MaxBallSize: 1500,
		EigenRank:   15,
		LinkSources: 384,
		Seed:        1,
	}
}

func smallSet() PaperSetOptions { return PaperSetOptions{Seed: 1, Scale: 0.12} }

func TestCanonicalSignaturesMatchPaper(t *testing.T) {
	// The §3.2.1 calibration table: Mesh LHH, Random HHH, Tree HLL,
	// Complete HHL, Linear LLL.
	for _, n := range BuildCanonical(smallSet()) {
		res := RunSuite(n, quickOpts())
		row := BuildRow(res)
		if !row.MatchesPaper() {
			t.Errorf("%s: signature %s, paper says %s",
				n.Name, row.Signature, ExpectedSignatures[n.Name])
		}
	}
}

func TestGeneratedSignaturesMatchPaper(t *testing.T) {
	// §4.4: PLRG HHL, Tiers LHL, TS HLL, Waxman HHH.
	for _, n := range BuildGenerated(smallSet()) {
		res := RunSuite(n, quickOpts())
		row := BuildRow(res)
		if !row.MatchesPaper() {
			t.Errorf("%s: signature %s, paper says %s",
				n.Name, row.Signature, ExpectedSignatures[n.Name])
		}
	}
}

func TestMeasuredSignaturesMatchPaper(t *testing.T) {
	// The headline result: both measured graphs classify HHL, like the
	// complete graph and the PLRG.
	ms := BuildMeasured(smallSet())
	for _, n := range []*Network{ms.AS, ms.RL} {
		res := RunSuite(n, quickOpts())
		row := BuildRow(res)
		if !row.MatchesPaper() {
			t.Errorf("%s: signature %s, paper says %s",
				n.Name, row.Signature, ExpectedSignatures[n.Name])
		}
	}
}

func TestHierarchyGroupsMatchPaper(t *testing.T) {
	// §5.1: Tree/TS/Tiers strict, AS/RL/PLRG moderate, Mesh/Random/Waxman
	// loose.
	opts := quickOpts()
	nets := BuildPaperNetworks(smallSet())
	for _, n := range nets {
		if n.Name == "Complete" || n.Name == "Linear" {
			continue
		}
		res := RunSuite(n, opts)
		row := BuildRow(res)
		if !row.HierarchyMatchesPaper() {
			t.Errorf("%s: hierarchy %v, paper says %v",
				n.Name, row.Hierarchy, ExpectedHierarchy[n.Name])
		}
	}
}

func TestMeasuredGraphsResembleEachOther(t *testing.T) {
	// §4.4's first finding: the AS and RL graphs share the same signature.
	ms := BuildMeasured(smallSet())
	asRow := BuildRow(RunSuite(ms.AS, quickOpts()))
	rlRow := BuildRow(RunSuite(ms.RL, quickOpts()))
	if asRow.Signature != rlRow.Signature {
		t.Errorf("AS %s vs RL %s", asRow.Signature, rlRow.Signature)
	}
}

func TestWriteTable(t *testing.T) {
	rows := []Row{
		{Name: "Tree", Category: Canonical,
			Signature: Signature{High, Low, Low},
			Hierarchy: hierarchy.Strict, HasHierarchy: true},
		{Name: "AS", Category: Measured,
			Signature: Signature{High, High, Low}},
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Tree", "strict", "HLL", "AS", "HHL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestDescribe(t *testing.T) {
	nets := BuildCanonical(smallSet())
	for _, n := range nets {
		d := n.Describe()
		if d.Nodes != n.Graph.NumNodes() || d.Name != n.Name {
			t.Fatalf("bad description %+v", d)
		}
	}
}

func TestSignatureString(t *testing.T) {
	s := Signature{High, High, Low}
	if s.String() != "HHL" {
		t.Fatalf("signature = %q", s.String())
	}
}

func TestPolicyVariantsPresent(t *testing.T) {
	ms := BuildMeasured(smallSet())
	res := RunSuite(ms.AS, quickOpts())
	if res.PolicyExpansion.Len() == 0 {
		t.Fatal("AS policy expansion missing")
	}
	if res.PolicyLinkValues == nil {
		t.Fatal("AS policy link values missing")
	}
	// Policy routing lengthens paths, so policy expansion at a mid radius
	// cannot exceed plain expansion.
	h := 3.0
	if res.PolicyExpansion.YAt(h) > res.Expansion.YAt(h)+1e-9 {
		t.Fatalf("policy expansion %v above plain %v at h=%v",
			res.PolicyExpansion.YAt(h), res.Expansion.YAt(h), h)
	}
	// §4.2: policy routing decreases resilience (its balls keep only
	// policy-compliant links) without changing the qualitative behaviour.
	if res.PolicyResilience.Len() < 2 {
		t.Fatal("policy resilience missing")
	}
	size := res.PolicyResilience.Points[res.PolicyResilience.Len()-1].X
	plain, pol := res.Resilience.YAt(size), res.PolicyResilience.YAt(size)
	if pol > plain*1.25 {
		t.Fatalf("policy resilience %v should not exceed plain %v at size %v",
			pol, plain, size)
	}
	if res.PolicyDistortion.Len() == 0 {
		t.Fatal("policy distortion missing")
	}
	if ClassifyDistortion(res.PolicyDistortion) != Low {
		t.Fatal("policy distortion should stay Low for the AS graph")
	}
}

func TestRLSignatureSurvivesAliasNoise(t *testing.T) {
	// Beyond the paper: the measured RL graph's HHL signature should be
	// robust to the alias-resolution failures real traceroute maps carry.
	opts := smallSet()
	opts.AliasFailure = 0.2
	ms := BuildMeasured(opts)
	res := RunSuite(ms.RL, quickOpts())
	row := BuildRow(res)
	if row.Signature.String() != "HHL" {
		t.Fatalf("noisy RL signature = %s, want HHL", row.Signature)
	}
}
