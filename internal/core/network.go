// Package core implements the paper's comparison methodology: a registry of
// measured, generated and canonical networks (Figure 1), a metric-suite
// runner over the eight topology metrics, the qualitative Low/High
// classifier of §3.2.1/§4.4 calibrated on the canonical networks, and the
// strict/moderate/loose hierarchy grouping of §5.1.
package core

import (
	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// Category groups networks as the paper's Figure 1 does.
type Category int

const (
	// Measured networks come from the (simulated) Internet measurement
	// pipeline.
	Measured Category = iota
	// Generated networks come from topology generators.
	Generated
	// Canonical networks calibrate the metrics.
	Canonical
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Measured:
		return "measured"
	case Generated:
		return "generated"
	default:
		return "canonical"
	}
}

// Network is one comparison subject.
type Network struct {
	Name     string
	Category Category
	Graph    *graph.Graph
	// Policy, when non-nil, enables policy-routing variants of the metrics
	// (AS-level networks).
	Policy *policy.Annotated
	// Overlay, when non-nil, enables router-level policy variants (RL
	// networks).
	Overlay *policy.RouterOverlay
}

// Describe returns the Figure 1 row for this network.
type Description struct {
	Name      string
	Category  string
	Nodes     int
	Edges     int
	AvgDegree float64
	MaxDegree int
}

// Describe summarizes the network.
func (n *Network) Describe() Description {
	return Description{
		Name:      n.Name,
		Category:  n.Category.String(),
		Nodes:     n.Graph.NumNodes(),
		Edges:     n.Graph.NumEdges(),
		AvgDegree: n.Graph.AvgDegree(),
		MaxDegree: n.Graph.MaxDegree(),
	}
}
