package core

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunSuiteParallelMatchesSequential is the ball-engine determinism
// contract: a parallel suite run must be bit-identical to the sequential
// one, because centers are assembled in order and every per-center RNG is
// derived from seed+index rather than from a shared stream.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	ms := BuildMeasured(smallSet()) // AS carries policy annotations: covers every stage
	seqOpts := quickOpts()
	seqOpts.Parallelism = 1
	parOpts := quickOpts()
	parOpts.Parallelism = runtime.NumCPU()
	if parOpts.Parallelism < 4 {
		// Even on small machines, exercise real interleaving.
		parOpts.Parallelism = 4
	}
	seq := RunSuite(ms.AS, seqOpts)
	par := RunSuite(ms.AS, parOpts)

	for _, c := range []struct {
		name     string
		seq, par any
	}{
		{"Expansion", seq.Expansion, par.Expansion},
		{"Resilience", seq.Resilience, par.Resilience},
		{"Distortion", seq.Distortion, par.Distortion},
		{"Eigenvalues", seq.Eigenvalues, par.Eigenvalues},
		{"Eccentricity", seq.Eccentricity, par.Eccentricity},
		{"VertexCover", seq.VertexCover, par.VertexCover},
		{"Biconnectivity", seq.Biconnectivity, par.Biconnectivity},
		{"Attack", seq.Attack, par.Attack},
		{"Error", seq.Error, par.Error},
		{"Clustering", seq.Clustering, par.Clustering},
		{"WholeGraphClustering", seq.WholeGraphClustering, par.WholeGraphClustering},
		{"LinkValues", seq.LinkValues, par.LinkValues},
		{"PolicyExpansion", seq.PolicyExpansion, par.PolicyExpansion},
		{"PolicyResilience", seq.PolicyResilience, par.PolicyResilience},
		{"PolicyDistortion", seq.PolicyDistortion, par.PolicyDistortion},
		{"PolicyLinkValues", seq.PolicyLinkValues, par.PolicyLinkValues},
	} {
		if !reflect.DeepEqual(c.seq, c.par) {
			t.Errorf("%s differs between Parallelism=1 and Parallelism=%d",
				c.name, parOpts.Parallelism)
		}
	}
}

// TestRunSuiteRaceShort is a deliberately small full-suite run meant for the
// tier-2 `go test -race ./internal/core ./internal/ball` check: it pushes a
// policy-annotated network through every concurrent stage at Parallelism 4
// so the race detector sees the engine's profile and subgraph caches under
// contention.
func TestRunSuiteRaceShort(t *testing.T) {
	set := smallSet()
	set.Scale = 0.06
	ms := BuildMeasured(set)
	opts := SuiteOptions{
		Sources:     6,
		MaxBallSize: 400,
		EigenRank:   8,
		LinkSources: 96,
		Seed:        1,
		Parallelism: 4,
	}
	res := RunSuite(ms.AS, opts)
	if res.Expansion.Len() == 0 || res.LinkValues == nil {
		t.Fatal("race-mode suite produced empty results")
	}
}
