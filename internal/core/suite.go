package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
	"topocmp/internal/metrics"
	"topocmp/internal/obs"
	"topocmp/internal/partition"
	"topocmp/internal/policy"
	"topocmp/internal/stats"
)

// SuiteOptions tunes the metric-suite run. Zero values pick defaults that
// complete quickly at the repository's default experiment scales.
type SuiteOptions struct {
	Sources     int   // ball centers sampled per metric (default 24)
	MaxBallSize int   // per-ball cost cap for the expensive metrics (default 3000)
	EigenRank   int   // eigenvalues computed (default 40)
	LinkSources int   // pair sources for link values (default 384)
	Seed        int64 // base RNG seed (default 1)
	// Parallelism is the worker-pool width of the ball engine and the
	// link-value sweeps: 0 uses runtime.NumCPU, 1 runs the legacy
	// sequential path. Results are bit-identical at every width.
	Parallelism int
	// SampleBudget, when positive, is an explicit per-metric sampling
	// budget: the number of ball centers / BFS sources the sampled
	// estimators (expansion, eccentricity, attack/error path lengths) may
	// spend, overriding the legacy defaults derived from Sources
	// (expansion and eccentricity use 4*Sources, the tolerance curves
	// 2*Sources). Every sampled series carries a per-point standard error
	// either way; a budget at or above the node count turns the estimators
	// into full enumerations with zero-width bounds. Zero keeps the legacy
	// derivation, which is what the default experiment scales run.
	SampleBudget int
	// SkipHierarchy disables the link-value computation (the costliest
	// stage) when only Figure 2 style metrics are needed.
	SkipHierarchy bool
	// LinkSigma routes the link-value sweeps' path-count traversals:
	// hierarchy.SigmaAuto (the default) batches through the sigma-carrying
	// MSBFS kernel behind a diameter probe, SigmaScalar/SigmaBatched force
	// a route. Like Parallelism it never changes results (the golden tests
	// pin the routes byte-identical), so it is excluded from CacheKey.
	LinkSigma hierarchy.SigmaMode
	// ToleranceFractions are the removal fractions of Figure 9; default
	// 0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20.
	ToleranceFractions []float64

	// Metrics, when non-nil, receives the suite's operation counters (the
	// ball engine's ball.* namespace and the hierarchy sweeps). Span, when
	// non-nil, becomes the parent of one child span per metric stage.
	// Progress, when non-nil, receives the ball engine's balls-done/total
	// work counters so a live /debug/progress turns this suite into a
	// completion fraction. None of the three influences results, so all
	// are excluded from CacheKey and from the manifest's config JSON.
	Metrics  *obs.Registry      `json:"-"`
	Span     *obs.Span          `json:"-"`
	Progress *obs.ProgressStage `json:"-"`
}

func (o *SuiteOptions) defaults() {
	if o.Sources == 0 {
		o.Sources = 24
	}
	if o.MaxBallSize == 0 {
		o.MaxBallSize = 3000
	}
	if o.EigenRank == 0 {
		o.EigenRank = 40
	}
	if o.LinkSources == 0 {
		o.LinkSources = 384
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ToleranceFractions == nil {
		o.ToleranceFractions = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20}
	}
}

// CacheKey returns a canonical description of the options for the result
// cache. Parallelism is deliberately excluded: suite results are
// bit-identical at every worker-pool width (the PR-1 contract, enforced by
// TestRunSuiteParallelMatchesSequential), so a `-j N` run must hit entries
// written by a `-j 1` run and vice versa. LinkSigma is excluded on the same
// contract (routes are byte-identical, enforced by the sigma golden tests),
// as are Metrics, Span and Progress — observability never changes results.
// Every other field
// appears; adding a result-affecting field to SuiteOptions must extend this
// string (or bump cache.SchemaVersion) so stale entries are invalidated.
func (o SuiteOptions) CacheKey() string {
	o.defaults()
	return fmt.Sprintf("suite:src=%d,ball=%d,eig=%d,link=%d,seed=%d,skiphier=%t,tol=%v,budget=%d",
		o.Sources, o.MaxBallSize, o.EigenRank, o.LinkSources, o.Seed,
		o.SkipHierarchy, o.ToleranceFractions, o.SampleBudget)
}

// SuiteResult holds every metric curve for one network.
type SuiteResult struct {
	Network *Network

	Expansion  stats.Series
	Resilience stats.Series
	Distortion stats.Series

	Eigenvalues    stats.Series
	Eccentricity   stats.Series
	VertexCover    stats.Series
	Biconnectivity stats.Series
	Attack         stats.Series
	Error          stats.Series
	Clustering     stats.Series

	// WholeGraphClustering is the single-number coefficient of §4.4.
	WholeGraphClustering float64

	// LinkValues is nil when SkipHierarchy is set.
	LinkValues *hierarchy.Result

	// Policy variants (present when the network carries annotations): the
	// AS(Policy)/RL(Policy) curves of Figure 2(d-f) and Figures 3/4.
	PolicyExpansion  stats.Series
	PolicyResilience stats.Series
	PolicyDistortion stats.Series
	PolicyLinkValues *hierarchy.Result
}

// RunSuite computes the full metric suite on a network. All ball growth
// runs through one shared ball.Engine per network, so metrics that sample
// the same centers share one BFS pass and one induced subgraph per (center,
// radius); per-center work fans out over the engine's worker pool. Every
// metric and every center seeds its own RNG, so results are bit-identical
// at every Parallelism, including the sequential width of 1 (where the
// metric stages also run inline instead of concurrently).
func RunSuite(n *Network, opts SuiteOptions) *SuiteResult {
	res, _ := RunSuiteCtx(context.Background(), n, opts)
	return res
}

// RunSuiteCtx is RunSuite with cancellation: each metric stage checks the
// context before it starts, so a canceled request stops scheduling work at
// stage granularity (a stage already running finishes its balls — the
// engine's kernels are not preemptible). On cancellation the partial result
// is discarded and ctx.Err() is returned; a nil error means every stage ran
// and the result is complete and bit-identical to RunSuite's.
func RunSuiteCtx(ctx context.Context, n *Network, opts SuiteOptions) (*SuiteResult, error) {
	opts.defaults()
	res := &SuiteResult{Network: n}
	g := n.Graph
	eng := ball.NewEngine(g, opts.Parallelism)
	eng.Instrument(opts.Metrics)
	eng.SetProgress(opts.Progress)

	// Sampling budgets for the estimator metrics: the explicit SampleBudget
	// when set, otherwise the legacy Sources-derived counts.
	srcBudget := 4 * opts.Sources
	pathBudget := 2 * opts.Sources
	if opts.SampleBudget > 0 {
		srcBudget = opts.SampleBudget
		pathBudget = opts.SampleBudget
	}

	// One center set (seed+1) for every ball-curve metric: resilience,
	// distortion, vertex cover, biconnectivity and clustering then share the
	// engine's cached profiles and ball subgraphs instead of growing five
	// sets of balls.
	curveCfg := func() ball.Config {
		return ball.Config{
			MaxSources:  opts.Sources,
			MaxBallSize: opts.MaxBallSize,
			Rand:        rand.New(rand.NewSource(opts.Seed + 1)),
		}
	}
	var wg sync.WaitGroup
	stage := func(name string, f func()) {
		run := func() {
			if ctx.Err() != nil {
				return // canceled: the partial result is discarded below
			}
			sp := opts.Span.Start(name)
			defer sp.End()
			f()
		}
		if opts.Parallelism == 1 {
			run()
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			run()
		}()
	}
	stage("expansion", func() {
		res.Expansion = metrics.ExpansionWith(eng, ball.Config{
			MaxSources: srcBudget,
			Rand:       rand.New(rand.NewSource(opts.Seed)),
		})
	})
	stage("resilience", func() {
		res.Resilience = metrics.ResilienceWith(eng, curveCfg(), partition.Options{},
			opts.Seed+100)
	})
	stage("distortion", func() { res.Distortion = metrics.DistortionWith(eng, curveCfg(), 3) })
	stage("eigenvalues", func() { res.Eigenvalues = metrics.EigenvalueSpectrum(g, opts.EigenRank) })
	stage("eccentricity", func() {
		// Same sampling stream as expansion, so the eccentricities read
		// straight off the profiles the expansion metric already grew.
		res.Eccentricity = metrics.EccentricityDistributionWith(eng, srcBudget, 0.1,
			rand.New(rand.NewSource(opts.Seed)))
	})
	stage("vertex_cover", func() { res.VertexCover = metrics.VertexCoverCurveWith(eng, curveCfg()) })
	stage("biconnectivity", func() { res.Biconnectivity = metrics.BiconnectivityCurveWith(eng, curveCfg()) })
	stage("attack_tolerance", func() {
		res.Attack = metrics.AttackTolerance(g, opts.ToleranceFractions, pathBudget)
	})
	stage("error_tolerance", func() {
		res.Error = metrics.ErrorTolerance(g, opts.ToleranceFractions, pathBudget,
			rand.New(rand.NewSource(opts.Seed+200)))
	})
	stage("clustering", func() {
		res.Clustering = metrics.ClusteringCurveWith(eng, curveCfg())
		res.WholeGraphClustering = metrics.ClusteringCoefficient(g)
	})

	if !opts.SkipHierarchy {
		stage("link_values", func() {
			// Like the paper (footnote 29), router-level graphs reduce to
			// their core (recursive removal of degree-1 nodes) before link
			// values: the full graph is computationally out of reach and
			// the core's distribution is qualitatively the same.
			lvGraph := g
			if n.Overlay != nil {
				if core, _ := g.Core(); core.NumNodes() >= 3 {
					lvGraph = core
				}
			}
			res.LinkValues = hierarchy.LinkValues(lvGraph, hierarchy.Options{
				MaxSources:  opts.LinkSources,
				Rand:        rand.New(rand.NewSource(opts.Seed + 300)),
				Parallelism: opts.Parallelism,
				Sigma:       opts.LinkSigma,
				Metrics:     opts.Metrics,
			})
		})
		if n.Policy != nil {
			stage("policy_link_values", func() {
				res.PolicyLinkValues = hierarchy.PolicyLinkValues(n.Policy, hierarchy.Options{
					MaxSources:  opts.LinkSources,
					Rand:        rand.New(rand.NewSource(opts.Seed + 400)),
					Parallelism: opts.Parallelism,
					Sigma:       opts.LinkSigma,
					Metrics:     opts.Metrics,
				})
			})
		}
	}
	if n.Policy != nil || n.Overlay != nil {
		stage("policy_expansion", func() {
			// Fresh Rand with the same seed so the policy variant samples
			// the same ball centers as the plain expansion.
			res.PolicyExpansion = policyExpansion(n, ball.Config{
				MaxSources: srcBudget,
				Rand:       rand.New(rand.NewSource(opts.Seed)),
			})
		})
		stage("policy_ball_curves", func() {
			res.PolicyResilience, res.PolicyDistortion = policyBallCurves(n, opts)
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// policyBallCurves computes resilience and distortion over policy-induced
// balls, the AS(Policy)/RL(Policy) curves of Figure 2(e,f). Policy balls
// contain only the links on policy-compliant shortest paths, which is what
// lowers the measured resilience ("the resilience of the RL and AS graphs
// decreases... although its qualitative behavior remains unchanged").
func policyBallCurves(n *Network, opts SuiteOptions) (stats.Series, stats.Series) {
	g := n.Graph
	cfg := ball.Config{
		MaxSources: opts.Sources,
		Rand:       rand.New(rand.NewSource(opts.Seed + 1)),
	}
	centers := ball.Centers(g, &cfg)
	grow := func(src int32, h int) policy.Ball {
		if n.Overlay != nil {
			return n.Overlay.PolicyBall(src, h)
		}
		return n.Policy.PolicyBall(src, h)
	}
	popts := partition.Options{Rand: rand.New(rand.NewSource(opts.Seed + 100))}
	// One workspace serves the whole sequential sweep; CutSizeWith is
	// bit-identical to CutSize, it just skips the per-ball solver arenas.
	pws := partition.NewWorkspace()
	var resRaw, distRaw []stats.Point
	for _, src := range centers {
		prev := 0
		for h := 1; ; h++ {
			b := grow(src, h)
			if len(b.Nodes) == prev && h > 1 {
				break // policy reach exhausted
			}
			prev = len(b.Nodes)
			if opts.MaxBallSize > 0 && len(b.Nodes) > opts.MaxBallSize {
				break
			}
			if len(b.Nodes) < 3 {
				continue
			}
			sub := b.Subgraph()
			cut := partition.CutSizeWith(pws, sub, popts)
			resRaw = append(resRaw, stats.Point{X: float64(sub.NumNodes()), Y: float64(cut)})
			if d := metrics.SubgraphDistortion(sub, 3); d > 0 {
				distRaw = append(distRaw, stats.Point{X: float64(sub.NumNodes()), Y: d})
			}
		}
	}
	res := stats.Bucketize(resRaw, 1.45)
	res.Name = "resilience(policy)"
	dist := stats.Bucketize(distRaw, 1.45)
	dist.Name = "distortion(policy)"
	return res, dist
}

// policyExpansion computes E(h) over policy-induced balls (the AS(Policy)
// curves of Figure 2(d)).
func policyExpansion(n *Network, cfg ball.Config) stats.Series {
	g := n.Graph
	total := float64(g.NumNodes())
	centers := ball.Centers(g, &cfg)
	// Per-center cumulative reach profiles, saturated to the global
	// maximum eccentricity afterwards. The distance histogram is a slice
	// indexed by distance (distances are small dense ints; a map here
	// churns on large policy graphs), reused across centers.
	var profiles [][]float64
	var counts []int
	maxH := 0
	// One product-space tree serves every center: PathsInto recycles the
	// dist/parent/best arrays, and the tree's per-node Dist is the same
	// min-over-states the standalone Dist sweep computes.
	var pt *policy.PathTree
	nn := int32(g.NumNodes())
	for _, src := range centers {
		if n.Overlay != nil {
			pt = n.Overlay.PathsInto(pt, src)
		} else {
			pt = n.Policy.PathsInto(pt, src)
		}
		counts = counts[:0]
		ecc := 0
		for v := int32(0); v < nn; v++ {
			d := pt.Dist(v)
			if d == graph.Unreached {
				continue
			}
			di := int(d)
			for di >= len(counts) {
				counts = append(counts, 0)
			}
			counts[di]++
			if di > ecc {
				ecc = di
			}
		}
		cum := make([]float64, ecc+1)
		run := 0
		for h := 0; h <= ecc; h++ {
			run += counts[h]
			cum[h] = float64(run)
		}
		profiles = append(profiles, cum)
		if ecc > maxH {
			maxH = ecc
		}
	}
	s := stats.Series{Name: "expansion(policy)"}
	for h := 0; h <= maxH; h++ {
		sum := 0.0
		for _, cum := range profiles {
			if h < len(cum) {
				sum += cum[h]
			} else {
				sum += cum[len(cum)-1]
			}
		}
		s.Add(float64(h), sum/float64(len(profiles))/total)
	}
	return s
}
