package core

import (
	"math/rand"
	"testing"

	"topocmp/internal/graph"
)

// TestStreamedBuilderGoldenPaperFamilies pins the streamed CSR freeze
// against the map-backed builder on every paper network family: the edge
// multiset of each built network — scrambled, endpoint-flipped and
// partially duplicated to stress the freeze's sort/dedup path — must come
// out of both builders as a byte-identical CSR (compared via fingerprints,
// plus the node/edge counts of the original graph).
func TestStreamedBuilderGoldenPaperFamilies(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	nets := []*Network{ms.AS, ms.RL}
	for _, name := range append(append([]string{}, GeneratedNetworkNames...), CanonicalNetworkNames...) {
		nets = append(nets, BuildNetwork(name, opts))
	}
	r := rand.New(rand.NewSource(99))
	for _, n := range nets {
		g := n.Graph
		edges := g.Edges()
		// Scramble edge order, flip endpoints, and duplicate ~25% of edges.
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		feed := make([]graph.Edge, 0, len(edges)*5/4)
		for _, e := range edges {
			if r.Intn(2) == 0 {
				e.U, e.V = e.V, e.U
			}
			feed = append(feed, e)
			if r.Intn(4) == 0 {
				feed = append(feed, graph.Edge{U: e.V, V: e.U})
			}
		}
		mb := graph.NewBuilder(g.NumNodes())
		sb := graph.NewStreamBuilder(g.NumNodes())
		for _, e := range feed {
			mb.AddEdge(e.U, e.V)
			sb.AddEdge(e.U, e.V)
		}
		mg, sg := mb.Graph(), sb.Graph()
		if mg.Fingerprint() != sg.Fingerprint() {
			t.Errorf("%s: streamed CSR differs from map CSR", n.Name)
		}
		if sg.Fingerprint() != g.Fingerprint() {
			t.Errorf("%s: rebuilt CSR differs from the original graph", n.Name)
		}
		if sg.NumNodes() != g.NumNodes() || sg.NumEdges() != g.NumEdges() {
			t.Errorf("%s: rebuilt %d nodes / %d edges, original %d / %d",
				n.Name, sg.NumNodes(), sg.NumEdges(), g.NumNodes(), g.NumEdges())
		}
	}
}
