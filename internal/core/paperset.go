package core

import (
	"fmt"
	"math/rand"

	"topocmp/internal/bgp"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/gen/tiers"
	"topocmp/internal/gen/transitstub"
	"topocmp/internal/gen/waxman"
	"topocmp/internal/internetsim"
	"topocmp/internal/obs"
	"topocmp/internal/policy"
	"topocmp/internal/traceroute"
)

// PaperSetOptions controls the construction of the Figure 1 network set.
type PaperSetOptions struct {
	Seed int64
	// Scale multiplies the sizes of the large networks (measured graphs,
	// PLRG, Tiers, Waxman, Random); 1.0 approximates the paper's sizes,
	// the default 0.3 keeps full-suite runs at laptop timescales. The
	// canonical Mesh/Tree and the 1008-node Transit-Stub are fixed-size as
	// in the paper.
	Scale float64
	// AliasFailure injects alias-resolution noise into the simulated
	// traceroute sweep (see traceroute.Options.AliasFailure); zero keeps
	// the sweep clean. Used to test the conclusions' robustness to
	// measurement artifacts the real SCAN map carries.
	AliasFailure float64

	// Metrics, when non-nil, receives the measurement pipeline's sweep
	// counters (bgp.* and traceroute.*). Never affects the constructed
	// networks, so it is excluded from CacheKey and the manifest config.
	Metrics *obs.Registry `json:"-"`
}

func (o *PaperSetOptions) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale == 0 {
		o.Scale = 0.3
	}
}

// ScalePresets maps the named -scale modes to their multipliers. "full-rl"
// is calibrated empirically so the measurement pipeline's traceroute sweep
// discovers the real SCAN/Mercator map's node count (at seed 1 it yields a
// 170,555-node RL graph against the map's 170,589 — within 0.02%); "1m"
// drives the degree-based generators to million-node instances (PLRG's base
// of 10,000 × 100). Both lean on the streamed CSR build path: at these
// sizes the map-backed builder's memory overhead is the binding constraint.
var ScalePresets = map[string]float64{
	"full-rl": 3.81,
	"1m":      100,
}

func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// CacheKey returns a canonical description of the options for the result
// cache. Every field that influences the constructed networks appears here
// (Metrics does not, so it is excluded); adding a result-affecting field to
// PaperSetOptions must extend this string (or bump cache.SchemaVersion) so
// stale entries are invalidated.
func (o PaperSetOptions) CacheKey() string {
	o.defaults()
	return fmt.Sprintf("set:seed=%d,scale=%g,alias=%g", o.Seed, o.Scale, o.AliasFailure)
}

// MeasuredSet holds the simulated measurement pipeline's products: the
// ground truth and the measured graphs derived from it.
type MeasuredSet struct {
	TruthAS *internetsim.ASLevel
	TruthRL *internetsim.RouterLevel
	AS      *Network // measured AS graph with Gao-inferred annotations
	RL      *Network // measured RL graph with AS overlay
}

// BuildMeasured runs the substitution pipeline of DESIGN.md: synthesize a
// ground-truth Internet, collect BGP tables at backbone vantages, sweep
// traceroutes from a few sources, and assemble the measured AS and RL
// graphs the rest of the study compares against.
func BuildMeasured(opts PaperSetOptions) *MeasuredSet {
	opts.defaults()
	r := rand.New(rand.NewSource(opts.Seed))

	numAS := scaled(10941, opts.Scale, 600)
	truthAS := internetsim.MustGenerateAS(r, internetsim.ASParams{NumAS: numAS})

	// AS measurement: BGP collection at ~20 backbone vantages, Gao
	// inference on the collected paths (renumbered into measured-graph ids).
	vantages := bgp.PickVantages(truthAS.Graph, 20, r)
	table := bgp.Collect(truthAS.Annotated, vantages)
	asGraph, asOrig := table.ExtractGraph()
	opts.Metrics.Counter("bgp.vantages").Add(int64(len(vantages)))
	opts.Metrics.Counter("bgp.paths_collected").Add(int64(len(table.Paths)))
	// Renumber paths into measured ids for inference.
	index := make(map[int32]int32, len(asOrig))
	for i, as := range asOrig {
		index[as] = int32(i)
	}
	paths := make([][]int32, 0, len(table.Paths))
	for _, p := range table.Paths {
		np := make([]int32, len(p))
		for i, as := range p {
			np[i] = index[as]
		}
		paths = append(paths, np)
	}
	asAnnotated := policy.InferGao(asGraph, paths)
	asNet := &Network{Name: "AS", Category: Measured, Graph: asGraph, Policy: asAnnotated}

	// RL measurement: router expansion of a (smaller) AS truth, then a
	// traceroute sweep. The RL graph is ~17x the AS graph in the paper; we
	// target a comparable ratio at reduced absolute scale.
	rlAS := truthAS
	truthRL := internetsim.MustGenerateRouters(r, rlAS, internetsim.RouterParams{})
	rlGraph, rlOrig := traceroute.Sweep(truthRL.Overlay, truthRL.Backbone, traceroute.Options{
		Sources: 8, DestFraction: 0.5, AliasFailure: opts.AliasFailure, Rand: r,
	})
	opts.Metrics.Counter("traceroute.routers_discovered").Add(int64(rlGraph.NumNodes()))
	opts.Metrics.Counter("traceroute.links_discovered").Add(int64(rlGraph.NumEdges()))
	asOf := make([]int32, rlGraph.NumNodes())
	for i, orig := range rlOrig {
		asOf[i] = truthRL.ASOf[orig]
	}
	overlay, err := policy.NewRouterOverlay(rlGraph, asOf, rlAS.Annotated)
	if err != nil {
		panic(fmt.Sprintf("core: measured RL overlay: %v", err))
	}
	rlNet := &Network{Name: "RL", Category: Measured, Graph: rlGraph, Overlay: overlay}

	return &MeasuredSet{TruthAS: truthAS, TruthRL: truthRL, AS: asNet, RL: rlNet}
}

// GeneratedNetworkNames and CanonicalNetworkNames list the Figure 1
// networks in their inventory (assembly) order; MeasuredNetworkNames are
// the two products of the measurement pipeline. Together they define the
// units the experiment pipeline can build independently.
var (
	MeasuredNetworkNames  = []string{"AS", "RL"}
	GeneratedNetworkNames = []string{"PLRG", "TS", "Tiers", "Waxman"}
	CanonicalNetworkNames = []string{"Mesh", "Random", "Tree", "Complete", "Linear"}
)

// BuildNetwork constructs one named generated or canonical network. Every
// network draws from its own seeded RNG (derived from opts.Seed and a
// per-network offset, never a shared stream), so networks can be built in
// any order — or concurrently — and come out bit-identical to the
// sequential BuildGenerated/BuildCanonical assembly. Measured networks
// ("AS", "RL") share the measurement pipeline and are built via
// BuildMeasured instead; BuildNetwork returns nil for them and for unknown
// names.
func BuildNetwork(name string, opts PaperSetOptions) *Network {
	opts.defaults()
	mk := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(opts.Seed + seed)) }
	switch name {
	case "PLRG":
		plrgN := scaled(10000, opts.Scale, 800)
		return &Network{Name: "PLRG", Category: Generated,
			Graph: plrg.MustGenerate(mk(11), plrg.Params{N: plrgN, Beta: 2.246})}
	case "TS":
		return &Network{Name: "TS", Category: Generated,
			Graph: transitstub.MustGenerate(mk(12), transitstub.Paper())}
	case "Tiers":
		tiersP := tiers.Paper()
		if opts.Scale < 0.9 {
			tiersP.MANsPerWAN = scaled(50, opts.Scale, 8)
			tiersP.WANNodes = scaled(500, opts.Scale, 60)
		}
		return &Network{Name: "Tiers", Category: Generated,
			Graph: tiers.MustGenerate(mk(13), tiersP)}
	case "Waxman":
		waxN := scaled(5000, opts.Scale, 600)
		// Waxman's alpha controls an O(N) expected degree: rescale it so the
		// scaled-down instance keeps the paper instance's ~7.2 average degree
		// instead of falling under the percolation threshold.
		waxAlpha := 0.005 * 5000 / float64(waxN)
		if waxAlpha > 1 {
			waxAlpha = 1
		}
		return &Network{Name: "Waxman", Category: Generated,
			Graph: waxman.MustGenerate(mk(14), waxman.Params{N: waxN, Alpha: waxAlpha, Beta: 0.30})}
	case "Mesh":
		return &Network{Name: "Mesh", Category: Canonical, Graph: canonical.Mesh(30, 30)}
	case "Random":
		randomN := scaled(5018, opts.Scale, 600)
		return &Network{Name: "Random", Category: Canonical,
			Graph: canonical.Random(mk(21), randomN+randomN/30, 4.18/float64(randomN))}
	case "Tree":
		return &Network{Name: "Tree", Category: Canonical, Graph: canonical.Tree(3, 6)}
	case "Complete":
		return &Network{Name: "Complete", Category: Canonical, Graph: canonical.Complete(150)}
	case "Linear":
		return &Network{Name: "Linear", Category: Canonical, Graph: canonical.Linear(500)}
	}
	return nil
}

// BuildGenerated constructs the Figure 1 generated networks.
func BuildGenerated(opts PaperSetOptions) []*Network {
	nets := make([]*Network, 0, len(GeneratedNetworkNames))
	for _, name := range GeneratedNetworkNames {
		nets = append(nets, BuildNetwork(name, opts))
	}
	return nets
}

// BuildCanonical constructs the Figure 1 canonical networks plus the
// Complete and Linear calibration graphs of §3.2.1.
func BuildCanonical(opts PaperSetOptions) []*Network {
	nets := make([]*Network, 0, len(CanonicalNetworkNames))
	for _, name := range CanonicalNetworkNames {
		nets = append(nets, BuildNetwork(name, opts))
	}
	return nets
}

// BuildPaperNetworks assembles the complete Figure 1 inventory: measured,
// generated and canonical.
func BuildPaperNetworks(opts PaperSetOptions) []*Network {
	opts.defaults()
	ms := BuildMeasured(opts)
	nets := []*Network{ms.AS, ms.RL}
	nets = append(nets, BuildGenerated(opts)...)
	nets = append(nets, BuildCanonical(opts)...)
	return nets
}
