package core

import (
	"math"

	"topocmp/internal/hierarchy"
	"topocmp/internal/stats"
)

// Level is the paper's qualitative Low/High judgement (§3.2.1).
type Level int

const (
	// Low and High follow the paper's table vocabulary.
	Low Level = iota
	High
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l == High {
		return "H"
	}
	return "L"
}

// Signature is a network's three-metric L/H pattern, e.g. the measured
// graphs' H/H/L.
type Signature struct {
	Expansion  Level
	Resilience Level
	Distortion Level
}

// String renders "HHL"-style signatures.
func (s Signature) String() string {
	return s.Expansion.String() + s.Resilience.String() + s.Distortion.String()
}

// ClassifyExpansion distinguishes exponential growth (High: tree, random,
// measured, PLRG, TS, Waxman) from polynomial growth (Low: mesh, Tiers) by
// comparing the quality of an exponential (semi-log) fit against a
// polynomial (log-log) fit over the pre-saturation region, exactly the
// "qualitative shape" judgement of §4.1.
func ClassifyExpansion(e stats.Series) Level {
	var pre []stats.Point
	for _, p := range e.Points {
		if p.X >= 1 && p.Y > 0 && p.Y <= 0.6 {
			pre = append(pre, p)
		}
	}
	if len(pre) < 3 {
		// Saturation within a couple of hops is extreme (complete-graph
		// style) expansion.
		return High
	}
	expFit := stats.SemiLogFit(pre)
	polyFit := stats.LogLogFit(pre)
	// A polynomial E(h) ∝ h^a has a log-log slope near a and a poor
	// semi-log fit; exponential growth is the reverse. When the fits are
	// close, a log-log slope above ~3 still indicates super-polynomial
	// growth at these scales.
	if polyFit.R2 > expFit.R2 && polyFit.Slope < 3.2 {
		return Low
	}
	return High
}

// ClassifyResilience distinguishes growing cut sizes (High: random kn, mesh
// sqrt(n), measured, PLRG, Tiers, Waxman) from flat ones (Low: tree, TS) by
// the log-log slope of R(n).
func ClassifyResilience(r stats.Series) Level {
	if r.Len() == 0 {
		return Low
	}
	last := r.Points[r.Len()-1]
	if r.Len() < 3 {
		// Degenerate curves (e.g. the complete graph saturates in one
		// hop): judge by the cut magnitude relative to ball size.
		if last.Y >= last.X/8 {
			return High
		}
		return Low
	}
	// Fit the mid region: tiny balls are stars and noise, and balls
	// approaching the whole graph plateau (a finite-size artifact the
	// paper's larger graphs avoid). The paper reads the same mid-range
	// behaviour off its log-log plots.
	maxX := last.X
	var asym []stats.Point
	for _, p := range r.Points {
		if p.X >= 20 && p.X <= 0.6*maxX {
			asym = append(asym, p)
		}
	}
	if len(asym) < 3 {
		asym = r.Points
	}
	fit := stats.LogLogFit(asym)
	// High resilience needs either sustained growth with cuts clearly
	// above the ~log n regime of trees and Transit-Stub, or cuts whose
	// sheer magnitude rules that regime out (balls near the whole graph
	// plateau, flattening the late slope, but a tree never reaches these
	// values).
	maxY, maxX := 0.0, 0.0
	for _, p := range r.Points {
		if p.Y > maxY {
			maxY = p.Y
		}
		if p.X > maxX {
			maxX = p.X
		}
	}
	logBound := 2 * math.Log2(maxX)
	if (fit.Slope >= 0.3 && last.Y > logBound) ||
		last.Y >= last.X/8 ||
		maxY > 1.25*logBound {
		return High
	}
	return Low
}

// ClassifyDistortion distinguishes log-growing distortion (High: mesh,
// random, Waxman) from flat low distortion (Low: tree, measured, PLRG, TS,
// Tiers). The judgement combines the value reached at the largest measured
// ball with the growth rate against log(n).
func ClassifyDistortion(d stats.Series) Level {
	if d.Len() == 0 {
		return Low
	}
	last := d.Points[d.Len()-1]
	// Per-decade growth of distortion: semi-log-x fit D = a*log10(n) + b.
	var lg []stats.Point
	for _, p := range d.Points {
		if p.X > 1 {
			lg = append(lg, stats.Point{X: log10(p.X), Y: p.Y})
		}
	}
	slope := 0.0
	if len(lg) >= 3 {
		slope = stats.LinearFit(lg).Slope
	}
	if last.Y >= 3.4 || (last.Y >= 2.6 && slope >= 0.9) {
		return High
	}
	return Low
}

func log10(x float64) float64 { return math.Log10(x) }

// Classify derives the network's three-metric signature from its suite
// result.
func Classify(res *SuiteResult) Signature {
	return Signature{
		Expansion:  ClassifyExpansion(res.Expansion),
		Resilience: ClassifyResilience(res.Resilience),
		Distortion: ClassifyDistortion(res.Distortion),
	}
}

// HierarchyClass returns the §5.1 grouping of the network's link-value
// distribution, or Loose when hierarchy was skipped.
func HierarchyClass(res *SuiteResult) hierarchy.Class {
	if res.LinkValues == nil {
		return hierarchy.Loose
	}
	return hierarchy.Classify(res.LinkValues)
}
