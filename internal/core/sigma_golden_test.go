package core

import (
	"math/rand"
	"reflect"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
	"topocmp/internal/obs"
)

// sigmaGoldenNets builds the paper families the link-value golden tests
// sweep: the two measured graphs (RL reduced to its core, as the suite
// computes link values), the generated and canonical families, plus a small
// lattice whose diameter clears the batching cutoff — so the batched kernel
// is exercised on a lattice shape whose binomial path counts still fit
// float64's exact-integer range.
func sigmaGoldenNets(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	ms := BuildMeasured(opts)
	nets := map[string]*graph.Graph{
		"AS": ms.AS.Graph,
	}
	if core, _ := ms.RL.Graph.Core(); core.NumNodes() >= 3 {
		nets["RLcore"] = core
	}
	for _, name := range []string{"PLRG", "TS", "Mesh", "Tree", "Random"} {
		nets[name] = BuildNetwork(name, opts).Graph
	}
	nets["SmallMesh"] = canonical.Mesh(12, 12)
	return nets
}

// TestLinkValueGoldenScalarVsSigma byte-compares LinkValues across the
// sigma routes: the historical scalar per-source BFS path against the
// batched sigma-carrying MSBFS kernel, across the paper families × sampled
// source budgets × worker counts. Path counts are exact integers in
// float64, so the comparison is exact equality, not a tolerance. The
// 30×30 Mesh — whose diameter sends SigmaAuto to the scalar route and
// whose path counts are the reason that route exists — is compared
// Auto-vs-Scalar; every other family forces both routes explicitly.
func TestLinkValueGoldenScalarVsSigma(t *testing.T) {
	for name, g := range sigmaGoldenNets(t) {
		budgets := []int{48, 192}
		if g.NumNodes() <= 700 {
			budgets = append(budgets, 0) // full enumeration, small nets only
		}
		other := hierarchy.SigmaBatched
		if name == "Mesh" {
			other = hierarchy.SigmaAuto
		}
		for _, budget := range budgets {
			lvOpts := func(mode hierarchy.SigmaMode, parallel int) hierarchy.Options {
				return hierarchy.Options{
					MaxSources:  budget,
					Rand:        rand.New(rand.NewSource(7)),
					Parallelism: parallel,
					Sigma:       mode,
				}
			}
			want := hierarchy.LinkValues(g, lvOpts(hierarchy.SigmaScalar, 1))
			for _, parallel := range []int{1, 4} {
				for _, mode := range []hierarchy.SigmaMode{hierarchy.SigmaScalar, other} {
					got := hierarchy.LinkValues(g, lvOpts(mode, parallel))
					if !reflect.DeepEqual(got.Values, want.Values) {
						t.Errorf("%s budget=%d P=%d mode=%d: link values differ from scalar P=1",
							name, budget, parallel, mode)
					}
				}
			}
		}
	}
}

// TestPolicyLinkValueGoldenScalarVsSigma is the policy-routing variant of
// the golden comparison: the batched route traverses the valley-free
// product graph as one directed CSR (policy.ProductCSR) and must reproduce
// the scalar per-source product BFS bit for bit.
func TestPolicyLinkValueGoldenScalarVsSigma(t *testing.T) {
	ms := BuildMeasured(PaperSetOptions{Seed: 1, Scale: 0.12})
	a := ms.AS.Policy
	if a == nil {
		t.Fatal("AS network has no policy annotations")
	}
	for _, budget := range []int{48, 192} {
		lvOpts := func(mode hierarchy.SigmaMode, parallel int) hierarchy.Options {
			return hierarchy.Options{
				MaxSources:  budget,
				Rand:        rand.New(rand.NewSource(7)),
				Parallelism: parallel,
				Sigma:       mode,
			}
		}
		want := hierarchy.PolicyLinkValues(a, lvOpts(hierarchy.SigmaScalar, 1))
		for _, parallel := range []int{1, 4} {
			for _, mode := range []hierarchy.SigmaMode{hierarchy.SigmaScalar, hierarchy.SigmaBatched} {
				got := hierarchy.PolicyLinkValues(a, lvOpts(mode, parallel))
				if !reflect.DeepEqual(got.Values, want.Values) {
					t.Errorf("budget=%d P=%d mode=%d: policy link values differ from scalar P=1",
						budget, parallel, mode)
				}
			}
		}
	}
}

// TestTraversalSetSizesGoldenScalarVsSigma pins the per-edge traversal-set
// counts across the routes; counts are integer increments, so equality is
// exact by construction and any divergence is a kernel bug.
func TestTraversalSetSizesGoldenScalarVsSigma(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	nets := map[string]*graph.Graph{
		"PLRG":      BuildNetwork("PLRG", opts).Graph,
		"Tree":      BuildNetwork("Tree", opts).Graph,
		"SmallMesh": canonical.Mesh(12, 12),
	}
	for name, g := range nets {
		tsOpts := func(mode hierarchy.SigmaMode) hierarchy.Options {
			return hierarchy.Options{
				MaxSources: 64,
				Rand:       rand.New(rand.NewSource(7)),
				Sigma:      mode,
			}
		}
		want := hierarchy.TraversalSetSizes(g, tsOpts(hierarchy.SigmaScalar))
		got := hierarchy.TraversalSetSizes(g, tsOpts(hierarchy.SigmaBatched))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: batched traversal-set sizes differ from scalar", name)
		}
	}
}

// TestSigmaRoutingCounters asserts SigmaAuto's diameter probe actually
// routes: the lattice family lands on the scalar fallback, the heavy-tailed
// family on the batched kernel — both observable through the hierarchy.*
// counters the sweeps publish.
func TestSigmaRoutingCounters(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.12}
	cases := []struct {
		name    string
		g       *graph.Graph
		counter string
		zero    string
	}{
		{"Mesh", BuildNetwork("Mesh", opts).Graph, "hierarchy.sigma_scalar", "hierarchy.sigma_batches"},
		{"PLRG", BuildNetwork("PLRG", opts).Graph, "hierarchy.sigma_batches", "hierarchy.sigma_scalar"},
	}
	for _, tc := range cases {
		reg := obs.NewRegistry()
		hierarchy.LinkValues(tc.g, hierarchy.Options{
			MaxSources: 96,
			Rand:       rand.New(rand.NewSource(7)),
			Metrics:    reg,
		})
		if v := reg.Counter(tc.counter).Value(); v == 0 {
			t.Errorf("%s: %s = 0, want > 0", tc.name, tc.counter)
		}
		if v := reg.Counter(tc.zero).Value(); v != 0 {
			t.Errorf("%s: %s = %d, want 0", tc.name, tc.zero, v)
		}
	}
}

// TestRunSuiteSigmaModesIdentical runs the whole metric suite — every
// stage, not just link values — under each forced sigma route and requires
// identical results, the suite-level form of the byte-identity contract
// that keeps LinkSigma out of the cache key.
func TestRunSuiteSigmaModesIdentical(t *testing.T) {
	opts := PaperSetOptions{Seed: 1, Scale: 0.1}
	net := BuildNetwork("PLRG", opts)
	base := SuiteOptions{Sources: 8, LinkSources: 64, Seed: 1, Parallelism: 2}
	want := RunSuite(net, base)
	for _, mode := range []hierarchy.SigmaMode{hierarchy.SigmaScalar, hierarchy.SigmaBatched} {
		o := base
		o.LinkSigma = mode
		got := RunSuite(net, o)
		if !reflect.DeepEqual(got.LinkValues, want.LinkValues) {
			t.Errorf("mode=%d: suite link values differ from SigmaAuto", mode)
		}
		if !reflect.DeepEqual(got.PolicyLinkValues, want.PolicyLinkValues) {
			t.Errorf("mode=%d: suite policy link values differ from SigmaAuto", mode)
		}
	}
}
