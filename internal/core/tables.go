package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"topocmp/internal/hierarchy"
)

// Row is one line of the §4.4 classification table (and the §5.1 grouping).
type Row struct {
	Name      string
	Category  Category
	Signature Signature
	Hierarchy hierarchy.Class
	// HasHierarchy distinguishes "loose" from "not computed".
	HasHierarchy bool
}

// ExpectedSignatures is the paper's §4.4 table, the golden reference the
// reproduction is judged against.
var ExpectedSignatures = map[string]string{
	"Mesh":     "LHH",
	"Random":   "HHH",
	"Tree":     "HLL",
	"Complete": "HHL",
	"Linear":   "LLL",
	"AS":       "HHL",
	"RL":       "HHL",
	"PLRG":     "HHL",
	"Tiers":    "LHL",
	"TS":       "HLL",
	"Waxman":   "HHH",
}

// ExpectedHierarchy is the paper's §5.1 grouping table.
var ExpectedHierarchy = map[string]hierarchy.Class{
	"Mesh":   hierarchy.Loose,
	"Random": hierarchy.Loose,
	"Tree":   hierarchy.Strict,
	"AS":     hierarchy.Moderate,
	"RL":     hierarchy.Moderate,
	"PLRG":   hierarchy.Moderate,
	"Tiers":  hierarchy.Strict,
	"TS":     hierarchy.Strict,
	"Waxman": hierarchy.Loose,
}

// BuildRow classifies one suite result.
func BuildRow(res *SuiteResult) Row {
	r := Row{
		Name:      res.Network.Name,
		Category:  res.Network.Category,
		Signature: Classify(res),
	}
	if res.LinkValues != nil {
		r.Hierarchy = hierarchy.Classify(res.LinkValues)
		r.HasHierarchy = true
	}
	return r
}

// WriteTable renders rows as the paper's classification table.
func WriteTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tCategory\tExpansion\tResilience\tDistortion\tHierarchy\tExpected")
	sorted := append([]Row(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Category != sorted[j].Category {
			return sorted[i].Category < sorted[j].Category
		}
		return sorted[i].Name < sorted[j].Name
	})
	for _, r := range sorted {
		h := "-"
		if r.HasHierarchy {
			h = r.Hierarchy.String()
		}
		expected := ExpectedSignatures[r.Name]
		if expected == "" {
			expected = "?"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, r.Category, r.Signature.Expansion, r.Signature.Resilience,
			r.Signature.Distortion, h, expected)
	}
	return tw.Flush()
}

// MatchesPaper reports whether a row's signature agrees with the paper's
// table (unknown names count as matching).
func (r Row) MatchesPaper() bool {
	want, ok := ExpectedSignatures[r.Name]
	if !ok {
		return true
	}
	return r.Signature.String() == want
}

// HierarchyMatchesPaper reports whether the row's hierarchy grouping agrees
// with §5.1 (rows without hierarchy, or unknown names, count as matching).
func (r Row) HierarchyMatchesPaper() bool {
	want, ok := ExpectedHierarchy[r.Name]
	if !ok || !r.HasHierarchy {
		return true
	}
	return r.Hierarchy == want
}
