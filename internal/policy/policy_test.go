package policy

import (
	"math/rand"
	"sort"
	"testing"

	"topocmp/internal/graph"
)

// figure15 reconstructs the Appendix E example (Figure 15): nodes A..H with
// policy distances A=0, B=1, C=1, H=1, D=2, E=2, G=3, F=4.
//
// Relationships chosen to reproduce the published ball contents:
// A–B peer; B→E provider-customer; A→H provider-customer; C provider of A;
// D provider of C; E provider of D; F provider of E; E→G provider-customer.
const (
	nA = iota
	nB
	nC
	nD
	nE
	nF
	nG
	nH
)

func figure15() *Annotated {
	b := graph.NewBuilder(8)
	edges := [][2]int32{
		{nA, nB}, {nA, nC}, {nA, nH}, {nB, nE},
		{nC, nD}, {nD, nE}, {nE, nF}, {nE, nG},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	a := NewAnnotated(b.Graph())
	a.SetPeer(nA, nB)
	a.SetProviderCustomer(nB, nE) // B provides to E
	a.SetProviderCustomer(nA, nH)
	a.SetProviderCustomer(nC, nA) // C is A's provider
	a.SetProviderCustomer(nD, nC)
	a.SetProviderCustomer(nE, nD)
	a.SetProviderCustomer(nF, nE)
	a.SetProviderCustomer(nE, nG)
	return a
}

func TestAnnotatedValidate(t *testing.T) {
	a := figure15()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	unannotated := NewAnnotated(b.Graph())
	if err := unannotated.Validate(); err == nil {
		t.Fatal("expected validation error for unannotated edge")
	}
}

func TestRelationshipStrings(t *testing.T) {
	want := map[Relationship]string{
		RelNone: "none", RelCustomer: "customer", RelProvider: "provider",
		RelPeer: "peer", RelSibling: "sibling",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("String(%d) = %q", r, r.String())
		}
	}
}

func TestFigure15Distances(t *testing.T) {
	a := figure15()
	d := a.Dist(nA)
	want := []int32{0, 1, 1, 2, 2, 4, 3, 1}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("pdist(%c) = %d, want %d", 'A'+v, d[v], w)
		}
	}
}

func edgeSet(edges []graph.Edge) map[[2]int32]bool {
	s := map[[2]int32]bool{}
	for _, e := range edges {
		s[[2]int32{e.U, e.V}] = true
	}
	return s
}

func TestFigure15BallRadius3(t *testing.T) {
	a := figure15()
	b := a.PolicyBall(nA, 3)
	wantNodes := []int32{nA, nB, nC, nD, nE, nG, nH}
	got := append([]int32(nil), b.Nodes...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(wantNodes) {
		t.Fatalf("ball nodes = %v, want %v", got, wantNodes)
	}
	for i := range wantNodes {
		if got[i] != wantNodes[i] {
			t.Fatalf("ball nodes = %v, want %v", got, wantNodes)
		}
	}
	es := edgeSet(b.Edges)
	wantEdges := [][2]int32{{nA, nB}, {nA, nC}, {nA, nH}, {nB, nE}, {nC, nD}, {nE, nG}}
	if len(es) != len(wantEdges) {
		t.Fatalf("ball edges = %v, want %v", b.Edges, wantEdges)
	}
	for _, e := range wantEdges {
		if !es[e] {
			t.Fatalf("missing edge %v in %v", e, b.Edges)
		}
	}
}

func TestFigure15BallRadius4(t *testing.T) {
	// "A ball of radius 4 includes all nodes and links in the ball of
	// radius 3 plus node F and links (D,E) and (E,F)."
	a := figure15()
	b := a.PolicyBall(nA, 4)
	if len(b.Nodes) != 8 {
		t.Fatalf("ball nodes = %v, want all 8", b.Nodes)
	}
	es := edgeSet(b.Edges)
	if len(es) != 8 {
		t.Fatalf("ball edges = %v, want all 8", b.Edges)
	}
	if !es[[2]int32{nD, nE}] || !es[[2]int32{nE, nF}] {
		t.Fatalf("radius-4 ball must add (D,E) and (E,F): %v", b.Edges)
	}
}

func TestPolicyDistNeverShorterThanBFS(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(1)), 200, 400)
	sd, _ := a.G.BFS(0)
	pd := a.Dist(0)
	for v := range sd {
		if sd[v] != graph.Unreached && pd[v] != graph.Unreached && pd[v] < sd[v] {
			t.Fatalf("policy dist %d < shortest %d at node %d", pd[v], sd[v], v)
		}
	}
}

// randomAnnotated builds a connected-ish random graph with random
// relationships for property-style tests.
func randomAnnotated(r *rand.Rand, n, m int) *Annotated {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i), int32(r.Intn(i)))
	}
	for i := 0; i < m; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Graph()
	a := NewAnnotated(g)
	for _, e := range g.Edges() {
		switch r.Intn(4) {
		case 0:
			a.SetProviderCustomer(e.U, e.V)
		case 1:
			a.SetProviderCustomer(e.V, e.U)
		case 2:
			a.SetPeer(e.U, e.V)
		default:
			a.SetSibling(e.U, e.V)
		}
	}
	return a
}

func TestValleyFreeInvariant(t *testing.T) {
	// Every edge included in a policy ball must be traversable in some
	// valley-free walk; spot check by validating ball subgraphs connect.
	a := randomAnnotated(rand.New(rand.NewSource(2)), 150, 300)
	b := a.PolicyBall(0, 3)
	sub := b.Subgraph()
	if sub.NumNodes() != len(b.Nodes) {
		t.Fatalf("subgraph nodes %d != %d", sub.NumNodes(), len(b.Nodes))
	}
	if len(b.Nodes) > 1 && !sub.IsConnected() {
		t.Fatal("policy ball subgraph should be connected")
	}
}

func TestPathInflationAtLeastOne(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(3)), 120, 240)
	infl := a.PathInflation([]int32{0, 5, 10})
	if infl < 1 {
		t.Fatalf("path inflation = %v, want >= 1", infl)
	}
}

func TestAllSiblingsEqualsShortestPaths(t *testing.T) {
	// With every edge sibling, policy imposes no constraint.
	r := rand.New(rand.NewSource(4))
	b := graph.NewBuilder(80)
	for i := 1; i < 80; i++ {
		b.AddEdge(int32(i), int32(r.Intn(i)))
	}
	g := b.Graph()
	a := NewAnnotated(g)
	for _, e := range g.Edges() {
		a.SetSibling(e.U, e.V)
	}
	sd, _ := g.BFS(0)
	pd := a.Dist(0)
	for v := range sd {
		if sd[v] != pd[v] {
			t.Fatalf("sibling-only pdist %d != %d at %d", pd[v], sd[v], v)
		}
	}
}

func TestGaoInferenceOnCleanHierarchy(t *testing.T) {
	// Three-tier provider hierarchy; paths generated by valley-free
	// routing should let Gao recover every provider-customer edge.
	b := graph.NewBuilder(9)
	// 0 is the core (highest degree, as Gao's top-provider heuristic
	// assumes); 1,2,7,8 its customers; 3,4 customers of 1; 5,6 of 2.
	prov := [][2]int32{
		{0, 1}, {0, 2}, {0, 7}, {0, 8},
		{1, 3}, {1, 4}, {2, 5}, {2, 6},
	}
	for _, e := range prov {
		b.AddEdge(e[0], e[1])
	}
	g := b.Graph()
	truth := NewAnnotated(g)
	for _, e := range prov {
		truth.SetProviderCustomer(e[0], e[1])
	}
	// AS paths as seen at stub vantage points (uphill then downhill).
	paths := [][]int32{
		{3, 1}, {3, 1, 0}, {3, 1, 4}, {3, 1, 0, 2}, {3, 1, 0, 2, 5}, {3, 1, 0, 2, 6},
		{3, 1, 0, 7}, {3, 1, 0, 8},
		{5, 2, 0, 1, 3}, {6, 2}, {4, 1, 0}, {7, 0, 2, 5}, {8, 0, 1, 4},
	}
	inferred := InferGao(g, paths)
	acc := InferenceAccuracy(truth, inferred)
	if acc < 0.99 {
		t.Fatalf("Gao accuracy = %v, want ~1", acc)
	}
}

func TestGaoInfersPeerWhenNoTransit(t *testing.T) {
	// Edge (1,2) never carries transit in the paths: inferred peer.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Graph()
	paths := [][]int32{{1, 0}, {2, 0}}
	inferred := InferGao(g, paths)
	if inferred.Rel(1, 2) != RelPeer {
		t.Fatalf("rel(1,2) = %v, want peer", inferred.Rel(1, 2))
	}
}

func TestRouterOverlayValidation(t *testing.T) {
	asb := graph.NewBuilder(2)
	asb.AddEdge(0, 1)
	asg := asb.Graph()
	a := NewAnnotated(asg)
	a.SetProviderCustomer(0, 1)
	rlb := graph.NewBuilder(4)
	rlb.AddEdge(0, 1)
	rlb.AddEdge(1, 2)
	rlb.AddEdge(2, 3)
	rl := rlb.Graph()
	if _, err := NewRouterOverlay(rl, []int32{0, 0, 1}, a); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := NewRouterOverlay(rl, []int32{0, 0, 1, 9}, a); err == nil {
		t.Fatal("expected invalid-AS error")
	}
	o, err := NewRouterOverlay(rl, []int32{0, 0, 1, 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	d := o.Dist(0)
	want := []int32{0, 1, 2, 3}
	for v, w := range want {
		if d[v] != w {
			t.Fatalf("router pdist[%d] = %d, want %d", v, d[v], w)
		}
	}
}

func TestRouterOverlayValleyBlocked(t *testing.T) {
	// AS topology: 1 and 2 are both customers of 0... but 1-2 also peer?
	// Simpler: AS 0 -> AS 1 (0 provider), AS 0 -> AS 2. Routers in AS 1
	// cannot reach AS 2 via AS 1->0->2? That IS allowed (up then down).
	// Blocked case: AS1 and AS2 peer with AS0; path 1-0-2 would be
	// peer,peer: invalid.
	asb := graph.NewBuilder(3)
	asb.AddEdge(0, 1)
	asb.AddEdge(0, 2)
	asg := asb.Graph()
	a := NewAnnotated(asg)
	a.SetPeer(0, 1)
	a.SetPeer(0, 2)
	rlb := graph.NewBuilder(3)
	rlb.AddEdge(0, 1) // AS1 router - AS0 router
	rlb.AddEdge(1, 2) // AS0 router - AS2 router
	rl := rlb.Graph()
	o, err := NewRouterOverlay(rl, []int32{1, 0, 2}, a)
	if err != nil {
		t.Fatal(err)
	}
	d := o.Dist(0)
	if d[2] != graph.Unreached {
		t.Fatalf("peer-peer valley should be unreachable, got %d", d[2])
	}
}

func TestRouterPolicyBall(t *testing.T) {
	asb := graph.NewBuilder(2)
	asb.AddEdge(0, 1)
	asg := asb.Graph()
	a := NewAnnotated(asg)
	a.SetProviderCustomer(0, 1)
	rlb := graph.NewBuilder(5)
	rlb.AddEdge(0, 1)
	rlb.AddEdge(1, 2)
	rlb.AddEdge(2, 3)
	rlb.AddEdge(3, 4)
	rl := rlb.Graph()
	o, err := NewRouterOverlay(rl, []int32{0, 0, 1, 1, 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	b := o.PolicyBall(0, 2)
	if len(b.Nodes) != 3 || len(b.Edges) != 2 {
		t.Fatalf("ball = %d nodes %d edges, want 3/2", len(b.Nodes), len(b.Edges))
	}
}
