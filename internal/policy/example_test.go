package policy_test

import (
	"fmt"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// A customer multihomed to two providers cannot be used as transit between
// them: the valley-free distance between the providers stays 2 only if they
// peer or share an upstream; through the customer it is forbidden.
func Example_valleyFree() {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2) // provider 0 - customer 2
	b.AddEdge(1, 2) // provider 1 - customer 2
	a := policy.NewAnnotated(b.Graph())
	a.SetProviderCustomer(0, 2)
	a.SetProviderCustomer(1, 2)

	dist := a.Dist(0)
	fmt.Println("0 -> 2:", dist[2])
	fmt.Println("0 -> 1 reachable:", dist[1] != graph.Unreached)
	// Output:
	// 0 -> 2: 1
	// 0 -> 1 reachable: false
}

func ExampleInferGao() {
	// A provider (0) with two customers (1, 2); paths collected at the
	// customers reveal the relationships.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Graph()
	inferred := policy.InferGao(g, [][]int32{{1, 0}, {2, 0}, {1, 0, 2}})
	fmt.Println(inferred.Rel(0, 1), inferred.Rel(1, 0))
	// Output: customer provider
}
