package policy

import "topocmp/internal/graph"

// PathTree holds one shortest policy path from a source to every reachable
// node, as a parent structure over the valley-free product space. BGP-style
// deterministic tie-breaking (lowest neighbor id, then lowest state) makes
// the selected paths stable across runs.
type PathTree struct {
	src    int32
	dist   []int32 // product distances
	parent []int32 // product parent state, -1 at roots
	best   []int32 // best (minimal-distance, tie-break lowest) arrival state per node, -1 unreachable
	queue  []int32 // BFS frontier, recycled by PathsInto
}

// Paths computes a policy path tree from src over the annotated graph.
func (a *Annotated) Paths(src int32) *PathTree {
	return a.PathsInto(nil, src)
}

// PathsInto is Paths recycling t's product-space scratch (dist, parent,
// best, queue); t == nil allocates a fresh tree. Sweeps that run hundreds
// of single-source trees over one graph (traceroute, BGP collection,
// policy expansion) pass the previous tree back in and allocate nothing
// after the first source. The filled tree is always returned; any previous
// contents of t are overwritten.
func (a *Annotated) PathsInto(t *PathTree, src int32) *PathTree {
	n := a.G.NumNodes()
	return buildPathTree(t, src, n, func(cur int32, visit func(next int32)) {
		u, s := cur/numStates, int(cur%numStates)
		for _, v := range a.G.Neighbors(u) {
			if ns := transition(s, a.Rel(u, v)); ns >= 0 {
				visit(v*numStates + int32(ns))
			}
		}
	})
}

// Paths computes a router-level policy path tree from src.
func (o *RouterOverlay) Paths(src int32) *PathTree {
	return o.PathsInto(nil, src)
}

// PathsInto is Paths recycling t's scratch; see Annotated.PathsInto.
func (o *RouterOverlay) PathsInto(t *PathTree, src int32) *PathTree {
	n := o.RL.NumNodes()
	return buildPathTree(t, src, n, func(cur int32, visit func(next int32)) {
		u, s := cur/numStates, int(cur%numStates)
		asU := o.ASOf[u]
		for _, v := range o.RL.Neighbors(u) {
			ns := s
			if asV := o.ASOf[v]; asV != asU {
				ns = transition(s, o.AS.Rel(asU, asV))
				if ns < 0 {
					continue
				}
			}
			visit(v*numStates + int32(ns))
		}
	})
}

func buildPathTree(t *PathTree, src int32, n int, expand func(cur int32, visit func(next int32))) *PathTree {
	if t == nil || cap(t.dist) < n*numStates {
		t = &PathTree{
			dist:   make([]int32, n*numStates),
			parent: make([]int32, n*numStates),
			best:   make([]int32, n),
		}
	}
	t.src = src
	t.dist = t.dist[:n*numStates]
	t.parent = t.parent[:n*numStates]
	t.best = t.best[:n]
	for i := range t.dist {
		t.dist[i] = graph.Unreached
		t.parent[i] = -1
	}
	for i := range t.best {
		t.best[i] = -1
	}
	start := src*numStates + stateUp
	t.dist[start] = 0
	queue := append(t.queue[:0], start)
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		du := t.dist[cur]
		expand(cur, func(next int32) {
			if t.dist[next] == graph.Unreached {
				t.dist[next] = du + 1
				t.parent[next] = cur
				queue = append(queue, next)
			}
		})
	}
	t.queue = queue
	for v := int32(0); v < int32(n); v++ {
		bestD := graph.Unreached
		for s := int32(0); s < numStates; s++ {
			st := v*numStates + s
			if t.dist[st] < bestD {
				bestD = t.dist[st]
				t.best[v] = st
			}
		}
	}
	return t
}

// Dist returns the policy distance to dst, or graph.Unreached.
func (t *PathTree) Dist(dst int32) int32 {
	if t.best[dst] < 0 {
		return graph.Unreached
	}
	return t.dist[t.best[dst]]
}

// Path returns the node sequence of the selected policy path from the
// source to dst (inclusive on both ends), or nil if unreachable.
func (t *PathTree) Path(dst int32) []int32 {
	return t.PathInto(nil, dst)
}

// PathInto is Path reusing buf's storage: sweeps that walk many
// destinations pass the previous return value back in and allocate only on
// growth. Returns nil if dst is unreachable.
func (t *PathTree) PathInto(buf []int32, dst int32) []int32 {
	st := t.best[dst]
	if st < 0 {
		return nil
	}
	rev := buf[:0]
	for st >= 0 {
		rev = append(rev, st/numStates)
		st = t.parent[st]
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// NumProductStates returns the product-space size a VisitPathEdges stamp
// must cover (pass it to Stamp.Begin once per tree).
func (t *PathTree) NumProductStates() int { return len(t.dist) }

// VisitPathEdges enumerates the node-level hops (u, v) of the selected path
// to dst, walking the product parent chain from the destination toward the
// source. With a stamp (Begin'd to NumProductStates once per tree), the
// walk stops at the first product state a previous destination already
// covered — selected paths form a tree in product space, so sweeping every
// destination costs one visit per tree state instead of one per path hop,
// which is what makes whole-graph coverage unions cheap. The emitted edge
// set is exactly the union of the Path slices' hops; only the order (and
// the suffix deduplication) differs. A nil stamp walks the full path.
func (t *PathTree) VisitPathEdges(stamp *graph.Stamp, dst int32, visit func(u, v int32)) {
	st := t.best[dst]
	if st < 0 {
		return
	}
	for {
		if stamp != nil && !stamp.Visit(st) {
			return
		}
		p := t.parent[st]
		if p < 0 {
			return
		}
		visit(p/numStates, st/numStates)
		st = p
	}
}
