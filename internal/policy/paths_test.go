package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topocmp/internal/graph"
)

func TestPathTreeFigure15(t *testing.T) {
	a := figure15()
	pt := a.Paths(nA)
	// Distances agree with Dist.
	want := a.Dist(nA)
	for v := int32(0); v < 8; v++ {
		if pt.Dist(v) != want[v] {
			t.Fatalf("PathTree dist(%c) = %d, want %d", 'A'+v, pt.Dist(v), want[v])
		}
	}
	// The selected path to F must be the all-uphill A-C-D-E-F.
	path := pt.Path(nF)
	wantPath := []int32{nA, nC, nD, nE, nF}
	if len(path) != len(wantPath) {
		t.Fatalf("path to F = %v", path)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path to F = %v, want %v", path, wantPath)
		}
	}
	if pt.Path(nA)[0] != nA || len(pt.Path(nA)) != 1 {
		t.Fatalf("path to self = %v", pt.Path(nA))
	}
}

// validPolicyPath checks a node sequence is a valley-free walk on a.
func validPolicyPath(a *Annotated, path []int32) bool {
	state := stateUp
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if !a.G.HasEdge(u, v) {
			return false
		}
		ns := transition(state, a.Rel(u, v))
		if ns < 0 {
			return false
		}
		state = ns
	}
	return true
}

// Property: every selected path is valley-free, starts at the source, ends
// at the destination, and its length equals the policy distance.
func TestPathTreePathsValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAnnotated(r, 60, 120)
		pt := a.Paths(0)
		dist := a.Dist(0)
		for v := int32(0); v < int32(a.G.NumNodes()); v++ {
			path := pt.Path(v)
			if dist[v] == graph.Unreached {
				if path != nil {
					return false
				}
				continue
			}
			if path[0] != 0 || path[len(path)-1] != v {
				return false
			}
			if int32(len(path)-1) != dist[v] {
				return false
			}
			if !validPolicyPath(a, path) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterOverlayPaths(t *testing.T) {
	// Two ASes: provider 0, customer 1; routers 0,1 in AS0; 2,3 in AS1.
	asb := graph.NewBuilder(2)
	asb.AddEdge(0, 1)
	asg := asb.Graph()
	a := NewAnnotated(asg)
	a.SetProviderCustomer(0, 1)
	rlb := graph.NewBuilder(4)
	rlb.AddEdge(0, 1)
	rlb.AddEdge(1, 2)
	rlb.AddEdge(2, 3)
	rl := rlb.Graph()
	o, err := NewRouterOverlay(rl, []int32{0, 0, 1, 1}, a)
	if err != nil {
		t.Fatal(err)
	}
	pt := o.Paths(0)
	path := pt.Path(3)
	want := []int32{0, 1, 2, 3}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestPathTreeDeterminism(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(3)), 80, 150)
	p1 := a.Paths(0)
	p2 := a.Paths(0)
	for v := int32(0); v < int32(a.G.NumNodes()); v++ {
		a1, a2 := p1.Path(v), p2.Path(v)
		if len(a1) != len(a2) {
			t.Fatalf("nondeterministic path length at %d", v)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("nondeterministic path at %d", v)
			}
		}
	}
}

// TestPathsIntoMatchesPaths sweeps one recycled tree across every source
// and checks it agrees with a fresh tree at each: the scratch reuse
// (stale dist/parent/best/queue contents) must never leak between sources.
func TestPathsIntoMatchesPaths(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(7)), 60, 110)
	n := int32(a.G.NumNodes())
	var reused *PathTree
	for src := int32(0); src < n; src++ {
		reused = a.PathsInto(reused, src)
		fresh := a.Paths(src)
		for v := int32(0); v < n; v++ {
			if reused.Dist(v) != fresh.Dist(v) {
				t.Fatalf("src %d: reused dist(%d) = %d, fresh %d",
					src, v, reused.Dist(v), fresh.Dist(v))
			}
			rp, fp := reused.Path(v), fresh.Path(v)
			if len(rp) != len(fp) {
				t.Fatalf("src %d: path length mismatch at %d", src, v)
			}
			for i := range rp {
				if rp[i] != fp[i] {
					t.Fatalf("src %d: path mismatch at %d", src, v)
				}
			}
		}
	}
}

// TestVisitPathEdgesMatchesPath checks the parent-chain edge walk against
// the Path slices it replaces: unstamped, each destination yields exactly
// the reversed hop sequence of its path; stamped, the union over all
// destinations equals the union of every path's hops (the suffix
// deduplication may only change order and multiplicity, never the set).
func TestVisitPathEdgesMatchesPath(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(11)), 50, 90)
	n := int32(a.G.NumNodes())
	for src := int32(0); src < n; src += 7 {
		pt := a.Paths(src)
		var stamp graph.Stamp
		stamp.Begin(pt.NumProductStates())
		stamped := map[[2]int32]bool{}
		want := map[[2]int32]bool{}
		for dst := int32(0); dst < n; dst++ {
			var got [][2]int32
			pt.VisitPathEdges(nil, dst, func(u, v int32) {
				got = append(got, [2]int32{u, v})
			})
			pt.VisitPathEdges(&stamp, dst, func(u, v int32) {
				stamped[[2]int32{u, v}] = true
			})
			path := pt.Path(dst)
			if len(path) == 0 {
				if len(got) != 0 {
					t.Fatalf("src %d dst %d: unreachable but %d edges visited",
						src, dst, len(got))
				}
				continue
			}
			if len(got) != len(path)-1 {
				t.Fatalf("src %d dst %d: %d edges for a %d-hop path",
					src, dst, len(got), len(path)-1)
			}
			for i, e := range got {
				k := len(path) - 1 - i
				if e != [2]int32{path[k-1], path[k]} {
					t.Fatalf("src %d dst %d: edge %d is %v, path hop %v",
						src, dst, i, e, [2]int32{path[k-1], path[k]})
				}
				want[e] = true
			}
		}
		if len(stamped) != len(want) {
			t.Fatalf("src %d: stamped union has %d edges, path union %d",
				src, len(stamped), len(want))
		}
		for e := range want {
			if !stamped[e] {
				t.Fatalf("src %d: stamped union missing edge %v", src, e)
			}
		}
	}
}

// TestPathIntoReuse walks every destination through one recycled buffer and
// cross-checks against fresh Path calls — stale buffer contents must never
// leak into a later path.
func TestPathIntoReuse(t *testing.T) {
	a := randomAnnotated(rand.New(rand.NewSource(13)), 40, 70)
	n := int32(a.G.NumNodes())
	pt := a.Paths(3)
	var buf []int32
	for dst := int32(0); dst < n; dst++ {
		got := pt.PathInto(buf, dst)
		if got != nil {
			buf = got
		}
		fresh := pt.Path(dst)
		if len(got) != len(fresh) {
			t.Fatalf("dst %d: reused path has %d nodes, fresh %d",
				dst, len(got), len(fresh))
		}
		for i := range got {
			if got[i] != fresh[i] {
				t.Fatalf("dst %d: reused path differs at %d", dst, i)
			}
		}
	}
}
