package policy

import (
	"topocmp/internal/graph"
)

// InferGao applies Gao's relationship-inference algorithm (Globecom 2000)
// to a collection of AS paths over the AS graph g: each path is split at
// its highest-degree AS (the "top provider"); ASes before the top are
// inferred to be customers of their successors, ASes after it providers of
// their successors. Adjacencies with transit evidence in both directions
// become siblings; adjacencies with no transit evidence at all become
// peers.
func InferGao(g *graph.Graph, paths [][]int32) *Annotated {
	// transit[key(u,v)] counts evidence that v provides transit to u
	// (v appeared closer to the top than u on some path).
	transit := map[uint64]int{}
	for _, path := range paths {
		if len(path) < 2 {
			continue
		}
		top := 0
		for i, as := range path {
			if g.Degree(as) > g.Degree(path[top]) {
				top = i
			}
			_ = i
		}
		for i := 0; i+1 < len(path); i++ {
			u, v := path[i], path[i+1]
			if i < top {
				transit[key(u, v)]++ // v provides transit to u (uphill)
			} else {
				transit[key(v, u)]++ // u provides transit to v (downhill)
			}
		}
	}
	a := NewAnnotated(g)
	for _, e := range g.Edges() {
		uv := transit[key(e.U, e.V)] // V provides transit to U
		vu := transit[key(e.V, e.U)] // U provides transit to V
		switch {
		case uv > 0 && vu > 0:
			a.SetSibling(e.U, e.V)
		case uv > 0:
			a.SetProviderCustomer(e.V, e.U)
		case vu > 0:
			a.SetProviderCustomer(e.U, e.V)
		default:
			a.SetPeer(e.U, e.V)
		}
	}
	return a
}

// InferenceAccuracy compares an inferred annotation against ground truth and
// returns the fraction of edges whose relationship class matches.
func InferenceAccuracy(truth, inferred *Annotated) float64 {
	edges := truth.G.Edges()
	if len(edges) == 0 {
		return 1
	}
	match := 0
	for _, e := range edges {
		if truth.Rel(e.U, e.V) == inferred.Rel(e.U, e.V) {
			match++
		}
	}
	return float64(match) / float64(len(edges))
}
