package policy

import (
	"fmt"

	"topocmp/internal/graph"
)

// RouterOverlay couples a router-level graph with its AS overlay: every
// router belongs to one AS, and inter-AS router links inherit the AS-level
// relationship. Router-level policy paths are the shortest router paths
// whose AS-level projection is valley-free — the paper's Appendix E
// methodology for computing RL policy balls.
type RouterOverlay struct {
	RL   *graph.Graph
	ASOf []int32 // ASOf[router] = AS id in the annotated AS graph
	AS   *Annotated
}

// NewRouterOverlay validates and wraps the inputs.
func NewRouterOverlay(rl *graph.Graph, asOf []int32, as *Annotated) (*RouterOverlay, error) {
	if len(asOf) != rl.NumNodes() {
		return nil, fmt.Errorf("policy: asOf has %d entries for %d routers", len(asOf), rl.NumNodes())
	}
	maxAS := int32(as.G.NumNodes())
	for r, a := range asOf {
		if a < 0 || a >= maxAS {
			return nil, fmt.Errorf("policy: router %d mapped to invalid AS %d", r, a)
		}
	}
	return &RouterOverlay{RL: rl, ASOf: asOf, AS: as}, nil
}

// Dist computes router-level policy distances from src: BFS over the
// (router × valley-state) product, where intra-AS hops keep the state and
// inter-AS hops follow the AS relationship transition.
func (o *RouterOverlay) Dist(src int32) []int32 {
	pd, _ := o.productBFS(src)
	n := o.RL.NumNodes()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		best := graph.Unreached
		for s := 0; s < numStates; s++ {
			if d := pd[v*numStates+s]; d < best {
				best = d
			}
		}
		out[v] = best
	}
	return out
}

func (o *RouterOverlay) productBFS(src int32) ([]int32, []int32) {
	n := o.RL.NumNodes()
	dist := make([]int32, n*numStates)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	order := make([]int32, 0, n)
	start := src*numStates + stateUp
	dist[start] = 0
	order = append(order, start)
	for head := 0; head < len(order); head++ {
		cur := order[head]
		u, s := cur/numStates, int(cur%numStates)
		du := dist[cur]
		asU := o.ASOf[u]
		for _, v := range o.RL.Neighbors(u) {
			ns := s
			if asV := o.ASOf[v]; asV != asU {
				ns = transition(s, o.AS.Rel(asU, asV))
				if ns < 0 {
					continue
				}
			}
			nxt := v*numStates + int32(ns)
			if dist[nxt] == graph.Unreached {
				dist[nxt] = du + 1
				order = append(order, nxt)
			}
		}
	}
	return dist, order
}

// PolicyBall grows the policy-induced router-level ball of radius h.
func (o *RouterOverlay) PolicyBall(src int32, h int) Ball {
	pd, order := o.productBFS(src)
	trans := func(u, v int32, s int) int {
		asU, asV := o.ASOf[u], o.ASOf[v]
		if asU == asV {
			return s
		}
		return transition(s, o.AS.Rel(asU, asV))
	}
	return productBall(o.RL, pd, order, trans, src, h)
}
