// Package policy models BGP policy routing as the paper does (§3.2.1,
// Appendix E): AS graphs are annotated with provider–customer, peer–peer
// and sibling–sibling relationships; policy paths are the shortest
// valley-free paths (no customer→provider or peer→peer traversal after
// going "down", at most one peer link); and policy-induced balls contain
// the nodes within policy distance h plus the links on policy-compliant
// shortest paths.
//
// The package also implements Gao's relationship-inference algorithm
// (Globecom 2000), which the paper uses to annotate the measured AS graph,
// operating on AS paths from (simulated) BGP tables.
package policy

import (
	"fmt"

	"topocmp/internal/graph"
)

// Relationship classifies one directed view of an AS adjacency.
type Relationship int8

const (
	// RelNone marks an absent annotation.
	RelNone Relationship = iota
	// RelCustomer: the neighbor is my customer (I am its provider).
	RelCustomer
	// RelProvider: the neighbor is my provider (I am its customer).
	RelProvider
	// RelPeer: settlement-free peering.
	RelPeer
	// RelSibling: same organization; traffic flows freely.
	RelSibling
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelProvider:
		return "provider"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	default:
		return "none"
	}
}

// Annotated is an AS-level graph whose edges carry relationships.
type Annotated struct {
	G *graph.Graph
	// rel[key(u,v)] = relationship of v as seen from u.
	rel map[uint64]Relationship
}

func key(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// NewAnnotated wraps a graph with an empty annotation set.
func NewAnnotated(g *graph.Graph) *Annotated {
	return &Annotated{G: g, rel: make(map[uint64]Relationship, 2*g.NumEdges())}
}

// SetProviderCustomer marks provider → customer: provider sells transit to
// customer.
func (a *Annotated) SetProviderCustomer(provider, customer int32) {
	a.rel[key(provider, customer)] = RelCustomer
	a.rel[key(customer, provider)] = RelProvider
}

// SetPeer marks a peer–peer adjacency.
func (a *Annotated) SetPeer(u, v int32) {
	a.rel[key(u, v)] = RelPeer
	a.rel[key(v, u)] = RelPeer
}

// SetSibling marks a sibling–sibling adjacency.
func (a *Annotated) SetSibling(u, v int32) {
	a.rel[key(u, v)] = RelSibling
	a.rel[key(v, u)] = RelSibling
}

// Rel returns the relationship of v as seen from u (RelNone if absent).
func (a *Annotated) Rel(u, v int32) Relationship { return a.rel[key(u, v)] }

// Validate checks that every edge of the graph is annotated consistently in
// both directions.
func (a *Annotated) Validate() error {
	for _, e := range a.G.Edges() {
		ruv, rvu := a.Rel(e.U, e.V), a.Rel(e.V, e.U)
		if ruv == RelNone || rvu == RelNone {
			return fmt.Errorf("policy: edge (%d,%d) not annotated", e.U, e.V)
		}
		ok := (ruv == RelCustomer && rvu == RelProvider) ||
			(ruv == RelProvider && rvu == RelCustomer) ||
			(ruv == RelPeer && rvu == RelPeer) ||
			(ruv == RelSibling && rvu == RelSibling)
		if !ok {
			return fmt.Errorf("policy: edge (%d,%d) annotated %v/%v", e.U, e.V, ruv, rvu)
		}
	}
	return nil
}

// Valley-free traversal states.
const (
	stateUp   = 0 // only customer→provider (or sibling) hops so far
	statePeer = 1 // exactly one peer hop taken
	stateDown = 2 // a provider→customer hop taken
	numStates = 3
)

// transition returns the next state for traversing from u to v given the
// current state, or -1 if the hop violates valley-freedom. rel is the
// relationship of v as seen from u.
func transition(state int, rel Relationship) int {
	switch rel {
	case RelProvider: // u → its provider: going up
		if state == stateUp {
			return stateUp
		}
		return -1
	case RelPeer:
		if state == stateUp {
			return statePeer
		}
		return -1
	case RelCustomer: // u → its customer: going down
		return stateDown
	case RelSibling:
		return state
	default:
		return -1
	}
}

// Dist computes policy (valley-free shortest path) distances from src via
// BFS over the (node × state) product graph. Unreachable nodes get
// graph.Unreached.
func (a *Annotated) Dist(src int32) []int32 {
	pd, _ := a.productBFS(src)
	n := a.G.NumNodes()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		best := graph.Unreached
		for s := 0; s < numStates; s++ {
			if d := pd[v*numStates+s]; d < best {
				best = d
			}
		}
		out[v] = best
	}
	return out
}

// NumStates is the size of the valley-free state machine; product-space
// indices are node*NumStates+state.
const NumStates = numStates

// Transition exposes the valley-free state machine for callers (like link
// value computation) that traverse the product graph themselves: it returns
// the next state for hop u→v from the given state, or -1 if forbidden.
func (a *Annotated) Transition(u, v int32, state int) int {
	return transition(state, a.Rel(u, v))
}

// ProductStart returns the product-space start state of a policy traversal
// from src — (src, up), the state ProductCountsInto seeds.
func ProductStart(src int32) int32 { return src*numStates + stateUp }

// ProductCSR materializes the valley-free product graph as a directed CSR
// over NumNodes×NumStates product states (indices node*NumStates+state):
// state (u,s) has one arc to (v, transition(s, rel(u,v))) for every
// neighbor v whose hop is valley-free from s. Built once, it lets batched
// kernels (graph.MSBFSScratch.RunSigmaCSR) traverse the product space
// without the per-edge relationship map lookups ProductCountsInto pays on
// every traversal. A BFS over this CSR from ProductStart(src) yields
// exactly ProductCountsInto's distances and path counts.
func (a *Annotated) ProductCSR() (off, adj []int32) {
	n := a.G.NumNodes()
	pn := n * numStates
	off = make([]int32, pn+1)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range a.G.Neighbors(u) {
			rel := a.Rel(u, v)
			for s := 0; s < numStates; s++ {
				if transition(s, rel) >= 0 {
					off[int(u)*numStates+s+1]++
				}
			}
		}
	}
	for i := 0; i < pn; i++ {
		off[i+1] += off[i]
	}
	adj = make([]int32, off[pn])
	cur := make([]int32, pn)
	copy(cur, off[:pn])
	for u := int32(0); u < int32(n); u++ {
		for _, v := range a.G.Neighbors(u) {
			rel := a.Rel(u, v)
			for s := 0; s < numStates; s++ {
				if ns := transition(s, rel); ns >= 0 {
					st := int(u)*numStates + s
					adj[cur[st]] = v*numStates + int32(ns)
					cur[st]++
				}
			}
		}
	}
	return off, adj
}

// ProductCounts computes, over the (node × state) product space, the policy
// BFS distances, the number of distinct shortest product paths sigma, and
// the BFS visit order. Indices are node*NumStates+state.
func (a *Annotated) ProductCounts(src int32) (dist []int32, sigma []float64, order []int32) {
	return a.ProductCountsInto(nil, nil, nil, src)
}

// ProductCountsInto is ProductCounts into caller-owned buffers, for sweeps
// that run one product traversal per source: dist and sigma are reset
// through the previous call's order (every touched state appears there), so
// a reused buffer behaves exactly like a fresh one without the per-source
// allocation. Pass nil slices (or slices from a previous call on a
// same-sized graph) and keep all three returned slices together for the
// next call.
func (a *Annotated) ProductCountsInto(dist []int32, sigma []float64,
	order []int32, src int32) ([]int32, []float64, []int32) {

	n := a.G.NumNodes()
	sz := n * int(numStates)
	if cap(dist) < sz || cap(sigma) < sz {
		dist = make([]int32, sz)
		sigma = make([]float64, sz)
		for i := range dist {
			dist[i] = graph.Unreached
		}
	} else {
		// Reset at the incoming length before reslicing: a previous traversal
		// on a larger graph may have touched states beyond sz, and they must
		// read Unreached/0 if a later call grows back.
		for _, st := range order {
			dist[st] = graph.Unreached
			sigma[st] = 0
		}
		dist = dist[:sz]
		sigma = sigma[:sz]
	}
	order = order[:0]
	start := src*numStates + stateUp
	dist[start] = 0
	sigma[start] = 1
	order = append(order, start)
	for head := 0; head < len(order); head++ {
		cur := order[head]
		u, s := cur/numStates, int(cur%numStates)
		du := dist[cur]
		for _, v := range a.G.Neighbors(u) {
			ns := transition(s, a.Rel(u, v))
			if ns < 0 {
				continue
			}
			nxt := v*numStates + int32(ns)
			if dist[nxt] == graph.Unreached {
				dist[nxt] = du + 1
				order = append(order, nxt)
			}
			if dist[nxt] == du+1 {
				sigma[nxt] += sigma[cur]
			}
		}
	}
	return dist, sigma, order
}

// productBFS returns distances over the product state space, indexed
// node*numStates+state, plus the BFS visit order of product states.
func (a *Annotated) productBFS(src int32) ([]int32, []int32) {
	n := a.G.NumNodes()
	dist := make([]int32, n*numStates)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	order := make([]int32, 0, n)
	start := src*numStates + stateUp
	dist[start] = 0
	order = append(order, start)
	for head := 0; head < len(order); head++ {
		cur := order[head]
		u, s := cur/numStates, int(cur%numStates)
		du := dist[cur]
		for _, v := range a.G.Neighbors(u) {
			ns := transition(s, a.Rel(u, v))
			if ns < 0 {
				continue
			}
			nxt := v*numStates + int32(ns)
			if dist[nxt] == graph.Unreached {
				dist[nxt] = du + 1
				order = append(order, nxt)
			}
		}
	}
	return dist, order
}

// Ball is a policy-induced ball (Appendix E): the nodes whose policy path
// from the center is at most h hops, and the links lying on those
// policy-compliant shortest paths.
type Ball struct {
	Center int32
	Radius int
	Nodes  []int32
	Edges  []graph.Edge
}

// PolicyBall grows the policy-induced ball of radius h around src: member
// nodes have policy distance at most h, and member edges are exactly the
// edges lying on some shortest policy path from src to a member (including
// intermediate edges whose endpoints are reached sub-optimally on that
// path, as in the paper's Appendix E example).
func (a *Annotated) PolicyBall(src int32, h int) Ball {
	pd, order := a.productBFS(src)
	trans := func(u, v int32, s int) int { return transition(s, a.Rel(u, v)) }
	return productBall(a.G, pd, order, trans, src, h)
}

// productBall assembles a policy ball from product-space distances: it
// marks target product states (optimal arrivals at members), then walks the
// shortest-path DAG backwards (decreasing distance) collecting every edge
// on a shortest path to a target.
func productBall(g *graph.Graph, pd []int32, order []int32, trans func(u, v int32, s int) int, src int32, h int) Ball {
	n := g.NumNodes()
	minDist := func(v int32) int32 {
		best := graph.Unreached
		for s := int32(0); s < numStates; s++ {
			if d := pd[v*numStates+s]; d < best {
				best = d
			}
		}
		return best
	}
	b := Ball{Center: src, Radius: h}
	for v := int32(0); v < int32(n); v++ {
		if int(minDist(v)) <= h {
			b.Nodes = append(b.Nodes, v)
		}
	}
	marked := make([]bool, n*numStates)
	for _, v := range b.Nodes {
		md := minDist(v)
		for s := int32(0); s < numStates; s++ {
			if pd[v*numStates+s] == md {
				marked[v*numStates+s] = true
			}
		}
	}
	// order holds product states in nondecreasing distance; sweep it in
	// reverse so successors are finalized before predecessors.
	seen := map[uint64]bool{}
	for i := len(order) - 1; i >= 0; i-- {
		cur := order[i]
		u, s := cur/numStates, int(cur%numStates)
		du := pd[cur]
		for _, v := range g.Neighbors(u) {
			ns := trans(u, v, s)
			if ns < 0 {
				continue
			}
			nxt := v*numStates + int32(ns)
			if pd[nxt] == du+1 && marked[nxt] {
				marked[cur] = true
				k := key(minInt32(u, v), maxInt32(u, v))
				if !seen[k] {
					seen[k] = true
					b.Edges = append(b.Edges, graph.Edge{U: minInt32(u, v), V: maxInt32(u, v)})
				}
			}
		}
	}
	return b
}

func minInt32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Subgraph converts a policy ball into a graph (node i = Nodes[i]).
func (b Ball) Subgraph() *graph.Graph {
	idx := make(map[int32]int32, len(b.Nodes))
	for i, v := range b.Nodes {
		idx[v] = int32(i)
	}
	gb := graph.NewBuilder(len(b.Nodes))
	for _, e := range b.Edges {
		iu, okU := idx[e.U]
		iv, okV := idx[e.V]
		if okU && okV {
			gb.AddEdge(iu, iv)
		}
	}
	return gb.Graph()
}

// PathInflation returns the mean ratio of policy distance to plain shortest
// path distance over reachable pairs from sampled sources, the quantity
// studied in the paper's path-inflation reference [42].
func (a *Annotated) PathInflation(sources []int32) float64 {
	totalRatio, count := 0.0, 0
	for _, src := range sources {
		sd, _ := a.G.BFS(src)
		pd := a.Dist(src)
		for v := range sd {
			if int32(v) == src || sd[v] == graph.Unreached || pd[v] == graph.Unreached {
				continue
			}
			totalRatio += float64(pd[v]) / float64(sd[v])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return totalRatio / float64(count)
}
