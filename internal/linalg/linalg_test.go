package linalg

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestJacobiDiagonal(t *testing.T) {
	a := [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	eig := JacobiEigenvalues(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEqual(eig[i], want[i], 1e-10) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestJacobi2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	eig := JacobiEigenvalues(a)
	if !almostEqual(eig[0], 3, 1e-10) || !almostEqual(eig[1], 1, 1e-10) {
		t.Fatalf("eig = %v, want [3 1]", eig)
	}
}

func TestJacobiPathGraph(t *testing.T) {
	// Adjacency of the path P4: eigenvalues are 2cos(k*pi/5), k=1..4.
	a := [][]float64{
		{0, 1, 0, 0},
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{0, 0, 1, 0},
	}
	eig := JacobiEigenvalues(a)
	want := []float64{
		2 * math.Cos(math.Pi/5),
		2 * math.Cos(2*math.Pi/5),
		2 * math.Cos(3*math.Pi/5),
		2 * math.Cos(4*math.Pi/5),
	}
	for i := range want {
		if !almostEqual(eig[i], want[i], 1e-9) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestJacobiBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JacobiEigenvalues([][]float64{{1, 2}, {3}})
}

func TestTridiagonalKnown(t *testing.T) {
	// Tridiagonal matrix of P5 adjacency: eigenvalues 2cos(k*pi/6).
	d := []float64{0, 0, 0, 0, 0}
	e := []float64{1, 1, 1, 1}
	eig := TridiagonalEigenvalues(d, e)
	want := []float64{
		2 * math.Cos(math.Pi/6),
		2 * math.Cos(2*math.Pi/6),
		2 * math.Cos(3*math.Pi/6),
		2 * math.Cos(4*math.Pi/6),
		2 * math.Cos(5*math.Pi/6),
	}
	for i := range want {
		if !almostEqual(eig[i], want[i], 1e-9) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestTridiagonalSingleton(t *testing.T) {
	eig := TridiagonalEigenvalues([]float64{7}, nil)
	if len(eig) != 1 || eig[0] != 7 {
		t.Fatalf("eig = %v", eig)
	}
	if TridiagonalEigenvalues(nil, nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

// Property: tridiagonal QL matches Jacobi on random tridiagonal matrices.
func TestTridiagonalMatchesJacobiProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = r.NormFloat64()
		}
		for i := range e {
			e[i] = r.NormFloat64()
		}
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
			dense[i][i] = d[i]
		}
		for i := range e {
			dense[i][i+1] = e[i]
			dense[i+1][i] = e[i]
		}
		got := TridiagonalEigenvalues(d, e)
		want := JacobiEigenvalues(dense)
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLanczosCompleteGraph(t *testing.T) {
	// K_n adjacency has eigenvalues n-1 (once) and -1 (n-1 times).
	n := 30
	mv := func(dst, x []float64) {
		sum := 0.0
		for _, xi := range x {
			sum += xi
		}
		for i := range dst {
			dst[i] = sum - x[i]
		}
	}
	eig := Lanczos(mv, n, 3, 30, rand.New(rand.NewSource(1)))
	if !almostEqual(eig[0], float64(n-1), 1e-6) {
		t.Fatalf("top eigenvalue = %v, want %d", eig[0], n-1)
	}
	if !almostEqual(eig[1], -1, 1e-6) {
		t.Fatalf("second eigenvalue = %v, want -1", eig[1])
	}
}

func TestLanczosMatchesJacobiOnDense(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 25
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	mv := func(dst, x []float64) {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * x[j]
			}
			dst[i] = s
		}
	}
	got := Lanczos(mv, n, 5, n, rand.New(rand.NewSource(3)))
	cp := make([][]float64, n)
	for i := range cp {
		cp[i] = append([]float64(nil), a[i]...)
	}
	want := JacobiEigenvalues(cp)
	for i := 0; i < 5; i++ {
		if !almostEqual(got[i], want[i], 1e-6) {
			t.Fatalf("rank %d: lanczos %v vs jacobi %v", i, got[i], want[i])
		}
	}
}

func TestAdjacencyMatVec(t *testing.T) {
	// Star graph: center 0 with leaves 1..4. Top eigenvalue = 2 = sqrt(4).
	adj := [][]int32{{1, 2, 3, 4}, {0}, {0}, {0}, {0}}
	mv := AdjacencyMatVec(func(v int32) []int32 { return adj[v] }, 5)
	eig := Lanczos(mv, 5, 2, 5, rand.New(rand.NewSource(4)))
	if !almostEqual(eig[0], 2, 1e-8) {
		t.Fatalf("star top eigenvalue = %v, want 2", eig[0])
	}
}

func TestLanczosDegenerate(t *testing.T) {
	if Lanczos(nil, 0, 3, 3, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("n=0 should give nil")
	}
	mv := func(dst, x []float64) { copy(dst, x) } // identity
	eig := Lanczos(mv, 4, 2, 4, rand.New(rand.NewSource(5)))
	if len(eig) == 0 || !almostEqual(eig[0], 1, 1e-8) {
		t.Fatalf("identity eig = %v", eig)
	}
}

// Property: Jacobi eigenvalue sum equals trace.
func TestJacobiTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a[i][j] = v
				a[j][i] = v
			}
			trace += a[i][i]
		}
		eig := JacobiEigenvalues(a)
		sum := 0.0
		for _, x := range eig {
			sum += x
		}
		return almostEqual(sum, trace, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEigDescendingOrder(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	n := 10
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a[i][j] = v
			a[j][i] = v
		}
	}
	eig := JacobiEigenvalues(a)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(eig))) {
		t.Fatalf("eigenvalues not descending: %v", eig)
	}
}
