// Package linalg provides the symmetric eigensolvers behind the paper's
// eigenvalue-spectrum metric (Figure 7, after Faloutsos et al.): a dense
// Jacobi rotation solver for small matrices and a Lanczos iteration with
// full reorthogonalization for the top-k spectrum of large sparse adjacency
// matrices, paired with an implicit-shift QL solver for the resulting
// tridiagonal systems.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MatVec is a symmetric linear operator: it writes A*x into dst.
type MatVec func(dst, x []float64)

// JacobiEigenvalues computes all eigenvalues of the dense symmetric matrix a
// (row-major n×n, only symmetry assumed) by cyclic Jacobi rotations. The
// input is overwritten. Eigenvalues are returned in descending order.
func JacobiEigenvalues(a [][]float64) []float64 {
	n := len(a)
	for i := range a {
		if len(a[i]) != n {
			panic(fmt.Sprintf("linalg: row %d has %d entries, want %d", i, len(a[i]), n))
		}
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a[i][i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig
}

// TridiagonalEigenvalues computes the eigenvalues of the symmetric
// tridiagonal matrix with diagonal d (length n) and off-diagonal e (length
// n-1) using the implicit-shift QL algorithm. Inputs are not modified.
// Eigenvalues are returned in descending order.
func TridiagonalEigenvalues(d, e []float64) []float64 {
	n := len(d)
	if n == 0 {
		return nil
	}
	if len(e) != n-1 && !(n == 1 && len(e) == 0) {
		panic(fmt.Sprintf("linalg: off-diagonal length %d, want %d", len(e), n-1))
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e)
	ee[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; iter < 50; iter++ {
			m := l
			for ; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-14*s {
					break
				}
			}
			if m == l {
				break
			}
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(dd)))
	return dd
}

// Lanczos estimates the k largest-magnitude eigenvalues of the symmetric
// operator mv of dimension n, using at most iters Krylov steps with full
// reorthogonalization. r seeds the start vector. The extreme eigenvalues
// converge first, which suits the paper's rank-versus-eigenvalue plots.
// Returned values are sorted descending by value.
func Lanczos(mv MatVec, n, k, iters int, r *rand.Rand) []float64 {
	if n == 0 || k <= 0 {
		return nil
	}
	if iters > n {
		iters = n
	}
	if iters < k {
		iters = k
	}
	if iters > n {
		iters = n
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	normalize(v)
	var basis [][]float64
	var alpha, beta []float64
	w := make([]float64, n)
	prev := make([]float64, n)
	for j := 0; j < iters; j++ {
		basis = append(basis, append([]float64(nil), v...))
		mv(w, v)
		a := dot(w, v)
		alpha = append(alpha, a)
		for i := range w {
			w[i] -= a * v[i]
			if j > 0 {
				w[i] -= beta[j-1] * prev[i]
			}
		}
		// Full reorthogonalization for numerical stability.
		for _, b := range basis {
			d := dot(w, b)
			for i := range w {
				w[i] -= d * b[i]
			}
		}
		bnorm := norm(w)
		if bnorm < 1e-12 {
			break
		}
		beta = append(beta, bnorm)
		copy(prev, v)
		for i := range v {
			v[i] = w[i] / bnorm
		}
	}
	eig := TridiagonalEigenvalues(alpha, beta[:len(alpha)-1])
	if len(eig) > k {
		eig = eig[:k]
	}
	return eig
}

// AdjacencyMatVec returns the adjacency-matrix operator of a graph given as
// neighbor lists.
func AdjacencyMatVec(neighbors func(v int32) []int32, n int) MatVec {
	return func(dst, x []float64) {
		for i := range dst {
			dst[i] = 0
		}
		for u := int32(0); u < int32(n); u++ {
			s := 0.0
			for _, v := range neighbors(u) {
				s += x[v]
			}
			dst[u] = s
		}
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}
