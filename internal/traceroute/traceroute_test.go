package traceroute

import (
	"math/rand"
	"testing"

	"topocmp/internal/internetsim"
)

func testRouterLevel(t *testing.T, nAS int, seed int64) *internetsim.RouterLevel {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	as := internetsim.MustGenerateAS(r, internetsim.ASParams{NumAS: nAS})
	return internetsim.MustGenerateRouters(r, as, internetsim.RouterParams{})
}

func TestSweepBasics(t *testing.T) {
	rl := testRouterLevel(t, 600, 1)
	measured, orig := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 5, DestFraction: 0.5, Rand: rand.New(rand.NewSource(2)),
	})
	if measured.NumNodes() == 0 {
		t.Fatal("empty measured graph")
	}
	if len(orig) != measured.NumNodes() {
		t.Fatal("orig mapping mismatch")
	}
	// Incompleteness: measured misses part of the ground truth.
	if measured.NumEdges() >= rl.Graph.NumEdges() {
		t.Fatalf("measured edges %d >= truth %d", measured.NumEdges(), rl.Graph.NumEdges())
	}
	if !measured.IsConnected() {
		t.Fatal("union of paths from connected sources must be connected")
	}
}

func TestSweepLeafDominated(t *testing.T) {
	// Like the SCAN map (avg degree 2.53), the measured RL graph is
	// dominated by low-degree routers.
	rl := testRouterLevel(t, 800, 3)
	measured, _ := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 6, DestFraction: 0.6, Rand: rand.New(rand.NewSource(4)),
	})
	if d := measured.AvgDegree(); d < 1.5 || d > 3.5 {
		t.Fatalf("measured avg degree = %.2f, want ~2.5", d)
	}
	ones := 0
	for _, d := range measured.Degrees() {
		if d <= 2 {
			ones++
		}
	}
	if frac := float64(ones) / float64(measured.NumNodes()); frac < 0.5 {
		t.Fatalf("low-degree fraction = %.2f, want > 0.5", frac)
	}
}

func TestMoreSourcesSeeMore(t *testing.T) {
	rl := testRouterLevel(t, 500, 5)
	small, _ := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 2, DestFraction: 0.4, Rand: rand.New(rand.NewSource(6)),
	})
	large, _ := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 10, DestFraction: 0.4, Rand: rand.New(rand.NewSource(6)),
	})
	if large.NumEdges() <= small.NumEdges() {
		t.Fatalf("more sources should reveal more links: %d vs %d",
			large.NumEdges(), small.NumEdges())
	}
}

func TestSweepDeterminism(t *testing.T) {
	rl := testRouterLevel(t, 400, 7)
	a, _ := Sweep(rl.Overlay, rl.Backbone, Options{Rand: rand.New(rand.NewSource(8))})
	b, _ := Sweep(rl.Overlay, rl.Backbone, Options{Rand: rand.New(rand.NewSource(8))})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the sweep")
	}
}

func TestAliasFailureInflatesNodes(t *testing.T) {
	rl := testRouterLevel(t, 500, 9)
	clean, _ := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 5, DestFraction: 0.5, Rand: rand.New(rand.NewSource(10)),
	})
	noisy, orig := Sweep(rl.Overlay, rl.Backbone, Options{
		Sources: 5, DestFraction: 0.5, AliasFailure: 0.3,
		Rand: rand.New(rand.NewSource(10)),
	})
	if noisy.NumNodes() <= clean.NumNodes() {
		t.Fatalf("alias failure should inflate nodes: %d vs %d",
			noisy.NumNodes(), clean.NumNodes())
	}
	// Split routers map multiple pseudo-nodes to one ground-truth router.
	seen := map[int32]int{}
	for _, r := range orig {
		seen[r]++
	}
	multi := 0
	for _, c := range seen {
		if c > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no router was split despite 30% alias failure")
	}
	// Split routers' interfaces each carry only a slice of the router's
	// true degree: the max pseudo-node degree of a split router stays
	// below the count its interfaces sum to.
	perRouterMax := map[int32]int{}
	perRouterSum := map[int32]int{}
	for v := int32(0); v < int32(noisy.NumNodes()); v++ {
		r := orig[v]
		d := noisy.Degree(v)
		perRouterSum[r] += d
		if d > perRouterMax[r] {
			perRouterMax[r] = d
		}
	}
	diluted := 0
	for r, c := range seen {
		if c > 1 && perRouterMax[r] < perRouterSum[r] {
			diluted++
		}
	}
	if diluted == 0 {
		t.Fatal("split routers should show diluted per-interface degrees")
	}
}

func TestAliasFailureZeroIsClean(t *testing.T) {
	rl := testRouterLevel(t, 300, 11)
	a, _ := Sweep(rl.Overlay, rl.Backbone, Options{Rand: rand.New(rand.NewSource(12))})
	b, orig := Sweep(rl.Overlay, rl.Backbone, Options{AliasFailure: 0, Rand: rand.New(rand.NewSource(12))})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("AliasFailure=0 should match the default")
	}
	seen := map[int32]bool{}
	for _, r := range orig {
		if seen[r] {
			t.Fatal("router duplicated without alias failure")
		}
		seen[r] = true
	}
}
