// Package traceroute simulates the router-level topology discovery behind
// the paper's RL graph (the SCAN/Mercator map): traceroute-style probes
// from a handful of sources toward sampled destinations reveal the routers
// and adjacencies on the traversed policy paths; the measured RL graph is
// assembled from those adjacencies. As with the real map, links and routers
// off the observed paths are missing, and the resulting graph is dominated
// by the degree-1 access routers that terminate probes.
package traceroute

import (
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
	"topocmp/internal/rng"
)

// Options configures the sweep.
type Options struct {
	// Sources is the number of probe sources (SCAN used a small set).
	Sources int
	// DestFraction is the share of routers probed as destinations,
	// modeling coverage of the address space; default 0.5.
	DestFraction float64
	// AliasFailure is the probability that a router's interfaces fail to
	// be merged by alias resolution (Mercator/SCAN's hardest problem):
	// such a router appears once per incident observed link direction,
	// splitting it into per-interface pseudo-nodes. This inflates the node
	// count and deflates degrees, exactly the artifact real maps carry.
	// Zero disables the effect.
	AliasFailure float64
	// Rand drives source and destination sampling.
	Rand *rand.Rand
}

func (o *Options) defaults() {
	if o.Sources == 0 {
		o.Sources = 6
	}
	if o.DestFraction == 0 {
		o.DestFraction = 0.5
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// Sweep runs the simulated traceroute campaign over a router-level overlay
// and returns the inferred RL graph plus orig[newID] = router id in the
// ground-truth graph.
func Sweep(overlay *policy.RouterOverlay, backbone []bool, opts Options) (*graph.Graph, []int32) {
	opts.defaults()
	n := overlay.RL.NumNodes()

	// Sources: prefer backbone routers (measurement boxes sit in well
	// connected networks).
	var backboneIDs []int32
	for v := int32(0); v < int32(n); v++ {
		if backbone == nil || backbone[v] {
			backboneIDs = append(backboneIDs, v)
		}
	}
	numSrc := opts.Sources
	if numSrc > len(backboneIDs) {
		numSrc = len(backboneIDs)
	}
	srcIdx := rng.SampleInts(opts.Rand, len(backboneIDs), numSrc)
	// Destinations: a random slice of the router space.
	numDst := int(opts.DestFraction * float64(n))
	if numDst < 1 {
		numDst = 1
	}
	dsts := rng.SampleInts(opts.Rand, n, numDst)

	// Alias-resolution failures are drawn once per ground-truth router: a
	// failed router appears as one pseudo-node per (router, entering
	// neighbor) interface.
	failed := make([]bool, n)
	if opts.AliasFailure > 0 {
		for v := range failed {
			failed[v] = opts.Rand.Float64() < opts.AliasFailure
		}
	}
	type ifaceKey struct{ router, from int32 }
	index := map[ifaceKey]int32{}
	var orig []int32
	id := func(router, from int32) int32 {
		key := ifaceKey{router, -1}
		if failed[router] {
			key.from = from
		}
		if i, ok := index[key]; ok {
			return i
		}
		i := int32(len(orig))
		index[key] = i
		orig = append(orig, router)
		return i
	}

	// Observed adjacencies stream straight into the builder; duplicates from
	// overlapping paths are dropped at freeze, so no seen-set or edge list is
	// held alongside the CSR.
	b := graph.NewStreamBuilder(0)
	addEdge := func(u, v int32) {
		b.EnsureNodes(len(orig))
		b.AddEdge(u, v)
	}
	var pt *policy.PathTree
	var path []int32 // reused hop buffer; pseudo-node ids depend on walk order, so paths stay forward
	for _, si := range srcIdx {
		src := backboneIDs[si]
		pt = overlay.PathsInto(pt, src)
		for _, di := range dsts {
			dst := int32(di)
			if dst == src {
				continue
			}
			if p := pt.PathInto(path, dst); p != nil {
				path = p
			} else {
				continue
			}
			if len(path) < 2 {
				continue
			}
			// Traceroute reveals each hop's incoming interface: the hop's
			// pseudo-node identity is keyed by its predecessor.
			prevID := id(path[0], -1)
			for i := 1; i < len(path); i++ {
				curID := id(path[i], path[i-1])
				addEdge(prevID, curID)
				prevID = curID
			}
		}
	}
	b.EnsureNodes(len(orig))
	return b.Graph(), orig
}
