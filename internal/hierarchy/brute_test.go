package hierarchy

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/graph"
)

// bruteLinkValues recomputes link values by explicit pair enumeration: for
// every ordered pair (u,t) and edge (a,b) on u's shortest-path DAG toward
// t, the fraction of u→t shortest paths through the edge is
// sigma_u(a)*sigma_t(b)/sigma_u(t). This is an independent reference for
// the sweep implementation.
func bruteLinkValues(g *graph.Graph) *Result {
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	n := g.NumNodes()
	dists := make([][]int32, n)
	sigmas := make([][]float64, n)
	for v := int32(0); v < int32(n); v++ {
		dists[v], sigmas[v], _ = g.BFSCounts(v)
	}
	var entries []pairEntry
	for u := int32(0); u < int32(n); u++ {
		for t := int32(0); t < int32(n); t++ {
			if u == t || dists[u][t] == graph.Unreached {
				continue
			}
			for _, e := range edges {
				for _, dir := range [2][2]int32{{e.U, e.V}, {e.V, e.U}} {
					a, b := dir[0], dir[1]
					if dists[u][a]+1+dists[t][b] == dists[u][t] &&
						dists[u][a]+1 == dists[u][b] {
						w := sigmas[u][a] * sigmas[t][b] / sigmas[u][t]
						entries = append(entries, pairEntry{
							edge: uint32(ix.ID(a, b)), u: u, t: t, w: w,
						})
					}
				}
			}
		}
	}
	// The brute stream is one (u, t)-ascending block, so a single "source"
	// block satisfies coverValues' input-order contract.
	values := coverValues(len(edges), n, [][]pairEntry{entries},
		[][]int{{len(entries)}}, [][]int{{0}})
	return &Result{Edges: edges, Values: values, N: n}
}

func TestSweepMatchesBruteForce(t *testing.T) {
	cases := []*graph.Graph{
		canonical.Linear(7),
		canonical.Mesh(4, 5),
		canonical.Tree(2, 3),
		canonical.Complete(5),
		canonical.Random(rand.New(rand.NewSource(1)), 25, 0.2),
	}
	for ci, g := range cases {
		want := bruteLinkValues(g)
		got := LinkValues(g, Options{})
		for i := range want.Values {
			if math.Abs(want.Values[i]-got.Values[i]) > 1e-6 {
				t.Fatalf("case %d edge %v: sweep %v vs brute %v",
					ci, want.Edges[i], got.Values[i], want.Values[i])
			}
		}
	}
}
