package hierarchy

import (
	"math/rand"
	"testing"

	"topocmp/internal/gen/plrg"
)

// TestRankDistributionBounds checks the link-value sampling bound: full
// enumeration yields zero-width bounds, sampling yields nonzero bounds that
// tighten as the pair-universe budget grows.
func TestRankDistributionBounds(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 400, Beta: 2.246})
	run := func(budget int) float64 {
		res := LinkValues(g, Options{MaxSources: budget, Rand: rand.New(rand.NewSource(5))})
		if res.Nodes != g.NumNodes() {
			t.Fatalf("Nodes = %d, want %d", res.Nodes, g.NumNodes())
		}
		s := res.RankDistribution()
		if len(s.StdErr) != len(s.Points) {
			t.Fatalf("budget %d: %d bounds for %d points", budget, len(s.StdErr), len(s.Points))
		}
		max := 0.0
		for _, se := range s.StdErr {
			if se > max {
				max = se
			}
		}
		return max
	}
	if m := run(0); m != 0 {
		t.Errorf("full enumeration: want zero-width bounds, got max stderr %v", m)
	}
	small, large := run(24), run(g.NumNodes()*3/4)
	if small == 0 {
		t.Error("sampled run reported zero-width bounds")
	}
	if large >= small {
		t.Errorf("bounds did not shrink: budget 24 max %v, 3/4-graph max %v", small, large)
	}
}
