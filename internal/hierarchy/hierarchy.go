// Package hierarchy implements the paper's measure of hierarchy (§5): the
// link value. A link's traversal set is the set of node pairs whose
// shortest-path traffic crosses the link, each pair weighted by the
// fraction of its equal-cost shortest paths through the link; the link's
// value is the minimum weighted vertex cover of the bipartite graph formed
// by that traversal set, computed with the primal-dual 2-approximation.
//
// The distribution of (normalized) link values is the paper's hierarchy
// signature: strict (Tree, Transit-Stub, Tiers), moderate (AS, RL, PLRG),
// or loose (Mesh, Random, Waxman). The package also computes Figure 5's
// correlation between a link's value and the smaller degree of its
// endpoints.
package hierarchy

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"topocmp/internal/graph"
	"topocmp/internal/obs"
	"topocmp/internal/stats"
)

// Options tunes the computation.
type Options struct {
	// MaxSources caps the pair universe (0 = all nodes): when set, link
	// values are computed over the pairs Q×Q of a uniformly sampled node
	// set Q of this size, and normalized by |Q| instead of |V|. Sampling
	// both endpoints symmetrically preserves the vertex-cover structure
	// (one-sided source sampling would cap every cover at the sample
	// size). The paper bounds this cost the same way, computing RL link
	// values on the core graph and sampling nodes for large balls.
	MaxSources int
	// Rand drives sampling; nil uses a fixed seed.
	Rand *rand.Rand
	// Parallelism caps the source-sweep worker count; 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are identical at every width.
	Parallelism int
	// Metrics, when non-nil, counts the source sweeps performed
	// (hierarchy.link_value_sweeps / hierarchy.policy_sweeps). Never
	// affects results.
	Metrics *obs.Registry `json:"-"`
}

func (o *Options) defaults() {
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// workers resolves the worker count for n source sweeps.
func (o *Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result holds per-edge link values.
type Result struct {
	Edges  []graph.Edge
	Values []float64 // raw weighted-vertex-cover values, parallel to Edges
	// N is the normalization base: the node count, or the pair-universe
	// size |Q| when sampling was used.
	N int
}

// Normalized returns the link values divided by the node count, the
// normalization of Figures 3, 4 and 14.
func (r *Result) Normalized() []float64 {
	out := make([]float64, len(r.Values))
	for i, v := range r.Values {
		out[i] = v / float64(r.N)
	}
	return out
}

// RankDistribution returns the normalized link-value rank distribution:
// X = rank/|E|, Y = value/N, sorted by decreasing value.
func (r *Result) RankDistribution() stats.Series {
	s := stats.RankDistribution(r.Normalized())
	s.Name = "linkvalues"
	return s
}

// DegreeCorrelation returns the Pearson correlation between each link's
// value and the smaller of its endpoint degrees (Figure 5).
func (r *Result) DegreeCorrelation(g *graph.Graph) float64 {
	return r.DegreeCorrelationDegrees(g.Degrees())
}

// DegreeCorrelationDegrees is DegreeCorrelation over a plain degree slice
// (indexed by node id), so callers holding only a cached degree sequence —
// not the graph itself — can still compute Figure 5.
func (r *Result) DegreeCorrelationDegrees(deg []int) float64 {
	vals := make([]float64, len(r.Edges))
	mins := make([]float64, len(r.Edges))
	for i, e := range r.Edges {
		vals[i] = r.Values[i]
		du, dv := deg[e.U], deg[e.V]
		if dv < du {
			du = dv
		}
		mins[i] = float64(du)
	}
	return stats.Pearson(vals, mins)
}

// pairEntry is one (source, target) pair crossing an edge with the fraction
// of its shortest paths that do so.
type pairEntry struct {
	edge uint32
	u, t int32
	w    float64
}

// LinkValues computes link values under shortest-path routing. Source
// sweeps run concurrently (the graph is immutable; each worker owns its
// scratch buffers), and the canonical entry ordering in coverValues makes
// the result independent of scheduling.
func LinkValues(g *graph.Graph, opts Options) *Result {
	opts.defaults()
	edges := g.Edges()
	edgeIdx := buildEdgeIndex(edges)
	sources, inQ := sampleSources(g.NumNodes(), opts)
	opts.Metrics.Counter("hierarchy.link_value_sweeps").Add(int64(len(sources)))

	workers := opts.workers(len(sources))
	n := g.NumNodes()
	perWorker := make([][]pairEntry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := graph.NewBFSScratch()
			gval := make([]float64, n)
			touched := make([]int32, 0, n)
			var buckets [][]int32
			var entries []pairEntry
			for i := w; i < len(sources); i += workers {
				u := sources[i]
				order := sc.Counts(g, u)
				// Per-target ancestor sweeps over the pair universe.
				for _, t := range order {
					if t == u || !inQ[t] {
						continue
					}
					entries = sweepTarget(g, u, t, sc, edgeIdx, gval, &touched, &buckets, entries)
				}
			}
			perWorker[w] = entries
		}(w)
	}
	wg.Wait()
	var entries []pairEntry
	for _, e := range perWorker {
		entries = append(entries, e...)
	}
	values := coverValues(len(edges), entries)
	return &Result{Edges: edges, Values: values, N: len(sources)}
}

// sweepTarget walks target t's shortest-path ancestor DAG from source u,
// computing per-edge path fractions (g values) and appending pair entries.
// Distances and path counts come from sc's last Counts traversal;
// gval/touched/buckets are reusable scratch (gval zeroed via touched).
func sweepTarget(g *graph.Graph, u, t int32, sc *graph.BFSScratch,
	edgeIdx map[uint64]uint32, gval []float64, touched *[]int32,
	buckets *[][]int32, entries []pairEntry) []pairEntry {

	dt := int(sc.Dist(t))
	if dt <= 0 {
		return entries
	}
	// Ensure bucket capacity.
	for len(*buckets) <= dt {
		*buckets = append(*buckets, nil)
	}
	bs := *buckets
	for d := 0; d <= dt; d++ {
		bs[d] = bs[d][:0]
	}
	gval[t] = 1
	*touched = append((*touched)[:0], t)
	bs[dt] = append(bs[dt], t)
	for d := dt; d >= 1; d-- {
		for _, b := range bs[d] {
			gb := gval[b]
			for _, a := range g.Neighbors(b) {
				if sc.Dist(a) != int32(d-1) {
					continue
				}
				frac := gb * sc.Sigma(a) / sc.Sigma(b)
				entries = append(entries, pairEntry{
					edge: edgeIdx[ekey(a, b)], u: u, t: t, w: frac,
				})
				if gval[a] == 0 {
					// First touch: schedule and track for reset.
					*touched = append(*touched, a)
					if d-1 >= 1 {
						bs[d-1] = append(bs[d-1], a)
					}
				}
				gval[a] += frac
			}
		}
	}
	for _, v := range *touched {
		gval[v] = 0
	}
	return entries
}

func ekey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func buildEdgeIndex(edges []graph.Edge) map[uint64]uint32 {
	idx := make(map[uint64]uint32, len(edges))
	for i, e := range edges {
		idx[ekey(e.U, e.V)] = uint32(i)
	}
	return idx
}

// sampleSources returns the pair-universe node set Q and its membership
// mask.
func sampleSources(n int, opts Options) ([]int32, []bool) {
	inQ := make([]bool, n)
	if opts.MaxSources <= 0 || opts.MaxSources >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
			inQ[i] = true
		}
		return all, inQ
	}
	perm := opts.Rand.Perm(n)
	out := make([]int32, opts.MaxSources)
	for i := range out {
		out[i] = int32(perm[i])
		inQ[out[i]] = true
	}
	return out, inQ
}

// coverValues groups the pair entries by edge, computes per-node traversal
// weights W(x,e) (the average pair fraction over the pairs containing x),
// and runs the primal-dual weighted vertex cover per edge.
func coverValues(numEdges int, entries []pairEntry) []float64 {
	// Canonical (edge, u, t) order makes the order-dependent primal-dual
	// deterministic and independent of how the entries were produced.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.edge != b.edge {
			return a.edge < b.edge
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.t < b.t
	})
	values := make([]float64, numEdges)
	for lo := 0; lo < len(entries); {
		hi := lo
		e := entries[lo].edge
		for hi < len(entries) && entries[hi].edge == e {
			hi++
		}
		values[e] = edgeCover(entries[lo:hi])
		lo = hi
	}
	return values
}

// edgeCover computes one edge's link value from its pair entries: the
// primal-dual (local-ratio) weighted vertex cover of the traversal-set
// bipartite graph, followed by a reverse-order redundancy prune that
// removes cover nodes whose pairs are all covered by other cover nodes
// (without the prune, ties double access-link values).
func edgeCover(pairs []pairEntry) float64 {
	sum := map[int32]float64{}
	cnt := map[int32]int{}
	for _, p := range pairs {
		sum[p.u] += p.w
		cnt[p.u]++
		sum[p.t] += p.w
		cnt[p.t]++
	}
	weight := make(map[int32]float64, len(sum))
	for v, s := range sum {
		weight[v] = s / float64(cnt[v])
	}
	residual := make(map[int32]float64, len(weight))
	for v, w := range weight {
		residual[v] = w
	}
	inCover := map[int32]bool{}
	var coverOrder []int32
	for _, p := range pairs {
		u, t := p.u, p.t
		if inCover[u] || inCover[t] {
			continue
		}
		ru, rt := residual[u], residual[t]
		m := ru
		if rt < m {
			m = rt
		}
		residual[u] = ru - m
		residual[t] = rt - m
		if residual[u] <= 1e-12 {
			inCover[u] = true
			coverOrder = append(coverOrder, u)
		}
		if t != u && residual[t] <= 1e-12 {
			inCover[t] = true
			coverOrder = append(coverOrder, t)
		}
	}
	// Redundancy prune, most recent additions first. Partner lists let each
	// check run in O(pairs containing v).
	partners := map[int32][]int32{}
	for _, p := range pairs {
		partners[p.u] = append(partners[p.u], p.t)
		partners[p.t] = append(partners[p.t], p.u)
	}
	for i := len(coverOrder) - 1; i >= 0; i-- {
		v := coverOrder[i]
		removable := true
		for _, w := range partners[v] {
			if !inCover[w] {
				removable = false
				break
			}
		}
		if removable {
			inCover[v] = false
		}
	}
	// Sum in coverOrder (not map order) so the float accumulation is
	// bit-deterministic across runs and worker counts.
	value := 0.0
	for _, v := range coverOrder {
		if inCover[v] {
			value += weight[v]
		}
	}
	return value
}
