// Package hierarchy implements the paper's measure of hierarchy (§5): the
// link value. A link's traversal set is the set of node pairs whose
// shortest-path traffic crosses the link, each pair weighted by the
// fraction of its equal-cost shortest paths through the link; the link's
// value is the minimum weighted vertex cover of the bipartite graph formed
// by that traversal set, computed with the primal-dual 2-approximation.
//
// The distribution of (normalized) link values is the paper's hierarchy
// signature: strict (Tree, Transit-Stub, Tiers), moderate (AS, RL, PLRG),
// or loose (Mesh, Random, Waxman). The package also computes Figure 5's
// correlation between a link's value and the smaller degree of its
// endpoints.
package hierarchy

import (
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/obs"
	"topocmp/internal/stats"
)

// Options tunes the computation.
type Options struct {
	// MaxSources caps the pair universe (0 = all nodes): when set, link
	// values are computed over the pairs Q×Q of a uniformly sampled node
	// set Q of this size, and normalized by |Q| instead of |V|. Sampling
	// both endpoints symmetrically preserves the vertex-cover structure
	// (one-sided source sampling would cap every cover at the sample
	// size). The paper bounds this cost the same way, computing RL link
	// values on the core graph and sampling nodes for large balls.
	MaxSources int
	// Rand drives sampling; nil uses a fixed seed.
	Rand *rand.Rand
	// Parallelism caps the source-sweep worker count; 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are identical at every width.
	Parallelism int
	// Metrics, when non-nil, counts the source sweeps performed
	// (hierarchy.link_value_sweeps / hierarchy.policy_sweeps). Never
	// affects results.
	Metrics *obs.Registry `json:"-"`
}

func (o *Options) defaults() {
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// workers resolves the worker count for n source sweeps.
func (o *Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result holds per-edge link values.
type Result struct {
	Edges  []graph.Edge
	Values []float64 // raw weighted-vertex-cover values, parallel to Edges
	// N is the normalization base: the node count, or the pair-universe
	// size |Q| when sampling was used.
	N int
	// Nodes is the graph's node count — the population the pair universe
	// was drawn from. Zero in results predating the field (old cache
	// entries are invalidated by the schema bump, but defensive callers
	// treat Nodes == 0 as "no bound available").
	Nodes int
}

// Normalized returns the link values divided by the node count, the
// normalization of Figures 3, 4 and 14.
func (r *Result) Normalized() []float64 {
	out := make([]float64, len(r.Values))
	for i, v := range r.Values {
		out[i] = v / float64(r.N)
	}
	return out
}

// RankDistribution returns the normalized link-value rank distribution:
// X = rank/|E|, Y = value/N, sorted by decreasing value.
//
// When the result records the source population (Nodes > 0), each point
// carries a coarse relative sampling bound: the per-edge value is a sum
// over the N sampled sources, so its relative standard error scales like
// the finite-population-corrected 1/sqrt(N) of a mean over sources —
// StdErr[i] = Y[i]·sqrt((Nodes−N)/((Nodes−1)·N)). Exactly zero for full
// enumeration (N == Nodes), i.e. zero-width bounds.
func (r *Result) RankDistribution() stats.Series {
	s := stats.RankDistribution(r.Normalized())
	s.Name = "linkvalues"
	if r.Nodes > 1 && r.N > 0 {
		fpc := 0.0
		if r.N < r.Nodes {
			fpc = math.Sqrt(float64(r.Nodes-r.N) / (float64(r.Nodes-1) * float64(r.N)))
		}
		s.StdErr = make([]float64, len(s.Points))
		for i, p := range s.Points {
			s.StdErr[i] = p.Y * fpc
		}
	}
	return s
}

// DegreeCorrelation returns the Pearson correlation between each link's
// value and the smaller of its endpoint degrees (Figure 5).
func (r *Result) DegreeCorrelation(g *graph.Graph) float64 {
	return r.DegreeCorrelationDegrees(g.Degrees())
}

// DegreeCorrelationDegrees is DegreeCorrelation over a plain degree slice
// (indexed by node id), so callers holding only a cached degree sequence —
// not the graph itself — can still compute Figure 5.
func (r *Result) DegreeCorrelationDegrees(deg []int) float64 {
	vals := make([]float64, len(r.Edges))
	mins := make([]float64, len(r.Edges))
	for i, e := range r.Edges {
		vals[i] = r.Values[i]
		du, dv := deg[e.U], deg[e.V]
		if dv < du {
			du = dv
		}
		mins[i] = float64(du)
	}
	return stats.Pearson(vals, mins)
}

// pairEntry is one (source, target) pair crossing an edge with the fraction
// of its shortest paths that do so.
type pairEntry struct {
	edge uint32
	u, t int32
	w    float64
}

// sweepScratch is one link-value worker's traversal workspace — BFS
// scratch, the ancestor-sweep g-value accumulators and level buckets, and
// the policy sweeps' per-edge fraction accumulators — leased through the
// unified ball.Pool layer, one bundle per worker per call. The float
// buffers rely on a zero-at-rest invariant (every sweep resets what it
// touched), so a leased bundle behaves exactly like a fresh one.
type sweepScratch struct {
	bfs     *graph.BFSScratch
	gval    []float64
	touched []int32
	buckets [][]int32
	localW  []float64 // per-edge fraction accumulators (policy sweeps)
	localE  []uint32  // edge ids touched in localW for the current target
	// entries persists a worker's pair-entry capacity across leases; growing
	// it fresh every call made append's doubling copies the single biggest
	// cost of the link-value stage. A bundle whose entries are still being
	// read by coverValues must not be returned to the pool until the values
	// are computed.
	entries []pairEntry
	// Product-space traversal buffers for policy sweeps, reused through
	// policy.ProductCountsInto (reset via porder, so they carry their own
	// zero-at-rest invariant).
	pdist  []int32
	psigma []float64
	porder []int32
}

var sweepPool = ball.NewPool(func() *sweepScratch {
	return &sweepScratch{bfs: graph.NewBFSScratch()}
})

// The sweep and cover workspaces hold the pair-entry universe — hundreds of
// megabytes on the bigger networks — so a few survive collections instead of
// being refaulted in every suite run.
func init() {
	sweepPool.Keep(2)
	coverPool.Keep(1)
}

// grownZero returns b with length at least n; freshly grown storage is
// zeroed by make, and surviving storage is zero by the reset invariant.
func grownZero(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// LinkValues computes link values under shortest-path routing. Source
// sweeps run concurrently (the graph is immutable; each worker owns its
// leased scratch), and the canonical entry ordering in coverValues makes
// the result independent of scheduling.
func LinkValues(g *graph.Graph, opts Options) *Result {
	opts.defaults()
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	sources, inQ := sampleSources(g.NumNodes(), opts)
	opts.Metrics.Counter("hierarchy.link_value_sweeps").Add(int64(len(sources)))

	workers := opts.workers(len(sources))
	n := g.NumNodes()
	perWorker := make([][]pairEntry, workers)
	perEnds := make([][]int, workers)
	wss := make([]*sweepScratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sweepPool.Get()
			wss[w] = ws
			ws.gval = grownZero(ws.gval, n)
			entries := ws.entries[:0]
			var ends []int
			for i := w; i < len(sources); i += workers {
				u := sources[i]
				ws.bfs.Counts(g, u)
				// Per-target ancestor sweeps over the pair universe, in
				// ascending target order so each source's entry block comes
				// out (t)-sorted — coverValues' canonical-order contract.
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					entries = sweepTarget(g, u, t, ix, ws, entries)
				}
				ends = append(ends, len(entries))
			}
			ws.entries = entries
			perWorker[w] = entries
			perEnds[w] = ends
		}(w)
	}
	wg.Wait()
	values := coverValues(len(edges), n, perWorker, perEnds)
	for _, ws := range wss {
		sweepPool.Put(ws)
	}
	return &Result{Edges: edges, Values: values, N: len(sources), Nodes: n}
}

// sweepTarget walks target t's shortest-path ancestor DAG from source u,
// computing per-edge path fractions (g values) and appending pair entries.
// Distances and path counts come from ws.bfs's last Counts traversal;
// gval/touched/buckets are reused across targets (gval zeroed via touched).
func sweepTarget(g *graph.Graph, u, t int32, ix *graph.EdgeIndex,
	ws *sweepScratch, entries []pairEntry) []pairEntry {

	sc := ws.bfs
	dt := int(sc.Dist(t))
	if dt <= 0 {
		return entries
	}
	// Ensure bucket capacity.
	for len(ws.buckets) <= dt {
		ws.buckets = append(ws.buckets, nil)
	}
	bs := ws.buckets
	for d := 0; d <= dt; d++ {
		bs[d] = bs[d][:0]
	}
	ws.gval[t] = 1
	ws.touched = append(ws.touched[:0], t)
	bs[dt] = append(bs[dt], t)
	for d := dt; d >= 1; d-- {
		for _, b := range bs[d] {
			gb := ws.gval[b]
			for _, a := range g.Neighbors(b) {
				if sc.Dist(a) != int32(d-1) {
					continue
				}
				frac := gb * sc.Sigma(a) / sc.Sigma(b)
				entries = append(entries, pairEntry{
					edge: uint32(ix.ID(a, b)), u: u, t: t, w: frac,
				})
				if ws.gval[a] == 0 {
					// First touch: schedule and track for reset.
					ws.touched = append(ws.touched, a)
					if d-1 >= 1 {
						bs[d-1] = append(bs[d-1], a)
					}
				}
				ws.gval[a] += frac
			}
		}
	}
	for _, v := range ws.touched {
		ws.gval[v] = 0
	}
	return entries
}

// sampleSources returns the pair-universe node set Q and its membership
// mask. The set is returned in ascending node order: the sweeps emit entry
// blocks in source order, and coverValues relies on that order being
// ascending u to reach the canonical (edge, u, t) grouping without a sort.
// (Which nodes are sampled depends only on the Rand stream, not the order.)
func sampleSources(n int, opts Options) ([]int32, []bool) {
	inQ := make([]bool, n)
	if opts.MaxSources <= 0 || opts.MaxSources >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
			inQ[i] = true
		}
		return all, inQ
	}
	perm := opts.Rand.Perm(n)
	out := make([]int32, opts.MaxSources)
	for i := range out {
		out[i] = int32(perm[i])
		inQ[out[i]] = true
	}
	slices.Sort(out)
	return out, inQ
}

// coverValues groups the pair entries by edge, computes per-node traversal
// weights W(x,e) (the average pair fraction over the pairs containing x),
// and runs the primal-dual weighted vertex cover per edge.
//
// The grouping is a single stable counting sort on the dense edge ids. Its
// input-order contract makes that sufficient for the canonical (edge, u, t)
// order the order-dependent primal-dual needs: each worker's entry list is a
// sequence of per-source blocks, blocks are (t)-ascending inside (the sweeps
// iterate targets in node order), the global source sequence is
// (u)-ascending (sampleSources sorts it), and perEnds[w][k] records where
// worker w's k-th block ends. Replaying the blocks in global source order —
// source index si lives in worker si%W's block si/W — feeds the scatter an
// (u, t)-sorted stream, and stability plus unique (edge, u, t) keys land
// every group fully sorted, with no comparison sort anywhere.
func coverValues(numEdges, numNodes int, perWorker [][]pairEntry,
	perEnds [][]int) []float64 {

	total := 0
	numSources := 0
	for w, es := range perWorker {
		total += len(es)
		numSources += len(perEnds[w])
	}
	ws := coverPool.Get()
	defer coverPool.Put(ws)
	ws.ensure(numNodes)
	off := growInt(ws.off, numEdges+1)
	clear(off)
	ws.off = off
	for _, es := range perWorker {
		for i := range es {
			off[es[i].edge+1]++
		}
	}
	for e := 0; e < numEdges; e++ {
		off[e+1] += off[e]
	}
	cur := growInt(ws.keys, numEdges)
	ws.keys = cur
	copy(cur, off[:numEdges])
	sorted := growPairs(ws.sortA, total)
	ws.sortA = sorted
	W := len(perWorker)
	for si := 0; si < numSources; si++ {
		w, k := si%W, si/W
		start := 0
		if k > 0 {
			start = perEnds[w][k-1]
		}
		for _, p := range perWorker[w][start:perEnds[w][k]] {
			sorted[cur[p.edge]] = p
			cur[p.edge]++
		}
	}
	values := make([]float64, numEdges)
	for e := 0; e < numEdges; e++ {
		group := sorted[off[e]:off[e+1]]
		if len(group) == 0 {
			continue
		}
		values[e] = edgeCover(group, ws)
	}
	return values
}

// coverScratch is the vertex-cover workspace: node-indexed accumulators
// reset through the group's node list, so one edge's cover costs O(pairs)
// with no hashing. Leased through the unified ball.Pool layer.
type coverScratch struct {
	sum      []float64
	weight   []float64
	residual []float64
	cnt      []int32
	localIdx []int32
	inCover  []bool

	nodes      []int32 // distinct nodes of the current group, first-touch order
	coverOrder []int32
	pcnt       []int32 // partner-list CSR offsets (per local node)
	pcur       []int32
	partners   []int32

	// coverValues' counting-sort buffers, pooled (and kept, via Keep) so the
	// per-suite-run transient allocations — the sorted entry universe is the
	// largest single buffer in the pipeline — and their kernel page-fault
	// cost happen once instead of every call.
	sortA []pairEntry
	keys  []int
	off   []int
}

var coverPool = ball.NewPool(func() *coverScratch { return &coverScratch{} })

func (ws *coverScratch) ensure(n int) {
	if len(ws.sum) < n {
		ws.sum = make([]float64, n)
		ws.weight = make([]float64, n)
		ws.residual = make([]float64, n)
		ws.cnt = make([]int32, n)
		ws.localIdx = make([]int32, n)
		ws.inCover = make([]bool, n)
	}
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func growInt(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func growPairs(b []pairEntry, n int) []pairEntry {
	if cap(b) < n {
		return make([]pairEntry, n)
	}
	return b[:n]
}

// edgeCover computes one edge's link value from its canonically ordered
// pair entries: the primal-dual (local-ratio) weighted vertex cover of the
// traversal-set bipartite graph, followed by a reverse-order redundancy
// prune that removes cover nodes whose pairs are all covered by other cover
// nodes (without the prune, ties double access-link values). Every float
// accumulation runs in the entries' canonical order, so the value is
// bit-deterministic across runs and worker counts.
func edgeCover(pairs []pairEntry, ws *coverScratch) float64 {
	nodes := ws.nodes[:0]
	for _, p := range pairs {
		if ws.cnt[p.u] == 0 {
			nodes = append(nodes, p.u)
		}
		ws.sum[p.u] += p.w
		ws.cnt[p.u]++
		if ws.cnt[p.t] == 0 {
			nodes = append(nodes, p.t)
		}
		ws.sum[p.t] += p.w
		ws.cnt[p.t]++
	}
	for _, v := range nodes {
		w := ws.sum[v] / float64(ws.cnt[v])
		ws.weight[v] = w
		ws.residual[v] = w
	}
	coverOrder := ws.coverOrder[:0]
	for _, p := range pairs {
		u, t := p.u, p.t
		if ws.inCover[u] || ws.inCover[t] {
			continue
		}
		ru, rt := ws.residual[u], ws.residual[t]
		m := ru
		if rt < m {
			m = rt
		}
		ws.residual[u] = ru - m
		ws.residual[t] = rt - m
		if ws.residual[u] <= 1e-12 {
			ws.inCover[u] = true
			coverOrder = append(coverOrder, u)
		}
		if t != u && ws.residual[t] <= 1e-12 {
			ws.inCover[t] = true
			coverOrder = append(coverOrder, t)
		}
	}
	// Partner lists as a CSR over the group's local node ids, filled in
	// pair order; each redundancy check runs in O(pairs containing v).
	k := len(nodes)
	for i, v := range nodes {
		ws.localIdx[v] = int32(i)
	}
	pcnt := growI32(ws.pcnt, k+1)
	for i := 0; i <= k; i++ {
		pcnt[i] = 0
	}
	for _, p := range pairs {
		pcnt[ws.localIdx[p.u]+1]++
		pcnt[ws.localIdx[p.t]+1]++
	}
	for i := 0; i < k; i++ {
		pcnt[i+1] += pcnt[i]
	}
	pcur := growI32(ws.pcur, k)
	copy(pcur, pcnt[:k])
	partners := growI32(ws.partners, 2*len(pairs))
	for _, p := range pairs {
		lu, lt := ws.localIdx[p.u], ws.localIdx[p.t]
		partners[pcur[lu]] = p.t
		pcur[lu]++
		partners[pcur[lt]] = p.u
		pcur[lt]++
	}
	for i := len(coverOrder) - 1; i >= 0; i-- {
		v := coverOrder[i]
		li := ws.localIdx[v]
		removable := true
		for _, w := range partners[pcnt[li]:pcnt[li+1]] {
			if !ws.inCover[w] {
				removable = false
				break
			}
		}
		if removable {
			ws.inCover[v] = false
		}
	}
	// Sum in coverOrder (not node order) so the float accumulation matches
	// the cover construction exactly.
	value := 0.0
	for _, v := range coverOrder {
		if ws.inCover[v] {
			value += ws.weight[v]
		}
	}
	// Restore the zero-at-rest invariant for the next group.
	for _, v := range nodes {
		ws.sum[v] = 0
		ws.cnt[v] = 0
		ws.inCover[v] = false
	}
	ws.nodes = nodes
	ws.coverOrder = coverOrder
	ws.pcnt = pcnt
	ws.pcur = pcur
	ws.partners = partners
	return value
}
