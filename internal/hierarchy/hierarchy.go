// Package hierarchy implements the paper's measure of hierarchy (§5): the
// link value. A link's traversal set is the set of node pairs whose
// shortest-path traffic crosses the link, each pair weighted by the
// fraction of its equal-cost shortest paths through the link; the link's
// value is the minimum weighted vertex cover of the bipartite graph formed
// by that traversal set, computed with the primal-dual 2-approximation.
//
// The distribution of (normalized) link values is the paper's hierarchy
// signature: strict (Tree, Transit-Stub, Tiers), moderate (AS, RL, PLRG),
// or loose (Mesh, Random, Waxman). The package also computes Figure 5's
// correlation between a link's value and the smaller degree of its
// endpoints.
package hierarchy

import (
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/obs"
	"topocmp/internal/stats"
)

// Options tunes the computation.
type Options struct {
	// MaxSources caps the pair universe (0 = all nodes): when set, link
	// values are computed over the pairs Q×Q of a uniformly sampled node
	// set Q of this size, and normalized by |Q| instead of |V|. Sampling
	// both endpoints symmetrically preserves the vertex-cover structure
	// (one-sided source sampling would cap every cover at the sample
	// size). The paper bounds this cost the same way, computing RL link
	// values on the core graph and sampling nodes for large balls.
	MaxSources int
	// Rand drives sampling; nil uses a fixed seed.
	Rand *rand.Rand
	// Parallelism caps the source-sweep worker count; 0 uses GOMAXPROCS,
	// 1 runs sequentially. Results are identical at every width.
	Parallelism int
	// Sigma selects the shortest-path-count traversal implementation.
	// Results are byte-identical across modes on the graphs SigmaAuto
	// batches (path counts are exact integers in float64; see the golden
	// tests), so like Parallelism this is a performance knob, not a result
	// parameter.
	Sigma SigmaMode
	// Metrics, when non-nil, counts the source sweeps performed
	// (hierarchy.link_value_sweeps / hierarchy.policy_sweeps) and the sigma
	// routing (hierarchy.sigma_batches / hierarchy.sigma_scalar, width
	// gauge hierarchy.sigma_width). Never affects results.
	Metrics *obs.Registry `json:"-"`
}

// SigmaMode picks how the sweeps obtain per-source distances and
// shortest-path counts.
type SigmaMode int

const (
	// SigmaAuto batches sources through the sigma-carrying MSBFS kernel
	// unless the diameter probe flags a lattice-like graph, which keeps the
	// scalar path (thin frontiers repeat mask work every level there, and
	// lattices are the graphs whose binomial path counts could leave
	// float64's exact-integer range).
	SigmaAuto SigmaMode = iota
	// SigmaScalar forces one scalar BFS per source — the historical path.
	SigmaScalar
	// SigmaBatched forces the batched kernel regardless of the probe.
	SigmaBatched
)

// sigmaRoute resolves whether a call batches through the sigma kernel:
// forced modes short-circuit, SigmaAuto probes the diameter with the same
// double-sweep estimate and threshold as ball.CumProfiles.
func (o *Options) sigmaRoute(g *graph.Graph) bool {
	switch o.Sigma {
	case SigmaScalar:
		return false
	case SigmaBatched:
		return true
	}
	ws := sweepPool.Get()
	defer sweepPool.Put(ws)
	return graph.ApproxDiameter(g, ws.bfs) <= ball.MSBFSDiameterCutoff
}

func (o *Options) defaults() {
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// workers resolves the worker count for n source sweeps.
func (o *Options) workers(n int) int {
	w := o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Result holds per-edge link values.
type Result struct {
	Edges  []graph.Edge
	Values []float64 // raw weighted-vertex-cover values, parallel to Edges
	// N is the normalization base: the node count, or the pair-universe
	// size |Q| when sampling was used.
	N int
	// Nodes is the graph's node count — the population the pair universe
	// was drawn from. Zero in results predating the field (old cache
	// entries are invalidated by the schema bump, but defensive callers
	// treat Nodes == 0 as "no bound available").
	Nodes int
}

// Normalized returns the link values divided by the node count, the
// normalization of Figures 3, 4 and 14.
func (r *Result) Normalized() []float64 {
	out := make([]float64, len(r.Values))
	for i, v := range r.Values {
		out[i] = v / float64(r.N)
	}
	return out
}

// RankDistribution returns the normalized link-value rank distribution:
// X = rank/|E|, Y = value/N, sorted by decreasing value.
//
// When the result records the source population (Nodes > 0), each point
// carries a coarse relative sampling bound: the per-edge value is a sum
// over the N sampled sources, so its relative standard error scales like
// the finite-population-corrected 1/sqrt(N) of a mean over sources —
// StdErr[i] = Y[i]·sqrt((Nodes−N)/((Nodes−1)·N)). Exactly zero for full
// enumeration (N == Nodes), i.e. zero-width bounds.
func (r *Result) RankDistribution() stats.Series {
	s := stats.RankDistribution(r.Normalized())
	s.Name = "linkvalues"
	if r.Nodes > 1 && r.N > 0 {
		fpc := 0.0
		if r.N < r.Nodes {
			fpc = math.Sqrt(float64(r.Nodes-r.N) / (float64(r.Nodes-1) * float64(r.N)))
		}
		s.StdErr = make([]float64, len(s.Points))
		for i, p := range s.Points {
			s.StdErr[i] = p.Y * fpc
		}
	}
	return s
}

// DegreeCorrelation returns the Pearson correlation between each link's
// value and the smaller of its endpoint degrees (Figure 5).
func (r *Result) DegreeCorrelation(g *graph.Graph) float64 {
	return r.DegreeCorrelationDegrees(g.Degrees())
}

// DegreeCorrelationDegrees is DegreeCorrelation over a plain degree slice
// (indexed by node id), so callers holding only a cached degree sequence —
// not the graph itself — can still compute Figure 5.
func (r *Result) DegreeCorrelationDegrees(deg []int) float64 {
	vals := make([]float64, len(r.Edges))
	mins := make([]float64, len(r.Edges))
	for i, e := range r.Edges {
		vals[i] = r.Values[i]
		du, dv := deg[e.U], deg[e.V]
		if dv < du {
			du = dv
		}
		mins[i] = float64(du)
	}
	return stats.Pearson(vals, mins)
}

// pairEntry is one (source, target) pair crossing an edge with the fraction
// of its shortest paths that do so.
type pairEntry struct {
	edge uint32
	u, t int32
	w    float64
}

// coverEntry is one pair entry inside a single edge's group: the edge id is
// implicit in the grouping, so the cover passes stream 16-byte elements
// instead of re-reading it from every entry.
type coverEntry struct {
	u, t int32
	w    float64
}

// coverBucketShift sizes the edgeStream buckets: edge ids are partitioned
// by id>>shift, 32 edges per bucket. Buckets keep the emission's write
// streams few and sequential (cache- and TLB-resident tails) while staying
// small enough that one bucket's entries counting-sort and cover inside L2.
const coverBucketShift = 5

// bucketChunk is the edgeStream arena chunk size in entries (a power of
// two: the emission fast path tests the cursor against the chunk mask).
const bucketChunk = 1024

// edgeStream radix-partitions pair entries by edge-id bucket as they are
// emitted, so the single-worker batched route never materializes the global
// linear entry log or its full-size counting sort: the sweeps append each
// entry to its bucket's chunk chain (a handful of hot sequential tails
// instead of one random-write arena), and finalization re-sorts one
// cache-resident bucket at a time into per-edge groups. A single worker
// emits in canonical (u, t)-ascending order, and the bucket sort is stable
// by edge, so each group reads back exactly the sequence the global
// counting sort would hand edgeCover.
//
// cur is each bucket's next write index into the data arena. Chunk 0 is a
// reserved sentinel no bucket ever owns, so cur == 0 (empty bucket) and any
// other chunk-aligned value (full tail) both land on the one boundary test
// at the open-coded emission sites — the hot path is three memory
// operations on cache-resident lines.
type edgeStream struct {
	heads []int32 // per bucket: first chunk, -1 when empty
	tails []int32 // per bucket: tail chunk
	cur   []int32 // per bucket: next write index into data
	next  []int32 // per chunk: successor, -1 at the tail
	data  []pairEntry
}

func (es *edgeStream) reset(numEdges int) {
	nb := (numEdges >> coverBucketShift) + 1
	es.heads = growI32(es.heads, nb)
	es.tails = growI32(es.tails, nb)
	es.cur = growI32(es.cur, nb)
	for i := 0; i < nb; i++ {
		es.heads[i] = -1
		es.tails[i] = -1
		es.cur[i] = 0
	}
	// Reserve the sentinel chunk (its contents are never read).
	es.next = append(es.next[:0], -1)
	if cap(es.data) < bucketChunk {
		es.data = make([]pairEntry, bucketChunk, 32*bucketChunk)
	} else {
		es.data = es.data[:bucketChunk]
	}
}

// grow opens a new tail chunk for bucket b and writes p as its first entry;
// reused arena capacity is left dirty (cur bounds every read).
func (es *edgeStream) grow(b uint32, p pairEntry) {
	ni := int32(len(es.next))
	es.next = append(es.next, -1)
	base := ni * bucketChunk
	need := int(base) + bucketChunk
	if cap(es.data) < need {
		nd := make([]pairEntry, need, max(2*need, 32*bucketChunk))
		copy(nd, es.data)
		es.data = nd
	} else {
		es.data = es.data[:need]
	}
	es.data[base] = p
	if ti := es.tails[b]; ti >= 0 {
		es.next[ti] = ni
	} else {
		es.heads[b] = ni
	}
	es.tails[b] = ni
	es.cur[b] = base + 1
}

// sweepScratch is one link-value worker's traversal workspace — BFS
// scratch, the ancestor-sweep g-value accumulators and level buckets, and
// the policy sweeps' per-edge fraction accumulators — leased through the
// unified ball.Pool layer, one bundle per worker per call. The float
// buffers rely on a zero-at-rest invariant (every sweep resets what it
// touched), so a leased bundle behaves exactly like a fresh one.
type sweepScratch struct {
	bfs     *graph.BFSScratch
	msbfs   *graph.MSBFSScratch // sigma-batch kernel, allocated on first batched lease
	emarks  graph.Stamp         // per-target edge dedup marks (TraversalSetSizes)
	gval    []float64
	touched []int32
	buckets [][]int32
	localW  []float64 // per-edge fraction accumulators (policy sweeps)
	localE  []uint32  // edge ids touched in localW for the current target
	// entries persists a worker's pair-entry capacity across leases; growing
	// it fresh every call made append's doubling copies the single biggest
	// cost of the link-value stage. A bundle whose entries are still being
	// read by coverValues must not be returned to the pool until the values
	// are computed.
	entries []pairEntry
	// Per-source shortest-path-DAG predecessor lists (batched route only):
	// pred arcs of b are its neighbors one level closer to the source, in
	// adjacency order, with their dense edge ids alongside. Built lazily —
	// a node's adjacency is filtered the first time a target walk reaches
	// it, memoized for the source's remaining targets via pstamp — so with
	// sampled pair universes only the ancestors of sampled targets ever pay
	// an adjacency scan or a (table-read) edge-id lookup.
	pstamp   graph.Stamp
	predLo   []int32 // b's pred arcs are predAdj[predLo[b]:predHi[b]]
	predHi   []int32 // valid only where pstamp has seen b
	predAdj  []int32 // fixed length m per source; predN is the fill cursor
	predEdge []uint32
	predN    int32
	// stream is the fused per-edge entry store of the single-worker batched
	// route, replacing the linear entry log plus coverValues' counting sort.
	stream *edgeStream
	// Product-space traversal buffers for policy sweeps, reused through
	// policy.ProductCountsInto (reset via porder, so they carry their own
	// zero-at-rest invariant).
	pdist  []int32
	psigma []float64
	porder []int32
}

var sweepPool = ball.NewPool(func() *sweepScratch {
	return &sweepScratch{bfs: graph.NewBFSScratch()}
})

// The sweep and cover workspaces hold the pair-entry universe — hundreds of
// megabytes on the bigger networks — so a few survive collections instead of
// being refaulted in every suite run.
func init() {
	sweepPool.Keep(2)
	coverPool.Keep(1)
}

// grownZero returns b with length at least n; freshly grown storage is
// zeroed by make, and surviving storage is zero by the reset invariant.
func grownZero(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// sigmaPlan sizes the batched route: strip width from the pending sources
// like ball.CumProfiles (never starving the pool), worker count capped at
// the strip count, and the routing counters recorded. Returns width 0 on
// the scalar route.
func sigmaPlan(opts *Options, numSources, workers int, batched bool) (width, strips, w int) {
	if !batched {
		opts.Metrics.Counter("hierarchy.sigma_scalar").Add(int64(numSources))
		return 0, 0, workers
	}
	width = ball.BatchWidth(numSources, workers)
	strips = (numSources + width - 1) / width
	if workers > strips {
		workers = strips
	}
	if workers < 1 {
		workers = 1
	}
	opts.Metrics.Gauge("hierarchy.sigma_width").Set(int64(width))
	opts.Metrics.Counter("hierarchy.sigma_batches").Add(int64(strips))
	return width, strips, workers
}

// LinkValues computes link values under shortest-path routing. Source
// sweeps run concurrently (the graph is immutable; each worker owns its
// leased scratch) and, on low-diameter graphs, in bit-parallel sigma
// batches — one CSR sweep per mask strip of up to graph.MSBFSMaxWidth
// sources instead of one scalar BFS each. The canonical entry ordering in
// coverValues makes the result independent of scheduling, and path counts
// are exact integers in float64 on the batched route, so the values are
// byte-identical across worker counts and sigma modes.
func LinkValues(g *graph.Graph, opts Options) *Result {
	opts.defaults()
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	sources, inQ := sampleSources(g.NumNodes(), opts)
	opts.Metrics.Counter("hierarchy.link_value_sweeps").Add(int64(len(sources)))

	n := g.NumNodes()
	width, strips, workers := sigmaPlan(&opts, len(sources), opts.workers(len(sources)), opts.sigmaRoute(g))
	var arcIDs []uint32
	if width > 0 {
		arcIDs = ix.ArcIDs() // shared, read-only across workers
	}
	if width > 0 && workers == 1 {
		// Fused single-worker batched route: one worker sweeps sources in
		// ascending order, so entries can stream straight into per-edge
		// groups (edgeStream) in canonical order — no linear entry log, no
		// counting sort, no replay. This is the route reproduce -j 1 takes
		// on the paper's low-diameter families.
		ws := sweepPool.Get()
		defer sweepPool.Put(ws)
		ws.gval = grownZero(ws.gval, n)
		if ws.msbfs == nil {
			ws.msbfs = graph.NewMSBFSScratch()
		}
		if ws.stream == nil {
			ws.stream = &edgeStream{}
		}
		es := ws.stream
		es.reset(len(edges))
		off, adj := g.CSR()
		for k := 0; k < strips; k++ {
			lo := k * width
			hi := min(lo+width, len(sources))
			strip := sources[lo:hi]
			ws.msbfs.RunSigma(g, strip)
			for j, u := range strip {
				dist, sigma := ws.msbfs.DistRow(j), ws.msbfs.SigmaRow(j)
				ws.beginPreds(n, len(edges))
				fs := newFastSweep(off, adj, arcIDs, dist, sigma, ws)
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					d := dist[t]
					if d <= 0 || d == graph.Unreached {
						continue
					}
					sweepTargetStream(u, t, int(d), fs, ws, es)
				}
			}
		}
		values := coverValuesStream(len(edges), n, es)
		return &Result{Edges: edges, Values: values, N: len(sources), Nodes: n}
	}
	perWorker := make([][]pairEntry, workers)
	perEnds := make([][]int, workers)
	perSrc := make([][]int, workers)
	wss := make([]*sweepScratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sweepPool.Get()
			wss[w] = ws
			ws.gval = grownZero(ws.gval, n)
			entries := ws.entries[:0]
			var ends, srcIdx []int
			// Per-target ancestor sweeps run over the pair universe in
			// ascending target order so each source's entry block comes out
			// (t)-sorted — coverValues' canonical-order contract. perSrc
			// records each block's global source index for the replay.
			sweepSource := func(u int32, si int, fs *fastSweep, dist []int32, sigma []float64, dt func(int32) int32) {
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					d := dt(t)
					if d <= 0 || d == graph.Unreached {
						continue
					}
					if fs != nil {
						entries = sweepTargetFast(u, t, int(d), fs, ws, entries)
					} else {
						entries = sweepTarget(g, u, t, int(d), ix, ws, entries, dist, sigma)
					}
				}
				ends = append(ends, len(entries))
				srcIdx = append(srcIdx, si)
			}
			if width > 0 {
				if ws.msbfs == nil {
					ws.msbfs = graph.NewMSBFSScratch()
				}
				off, adj := g.CSR()
				for k := w; k < strips; k += workers {
					lo := k * width
					hi := min(lo+width, len(sources))
					strip := sources[lo:hi]
					ws.msbfs.RunSigma(g, strip)
					for j, u := range strip {
						dist, sigma := ws.msbfs.DistRow(j), ws.msbfs.SigmaRow(j)
						// RunSigma pre-fills the rows, so raw reads are safe —
						// both for the target gate and the pred build.
						ws.beginPreds(n, len(edges))
						fs := newFastSweep(off, adj, arcIDs, dist, sigma, ws)
						sweepSource(u, lo+j, fs, dist, sigma, func(t int32) int32 { return dist[t] })
					}
				}
			} else {
				for i := w; i < len(sources); i += workers {
					u := sources[i]
					ws.bfs.Counts(g, u)
					dist, sigma := ws.bfs.Rows()
					// The raw rows are stale at unreached nodes, so the
					// target gate reads the epoch-guarded accessor; inside
					// the ancestor DAG every node is reached.
					sweepSource(u, i, nil, dist, sigma, ws.bfs.Dist)
				}
			}
			ws.entries = entries
			perWorker[w] = entries
			perEnds[w] = ends
			perSrc[w] = srcIdx
		}(w)
	}
	wg.Wait()
	values := coverValues(len(edges), n, perWorker, perEnds, perSrc)
	for _, ws := range wss {
		sweepPool.Put(ws)
	}
	return &Result{Edges: edges, Values: values, N: len(sources), Nodes: n}
}

// sweepTarget walks target t's shortest-path ancestor DAG from source u,
// computing per-edge path fractions (g values) and appending pair entries.
// Distances and path counts are passed as raw source rows — either
// ws.bfs.Rows() after a scalar Counts traversal or a DistRow/SigmaRow pair
// from a sigma batch; both carry identical values, so the emitted entry
// stream is byte-identical across routes. dt is t's (caller-gated, > 0 and
// reached) distance; inside the DAG every node is reached, so raw row reads
// need no epoch guard. gval/touched/buckets are reused across targets (gval
// zeroed via touched).
func sweepTarget(g *graph.Graph, u, t int32, dt int, ix *graph.EdgeIndex,
	ws *sweepScratch, entries []pairEntry, dist []int32, sigma []float64) []pairEntry {

	// Ensure bucket capacity.
	for len(ws.buckets) <= dt {
		ws.buckets = append(ws.buckets, nil)
	}
	bs := ws.buckets
	for d := 0; d <= dt; d++ {
		bs[d] = bs[d][:0]
	}
	ws.gval[t] = 1
	ws.touched = append(ws.touched[:0], t)
	bs[dt] = append(bs[dt], t)
	for d := dt; d >= 1; d-- {
		for _, b := range bs[d] {
			gb := ws.gval[b]
			for _, a := range g.Neighbors(b) {
				if dist[a] != int32(d-1) {
					continue
				}
				frac := gb * sigma[a] / sigma[b]
				entries = append(entries, pairEntry{
					edge: uint32(ix.ID(a, b)), u: u, t: t, w: frac,
				})
				if ws.gval[a] == 0 {
					// First touch: schedule and track for reset.
					ws.touched = append(ws.touched, a)
					if d-1 >= 1 {
						bs[d-1] = append(bs[d-1], a)
					}
				}
				ws.gval[a] += frac
			}
		}
	}
	for _, v := range ws.touched {
		ws.gval[v] = 0
	}
	return entries
}

// beginPreds resets the lazy predecessor state for a new source: one epoch
// bump and a cursor reset — no per-node clearing, predLo/predHi are only
// read where pstamp has seen the node. The arc buffers are sized to m up
// front: an undirected edge is a pred arc in at most one direction per
// source (its endpoints' distances differ by at most one), so m bounds a
// source's total pred-arc count and the buffers never reallocate — which
// lets fastSweep hold them as stable slices the hot loops read without
// reloading.
func (ws *sweepScratch) beginPreds(n, m int) {
	ws.pstamp.Begin(n)
	ws.predLo = growI32(ws.predLo, n)
	ws.predHi = growI32(ws.predHi, n)
	ws.predAdj = growI32(ws.predAdj, m)
	if cap(ws.predEdge) < m {
		ws.predEdge = make([]uint32, m)
	} else {
		ws.predEdge = ws.predEdge[:m]
	}
	ws.predN = 0
}

// fastSweep bundles one source's immutable sweep inputs — the graph CSR,
// the arc-id table, the source's exact distance/path-count rows (the sigma
// batch pre-fills its rows, so every node reads Unreached or a true
// distance; the scalar route's stale rows must not be fed here), and the
// source's pred-arc buffers (stable for the source's lifetime, see
// beginPreds).
type fastSweep struct {
	off, adj []int32
	arcIDs   []uint32
	dist     []int32
	sigma    []float64
	predAdj  []int32
	predEdge []uint32
}

func newFastSweep(off, adj []int32, arcIDs []uint32, dist []int32, sigma []float64,
	ws *sweepScratch) *fastSweep {
	return &fastSweep{
		off: off, adj: adj, arcIDs: arcIDs, dist: dist, sigma: sigma,
		predAdj: ws.predAdj, predEdge: ws.predEdge,
	}
}

// buildPreds filters b's adjacency into its predecessor range. The lists
// come out in adjacency order whatever the target order, so the emitted
// entry stream stays canonical. Callers open-code the memoization check —
// `if ws.pstamp.Visit(b) { fs.buildPreds(b, ws) }` — so the per-visit fast
// path (an inlined epoch compare plus two range loads) never pays a call;
// only first touches enter here.
func (fs *fastSweep) buildPreds(b int32, ws *sweepScratch) {
	base := fs.off[b]
	want := fs.dist[b] - 1
	k := ws.predN
	for i, a := range fs.adj[base:fs.off[b+1]] {
		if fs.dist[a] == want {
			fs.predAdj[k] = a
			fs.predEdge[k] = fs.arcIDs[base+int32(i)]
			k++
		}
	}
	ws.predLo[b], ws.predHi[b] = ws.predN, k
	ws.predN = k
}

// sweepTargetFast is sweepTarget over the lazy predecessor lists: same
// bucket walk, same g-value recurrence, same entry order (pred lists
// preserve adjacency order) and bit-identical arithmetic (sigma[b] is
// merely hoisted out of the arc loop), touching only the DAG arcs that
// emit entries instead of every adjacency arc of every ancestor.
//
// When the pair has a unique shortest path (sigma[t] == 1), the ancestor
// DAG is a single chain — every node on it also has path count 1, hence
// exactly one pred — and every fraction is exactly 1*1/1 = 1, so the walk
// degenerates to following single pred links with no g-value bookkeeping.
// Entry order and float values are identical to the general walk's.
func sweepTargetFast(u, t int32, dt int, fs *fastSweep, ws *sweepScratch,
	entries []pairEntry) []pairEntry {

	sigma := fs.sigma
	if sigma[t] == 1 {
		b := t
		for d := dt; d >= 1; d-- {
			if ws.pstamp.Visit(b) {
				fs.buildPreds(b, ws)
			}
			lo := ws.predLo[b]
			entries = append(entries, pairEntry{
				edge: fs.predEdge[lo], u: u, t: t, w: 1,
			})
			b = fs.predAdj[lo]
		}
		return entries
	}
	for len(ws.buckets) <= dt {
		ws.buckets = append(ws.buckets, nil)
	}
	bs := ws.buckets
	for d := 0; d <= dt; d++ {
		bs[d] = bs[d][:0]
	}
	ws.gval[t] = 1
	ws.touched = append(ws.touched[:0], t)
	bs[dt] = append(bs[dt], t)
	for d := dt; d >= 1; d-- {
		for _, b := range bs[d] {
			gb := ws.gval[b]
			sb := sigma[b]
			if ws.pstamp.Visit(b) {
				fs.buildPreds(b, ws)
			}
			lo, hi := ws.predLo[b], ws.predHi[b]
			for i := lo; i < hi; i++ {
				a := fs.predAdj[i]
				frac := gb * sigma[a] / sb
				entries = append(entries, pairEntry{
					edge: fs.predEdge[i], u: u, t: t, w: frac,
				})
				if ws.gval[a] == 0 {
					ws.touched = append(ws.touched, a)
					if d-1 >= 1 {
						bs[d-1] = append(bs[d-1], a)
					}
				}
				ws.gval[a] += frac
			}
		}
	}
	for _, v := range ws.touched {
		ws.gval[v] = 0
	}
	return entries
}

// sweepTargetStream is sweepTargetFast emitting into an edgeStream instead
// of the linear entry log: same walk, same arithmetic, same per-pair entry
// order — only the destination differs, each entry landing directly in its
// edge's group. Sources (ascending) and targets (ascending per source) are
// swept in canonical order by the single worker that uses this variant, so
// every group accumulates exactly the sequence the counting sort would
// hand edgeCover.
func sweepTargetStream(u, t int32, dt int, fs *fastSweep, ws *sweepScratch,
	es *edgeStream) {

	sigma := fs.sigma
	// The stream emission fast path is open-coded (the grow call pushes a
	// method past the inliner's budget). cur never moves during a sweep;
	// data is reloaded after any grow, which may reallocate the arena.
	cur, data := es.cur, es.data
	if sigma[t] == 1 {
		b := t
		for d := dt; d >= 1; d-- {
			if ws.pstamp.Visit(b) {
				fs.buildPreds(b, ws)
			}
			lo := ws.predLo[b]
			e := fs.predEdge[lo]
			bkt := e >> coverBucketShift
			if c := cur[bkt]; c&(bucketChunk-1) != 0 {
				data[c] = pairEntry{edge: e, u: u, t: t, w: 1}
				cur[bkt] = c + 1
			} else {
				es.grow(bkt, pairEntry{edge: e, u: u, t: t, w: 1})
				data = es.data
			}
			b = fs.predAdj[lo]
		}
		return
	}
	for len(ws.buckets) <= dt {
		ws.buckets = append(ws.buckets, nil)
	}
	bs := ws.buckets
	for d := 0; d <= dt; d++ {
		bs[d] = bs[d][:0]
	}
	ws.gval[t] = 1
	ws.touched = append(ws.touched[:0], t)
	bs[dt] = append(bs[dt], t)
	for d := dt; d >= 1; d-- {
		for _, b := range bs[d] {
			gb := ws.gval[b]
			sb := sigma[b]
			if ws.pstamp.Visit(b) {
				fs.buildPreds(b, ws)
			}
			lo, hi := ws.predLo[b], ws.predHi[b]
			for i := lo; i < hi; i++ {
				a := fs.predAdj[i]
				frac := gb * sigma[a] / sb
				e := fs.predEdge[i]
				bkt := e >> coverBucketShift
				if c := cur[bkt]; c&(bucketChunk-1) != 0 {
					data[c] = pairEntry{edge: e, u: u, t: t, w: frac}
					cur[bkt] = c + 1
				} else {
					es.grow(bkt, pairEntry{edge: e, u: u, t: t, w: frac})
					data = es.data
				}
				if ws.gval[a] == 0 {
					ws.touched = append(ws.touched, a)
					if d-1 >= 1 {
						bs[d-1] = append(bs[d-1], a)
					}
				}
				ws.gval[a] += frac
			}
		}
	}
	for _, v := range ws.touched {
		ws.gval[v] = 0
	}
}

// sampleSources returns the pair-universe node set Q and its membership
// mask. The set is returned in ascending node order: the sweeps emit entry
// blocks in source order, and coverValues relies on that order being
// ascending u to reach the canonical (edge, u, t) grouping without a sort.
// (Which nodes are sampled depends only on the Rand stream, not the order.)
func sampleSources(n int, opts Options) ([]int32, []bool) {
	inQ := make([]bool, n)
	if opts.MaxSources <= 0 || opts.MaxSources >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
			inQ[i] = true
		}
		return all, inQ
	}
	perm := opts.Rand.Perm(n)
	out := make([]int32, opts.MaxSources)
	for i := range out {
		out[i] = int32(perm[i])
		inQ[out[i]] = true
	}
	slices.Sort(out)
	return out, inQ
}

// coverValues groups the pair entries by edge, computes per-node traversal
// weights W(x,e) (the average pair fraction over the pairs containing x),
// and runs the primal-dual weighted vertex cover per edge.
//
// The grouping is a single stable counting sort on the dense edge ids. Its
// input-order contract makes that sufficient for the canonical (edge, u, t)
// order the order-dependent primal-dual needs: each worker's entry list is a
// sequence of per-source blocks, blocks are (t)-ascending inside (the sweeps
// iterate targets in node order), the global source sequence is
// (u)-ascending (sampleSources sorts it), perEnds[w][k] records where worker
// w's k-th block ends, and perSrc[w][k] which global source index it holds.
// Replaying the blocks in ascending global source order feeds the scatter an
// (u, t)-sorted stream, and stability plus unique (edge, u, t) keys land
// every group fully sorted, with no comparison sort anywhere. The explicit
// perSrc map is what lets the scalar route (sources striped one at a time)
// and the sigma route (sources striped in whole mask strips) share one
// replay with identical output.
func coverValues(numEdges, numNodes int, perWorker [][]pairEntry,
	perEnds [][]int, perSrc [][]int) []float64 {

	total := 0
	numSources := 0
	for w, es := range perWorker {
		total += len(es)
		numSources += len(perEnds[w])
	}
	ws := coverPool.Get()
	defer coverPool.Put(ws)
	ws.ensure(numNodes)
	off := growInt(ws.off, numEdges+1)
	clear(off)
	ws.off = off
	for _, es := range perWorker {
		for i := range es {
			off[es[i].edge+1]++
		}
	}
	for e := 0; e < numEdges; e++ {
		off[e+1] += off[e]
	}
	cur := growInt(ws.keys, numEdges)
	ws.keys = cur
	copy(cur, off[:numEdges])
	sorted := growPairs(ws.sortA, total)
	ws.sortA = sorted
	blockW := growInt(ws.blockW, numSources)
	ws.blockW = blockW
	blockK := growInt(ws.blockK, numSources)
	ws.blockK = blockK
	for w, srcs := range perSrc {
		for k, si := range srcs {
			blockW[si], blockK[si] = w, k
		}
	}
	for si := 0; si < numSources; si++ {
		w, k := blockW[si], blockK[si]
		start := 0
		if k > 0 {
			start = perEnds[w][k-1]
		}
		for _, p := range perWorker[w][start:perEnds[w][k]] {
			sorted[cur[p.edge]] = coverEntry{u: p.u, t: p.t, w: p.w}
			cur[p.edge]++
		}
	}
	values := make([]float64, numEdges)
	for e := 0; e < numEdges; e++ {
		group := sorted[off[e]:off[e+1]]
		if len(group) == 0 {
			continue
		}
		values[e] = edgeCover(group, ws)
	}
	return values
}

// coverValuesStream is coverValues over a bucket-partitioned edgeStream:
// one bucket at a time, its log is counting-sorted by edge (stable, so each
// group keeps the canonical emission order) into a cache-resident buffer
// and the groups handed to the same edgeCover. The values are byte-identical
// to the global counting-sort path's.
func coverValuesStream(numEdges, numNodes int, es *edgeStream) []float64 {
	ws := coverPool.Get()
	defer coverPool.Put(ws)
	ws.ensure(numNodes)
	values := make([]float64, numEdges)
	const be = 1 << coverBucketShift
	var cnt [be + 1]int32
	for b := range es.heads {
		if es.heads[b] < 0 {
			continue
		}
		lo := uint32(b) << coverBucketShift
		for i := range cnt {
			cnt[i] = 0
		}
		total := 0
		for ci := es.heads[b]; ci >= 0; ci = es.next[ci] {
			base := ci * bucketChunk
			end := base + bucketChunk
			if ci == es.tails[b] {
				end = es.cur[b]
			}
			seg := es.data[base:end]
			total += len(seg)
			for i := range seg {
				cnt[seg[i].edge-lo+1]++
			}
		}
		for i := 0; i < be; i++ {
			cnt[i+1] += cnt[i]
		}
		sorted := growPairs(ws.sortA, total)
		for ci := es.heads[b]; ci >= 0; ci = es.next[ci] {
			base := ci * bucketChunk
			end := base + bucketChunk
			if ci == es.tails[b] {
				end = es.cur[b]
			}
			seg := es.data[base:end]
			for i := range seg {
				p := &seg[i]
				c := p.edge - lo
				sorted[cnt[c]] = coverEntry{u: p.u, t: p.t, w: p.w}
				cnt[c]++
			}
		}
		ws.sortA = sorted
		// cnt[c] now ends group c (the scatter advanced each slot to its
		// successor's start).
		start := int32(0)
		for c := 0; c < be; c++ {
			group := sorted[start:cnt[c]]
			start = cnt[c]
			if len(group) == 0 {
				continue
			}
			values[lo+uint32(c)] = edgeCover(group, ws)
		}
	}
	return values
}

// coverScratch is the vertex-cover workspace: node-indexed accumulators
// reset through the group's node list, so one edge's cover costs O(pairs)
// with no hashing. Leased through the unified ball.Pool layer.
type coverScratch struct {
	sum      []float64
	weight   []float64
	residual []float64
	cnt      []int32
	localIdx []int32
	inCover  []bool

	nodes      []int32 // distinct nodes of the current group, first-touch order
	coverOrder []int32
	plists     [][]int32 // per-cover-slot partner lists (capacities persist)

	// coverValues' counting-sort buffers, pooled (and kept, via Keep) so the
	// per-suite-run transient allocations — the sorted entry universe is the
	// largest single buffer in the pipeline — and their kernel page-fault
	// cost happen once instead of every call.
	sortA []coverEntry
	keys  []int
	off   []int
	// Block replay map: blockW/blockK[si] locate global source si's entry
	// block (worker, block index) for the canonical-order scatter.
	blockW []int
	blockK []int
}

var coverPool = ball.NewPool(func() *coverScratch { return &coverScratch{} })

func (ws *coverScratch) ensure(n int) {
	if len(ws.sum) < n {
		ws.sum = make([]float64, n)
		ws.weight = make([]float64, n)
		ws.residual = make([]float64, n)
		ws.cnt = make([]int32, n)
		ws.localIdx = make([]int32, n)
		ws.inCover = make([]bool, n)
	}
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func growInt(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func growPairs(b []coverEntry, n int) []coverEntry {
	if cap(b) < n {
		return make([]coverEntry, n)
	}
	return b[:n]
}

// edgeCover computes one edge's link value from its canonically ordered
// pair entries: the primal-dual (local-ratio) weighted vertex cover of the
// traversal-set bipartite graph, followed by a reverse-order redundancy
// prune that removes cover nodes whose pairs are all covered by other cover
// nodes (without the prune, ties double access-link values). Every float
// accumulation runs in the entries' canonical order, so the value is
// bit-deterministic across runs and worker counts.
func edgeCover(pairs []coverEntry, ws *coverScratch) float64 {
	nodes := ws.nodes[:0]
	for _, p := range pairs {
		if ws.cnt[p.u] == 0 {
			nodes = append(nodes, p.u)
		}
		ws.sum[p.u] += p.w
		ws.cnt[p.u]++
		if ws.cnt[p.t] == 0 {
			nodes = append(nodes, p.t)
		}
		ws.sum[p.t] += p.w
		ws.cnt[p.t]++
	}
	return edgeCoverPrepared(pairs, nodes, ws)
}

// edgeCoverPrepared is edgeCover after the accumulation pass: the caller has
// already folded every entry into ws.sum/ws.cnt (in canonical entry order)
// and collected the group's distinct nodes in first-touch order — either via
// edgeCover's own pass or fused into the stream gather's chunk copy.
func edgeCoverPrepared(pairs []coverEntry, nodes []int32, ws *coverScratch) float64 {
	for _, v := range nodes {
		w := ws.sum[v] / float64(ws.cnt[v])
		ws.weight[v] = w
		ws.residual[v] = w
	}
	coverOrder := ws.coverOrder[:0]
	for _, p := range pairs {
		u, t := p.u, p.t
		if ws.inCover[u] || ws.inCover[t] {
			continue
		}
		ru, rt := ws.residual[u], ws.residual[t]
		m := ru
		if rt < m {
			m = rt
		}
		ws.residual[u] = ru - m
		ws.residual[t] = rt - m
		if ws.residual[u] <= 1e-12 {
			ws.inCover[u] = true
			coverOrder = append(coverOrder, u)
		}
		if t != u && ws.residual[t] <= 1e-12 {
			ws.inCover[t] = true
			coverOrder = append(coverOrder, t)
		}
	}
	// Redundancy prune. A lone cover node can never be removed — its
	// partners are by construction outside the cover — so the partner-list
	// machinery only runs for multi-node covers. Each cover node gets a
	// local slot with an append-grown partner list (slot capacities persist
	// across groups through the scratch), built in one pass over the pairs;
	// only cover nodes are slotted, so slot setup is O(|cover|), not
	// O(|nodes|).
	if len(coverOrder) > 1 {
		nc := len(coverOrder)
		for len(ws.plists) < nc {
			ws.plists = append(ws.plists, nil)
		}
		pl := ws.plists
		for i, v := range coverOrder {
			ws.localIdx[v] = int32(i)
			pl[i] = pl[i][:0]
		}
		for _, p := range pairs {
			if ws.inCover[p.u] {
				li := ws.localIdx[p.u]
				pl[li] = append(pl[li], p.t)
			}
			if ws.inCover[p.t] {
				li := ws.localIdx[p.t]
				pl[li] = append(pl[li], p.u)
			}
		}
		for i := nc - 1; i >= 0; i-- {
			removable := true
			for _, w := range pl[i] {
				if !ws.inCover[w] {
					removable = false
					break
				}
			}
			if removable {
				ws.inCover[coverOrder[i]] = false
			}
		}
	}
	// Sum in coverOrder (not node order) so the float accumulation matches
	// the cover construction exactly.
	value := 0.0
	for _, v := range coverOrder {
		if ws.inCover[v] {
			value += ws.weight[v]
		}
	}
	// Restore the zero-at-rest invariant for the next group.
	for _, v := range nodes {
		ws.sum[v] = 0
		ws.cnt[v] = 0
		ws.inCover[v] = false
	}
	ws.nodes = nodes
	ws.coverOrder = coverOrder
	return value
}
