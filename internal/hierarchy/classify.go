package hierarchy

import "topocmp/internal/stats"

// Class is the paper's three-way hierarchy grouping (§5.1).
type Class int

const (
	// Loose hierarchy: link values spread nearly evenly (Mesh, Random,
	// Waxman).
	Loose Class = iota
	// Moderate hierarchy: values fall off quickly but the top values stay
	// well below the strict regime (AS, RL, PLRG and variants).
	Moderate
	// Strict hierarchy: a few links carry extreme values and the
	// distribution collapses (Tree, Transit-Stub, Tiers).
	Strict
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Strict:
		return "strict"
	case Moderate:
		return "moderate"
	default:
		return "loose"
	}
}

// Thresholds of the paper's qualitative §5.1 groupings, phrased in
// scale-invariant form so they survive pair-universe sampling: loose graphs
// keep a large share of links near the maximum value (the paper's "very
// flat" distributions — almost 70% of Mesh/Random/Waxman links sit around
// 0.05); strict graphs concentrate usage on links whose covers span a large
// constant fraction of the nodes (Tree and TS tops above 0.3, Tiers 0.25);
// moderate graphs fall off as fast as strict ones but top out well below
// them (the AS/RL/PLRG regime).
const (
	strictTopValue = 0.15
	looseFraction  = 0.30
	// A link counts toward the flatness measure when its value is within
	// this factor of the maximum.
	looseRelative = 0.30
)

// Classify maps a link-value result onto the strict/moderate/loose
// grouping.
func Classify(r *Result) Class {
	vals := r.Normalized()
	if len(vals) == 0 {
		return Loose
	}
	top := vals[0]
	for _, v := range vals[1:] {
		if v > top {
			top = v
		}
	}
	if top <= 0 {
		return Loose
	}
	spread := stats.FractionAbove(vals, looseRelative*top)
	switch {
	case spread >= looseFraction:
		return Loose
	case top >= strictTopValue:
		return Strict
	default:
		return Moderate
	}
}
