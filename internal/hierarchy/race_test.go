package hierarchy_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"topocmp/internal/gen/plrg"
	"topocmp/internal/hierarchy"
)

// TestLinkValueRaceShort is the tier-2 race target for the sigma-batched
// link-value reroute: four sweep workers lease MSBFS workspaces from the
// shared pool and accumulate pair entries concurrently, while sibling
// goroutines drive more LinkValues and TraversalSetSizes calls through the
// same pool. Every parallel result must stay bit-identical to the
// sequential scalar reference — the canonical-order cover replay is what
// makes that deterministic, and the race detector checks the leases.
func TestLinkValueRaceShort(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(41)), plrg.Params{N: 900, Beta: 2.246})
	opts := func(mode hierarchy.SigmaMode, parallel int) hierarchy.Options {
		return hierarchy.Options{
			MaxSources:  96,
			Rand:        rand.New(rand.NewSource(9)),
			Parallelism: parallel,
			Sigma:       mode,
		}
	}
	want := hierarchy.LinkValues(g, opts(hierarchy.SigmaScalar, 1))
	wantTS := hierarchy.TraversalSetSizes(g, opts(hierarchy.SigmaScalar, 1))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		mode := hierarchy.SigmaBatched
		if w%2 == 1 {
			mode = hierarchy.SigmaScalar
		}
		wg.Add(1)
		go func(mode hierarchy.SigmaMode) {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				got := hierarchy.LinkValues(g, opts(mode, 4))
				if !reflect.DeepEqual(got.Values, want.Values) {
					t.Errorf("mode=%d: parallel link values differ from sequential scalar", mode)
					return
				}
			}
		}(mode)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 3; k++ {
			got := hierarchy.TraversalSetSizes(g, opts(hierarchy.SigmaBatched, 1))
			if !reflect.DeepEqual(got, wantTS) {
				t.Error("batched traversal-set sizes differ from scalar under load")
				return
			}
		}
	}()
	wg.Wait()
}
