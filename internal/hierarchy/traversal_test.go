package hierarchy

import (
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/graph"
)

// TestAccessLinkParadox reproduces the paper's §5 argument for preferring
// the weighted vertex cover over the raw traversal-set size: an access link
// participates in N-1 pairs — "a relatively large traversal set" within the
// same order as true backbone links — yet its cover value is 1 because
// removing the singleton endpoint voids every pair. The set-size ranking
// therefore badly understates how much more important backbone links are;
// the cover ranking does not.
func TestAccessLinkParadox(t *testing.T) {
	// Two-level star: hub 0, five sub-hubs, four leaves per sub-hub (26
	// nodes): a caricature of an ISP backbone with access links.
	b := graph.NewBuilder(26)
	for s := int32(1); s <= 5; s++ {
		b.AddEdge(0, s)
		for l := int32(0); l < 4; l++ {
			b.AddEdge(s, 6+(s-1)*4+l)
		}
	}
	g := b.Graph()

	sizes := TraversalSetSizes(g, Options{})
	values := LinkValues(g, Options{}).Values
	edges := g.Edges()
	var accessIdx, backboneIdx = -1, -1
	for i, e := range edges {
		if e.U == 0 && e.V == 1 {
			backboneIdx = i // hub to sub-hub
		}
		if e.V >= 6 && accessIdx == -1 {
			accessIdx = i // sub-hub to leaf
		}
	}
	if accessIdx == -1 || backboneIdx == -1 {
		t.Fatal("edges not found")
	}
	n := g.NumNodes()
	// Access link: every pair involving its leaf, both sweep directions.
	if sizes[accessIdx] != 2*(n-1) {
		t.Fatalf("access set size = %d, want %d", sizes[accessIdx], 2*(n-1))
	}
	// Its set is the same order as the backbone's (within ~5x)...
	sizeRatio := float64(sizes[backboneIdx]) / float64(sizes[accessIdx])
	if sizeRatio > 5 {
		t.Fatalf("size ratio %v; test graph no longer demonstrates the paradox", sizeRatio)
	}
	// ...but the cover values differ far more sharply.
	if values[accessIdx] > 1.01 {
		t.Fatalf("access link value = %v, want 1", values[accessIdx])
	}
	valueRatio := values[backboneIdx] / values[accessIdx]
	if valueRatio <= sizeRatio {
		t.Fatalf("cover ratio %.2f should exceed size ratio %.2f "+
			"(the paper's reason for using covers)", valueRatio, sizeRatio)
	}
}

func TestTraversalSizesTreeCenterDominates(t *testing.T) {
	g := canonical.Tree(2, 4)
	sizes := TraversalSetSizes(g, Options{})
	edges := g.Edges()
	// Root edges ((0,1),(0,2)) split the tree most evenly: largest sets.
	var rootSize, leafSize int
	for i, e := range edges {
		if e.U == 0 {
			rootSize = sizes[i]
		}
		if e.V == 30 { // a leaf edge
			leafSize = sizes[i]
		}
	}
	if rootSize <= leafSize {
		t.Fatalf("root set %d should exceed leaf set %d", rootSize, leafSize)
	}
}
