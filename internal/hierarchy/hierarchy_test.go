package hierarchy

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

func TestAccessLinkValueIsOne(t *testing.T) {
	// Star: every link is an access link; the paper says access links have
	// vertex cover 1 (remove the singleton endpoint).
	b := graph.NewBuilder(8)
	for i := int32(1); i < 8; i++ {
		b.AddEdge(0, i)
	}
	r := LinkValues(b.Graph(), Options{})
	for i, v := range r.Values {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("access link %v value = %v, want 1", r.Edges[i], v)
		}
	}
}

func TestBridgeValueInBarbell(t *testing.T) {
	// Two K4s joined by a bridge: the bridge carries all 16 cross pairs;
	// its cover removes one side (4 nodes, weight 1 each) => value ~4.
	b := graph.NewBuilder(8)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j)
			b.AddEdge(i+4, j+4)
		}
	}
	b.AddEdge(0, 4)
	g := b.Graph()
	r := LinkValues(g, Options{})
	var bridge float64
	var maxOther float64
	for i, e := range r.Edges {
		if (e.U == 0 && e.V == 4) || (e.U == 4 && e.V == 0) {
			bridge = r.Values[i]
		} else if r.Values[i] > maxOther {
			maxOther = r.Values[i]
		}
	}
	if bridge < 3.5 || bridge > 4.5 {
		t.Fatalf("bridge value = %v, want ~4", bridge)
	}
	if bridge <= maxOther {
		t.Fatalf("bridge %v should dominate other links (max %v)", bridge, maxOther)
	}
}

func TestPathMiddleDominates(t *testing.T) {
	g := canonical.Linear(9)
	r := LinkValues(g, Options{})
	// Middle edge (3,4)/(4,5) splits the path evenly: cover ~4; end edges
	// are access links: value 1.
	var mid, end float64
	for i, e := range r.Edges {
		if e.U == 4 || e.V == 4 {
			if r.Values[i] > mid {
				mid = r.Values[i]
			}
		}
		if e.U == 0 {
			end = r.Values[i]
		}
	}
	if math.Abs(end-1) > 1e-9 {
		t.Fatalf("end link value = %v, want 1", end)
	}
	if mid < 3 {
		t.Fatalf("middle link value = %v, want >= 3", mid)
	}
}

func TestTreeRootEdgesCarryHierarchy(t *testing.T) {
	g := canonical.Tree(3, 5) // 364 nodes
	r := LinkValues(g, Options{})
	norm := r.Normalized()
	top := 0.0
	for _, v := range norm {
		if v > top {
			top = v
		}
	}
	// Root edges separate ~1/3 of the nodes: normalized value ~0.33.
	if top < 0.25 {
		t.Fatalf("tree top normalized value = %v, want >= 0.25", top)
	}
	if Classify(r) != Strict {
		t.Fatalf("tree classified %v, want strict", Classify(r))
	}
}

func TestRandomGraphLoose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := canonical.Random(rng, 300, 0.025)
	r := LinkValues(g, Options{})
	if c := Classify(r); c != Loose {
		t.Fatalf("random graph classified %v, want loose", c)
	}
}

func TestMeshLoose(t *testing.T) {
	g := canonical.Mesh(14, 14)
	r := LinkValues(g, Options{})
	if c := Classify(r); c != Loose {
		t.Fatalf("mesh classified %v, want loose", c)
	}
}

func TestPLRGModerate(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(2)), plrg.Params{N: 800, Beta: 2.2})
	r := LinkValues(g, Options{MaxSources: 200, Rand: rand.New(rand.NewSource(3))})
	if c := Classify(r); c != Moderate {
		t.Fatalf("PLRG classified %v, want moderate", c)
	}
}

func TestPLRGCorrelationHigherThanTree(t *testing.T) {
	// Figure 5: PLRG has the highest link-value/degree correlation, the
	// Tree the lowest.
	gp := plrg.MustGenerate(rand.New(rand.NewSource(4)), plrg.Params{N: 600, Beta: 2.2})
	rp := LinkValues(gp, Options{MaxSources: 150, Rand: rand.New(rand.NewSource(5))})
	corrP := rp.DegreeCorrelation(gp)
	gt := canonical.Tree(3, 5)
	rt := LinkValues(gt, Options{})
	corrT := rt.DegreeCorrelation(gt)
	if corrP <= corrT {
		t.Fatalf("PLRG correlation %v should exceed tree %v", corrP, corrT)
	}
	if corrP < 0.5 {
		t.Fatalf("PLRG correlation = %v, want high", corrP)
	}
}

func TestSourceSamplingApproximatesFull(t *testing.T) {
	g := canonical.Mesh(10, 10)
	full := LinkValues(g, Options{})
	sampled := LinkValues(g, Options{MaxSources: 50, Rand: rand.New(rand.NewSource(6))})
	// Compare rank distributions loosely: top normalized values similar.
	fr := full.RankDistribution()
	sr := sampled.RankDistribution()
	if math.Abs(fr.Points[0].Y-sr.Points[0].Y) > 0.25*fr.Points[0].Y+0.02 {
		t.Fatalf("sampled top %v deviates from full %v", sr.Points[0].Y, fr.Points[0].Y)
	}
}

func TestRankDistributionShape(t *testing.T) {
	g := canonical.Tree(2, 6)
	r := LinkValues(g, Options{})
	s := r.RankDistribution()
	if s.Len() != g.NumEdges() {
		t.Fatalf("rank points = %d, want %d", s.Len(), g.NumEdges())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Points[i].Y > s.Points[i-1].Y+1e-12 {
			t.Fatalf("rank distribution not non-increasing at %d", i)
		}
	}
}

func TestPolicyLinkValuesAllSiblingEqualsPlain(t *testing.T) {
	// With all-sibling annotations, policy routing equals shortest-path
	// routing, so link values must agree.
	g := canonical.Mesh(6, 6)
	a := policy.NewAnnotated(g)
	for _, e := range g.Edges() {
		a.SetSibling(e.U, e.V)
	}
	plain := LinkValues(g, Options{})
	pol := PolicyLinkValues(a, Options{})
	for i := range plain.Values {
		if math.Abs(plain.Values[i]-pol.Values[i]) > 1e-6 {
			t.Fatalf("edge %v: plain %v vs policy %v",
				plain.Edges[i], plain.Values[i], pol.Values[i])
		}
	}
}

func TestPolicyConcentratesValues(t *testing.T) {
	// Provider-customer chain hierarchy: with policy routing the top link
	// values should not decrease (paths concentrate; §5.1).
	b := graph.NewBuilder(13)
	// A 3-level binary provider tree plus cross peer links between leaves.
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6},
		{3, 7}, {3, 8}, {4, 9}, {5, 10}, {6, 11}, {6, 12},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Graph()
	a := policy.NewAnnotated(g)
	for _, e := range edges {
		a.SetProviderCustomer(e[0], e[1])
	}
	plain := LinkValues(g, Options{})
	pol := PolicyLinkValues(a, Options{})
	maxPlain, maxPol := 0.0, 0.0
	for i := range plain.Values {
		if plain.Values[i] > maxPlain {
			maxPlain = plain.Values[i]
		}
		if pol.Values[i] > maxPol {
			maxPol = pol.Values[i]
		}
	}
	if maxPol < maxPlain-1e-9 {
		t.Fatalf("policy top value %v below plain %v", maxPol, maxPlain)
	}
}

func TestClassStrings(t *testing.T) {
	if Strict.String() != "strict" || Moderate.String() != "moderate" || Loose.String() != "loose" {
		t.Fatal("bad class strings")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := canonical.Linear(1)
	r := LinkValues(g, Options{})
	if len(r.Values) != 0 {
		t.Fatal("no edges expected")
	}
	if Classify(r) != Loose {
		t.Fatal("empty result should classify loose")
	}
}
