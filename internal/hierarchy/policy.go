package hierarchy

import (
	"sync"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// PolicyLinkValues computes link values with pairs routed over shortest
// valley-free (policy) paths instead of plain shortest paths, as the paper
// does for the AS and RL graphs ("with policy routing, since paths are more
// concentrated, the highest link values are larger").
func PolicyLinkValues(a *policy.Annotated, opts Options) *Result {
	opts.defaults()
	g := a.G
	edges := g.Edges()
	edgeIdx := buildEdgeIndex(edges)
	sources, inQ := sampleSources(g.NumNodes(), opts)
	opts.Metrics.Counter("hierarchy.policy_sweeps").Add(int64(len(sources)))

	n := g.NumNodes()
	ns := policy.NumStates
	workers := opts.workers(len(sources))
	perWorker := make([][]pairEntry, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gval := make([]float64, n*ns)
			touched := make([]int32, 0, n)
			var buckets [][]int32
			local := map[uint32]float64{} // per-target per-edge fractions
			var entries []pairEntry
			for i := w; i < len(sources); i += workers {
				u := sources[i]
				dist, sigma, _ := a.ProductCounts(u)
				// Per-node policy distance = min over states.
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					pdist := graph.Unreached
					for s := 0; s < ns; s++ {
						if d := dist[int(t)*ns+s]; d < pdist {
							pdist = d
						}
					}
					if pdist == graph.Unreached || pdist == 0 {
						continue
					}
					entries = sweepPolicyTarget(a, u, t, int(pdist), dist, sigma,
						edgeIdx, gval, &touched, &buckets, local, entries)
				}
			}
			perWorker[w] = entries
		}(w)
	}
	wg.Wait()
	var entries []pairEntry
	for _, e := range perWorker {
		entries = append(entries, e...)
	}
	values := coverValues(len(edges), entries)
	return &Result{Edges: edges, Values: values, N: len(sources)}
}

// sweepPolicyTarget walks the product-space shortest-path ancestor DAG of
// target t, distributing path fractions over the optimal arrival states and
// aggregating per underlying edge (a product sweep can cross the same graph
// edge in several states).
func sweepPolicyTarget(a *policy.Annotated, u, t int32, pdist int,
	dist []int32, sigma []float64, edgeIdx map[uint64]uint32,
	gval []float64, touched *[]int32, buckets *[][]int32,
	local map[uint32]float64, entries []pairEntry) []pairEntry {

	g := a.G
	ns := policy.NumStates
	for len(*buckets) <= pdist {
		*buckets = append(*buckets, nil)
	}
	bs := *buckets
	for d := 0; d <= pdist; d++ {
		bs[d] = bs[d][:0]
	}
	*touched = (*touched)[:0]
	// Seed the optimal arrival states proportionally to their path counts.
	totalSigma := 0.0
	for s := 0; s < ns; s++ {
		st := int(t)*ns + s
		if int(dist[st]) == pdist {
			totalSigma += sigma[st]
		}
	}
	if totalSigma == 0 {
		return entries
	}
	for s := 0; s < ns; s++ {
		st := int(t)*ns + s
		if int(dist[st]) == pdist && sigma[st] > 0 {
			gval[st] = sigma[st] / totalSigma
			*touched = append(*touched, int32(st))
			bs[pdist] = append(bs[pdist], int32(st))
		}
	}
	for d := pdist; d >= 1; d-- {
		for _, stRaw := range bs[d] {
			st := int(stRaw)
			b := int32(st / ns)
			sb := st % ns
			gb := gval[st]
			for _, av := range g.Neighbors(b) {
				// Predecessor states (av, sa) with a valid transition into sb.
				for sa := 0; sa < ns; sa++ {
					sat := int(av)*ns + sa
					if dist[sat] != int32(d-1) || sigma[sat] == 0 {
						continue
					}
					if a.Transition(av, b, sa) != sb {
						continue
					}
					frac := gb * sigma[sat] / sigma[st]
					local[edgeIdx[ekey(av, b)]] += frac
					if gval[sat] == 0 {
						*touched = append(*touched, int32(sat))
						if d-1 >= 1 {
							bs[d-1] = append(bs[d-1], int32(sat))
						}
					}
					gval[sat] += frac
				}
			}
		}
	}
	for _, st := range *touched {
		gval[st] = 0
	}
	for e, w := range local {
		entries = append(entries, pairEntry{edge: e, u: u, t: t, w: w})
		delete(local, e)
	}
	return entries
}
