package hierarchy

import (
	"sync"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// PolicyLinkValues computes link values with pairs routed over shortest
// valley-free (policy) paths instead of plain shortest paths, as the paper
// does for the AS and RL graphs ("with policy routing, since paths are more
// concentrated, the highest link values are larger").
//
// On the batched route the valley-free product graph is materialized once
// as a directed CSR (policy.ProductCSR) and each mask strip runs one
// bit-parallel sigma sweep over it — replacing both the per-source product
// BFS and its per-edge relationship map lookups. Product path counts are
// exact integers in float64, so the values are byte-identical to the
// scalar route's.
func PolicyLinkValues(a *policy.Annotated, opts Options) *Result {
	opts.defaults()
	g := a.G
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	sources, inQ := sampleSources(g.NumNodes(), opts)
	opts.Metrics.Counter("hierarchy.policy_sweeps").Add(int64(len(sources)))

	n := g.NumNodes()
	ns := policy.NumStates
	width, strips, workers := sigmaPlan(&opts, len(sources), opts.workers(len(sources)), opts.sigmaRoute(g))
	var poff, padj []int32
	if width > 0 {
		poff, padj = a.ProductCSR()
	}
	perWorker := make([][]pairEntry, workers)
	perEnds := make([][]int, workers)
	perSrc := make([][]int, workers)
	wss := make([]*sweepScratch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := sweepPool.Get()
			wss[w] = ws
			ws.gval = grownZero(ws.gval, n*ns)
			ws.localW = grownZero(ws.localW, len(edges))
			entries := ws.entries[:0]
			var ends, srcIdx []int
			// Per-node policy distance = min over states; ascending target
			// order keeps each source block (t)-sorted for coverValues. Both
			// routes hand in fully initialized product rows (the scalar
			// buffers by their Unreached-reset invariant, the kernel rows by
			// RunSigma's pre-fill), so the state scan reads them raw.
			sweepSource := func(u int32, si int, dist []int32, sigma []float64) {
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					pdist := graph.Unreached
					for s := 0; s < ns; s++ {
						if d := dist[int(t)*ns+s]; d < pdist {
							pdist = d
						}
					}
					if pdist == graph.Unreached || pdist == 0 {
						continue
					}
					entries = sweepPolicyTarget(a, u, t, int(pdist), dist, sigma,
						ix, ws, entries)
				}
				ends = append(ends, len(entries))
				srcIdx = append(srcIdx, si)
			}
			if width > 0 {
				if ws.msbfs == nil {
					ws.msbfs = graph.NewMSBFSScratch()
				}
				pn := n * ns
				var psrc []int32
				for k := w; k < strips; k += workers {
					lo := k * width
					hi := min(lo+width, len(sources))
					strip := sources[lo:hi]
					psrc = psrc[:0]
					for _, u := range strip {
						psrc = append(psrc, policy.ProductStart(u))
					}
					ws.msbfs.RunSigmaCSR(pn, poff, padj, psrc)
					for j, u := range strip {
						sweepSource(u, lo+j, ws.msbfs.DistRow(j), ws.msbfs.SigmaRow(j))
					}
				}
			} else {
				for i := w; i < len(sources); i += workers {
					u := sources[i]
					dist, sigma, order := a.ProductCountsInto(
						ws.pdist, ws.psigma, ws.porder, u)
					ws.pdist, ws.psigma, ws.porder = dist, sigma, order
					sweepSource(u, i, dist, sigma)
				}
			}
			ws.entries = entries
			perWorker[w] = entries
			perEnds[w] = ends
			perSrc[w] = srcIdx
		}(w)
	}
	wg.Wait()
	values := coverValues(len(edges), n, perWorker, perEnds, perSrc)
	for _, ws := range wss {
		sweepPool.Put(ws)
	}
	return &Result{Edges: edges, Values: values, N: len(sources), Nodes: g.NumNodes()}
}

// sweepPolicyTarget walks the product-space shortest-path ancestor DAG of
// target t, distributing path fractions over the optimal arrival states and
// aggregating per underlying edge (a product sweep can cross the same graph
// edge in several states). The per-edge aggregation runs on the leased
// scratch's dense accumulators (localW, reset through localE) instead of a
// per-target map.
func sweepPolicyTarget(a *policy.Annotated, u, t int32, pdist int,
	dist []int32, sigma []float64, ix *graph.EdgeIndex,
	ws *sweepScratch, entries []pairEntry) []pairEntry {

	g := a.G
	ns := policy.NumStates
	for len(ws.buckets) <= pdist {
		ws.buckets = append(ws.buckets, nil)
	}
	bs := ws.buckets
	for d := 0; d <= pdist; d++ {
		bs[d] = bs[d][:0]
	}
	ws.touched = ws.touched[:0]
	ws.localE = ws.localE[:0]
	// Seed the optimal arrival states proportionally to their path counts.
	totalSigma := 0.0
	for s := 0; s < ns; s++ {
		st := int(t)*ns + s
		if int(dist[st]) == pdist {
			totalSigma += sigma[st]
		}
	}
	if totalSigma == 0 {
		return entries
	}
	for s := 0; s < ns; s++ {
		st := int(t)*ns + s
		if int(dist[st]) == pdist && sigma[st] > 0 {
			ws.gval[st] = sigma[st] / totalSigma
			ws.touched = append(ws.touched, int32(st))
			bs[pdist] = append(bs[pdist], int32(st))
		}
	}
	for d := pdist; d >= 1; d-- {
		for _, stRaw := range bs[d] {
			st := int(stRaw)
			b := int32(st / ns)
			sb := st % ns
			gb := ws.gval[st]
			for _, av := range g.Neighbors(b) {
				// Predecessor states (av, sa) with a valid transition into sb.
				for sa := 0; sa < ns; sa++ {
					sat := int(av)*ns + sa
					if dist[sat] != int32(d-1) || sigma[sat] == 0 {
						continue
					}
					if a.Transition(av, b, sa) != sb {
						continue
					}
					frac := gb * sigma[sat] / sigma[st]
					id := uint32(ix.ID(av, b))
					if ws.localW[id] == 0 {
						ws.localE = append(ws.localE, id)
					}
					ws.localW[id] += frac
					if ws.gval[sat] == 0 {
						ws.touched = append(ws.touched, int32(sat))
						if d-1 >= 1 {
							bs[d-1] = append(bs[d-1], int32(sat))
						}
					}
					ws.gval[sat] += frac
				}
			}
		}
	}
	for _, st := range ws.touched {
		ws.gval[st] = 0
	}
	for _, e := range ws.localE {
		entries = append(entries, pairEntry{edge: e, u: u, t: t, w: ws.localW[e]})
		ws.localW[e] = 0
	}
	return entries
}
