package hierarchy

import (
	"topocmp/internal/graph"
)

// TraversalSetSizes computes, for every edge, the number of distinct node
// pairs whose shortest-path traffic crosses it (each unordered pair counted
// once per direction swept). The paper rejects this "most natural measure"
// of hierarchy because access links score N-1 — near the top — even though
// removing a single node voids their whole set; TestAccessLinkParadox
// demonstrates exactly that, and the weighted vertex cover of LinkValues is
// the fix. Exposed for completeness and for that demonstration.
func TraversalSetSizes(g *graph.Graph, opts Options) []int {
	opts.defaults()
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	sources, inQ := sampleSources(g.NumNodes(), opts)

	counts := make([]int, len(edges))
	n := g.NumNodes()
	ws := sweepPool.Get()
	defer sweepPool.Put(ws)
	ws.gval = grownZero(ws.gval, n)
	var entries []pairEntry
	for _, u := range sources {
		order := ws.bfs.Counts(g, u)
		for _, t := range order {
			if t == u || !inQ[t] {
				continue
			}
			entries = sweepTarget(g, u, t, ix, ws, entries[:0])
			seen := map[uint32]bool{}
			for _, e := range entries {
				if !seen[e.edge] {
					seen[e.edge] = true
					counts[e.edge]++
				}
			}
		}
	}
	return counts
}
