package hierarchy

import (
	"topocmp/internal/graph"
)

// TraversalSetSizes computes, for every edge, the number of distinct node
// pairs whose shortest-path traffic crosses it (each unordered pair counted
// once per direction swept). The paper rejects this "most natural measure"
// of hierarchy because access links score N-1 — near the top — even though
// removing a single node voids their whole set; TestAccessLinkParadox
// demonstrates exactly that, and the weighted vertex cover of LinkValues is
// the fix. Exposed for completeness and for that demonstration.
//
// Like LinkValues, low-diameter graphs batch their sources through the
// sigma-carrying MSBFS kernel. The per-edge counts are integer increments,
// so they are independent of batching and of target iteration order; the
// per-target dedup runs on stamped dense edge marks instead of a
// per-target map allocation.
func TraversalSetSizes(g *graph.Graph, opts Options) []int {
	opts.defaults()
	edges := g.Edges()
	ix := graph.NewEdgeIndex(g)
	sources, inQ := sampleSources(g.NumNodes(), opts)

	counts := make([]int, len(edges))
	n := g.NumNodes()
	batched := opts.sigmaRoute(g)
	ws := sweepPool.Get()
	defer sweepPool.Put(ws)
	ws.gval = grownZero(ws.gval, n)
	var entries []pairEntry
	// countEntries bumps each edge of one (u,t) pair's entry set exactly
	// once, deduplicating through the scratch's epoch-stamped edge marks.
	countEntries := func() {
		ws.emarks.Begin(len(edges))
		for _, e := range entries {
			if ws.emarks.Visit(int32(e.edge)) {
				counts[e.edge]++
			}
		}
	}
	if batched {
		if ws.msbfs == nil {
			ws.msbfs = graph.NewMSBFSScratch()
		}
		arcIDs := ix.ArcIDs()
		off, adj := g.CSR()
		// Sequential entry point: one worker, so the plan's width is the
		// widest strip the pending sources fill.
		width, strips, _ := sigmaPlan(&opts, len(sources), 1, true)
		for k := 0; k < strips; k++ {
			lo := k * width
			hi := min(lo+width, len(sources))
			strip := sources[lo:hi]
			ws.msbfs.RunSigma(g, strip)
			for j, u := range strip {
				dist, sigma := ws.msbfs.DistRow(j), ws.msbfs.SigmaRow(j)
				ws.beginPreds(n, len(edges))
				fs := newFastSweep(off, adj, arcIDs, dist, sigma, ws)
				for t := int32(0); t < int32(n); t++ {
					if t == u || !inQ[t] {
						continue
					}
					dt := dist[t]
					if dt <= 0 || dt == graph.Unreached {
						continue
					}
					entries = sweepTargetFast(u, t, int(dt), fs, ws, entries[:0])
					countEntries()
				}
			}
		}
	} else {
		sigmaPlan(&opts, len(sources), 1, false)
		for _, u := range sources {
			order := ws.bfs.Counts(g, u)
			dist, sigma := ws.bfs.Rows()
			// order holds exactly the reached nodes, so the raw rows are
			// valid at every t it yields.
			for _, t := range order {
				if t == u || !inQ[t] {
					continue
				}
				entries = sweepTarget(g, u, t, int(dist[t]), ix, ws, entries[:0], dist, sigma)
				countEntries()
			}
		}
	}
	return counts
}
