// Package geo provides the planar-geometry helpers used by the structural
// and random generators: points in a square region, Euclidean distances, and
// a Prim minimum spanning tree over point sets (the backbone-construction
// step of the Tiers generator).
package geo

import (
	"math"
	"math/rand"
	"sort"
)

// Point is a location on the generator plane.
type Point struct{ X, Y float64 }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// RandomPoints places n points uniformly at random in the side×side square.
func RandomPoints(r *rand.Rand, n int, side float64) []Point {
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{r.Float64() * side, r.Float64() * side}
	}
	return ps
}

// HeavyTailedPoints places n points with a heavy-tailed spatial density, as
// in BRITE's "heavy-tailed" placement: the square is divided into a
// cells×cells grid and the number of points per cell follows a bounded
// Pareto distribution.
func HeavyTailedPoints(r *rand.Rand, n int, side float64, cells int) []Point {
	if cells < 1 {
		cells = 1
	}
	weights := make([]float64, cells*cells)
	total := 0.0
	for i := range weights {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		// Pareto weight with shape 1: heavy-tailed cell occupancy.
		weights[i] = 1 / u
		total += weights[i]
	}
	ps := make([]Point, 0, n)
	cell := side / float64(cells)
	for i := range weights {
		cnt := int(math.Round(weights[i] / total * float64(n)))
		cx := float64(i%cells) * cell
		cy := float64(i/cells) * cell
		for j := 0; j < cnt && len(ps) < n; j++ {
			ps = append(ps, Point{cx + r.Float64()*cell, cy + r.Float64()*cell})
		}
	}
	for len(ps) < n {
		ps = append(ps, Point{r.Float64() * side, r.Float64() * side})
	}
	return ps
}

// MSTEdge is an edge of a spanning tree over a point set, indexing into the
// point slice.
type MSTEdge struct {
	U, V int
	Len  float64
}

// MST computes a Euclidean minimum spanning tree over the points with Prim's
// algorithm in O(n^2), fine for the tier sizes the generators use. It
// returns n-1 edges (or none for n < 2).
func MST(ps []Point) []MSTEdge {
	n := len(ps)
	if n < 2 {
		return nil
	}
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		best[i] = ps[0].Dist(ps[i])
		bestFrom[i] = 0
	}
	edges := make([]MSTEdge, 0, n-1)
	for len(edges) < n-1 {
		pick, pickDist := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < pickDist {
				pick, pickDist = i, best[i]
			}
		}
		if pick == -1 {
			break
		}
		inTree[pick] = true
		edges = append(edges, MSTEdge{U: bestFrom[pick], V: pick, Len: pickDist})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := ps[pick].Dist(ps[i]); d < best[i] {
					best[i] = d
					bestFrom[i] = pick
				}
			}
		}
	}
	return edges
}

// AllPairs returns every unordered point pair (i < j) sorted by increasing
// distance; Tiers adds redundancy edges in this order.
type Pair struct {
	U, V int
	Len  float64
}

// PairsByDistance lists all unordered pairs sorted by increasing Euclidean
// distance.
func PairsByDistance(ps []Point) []Pair {
	n := len(ps)
	pairs := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, Pair{i, j, ps[i].Dist(ps[j])})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].Len < pairs[b].Len })
	return pairs
}
