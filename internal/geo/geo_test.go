package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := (Point{1, 1}).Dist(Point{1, 1}); d != 0 {
		t.Fatalf("Dist = %v, want 0", d)
	}
}

func TestRandomPointsInSquare(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ps := RandomPoints(r, 500, 10)
	if len(ps) != 500 {
		t.Fatalf("len = %d", len(ps))
	}
	for _, p := range ps {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("point %v outside square", p)
		}
	}
}

func TestHeavyTailedPointsCountAndBounds(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ps := HeavyTailedPoints(r, 300, 8, 5)
	if len(ps) != 300 {
		t.Fatalf("len = %d, want 300", len(ps))
	}
	for _, p := range ps {
		if p.X < 0 || p.X > 8 || p.Y < 0 || p.Y > 8 {
			t.Fatalf("point %v outside square", p)
		}
	}
}

func TestHeavyTailedPointsAreClustered(t *testing.T) {
	// Heavy-tailed placement should put visibly more points in its densest
	// grid cell than uniform placement does on average.
	r := rand.New(rand.NewSource(3))
	ps := HeavyTailedPoints(r, 1000, 10, 10)
	counts := map[[2]int]int{}
	for _, p := range ps {
		cx, cy := int(p.X), int(p.Y)
		if cx > 9 {
			cx = 9
		}
		if cy > 9 {
			cy = 9
		}
		counts[[2]int{cx, cy}]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 30 { // uniform would give ~10 per cell
		t.Fatalf("densest cell has %d points; expected clustering", max)
	}
}

func TestMSTSpansAndIsMinimal(t *testing.T) {
	// Four corners of a unit square plus center: MST length is known.
	ps := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	edges := MST(ps)
	if len(edges) != 3 {
		t.Fatalf("MST edges = %d, want 3", len(edges))
	}
	total := 0.0
	for _, e := range edges {
		total += e.Len
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("MST total length = %v, want 3", total)
	}
}

func TestMSTSmallInputs(t *testing.T) {
	if MST(nil) != nil {
		t.Fatal("MST(nil) should be nil")
	}
	if MST([]Point{{0, 0}}) != nil {
		t.Fatal("MST of 1 point should be nil")
	}
}

// Property: MST connects all points (union-find check) and has n-1 edges.
func TestMSTConnectsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		r := rand.New(rand.NewSource(seed))
		ps := RandomPoints(r, n, 1)
		edges := MST(ps)
		if len(edges) != n-1 {
			return false
		}
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range edges {
			parent[find(e.U)] = find(e.V)
		}
		root := find(0)
		for i := 1; i < n; i++ {
			if find(i) != root {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: MST total weight <= any random spanning tree weight.
func TestMSTWeightMinimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 12
		ps := RandomPoints(r, n, 1)
		mst := MST(ps)
		mstW := 0.0
		for _, e := range mst {
			mstW += e.Len
		}
		// Random spanning tree: connect node i to a random earlier node.
		rstW := 0.0
		for i := 1; i < n; i++ {
			rstW += ps[i].Dist(ps[r.Intn(i)])
		}
		return mstW <= rstW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsByDistanceSorted(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ps := RandomPoints(r, 25, 1)
	pairs := PairsByDistance(ps)
	want := 25 * 24 / 2
	if len(pairs) != want {
		t.Fatalf("pairs = %d, want %d", len(pairs), want)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Len < pairs[i-1].Len {
			t.Fatalf("pairs not sorted at %d", i)
		}
	}
}
