// Package internetsim synthesizes a ground-truth Internet for the
// measurement pipeline that replaces the paper's proprietary data sources
// (the route-views BGP table and the SCAN/Mercator router-level map — see
// DESIGN.md's substitution table).
//
// The AS level models the Internet's commercial structure: a clique of
// tier-1 providers, a transit middle class that buys upstream connectivity
// preferentially from well-connected providers, heavy-tailed multihoming of
// stub ASes, and peering among comparable ASes. Preferential provider
// selection yields the heavy-tailed degree distribution measured by
// Faloutsos et al.; the provider/customer annotations give the policy
// ground truth Gao's algorithm is later tested against.
//
// The router level expands each AS into a PoP-style internal network whose
// size is coupled to the AS's degree (after Tangmunarunkit et al., "Does AS
// Size Determine AS Degree?"), with backbone routers, degree-1 access
// routers, and border routers per AS adjacency.
package internetsim

import (
	"fmt"
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
	"topocmp/internal/rng"
)

// ASParams configures the AS-level synthesis.
type ASParams struct {
	NumAS    int     // total ASes (paper's AS graph: 10941)
	NumTier1 int     // tier-1 clique size; default 10
	Transit  float64 // fraction of non-tier-1 ASes that sell transit; default 0.15
	// MultihomeAlpha shapes the bounded-Pareto provider count of stubs
	// (1 = very heavy multihoming tail); default 1.8.
	MultihomeAlpha float64
	MaxProviders   int     // cap on providers per AS; default 8
	PeerFactor     float64 // expected peer links per transit AS; default 1.0
}

func (p *ASParams) defaults() {
	if p.NumTier1 == 0 {
		p.NumTier1 = 10
	}
	if p.Transit == 0 {
		p.Transit = 0.15
	}
	if p.MultihomeAlpha == 0 {
		p.MultihomeAlpha = 1.8
	}
	if p.MaxProviders == 0 {
		p.MaxProviders = 8
	}
	if p.PeerFactor == 0 {
		p.PeerFactor = 1.0
	}
}

// Validate reports whether the parameters are usable.
func (p ASParams) Validate() error {
	if p.NumAS < 3 {
		return fmt.Errorf("internetsim: NumAS = %d < 3", p.NumAS)
	}
	if p.NumTier1 >= p.NumAS {
		return fmt.Errorf("internetsim: NumTier1 %d >= NumAS %d", p.NumTier1, p.NumAS)
	}
	return nil
}

// Tier labels.
const (
	Tier1 = iota
	TierTransit
	TierStub
)

// ASLevel is the ground-truth AS topology.
type ASLevel struct {
	Graph     *graph.Graph
	Annotated *policy.Annotated
	Tier      []int // Tier1 / TierTransit / TierStub per AS
}

// GenerateAS synthesizes the AS-level Internet.
func GenerateAS(r *rand.Rand, p ASParams) (*ASLevel, error) {
	p.defaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumAS
	b := graph.NewBuilder(n)
	tier := make([]int, n)
	type rel struct {
		u, v int32
		kind policy.Relationship // RelCustomer: u provider of v; RelPeer
	}
	var rels []rel

	// Tier-1 clique of peers.
	t1 := p.NumTier1
	if t1 < 2 {
		t1 = 2
	}
	for i := 0; i < t1; i++ {
		tier[i] = Tier1
		for j := i + 1; j < t1; j++ {
			b.AddEdge(int32(i), int32(j))
			rels = append(rels, rel{int32(i), int32(j), policy.RelPeer})
		}
	}

	numTransit := int(float64(n-t1) * p.Transit)
	// custDeg tracks customer counts for preferential provider selection.
	custDeg := make([]float64, n)
	for i := 0; i < t1; i++ {
		custDeg[i] = 3 // head start for the core
	}
	// pickProvider chooses among the first `limit` ASes proportionally to
	// 1 + customer degree.
	pickProvider := func(limit int, exclude map[int32]bool) int32 {
		total := 0.0
		for v := 0; v < limit; v++ {
			if !exclude[int32(v)] && tier[v] != TierStub {
				total += 1 + custDeg[v]
			}
		}
		if total == 0 {
			return -1
		}
		x := r.Float64() * total
		acc := 0.0
		for v := 0; v < limit; v++ {
			if exclude[int32(v)] || tier[v] == TierStub {
				continue
			}
			acc += 1 + custDeg[v]
			if x < acc {
				return int32(v)
			}
		}
		return -1
	}

	// Transit middle class: 1-3 providers each among earlier ASes.
	for v := t1; v < t1+numTransit; v++ {
		tier[v] = TierTransit
		k := 1 + r.Intn(3)
		exclude := map[int32]bool{int32(v): true}
		for i := 0; i < k; i++ {
			pr := pickProvider(v, exclude)
			if pr < 0 {
				break
			}
			exclude[pr] = true
			b.AddEdge(pr, int32(v))
			rels = append(rels, rel{pr, int32(v), policy.RelCustomer})
			custDeg[pr]++
		}
	}

	// Stubs: bounded-Pareto provider counts, preferential selection among
	// all transit-capable ASes.
	transitLimit := t1 + numTransit
	for v := transitLimit; v < n; v++ {
		tier[v] = TierStub
		k := rng.BoundedParetoInt(r, 1, p.MaxProviders, p.MultihomeAlpha)
		exclude := map[int32]bool{int32(v): true}
		for i := 0; i < k; i++ {
			pr := pickProvider(transitLimit, exclude)
			if pr < 0 {
				break
			}
			exclude[pr] = true
			b.AddEdge(pr, int32(v))
			rels = append(rels, rel{pr, int32(v), policy.RelCustomer})
			custDeg[pr]++
		}
	}

	// Peering among transit ASes of comparable standing (and a sprinkle of
	// stub-stub IXP peering).
	numPeer := int(p.PeerFactor * float64(numTransit))
	for i := 0; i < numPeer; i++ {
		u := int32(t1 + r.Intn(numTransit+1))
		v := int32(t1 + r.Intn(numTransit+1))
		if u == v || u >= int32(n) || v >= int32(n) || b.HasEdge(u, v) {
			continue
		}
		b.AddEdge(u, v)
		rels = append(rels, rel{u, v, policy.RelPeer})
	}
	g := b.Graph()
	a := policy.NewAnnotated(g)
	for _, rl := range rels {
		switch rl.kind {
		case policy.RelCustomer:
			a.SetProviderCustomer(rl.u, rl.v)
		case policy.RelPeer:
			a.SetPeer(rl.u, rl.v)
		}
	}
	return &ASLevel{Graph: g, Annotated: a, Tier: tier}, nil
}

// MustGenerateAS is GenerateAS but panics on error.
func MustGenerateAS(r *rand.Rand, p ASParams) *ASLevel {
	as, err := GenerateAS(r, p)
	if err != nil {
		panic(err)
	}
	return as
}
