package internetsim

import (
	"fmt"
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/policy"
)

// RouterParams configures the router-level expansion.
type RouterParams struct {
	// RoutersPerDegree couples an AS's router count to its AS degree:
	// routers = BaseRouters + RoutersPerDegree * degree. Default 1.5.
	RoutersPerDegree float64
	// BaseRouters is the minimum router count per AS; default 1.
	BaseRouters int
	// MaxRouters caps a single AS's router count; default 400.
	MaxRouters int
	// AccessFraction is the share of an AS's routers that are degree-1
	// access routers hung off the backbone; default 0.55 (the measured RL
	// graph's average degree of 2.53 is dominated by such leaves).
	AccessFraction float64
}

func (p *RouterParams) defaults() {
	if p.RoutersPerDegree == 0 {
		p.RoutersPerDegree = 1.5
	}
	if p.BaseRouters == 0 {
		p.BaseRouters = 1
	}
	if p.MaxRouters == 0 {
		p.MaxRouters = 400
	}
	if p.AccessFraction == 0 {
		p.AccessFraction = 0.55
	}
}

// RouterLevel is the ground-truth router topology with its AS overlay.
type RouterLevel struct {
	Graph   *graph.Graph
	ASOf    []int32
	Overlay *policy.RouterOverlay
	// Backbone[router] marks non-access routers (candidates for border
	// links and traceroute sources).
	Backbone []bool
}

// GenerateRouters expands an AS-level Internet into routers.
func GenerateRouters(r *rand.Rand, as *ASLevel, p RouterParams) (*RouterLevel, error) {
	p.defaults()
	nAS := as.Graph.NumNodes()
	if nAS == 0 {
		return nil, fmt.Errorf("internetsim: empty AS graph")
	}
	// Allocate router blocks per AS.
	start := make([]int32, nAS+1)
	counts := make([]int, nAS)
	total := 0
	for v := 0; v < nAS; v++ {
		c := p.BaseRouters + int(p.RoutersPerDegree*float64(as.Graph.Degree(int32(v))))
		if c > p.MaxRouters {
			c = p.MaxRouters
		}
		counts[v] = c
		start[v] = int32(total)
		total += c
	}
	start[nAS] = int32(total)

	b := graph.NewStreamBuilder(total)
	asOf := make([]int32, total)
	backbone := make([]bool, total)

	for v := 0; v < nAS; v++ {
		base := start[v]
		c := counts[v]
		for i := 0; i < c; i++ {
			asOf[base+int32(i)] = int32(v)
		}
		nBackbone := c - int(p.AccessFraction*float64(c))
		if nBackbone < 1 {
			nBackbone = 1
		}
		// Backbone: ring plus chords for resilience.
		for i := 0; i < nBackbone; i++ {
			backbone[base+int32(i)] = true
			if nBackbone > 1 {
				b.AddEdge(base+int32(i), base+int32((i+1)%nBackbone))
			}
		}
		for i := 0; i < nBackbone/3; i++ {
			u := base + int32(r.Intn(nBackbone))
			w := base + int32(r.Intn(nBackbone))
			if u != w {
				b.AddEdge(u, w)
			}
		}
		// Access routers hang off random backbone routers.
		for i := nBackbone; i < c; i++ {
			b.AddEdge(base+int32(i), base+int32(r.Intn(nBackbone)))
		}
	}

	// Border links: one router pair (backbone-preferred) per AS adjacency.
	pickRouter := func(asID int32) int32 {
		base, c := start[asID], counts[asID]
		// Prefer backbone routers: they are the low-index block.
		nb := c - int(p.AccessFraction*float64(c))
		if nb < 1 {
			nb = 1
		}
		return base + int32(r.Intn(nb))
	}
	// Iterate AS adjacencies directly (u ascending, sorted v > u — the same
	// order Edges() returns) instead of materializing the edge list.
	for u := int32(0); u < int32(nAS); u++ {
		for _, v := range as.Graph.Neighbors(u) {
			if u >= v {
				continue
			}
			b.AddEdge(pickRouter(u), pickRouter(v))
			// Multihomed-style second border link for a fraction of adjacencies.
			if r.Float64() < 0.2 {
				b.AddEdge(pickRouter(u), pickRouter(v))
			}
		}
	}
	g := b.Graph()
	overlay, err := policy.NewRouterOverlay(g, asOf, as.Annotated)
	if err != nil {
		return nil, err
	}
	return &RouterLevel{Graph: g, ASOf: asOf, Overlay: overlay, Backbone: backbone}, nil
}

// MustGenerateRouters is GenerateRouters but panics on error.
func MustGenerateRouters(r *rand.Rand, as *ASLevel, p RouterParams) *RouterLevel {
	rl, err := GenerateRouters(r, as, p)
	if err != nil {
		panic(err)
	}
	return rl
}
