package internetsim

import (
	"topocmp/internal/stats"
)

// SizeDegree pairs each AS's router count with its AS-level degree.
type SizeDegree struct {
	Sizes   []float64 // routers per AS
	Degrees []float64 // AS degree
}

// SizeDegreeData extracts the per-AS size/degree pairs of a router-level
// expansion: the relationship studied by Tangmunarunkit et al. ("Does AS
// Size Determine AS Degree?", CCR 2001), which argues the AS degree
// distribution's high variability follows from the high variability of AS
// sizes. Our synthesizer couples the two by construction; this analysis
// quantifies the coupling the same way one would on real data.
func SizeDegreeData(as *ASLevel, rl *RouterLevel) SizeDegree {
	counts := make([]float64, as.Graph.NumNodes())
	for _, a := range rl.ASOf {
		counts[a]++
	}
	degrees := make([]float64, as.Graph.NumNodes())
	for v := range degrees {
		degrees[v] = float64(as.Graph.Degree(int32(v)))
	}
	return SizeDegree{Sizes: counts, Degrees: degrees}
}

// Correlation returns the Pearson correlation between AS size and degree.
func (sd SizeDegree) Correlation() float64 {
	return stats.Pearson(sd.Sizes, sd.Degrees)
}

// SizeCCDF returns the complementary cumulative distribution of AS sizes —
// heavy-tailed in the measured Internet and in our synthesis.
func (sd SizeDegree) SizeCCDF() stats.Series {
	xs := make([]int, len(sd.Sizes))
	for i, s := range sd.Sizes {
		xs[i] = int(s)
	}
	ccdf := stats.CCDF(xs)
	ccdf.Name = "as-sizes"
	return ccdf
}
