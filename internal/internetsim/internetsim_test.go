package internetsim

import (
	"math/rand"
	"testing"

	"topocmp/internal/stats"
)

func TestGenerateASBasics(t *testing.T) {
	as := MustGenerateAS(rand.New(rand.NewSource(1)), ASParams{NumAS: 3000})
	if as.Graph.NumNodes() != 3000 {
		t.Fatalf("nodes = %d", as.Graph.NumNodes())
	}
	if !as.Graph.IsConnected() {
		t.Fatal("AS graph must be connected (every AS has a provider chain to tier-1)")
	}
	if err := as.Annotated.Validate(); err != nil {
		t.Fatalf("annotations invalid: %v", err)
	}
}

func TestASDegreeHeavyTail(t *testing.T) {
	as := MustGenerateAS(rand.New(rand.NewSource(2)), ASParams{NumAS: 8000})
	g := as.Graph
	if g.MaxDegree() < 100 {
		t.Fatalf("max degree = %d; expected large hubs", g.MaxDegree())
	}
	ccdf := stats.CCDF(g.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	if fit.Slope > -0.7 {
		t.Fatalf("degree CCDF slope = %.2f; tail too light", fit.Slope)
	}
	// Average degree in the right neighbourhood of the paper's 4.13.
	if d := g.AvgDegree(); d < 2 || d > 8 {
		t.Fatalf("avg degree = %.2f", d)
	}
}

func TestTierStructure(t *testing.T) {
	p := ASParams{NumAS: 2000, NumTier1: 8}
	as := MustGenerateAS(rand.New(rand.NewSource(3)), p)
	counts := map[int]int{}
	for _, tr := range as.Tier {
		counts[tr]++
	}
	if counts[Tier1] != 8 {
		t.Fatalf("tier-1 count = %d, want 8", counts[Tier1])
	}
	if counts[TierTransit] == 0 || counts[TierStub] == 0 {
		t.Fatalf("missing tiers: %v", counts)
	}
	// Stubs have no customers: every stub neighbor relationship from the
	// stub's perspective is provider or peer.
	for v := 0; v < as.Graph.NumNodes(); v++ {
		if as.Tier[v] != TierStub {
			continue
		}
		for _, w := range as.Graph.Neighbors(int32(v)) {
			if as.Annotated.Rel(int32(v), w).String() == "customer" {
				t.Fatalf("stub %d has customer %d", v, w)
			}
		}
	}
}

func TestValidateParams(t *testing.T) {
	if _, err := GenerateAS(rand.New(rand.NewSource(4)), ASParams{NumAS: 2}); err == nil {
		t.Fatal("expected error for tiny NumAS")
	}
	if _, err := GenerateAS(rand.New(rand.NewSource(4)), ASParams{NumAS: 5, NumTier1: 10}); err == nil {
		t.Fatal("expected error for NumTier1 >= NumAS")
	}
}

func TestGenerateRouters(t *testing.T) {
	as := MustGenerateAS(rand.New(rand.NewSource(5)), ASParams{NumAS: 800})
	rl := MustGenerateRouters(rand.New(rand.NewSource(6)), as, RouterParams{})
	g := rl.Graph
	if g.NumNodes() < 2*as.Graph.NumNodes() {
		t.Fatalf("router graph only %d nodes for %d ASes", g.NumNodes(), as.Graph.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("router graph must be connected")
	}
	// Average degree near the RL graph's 2.53 (leaf-dominated).
	if d := g.AvgDegree(); d < 1.8 || d > 4.5 {
		t.Fatalf("router avg degree = %.2f, want ~2.5", d)
	}
	// Every router maps to a valid AS.
	for _, a := range rl.ASOf {
		if a < 0 || int(a) >= as.Graph.NumNodes() {
			t.Fatalf("bad AS id %d", a)
		}
	}
}

func TestRouterCountScalesWithDegree(t *testing.T) {
	as := MustGenerateAS(rand.New(rand.NewSource(7)), ASParams{NumAS: 500})
	rl := MustGenerateRouters(rand.New(rand.NewSource(8)), as, RouterParams{})
	// The highest-degree AS should own more routers than a random stub.
	counts := make([]int, as.Graph.NumNodes())
	for _, a := range rl.ASOf {
		counts[a]++
	}
	maxAS, maxDeg := 0, 0
	for v := 0; v < as.Graph.NumNodes(); v++ {
		if d := as.Graph.Degree(int32(v)); d > maxDeg {
			maxAS, maxDeg = v, d
		}
	}
	var stub int
	for v, tr := range as.Tier {
		if tr == TierStub && as.Graph.Degree(int32(v)) == 1 {
			stub = v
			break
		}
	}
	if counts[maxAS] <= counts[stub] {
		t.Fatalf("hub AS routers %d <= stub routers %d", counts[maxAS], counts[stub])
	}
}

func TestDeterminism(t *testing.T) {
	a1 := MustGenerateAS(rand.New(rand.NewSource(9)), ASParams{NumAS: 1000})
	a2 := MustGenerateAS(rand.New(rand.NewSource(9)), ASParams{NumAS: 1000})
	if a1.Graph.NumEdges() != a2.Graph.NumEdges() {
		t.Fatal("same seed should reproduce the AS graph")
	}
}
