package internetsim

import (
	"math/rand"
	"testing"
)

func TestSizeDegreeCorrelation(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	as := MustGenerateAS(r, ASParams{NumAS: 1200})
	rl := MustGenerateRouters(r, as, RouterParams{})
	sd := SizeDegreeData(as, rl)
	if len(sd.Sizes) != as.Graph.NumNodes() {
		t.Fatalf("sizes = %d", len(sd.Sizes))
	}
	// Tangmunarunkit et al.: size and degree are strongly coupled.
	if c := sd.Correlation(); c < 0.7 {
		t.Fatalf("size/degree correlation = %v, want strong", c)
	}
	total := 0.0
	for _, s := range sd.Sizes {
		total += s
	}
	if int(total) != rl.Graph.NumNodes() {
		t.Fatalf("router counts sum to %v, want %d", total, rl.Graph.NumNodes())
	}
}

func TestSizeCCDFHeavyTailed(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	as := MustGenerateAS(r, ASParams{NumAS: 2000})
	rl := MustGenerateRouters(r, as, RouterParams{})
	sd := SizeDegreeData(as, rl)
	ccdf := sd.SizeCCDF()
	if ccdf.Len() < 5 {
		t.Fatalf("CCDF too short: %d", ccdf.Len())
	}
	// Most ASes are small; a few are two orders larger.
	maxSize := ccdf.Points[ccdf.Len()-1].X
	if maxSize < 30 {
		t.Fatalf("largest AS has %v routers; tail too light", maxSize)
	}
}
