package experiments

import (
	"math/rand"
	"testing"

	"topocmp/internal/core"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/hierarchy"
	"topocmp/internal/metrics"
)

func tiny() *Runner {
	cfg := QuickConfig(1)
	cfg.Set.Scale = 0.12
	cfg.Suite.Sources = 8
	cfg.Suite.MaxBallSize = 800
	cfg.Suite.LinkSources = 384
	return NewRunner(cfg)
}

func TestTable1CoversInventory(t *testing.T) {
	r := tiny()
	rows := r.Table1()
	if len(rows) != 11 {
		t.Fatalf("inventory rows = %d, want 11", len(rows))
	}
	names := map[string]bool{}
	for _, row := range rows {
		names[row.Name] = true
		if row.Nodes <= 0 || row.AvgDegree <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	for _, want := range AllTableNames {
		if !names[want] {
			t.Fatalf("missing network %s", want)
		}
	}
}

func TestSuiteMemoized(t *testing.T) {
	r := tiny()
	a := r.Suite("Tree")
	b := r.Suite("Tree")
	if a != b {
		t.Fatal("suite results should be memoized")
	}
}

func TestFigure2PanelShapes(t *testing.T) {
	r := tiny()
	p := r.Figure2("canonical", CanonicalNames)
	if len(p.Expansion) != 3 || len(p.Resilience) != 3 || len(p.Distortion) != 3 {
		t.Fatalf("panel sizes %d/%d/%d", len(p.Expansion), len(p.Resilience), len(p.Distortion))
	}
	for _, s := range p.Expansion {
		if s.Len() == 0 {
			t.Fatalf("empty expansion for %s", s.Name)
		}
	}
	// Measured panel includes policy variants.
	mp := r.Figure2("measured", MeasuredNames)
	withPolicy := 0
	for _, s := range mp.Expansion {
		if len(s.Name) > 8 && s.Name[len(s.Name)-8:] == "(Policy)" {
			withPolicy++
		}
	}
	if withPolicy != 2 {
		t.Fatalf("policy expansion variants = %d, want 2", withPolicy)
	}
}

func TestFigure3AndTable4(t *testing.T) {
	r := tiny()
	series := r.Figure3([]string{"AS", "PLRG"})
	if len(series) < 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Len() == 0 {
			t.Fatalf("empty link-value series %s", s.Name)
		}
	}
	rows := r.Table4()
	if len(rows) != 9 {
		t.Fatalf("table4 rows = %d", len(rows))
	}
}

func TestFigure5Correlations(t *testing.T) {
	r := tiny()
	rows := r.Figure5()
	if len(rows) < 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Correlation > rows[i-1].Correlation {
			t.Fatal("rows not sorted")
		}
	}
	// Figure 5's key contrast: PLRG correlation far above Tree.
	var plrgC, treeC float64
	for _, row := range rows {
		switch row.Name {
		case "PLRG":
			plrgC = row.Correlation
		case "Tree":
			treeC = row.Correlation
		}
	}
	if plrgC <= treeC {
		t.Fatalf("PLRG corr %v <= Tree corr %v", plrgC, treeC)
	}
}

func TestFigure6Through10(t *testing.T) {
	r := tiny()
	if got := r.Figure6(CanonicalNames); len(got) != 3 {
		t.Fatalf("figure6 = %d series", len(got))
	}
	if got := r.Figure7Eigen([]string{"Tree", "PLRG"}); len(got) != 2 || got[1].Len() == 0 {
		t.Fatal("figure7 eigen broken")
	}
	if got := r.Figure7Ecc([]string{"Mesh"}); len(got) != 1 || got[0].Len() == 0 {
		t.Fatal("figure7 ecc broken")
	}
	if got := r.Figure8Cover([]string{"Mesh"}); got[0].Len() == 0 {
		t.Fatal("figure8 cover broken")
	}
	if got := r.Figure8Bicon([]string{"Tree"}); got[0].Len() == 0 {
		t.Fatal("figure8 bicon broken")
	}
	att, errTol := r.Figure9([]string{"PLRG"})
	if att[0].Len() == 0 || errTol[0].Len() == 0 {
		t.Fatal("figure9 broken")
	}
	if got := r.Figure10([]string{"Random"}); got[0].Len() == 0 {
		t.Fatal("figure10 broken")
	}
}

func TestDegreeBasedVariantsAllHeavyTailed(t *testing.T) {
	r := tiny()
	for _, n := range r.DegreeBasedVariants() {
		if n.Graph.MaxDegree() < 15 {
			t.Fatalf("%s max degree %d; no hubs", n.Name, n.Graph.MaxDegree())
		}
	}
}

func TestFigure12AllVariantsMatchPLRGShape(t *testing.T) {
	// Appendix D conclusion: every degree-based variant has high expansion
	// and resilience and low distortion.
	r := tiny()
	p := r.Figure12()
	for i := range p.Expansion {
		name := p.Expansion[i].Name
		sig := core.Signature{
			Expansion:  core.ClassifyExpansion(p.Expansion[i]),
			Resilience: core.ClassifyResilience(p.Resilience[i]),
			Distortion: core.ClassifyDistortion(p.Distortion[i]),
		}
		if sig.String() != "HHL" {
			t.Errorf("%s: signature %s, want HHL", name, sig)
		}
	}
}

func TestFigure13ReconnectionPreservesShape(t *testing.T) {
	r := tiny()
	p := r.Figure13()
	if len(p.Expansion) != 4 {
		t.Fatalf("panels = %d", len(p.Expansion))
	}
	for i := range p.Expansion {
		if core.ClassifyExpansion(p.Expansion[i]) != core.High {
			t.Errorf("%s: expansion not high", p.Expansion[i].Name)
		}
		if core.ClassifyDistortion(p.Distortion[i]) != core.Low {
			t.Errorf("%s: distortion not low", p.Distortion[i].Name)
		}
	}
}

func TestFigure14VariantsModerate(t *testing.T) {
	r := tiny()
	series := r.Figure14()
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.Len() == 0 {
			t.Fatalf("empty series %s", s.Name)
		}
		// Moderate hierarchy: fast fall-off — the top 10% of links hold
		// most of the value.
		top := s.Points[0].Y
		mid := s.YAt(0.5)
		if top <= 0 || mid/top > 0.5 {
			t.Errorf("%s: distribution too flat (top=%v mid=%v)", s.Name, top, mid)
		}
	}
}

func TestFigure11Rows(t *testing.T) {
	r := tiny()
	rows := r.Figure11()
	if len(rows) < 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Nodes <= 0 {
			t.Fatalf("bad row %+v", row)
		}
	}
	// Robustness claim: every PLRG row classifies HHL.
	for _, row := range rows {
		if row.Generator == "PLRG" && row.Signature.String() != "HHL" {
			t.Errorf("PLRG %s: signature %s", row.Params, row.Signature)
		}
	}
}

func TestSummaryAllMatch(t *testing.T) {
	r := tiny()
	for _, c := range r.Summary() {
		if !c.Match {
			t.Errorf("%s: got %s, expected %s", c.Name, c.Got, c.Expected)
		}
	}
}

func TestConnectivityVariants(t *testing.T) {
	r := tiny()
	p := r.ConnectivityVariants()
	if len(p.Expansion) != 4 {
		t.Fatalf("panels = %d", len(p.Expansion))
	}
	// The three random methods all produce the PLRG's HHL shape.
	for i := 0; i < 3; i++ {
		sig := core.Signature{
			Expansion:  core.ClassifyExpansion(p.Expansion[i]),
			Resilience: core.ClassifyResilience(p.Resilience[i]),
			Distortion: core.ClassifyDistortion(p.Distortion[i]),
		}
		if sig.String() != "HHL" {
			t.Errorf("%s: signature %s, want HHL", p.Expansion[i].Name, sig)
		}
	}
}

func TestDeterministicConnectivityIsDifferent(t *testing.T) {
	// Appendix D.1: "deterministic connectivity results in graphs that are
	// quite different from the PLRG (and thus different from the AS and RL
	// graphs)". The contrast shows up violently in local and hierarchy
	// properties.
	cloneG := plrg.MustGenerate(rand.New(rand.NewSource(101)),
		plrg.Params{N: 2000, Beta: 2.246, Connect: plrg.CloneMatching})
	detG := plrg.MustGenerate(rand.New(rand.NewSource(101)),
		plrg.Params{N: 2000, Beta: 2.246, Connect: plrg.Deterministic})
	// Deterministic wiring fractures the graph: its giant component is a
	// fraction of clone matching's.
	if detG.NumNodes()*2 > cloneG.NumNodes() {
		t.Fatalf("deterministic component %d vs clone %d: expected fragmentation",
			detG.NumNodes(), cloneG.NumNodes())
	}
	// It is intensely clustered (sorted-degree wiring creates cliques)...
	ccClone := metrics.ClusteringCoefficient(cloneG)
	ccDet := metrics.ClusteringCoefficient(detG)
	if ccDet < 5*ccClone {
		t.Fatalf("clustering: deterministic %v vs clone %v", ccDet, ccClone)
	}
	// ...and its hierarchy no longer correlates with degree.
	lvClone := hierarchy.LinkValues(cloneG, hierarchy.Options{MaxSources: 320,
		Rand: rand.New(rand.NewSource(1))})
	lvDet := hierarchy.LinkValues(detG, hierarchy.Options{MaxSources: 320,
		Rand: rand.New(rand.NewSource(1))})
	if lvDet.DegreeCorrelation(detG) >= lvClone.DegreeCorrelation(cloneG)/2 {
		t.Fatalf("degree correlation: deterministic %v vs clone %v",
			lvDet.DegreeCorrelation(detG), lvClone.DegreeCorrelation(cloneG))
	}
}

func TestRewiringPreservesLargeScaleStructure(t *testing.T) {
	// The null-model version of the paper's thesis: degree-preserving
	// rewiring of the measured AS graph must keep its HHL signature (the
	// degree sequence alone carries the large-scale structure)...
	r := tiny()
	p := r.RewiringPanel()
	for i := range p.Expansion {
		sig := core.Signature{
			Expansion:  core.ClassifyExpansion(p.Expansion[i]),
			Resilience: core.ClassifyResilience(p.Resilience[i]),
			Distortion: core.ClassifyDistortion(p.Distortion[i]),
		}
		if sig.String() != "HHL" {
			t.Errorf("%s: signature %s, want HHL", p.Expansion[i].Name, sig)
		}
	}
	// ...and its moderate hierarchy.
	asGraph := r.Measured().AS.Graph
	rewired := plrg.DegreePreservingRewire(rand.New(rand.NewSource(99)), asGraph, 3)
	lv := hierarchy.LinkValues(rewired, hierarchy.Options{
		MaxSources: 384, Rand: rand.New(rand.NewSource(7)),
	})
	if c := hierarchy.Classify(lv); c != hierarchy.Moderate {
		t.Errorf("rewired AS hierarchy = %v, want moderate", c)
	}
	// While local clustering washes out relative to the original.
	ccOrig := metrics.ClusteringCoefficient(asGraph)
	ccRewired := metrics.ClusteringCoefficient(rewired)
	if ccRewired > ccOrig {
		t.Errorf("rewiring should not raise clustering: %v -> %v", ccOrig, ccRewired)
	}
}
