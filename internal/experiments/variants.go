package experiments

import (
	"fmt"
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/core"
	"topocmp/internal/gen/ba"
	"topocmp/internal/gen/brite"
	"topocmp/internal/gen/bt"
	"topocmp/internal/gen/inet"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/gen/tiers"
	"topocmp/internal/gen/transitstub"
	"topocmp/internal/gen/waxman"
	"topocmp/internal/graph"
	"topocmp/internal/hierarchy"
	"topocmp/internal/metrics"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// DegreeBasedVariants builds the Appendix D generator family (B-A, Brite,
// BT, Inet, PLRG) at a common target size.
func (r *Runner) DegreeBasedVariants() []*core.Network {
	seed := r.Cfg.Set.Seed
	n := scaledSize(9000, r.Cfg.Set.Scale, 2000)
	mk := func(off int64) *rand.Rand { return rand.New(rand.NewSource(seed + off)) }
	return []*core.Network{
		{Name: "B-A", Category: core.Generated,
			Graph: ba.MustGenerate(mk(31), ba.Params{N: n, M: 2})},
		{Name: "Brite", Category: core.Generated,
			Graph: brite.MustGenerate(mk(32), brite.Params{N: n, M: 2, Placement: brite.PlacementHeavyTailed})},
		{Name: "BT", Category: core.Generated,
			Graph: bt.MustGenerate(mk(33), bt.Params{N: n, M: 1, P: 0.47, BetaGLP: 0.64})},
		{Name: "Inet", Category: core.Generated,
			Graph: inet.MustGenerate(mk(34), inet.Params{N: n, Beta: 2.2})},
		{Name: "PLRG", Category: core.Generated,
			Graph: plrg.MustGenerate(mk(35), plrg.Params{N: n, Beta: 2.246})},
	}
}

func scaledSize(n int, scale float64, min int) int {
	if scale == 0 {
		scale = 0.3
	}
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// VariantPanel holds the Figure 12 artifacts: degree CCDFs plus the three
// basic metrics for the degree-based variants.
type VariantPanel struct {
	CCDF       []stats.Series
	Expansion  []stats.Series
	Resilience []stats.Series
	Distortion []stats.Series
}

// Figure12 computes CCDFs and the three metrics for the degree-based
// variants (Figures 2(j-l) and 12).
func (r *Runner) Figure12() VariantPanel {
	return cachedArtifact(r, "fig12", func() VariantPanel {
		var p VariantPanel
		for _, n := range r.DegreeBasedVariants() {
			p.appendNetwork(n.Name, n.Graph, r.Cfg)
		}
		return p
	})
}

func (p *VariantPanel) appendNetwork(name string, g *graph.Graph, cfg Config) {
	seed := cfg.Suite.Seed
	if seed == 0 {
		seed = 1
	}
	ccdf := stats.CCDF(g.Degrees())
	ccdf.Name = name
	p.CCDF = append(p.CCDF, ccdf)

	mkCfg := func(off int64) ball.Config {
		return ball.Config{
			MaxSources:  cfg.Suite.Sources,
			MaxBallSize: cfg.Suite.MaxBallSize,
			Rand:        rand.New(rand.NewSource(seed + off)),
		}
	}
	e := metrics.Expansion(g, ball.Config{MaxSources: 4 * cfg.Suite.Sources,
		Rand: rand.New(rand.NewSource(seed))})
	e.Name = name
	p.Expansion = append(p.Expansion, e)
	res := metrics.Resilience(g, mkCfg(1), partition.Options{
		Rand: rand.New(rand.NewSource(seed + 100))})
	res.Name = name
	p.Resilience = append(p.Resilience, res)
	d := metrics.Distortion(g, mkCfg(2), 3)
	d.Name = name
	p.Distortion = append(p.Distortion, d)
}

// Figure13 regenerates the "modified B-A / modified Brite" experiment of
// Appendix D.1: the B-A and Brite graphs are reconnected with the PLRG
// clone-matching method while keeping their degree sequences, and the three
// metrics are compared.
func (r *Runner) Figure13() VariantPanel {
	return cachedArtifact(r, "fig13", func() VariantPanel {
		seed := r.Cfg.Set.Seed
		n := scaledSize(9000, r.Cfg.Set.Scale, 2000)
		baG := ba.MustGenerate(rand.New(rand.NewSource(seed+31)), ba.Params{N: n, M: 2})
		briteG := brite.MustGenerate(rand.New(rand.NewSource(seed+32)),
			brite.Params{N: n, M: 2, Placement: brite.PlacementHeavyTailed})
		var p VariantPanel
		p.appendNetwork("B-A", baG, r.Cfg)
		p.appendNetwork("Modified B-A", plrg.Reconnect(rand.New(rand.NewSource(seed+41)), baG), r.Cfg)
		p.appendNetwork("Brite", briteG, r.Cfg)
		p.appendNetwork("Modified Brite", plrg.Reconnect(rand.New(rand.NewSource(seed+42)), briteG), r.Cfg)
		return p
	})
}

// Figure14 regenerates the link-value distributions of the degree-based
// variants, the moderate-hierarchy check of Appendix D.2.
func (r *Runner) Figure14() []stats.Series {
	return cachedArtifact(r, "fig14", func() []stats.Series {
		var out []stats.Series
		for _, n := range r.DegreeBasedVariants() {
			lv := hierarchy.LinkValues(n.Graph, hierarchy.Options{
				MaxSources: r.Cfg.Suite.LinkSources,
				Rand:       rand.New(rand.NewSource(r.Cfg.Set.Seed + 51)),
			})
			s := lv.RankDistribution()
			s.Name = n.Name
			out = append(out, s)
		}
		return out
	})
}

// Figure11Row is one row of the Appendix C parameter-exploration table.
type Figure11Row struct {
	Generator string
	Params    string
	Nodes     int
	AvgDegree float64
	Signature core.Signature
}

// Figure11 sweeps representative parameter rows from Appendix C for each
// generator, reporting sizes, degrees and the three-metric signature — the
// robustness claim of §4.4.
func (r *Runner) Figure11() []Figure11Row {
	return cachedArtifact(r, "fig11", r.figure11)
}

func (r *Runner) figure11() []Figure11Row {
	seed := r.Cfg.Set.Seed
	var rows []Figure11Row
	add := func(gen, params string, g *graph.Graph) {
		rows = append(rows, Figure11Row{
			Generator: gen,
			Params:    params,
			Nodes:     g.NumNodes(),
			AvgDegree: g.AvgDegree(),
			Signature: r.classifyGraph(g),
		})
	}
	mk := func(off int64) *rand.Rand { return rand.New(rand.NewSource(seed + off)) }

	for i, beta := range []float64{2.550, 2.358, 2.246} {
		g := plrg.MustGenerate(mk(int64(60+i)), plrg.Params{N: scaledSize(9500, r.Cfg.Set.Scale, 2500), Beta: beta})
		add("PLRG", fmt.Sprintf("beta=%.3f", beta), g)
	}
	tsRows := []transitstub.Params{
		transitstub.Paper(),
		{StubsPerTransit: 3, ExtraTS: 5, ExtraSS: 10, Domains: 6, PDomain: 0.55,
			TransitNodes: 6, PTransit: 0.32, StubNodes: 9, PStub: 0.248},
		{StubsPerTransit: 1, ExtraTS: 0, ExtraSS: 0, Domains: 1, PDomain: 0.5,
			TransitNodes: 50, PTransit: 0.05, StubNodes: 50, PStub: 0.05},
	}
	for i, p := range tsRows {
		g := transitstub.MustGenerate(mk(int64(70+i)), p)
		add("TS", fmt.Sprintf("%d/%d/%d dom=%d", p.StubsPerTransit, p.ExtraTS, p.ExtraSS, p.Domains), g)
	}
	tiersRows := []tiers.Params{
		tiers.Paper(),
		{MANsPerWAN: 20, LANsPerMAN: 4, WANNodes: 200, MANNodes: 20, LANNodes: 4,
			RW: 4, RM: 4, RL: 1, RMW: 3, RLM: 1},
	}
	for i, p := range tiersRows {
		if r.Cfg.Set.Scale < 0.9 {
			p.MANsPerWAN = scaledSize(p.MANsPerWAN, r.Cfg.Set.Scale, 8)
			p.WANNodes = scaledSize(p.WANNodes, r.Cfg.Set.Scale, 80)
		}
		g := tiers.MustGenerate(mk(int64(80+i)), p)
		add("Tiers", fmt.Sprintf("MANs=%d WAN=%d RMW=%d", p.MANsPerWAN, p.WANNodes, p.RMW), g)
	}
	waxRows := []struct{ alpha, beta float64 }{
		{0.005, 0.30}, {0.005, 0.10}, {0.010, 0.10},
	}
	for i, w := range waxRows {
		n := scaledSize(5000, r.Cfg.Set.Scale, 600)
		alpha := w.alpha * 5000 / float64(n)
		if alpha > 1 {
			alpha = 1
		}
		g := waxman.MustGenerate(mk(int64(90+i)), waxman.Params{N: n, Alpha: alpha, Beta: w.beta})
		add("Waxman", fmt.Sprintf("alpha=%.3f beta=%.2f", w.alpha, w.beta), g)
	}
	return rows
}

// classifyGraph runs just the three basic metrics on a bare graph.
func (r *Runner) classifyGraph(g *graph.Graph) core.Signature {
	seed := r.Cfg.Suite.Seed
	if seed == 0 {
		seed = 1
	}
	mkCfg := func(off int64) ball.Config {
		return ball.Config{
			MaxSources:  r.Cfg.Suite.Sources,
			MaxBallSize: r.Cfg.Suite.MaxBallSize,
			Rand:        rand.New(rand.NewSource(seed + off)),
		}
	}
	e := metrics.Expansion(g, ball.Config{MaxSources: 4 * r.Cfg.Suite.Sources,
		Rand: rand.New(rand.NewSource(seed))})
	res := metrics.Resilience(g, mkCfg(1), partition.Options{
		Rand: rand.New(rand.NewSource(seed + 100))})
	d := metrics.Distortion(g, mkCfg(2), 3)
	return core.Signature{
		Expansion:  core.ClassifyExpansion(e),
		Resilience: core.ClassifyResilience(res),
		Distortion: core.ClassifyDistortion(d),
	}
}

// ConnectivityPanel holds the three metrics for each PLRG connectivity
// method (Appendix D.1's final experiment): the random methods all match
// the PLRG, while deterministic connectivity produces "graphs that are
// quite different from the PLRG (and thus different from the AS and RL
// graphs)".
func (r *Runner) ConnectivityVariants() VariantPanel {
	return cachedArtifact(r, "connectivity", func() VariantPanel {
		seed := r.Cfg.Set.Seed
		n := scaledSize(9000, r.Cfg.Set.Scale, 2000)
		var p VariantPanel
		for i, c := range []plrg.Connectivity{
			plrg.CloneMatching, plrg.UniformRandom,
			plrg.ProportionalUnsatisfied, plrg.Deterministic,
		} {
			g := plrg.MustGenerate(rand.New(rand.NewSource(seed+int64(100+i))),
				plrg.Params{N: n, Beta: 2.246, Connect: c})
			p.appendNetwork(c.String(), g, r.Cfg)
		}
		return p
	})
}

// RewiringPanel runs the null-model test of the paper's central thesis:
// rewire the measured AS graph with degree-preserving double-edge swaps
// (destroying everything except the degree sequence) and compare the three
// large-scale metrics. If hierarchy and large-scale structure follow from
// the degree distribution — the paper's conclusion — the rewired graph
// keeps the AS graph's HHL signature and moderate hierarchy, while local
// clustering washes out.
func (r *Runner) RewiringPanel() VariantPanel {
	return cachedArtifact(r, "rewiring", func() VariantPanel {
		asGraph := r.Measured().AS.Graph
		rewired := plrg.DegreePreservingRewire(
			rand.New(rand.NewSource(r.Cfg.Set.Seed+61)), asGraph, 3)
		var p VariantPanel
		p.appendNetwork("AS", asGraph, r.Cfg)
		p.appendNetwork("AS rewired", rewired, r.Cfg)
		return p
	})
}
