// Package experiments regenerates every table and figure of the paper's
// evaluation. Each method of Runner corresponds to one artifact (see
// DESIGN.md's experiment index); cmd/reproduce renders them to results/
// and the repository-root benchmarks time and print them.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/hierarchy"
	"topocmp/internal/obs"
	"topocmp/internal/stats"
)

// Config selects the experiment scale.
type Config struct {
	Set   core.PaperSetOptions
	Suite core.SuiteOptions
}

// QuickConfig returns a configuration sized for CI-style runs (a few
// minutes for the full set).
func QuickConfig(seed int64) Config {
	return Config{
		Set: core.PaperSetOptions{Seed: seed, Scale: 0.12},
		Suite: core.SuiteOptions{
			Sources: 12, MaxBallSize: 1500, EigenRank: 20,
			LinkSources: 384, Seed: seed,
		},
	}
}

// FullConfig returns the paper-scale configuration (tens of minutes).
func FullConfig(seed int64) Config {
	return Config{
		Set: core.PaperSetOptions{Seed: seed, Scale: 0.45},
		Suite: core.SuiteOptions{
			Sources: 24, MaxBallSize: 2500, EigenRank: 60,
			LinkSources: 512, Seed: seed,
		},
	}
}

// Runner builds the network set and memoizes per-network suite results so
// every figure can reuse them. Work is lazy by default (each accessor
// builds exactly what it needs); Prefetch schedules the whole inventory
// concurrently under a shared worker budget. All methods are safe for
// concurrent use, and results are bit-identical however the work is
// scheduled: every network and every suite seeds its own RNGs.
type Runner struct {
	Cfg Config
	// Workers is the pipeline's total concurrency budget (cmd/reproduce's
	// -j flag): Prefetch fans network builds and suite runs out under this
	// many tokens, and suite-internal parallelism draws from the same
	// budget so nested parallelism never oversubscribes cores. 0 uses
	// NumCPU, 1 runs the whole pipeline sequentially.
	Workers int
	// Cache is the optional content-addressed result store; nil (the
	// default) recomputes everything in-process.
	Cache *cache.Store
	// Trace, when non-nil, becomes the parent of the pipeline's spans: one
	// net:<name> span per scheduled network with build:<name> and
	// suite:<name> children, the suite span fanning into per-metric stage
	// spans. Nil (the default) disables tracing at zero cost.
	Trace *obs.Span
	// Progress, when non-nil, receives one live stage per network
	// (net:<name>): pending when registered, cached when the result store
	// satisfied it, running/done around a real build+suite, with the ball
	// engine's balls-done/total counters feeding the stage's completion
	// fraction. Nil (the default) disables progress tracking at zero cost.
	Progress *obs.Progress

	mu        sync.Mutex
	onces     map[string]*sync.Once
	measured  *core.MeasuredSet
	nets      map[string]*core.Network
	suites    map[string]*core.SuiteResult
	summaries map[string]*NetworkSummary

	// The runner's operation counters live in its metrics registry, so the
	// pipeline summary, Stats() and the run manifest all read one source.
	metrics   *obs.Registry
	netBuilds *obs.Counter
	suiteRuns *obs.Counter
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	m := obs.NewRegistry()
	return &Runner{
		Cfg:       cfg,
		onces:     map[string]*sync.Once{},
		nets:      map[string]*core.Network{},
		suites:    map[string]*core.SuiteResult{},
		summaries: map[string]*NetworkSummary{},
		metrics:   m,
		netBuilds: m.Counter("pipeline.network_builds"),
		suiteRuns: m.Counter("pipeline.suite_runs"),
	}
}

// Metrics returns the runner's metrics registry. It always exists —
// counting costs one atomic add per pipeline operation — and is shared
// with the suite runs, the ball engines, the measurement sweeps and (once
// Instrumented) the cache store, so one snapshot describes the whole run.
func (r *Runner) Metrics() *obs.Registry { return r.metrics }

// onceFor returns the named once-guard, creating it on first use. Every
// build/run/restore step is guarded by one, so concurrent accessors and the
// Prefetch scheduler never duplicate work.
func (r *Runner) onceFor(name string) *sync.Once {
	r.mu.Lock()
	defer r.mu.Unlock()
	o := r.onces[name]
	if o == nil {
		o = new(sync.Once)
		r.onces[name] = o
	}
	return o
}

// progressStage returns the network's live progress stage, registering it
// on first use. A nil Progress hands out a nil stage whose methods no-op,
// so untracked runners pay one nil check here.
func (r *Runner) progressStage(name string) *obs.ProgressStage {
	return r.Progress.Register("net:" + name)
}

// Measured returns (building on first use) the simulated measurement
// pipeline products. The pipeline is one unit — BGP collection and the
// traceroute sweep share a RNG stream — so it counts as a single network
// build producing both AS and RL.
func (r *Runner) Measured() *core.MeasuredSet {
	r.onceFor("measured").Do(func() {
		r.netBuilds.Add(1)
		opts := r.Cfg.Set
		opts.Metrics = r.metrics
		ms := core.BuildMeasured(opts)
		r.mu.Lock()
		r.measured = ms
		r.mu.Unlock()
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.measured
}

// Networks returns the full Figure 1 inventory, in its fixed assembly
// order.
func (r *Runner) Networks() []*core.Network {
	out := make([]*core.Network, 0, len(AllTableNames))
	for _, name := range AllTableNames {
		out = append(out, r.Network(name))
	}
	return out
}

// Network returns the named network (building it on first use), or nil.
func (r *Runner) Network(name string) *core.Network {
	r.onceFor("net:" + name).Do(func() {
		var n *core.Network
		switch name {
		case "AS":
			n = r.Measured().AS
		case "RL":
			n = r.Measured().RL
		default:
			opts := r.Cfg.Set
			opts.Metrics = r.metrics
			if n = core.BuildNetwork(name, opts); n != nil {
				r.netBuilds.Add(1)
			}
		}
		r.mu.Lock()
		r.nets[name] = n
		r.mu.Unlock()
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nets[name]
}

// Suite returns the memoized metric-suite result for the named network,
// restoring it from the cache or computing it on first use.
func (r *Runner) Suite(name string) *core.SuiteResult {
	return r.runSuite(name, r.Cfg.Suite.Parallelism, r.Trace)
}

// runSuite is Suite with an explicit engine width (Prefetch divides its
// worker budget across pending suites; the width never changes the result)
// and an explicit trace parent. Cache restores never open a span — the
// suite:<name> span exists exactly when the suite was actually computed —
// and the network's progress stage transitions the same way: cached on a
// restore, running→done around a real computation.
func (r *Runner) runSuite(name string, par int, parent *obs.Span) *core.SuiteResult {
	r.onceFor("suite:" + name).Do(func() {
		st := r.progressStage(name)
		if r.tryRestore(name) {
			st.Cached()
			return
		}
		st.Run()
		n := r.Network(name)
		if n == nil {
			return // leave the memo empty; the caller panics below
		}
		opts := r.Cfg.Suite
		opts.Parallelism = par
		opts.Metrics = r.metrics
		opts.Progress = st
		sp := parent.Start("suite:" + name)
		sp.SetAttr("network", name)
		defer sp.End()
		opts.Span = sp
		r.suiteRuns.Add(1)
		res := core.RunSuite(n, opts)
		sum := summarize(n)
		r.mu.Lock()
		r.suites[name] = res
		r.summaries[name] = sum
		r.mu.Unlock()
		st.Done()
		// Best-effort persist: a failed write only costs a recompute later.
		r.Cache.Put(r.suiteKey(name), MakeSuiteEntry(res, sum)) //nolint:errcheck
	})
	r.mu.Lock()
	res := r.suites[name]
	r.mu.Unlock()
	if res == nil {
		panic(fmt.Sprintf("experiments: unknown network %q", name))
	}
	return res
}

// Groups of the paper's figure panels.
var (
	CanonicalNames = []string{"Tree", "Mesh", "Random"}
	MeasuredNames  = []string{"RL", "AS"}
	GeneratedNames = []string{"TS", "Tiers", "Waxman", "PLRG"}
	AllTableNames  = []string{"AS", "RL", "PLRG", "TS", "Tiers", "Waxman",
		"Mesh", "Random", "Tree", "Complete", "Linear"}
)

// Table1 regenerates the Figure 1 inventory table. It reads the cached
// network summaries, so a warm-cache run renders it without building a
// single graph.
func (r *Runner) Table1() []core.Description {
	var out []core.Description
	for _, name := range AllTableNames {
		out = append(out, r.summaryOf(name).Desc)
	}
	return out
}

// Figure2Panel holds one panel (row of Figure 2) for a network group.
type Figure2Panel struct {
	Group      string
	Expansion  []stats.Series
	Resilience []stats.Series
	Distortion []stats.Series
}

// Figure2 regenerates the three-metric panels for the given group. For the
// measured group the policy-routing expansion variants are included, as in
// Figure 2(d).
func (r *Runner) Figure2(group string, names []string) Figure2Panel {
	p := Figure2Panel{Group: group}
	for _, name := range names {
		res := r.Suite(name)
		e := res.Expansion
		e.Name = name
		p.Expansion = append(p.Expansion, e)
		if res.PolicyExpansion.Len() > 0 {
			pe := res.PolicyExpansion
			pe.Name = name + "(Policy)"
			p.Expansion = append(p.Expansion, pe)
		}
		rs := res.Resilience
		rs.Name = name
		p.Resilience = append(p.Resilience, rs)
		if res.PolicyResilience.Len() > 0 {
			pr := res.PolicyResilience
			pr.Name = name + "(Policy)"
			p.Resilience = append(p.Resilience, pr)
		}
		d := res.Distortion
		d.Name = name
		p.Distortion = append(p.Distortion, d)
		if res.PolicyDistortion.Len() > 0 {
			pd := res.PolicyDistortion
			pd.Name = name + "(Policy)"
			p.Distortion = append(p.Distortion, pd)
		}
	}
	return p
}

// Table2 regenerates the §3.2.1 five-network calibration table.
func (r *Runner) Table2() []core.Row {
	var rows []core.Row
	for _, name := range []string{"Mesh", "Random", "Tree", "Complete", "Linear"} {
		rows = append(rows, core.BuildRow(r.Suite(name)))
	}
	return rows
}

// Table3 regenerates the §4.4 classification table over measured and
// generated networks (plus the canonical rows for context).
func (r *Runner) Table3() []core.Row {
	var rows []core.Row
	for _, name := range AllTableNames {
		rows = append(rows, core.BuildRow(r.Suite(name)))
	}
	return rows
}

// Figure3 regenerates the link-value rank distributions (Figures 3 and 4
// share the data; only the axis scaling differs). Policy variants are
// included for the measured networks.
func (r *Runner) Figure3(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		res := r.Suite(name)
		if res.LinkValues == nil {
			continue
		}
		s := res.LinkValues.RankDistribution()
		s.Name = name
		out = append(out, s)
		if res.PolicyLinkValues != nil {
			ps := res.PolicyLinkValues.RankDistribution()
			ps.Name = name + "(Policy)"
			out = append(out, ps)
		}
	}
	return out
}

// Table4 regenerates the §5.1 strict/moderate/loose grouping.
type HierarchyRow struct {
	Name  string
	Class hierarchy.Class
}

// Table4 returns hierarchy groupings for the standard networks.
func (r *Runner) Table4() []HierarchyRow {
	var rows []HierarchyRow
	for _, name := range []string{"Mesh", "Random", "Tree", "AS", "RL", "PLRG", "Tiers", "TS", "Waxman"} {
		res := r.Suite(name)
		if res.LinkValues == nil {
			continue
		}
		rows = append(rows, HierarchyRow{name, hierarchy.Classify(res.LinkValues)})
	}
	return rows
}

// Figure5Row is one bar of the correlation chart.
type Figure5Row struct {
	Name        string
	Correlation float64
}

// Figure5 regenerates the link-value/min-degree correlations, including the
// policy variants for the measured graphs, sorted descending like the
// paper's bar chart.
func (r *Runner) Figure5() []Figure5Row {
	var rows []Figure5Row
	for _, name := range []string{"PLRG", "Waxman", "Random", "AS", "TS", "Mesh", "Tiers", "RL", "Tree"} {
		res := r.Suite(name)
		if res.LinkValues == nil {
			continue
		}
		sum := r.summaryOf(name)
		deg := sum.Degrees
		if name == "RL" {
			// Link values were computed on the core (footnote 29);
			// correlate against the core's degrees.
			deg = sum.CoreDegrees
		}
		rows = append(rows, Figure5Row{name, res.LinkValues.DegreeCorrelationDegrees(deg)})
		if res.PolicyLinkValues != nil {
			rows = append(rows, Figure5Row{
				name + "(Policy)",
				res.PolicyLinkValues.DegreeCorrelationDegrees(sum.Degrees),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Correlation > rows[j].Correlation })
	return rows
}

// Figure6 regenerates the degree CCDFs of Appendix A for a network group.
func (r *Runner) Figure6(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := stats.CCDF(r.summaryOf(name).Degrees)
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Figure7Eigen regenerates the eigenvalue-vs-rank plots.
func (r *Runner) Figure7Eigen(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := r.Suite(name).Eigenvalues
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Figure7Ecc regenerates the node-diameter (eccentricity) distributions.
func (r *Runner) Figure7Ecc(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := r.Suite(name).Eccentricity
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Figure8Cover regenerates the vertex-cover-vs-ball-size plots.
func (r *Runner) Figure8Cover(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := r.Suite(name).VertexCover
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Figure8Bicon regenerates the biconnectivity plots.
func (r *Runner) Figure8Bicon(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := r.Suite(name).Biconnectivity
		s.Name = name
		out = append(out, s)
	}
	return out
}

// Figure9 regenerates attack (targeted) and error (random) tolerance.
func (r *Runner) Figure9(names []string) (attack, errTol []stats.Series) {
	for _, name := range names {
		a := r.Suite(name).Attack
		a.Name = name + ".att"
		attack = append(attack, a)
		e := r.Suite(name).Error
		e.Name = name + ".err"
		errTol = append(errTol, e)
	}
	return attack, errTol
}

// Figure10 regenerates the clustering-coefficient-vs-ball-size plots.
func (r *Runner) Figure10(names []string) []stats.Series {
	var out []stats.Series
	for _, name := range names {
		s := r.Suite(name).Clustering
		s.Name = name
		out = append(out, s)
	}
	return out
}

// SummaryChecks compares the reproduction against the paper's qualitative
// claims; the returned map is the backbone of EXPERIMENTS.md.
type SummaryCheck struct {
	Name     string
	Expected string
	Got      string
	Match    bool
}

// Summary checks all §4.4 signatures and §5.1 groupings.
func (r *Runner) Summary() []SummaryCheck {
	var out []SummaryCheck
	for _, name := range AllTableNames {
		row := core.BuildRow(r.Suite(name))
		out = append(out, SummaryCheck{
			Name:     name + " signature",
			Expected: core.ExpectedSignatures[name],
			Got:      row.Signature.String(),
			Match:    row.MatchesPaper(),
		})
		if want, ok := core.ExpectedHierarchy[name]; ok {
			out = append(out, SummaryCheck{
				Name:     name + " hierarchy",
				Expected: want.String(),
				Got:      row.Hierarchy.String(),
				Match:    row.HierarchyMatchesPaper(),
			})
		}
	}
	return out
}
