package experiments

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/bgp"
	"topocmp/internal/internetsim"
	"topocmp/internal/metrics"
	"topocmp/internal/stats"
)

// ExtrasNames are the networks the beyond-the-paper artifacts sample: one
// per category plus the PLRG.
var ExtrasNames = []string{"AS", "PLRG", "Mesh", "Tree"}

// ExtrasRow is one network's line of the extras table: small-world
// coefficients and the Weibull tail fit of its degree CCDF.
type ExtrasRow struct {
	Name       string
	Sigma      float64
	Clustering float64
	PathLength float64
	WeibullK   float64
	WeibullR2  float64
}

// ExtrasData holds the beyond-the-paper artifacts: footnote 22's two
// metrics (ball path length, surface max-flow), hop plots, the small-world
// and Weibull-tail table, the AS size/degree coupling and the BGP
// vantage-coverage curve. Everything is series and scalars, so the whole
// struct cabins in one cache entry and a warm run renders it graph-free.
type ExtrasData struct {
	PathLength []stats.Series
	MaxFlow    []stats.Series
	Hop        []stats.Series
	Rows       []ExtrasRow
	// SizeDegreeCorrelation is the AS size/degree coupling of
	// Tangmunarunkit et al. 2001 on the ground-truth networks.
	SizeDegreeCorrelation float64
	// Coverage is the BGP vantage-coverage curve (Chang et al. 2002).
	Coverage stats.Series
}

// Extras computes (or restores) the beyond-the-paper artifacts.
func (r *Runner) Extras() ExtrasData {
	return cachedArtifact(r, "extras", r.computeExtras)
}

func (r *Runner) computeExtras() ExtrasData {
	var e ExtrasData
	seed := r.Cfg.Suite.Seed
	for _, name := range ExtrasNames {
		g := r.Network(name).Graph
		cfg := ball.Config{MaxSources: r.Cfg.Suite.Sources,
			MaxBallSize: r.Cfg.Suite.MaxBallSize,
			Rand:        rand.New(rand.NewSource(seed))}
		s := metrics.BallPathLengthCurve(g, cfg)
		s.Name = name
		e.PathLength = append(e.PathLength, s)
		cfg.Rand = rand.New(rand.NewSource(seed))
		f := metrics.SurfaceMaxFlowCurve(g, cfg, 6)
		f.Name = name
		e.MaxFlow = append(e.MaxFlow, f)
		h := metrics.HopPlot(g, 4*r.Cfg.Suite.Sources, rand.New(rand.NewSource(seed)))
		h.Name = name
		e.Hop = append(e.Hop, h)
	}
	for _, name := range ExtrasNames {
		g := r.Network(name).Graph
		sw := metrics.SmallWorldness(g, 2*r.Cfg.Suite.Sources)
		wb := stats.FitWeibullTail(stats.CCDF(g.Degrees()))
		e.Rows = append(e.Rows, ExtrasRow{
			Name: name, Sigma: sw.Sigma, Clustering: sw.Clustering,
			PathLength: sw.PathLength, WeibullK: wb.K, WeibullR2: wb.R2,
		})
	}
	ms := r.Measured()
	e.SizeDegreeCorrelation = internetsim.SizeDegreeData(ms.TruthAS, ms.TruthRL).Correlation()
	vantages := bgp.PickVantages(ms.TruthAS.Graph, 12, rand.New(rand.NewSource(seed)))
	e.Coverage = bgp.CoverageCurve(ms.TruthAS.Annotated, vantages)
	return e
}
