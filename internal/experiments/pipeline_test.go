package experiments

import (
	"reflect"
	"sync"
	"testing"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/obs"
)

// miniCfg is small enough to run the full 11-network pipeline in a test.
func miniCfg(seed int64, skipHier bool) Config {
	return Config{
		Set: core.PaperSetOptions{Seed: seed, Scale: 0.06},
		Suite: core.SuiteOptions{Sources: 6, MaxBallSize: 400, EigenRank: 8,
			LinkSources: 96, Seed: seed, SkipHierarchy: skipHier},
	}
}

// sameSuite compares two suite results field by field (everything except
// the Network pointer, which a cache restore replaces with a stub).
func sameSuite(t *testing.T, name string, a, b *core.SuiteResult) {
	t.Helper()
	if a.Network.Name != b.Network.Name || a.Network.Category != b.Network.Category {
		t.Errorf("%s: network identity %s/%v vs %s/%v", name,
			a.Network.Name, a.Network.Category, b.Network.Name, b.Network.Category)
	}
	checks := []struct {
		field string
		a, b  any
	}{
		{"Expansion", a.Expansion, b.Expansion},
		{"Resilience", a.Resilience, b.Resilience},
		{"Distortion", a.Distortion, b.Distortion},
		{"Eigenvalues", a.Eigenvalues, b.Eigenvalues},
		{"Eccentricity", a.Eccentricity, b.Eccentricity},
		{"VertexCover", a.VertexCover, b.VertexCover},
		{"Biconnectivity", a.Biconnectivity, b.Biconnectivity},
		{"Attack", a.Attack, b.Attack},
		{"Error", a.Error, b.Error},
		{"Clustering", a.Clustering, b.Clustering},
		{"WholeGraphClustering", a.WholeGraphClustering, b.WholeGraphClustering},
		{"LinkValues", a.LinkValues, b.LinkValues},
		{"PolicyExpansion", a.PolicyExpansion, b.PolicyExpansion},
		{"PolicyResilience", a.PolicyResilience, b.PolicyResilience},
		{"PolicyDistortion", a.PolicyDistortion, b.PolicyDistortion},
		{"PolicyLinkValues", a.PolicyLinkValues, b.PolicyLinkValues},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.a, c.b) {
			t.Errorf("%s: %s differs", name, c.field)
		}
	}
}

// TestPrefetchMatchesLazy is the Runner-level extension of the suite's
// parallel-matches-sequential contract: the concurrent DAG schedule must
// produce results bit-identical to the lazy sequential path.
func TestPrefetchMatchesLazy(t *testing.T) {
	lazy := NewRunner(miniCfg(1, true))
	lazy.Workers = 1
	lazy.Cfg.Suite.Parallelism = 1

	par := NewRunner(miniCfg(1, true))
	par.Workers = 4
	par.Prefetch()

	for _, name := range AllTableNames {
		sameSuite(t, name, lazy.Suite(name), par.Suite(name))
	}
	if !reflect.DeepEqual(lazy.Table1(), par.Table1()) {
		t.Error("Table1 differs between lazy and prefetched runners")
	}
	if !reflect.DeepEqual(lazy.Figure6(AllTableNames), par.Figure6(AllTableNames)) {
		t.Error("Figure6 differs between lazy and prefetched runners")
	}
	st := par.Stats()
	if st.SuiteRuns != int64(len(AllTableNames)) {
		t.Errorf("prefetch suite runs = %d, want %d", st.SuiteRuns, len(AllTableNames))
	}
}

// TestWarmCacheRerunDoesNoWork is the acceptance check for the result
// cache: a second runner over the same store must restore every artifact —
// suites, summaries, extras, variant panels — bit-identically while
// performing zero network builds and zero suite runs.
func TestWarmCacheRerunDoesNoWork(t *testing.T) {
	dir := t.TempDir()
	open := func() *cache.Store {
		s, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	cold := NewRunner(miniCfg(1, false))
	cold.Cache = open()
	cold.Workers = 2
	cold.Prefetch()
	coldExtras := cold.Extras()
	coldRewire := cold.RewiringPanel()
	st := cold.Stats()
	// Measured AS+RL share one pipeline build; the other 9 networks build
	// individually.
	if st.NetworkBuilds != 10 || st.SuiteRuns != 11 {
		t.Fatalf("cold run: %d builds / %d suite runs, want 10/11",
			st.NetworkBuilds, st.SuiteRuns)
	}

	warm := NewRunner(miniCfg(1, false))
	warm.Cache = open() // fresh store handle: counters start at zero
	warm.Workers = 2
	warm.Prefetch()
	warmExtras := warm.Extras()
	warmRewire := warm.RewiringPanel()

	for _, name := range AllTableNames {
		sameSuite(t, name, cold.Suite(name), warm.Suite(name))
	}
	if !reflect.DeepEqual(cold.Table1(), warm.Table1()) {
		t.Error("Table1 differs after cache restore")
	}
	if !reflect.DeepEqual(cold.Figure5(), warm.Figure5()) {
		t.Error("Figure5 differs after cache restore")
	}
	if !reflect.DeepEqual(cold.Figure6(AllTableNames), warm.Figure6(AllTableNames)) {
		t.Error("Figure6 differs after cache restore")
	}
	if !reflect.DeepEqual(coldExtras, warmExtras) {
		t.Error("Extras differ after cache restore")
	}
	if !reflect.DeepEqual(coldRewire, warmRewire) {
		t.Error("RewiringPanel differs after cache restore")
	}
	st = warm.Stats()
	if st.NetworkBuilds != 0 || st.SuiteRuns != 0 {
		t.Fatalf("warm run did work: %d builds / %d suite runs", st.NetworkBuilds, st.SuiteRuns)
	}
	if st.CacheMisses != 0 {
		t.Fatalf("warm run missed the cache %d times", st.CacheMisses)
	}
}

// TestCacheKeyInvalidation pins the key scheme: a changed seed recomputes,
// an unchanged configuration hits, and the engine width is excluded (suite
// results are bit-identical at every Parallelism, so -j N shares -j 1's
// entries).
func TestCacheKeyInvalidation(t *testing.T) {
	dir := t.TempDir()
	runTree := func(seed int64, par int) int64 {
		s, err := cache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(miniCfg(seed, true))
		r.Cfg.Suite.Parallelism = par
		r.Cache = s
		r.Suite("Tree")
		return r.Stats().SuiteRuns
	}
	if runs := runTree(1, 1); runs != 1 {
		t.Fatalf("first run: %d suite runs, want 1", runs)
	}
	if runs := runTree(2, 1); runs != 1 {
		t.Fatalf("changed seed: %d suite runs, want 1 (must invalidate)", runs)
	}
	if runs := runTree(1, 1); runs != 0 {
		t.Fatalf("unchanged config: %d suite runs, want 0 (must hit)", runs)
	}
	if runs := runTree(1, 3); runs != 0 {
		t.Fatalf("changed parallelism: %d suite runs, want 0 (width is not keyed)", runs)
	}
}

// TestPipelineRaceShort exercises the scheduler, the once-guarded memos
// and the cache store under the race detector: Prefetch races against
// direct accessor calls on the same runner.
func TestPipelineRaceShort(t *testing.T) {
	s, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := miniCfg(1, true)
	cfg.Suite.Sources = 4
	cfg.Suite.MaxBallSize = 250
	cfg.Suite.EigenRank = 6
	r := NewRunner(cfg)
	r.Workers = 4
	r.Cache = s
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r.Prefetch()
	}()
	go func() {
		defer wg.Done()
		r.Table1()
		r.Suite("Mesh")
		r.Figure6(CanonicalNames)
	}()
	wg.Wait()
	if st := r.Stats(); st.SuiteRuns != 11 {
		t.Fatalf("suite runs = %d, want 11", st.SuiteRuns)
	}
}

// TestPrefetchProgressStates checks the live-progress contract of the DAG
// scheduler: a cold Prefetch drives every network stage pending → running →
// done with a complete work counter, and a warm rerun over the same cache
// reports every stage cached without ever running it.
func TestPrefetchProgressStates(t *testing.T) {
	store, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := NewRunner(miniCfg(1, true))
	cold.Workers = 3
	cold.Cache = store
	cold.Progress = obs.NewProgress()
	cold.Prefetch()
	snap := cold.Progress.Snapshot()
	if len(snap.Stages) != len(AllTableNames) {
		t.Fatalf("cold progress tracked %d stages, want %d", len(snap.Stages), len(AllTableNames))
	}
	if snap.Fraction != 1 {
		t.Errorf("cold overall fraction = %v, want 1", snap.Fraction)
	}
	for _, st := range snap.Stages {
		if st.State != obs.StageDone {
			t.Errorf("cold stage %s state = %s, want done", st.Name, st.State)
		}
		if st.TotalUnits == 0 || st.DoneUnits != st.TotalUnits {
			t.Errorf("cold stage %s units = %d/%d, want complete and nonzero",
				st.Name, st.DoneUnits, st.TotalUnits)
		}
	}

	warm := NewRunner(miniCfg(1, true))
	warm.Workers = 3
	warm.Cache = store
	warm.Progress = obs.NewProgress()
	warm.Prefetch()
	for _, st := range warm.Progress.Snapshot().Stages {
		if st.State != obs.StageCached {
			t.Errorf("warm stage %s state = %s, want cached", st.Name, st.State)
		}
	}
	if st := warm.Stats(); st.SuiteRuns != 0 {
		t.Errorf("warm rerun ran %d suites, want 0", st.SuiteRuns)
	}
}
