// Pipeline scheduling and result caching for the Runner.
//
// Prefetch turns the lazy per-artifact evaluation into a two-stage DAG:
// network construction (the measurement pipeline or a generator invocation)
// fans out over a worker pool, and each network's metric suite is scheduled
// the moment its network is ready. Both stages draw tokens from one
// weighted semaphore of Workers tokens — a build holds one token, a suite
// run holds as many tokens as the engine width it was granted — so the
// pipeline plus the suites' internal parallelism never oversubscribe the
// budget. Because every network and every suite seeds its own RNGs, the
// results are bit-identical to the sequential path at every width.
//
// The cache layer persists one entry per (paper-set options, suite options,
// network) triple — the full suite series plus a graph-free summary
// (description, degree sequence) — and one entry per derived artifact
// (variant panels, extras). A re-run with an unchanged configuration
// restores everything from disk and performs zero network builds and zero
// suite runs; changing the scale or seed changes the keys and invalidates
// exactly the affected entries.
package experiments

import (
	"runtime"
	"sync"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/hierarchy"
	"topocmp/internal/stats"
)

// Stats counts the expensive pipeline operations performed by this runner,
// plus the traffic of its cache store. A warm-cache run reports zero
// NetworkBuilds and zero SuiteRuns.
type Stats struct {
	NetworkBuilds     int64 // measurement-pipeline + generator invocations
	SuiteRuns         int64 // full metric-suite computations
	CacheHits         int64
	CacheMisses       int64
	CachePuts         int64
	CacheDecodeErrors int64 // corrupt entries evicted and recomputed
}

// Stats returns the runner's operation counts so far.
func (r *Runner) Stats() Stats {
	st := Stats{NetworkBuilds: r.netBuilds.Value(), SuiteRuns: r.suiteRuns.Value()}
	cs := r.Cache.Stats()
	st.CacheHits, st.CacheMisses, st.CachePuts = cs.Hits, cs.Misses, cs.Puts
	st.CacheDecodeErrors = cs.DecodeErrors
	return st
}

// workers resolves the pipeline's concurrency budget.
func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.NumCPU()
}

// sem is a weighted counting semaphore: acquire(k) blocks until k of the n
// tokens are free. Suite runs acquire their engine width, builds acquire 1.
// Acquired weights never exceed the initial count, so waiters always make
// progress.
type sem struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
}

func newSem(n int) *sem {
	s := &sem{avail: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sem) acquire(k int) {
	s.mu.Lock()
	for s.avail < k {
		s.cond.Wait()
	}
	s.avail -= k
	s.mu.Unlock()
}

func (s *sem) release(k int) {
	s.mu.Lock()
	s.avail += k
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Prefetch builds every Figure 1 network and runs every metric suite under
// the runner's worker budget, so the figure accessors afterwards only read
// memos. Cached entries are restored first (no tokens needed); the cache
// misses are then scheduled as build→suite chains, each suite granted an
// equal share of the budget, clamped to [1, Workers]. Calling Prefetch is
// optional — the accessors compute lazily without it — and idempotent.
func (r *Runner) Prefetch() {
	var misses []string
	for _, name := range AllTableNames {
		// Registration order is /debug/progress display order; restored
		// entries surface as cached, scheduled ones as pending until their
		// goroutine claims them.
		st := r.progressStage(name)
		if r.tryRestore(name) {
			st.Cached()
		} else {
			misses = append(misses, name)
		}
	}
	if len(misses) == 0 {
		return
	}
	j := r.workers()
	width := j / len(misses)
	if width < 1 {
		width = 1
	}
	tokens := newSem(j)
	semWait := r.metrics.Histogram("pipeline.sem_wait")
	acquire := func(k int) {
		t0 := time.Now()
		tokens.acquire(k)
		semWait.Observe(time.Since(t0))
	}
	var wg sync.WaitGroup
	for _, name := range misses {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sp := r.Trace.Start("net:" + name)
			defer sp.End()
			r.progressStage(name).Run()
			acquire(1)
			bsp := sp.Start("build:" + name)
			r.Network(name) // AS and RL share one measurement-pipeline build
			bsp.End()
			tokens.release(1)
			acquire(width)
			r.runSuite(name, width, sp)
			tokens.release(width)
		}(name)
	}
	wg.Wait()
}

// PrefetchNetworks runs only the construction stage of the DAG: every
// Figure 1 network is built over the worker pool, no suites. Useful when
// only the inventory is needed, and as the benchmark for the fan-out alone.
func (r *Runner) PrefetchNetworks() {
	tokens := newSem(r.workers())
	var wg sync.WaitGroup
	for _, name := range AllTableNames {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			tokens.acquire(1)
			defer tokens.release(1)
			r.Network(name)
		}(name)
	}
	wg.Wait()
}

// SuiteKey is the content address of one network's suite entry under the
// given configuration. The serving layer (internal/serve) computes the same
// key for its singleflight dedup and its cache-backed fast path, so a store
// warmed by a CLI run satisfies daemon requests and vice versa — the dedup
// key contract IS the cache key contract.
func SuiteKey(cfg Config, network string) string {
	return cache.Key(cfg.Set.CacheKey(), cfg.Suite.CacheKey(), "net:"+network)
}

// suiteKey is the content address of one network's suite entry.
func (r *Runner) suiteKey(name string) string {
	return SuiteKey(r.Cfg, name)
}

// tryRestore fills the suite and summary memos for name from the cache,
// reporting whether the result is now available without computation.
func (r *Runner) tryRestore(name string) bool {
	r.mu.Lock()
	done := r.suites[name] != nil
	r.mu.Unlock()
	if done {
		return true
	}
	var ent SuiteEntry
	if !r.Cache.Get(r.suiteKey(name), &ent) {
		return false
	}
	res, sum := ent.Restore()
	r.mu.Lock()
	if r.suites[name] == nil {
		r.suites[name] = res
		r.summaries[name] = sum
	}
	r.mu.Unlock()
	return true
}

// NetworkSummary is the graph-free description of a network that the
// figure renderers need: Table 1's row, Figure 6's degree CCDF input and
// Figure 5's correlation degrees. It rides along in the suite cache entry
// so warm runs never rebuild the graphs.
type NetworkSummary struct {
	Desc    core.Description
	Degrees []int // indexed by node id
	// CoreDegrees is set for router-level networks, whose link values are
	// computed on the core graph (footnote 29): Figure 5 correlates those
	// values against the core's degrees.
	CoreDegrees []int
}

// Summarize builds the graph-free summary of a network — the piece of a
// SuiteEntry that MakeSuiteEntry cannot derive from the suite result alone.
// Exported for the serving layer, which assembles entries outside a Runner.
func Summarize(n *core.Network) *NetworkSummary { return summarize(n) }

func summarize(n *core.Network) *NetworkSummary {
	s := &NetworkSummary{Desc: n.Describe(), Degrees: n.Graph.Degrees()}
	if n.Overlay != nil {
		c, _ := n.Graph.Core()
		s.CoreDegrees = c.Degrees()
	}
	return s
}

// summaryOf returns the named network's summary, from the memo, the cache
// (where it rides with the suite entry) or — cold and cacheless — by
// building the network. It never triggers a suite run, so inventory-only
// paths (Table 1, Figure 6) stay as cheap as before.
func (r *Runner) summaryOf(name string) *NetworkSummary {
	r.onceFor("sum:" + name).Do(func() {
		r.mu.Lock()
		have := r.summaries[name] != nil
		r.mu.Unlock()
		if have || r.tryRestore(name) {
			return
		}
		n := r.Network(name)
		if n == nil {
			return // leave the memo empty; the caller panics below
		}
		sum := summarize(n)
		r.mu.Lock()
		if r.summaries[name] == nil {
			r.summaries[name] = sum
		}
		r.mu.Unlock()
	})
	r.mu.Lock()
	sum := r.summaries[name]
	r.mu.Unlock()
	if sum == nil {
		panic("experiments: unknown network \"" + name + "\"")
	}
	return sum
}

// SuiteEntry is the gob image of one network's suite result plus its
// summary. core.SuiteResult itself is not encodable — Network carries the
// graph and policy structures, which have unexported fields — so the entry
// holds only the series and rebuilds a stub Network (name and category are
// all the table builders read) on restore. gob round-trips float64 bits
// exactly, so a restored result renders byte-identically to a fresh one.
// Exported because the serving layer stores and restores the same wire type
// under the same SuiteKey — gob matches fields structurally, so entries
// written by either side decode on the other.
type SuiteEntry struct {
	Name     string
	Category core.Category
	Summary  NetworkSummary

	Expansion  stats.Series
	Resilience stats.Series
	Distortion stats.Series

	Eigenvalues    stats.Series
	Eccentricity   stats.Series
	VertexCover    stats.Series
	Biconnectivity stats.Series
	Attack         stats.Series
	Error          stats.Series
	Clustering     stats.Series

	WholeGraphClustering float64
	LinkValues           *hierarchy.Result

	PolicyExpansion  stats.Series
	PolicyResilience stats.Series
	PolicyDistortion stats.Series
	PolicyLinkValues *hierarchy.Result
}

// MakeSuiteEntry flattens a computed suite result and its summary into the
// cacheable entry form.
func MakeSuiteEntry(res *core.SuiteResult, sum *NetworkSummary) *SuiteEntry {
	return &SuiteEntry{
		Name:                 res.Network.Name,
		Category:             res.Network.Category,
		Summary:              *sum,
		Expansion:            res.Expansion,
		Resilience:           res.Resilience,
		Distortion:           res.Distortion,
		Eigenvalues:          res.Eigenvalues,
		Eccentricity:         res.Eccentricity,
		VertexCover:          res.VertexCover,
		Biconnectivity:       res.Biconnectivity,
		Attack:               res.Attack,
		Error:                res.Error,
		Clustering:           res.Clustering,
		WholeGraphClustering: res.WholeGraphClustering,
		LinkValues:           res.LinkValues,
		PolicyExpansion:      res.PolicyExpansion,
		PolicyResilience:     res.PolicyResilience,
		PolicyDistortion:     res.PolicyDistortion,
		PolicyLinkValues:     res.PolicyLinkValues,
	}
}

// Restore rebuilds the in-memory suite result (with a stub Network) and the
// network summary from the entry.
func (e *SuiteEntry) Restore() (*core.SuiteResult, *NetworkSummary) {
	sum := e.Summary
	return &core.SuiteResult{
		Network:              &core.Network{Name: e.Name, Category: e.Category},
		Expansion:            e.Expansion,
		Resilience:           e.Resilience,
		Distortion:           e.Distortion,
		Eigenvalues:          e.Eigenvalues,
		Eccentricity:         e.Eccentricity,
		VertexCover:          e.VertexCover,
		Biconnectivity:       e.Biconnectivity,
		Attack:               e.Attack,
		Error:                e.Error,
		Clustering:           e.Clustering,
		WholeGraphClustering: e.WholeGraphClustering,
		LinkValues:           e.LinkValues,
		PolicyExpansion:      e.PolicyExpansion,
		PolicyResilience:     e.PolicyResilience,
		PolicyDistortion:     e.PolicyDistortion,
		PolicyLinkValues:     e.PolicyLinkValues,
	}, &sum
}

// cachedArtifact memoizes a derived artifact (variant panel, parameter
// sweep, extras) in the disk cache. With no cache attached it simply
// computes — the benchmarks keep timing the real work — and compute must
// depend only on the runner's configuration, which the key captures.
func cachedArtifact[T any](r *Runner, name string, compute func() T) T {
	if r.Cache == nil {
		return compute()
	}
	key := cache.Key(r.Cfg.Set.CacheKey(), r.Cfg.Suite.CacheKey(), "artifact:"+name)
	var v T
	if r.Cache.Get(key, &v) {
		return v
	}
	v = compute()
	r.Cache.Put(key, v) //nolint:errcheck // best-effort persist
	return v
}
