package multicast

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/metrics"
	"topocmp/internal/stats"
)

func TestTreeLinksSingleReceiver(t *testing.T) {
	g := canonical.Linear(10)
	if l := TreeLinks(g, 0, []int32{9}); l != 9 {
		t.Fatalf("links = %d, want 9", l)
	}
	if l := TreeLinks(g, 5, []int32{0, 9}); l != 9 {
		t.Fatalf("two-way links = %d, want 9", l)
	}
}

func TestTreeLinksSharedPrefix(t *testing.T) {
	// Star: every receiver adds exactly one link.
	b := graph.NewBuilder(8)
	for i := int32(1); i < 8; i++ {
		b.AddEdge(0, i)
	}
	g := b.Graph()
	if l := TreeLinks(g, 0, []int32{1, 2, 3}); l != 3 {
		t.Fatalf("star links = %d, want 3", l)
	}
	// Duplicated receivers don't double count.
	if l := TreeLinks(g, 0, []int32{1, 1, 1}); l != 1 {
		t.Fatalf("duplicate receiver links = %d, want 1", l)
	}
}

func TestTreeLinksUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if l := TreeLinks(b.Graph(), 0, []int32{1, 3}); l != 1 {
		t.Fatalf("links = %d, want 1 (receiver 3 unreachable)", l)
	}
}

func TestScalingCurveMonotone(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(1)), plrg.Params{N: 2000, Beta: 2.2})
	curve := ScalingCurve(g, 0, 300, 6, rand.New(rand.NewSource(2)))
	if curve.Len() < 5 {
		t.Fatalf("points = %d", curve.Len())
	}
	for i := 1; i < curve.Len(); i++ {
		if curve.Points[i].Y < curve.Points[i-1].Y {
			t.Fatalf("tree size decreased at %v", curve.Points[i].X)
		}
	}
}

func TestChuangSirbuExponentOnExpandingGraph(t *testing.T) {
	// Phillips et al.: exponentially expanding graphs approximately obey
	// L(m) ∝ m^0.8; accept a generous band.
	g := plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 4000, Beta: 2.2})
	curve := ScalingCurve(g, 0, 800, 8, rand.New(rand.NewSource(4)))
	k := ChuangSirbuExponent(curve)
	if k < 0.6 || k > 0.95 {
		t.Fatalf("Chuang-Sirbu exponent = %.2f, want ~0.8", k)
	}
}

func TestStarExponentIsOne(t *testing.T) {
	// In a star every receiver adds one link: L(m) = m exactly.
	b := graph.NewBuilder(1500)
	for i := int32(1); i < 1500; i++ {
		b.AddEdge(0, i)
	}
	curve := ScalingCurve(b.Graph(), 0, 1000, 4, rand.New(rand.NewSource(5)))
	k := ChuangSirbuExponent(curve)
	if math.Abs(k-1) > 0.05 {
		t.Fatalf("star exponent = %.2f, want 1", k)
	}
}

func TestEfficiencyBelowOneAndFalling(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(6)), plrg.Params{N: 2000, Beta: 2.2})
	curve := ScalingCurve(g, 0, 400, 6, rand.New(rand.NewSource(7)))
	apl := metrics.AveragePathLength(g, 32)
	eff, err := Efficiency(curve, apl)
	if err != nil {
		t.Fatal(err)
	}
	last := eff.Points[eff.Len()-1]
	first := eff.Points[0]
	if last.Y >= first.Y {
		t.Fatalf("efficiency should fall with receivers: %v -> %v", first.Y, last.Y)
	}
	if last.Y >= 1 {
		t.Fatalf("multicast should beat unicast at %v receivers: ratio %v", last.X, last.Y)
	}
}

func TestEfficiencyBadInput(t *testing.T) {
	if _, err := Efficiency(stats.Series{}, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestStateDistributionStar(t *testing.T) {
	// Star source at hub: each receiver adds one child at the hub.
	b := graph.NewBuilder(8)
	for i := int32(1); i < 8; i++ {
		b.AddEdge(0, i)
	}
	g := b.Graph()
	state := StateDistribution(g, 0, []int32{1, 2, 3})
	if state[0] != 3 {
		t.Fatalf("hub state = %d, want 3", state[0])
	}
	for _, leaf := range []int32{1, 2, 3} {
		if state[leaf] != 0 {
			t.Fatalf("leaf %d state = %d, want 0", leaf, state[leaf])
		}
	}
	if len(state) != 4 {
		t.Fatalf("on-tree routers = %d, want 4", len(state))
	}
}

func TestStateDistributionChain(t *testing.T) {
	g := canonical.Linear(6)
	state := StateDistribution(g, 0, []int32{5})
	// Every router along the chain holds one child except the receiver.
	for v := int32(0); v < 5; v++ {
		if state[v] != 1 {
			t.Fatalf("router %d state = %d, want 1", v, state[v])
		}
	}
	if state[5] != 0 {
		t.Fatalf("receiver state = %d", state[5])
	}
}

func TestStateConcentrationHubVsChain(t *testing.T) {
	// Wong-Katz: hub topologies concentrate forwarding state.
	b := graph.NewBuilder(40)
	for i := int32(1); i < 40; i++ {
		b.AddEdge(0, i)
	}
	star := b.Graph()
	receivers := make([]int32, 30)
	for i := range receivers {
		receivers[i] = int32(i + 1)
	}
	starConc := StateConcentration(StateDistribution(star, 0, receivers))
	chain := canonical.Linear(40)
	chainRecv := []int32{39}
	chainConc := StateConcentration(StateDistribution(chain, 0, chainRecv))
	if starConc <= chainConc {
		t.Fatalf("star concentration %v should exceed chain %v", starConc, chainConc)
	}
}

func TestStateConcentrationEmpty(t *testing.T) {
	if c := StateConcentration(nil); c != 0 {
		t.Fatalf("empty concentration = %v", c)
	}
	if c := StateConcentration(map[int32]int{0: 0}); c != 0 {
		t.Fatalf("zero-state concentration = %v", c)
	}
}
