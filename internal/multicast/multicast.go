// Package multicast implements the multicast-tree analysis of Phillips,
// Shenker and Tangmunarunkit ("Scaling of Multicast Trees", SIGCOMM 1999),
// the work the paper's expansion metric descends from: the number of links
// in a shortest-path multicast tree as a function of the receiver-set size,
// and the Chuang–Sirbu scaling-law exponent L(m) ∝ ū·m^k (k ≈ 0.8 on
// Internet-like graphs). Phillips et al. showed the law holds approximately
// on graphs whose neighborhoods grow exponentially — precisely the
// high-expansion topologies of the paper's Figure 2.
package multicast

import (
	"fmt"
	"math/rand"
	"sort"

	"topocmp/internal/graph"
	"topocmp/internal/rng"
	"topocmp/internal/stats"
)

// TreeLinks returns the number of links in the shortest-path tree from
// source to the receiver set: the union of the BFS-tree paths from the
// source to each receiver. Unreachable receivers are ignored.
func TreeLinks(g *graph.Graph, source int32, receivers []int32) int {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[source] = source
	queue := []int32{source}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	inTree := make([]bool, n)
	inTree[source] = true
	links := 0
	for _, r := range receivers {
		if parent[r] == -1 {
			continue
		}
		for v := r; !inTree[v]; v = parent[v] {
			inTree[v] = true
			links++
		}
	}
	return links
}

// ScalingPoint is one sample of the multicast scaling curve.
type ScalingPoint struct {
	Receivers int
	AvgLinks  float64
}

// ScalingCurve estimates E[L(m)] for receiver-set sizes m spaced
// geometrically up to maxReceivers, averaging over trials random
// receiver sets per size (receivers drawn uniformly, excluding the source).
func ScalingCurve(g *graph.Graph, source int32, maxReceivers, trials int, r *rand.Rand) stats.Series {
	if r == nil {
		r = rand.New(rand.NewSource(1))
	}
	if trials <= 0 {
		trials = 8
	}
	n := g.NumNodes()
	if maxReceivers <= 0 || maxReceivers >= n {
		maxReceivers = n - 1
	}
	s := stats.Series{Name: "multicast"}
	for m := 1; m <= maxReceivers; m = nextSize(m) {
		total := 0.0
		for t := 0; t < trials; t++ {
			receivers := sampleReceivers(r, n, source, m)
			total += float64(TreeLinks(g, source, receivers))
		}
		s.Add(float64(m), total/float64(trials))
	}
	return s
}

func nextSize(m int) int {
	next := m * 3 / 2
	if next <= m {
		next = m + 1
	}
	return next
}

func sampleReceivers(r *rand.Rand, n int, source int32, m int) []int32 {
	picked := rng.SampleInts(r, n, m+1)
	out := make([]int32, 0, m)
	for _, v := range picked {
		if int32(v) != source && len(out) < m {
			out = append(out, int32(v))
		}
	}
	return out
}

// ChuangSirbuExponent fits L(m) = c·m^k over the scaling curve and returns
// k. Internet-like (high-expansion) topologies give k ≈ 0.8.
func ChuangSirbuExponent(curve stats.Series) float64 {
	return stats.LogLogFit(curve.Points).Slope
}

// Efficiency returns the multicast efficiency curve: the ratio of multicast
// tree links to the links that m separate unicast paths would use
// (m × average path length). Values well below 1 quantify multicast's
// advantage (Chalmers–Almeroth).
func Efficiency(curve stats.Series, avgPathLen float64) (stats.Series, error) {
	if avgPathLen <= 0 {
		return stats.Series{}, fmt.Errorf("multicast: avgPathLen must be positive")
	}
	out := stats.Series{Name: "efficiency"}
	for _, p := range curve.Points {
		out.Add(p.X, p.Y/(p.X*avgPathLen))
	}
	return out, nil
}

// StateDistribution returns, for the shortest-path multicast tree from
// source to the receivers, the forwarding-state burden per on-tree router:
// its number of tree children (0 for pure leaves). Wong and Katz ("An
// Analysis of Multicast Forwarding State Scalability", ICNP 2000) — cited
// by the paper as evidence topology shapes protocol cost — found this
// distribution differs qualitatively across topologies.
func StateDistribution(g *graph.Graph, source int32, receivers []int32) map[int32]int {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[source] = source
	queue := []int32{source}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	state := map[int32]int{}
	inTree := make([]bool, n)
	inTree[source] = true
	state[source] = 0
	for _, rcv := range receivers {
		if parent[rcv] == -1 {
			continue
		}
		for v := rcv; !inTree[v]; v = parent[v] {
			inTree[v] = true
			if _, ok := state[v]; !ok {
				state[v] = 0
			}
			state[parent[v]]++
		}
	}
	return state
}

// StateConcentration summarizes a state distribution: the fraction of all
// forwarding state held by the busiest tenth of on-tree routers. Hub-heavy
// topologies concentrate state; meshes spread it.
func StateConcentration(state map[int32]int) float64 {
	if len(state) == 0 {
		return 0
	}
	loads := make([]int, 0, len(state))
	total := 0
	for _, s := range state {
		loads = append(loads, s)
		total += s
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	top := len(loads) / 10
	if top < 1 {
		top = 1
	}
	sum := 0
	for _, s := range loads[:top] {
		sum += s
	}
	return float64(sum) / float64(total)
}
