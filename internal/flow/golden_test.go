package flow

import (
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
)

// TestMaxFlowGolden pins exact flow values on fixed seeded graphs, guarding
// the Reset/CSR solver rewrite: max-flow values are invariants of the
// graph, so any drift here is a solver bug, not a tolerable reordering.
func TestMaxFlowGolden(t *testing.T) {
	mesh := canonical.Mesh(20, 20)
	p := plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 600, Beta: 2.246})

	if f := EdgeDisjointPaths(mesh, 0, 399); f != 2 {
		t.Errorf("mesh corner flow = %d, want 2", f)
	}
	if f := EdgeDisjointPaths(p, 0, int32(p.NumNodes()-1)); f != 1 {
		t.Errorf("plrg end-to-end flow = %d, want 1", f)
	}
	nw := NewNetwork(p)
	sum := 0
	for v := int32(1); v < 64; v++ {
		sum += nw.MaxFlow(0, v)
	}
	if sum != 81 {
		t.Errorf("plrg 64-target flow sum = %d, want 81", sum)
	}
}

// TestResetReuseMatchesFresh drives one solver through graphs of different
// sizes via Reset and checks every value against a throwaway network, so
// recycled arcs/CSR/scratch can never leak state between graphs.
func TestResetReuseMatchesFresh(t *testing.T) {
	graphs := []*graph.Graph{
		canonical.Mesh(12, 12),
		canonical.Complete(9),
		canonical.Linear(5),
		canonical.Random(rand.New(rand.NewSource(4)), 150, 0.05),
		canonical.Mesh(12, 12),
	}
	var nw Network
	for round := 0; round < 2; round++ {
		for gi, g := range graphs {
			nw.Reset(g)
			n := int32(g.NumNodes())
			for _, tgt := range []int32{n - 1, n / 2, 1} {
				want := EdgeDisjointPaths(g, 0, tgt)
				if got := nw.MaxFlow(0, tgt); got != want {
					t.Fatalf("round %d graph %d target %d: reused flow %d != fresh %d",
						round, gi, tgt, got, want)
				}
			}
		}
	}
}
