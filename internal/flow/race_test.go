package flow_test

import (
	"math/rand"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/metrics"
)

// TestSurfaceMaxFlowRaceShort drives the pooled Dinic networks from a
// four-worker ball engine — the tier-2 race target for this package. Under
// the race detector this catches any sharing between per-worker solvers;
// the parallel series must also stay bit-identical to sequential.
func TestSurfaceMaxFlowRaceShort(t *testing.T) {
	g := canonical.Random(rand.New(rand.NewSource(22)), 260, 0.03)
	cfg := func() ball.Config {
		return ball.Config{MaxSources: 8, MaxBallSize: 200, Rand: rand.New(rand.NewSource(5))}
	}
	seq := metrics.SurfaceMaxFlowCurveWith(ball.NewEngine(g, 1), cfg(), 4, 7)
	par := metrics.SurfaceMaxFlowCurveWith(ball.NewEngine(g, 4), cfg(), 4, 7)
	if len(seq.Points) == 0 {
		t.Fatal("empty surface max-flow series")
	}
	if len(par.Points) != len(seq.Points) {
		t.Fatalf("parallel series has %d points, sequential %d", len(par.Points), len(seq.Points))
	}
	for i := range seq.Points {
		if par.Points[i] != seq.Points[i] {
			t.Fatalf("point %d: parallel %v != sequential %v", i, par.Points[i], seq.Points[i])
		}
	}
}
