package flow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/graph"
)

func TestPathFlowIsOne(t *testing.T) {
	g := canonical.Linear(10)
	if f := EdgeDisjointPaths(g, 0, 9); f != 1 {
		t.Fatalf("path flow = %d, want 1", f)
	}
}

func TestCycleFlowIsTwo(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddEdge(int32(i), int32((i+1)%6))
	}
	if f := EdgeDisjointPaths(b.Graph(), 0, 3); f != 2 {
		t.Fatalf("cycle flow = %d, want 2", f)
	}
}

func TestCompleteFlow(t *testing.T) {
	g := canonical.Complete(7)
	// K7: 6 edge-disjoint paths between any pair (degree bound).
	if f := EdgeDisjointPaths(g, 0, 6); f != 6 {
		t.Fatalf("K7 flow = %d, want 6", f)
	}
}

func TestMeshFlow(t *testing.T) {
	g := canonical.Mesh(5, 5)
	// Opposite corners of a grid have 2 edge-disjoint paths (corner degree).
	if f := EdgeDisjointPaths(g, 0, 24); f != 2 {
		t.Fatalf("mesh corner flow = %d, want 2", f)
	}
	// Center to corner also bounded by corner degree 2.
	if f := EdgeDisjointPaths(g, 12, 0); f != 2 {
		t.Fatalf("mesh center-corner flow = %d, want 2", f)
	}
}

func TestDisconnectedFlowZero(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if f := EdgeDisjointPaths(b.Graph(), 0, 3); f != 0 {
		t.Fatalf("disconnected flow = %d, want 0", f)
	}
}

func TestSelfFlowZero(t *testing.T) {
	if f := EdgeDisjointPaths(canonical.Complete(4), 2, 2); f != 0 {
		t.Fatalf("self flow = %d", f)
	}
}

func TestNetworkReuse(t *testing.T) {
	g := canonical.Complete(6)
	nw := NewNetwork(g)
	for i := 0; i < 3; i++ {
		if f := nw.MaxFlow(0, 5); f != 5 {
			t.Fatalf("iteration %d: flow = %d, want 5", i, f)
		}
	}
}

// Property: flow is bounded by min(deg(s), deg(t)) and is at least 1 when
// connected; and it is symmetric.
func TestFlowBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(30)
		for i := 1; i < 30; i++ {
			b.AddEdge(int32(i), int32(r.Intn(i)))
		}
		for i := 0; i < 30; i++ {
			u, v := int32(r.Intn(30)), int32(r.Intn(30))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Graph()
		nw := NewNetwork(g)
		s, tt := int32(0), int32(29)
		fl := nw.MaxFlow(s, tt)
		min := g.Degree(s)
		if d := g.Degree(tt); d < min {
			min = d
		}
		if fl < 1 || fl > min {
			return false
		}
		return nw.MaxFlow(tt, s) == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing any fl edge-disjoint-path bound: flow equals min cut —
// verify against a brute-force edge cut on tiny graphs.
func TestFlowEqualsMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 7
		b := graph.NewBuilder(n)
		for i := 1; i < n; i++ {
			b.AddEdge(int32(i), int32(r.Intn(i)))
		}
		for i := 0; i < 4; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Graph()
		fl := EdgeDisjointPaths(g, 0, int32(n-1))
		// Brute force: try all edge subsets of size < fl; none may
		// disconnect 0 from n-1 (Menger).
		edges := g.Edges()
		m := len(edges)
		if m > 12 {
			return true // keep brute force tractable
		}
		for mask := 0; mask < 1<<m; mask++ {
			if popcount(mask) >= fl {
				continue
			}
			nb := graph.NewBuilder(n)
			for i, e := range edges {
				if mask&(1<<i) == 0 {
					nb.AddEdge(e.U, e.V)
				}
			}
			dist, _ := nb.Graph().BFS(0)
			if dist[n-1] == graph.Unreached {
				return false // cut smaller than flow: contradiction
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}
