// Package flow implements maximum flow on unit-capacity undirected graphs
// with Dinic's algorithm. The paper's footnote 22 mentions computing "the
// expected max-flow between the center of a ball of size n and any node on
// the surface of the ball" among the extra metrics that corroborated its
// findings; internal/metrics builds that curve on top of this package. By
// Menger's theorem the unit-capacity max flow equals the number of
// edge-disjoint paths, so this doubles as an edge-connectivity probe.
package flow

import (
	"topocmp/internal/graph"
)

// arc is one direction of an undirected unit-capacity edge; arcs are stored
// in pairs so arc i's reverse is i^1.
type arc struct {
	to  int32
	cap int8
}

// Network is a reusable Dinic solver. The zero value is empty; Reset loads
// a graph into it, recycling every internal buffer (arcs, the head CSR, the
// level/iter/queue scratch), so one solver can sweep the surface samples of
// thousands of ball subgraphs without per-ball allocation. A Network is not
// safe for concurrent use; give each worker its own (the ball engine pools
// one per worker).
type Network struct {
	n    int
	arcs []arc
	// hoff/hadj form the per-node arc-index CSR: node v's outgoing arcs
	// are hadj[hoff[v]:hoff[v+1]].
	hoff  []int32
	hadj  []int32
	level []int32
	iter  []int32 // per-node cursor into hadj, absolute positions
	queue []int32
}

// NewNetwork builds a unit-capacity flow network from an undirected graph.
func NewNetwork(g *graph.Graph) *Network {
	nw := &Network{}
	nw.Reset(g)
	return nw
}

// Reset loads g into the network, replacing whatever graph it previously
// held. Buffers are reused; only growth beyond the high-water mark
// allocates. Arcs are laid out in the same order NewNetwork has always
// produced: undirected edges in (U,V) order, each contributing the forward
// arc to U's list and the reverse arc to V's list.
func (nw *Network) Reset(g *graph.Graph) {
	n := g.NumNodes()
	m2 := 2 * g.NumEdges()
	nw.n = n
	nw.arcs = growArc(nw.arcs, m2)
	nw.hoff = grow32(nw.hoff, n+1)
	nw.hadj = grow32(nw.hadj, m2)
	nw.level = grow32(nw.level, n)
	nw.iter = grow32(nw.iter, n)
	off := int32(0)
	for v := int32(0); v < int32(n); v++ {
		nw.hoff[v] = off
		off += int32(g.Degree(v))
	}
	nw.hoff[n] = off
	// iter doubles as the CSR fill cursor during the build.
	copy(nw.iter, nw.hoff[:n])
	na := int32(0)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				// Undirected unit edge: capacity 1 in each direction.
				nw.arcs[na] = arc{to: v, cap: 1}
				nw.arcs[na+1] = arc{to: u, cap: 1}
				nw.hadj[nw.iter[u]] = na
				nw.iter[u]++
				nw.hadj[nw.iter[v]] = na + 1
				nw.iter[v]++
				na += 2
			}
		}
	}
}

// reset restores all arc capacities to 1.
func (nw *Network) reset() {
	for i := range nw.arcs {
		nw.arcs[i].cap = 1
	}
}

// MaxFlow computes the maximum unit-capacity flow (= number of
// edge-disjoint paths) from s to t. The network is reusable: capacities are
// reset on each call.
func (nw *Network) MaxFlow(s, t int32) int {
	if s == t {
		return 0
	}
	nw.reset()
	total := 0
	for nw.bfs(s, t) {
		copy(nw.iter, nw.hoff[:nw.n])
		for {
			f := nw.dfs(s, t)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func (nw *Network) bfs(s, t int32) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	nw.queue = append(nw.queue[:0], s)
	nw.level[s] = 0
	for head := 0; head < len(nw.queue); head++ {
		u := nw.queue[head]
		for _, ai := range nw.hadj[nw.hoff[u]:nw.hoff[u+1]] {
			a := nw.arcs[ai]
			if a.cap > 0 && nw.level[a.to] == -1 {
				nw.level[a.to] = nw.level[u] + 1
				nw.queue = append(nw.queue, a.to)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfs(u, t int32) int {
	if u == t {
		return 1
	}
	for ; nw.iter[u] < nw.hoff[u+1]; nw.iter[u]++ {
		ai := nw.hadj[nw.iter[u]]
		a := &nw.arcs[ai]
		if a.cap > 0 && nw.level[a.to] == nw.level[u]+1 {
			if nw.dfs(a.to, t) > 0 {
				a.cap--
				nw.arcs[ai^1].cap++
				return 1
			}
		}
	}
	return 0
}

// EdgeDisjointPaths is a convenience wrapper building a throwaway network.
func EdgeDisjointPaths(g *graph.Graph, s, t int32) int {
	return NewNetwork(g).MaxFlow(s, t)
}

func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growArc(buf []arc, n int) []arc {
	if cap(buf) < n {
		return make([]arc, n)
	}
	return buf[:n]
}
