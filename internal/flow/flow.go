// Package flow implements maximum flow on unit-capacity undirected graphs
// with Dinic's algorithm. The paper's footnote 22 mentions computing "the
// expected max-flow between the center of a ball of size n and any node on
// the surface of the ball" among the extra metrics that corroborated its
// findings; internal/metrics builds that curve on top of this package. By
// Menger's theorem the unit-capacity max flow equals the number of
// edge-disjoint paths, so this doubles as an edge-connectivity probe.
package flow

import (
	"topocmp/internal/graph"
)

// arc is one direction of an undirected unit-capacity edge; arcs are stored
// in pairs so arc i's reverse is i^1.
type arc struct {
	to  int32
	cap int8
}

// Network is a reusable Dinic solver over a fixed graph.
type Network struct {
	n     int
	arcs  []arc
	head  [][]int32 // arc indices per node
	level []int32
	iter  []int
}

// NewNetwork builds a unit-capacity flow network from an undirected graph.
func NewNetwork(g *graph.Graph) *Network {
	n := g.NumNodes()
	nw := &Network{
		n:     n,
		head:  make([][]int32, n),
		level: make([]int32, n),
		iter:  make([]int, n),
	}
	for _, e := range g.Edges() {
		// Undirected unit edge: capacity 1 in each direction.
		nw.addEdge(e.U, e.V)
	}
	return nw
}

func (nw *Network) addEdge(u, v int32) {
	nw.head[u] = append(nw.head[u], int32(len(nw.arcs)))
	nw.arcs = append(nw.arcs, arc{to: v, cap: 1})
	nw.head[v] = append(nw.head[v], int32(len(nw.arcs)))
	nw.arcs = append(nw.arcs, arc{to: u, cap: 1})
}

// reset restores all arc capacities to 1.
func (nw *Network) reset() {
	for i := range nw.arcs {
		nw.arcs[i].cap = 1
	}
}

// MaxFlow computes the maximum unit-capacity flow (= number of
// edge-disjoint paths) from s to t. The network is reusable: capacities are
// reset on each call.
func (nw *Network) MaxFlow(s, t int32) int {
	if s == t {
		return 0
	}
	nw.reset()
	total := 0
	for nw.bfs(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			f := nw.dfs(s, t)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func (nw *Network) bfs(s, t int32) bool {
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := []int32{s}
	nw.level[s] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, ai := range nw.head[u] {
			a := nw.arcs[ai]
			if a.cap > 0 && nw.level[a.to] == -1 {
				nw.level[a.to] = nw.level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfs(u, t int32) int {
	if u == t {
		return 1
	}
	for ; nw.iter[u] < len(nw.head[u]); nw.iter[u]++ {
		ai := nw.head[u][nw.iter[u]]
		a := &nw.arcs[ai]
		if a.cap > 0 && nw.level[a.to] == nw.level[u]+1 {
			if nw.dfs(a.to, t) > 0 {
				a.cap--
				nw.arcs[ai^1].cap++
				return 1
			}
		}
	}
	return 0
}

// EdgeDisjointPaths is a convenience wrapper building a throwaway network.
func EdgeDisjointPaths(g *graph.Graph, s, t int32) int {
	return NewNetwork(g).MaxFlow(s, t)
}
