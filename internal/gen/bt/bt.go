// Package bt implements the Bu–Towsley GLP (Generalized Linear Preference)
// topology generator ("On Distinguishing Between Internet Power-Law
// Generators", INFOCOM 2002), the "BT" generator of the paper's Appendix D.
//
// GLP grows a graph incrementally. Each step either (with probability P)
// adds M new links between existing nodes or (with probability 1-P) adds a
// new node with M links. Endpoints are chosen with generalized linear
// preference: Π(v) ∝ degree(v) − BetaGLP, where BetaGLP < 1 tunes how
// strongly high-degree nodes attract links (more negative is closer to
// uniform; closer to 1 concentrates on hubs and raises clustering, the
// property Bu and Towsley match against the AS graph).
package bt

import (
	"fmt"
	"math/rand"
	"slices"

	"topocmp/internal/graph"
)

// Params configures the generator. Bu and Towsley report the Internet is
// matched well around P≈0.47, BetaGLP≈0.64, M=1..2.
type Params struct {
	N       int     // final node count
	M       int     // links per step
	P       float64 // probability a step adds links instead of a node
	BetaGLP float64 // preference shift, < 1
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("bt: M = %d < 1", p.M)
	}
	if p.N < p.M+2 {
		return fmt.Errorf("bt: N = %d too small for M = %d", p.N, p.M)
	}
	if p.P < 0 || p.P >= 1 {
		return fmt.Errorf("bt: P = %v outside [0,1)", p.P)
	}
	if p.BetaGLP >= 1 {
		return fmt.Errorf("bt: BetaGLP = %v must be < 1", p.BetaGLP)
	}
	return nil
}

// Generate grows a GLP graph and returns its largest connected component.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Streamed build: edges append to a packed log and deduplicate at
	// freeze. Duplicate-edge rejection is a per-round local seen-set only;
	// a re-draw of an edge added in an earlier round is accepted (deg then
	// tracks multigraph degree, so preference mass follows the draw) and
	// collapses at freeze — no mid-build adjacency map, which is what lets
	// GLP build through the streamed CSR path at million-node scale.
	b := graph.NewStreamBuilder(p.N)
	b.Reserve(p.M * p.N)
	deg := make([]float64, p.N)
	// Seed: a small chain of M+1 nodes.
	m0 := p.M + 1
	for i := 0; i+1 < m0; i++ {
		b.AddEdge(int32(i), int32(i+1))
		deg[i]++
		deg[i+1]++
	}
	count := m0

	// pick returns a node among [0, limit) with probability proportional to
	// deg(v) - BetaGLP via linear scan over the shifted mass. All nodes
	// below limit have degree >= 1, so every weight is positive for
	// BetaGLP < 1.
	pick := func(limit int) int32 {
		total := 0.0
		for v := 0; v < limit; v++ {
			total += deg[v] - p.BetaGLP
		}
		x := r.Float64() * total
		acc := 0.0
		for v := 0; v < limit; v++ {
			acc += deg[v] - p.BetaGLP
			if x < acc {
				return int32(v)
			}
		}
		return int32(limit - 1)
	}

	// Per-round duplicate marks: link rounds track normalized endpoint
	// pairs, node rounds just the neighbors drawn for the new node. M is
	// small (1–2 at the paper's parameters), so linear scans beat any map.
	roundPairs := make([]uint64, 0, p.M)
	roundSeen := make([]int32, 0, p.M)
	pairKey := func(u, v int32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(uint32(u))<<32 | uint64(uint32(v))
	}
	for count < p.N {
		if r.Float64() < p.P {
			// Add M links between existing preferential endpoints.
			roundPairs = roundPairs[:0]
			for i := 0; i < p.M; i++ {
				for attempt := 0; attempt < 32; attempt++ {
					u, v := pick(count), pick(count)
					if u != v && !slices.Contains(roundPairs, pairKey(u, v)) {
						b.AddEdge(u, v)
						deg[u]++
						deg[v]++
						roundPairs = append(roundPairs, pairKey(u, v))
						break
					}
				}
			}
		} else {
			u := int32(count)
			roundSeen = roundSeen[:0]
			added := 0
			for attempt := 0; added < p.M && attempt < 32*p.M; attempt++ {
				v := pick(count)
				if v != u && !slices.Contains(roundSeen, v) {
					b.AddEdge(u, v)
					deg[u]++
					deg[v]++
					roundSeen = append(roundSeen, v)
					added++
				}
			}
			count++
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
