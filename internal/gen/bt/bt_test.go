package bt

import (
	"math/rand"
	"testing"

	"topocmp/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 100, M: 0},
		{N: 2, M: 3},
		{N: 100, M: 1, P: 1.0},
		{N: 100, M: 1, P: -0.2},
		{N: 100, M: 1, BetaGLP: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerate(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 3000, M: 1, P: 0.47, BetaGLP: 0.64})
	if g.NumNodes() < 2500 {
		t.Fatalf("largest component = %d nodes", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("component must be connected")
	}
	if g.MaxDegree() < 30 {
		t.Fatalf("max degree = %d; GLP should grow hubs", g.MaxDegree())
	}
}

func TestHeavyTail(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(2)), Params{N: 6000, M: 1, P: 0.4, BetaGLP: 0.6})
	ccdf := stats.CCDF(g.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	if fit.Slope > -0.8 {
		t.Fatalf("CCDF slope = %.2f; tail too flat for GLP", fit.Slope)
	}
}

func TestLinkStepsRaiseDensity(t *testing.T) {
	sparse := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2000, M: 1, P: 0.1, BetaGLP: 0.5})
	dense := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2000, M: 1, P: 0.6, BetaGLP: 0.5})
	if dense.AvgDegree() <= sparse.AvgDegree() {
		t.Fatalf("higher P should raise density: %.2f vs %.2f",
			dense.AvgDegree(), sparse.AvgDegree())
	}
}

func TestBetaGLPConcentratesHubs(t *testing.T) {
	uniformish := MustGenerate(rand.New(rand.NewSource(4)), Params{N: 3000, M: 1, P: 0.3, BetaGLP: -5})
	hubby := MustGenerate(rand.New(rand.NewSource(4)), Params{N: 3000, M: 1, P: 0.3, BetaGLP: 0.9})
	if hubby.MaxDegree() <= uniformish.MaxDegree() {
		t.Fatalf("BetaGLP near 1 should concentrate: %d vs %d",
			hubby.MaxDegree(), uniformish.MaxDegree())
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{N: 1500, M: 1, P: 0.47, BetaGLP: 0.64}
	a := MustGenerate(rand.New(rand.NewSource(5)), p)
	b := MustGenerate(rand.New(rand.NewSource(5)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}
