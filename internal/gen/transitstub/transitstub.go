// Package transitstub reimplements the GT-ITM Transit-Stub structural
// topology generator (Calvert, Doar, Zegura, "Modelling Internet Topology",
// IEEE Communications 1997). Transit-Stub builds a two-level hierarchy:
//
//  1. A connected random graph of T transit domains; each transit domain is
//     itself a connected random graph of NT routers.
//  2. Attached to each transit node are S stub domains, each a connected
//     random graph of NS routers, joined to their transit node by one edge.
//  3. ET extra transit–stub and ES extra stub–stub edges are added between
//     uniformly chosen endpoints.
//
// The parameter vocabulary matches the columns of the paper's Figure 11:
// (S, ET, ES, T, PT-domain edge prob, NT, PT-node edge prob, NS, PS edge
// prob).
package transitstub

import (
	"fmt"
	"math/rand"

	"topocmp/internal/graph"
)

// Params mirrors GT-ITM's transit-stub parameter set as listed in the
// paper's Appendix C. The paper's headline instance (Figure 1) is
// {StubsPerTransit: 3, ExtraTS: 0, ExtraSS: 0, Domains: 6, PDomain: 0.55,
// TransitNodes: 6, PTransit: 0.32, StubNodes: 9, PStub: 0.248}, a 1008-node
// network with average degree 2.78.
type Params struct {
	StubsPerTransit int     // stub domains attached to each transit node
	ExtraTS         int     // extra random transit-to-stub edges
	ExtraSS         int     // extra random stub-to-stub edges
	Domains         int     // number of transit domains
	PDomain         float64 // edge probability between transit domains
	TransitNodes    int     // nodes per transit domain
	PTransit        float64 // edge probability within a transit domain
	StubNodes       int     // nodes per stub domain
	PStub           float64 // edge probability within a stub domain
}

// Paper returns the headline Figure 1 parameterization.
func Paper() Params {
	return Params{
		StubsPerTransit: 3, ExtraTS: 0, ExtraSS: 0,
		Domains: 6, PDomain: 0.55,
		TransitNodes: 6, PTransit: 0.32,
		StubNodes: 9, PStub: 0.248,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Domains < 1 || p.TransitNodes < 1 || p.StubNodes < 1 {
		return fmt.Errorf("transitstub: counts must be positive: %+v", p)
	}
	if p.StubsPerTransit < 0 || p.ExtraTS < 0 || p.ExtraSS < 0 {
		return fmt.Errorf("transitstub: negative edge counts: %+v", p)
	}
	for _, pr := range []float64{p.PDomain, p.PTransit, p.PStub} {
		if pr < 0 || pr > 1 {
			return fmt.Errorf("transitstub: probability %v outside [0,1]", pr)
		}
	}
	return nil
}

// NumNodes returns the total router count the parameters produce:
// Domains*TransitNodes transit routers plus one stub domain of StubNodes per
// (transit node, stub slot) pair.
func (p Params) NumNodes() int {
	transit := p.Domains * p.TransitNodes
	return transit + transit*p.StubsPerTransit*p.StubNodes
}

// Generate builds a Transit-Stub topology. The result is always connected:
// like GT-ITM, each random subgraph is repaired into a connected graph by
// linking its components.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	b := graph.NewStreamBuilder(n)

	numTransit := p.Domains * p.TransitNodes
	transitOf := func(domain, node int) int32 { return int32(domain*p.TransitNodes + node) }

	// Stub domain s attached to transit node t occupies a contiguous block.
	stubBase := numTransit
	stubStart := func(t, s int) int {
		return stubBase + (t*p.StubsPerTransit+s)*p.StubNodes
	}

	// 1. Domain-level graph: one representative edge set among domains.
	// GT-ITM connects domains by a connected random graph; an inter-domain
	// edge links uniformly chosen routers of the two domains.
	domainEdges := connectedRandomPairs(r, p.Domains, p.PDomain)
	for _, e := range domainEdges {
		u := transitOf(e[0], r.Intn(p.TransitNodes))
		v := transitOf(e[1], r.Intn(p.TransitNodes))
		b.AddEdge(u, v)
	}

	// 2. Connected random graph inside each transit domain.
	for d := 0; d < p.Domains; d++ {
		for _, e := range connectedRandomPairs(r, p.TransitNodes, p.PTransit) {
			b.AddEdge(transitOf(d, e[0]), transitOf(d, e[1]))
		}
	}

	// 3. Stub domains: connected random graphs, one uplink to their transit
	// node.
	for t := 0; t < numTransit; t++ {
		for s := 0; s < p.StubsPerTransit; s++ {
			start := stubStart(t, s)
			for _, e := range connectedRandomPairs(r, p.StubNodes, p.PStub) {
				b.AddEdge(int32(start+e[0]), int32(start+e[1]))
			}
			b.AddEdge(int32(t), int32(start+r.Intn(p.StubNodes)))
		}
	}

	// 4. Extra transit-stub and stub-stub edges between uniform endpoints.
	numStubNodes := n - numTransit
	for i := 0; i < p.ExtraTS; i++ {
		u := int32(r.Intn(numTransit))
		v := int32(stubBase + r.Intn(numStubNodes))
		b.AddEdge(u, v)
	}
	for i := 0; i < p.ExtraSS; i++ {
		u := int32(stubBase + r.Intn(numStubNodes))
		v := int32(stubBase + r.Intn(numStubNodes))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Graph()
	if !g.IsConnected() {
		// The per-level repairs guarantee connectivity; this is a defensive
		// invariant check rather than an expected path.
		return nil, fmt.Errorf("transitstub: internal error: disconnected graph")
	}
	return g, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}

// connectedRandomPairs returns the edge set of a connected Erdős–Rényi-style
// random graph on n local vertices: each pair appears with probability prob,
// then components are joined with random extra edges (GT-ITM's repair).
func connectedRandomPairs(r *rand.Rand, n int, prob float64) [][2]int {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < prob {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	// Union-find repair.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		parent[find(e[0])] = find(e[1])
	}
	// Collect one representative per component, then chain random members.
	reps := map[int][]int{}
	for i := 0; i < n; i++ {
		root := find(i)
		reps[root] = append(reps[root], i)
	}
	if len(reps) > 1 {
		var comps [][]int
		for _, members := range reps {
			comps = append(comps, members)
		}
		// Deterministic order: sort by smallest member.
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				if comps[j][0] < comps[i][0] {
					comps[i], comps[j] = comps[j], comps[i]
				}
			}
		}
		for i := 1; i < len(comps); i++ {
			u := comps[i-1][r.Intn(len(comps[i-1]))]
			v := comps[i][r.Intn(len(comps[i]))]
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}
