package transitstub

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperInstance(t *testing.T) {
	// Figure 1: 1008 nodes, average degree 2.78.
	p := Paper()
	if p.NumNodes() != 1008 {
		t.Fatalf("NumNodes = %d, want 1008", p.NumNodes())
	}
	g := MustGenerate(rand.New(rand.NewSource(1)), p)
	if g.NumNodes() != 1008 {
		t.Fatalf("generated nodes = %d, want 1008", g.NumNodes())
	}
	if d := g.AvgDegree(); math.Abs(d-2.78) > 0.5 {
		t.Fatalf("avg degree = %.2f, want ~2.78", d)
	}
	if !g.IsConnected() {
		t.Fatal("transit-stub must be connected")
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Domains: 0, TransitNodes: 3, StubNodes: 3},
		{Domains: 2, TransitNodes: 0, StubNodes: 3},
		{Domains: 2, TransitNodes: 3, StubNodes: 3, PDomain: 1.5},
		{Domains: 2, TransitNodes: 3, StubNodes: 3, ExtraTS: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestHierarchyStructure(t *testing.T) {
	// Transit routers should have visibly higher average degree than stub
	// routers: that's the deliberate hierarchy of the generator.
	p := Paper()
	g := MustGenerate(rand.New(rand.NewSource(2)), p)
	numTransit := p.Domains * p.TransitNodes
	var transitDeg, stubDeg float64
	for v := 0; v < numTransit; v++ {
		transitDeg += float64(g.Degree(int32(v)))
	}
	transitDeg /= float64(numTransit)
	for v := numTransit; v < g.NumNodes(); v++ {
		stubDeg += float64(g.Degree(int32(v)))
	}
	stubDeg /= float64(g.NumNodes() - numTransit)
	if transitDeg <= stubDeg {
		t.Fatalf("transit avg degree %.2f should exceed stub avg degree %.2f",
			transitDeg, stubDeg)
	}
}

func TestExtraEdgesIncreaseDegree(t *testing.T) {
	base := Paper()
	rich := base
	rich.ExtraTS = 200
	rich.ExtraSS = 400
	g1 := MustGenerate(rand.New(rand.NewSource(3)), base)
	g2 := MustGenerate(rand.New(rand.NewSource(3)), rich)
	if g2.NumEdges() <= g1.NumEdges() {
		t.Fatalf("extra edges should add edges: %d vs %d", g2.NumEdges(), g1.NumEdges())
	}
}

// Property: every parameterization yields a connected graph on exactly
// NumNodes() nodes.
func TestConnectedProperty(t *testing.T) {
	f := func(seed int64, dRaw, tRaw, sRaw, spRaw uint8) bool {
		p := Params{
			StubsPerTransit: int(spRaw)%3 + 1,
			Domains:         int(dRaw)%4 + 1,
			TransitNodes:    int(tRaw)%5 + 1,
			StubNodes:       int(sRaw)%6 + 1,
			PDomain:         0.5, PTransit: 0.3, PStub: 0.3,
		}
		g, err := Generate(rand.New(rand.NewSource(seed)), p)
		if err != nil {
			return false
		}
		return g.NumNodes() == p.NumNodes() && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	p := Paper()
	a := MustGenerate(rand.New(rand.NewSource(5)), p)
	b := MustGenerate(rand.New(rand.NewSource(5)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}

func TestFigure11Parameterizations(t *testing.T) {
	// A few rows from Appendix C's table; generated sizes must match.
	cases := []struct {
		p         Params
		wantNodes int
	}{
		{Params{3, 5, 10, 6, 0.55, 6, 0.32, 9, 0.248}, 1008},
		{Params{1, 0, 0, 1, 0.5, 50, 0.05, 50, 0.05}, 2550},
		{Params{3, 8, 12, 10, 0.4, 15, 0.25, 12, 0.27}, 5550},
		{Params{1, 0, 0, 1, 0.2, 100, 0.05, 100, 0.05}, 10100},
	}
	for i, c := range cases {
		if got := c.p.NumNodes(); got != c.wantNodes {
			t.Fatalf("case %d: NumNodes = %d, want %d", i, got, c.wantNodes)
		}
		g := MustGenerate(rand.New(rand.NewSource(int64(i))), c.p)
		if g.NumNodes() != c.wantNodes || !g.IsConnected() {
			t.Fatalf("case %d: bad graph %d nodes connected=%v",
				i, g.NumNodes(), g.IsConnected())
		}
	}
}
