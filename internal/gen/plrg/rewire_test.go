package plrg

import (
	"math/rand"
	"sort"
	"testing"

	"topocmp/internal/graph"
)

func TestRewirePreservesDegreeSequence(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 1500, Beta: 2.2})
	rw := DegreePreservingRewire(rand.New(rand.NewSource(2)), g, 3)
	// The rewired graph (before component extraction) preserves degrees
	// exactly; after extraction the multiset of the surviving component's
	// degrees is a subset. Check the global invariants that must hold:
	if rw.MaxDegree() > g.MaxDegree() {
		t.Fatalf("rewire raised max degree %d -> %d", g.MaxDegree(), rw.MaxDegree())
	}
	if rw.NumNodes() < g.NumNodes()/2 {
		t.Fatalf("rewire lost too much: %d of %d nodes", rw.NumNodes(), g.NumNodes())
	}
}

func TestRewireExactDegreesOnDenseGraph(t *testing.T) {
	// A dense connected graph survives rewiring intact, so degrees must
	// match exactly.
	b := graph.NewBuilder(40)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if r.Float64() < 0.3 {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	g, _ := b.Graph().LargestComponent()
	rw := DegreePreservingRewire(rand.New(rand.NewSource(4)), g, 4)
	if rw.NumNodes() != g.NumNodes() {
		t.Fatalf("dense graph fragmented: %d of %d", rw.NumNodes(), g.NumNodes())
	}
	d1 := g.Degrees()
	d2 := rw.Degrees()
	sort.Ints(d1)
	sort.Ints(d2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("degree multiset changed at %d: %d vs %d", i, d1[i], d2[i])
		}
	}
}

func TestRewireActuallyRewires(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(5)), Params{N: 800, Beta: 2.2})
	rw := DegreePreservingRewire(rand.New(rand.NewSource(6)), g, 3)
	// Count surviving original edges; mixing should replace most.
	orig := map[[2]int32]bool{}
	for _, e := range g.Edges() {
		orig[[2]int32{e.U, e.V}] = true
	}
	same := 0
	for _, e := range rw.Edges() {
		if orig[[2]int32{e.U, e.V}] {
			same++
		}
	}
	if frac := float64(same) / float64(rw.NumEdges()); frac > 0.5 {
		t.Fatalf("%.2f of edges unchanged; not mixed", frac)
	}
}

func TestRewireTinyGraphNoop(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Graph()
	rw := DegreePreservingRewire(rand.New(rand.NewSource(7)), g, 2)
	if rw.NumEdges() != 1 {
		t.Fatalf("tiny graph changed: %d edges", rw.NumEdges())
	}
}
