// Package plrg implements the Power-Law Random Graph generator of Aiello,
// Chung and Lu ("A Random Graph Model for Massive Graphs", STOC 2000), the
// paper's representative degree-based generator, plus the alternative
// connectivity methods explored in the paper's Appendix D.1.
//
// PLRG assigns each of N nodes a degree drawn from a power law with
// exponent beta, makes v_i copies of node i, and matches copies uniformly
// at random. Self-loops and duplicate links are discarded and the largest
// connected component is returned, exactly as §3.1.2 describes.
package plrg

import (
	"fmt"
	"math/rand"
	"sort"

	"topocmp/internal/graph"
	"topocmp/internal/rng"
)

// Connectivity selects how assigned degrees are satisfied (Appendix D.1).
type Connectivity int

const (
	// CloneMatching is the classic PLRG rule: clone each node per its
	// degree, match clones uniformly at random.
	CloneMatching Connectivity = iota
	// UniformRandom repeatedly links two uniformly chosen nodes with
	// unsatisfied degree, ignoring how much degree remains.
	UniformRandom
	// ProportionalUnsatisfied links nodes chosen with probability
	// proportional to their remaining (unsatisfied) degree — equivalent in
	// distribution to clone matching but implemented without cloning.
	ProportionalUnsatisfied
	// Deterministic starts from the highest-degree node and connects it to
	// lower-degree nodes in decreasing degree order; Appendix D.1 shows this
	// destroys the PLRG's large-scale structure.
	Deterministic
)

// String implements fmt.Stringer for diagnostics.
func (c Connectivity) String() string {
	switch c {
	case CloneMatching:
		return "clone-matching"
	case UniformRandom:
		return "uniform"
	case ProportionalUnsatisfied:
		return "proportional-unsatisfied"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Connectivity(%d)", int(c))
	}
}

// Params configures the generator. The paper's headline instance is
// N=9230 after component extraction with beta=2.246 (Figure 1); pass
// N≈10000 and beta=2.246 to land near it.
type Params struct {
	N       int          // nodes before largest-component extraction
	Beta    float64      // power-law exponent (P(k) ∝ k^-Beta)
	MaxDeg  int          // degree cap; defaults to N-1
	Connect Connectivity // connectivity method; default CloneMatching
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("plrg: N = %d < 2", p.N)
	}
	if p.Beta <= 1 {
		return fmt.Errorf("plrg: Beta = %v must exceed 1", p.Beta)
	}
	if p.MaxDeg < 0 {
		return fmt.Errorf("plrg: negative MaxDeg %d", p.MaxDeg)
	}
	return nil
}

// Generate draws degrees from the power law and connects them with the
// configured method, returning the largest connected component.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxDeg := p.MaxDeg
	if maxDeg == 0 || maxDeg > p.N-1 {
		maxDeg = p.N - 1
	}
	degrees := rng.PowerLawDegrees(r, p.N, p.Beta, maxDeg)
	g := FromDegrees(r, degrees, p.Connect)
	return g, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}

// FromDegrees connects a fixed degree sequence with the given method and
// returns the largest connected component. This is also the primitive behind
// Reconnect (Appendix D.1's "modified B-A/Brite" experiment).
//
// Every method except UniformRandom streams its edges into a
// graph.StreamBuilder — they never query membership mid-build, and the
// streamed freeze produces the identical CSR at a fraction of the map
// builder's memory, which is what makes the million-node instances of the
// scale axis buildable. UniformRandom rejects already-present links, so it
// keeps the map-backed Builder for its HasEdge.
func FromDegrees(r *rand.Rand, degrees []int, method Connectivity) *graph.Graph {
	n := len(degrees)
	var g *graph.Graph
	if method == UniformRandom {
		b := graph.NewBuilder(n)
		uniformConnect(r, b, degrees)
		g = b.Graph()
	} else {
		total := 0
		for _, d := range degrees {
			total += d
		}
		b := graph.NewStreamBuilder(n)
		b.Reserve(total / 2) // clone matching adds exactly one edge per stub pair
		switch method {
		case CloneMatching:
			cloneMatch(r, b, degrees)
		case ProportionalUnsatisfied:
			proportionalConnect(r, b, degrees)
		case Deterministic:
			deterministicConnect(b, degrees)
		default:
			panic(fmt.Sprintf("plrg: unknown connectivity %d", method))
		}
		g = b.Graph()
	}
	lc, _ := g.LargestComponent()
	return lc
}

// Reconnect rewires an existing graph with the PLRG clone-matching method
// while keeping its exact degree sequence — the Appendix D.1 test that
// produced the "modified B-A" and "modified Brite" networks.
func Reconnect(r *rand.Rand, g *graph.Graph) *graph.Graph {
	return FromDegrees(r, g.Degrees(), CloneMatching)
}

func cloneMatch(r *rand.Rand, b graph.EdgeAdder, degrees []int) {
	total := 0
	for _, d := range degrees {
		total += d
	}
	copies := make([]int32, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			copies = append(copies, int32(v))
		}
	}
	rng.Shuffle(r, copies)
	// Pair adjacent copies: a uniform random perfect matching of the copy
	// multiset. A trailing odd copy stays unmatched.
	for i := 0; i+1 < len(copies); i += 2 {
		b.AddEdge(copies[i], copies[i+1])
	}
}

func uniformConnect(r *rand.Rand, b *graph.Builder, degrees []int) {
	remaining := append([]int(nil), degrees...)
	// Active list of nodes with unsatisfied degree.
	active := make([]int32, 0, len(degrees))
	for v, d := range remaining {
		if d > 0 {
			active = append(active, int32(v))
		}
	}
	// Each iteration picks two uniform distinct active nodes. Give up after
	// a bounded number of failed attempts so odd leftovers terminate.
	failures := 0
	for len(active) >= 2 && failures < 64 {
		i := r.Intn(len(active))
		j := r.Intn(len(active))
		if i == j {
			continue
		}
		u, v := active[i], active[j]
		if b.HasEdge(u, v) {
			failures++
			continue
		}
		failures = 0
		b.AddEdge(u, v)
		remaining[u]--
		remaining[v]--
		// Compact out satisfied nodes (order: remove higher index first).
		if i < j {
			i, j = j, i
			u, v = v, u
		}
		if remaining[u] == 0 {
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
		}
		if remaining[v] == 0 {
			active[j] = active[len(active)-1]
			active = active[:len(active)-1]
		}
	}
}

func proportionalConnect(r *rand.Rand, b graph.EdgeAdder, degrees []int) {
	// Sampling proportional to unsatisfied degree is exactly what clone
	// matching does; implement via the copy multiset but resample the
	// second endpoint if it equals the first, which slightly reduces
	// self-loop waste relative to plain matching.
	total := 0
	for _, d := range degrees {
		total += d
	}
	copies := make([]int32, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			copies = append(copies, int32(v))
		}
	}
	rng.Shuffle(r, copies)
	for len(copies) >= 2 {
		u := copies[len(copies)-1]
		copies = copies[:len(copies)-1]
		// Find a partner copy belonging to a different node; bounded scan.
		picked := -1
		for attempt := 0; attempt < 16; attempt++ {
			j := r.Intn(len(copies))
			if copies[j] != u {
				picked = j
				break
			}
		}
		if picked == -1 {
			continue
		}
		v := copies[picked]
		copies[picked] = copies[len(copies)-1]
		copies = copies[:len(copies)-1]
		b.AddEdge(u, v)
	}
}

func deterministicConnect(b graph.EdgeAdder, degrees []int) {
	type nd struct {
		id  int32
		rem int
	}
	nodes := make([]nd, len(degrees))
	for v, d := range degrees {
		nodes[v] = nd{int32(v), d}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].rem != nodes[j].rem {
			return nodes[i].rem > nodes[j].rem
		}
		return nodes[i].id < nodes[j].id
	})
	for i := range nodes {
		if nodes[i].rem <= 0 {
			continue
		}
		for j := i + 1; j < len(nodes) && nodes[i].rem > 0; j++ {
			if nodes[j].rem <= 0 {
				continue
			}
			b.AddEdge(nodes[i].id, nodes[j].id)
			nodes[i].rem--
			nodes[j].rem--
		}
	}
}
