package plrg

import (
	"math/rand"

	"topocmp/internal/graph"
)

// DegreePreservingRewire applies Maslov–Sneppen double-edge swaps: it
// repeatedly picks two edges (a,b) and (c,d) and rewires them to (a,d) and
// (c,b) when that creates no self-loop or duplicate, preserving every
// node's degree exactly while destroying all other structure. The paper's
// central thesis — that a power-law degree sequence alone induces the
// Internet's large-scale structure — predicts that rewiring a measured
// graph leaves expansion/resilience/distortion and the hierarchy class
// unchanged (while local properties like clustering wash out); the
// experiments package tests exactly that.
//
// swapsPerEdge rounds of |E| attempted swaps are made (2-3 suffices to
// mix). The graph stays connected only by luck; like the PLRG itself, the
// largest component is returned.
func DegreePreservingRewire(r *rand.Rand, g *graph.Graph, swapsPerEdge int) *graph.Graph {
	if swapsPerEdge < 1 {
		swapsPerEdge = 2
	}
	edges := g.Edges()
	m := len(edges)
	if m < 2 {
		return g
	}
	// Edge set for O(1) duplicate checks.
	key := func(u, v int32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(uint32(u))<<32 | uint64(uint32(v))
	}
	present := make(map[uint64]bool, m)
	for _, e := range edges {
		present[key(e.U, e.V)] = true
	}
	attempts := swapsPerEdge * m
	for i := 0; i < attempts; i++ {
		ei, ej := r.Intn(m), r.Intn(m)
		if ei == ej {
			continue
		}
		a, b := edges[ei].U, edges[ei].V
		c, d := edges[ej].U, edges[ej].V
		// Randomize orientation so both pairings are reachable.
		if r.Intn(2) == 0 {
			c, d = d, c
		}
		// Proposed: (a,d) and (c,b).
		if a == d || c == b {
			continue
		}
		if present[key(a, d)] || present[key(c, b)] {
			continue
		}
		delete(present, key(a, b))
		delete(present, key(c, d))
		present[key(a, d)] = true
		present[key(c, b)] = true
		edges[ei] = orient(a, d)
		edges[ej] = orient(c, b)
	}
	rewired := graph.FromEdges(g.NumNodes(), edges)
	lc, _ := rewired.LargestComponent()
	return lc
}

func orient(u, v int32) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}
