package plrg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topocmp/internal/stats"
)

func TestPaperInstanceShape(t *testing.T) {
	// Figure 1: PLRG 9230 nodes (largest component), avg degree 4.46,
	// beta = 2.246. Generate at N=10500 and check the component lands in the
	// right ballpark with a heavy-tailed degree distribution.
	g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 10500, Beta: 2.246})
	if g.NumNodes() < 6000 || g.NumNodes() > 10500 {
		t.Fatalf("largest component = %d nodes", g.NumNodes())
	}
	if d := g.AvgDegree(); d < 2.5 || d > 7 {
		t.Fatalf("avg degree = %.2f, want ~4.5", d)
	}
	if g.MaxDegree() < 50 {
		t.Fatalf("max degree = %d; tail too light for a power law", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Fatal("largest component must be connected")
	}
}

func TestDegreeDistributionIsPowerLaw(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(2)), Params{N: 20000, Beta: 2.2})
	ccdf := stats.CCDF(g.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	// CCDF of a beta power law decays with exponent ~ -(beta-1).
	if fit.Slope > -0.8 || fit.Slope < -2.2 {
		t.Fatalf("CCDF log-log slope = %.2f, want around -1.2", fit.Slope)
	}
	if fit.R2 < 0.85 {
		t.Fatalf("CCDF log-log R2 = %.2f; not power-law-like", fit.R2)
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 1, Beta: 2.2},
		{N: 100, Beta: 1.0},
		{N: 100, Beta: 2.2, MaxDeg: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestConnectivityVariantsProduceGraphs(t *testing.T) {
	for _, m := range []Connectivity{CloneMatching, UniformRandom, ProportionalUnsatisfied, Deterministic} {
		g := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2000, Beta: 2.3, Connect: m})
		if g.NumNodes() < 100 {
			t.Fatalf("%v: largest component only %d nodes", m, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("%v: component not connected", m)
		}
	}
}

func TestConnectivityStrings(t *testing.T) {
	want := map[Connectivity]string{
		CloneMatching:           "clone-matching",
		UniformRandom:           "uniform",
		ProportionalUnsatisfied: "proportional-unsatisfied",
		Deterministic:           "deterministic",
		Connectivity(9):         "Connectivity(9)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("String(%d) = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestDeterministicConnectSaturatesDegrees(t *testing.T) {
	// With an even, feasible degree sequence the deterministic method should
	// satisfy high-degree nodes exactly.
	degrees := []int{4, 3, 3, 2, 2, 1, 1}
	g := FromDegrees(rand.New(rand.NewSource(4)), degrees, Deterministic)
	if g.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("max degree = %d, want 4", g.MaxDegree())
	}
}

func TestReconnectPreservesDegreeDistributionShape(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(5)), Params{N: 4000, Beta: 2.2})
	rg := Reconnect(rand.New(rand.NewSource(6)), g)
	// Reconnection re-extracts a largest component, so exact preservation is
	// impossible; the distribution tail should survive.
	if rg.MaxDegree() < g.MaxDegree()/2 {
		t.Fatalf("reconnect lost the tail: %d vs %d", rg.MaxDegree(), g.MaxDegree())
	}
	if rg.NumNodes() < g.NumNodes()/2 {
		t.Fatalf("reconnect lost too many nodes: %d vs %d", rg.NumNodes(), g.NumNodes())
	}
}

// Property: FromDegrees never exceeds the requested degrees (superfluous
// links are dropped, never added).
func TestDegreesNeverExceedRequestedProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		degrees := make([]int, len(raw))
		for i, v := range raw {
			degrees[i] = int(v%6) + 1
		}
		r := rand.New(rand.NewSource(seed))
		for _, m := range []Connectivity{CloneMatching, UniformRandom, ProportionalUnsatisfied, Deterministic} {
			g := FromDegrees(r, degrees, m)
			// Map back: we can't track ids through component extraction, so
			// check the global invariant instead: no node in the component
			// has degree above the max requested.
			maxReq := 0
			for _, d := range degrees {
				if d > maxReq {
					maxReq = d
				}
			}
			if g.MaxDegree() > maxReq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{N: 3000, Beta: 2.3}
	a := MustGenerate(rand.New(rand.NewSource(7)), p)
	b := MustGenerate(rand.New(rand.NewSource(7)), p)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}

func TestMaxDegCap(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(8)), Params{N: 5000, Beta: 2.0, MaxDeg: 20})
	if g.MaxDegree() > 20 {
		t.Fatalf("max degree %d exceeds cap 20", g.MaxDegree())
	}
}
