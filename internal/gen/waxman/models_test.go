package waxman

import (
	"math/rand"
	"testing"
)

func TestModelStrings(t *testing.T) {
	want := map[Model]string{
		ModelWaxman1: "waxman1", ModelWaxman2: "waxman2",
		ModelPureRandom: "pure-random", ModelExponential: "exponential",
		ModelLocality: "locality", Model(9): "Model(9)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("String(%d) = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestModelValidate(t *testing.T) {
	bad := []ModelParams{
		{N: 1, Model: ModelPureRandom, Alpha: 0.1},
		{N: 100, Model: ModelWaxman1, Alpha: 0, Beta: 0.5},
		{N: 100, Model: ModelWaxman1, Alpha: 0.1, Beta: 0},
		{N: 100, Model: ModelLocality, Alpha: 0.1, Beta: 1.5},
		{N: 100, Model: Model(9), Alpha: 0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestAllModelsGenerate(t *testing.T) {
	models := []ModelParams{
		{N: 400, Model: ModelWaxman1, Alpha: 0.08, Beta: 0.4},
		{N: 400, Model: ModelWaxman2, Alpha: 0.05, Beta: 0.4},
		{N: 400, Model: ModelPureRandom, Alpha: 0.02},
		{N: 400, Model: ModelExponential, Alpha: 0.3},
		{N: 400, Model: ModelLocality, Alpha: 0.15, Beta: 0.002},
	}
	for _, p := range models {
		g, err := GenerateModel(rand.New(rand.NewSource(1)), p)
		if err != nil {
			t.Fatalf("%v: %v", p.Model, err)
		}
		if g.NumNodes() < 100 {
			t.Fatalf("%v: giant component only %d nodes", p.Model, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("%v: component not connected", p.Model)
		}
	}
}

func TestPureRandomMatchesExpectation(t *testing.T) {
	// P = alpha everywhere: expected edges = alpha * C(n,2).
	p := ModelParams{N: 500, Model: ModelPureRandom, Alpha: 0.03}
	g, err := GenerateModel(rand.New(rand.NewSource(2)), p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Alpha * 500 * 499 / 2
	got := float64(g.NumEdges())
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("edges = %v, want ~%v", got, want)
	}
}

func TestLocalityClusters(t *testing.T) {
	// The locality model's links are overwhelmingly short-range, giving a
	// mesh-like (geometric) structure: its diameter should dwarf the pure
	// random model's at similar density.
	loc, err := GenerateModel(rand.New(rand.NewSource(3)),
		ModelParams{N: 700, Model: ModelLocality, Alpha: 0.35, Beta: 0.0002, Gamma: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	pure, err := GenerateModel(rand.New(rand.NewSource(3)),
		ModelParams{N: 700, Model: ModelPureRandom, Alpha: float64(2*loc.NumEdges()) / (700 * 699)})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Eccentricity(0) <= pure.Eccentricity(0) {
		t.Fatalf("locality diameter %d should exceed pure-random %d",
			loc.Eccentricity(0), pure.Eccentricity(0))
	}
}

func TestExponentialBiasesShort(t *testing.T) {
	// The exponential model's probability vanishes near the max distance,
	// so it should also show geometric structure relative to pure random.
	exp, err := GenerateModel(rand.New(rand.NewSource(4)),
		ModelParams{N: 600, Model: ModelExponential, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if exp.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	if !exp.IsConnected() {
		t.Fatal("component not connected")
	}
}
