// Package waxman implements the Waxman random-graph topology generator
// (Waxman, "Routing of Multipoint Connections", JSAC 1988), the paper's
// representative of the random-graph family. Nodes are placed uniformly at
// random on a plane; the probability of a link between nodes u and v is
//
//	P(u, v) = alpha * exp(-d(u, v) / (beta * L))
//
// where d is Euclidean distance and L the maximum possible distance. Small
// beta biases heavily toward short links (the extreme-geographic-bias regime
// §4.4 discusses); alpha scales the overall edge density.
package waxman

import (
	"fmt"
	"math"
	"math/rand"

	"topocmp/internal/geo"
	"topocmp/internal/graph"
)

// Params configures the generator. The paper's headline instance is
// N=5000, Alpha=0.005, Beta=0.30 on a 5000-unit plane, giving the 5000-node
// average-degree-7.22 network of Figure 1.
type Params struct {
	N     int     // number of nodes placed on the plane
	Alpha float64 // link-probability scale, in (0, 1]
	Beta  float64 // geographic-bias parameter, in (0, 1]
	Side  float64 // plane side length; defaults to N
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("waxman: N = %d < 2", p.N)
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("waxman: Alpha = %v outside (0,1]", p.Alpha)
	}
	if p.Beta <= 0 || p.Beta > 1 {
		return fmt.Errorf("waxman: Beta = %v outside (0,1]", p.Beta)
	}
	return nil
}

// Generate produces the largest connected component of a Waxman graph,
// matching the paper's practice of analyzing the connected component.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	side := p.Side
	if side <= 0 {
		side = float64(p.N)
	}
	pts := geo.RandomPoints(r, p.N, side)
	maxDist := side * math.Sqrt2
	b := graph.NewBuilder(p.N)
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			prob := p.Alpha * math.Exp(-pts[i].Dist(pts[j])/(p.Beta*maxDist))
			if r.Float64() < prob {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// MustGenerate is Generate but panics on invalid parameters; convenient for
// the experiment harness where parameters are compile-time constants.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
