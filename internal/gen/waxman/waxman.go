// Package waxman implements the Waxman random-graph topology generator
// (Waxman, "Routing of Multipoint Connections", JSAC 1988), the paper's
// representative of the random-graph family. Nodes are placed uniformly at
// random on a plane; the probability of a link between nodes u and v is
//
//	P(u, v) = alpha * exp(-d(u, v) / (beta * L))
//
// where d is Euclidean distance and L the maximum possible distance. Small
// beta biases heavily toward short links (the extreme-geographic-bias regime
// §4.4 discusses); alpha scales the overall edge density.
package waxman

import (
	"fmt"
	"math"
	"math/rand"

	"topocmp/internal/geo"
	"topocmp/internal/graph"
)

// Params configures the generator. The paper's headline instance is
// N=5000, Alpha=0.005, Beta=0.30 on a 5000-unit plane, giving the 5000-node
// average-degree-7.22 network of Figure 1.
type Params struct {
	N     int     // number of nodes placed on the plane
	Alpha float64 // link-probability scale, in (0, 1]
	Beta  float64 // geographic-bias parameter, in (0, 1]
	Side  float64 // plane side length; defaults to N
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("waxman: N = %d < 2", p.N)
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("waxman: Alpha = %v outside (0,1]", p.Alpha)
	}
	if p.Beta <= 0 || p.Beta > 1 {
		return fmt.Errorf("waxman: Beta = %v outside (0,1]", p.Beta)
	}
	return nil
}

// sampleThreshold is the node count at which Generate switches from the
// exact per-pair Bernoulli scan to candidate sampling. The threshold sits
// above every default experiment scale (the paper's headline instance is
// N=5000) so the RNG draw sequence — and therefore every default-scale
// graph — is unchanged; only the new million-node scale modes cross it.
const sampleThreshold = 10000

// Generate produces the largest connected component of a Waxman graph,
// matching the paper's practice of analyzing the connected component.
//
// Below sampleThreshold nodes this is the literal model: one uniform draw
// per node pair. At or above it the O(N²) scan would be the build
// bottleneck (a million nodes is half a trillion pairs), so Generate
// exploits P(u,v) = Alpha·exp(-d/(Beta·L)) <= Alpha: candidate pairs are
// enumerated by geometric skipping at rate Alpha (exactly like the
// Erdős–Rényi generator) and kept with probability exp(-d/(Beta·L)), a
// two-stage Bernoulli thinning whose per-pair acceptance is exactly
// P(u,v). The edge distribution is identical; only the RNG consumption
// pattern differs.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	side := p.Side
	if side <= 0 {
		side = float64(p.N)
	}
	pts := geo.RandomPoints(r, p.N, side)
	maxDist := side * math.Sqrt2
	b := graph.NewStreamBuilder(p.N)
	if p.N >= sampleThreshold {
		sampledEdges(r, b, pts, p, maxDist)
	} else {
		for i := 0; i < p.N; i++ {
			for j := i + 1; j < p.N; j++ {
				prob := p.Alpha * math.Exp(-pts[i].Dist(pts[j])/(p.Beta*maxDist))
				if r.Float64() < prob {
					b.AddEdge(int32(i), int32(j))
				}
			}
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// sampledEdges streams the large-N edge draw: skip ahead geometrically at
// rate Alpha through the strict-upper-triangle pair ranking, then accept
// each candidate with the geographic factor. Candidate pair indices are
// strictly increasing, so every accepted edge is distinct and the freeze's
// dedup pass finds nothing to drop.
func sampledEdges(r *rand.Rand, b *graph.StreamBuilder, pts []geo.Point, p Params, maxDist float64) {
	total := int64(p.N) * int64(p.N-1) / 2
	// Expected accepted edges are bounded by Alpha·total; reserve for the
	// candidates actually materialized when Alpha < 1.
	if est := float64(total) * p.Alpha; p.Alpha < 1 && est < 1<<31 {
		b.Reserve(int(est))
	}
	idx := int64(-1)
	logq := math.Log(1 - p.Alpha) // Alpha <= 1; Alpha == 1 degenerates below
	// Candidate indices are strictly increasing, so the (row, offset)
	// unranking advances incrementally: O(N + candidates) for the whole
	// sweep instead of O(N) per candidate.
	i, rowStart := 0, int64(0)
	rowLen := int64(p.N - 1)
	for {
		if p.Alpha >= 1 {
			idx++
		} else {
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			idx += 1 + int64(math.Log(u)/logq)
		}
		if idx >= total {
			return
		}
		for idx-rowStart >= rowLen {
			rowStart += rowLen
			rowLen--
			i++
		}
		j := i + 1 + int(idx-rowStart)
		if r.Float64() < math.Exp(-pts[i].Dist(pts[j])/(p.Beta*maxDist)) {
			b.AddEdge(int32(i), int32(j))
		}
	}
}

// MustGenerate is Generate but panics on invalid parameters; convenient for
// the experiment harness where parameters are compile-time constants.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
