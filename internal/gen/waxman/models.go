package waxman

import (
	"fmt"
	"math"
	"math/rand"

	"topocmp/internal/geo"
	"topocmp/internal/graph"
)

// Model selects the edge-probability function. These are the flat random
// graph variants Zegura, Calvert and Donahoo compare ("A Quantitative
// Comparison of Graph-Based Models for Internet Topology", ToN 1997), the
// study the paper extends (§2).
type Model int

const (
	// ModelWaxman1 is the classic Waxman probability alpha*exp(-d/(beta*L)).
	ModelWaxman1 Model = iota
	// ModelWaxman2 replaces the distance with a random value: geographic
	// placement without geographic bias.
	ModelWaxman2
	// ModelPureRandom ignores geometry entirely: P = alpha.
	ModelPureRandom
	// ModelExponential uses alpha*exp(-d/(L-d)): probability collapses as
	// d approaches the plane diameter.
	ModelExponential
	// ModelLocality uses alpha within radius Gamma*L and beta outside —
	// the two-level locality model.
	ModelLocality
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelWaxman1:
		return "waxman1"
	case ModelWaxman2:
		return "waxman2"
	case ModelPureRandom:
		return "pure-random"
	case ModelExponential:
		return "exponential"
	case ModelLocality:
		return "locality"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ModelParams configures GenerateModel.
type ModelParams struct {
	N     int
	Model Model
	Alpha float64 // base probability scale, in (0, 1]
	Beta  float64 // model-specific second parameter (see each Model)
	Gamma float64 // locality radius fraction (ModelLocality); default 0.25
	Side  float64 // plane side; defaults to N
}

// Validate reports whether the parameters are usable.
func (p ModelParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("waxman: N = %d < 2", p.N)
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("waxman: Alpha = %v outside (0,1]", p.Alpha)
	}
	switch p.Model {
	case ModelWaxman1, ModelWaxman2:
		if p.Beta <= 0 || p.Beta > 1 {
			return fmt.Errorf("waxman: Beta = %v outside (0,1]", p.Beta)
		}
	case ModelLocality:
		if p.Beta < 0 || p.Beta > 1 {
			return fmt.Errorf("waxman: locality Beta = %v outside [0,1]", p.Beta)
		}
	case ModelPureRandom, ModelExponential:
		// Alpha alone.
	default:
		return fmt.Errorf("waxman: unknown model %d", p.Model)
	}
	return nil
}

// GenerateModel produces the largest connected component of a flat
// random-graph model over points on a plane.
func GenerateModel(r *rand.Rand, p ModelParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	side := p.Side
	if side <= 0 {
		side = float64(p.N)
	}
	gamma := p.Gamma
	if gamma == 0 {
		gamma = 0.25
	}
	pts := geo.RandomPoints(r, p.N, side)
	maxDist := side * math.Sqrt2
	prob := func(d float64) float64 {
		switch p.Model {
		case ModelWaxman1:
			return p.Alpha * math.Exp(-d/(p.Beta*maxDist))
		case ModelWaxman2:
			return p.Alpha * math.Exp(-r.Float64()/p.Beta)
		case ModelPureRandom:
			return p.Alpha
		case ModelExponential:
			if d >= maxDist {
				return 0
			}
			return p.Alpha * math.Exp(-d/(maxDist-d))
		case ModelLocality:
			if d < gamma*maxDist {
				return p.Alpha
			}
			return p.Beta
		}
		return 0
	}
	b := graph.NewBuilder(p.N)
	for i := 0; i < p.N; i++ {
		for j := i + 1; j < p.N; j++ {
			if r.Float64() < prob(pts[i].Dist(pts[j])) {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}
