package waxman

import (
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 1, Alpha: 0.5, Beta: 0.5},
		{N: 10, Alpha: 0, Beta: 0.5},
		{N: 10, Alpha: 1.5, Beta: 0.5},
		{N: 10, Alpha: 0.5, Beta: 0},
		{N: 10, Alpha: 0.5, Beta: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
	good := Params{N: 100, Alpha: 0.1, Beta: 0.3}
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGenerateConnected(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := MustGenerate(r, Params{N: 500, Alpha: 0.05, Beta: 0.5})
	if !g.IsConnected() {
		t.Fatal("largest component must be connected")
	}
	if g.NumNodes() < 400 {
		t.Fatalf("giant component too small: %d", g.NumNodes())
	}
}

func TestGeographicBiasShortensLinks(t *testing.T) {
	// Smaller beta biases toward short links, so the resulting giant
	// component should be smaller (paper §4.4's extreme-bias regime) for the
	// same alpha.
	r1 := rand.New(rand.NewSource(2))
	r2 := rand.New(rand.NewSource(2))
	loose := MustGenerate(r1, Params{N: 800, Alpha: 0.02, Beta: 0.8})
	tight := MustGenerate(r2, Params{N: 800, Alpha: 0.02, Beta: 0.02})
	if tight.NumNodes() >= loose.NumNodes() {
		t.Fatalf("extreme bias giant %d should be smaller than loose %d",
			tight.NumNodes(), loose.NumNodes())
	}
}

func TestPaperInstanceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale instance")
	}
	// Figure 1: 5000 nodes, alpha=0.005, beta=0.30, avg degree 7.22. Our
	// distance normalization may shift the constant; assert the right
	// ballpark and full connectivity of the giant component.
	r := rand.New(rand.NewSource(3))
	g := MustGenerate(r, Params{N: 5000, Alpha: 0.005, Beta: 0.30})
	if g.NumNodes() < 4800 {
		t.Fatalf("giant component = %d, want nearly all of 5000", g.NumNodes())
	}
	if d := g.AvgDegree(); math.Abs(d-7.22) > 3 {
		t.Fatalf("avg degree = %.2f, want roughly 7.2", d)
	}
}

func TestAlphaScalesDensity(t *testing.T) {
	r1 := rand.New(rand.NewSource(4))
	r2 := rand.New(rand.NewSource(4))
	sparse := MustGenerate(r1, Params{N: 600, Alpha: 0.02, Beta: 0.5})
	dense := MustGenerate(r2, Params{N: 600, Alpha: 0.08, Beta: 0.5})
	if dense.AvgDegree() <= sparse.AvgDegree() {
		t.Fatalf("alpha should scale density: %.2f vs %.2f",
			dense.AvgDegree(), sparse.AvgDegree())
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(rand.New(rand.NewSource(9)), Params{N: 300, Alpha: 0.05, Beta: 0.4})
	b := MustGenerate(rand.New(rand.NewSource(9)), Params{N: 300, Alpha: 0.05, Beta: 0.4})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should give the same graph")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGenerate(rand.New(rand.NewSource(1)), Params{N: 0, Alpha: 1, Beta: 1})
}
