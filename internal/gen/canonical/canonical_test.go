package canonical

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreePaperInstance(t *testing.T) {
	// k=3, D=6 -> 1093 nodes, avg degree 2.00 (Figure 1).
	g := Tree(3, 6)
	if g.NumNodes() != 1093 {
		t.Fatalf("nodes = %d, want 1093", g.NumNodes())
	}
	if g.NumEdges() != 1092 {
		t.Fatalf("edges = %d, want 1092", g.NumEdges())
	}
	if math.Abs(g.AvgDegree()-2.0) > 0.01 {
		t.Fatalf("avg degree = %.3f, want ~2.00", g.AvgDegree())
	}
	if !g.IsConnected() {
		t.Fatal("tree must be connected")
	}
}

func TestTreeDegrees(t *testing.T) {
	g := Tree(3, 2) // 13 nodes: root deg 3, internals deg 4, leaves deg 1
	if g.Degree(0) != 3 {
		t.Fatalf("root degree = %d", g.Degree(0))
	}
	if g.Degree(1) != 4 {
		t.Fatalf("internal degree = %d", g.Degree(1))
	}
	if g.Degree(12) != 1 {
		t.Fatalf("leaf degree = %d", g.Degree(12))
	}
}

func TestTreeDegenerate(t *testing.T) {
	if g := Tree(3, 0); g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("depth-0 tree should be a single node")
	}
	if g := Tree(1, 4); g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatal("1-ary tree should be a path")
	}
}

func TestMeshPaperInstance(t *testing.T) {
	// 30x30 grid -> 900 nodes, avg degree 3.87 (Figure 1).
	g := Mesh(30, 30)
	if g.NumNodes() != 900 {
		t.Fatalf("nodes = %d, want 900", g.NumNodes())
	}
	wantEdges := 2 * 30 * 29
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if math.Abs(g.AvgDegree()-3.87) > 0.01 {
		t.Fatalf("avg degree = %.3f, want ~3.87", g.AvgDegree())
	}
}

func TestMeshCorners(t *testing.T) {
	g := Mesh(3, 4)
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(5) != 4 { // interior node (row 1, col 1)
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
	if !g.IsConnected() {
		t.Fatal("mesh must be connected")
	}
}

func TestRandomPaperScale(t *testing.T) {
	// n=5018 comes from the largest component of a slightly larger draw;
	// we check that G(5100, 0.0008)'s giant component is close to the paper's
	// size and degree (4.18).
	r := rand.New(rand.NewSource(42))
	g := Random(r, 5150, 0.0008)
	if g.NumNodes() < 4500 || g.NumNodes() > 5150 {
		t.Fatalf("giant component = %d nodes", g.NumNodes())
	}
	if d := g.AvgDegree(); d < 3.5 || d > 5.0 {
		t.Fatalf("avg degree = %.2f, want ~4.2", d)
	}
	if !g.IsConnected() {
		t.Fatal("largest component must be connected")
	}
}

func TestRandomEdgeCountMatchesP(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n, p := 400, 0.05
	// Count edges over the raw draw via expectation bounds on the giant
	// component; easier: p large enough that graph is connected whp.
	g := Random(r, n, p)
	if g.NumNodes() != n {
		t.Fatalf("dense G(n,p) should be connected: %d of %d nodes", g.NumNodes(), n)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("edges = %v, want ~%v", got, want)
	}
}

func TestRandomDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if g := Random(r, 10, 0); g.NumNodes() != 1 {
		t.Fatal("G(n,0) largest component should be a single node")
	}
	g := Random(r, 6, 1)
	if g.NumEdges() != 15 {
		t.Fatalf("G(6,1) edges = %d, want 15", g.NumEdges())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	if g.NumEdges() != 21 || g.AvgDegree() != 6 {
		t.Fatalf("complete graph: %d edges, avg %v", g.NumEdges(), g.AvgDegree())
	}
}

func TestLinear(t *testing.T) {
	g := Linear(9)
	if g.NumEdges() != 8 {
		t.Fatalf("linear edges = %d", g.NumEdges())
	}
	if g.Eccentricity(0) != 8 {
		t.Fatalf("chain eccentricity = %d", g.Eccentricity(0))
	}
}

// Property: trees have exactly n-1 edges and are connected (so acyclic).
func TestTreeInvariantProperty(t *testing.T) {
	f := func(kRaw, dRaw uint8) bool {
		k := int(kRaw)%4 + 1
		d := int(dRaw) % 6
		g := Tree(k, d)
		return g.NumEdges() == g.NumNodes()-1 && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: mesh BFS distance equals Manhattan distance.
func TestMeshManhattanProperty(t *testing.T) {
	g := Mesh(8, 11)
	dist, _ := g.BFS(0)
	for r := 0; r < 8; r++ {
		for c := 0; c < 11; c++ {
			if dist[r*11+c] != int32(r+c) {
				t.Fatalf("dist(0 -> %d,%d) = %d, want %d", r, c, dist[r*11+c], r+c)
			}
		}
	}
}

// Property: expansion ordering sanity — for the same radius, the tree ball
// grows much faster than the mesh ball of a comparable-size graph.
func TestTreeVsMeshExpansion(t *testing.T) {
	tree := Tree(3, 6) // 1093 nodes
	mesh := Mesh(33, 33)
	h := 4
	treeBall := len(tree.Ball(0, h))
	meshBall := len(mesh.Ball(int32(16*33+16), h))
	if treeBall <= meshBall {
		t.Fatalf("tree ball %d should exceed mesh ball %d", treeBall, meshBall)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"tree arity": func() { Tree(0, 3) },
		"tree depth": func() { Tree(2, -1) },
		"mesh dims":  func() { Mesh(0, 5) },
		"random p":   func() { Random(rand.New(rand.NewSource(1)), 5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
