package canonical

import (
	"math/rand"
	"testing"

	"topocmp/internal/graph"
)

// TestSeededDeterminismFingerprint pins the canonical constructors' seed
// contract. Tree/Mesh/Complete/Linear take no RNG, so two builds must be
// byte-identical outright; Random must be identical per seed and differ
// across seeds, at the default experiment size and a larger instance.
func TestSeededDeterminismFingerprint(t *testing.T) {
	fixed := []struct {
		name string
		gen  func() *graph.Graph
	}{
		{"Tree", func() *graph.Graph { return Tree(3, 6) }},
		{"Mesh", func() *graph.Graph { return Mesh(30, 30) }},
		{"Complete", func() *graph.Graph { return Complete(150) }},
		{"Linear", func() *graph.Graph { return Linear(500) }},
	}
	for _, tc := range fixed {
		if a, b := tc.gen().Fingerprint(), tc.gen().Fingerprint(); a != b {
			t.Errorf("%s: two builds differ (%#x vs %#x)", tc.name, a, b)
		}
	}
	for _, n := range []int{2000, 20000} {
		gen := func(seed int64) uint64 {
			return Random(rand.New(rand.NewSource(seed)), n, 4.18/float64(n)).Fingerprint()
		}
		a, b := gen(7), gen(7)
		if a != b {
			t.Errorf("Random n=%d: same seed produced different graphs (%#x vs %#x)", n, a, b)
		}
		if c := gen(8); c == a {
			t.Errorf("Random n=%d: different seeds produced identical graphs (%#x)", n, a)
		}
	}
}
