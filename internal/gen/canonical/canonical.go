// Package canonical builds the calibration networks of the paper: the k-ary
// Tree, the rectangular grid (Mesh), the Erdős–Rényi Random graph, the
// Complete graph and the Linear chain. The paper uses these "admittedly
// unrealistic" networks to calibrate the low/high behaviour of each metric
// (§3.1.3, §3.2.1).
package canonical

import (
	"fmt"
	"math"
	"math/rand"

	"topocmp/internal/graph"
)

// Tree returns the complete k-ary tree of the given depth. Depth 0 is a
// single node. The paper's instance is k=3, D=6 (1093 nodes).
func Tree(k, depth int) *graph.Graph {
	if k < 1 {
		panic(fmt.Sprintf("canonical: tree arity %d < 1", k))
	}
	if depth < 0 {
		panic("canonical: negative tree depth")
	}
	// Number of nodes: (k^(depth+1)-1)/(k-1), or depth+1 for k == 1.
	n := 0
	pow := 1
	for d := 0; d <= depth; d++ {
		n += pow
		pow *= k
	}
	b := graph.NewStreamBuilder(n)
	b.Reserve(n - 1)
	// Children of node i are k*i+1 .. k*i+k (standard heap layout).
	for i := 0; i < n; i++ {
		for c := 1; c <= k; c++ {
			child := k*i + c
			if child < n {
				b.AddEdge(int32(i), int32(child))
			}
		}
	}
	return b.Graph()
}

// Mesh returns the rows×cols rectangular grid. The paper's instance is the
// 30×30 grid (900 nodes, average degree 3.87).
func Mesh(rows, cols int) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("canonical: mesh dimensions must be positive")
	}
	b := graph.NewStreamBuilder(rows * cols)
	b.Reserve(2 * rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Random returns the largest connected component of an Erdős–Rényi G(n, p)
// graph. The paper's instance is n=5018 at link probability 0.0008 (average
// degree ≈ 4.18); it reports the connected component, as we do here.
func Random(r *rand.Rand, n int, p float64) *graph.Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("canonical: edge probability %v outside [0,1]", p))
	}
	b := graph.NewStreamBuilder(n)
	// Geometric skipping: enumerate present edges directly so sparse graphs
	// cost O(E) instead of O(n^2). The skip indices are strictly increasing,
	// so every streamed edge is already distinct.
	if p > 0 {
		total := int64(n) * int64(n-1) / 2
		idx := int64(-1)
		for {
			// Skip ahead geometrically.
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			skip := int64(math.Log(u) / math.Log(1-p))
			idx += 1 + skip
			if idx >= total {
				break
			}
			i, j := unrankPair(idx, n)
			b.AddEdge(int32(i), int32(j))
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *graph.Graph {
	b := graph.NewStreamBuilder(n)
	b.Reserve(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Graph()
}

// Linear returns the n-node chain.
func Linear(n int) *graph.Graph {
	b := graph.NewStreamBuilder(n)
	if n > 1 {
		b.Reserve(n - 1)
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Graph()
}

// unrankPair maps a linear index in [0, n(n-1)/2) to the unordered pair
// (i, j), i < j, in row-major order of the strict upper triangle.
func unrankPair(idx int64, n int) (int, int) {
	i := 0
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		rowLen--
		i++
	}
	return i, i + 1 + int(idx)
}
