package inet

import (
	"math/rand"
	"testing"

	"topocmp/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 2, Beta: 2.2},
		{N: 100, Beta: 0.9},
		{N: 100, Beta: 2.2, MaxDeg: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerate(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 4000, Beta: 2.2})
	if g.NumNodes() < 3500 {
		t.Fatalf("largest component = %d of 4000", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("component must be connected")
	}
}

func TestHeavyTail(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(2)), Params{N: 8000, Beta: 2.2})
	if g.MaxDegree() < 40 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
	ccdf := stats.CCDF(g.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	if fit.Slope > -0.8 || fit.R2 < 0.8 {
		t.Fatalf("CCDF fit slope=%.2f R2=%.2f; not heavy-tailed", fit.Slope, fit.R2)
	}
}

func TestSpanningTreeKeepsDegree1Leaves(t *testing.T) {
	// Degree-1 nodes must remain degree 1: they are attached once in phase 2
	// and never matched again.
	g := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 3000, Beta: 2.4})
	ones := 0
	for _, d := range g.Degrees() {
		if d == 1 {
			ones++
		}
	}
	if frac := float64(ones) / float64(g.NumNodes()); frac < 0.3 {
		t.Fatalf("degree-1 fraction = %.2f; Inet graphs are leaf-heavy", frac)
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{N: 2000, Beta: 2.3}
	a := MustGenerate(rand.New(rand.NewSource(4)), p)
	b := MustGenerate(rand.New(rand.NewSource(4)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}

func TestSmallInstance(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(5)), Params{N: 10, Beta: 2.0})
	if g.NumNodes() < 2 || !g.IsConnected() {
		t.Fatalf("small instance bad: %d nodes", g.NumNodes())
	}
}
