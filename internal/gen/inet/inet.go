// Package inet implements the Inet topology generator (Jin, Chen, Jamin,
// "Inet: Internet Topology Generator", UM tech report CSE-TR-433-00), the
// "Inet" generator of the paper's Appendix D.
//
// Inet assigns power-law degrees to N nodes, verifies the sequence is
// feasible (even total), then connects in three phases (Appendix D.1):
//
//  1. a spanning tree among all nodes of degree > 1, grown by attaching
//     each node to an already-placed tree node with probability
//     proportional to its degree;
//  2. degree-1 nodes attach to tree nodes with proportional preference;
//  3. remaining degree slots are filled in decreasing-degree order,
//     matching to other nodes with free slots proportionally.
package inet

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"

	"topocmp/internal/graph"
	"topocmp/internal/rng"
)

// Params configures the generator.
type Params struct {
	N      int     // node count
	Beta   float64 // power-law degree exponent
	MaxDeg int     // degree cap; defaults to N/10 (Inet trims extremes)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 4 {
		return fmt.Errorf("inet: N = %d < 4", p.N)
	}
	if p.Beta <= 1 {
		return fmt.Errorf("inet: Beta = %v must exceed 1", p.Beta)
	}
	if p.MaxDeg < 0 {
		return fmt.Errorf("inet: negative MaxDeg %d", p.MaxDeg)
	}
	return nil
}

// Generate builds an Inet graph and returns its largest connected component
// (phase 3's proportional matching can strand a few slots, as in Inet).
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxDeg := p.MaxDeg
	if maxDeg == 0 {
		maxDeg = p.N / 10
		if maxDeg < 3 {
			maxDeg = 3
		}
	}
	degrees := rng.PowerLawDegrees(r, p.N, p.Beta, maxDeg)
	// Feasibility: the handshake lemma needs an even degree sum; bump one
	// node if necessary (Inet's feasibility adjustment).
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	if sum%2 == 1 {
		degrees[0]++
	}
	// Inet additionally requires enough degree->1 connectivity; ensure at
	// least two nodes of degree > 1.
	bigger := 0
	for _, d := range degrees {
		if d > 1 {
			bigger++
		}
	}
	for i := 0; bigger < 2 && i < len(degrees); i++ {
		if degrees[i] == 1 {
			degrees[i] = 2
			bigger++
		}
	}

	// Streamed build: edges append to a packed log and deduplicate at
	// freeze, so construction needs no mid-build adjacency map. Phases 1–2
	// never draw duplicates (tree growth and leaf attachment touch each
	// endpoint pair at most once). Phase 3's duplicate guard is a per-node
	// local partner list — a slot-fill re-drawing an edge its node already
	// got in an earlier phase is accepted into the log (decrementing both
	// slots) and collapses at freeze, where the map-backed builder resampled
	// instead. That shifts a few high-degree slot fills (see EXPERIMENTS.md)
	// but keeps the build allocation-lean at scale; the generator stays
	// deterministic per seed.
	b := graph.NewStreamBuilder(p.N)
	remaining := append([]int(nil), degrees...)

	// Phase 1: spanning tree over degree>1 nodes.
	var treeNodes []int32
	for v, d := range degrees {
		if d > 1 {
			treeNodes = append(treeNodes, int32(v))
		}
	}
	// Highest-degree node seeds the tree; attach the rest in random order.
	sort.Slice(treeNodes, func(i, j int) bool {
		return degrees[treeNodes[i]] > degrees[treeNodes[j]]
	})
	placed := []int32{treeNodes[0]}
	rest := append([]int32(nil), treeNodes[1:]...)
	rng.Shuffle(r, rest)
	for _, u := range rest {
		v := pickProportional(r, placed, degrees)
		b.AddEdge(u, v)
		remaining[u]--
		remaining[v]--
		placed = append(placed, u)
	}

	// Phase 2: degree-1 nodes attach proportionally to tree nodes.
	for v, d := range degrees {
		if d != 1 {
			continue
		}
		t := pickProportionalWithFree(r, placed, degrees, remaining)
		if t < 0 {
			t = placed[r.Intn(len(placed))] // oversubscribe rather than strand
		}
		b.AddEdge(int32(v), t)
		remaining[v]--
		remaining[t]--
	}

	// Phase 3: fill remaining slots in decreasing-degree order.
	order := make([]int32, 0, len(degrees))
	for v := range degrees {
		order = append(order, int32(v))
	}
	sort.Slice(order, func(i, j int) bool { return degrees[order[i]] > degrees[order[j]] })
	// Pool of endpoint "slots" proportional to remaining degree.
	partners := make([]int32, 0, 16)
	for _, u := range order {
		partners = partners[:0]
		for remaining[u] > 0 {
			v := sampleFreeSlot(r, remaining, u, partners)
			if v < 0 {
				break // no partner available
			}
			b.AddEdge(u, v)
			partners = append(partners, v)
			remaining[u]--
			remaining[v]--
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}

// pickProportional picks a node from candidates with probability
// proportional to its assigned degree.
func pickProportional(r *rand.Rand, candidates []int32, degrees []int) int32 {
	total := 0
	for _, v := range candidates {
		total += degrees[v]
	}
	x := r.Intn(total)
	acc := 0
	for _, v := range candidates {
		acc += degrees[v]
		if x < acc {
			return v
		}
	}
	return candidates[len(candidates)-1]
}

// pickProportionalWithFree is pickProportional restricted to candidates
// with remaining degree; returns -1 if none qualify.
func pickProportionalWithFree(r *rand.Rand, candidates []int32, degrees, remaining []int) int32 {
	total := 0
	for _, v := range candidates {
		if remaining[v] > 0 {
			total += degrees[v]
		}
	}
	if total == 0 {
		return -1
	}
	x := r.Intn(total)
	acc := 0
	for _, v := range candidates {
		if remaining[v] <= 0 {
			continue
		}
		acc += degrees[v]
		if x < acc {
			return v
		}
	}
	return -1
}

// sampleFreeSlot picks a partner for u proportional to remaining degree,
// avoiding self-links and partners u already matched in this phase (edges
// from earlier phases collapse at freeze instead — see the builder comment
// in Generate). Returns -1 when no partner exists.
func sampleFreeSlot(r *rand.Rand, remaining []int, u int32, partners []int32) int32 {
	for attempt := 0; attempt < 24; attempt++ {
		total := 0
		for v, rem := range remaining {
			if int32(v) != u && rem > 0 {
				total += rem
			}
		}
		if total == 0 {
			return -1
		}
		x := r.Intn(total)
		acc := 0
		for v, rem := range remaining {
			if int32(v) == u || rem <= 0 {
				continue
			}
			acc += rem
			if x < acc {
				if slices.Contains(partners, int32(v)) {
					break // resample
				}
				return int32(v)
			}
		}
	}
	return -1
}
