package brite

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 100, M: 0},
		{N: 2, M: 3},
		{N: 100, M: 2, Locality: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	for _, pl := range []Placement{PlacementRandom, PlacementHeavyTailed} {
		g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 2000, M: 2, Placement: pl})
		if g.NumNodes() != 2000 {
			t.Fatalf("placement %d: nodes = %d", pl, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("placement %d: not connected", pl)
		}
	}
}

func TestHubsEmerge(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(2)), Params{N: 5000, M: 2, Placement: PlacementHeavyTailed})
	if g.MaxDegree() < 40 {
		t.Fatalf("max degree = %d; preferential growth should create hubs", g.MaxDegree())
	}
}

func TestLocalityReducesLongLinks(t *testing.T) {
	// With strong locality the hub structure weakens (links stay local), so
	// the maximum degree should drop relative to pure preferential growth.
	pure := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2500, M: 2})
	local := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2500, M: 2, Locality: 0.05})
	if local.MaxDegree() >= pure.MaxDegree() {
		t.Fatalf("locality should weaken hubs: %d vs %d", local.MaxDegree(), pure.MaxDegree())
	}
}

func TestEdgeBudget(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(4)), Params{N: 1200, M: 3})
	want := 3 * 1200
	if e := g.NumEdges(); e < want-600 || e > want+100 {
		t.Fatalf("edges = %d, want ~%d", e, want)
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{N: 1000, M: 2, Placement: PlacementHeavyTailed}
	a := MustGenerate(rand.New(rand.NewSource(5)), p)
	b := MustGenerate(rand.New(rand.NewSource(5)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}
