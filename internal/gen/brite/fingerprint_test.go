package brite

import (
	"math/rand"
	"testing"
)

// TestSeededDeterminismFingerprint pins the generator's seed contract: the
// same seed must yield a byte-identical graph (compared via the CSR
// fingerprint) at the default experiment size and at a larger instance, and
// a different seed must yield a different graph.
func TestSeededDeterminismFingerprint(t *testing.T) {
	cases := []struct {
		name string
		gen  func(seed int64) uint64
	}{
		{"default", func(seed int64) uint64 {
			return MustGenerate(rand.New(rand.NewSource(seed)), Params{N: 1500, M: 2}).Fingerprint()
		}},
		{"large", func(seed int64) uint64 {
			return MustGenerate(rand.New(rand.NewSource(seed)), Params{N: 10000, M: 2}).Fingerprint()
		}},
	}
	for _, tc := range cases {
		a, b := tc.gen(7), tc.gen(7)
		if a != b {
			t.Errorf("%s: same seed produced different graphs (%#x vs %#x)", tc.name, a, b)
		}
		if c := tc.gen(8); c == a {
			t.Errorf("%s: different seeds produced identical graphs (%#x)", tc.name, a)
		}
	}
}
