// Package brite implements the BRITE v1.0 topology generator (Medina,
// Lakhina, Matta, Byers, "BRITE: An Approach to Universal Topology
// Generation", MASCOTS 2001) as used in the paper: Barabási–Albert style
// incremental growth with preferential connectivity, combined with node
// placement on a plane that is either random or heavy-tailed. The paper's
// instance used the heavy-tailed placement option.
package brite

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"topocmp/internal/geo"
	"topocmp/internal/graph"
)

// Placement selects how nodes are placed on the plane.
type Placement int

const (
	// PlacementRandom scatters nodes uniformly.
	PlacementRandom Placement = iota
	// PlacementHeavyTailed assigns per-cell node counts from a heavy-tailed
	// distribution, BRITE's "heavy-tailed" option.
	PlacementHeavyTailed
)

// Params configures the generator.
type Params struct {
	N         int       // final node count
	M         int       // links per new node
	Placement Placement // node placement model
	// Locality couples attachment probability to Euclidean distance with a
	// Waxman factor exp(-d/(Locality*L)); zero disables geographic bias
	// (pure preferential connectivity, the mode the paper evaluates).
	Locality float64
	Side     float64 // plane side; defaults to 1000
	Cells    int     // placement grid for heavy-tailed mode; defaults to 10
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("brite: M = %d < 1", p.M)
	}
	if p.N < p.M+1 {
		return fmt.Errorf("brite: N = %d too small for M = %d", p.N, p.M)
	}
	if p.Locality < 0 {
		return fmt.Errorf("brite: negative Locality %v", p.Locality)
	}
	return nil
}

// Generate grows a BRITE graph and returns it (connected by construction).
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	side := p.Side
	if side <= 0 {
		side = 1000
	}
	cells := p.Cells
	if cells <= 0 {
		cells = 10
	}
	var pts []geo.Point
	switch p.Placement {
	case PlacementHeavyTailed:
		pts = geo.HeavyTailedPoints(r, p.N, side, cells)
	default:
		pts = geo.RandomPoints(r, p.N, side)
	}
	maxDist := side * math.Sqrt2

	// Streamed build: edges append to a packed log and the CSR assembles at
	// freeze, so growth needs no mid-build adjacency map. Duplicate
	// rejection needs only a per-round seen-list — every edge incident to
	// the new node u was added this round, so checking the round's picks is
	// exactly the membership test the map-backed builder answered, and the
	// RNG stream (hence the generated graph) is unchanged.
	b := graph.NewStreamBuilder(p.N)
	m0 := p.M + 1
	b.Reserve(m0*(m0-1)/2 + p.M*(p.N-m0))
	deg := make([]float64, p.N)
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(int32(i), int32(j))
			deg[i]++
			deg[j]++
		}
	}
	weights := make([]float64, 0, p.N)
	roundSeen := make([]int32, 0, p.M)
	for u := m0; u < p.N; u++ {
		// Attachment weight: degree, optionally damped by distance.
		weights = weights[:0]
		total := 0.0
		for v := 0; v < u; v++ {
			w := deg[v]
			if p.Locality > 0 {
				w *= math.Exp(-pts[u].Dist(pts[v]) / (p.Locality * maxDist))
			}
			weights = append(weights, w)
			total += w
		}
		added := 0
		roundSeen = roundSeen[:0]
		for attempt := 0; added < p.M && attempt < 64*p.M; attempt++ {
			x := r.Float64() * total
			acc := 0.0
			pick := -1
			for v, w := range weights {
				acc += w
				if x < acc {
					pick = v
					break
				}
			}
			if pick < 0 {
				pick = u - 1
			}
			if slices.Contains(roundSeen, int32(pick)) {
				continue
			}
			roundSeen = append(roundSeen, int32(pick))
			b.AddEdge(int32(u), int32(pick))
			deg[u]++
			deg[pick]++
			added++
		}
	}
	return b.Graph(), nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
