package tiers

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperInstance(t *testing.T) {
	p := Paper()
	if p.NumNodes() != 5000 {
		t.Fatalf("NumNodes = %d, want 5000", p.NumNodes())
	}
	g := MustGenerate(rand.New(rand.NewSource(1)), p)
	if g.NumNodes() != 5000 {
		t.Fatalf("generated nodes = %d, want 5000", g.NumNodes())
	}
	// Figure 1 reports average degree 2.83; our redundancy interpretation
	// should land in the same neighbourhood.
	if d := g.AvgDegree(); d < 2.3 || d > 3.4 {
		t.Fatalf("avg degree = %.2f, want ~2.8", d)
	}
	if !g.IsConnected() {
		t.Fatal("tiers must be connected")
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{WANNodes: 0, RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1},
		{WANNodes: 10, MANsPerWAN: 2, MANNodes: 0, RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1},
		{WANNodes: 10, RW: 0, RM: 1, RL: 1, RMW: 1, RLM: 1},
		{WANNodes: 10, MANsPerWAN: -1, RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestWANOnly(t *testing.T) {
	p := Params{WANNodes: 60, RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1}
	g := MustGenerate(rand.New(rand.NewSource(2)), p)
	if g.NumNodes() != 60 || g.NumEdges() != 59 {
		t.Fatalf("WAN-only MST: %d nodes %d edges, want 60/59", g.NumNodes(), g.NumEdges())
	}
}

func TestRedundancyAddsEdges(t *testing.T) {
	base := Params{WANNodes: 80, RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1}
	rich := base
	rich.RW = 3
	g1 := MustGenerate(rand.New(rand.NewSource(3)), base)
	g2 := MustGenerate(rand.New(rand.NewSource(3)), rich)
	if g2.NumEdges() <= g1.NumEdges() {
		t.Fatalf("redundancy should add edges: %d vs %d", g2.NumEdges(), g1.NumEdges())
	}
}

func TestLANStars(t *testing.T) {
	p := Params{
		MANsPerWAN: 2, LANsPerMAN: 3,
		WANNodes: 10, MANNodes: 5, LANNodes: 6,
		RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1,
	}
	g := MustGenerate(rand.New(rand.NewSource(4)), p)
	if g.NumNodes() != p.NumNodes() {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), p.NumNodes())
	}
	// LAN hosts (non-gateway) must be degree-1 leaves.
	// LANs occupy the tail of the id space in blocks of LANNodes.
	lanBase := p.WANNodes + p.MANsPerWAN*p.MANNodes
	for lan := 0; lan < p.MANsPerWAN*p.LANsPerMAN; lan++ {
		start := lanBase + lan*p.LANNodes
		for h := 1; h < p.LANNodes; h++ {
			if d := g.Degree(int32(start + h)); d != 1 {
				t.Fatalf("LAN host degree = %d, want 1", d)
			}
		}
		if d := g.Degree(int32(start)); d < p.LANNodes-1+p.RLM {
			t.Fatalf("gateway degree = %d, want >= %d", d, p.LANNodes-1+p.RLM)
		}
	}
}

func TestSlowExpansionVsRandom(t *testing.T) {
	// Tiers' geographic construction should expand slower than an
	// equal-size random graph: the mesh-like signature of Figure 2(g).
	p := Params{
		MANsPerWAN: 10, LANsPerMAN: 4,
		WANNodes: 100, MANNodes: 20, LANNodes: 5,
		RW: 2, RM: 2, RL: 1, RMW: 1, RLM: 1,
	}
	g := MustGenerate(rand.New(rand.NewSource(5)), p)
	// Ball around a WAN node after 5 hops.
	ball := len(g.Ball(0, 5))
	if frac := float64(ball) / float64(g.NumNodes()); frac > 0.8 {
		t.Fatalf("tiers ball covers %.2f of graph in 5 hops; too random-like", frac)
	}
}

// Property: all valid parameterizations yield connected graphs of the
// declared size.
func TestConnectedProperty(t *testing.T) {
	f := func(seed int64, mRaw, lRaw, wRaw uint8) bool {
		p := Params{
			MANsPerWAN: int(mRaw) % 4,
			LANsPerMAN: int(lRaw) % 4,
			WANNodes:   int(wRaw)%30 + 2,
			MANNodes:   6, LANNodes: 4,
			RW: 2, RM: 2, RL: 1, RMW: 1, RLM: 1,
		}
		g, err := Generate(rand.New(rand.NewSource(seed)), p)
		if err != nil {
			return false
		}
		return g.NumNodes() == p.NumNodes() && g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{
		MANsPerWAN: 5, LANsPerMAN: 2,
		WANNodes: 50, MANNodes: 10, LANNodes: 4,
		RW: 2, RM: 2, RL: 1, RMW: 2, RLM: 1,
	}
	a := MustGenerate(rand.New(rand.NewSource(6)), p)
	b := MustGenerate(rand.New(rand.NewSource(6)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}

func TestLANRedundancyAddsHub(t *testing.T) {
	base := Params{
		MANsPerWAN: 1, LANsPerMAN: 2,
		WANNodes: 10, MANNodes: 6, LANNodes: 6,
		RW: 1, RM: 1, RL: 1, RMW: 1, RLM: 1,
	}
	rich := base
	rich.RL = 2
	g1 := MustGenerate(rand.New(rand.NewSource(13)), base)
	g2 := MustGenerate(rand.New(rand.NewSource(13)), rich)
	if g2.NumEdges() <= g1.NumEdges() {
		t.Fatalf("RL=2 should add secondary-hub links: %d vs %d",
			g2.NumEdges(), g1.NumEdges())
	}
	if g2.NumNodes() != g1.NumNodes() {
		t.Fatal("node counts must match")
	}
}
