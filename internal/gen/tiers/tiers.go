// Package tiers reimplements the Tiers structural topology generator
// (Doar, "A Better Model for Generating Test Networks", GLOBECOM 1996).
//
// Tiers builds a three-level hierarchy of WANs, MANs and LANs:
//
//   - One WAN of WANNodes nodes placed on a plane; the nodes are connected
//     by a Euclidean minimum spanning tree, then RW-1 extra intra-network
//     links are added in order of increasing inter-node distance.
//   - MANsPerWAN MANs, each of MANNodes nodes, built the same way with
//     RM-1 extra links, and homed onto the WAN with RMW links each.
//   - LANsPerMAN LANs per MAN. A LAN is a star: one gateway plus
//     LANNodes-1 hosts (Tiers counts the gateway in the per-LAN node
//     count). The gateway homes onto the MAN with RLM links.
//
// The parameter tuple mirrors the columns of the paper's Appendix C
// (number of WANs is fixed at 1, as in the Tiers implementation the paper
// used): intranetwork redundancy counts extra links added to a network
// beyond its spanning tree, internetwork redundancy counts the links tying
// a network to the tier above. With the paper's headline row (RW=RM=20,
// RMW=20, RLM=1) this lands on the reported 5000 nodes at average degree
// ~2.8 and reproduces the Tiers signature: mesh-like slow expansion, high
// resilience (each MAN is multiply homed), low distortion.
package tiers

import (
	"fmt"
	"math/rand"
	"sort"

	"topocmp/internal/geo"
	"topocmp/internal/graph"
)

// Params configures Tiers.
type Params struct {
	MANsPerWAN int // number of MANs attached to the WAN
	LANsPerMAN int // number of LANs attached to each MAN
	WANNodes   int // nodes in the WAN
	MANNodes   int // nodes per MAN
	LANNodes   int // nodes per LAN, including its gateway
	RW         int // intra-WAN redundancy: RW-1 extra links beyond the MST
	RM         int // intra-MAN redundancy: RM-1 extra links per MAN
	RL         int // intra-LAN redundancy (1 = star)
	RMW        int // MAN-to-WAN links per MAN
	RLM        int // LAN-to-MAN links per LAN
}

// Paper returns the headline Figure 1 parameterization: 5000 nodes
// (1 WAN ×500, 50 MANs ×40, 500 LANs ×5) at average degree ≈ 2.8.
func Paper() Params {
	return Params{
		MANsPerWAN: 50, LANsPerMAN: 10,
		WANNodes: 500, MANNodes: 40, LANNodes: 5,
		RW: 20, RM: 20, RL: 1, RMW: 20, RLM: 1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.WANNodes < 1 {
		return fmt.Errorf("tiers: WANNodes = %d < 1", p.WANNodes)
	}
	if p.MANsPerWAN < 0 || p.LANsPerMAN < 0 {
		return fmt.Errorf("tiers: negative network counts: %+v", p)
	}
	if p.MANsPerWAN > 0 && p.MANNodes < 1 {
		return fmt.Errorf("tiers: MANs requested but MANNodes = %d", p.MANNodes)
	}
	if p.LANsPerMAN > 0 && p.LANNodes < 1 {
		return fmt.Errorf("tiers: LANs requested but LANNodes = %d", p.LANNodes)
	}
	if p.RW < 1 || p.RM < 1 || p.RL < 1 || p.RMW < 1 || p.RLM < 1 {
		return fmt.Errorf("tiers: redundancy parameters must be >= 1: %+v", p)
	}
	return nil
}

// NumNodes returns the node count the parameters produce.
func (p Params) NumNodes() int {
	return p.WANNodes +
		p.MANsPerWAN*p.MANNodes +
		p.MANsPerWAN*p.LANsPerMAN*p.LANNodes
}

// Generate builds a Tiers topology. The graph is connected by construction:
// every tier is an MST plus redundancy and every lower tier homes onto the
// tier above.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewStreamBuilder(p.NumNodes())
	next := 0
	alloc := func(k int) []int32 {
		ids := make([]int32, k)
		for i := range ids {
			ids[i] = int32(next)
			next++
		}
		return ids
	}

	// WAN tier.
	wanIDs := alloc(p.WANNodes)
	wanPts := geo.RandomPoints(r, p.WANNodes, 1000)
	meshTier(b, wanIDs, wanPts, p.RW)

	// MAN tier. Each MAN sits at a location on the WAN plane and, like
	// Tiers, homes onto its geographically nearest WAN nodes — locality is
	// what concentrates usage on the central WAN links (the strict
	// hierarchy of §5.1) while keeping balls mesh-like.
	manIDs := make([][]int32, p.MANsPerWAN)
	manPts := make([][]geo.Point, p.MANsPerWAN)
	for m := range manIDs {
		ids := alloc(p.MANNodes)
		pts := geo.RandomPoints(r, p.MANNodes, 100)
		meshTier(b, ids, pts, p.RM)
		manIDs[m] = ids
		manPts[m] = pts
		site := geo.Point{X: r.Float64() * 1000, Y: r.Float64() * 1000}
		for _, h := range nearestPoints(wanPts, site, p.RMW) {
			b.AddEdge(ids[r.Intn(len(ids))], wanIDs[h])
		}
	}

	// LAN tier: gateway + star hosts; the gateway homes onto the RLM
	// nearest MAN nodes from the LAN's site on the MAN plane.
	for m := range manIDs {
		for l := 0; l < p.LANsPerMAN; l++ {
			lan := alloc(p.LANNodes)
			gateway := lan[0]
			hosts := lan[1:]
			for _, h := range hosts {
				b.AddEdge(gateway, h)
			}
			// RL > 1 adds secondary hubs: extra star arms from other LAN
			// nodes, Tiers' LAN redundancy.
			for extra := 1; extra < p.RL && len(hosts) > 1; extra++ {
				hub := hosts[(extra-1)%len(hosts)]
				for _, h := range lan {
					if h != hub {
						b.AddEdge(hub, h)
					}
				}
			}
			site := geo.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
			for _, h := range nearestPoints(manPts[m], site, p.RLM) {
				b.AddEdge(gateway, manIDs[m][h])
			}
		}
	}
	g := b.Graph()
	if !g.IsConnected() {
		return nil, fmt.Errorf("tiers: internal error: disconnected graph")
	}
	return g, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}

// meshTier connects ids with a Euclidean MST over pts, then adds
// redundancy-1 extra links in order of increasing inter-node distance,
// skipping pairs already linked and capping any node at a fair share of the
// extras so they spread across the network.
//
// Every edge among this tier's ids is added by this call (homing links
// always cross tiers), so the already-linked test is answered by a local
// seen-set over tier-local indices rather than the builder — which lets the
// whole generator stream into a graph.StreamBuilder.
func meshTier(b graph.EdgeAdder, ids []int32, pts []geo.Point, redundancy int) {
	if len(ids) < 2 {
		return
	}
	localKey := func(u, v int) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(u)<<32 | uint64(uint32(v))
	}
	seen := make(map[uint64]bool)
	for _, e := range geo.MST(pts) {
		b.AddEdge(ids[e.U], ids[e.V])
		seen[localKey(e.U, e.V)] = true
	}
	extra := redundancy - 1
	if extra <= 0 {
		return
	}
	perNode := 2 + 4*extra/len(ids)
	degree := make([]int, len(ids))
	for _, pr := range geo.PairsByDistance(pts) {
		if extra <= 0 {
			break
		}
		if degree[pr.U] >= perNode || degree[pr.V] >= perNode {
			continue
		}
		if seen[localKey(pr.U, pr.V)] {
			continue
		}
		seen[localKey(pr.U, pr.V)] = true
		b.AddEdge(ids[pr.U], ids[pr.V])
		degree[pr.U]++
		degree[pr.V]++
		extra--
	}
}

// nearestPoints returns the indices of the min(k, len(pts)) points closest
// to site, by selection over distances.
func nearestPoints(pts []geo.Point, site geo.Point, k int) []int {
	if k > len(pts) {
		k = len(pts)
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return pts[idx[a]].Dist(site) < pts[idx[b]].Dist(site)
	})
	return idx[:k]
}
