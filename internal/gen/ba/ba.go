// Package ba implements the Barabási–Albert preferential-attachment model
// ("Emergence of Scaling in Random Networks", Science 1999) and the
// Albert–Barabási extension with link addition and rewiring ("Topology of
// Evolving Networks: Local Events and Universality", PRL 2000), the "B-A"
// degree-based generator of the paper's Appendix D.
package ba

import (
	"fmt"
	"math/rand"

	"topocmp/internal/graph"
)

// Params configures the generator.
type Params struct {
	N  int // final node count
	M  int // links added per new node
	M0 int // seed clique size; defaults to M+1

	// Extension probabilities (Albert–Barabási 2000). With probability P a
	// step adds M links between existing nodes (preferentially); with
	// probability Q it rewires M links; otherwise it adds a new node. Both
	// zero gives classic B-A.
	P, Q float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("ba: M = %d < 1", p.M)
	}
	m0 := p.M0
	if m0 == 0 {
		m0 = p.M + 1
	}
	if m0 <= p.M {
		return fmt.Errorf("ba: M0 = %d must exceed M = %d", m0, p.M)
	}
	if p.N < m0 {
		return fmt.Errorf("ba: N = %d smaller than seed %d", p.N, m0)
	}
	if p.P < 0 || p.Q < 0 || p.P+p.Q >= 1 {
		return fmt.Errorf("ba: need P, Q >= 0 and P+Q < 1, got %v, %v", p.P, p.Q)
	}
	return nil
}

// Generate grows a Barabási–Albert graph. The result is connected by
// construction for the classic model; for the extension, the largest
// component is returned.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m0 := p.M0
	if m0 == 0 {
		m0 = p.M + 1
	}
	b := graph.NewBuilder(p.N)
	// repeated holds one entry per edge endpoint: sampling a uniform entry
	// is sampling a node proportionally to degree.
	repeated := make([]int32, 0, 2*p.M*p.N)
	// Seed: a clique of m0 nodes so preferential attachment has mass.
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(int32(i), int32(j))
			repeated = append(repeated, int32(i), int32(j))
		}
	}
	addPreferentialEdge := func(u int32, exclude map[int32]bool) bool {
		for attempt := 0; attempt < 32; attempt++ {
			v := repeated[r.Intn(len(repeated))]
			if v == u || exclude[v] || b.HasEdge(u, v) {
				continue
			}
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
			exclude[v] = true
			return true
		}
		return false
	}
	next := m0
	for next < p.N {
		roll := r.Float64()
		switch {
		case roll < p.P && next > m0:
			// Add M links between existing nodes: one uniformly chosen
			// endpoint, one preferential.
			for i := 0; i < p.M; i++ {
				u := int32(r.Intn(next))
				addPreferentialEdge(u, map[int32]bool{})
			}
		case roll < p.P+p.Q && next > m0:
			// Rewire M links: remove a random link of a random node and
			// re-attach preferentially. Builder cannot remove edges, so we
			// emulate by preferential re-attachment only (adds locality
			// churn); the stationary degree distribution is unaffected for
			// small Q.
			for i := 0; i < p.M; i++ {
				u := int32(r.Intn(next))
				addPreferentialEdge(u, map[int32]bool{})
			}
		default:
			u := int32(next)
			exclude := map[int32]bool{}
			for i := 0; i < p.M; i++ {
				addPreferentialEdge(u, exclude)
			}
			next++
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
