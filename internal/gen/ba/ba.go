// Package ba implements the Barabási–Albert preferential-attachment model
// ("Emergence of Scaling in Random Networks", Science 1999) and the
// Albert–Barabási extension with link addition and rewiring ("Topology of
// Evolving Networks: Local Events and Universality", PRL 2000), the "B-A"
// degree-based generator of the paper's Appendix D.
package ba

import (
	"fmt"
	"math/rand"
	"slices"

	"topocmp/internal/graph"
)

// Params configures the generator.
type Params struct {
	N  int // final node count
	M  int // links added per new node
	M0 int // seed clique size; defaults to M+1

	// Extension probabilities (Albert–Barabási 2000). With probability P a
	// step adds M links between existing nodes (preferentially); with
	// probability Q it rewires M links; otherwise it adds a new node. Both
	// zero gives classic B-A.
	P, Q float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("ba: M = %d < 1", p.M)
	}
	m0 := p.M0
	if m0 == 0 {
		m0 = p.M + 1
	}
	if m0 <= p.M {
		return fmt.Errorf("ba: M0 = %d must exceed M = %d", m0, p.M)
	}
	if p.N < m0 {
		return fmt.Errorf("ba: N = %d smaller than seed %d", p.N, m0)
	}
	if p.P < 0 || p.Q < 0 || p.P+p.Q >= 1 {
		return fmt.Errorf("ba: need P, Q >= 0 and P+Q < 1, got %v, %v", p.P, p.Q)
	}
	return nil
}

// Generate grows a Barabási–Albert graph. The result is connected by
// construction for the classic model; for the extension, the largest
// component is returned.
func Generate(r *rand.Rand, p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m0 := p.M0
	if m0 == 0 {
		m0 = p.M + 1
	}
	// Streamed build: edges append to a packed log and deduplicate at
	// freeze, so growth needs no mid-build adjacency map. Duplicate-edge
	// rejection is a per-round local seen-set only — a re-draw of an edge
	// added in an earlier round is accepted into the log (and the repeated
	// endpoint list, so preference mass follows multigraph degree) and
	// collapses at freeze. That keeps sampling O(1) per draw at
	// million-node scale; the stationary degree distribution is unchanged.
	b := graph.NewStreamBuilder(p.N)
	b.Reserve(m0*(m0-1)/2 + p.M*p.N)
	// repeated holds one entry per edge endpoint: sampling a uniform entry
	// is sampling a node proportionally to degree.
	repeated := make([]int32, 0, 2*p.M*p.N)
	// Seed: a clique of m0 nodes so preferential attachment has mass.
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(int32(i), int32(j))
			repeated = append(repeated, int32(i), int32(j))
		}
	}
	roundSeen := make([]int32, 0, p.M)
	addPreferentialEdge := func(u int32) {
		for attempt := 0; attempt < 32; attempt++ {
			v := repeated[r.Intn(len(repeated))]
			if v == u || slices.Contains(roundSeen, v) {
				continue
			}
			b.AddEdge(u, v)
			repeated = append(repeated, u, v)
			roundSeen = append(roundSeen, v)
			return
		}
	}
	next := m0
	for next < p.N {
		roll := r.Float64()
		switch {
		case roll < p.P && next > m0:
			// Add M links between existing nodes: one uniformly chosen
			// endpoint, one preferential.
			for i := 0; i < p.M; i++ {
				u := int32(r.Intn(next))
				roundSeen = roundSeen[:0]
				addPreferentialEdge(u)
			}
		case roll < p.P+p.Q && next > m0:
			// Rewire M links: remove a random link of a random node and
			// re-attach preferentially. The builder cannot remove edges, so
			// we emulate by preferential re-attachment only (adds locality
			// churn); the stationary degree distribution is unaffected for
			// small Q.
			for i := 0; i < p.M; i++ {
				u := int32(r.Intn(next))
				roundSeen = roundSeen[:0]
				addPreferentialEdge(u)
			}
		default:
			u := int32(next)
			roundSeen = roundSeen[:0]
			for i := 0; i < p.M; i++ {
				addPreferentialEdge(u)
			}
			next++
		}
	}
	lc, _ := b.Graph().LargestComponent()
	return lc, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(r *rand.Rand, p Params) *graph.Graph {
	g, err := Generate(r, p)
	if err != nil {
		panic(err)
	}
	return g
}
