package ba

import (
	"math/rand"
	"testing"

	"topocmp/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 100, M: 0},
		{N: 2, M: 3},
		{N: 100, M: 2, M0: 2},
		{N: 100, M: 2, P: 0.6, Q: 0.5},
		{N: 100, M: 2, P: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestClassicBA(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(1)), Params{N: 3000, M: 2})
	if g.NumNodes() != 3000 {
		t.Fatalf("nodes = %d, want 3000 (classic BA is connected)", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("BA must be connected")
	}
	// ~M edges per node beyond the seed.
	if e := g.NumEdges(); e < 5500 || e > 6500 {
		t.Fatalf("edges = %d, want ~6000", e)
	}
}

func TestBADegreeTail(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(2)), Params{N: 8000, M: 2})
	if g.MaxDegree() < 50 {
		t.Fatalf("max degree = %d; BA should grow hubs", g.MaxDegree())
	}
	ccdf := stats.CCDF(g.Degrees())
	fit := stats.LogLogFit(ccdf.Points)
	// BA gives P(k) ~ k^-3, CCDF slope ~ -2; accept a broad band.
	if fit.Slope > -1.0 {
		t.Fatalf("CCDF slope = %.2f; tail too flat", fit.Slope)
	}
}

func TestExtensionAddsLinks(t *testing.T) {
	classic := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2000, M: 2})
	extended := MustGenerate(rand.New(rand.NewSource(3)), Params{N: 2000, M: 2, P: 0.3})
	if extended.AvgDegree() <= classic.AvgDegree() {
		t.Fatalf("link-addition steps should raise density: %.2f vs %.2f",
			extended.AvgDegree(), classic.AvgDegree())
	}
}

func TestMinDegreeIsM(t *testing.T) {
	g := MustGenerate(rand.New(rand.NewSource(4)), Params{N: 1000, M: 3})
	low := 0
	for _, d := range g.Degrees() {
		if d < 3 {
			low++
		}
	}
	// Almost every node should carry at least its M attachment links;
	// allow a handful of misses from the bounded retry loop.
	if low > 10 {
		t.Fatalf("%d nodes below degree M", low)
	}
}

func TestDeterminism(t *testing.T) {
	p := Params{N: 1500, M: 2, P: 0.1, Q: 0.1}
	a := MustGenerate(rand.New(rand.NewSource(5)), p)
	b := MustGenerate(rand.New(rand.NewSource(5)), p)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed should reproduce the same graph")
	}
}
