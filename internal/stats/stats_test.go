package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCCDF(t *testing.T) {
	s := CCDF([]int{1, 1, 2, 3})
	want := []Point{{1, 1}, {2, 0.5}, {3, 0.25}}
	if len(s.Points) != len(want) {
		t.Fatalf("points = %v", s.Points)
	}
	for i, p := range want {
		if s.Points[i] != p {
			t.Fatalf("point %d = %v, want %v", i, s.Points[i], p)
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if s := CCDF(nil); s.Len() != 0 {
		t.Fatal("CCDF(nil) should be empty")
	}
}

// Property: CCDF is non-increasing in value, starts at 1.
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v % 20)
		}
		s := CCDF(xs)
		if s.Points[0].Y != 1 {
			return false
		}
		for i := 1; i < s.Len(); i++ {
			if s.Points[i].Y > s.Points[i-1].Y || s.Points[i].X <= s.Points[i-1].X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRankDistribution(t *testing.T) {
	s := RankDistribution([]float64{0.1, 0.9, 0.5})
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Points[0].Y != 0.9 || s.Points[2].Y != 0.1 {
		t.Fatalf("points = %v", s.Points)
	}
	if math.Abs(s.Points[0].X-1.0/3) > 1e-12 || s.Points[2].X != 1 {
		t.Fatalf("ranks = %v", s.Points)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4}); r != 0 {
		t.Fatalf("zero-variance Pearson = %v, want 0", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty Pearson = %v, want 0", r)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

// Property: |Pearson| <= 1.
func TestPearsonBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20
		xs, ys := make([]float64, n), make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	pts := []Point{{0, 1}, {1, 3}, {2, 5}}
	f := LinearFit(pts)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 5 x^{-2.3}
	var pts []Point
	for x := 1.0; x <= 100; x *= 1.5 {
		pts = append(pts, Point{x, 5 * math.Pow(x, -2.3)})
	}
	f := LogLogFit(pts)
	if math.Abs(f.Slope+2.3) > 1e-9 {
		t.Fatalf("slope = %v, want -2.3", f.Slope)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestSemiLogFitExponential(t *testing.T) {
	// y = 2 * e^{0.7 x}
	var pts []Point
	for x := 0.0; x < 10; x++ {
		pts = append(pts, Point{x, 2 * math.Exp(0.7*x)})
	}
	f := SemiLogFit(pts)
	if math.Abs(f.Slope-0.7) > 1e-9 {
		t.Fatalf("slope = %v, want 0.7", f.Slope)
	}
}

func TestLogFitsSkipNonPositive(t *testing.T) {
	f := LogLogFit([]Point{{0, 1}, {-1, 2}, {1, 0}})
	if f.Slope != 0 || f.R2 != 0 {
		t.Fatalf("fit of empty log set = %+v", f)
	}
}

func TestBucketize(t *testing.T) {
	pts := []Point{{1, 1}, {1.1, 3}, {100, 10}, {110, 20}}
	s := Bucketize(pts, 2)
	if s.Len() != 2 {
		t.Fatalf("buckets = %v", s.Points)
	}
	if math.Abs(s.Points[0].Y-2) > 1e-12 {
		t.Fatalf("first bucket avg = %v, want 2", s.Points[0].Y)
	}
	if math.Abs(s.Points[1].Y-15) > 1e-12 {
		t.Fatalf("second bucket avg = %v, want 15", s.Points[1].Y)
	}
}

func TestBucketizeBadRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bucketize(nil, 1)
}

func TestSeriesYAt(t *testing.T) {
	s := Series{Points: []Point{{1, 10}, {5, 50}, {9, 90}}}
	if y := s.YAt(0.5); y != 10 {
		t.Fatalf("YAt(0.5) = %v", y)
	}
	if y := s.YAt(5); y != 50 {
		t.Fatalf("YAt(5) = %v", y)
	}
	if y := s.YAt(7); y != 50 {
		t.Fatalf("YAt(7) = %v", y)
	}
	if y := s.YAt(100); y != 90 {
		t.Fatalf("YAt(100) = %v", y)
	}
}

func TestQuantileAndFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 10 {
		t.Fatalf("q1 = %v", q)
	}
	if f := FractionAbove(xs, 5); f != 0.5 {
		t.Fatalf("FractionAbove = %v, want 0.5", f)
	}
	if f := FractionAbove(nil, 0); f != 0 {
		t.Fatalf("empty FractionAbove = %v", f)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestMaxY(t *testing.T) {
	s := Series{Points: []Point{{1, 3}, {2, 7}, {3, 2}}}
	if m := s.MaxY(); m != 7 {
		t.Fatalf("MaxY = %v", m)
	}
	var empty Series
	if !math.IsNaN(empty.MaxY()) {
		t.Fatal("empty MaxY should be NaN")
	}
}
