package stats

import "math"

// WeibullFit holds the estimated parameters of a Weibull tail
// P(X > x) = exp(-(x/Lambda)^K), the alternative to a strict power law that
// Broido and Claffy report for Internet degree distributions (the paper's
// §2 notes it does not care which form holds, only that the tail is heavy).
type WeibullFit struct {
	K, Lambda float64
	R2        float64
}

// FitWeibullTail estimates K and Lambda from CCDF points by regressing
// ln(-ln CCDF(x)) on ln(x). Points with CCDF values of exactly 1 or 0 (or
// nonpositive x) carry no information for the linearization and are
// skipped.
func FitWeibullTail(ccdf Series) WeibullFit {
	var pts []Point
	for _, p := range ccdf.Points {
		if p.X <= 0 || p.Y <= 0 || p.Y >= 1 {
			continue
		}
		pts = append(pts, Point{math.Log(p.X), math.Log(-math.Log(p.Y))})
	}
	f := LinearFit(pts)
	out := WeibullFit{K: f.Slope, R2: f.R2}
	if f.Slope != 0 {
		out.Lambda = math.Exp(-f.Intercept / f.Slope)
	}
	return out
}

// WeibullCCDF evaluates the fitted tail at x.
func (w WeibullFit) WeibullCCDF(x float64) float64 {
	if w.Lambda <= 0 || x <= 0 {
		return math.NaN()
	}
	return math.Exp(-math.Pow(x/w.Lambda, w.K))
}
