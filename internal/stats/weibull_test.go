package stats

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/rng"
)

func TestFitWeibullTailExact(t *testing.T) {
	// Synthesize an exact Weibull CCDF and recover its parameters.
	want := WeibullFit{K: 0.6, Lambda: 3.5}
	var ccdf Series
	for x := 0.5; x <= 80; x *= 1.3 {
		ccdf.Add(x, math.Exp(-math.Pow(x/want.Lambda, want.K)))
	}
	got := FitWeibullTail(ccdf)
	if math.Abs(got.K-want.K) > 1e-9 || math.Abs(got.Lambda-want.Lambda) > 1e-6 {
		t.Fatalf("fit = %+v, want %+v", got, want)
	}
	if got.R2 < 0.999 {
		t.Fatalf("R2 = %v", got.R2)
	}
}

func TestFitWeibullTailOnSampledData(t *testing.T) {
	// Sample Weibull variates, build an empirical CCDF, refit.
	r := rand.New(rand.NewSource(1))
	xs := make([]int, 30000)
	for i := range xs {
		xs[i] = int(rng.Weibull(r, 5, 0.8)) + 1
	}
	ccdf := CCDF(xs)
	fit := FitWeibullTail(ccdf)
	if fit.K < 0.6 || fit.K > 1.05 {
		t.Fatalf("K = %v, want ~0.8 (discretization shifts it slightly)", fit.K)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitWeibullSkipsDegeneratePoints(t *testing.T) {
	var ccdf Series
	ccdf.Add(0, 1) // skipped: x <= 0
	ccdf.Add(1, 1) // skipped: CCDF = 1
	ccdf.Add(2, 0) // skipped: CCDF = 0
	fit := FitWeibullTail(ccdf)
	if fit.K != 0 || fit.Lambda != 0 {
		t.Fatalf("degenerate fit = %+v, want zero", fit)
	}
}

func TestWeibullCCDFEval(t *testing.T) {
	w := WeibullFit{K: 1, Lambda: 2}
	if v := w.WeibullCCDF(2); math.Abs(v-math.Exp(-1)) > 1e-12 {
		t.Fatalf("CCDF(2) = %v", v)
	}
	if !math.IsNaN(w.WeibullCCDF(-1)) {
		t.Fatal("negative x should give NaN")
	}
	bad := WeibullFit{}
	if !math.IsNaN(bad.WeibullCCDF(1)) {
		t.Fatal("unfit model should give NaN")
	}
}
