package stats

import (
	"math"
	"testing"
)

func TestMeanStdErrFPC(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Exhaustive sample: exactly zero, not merely tiny.
	if se := MeanStdErrFPC(xs, 5); se != 0 {
		t.Errorf("k == pop: want 0, got %v", se)
	}
	// Degenerate inputs never produce NaN.
	for _, se := range []float64{
		MeanStdErrFPC(nil, 100),
		MeanStdErrFPC([]float64{3}, 100),
		MeanStdErrFPC(xs, 1),
	} {
		if se != 0 {
			t.Errorf("degenerate input: want 0, got %v", se)
		}
	}
	// Hand-check against the formula: sd/sqrt(k) * sqrt((N-k)/(N-1)).
	pop := 100
	sd := math.Sqrt(2.5) // sample sd of 1..5
	want := sd / math.Sqrt(5) * math.Sqrt(95.0/99.0)
	if got := MeanStdErrFPC(xs, pop); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	// Larger samples from the same population tighten the bound.
	big := make([]float64, 50)
	for i := range big {
		big[i] = xs[i%5]
	}
	if MeanStdErrFPC(big, pop) >= MeanStdErrFPC(xs, pop) {
		t.Error("stderr did not shrink with sample size")
	}
}

func TestPropStdErrFPC(t *testing.T) {
	if se := PropStdErrFPC(0.3, 50, 50); se != 0 {
		t.Errorf("exhaustive: want 0, got %v", se)
	}
	if se := PropStdErrFPC(0.3, 1, 100); se != 0 {
		t.Errorf("k=1: want 0, got %v", se)
	}
	want := math.Sqrt(0.3*0.7/50) * math.Sqrt(50.0/99.0)
	if got := PropStdErrFPC(0.3, 50, 100); math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
	if PropStdErrFPC(0.3, 80, 100) >= PropStdErrFPC(0.3, 20, 100) {
		t.Error("stderr did not shrink with sample size")
	}
}

// TestSortByXPairsStdErr pins the pairing contract: sorting by X must carry
// each point's bound with it.
func TestSortByXPairsStdErr(t *testing.T) {
	var s Series
	s.AddWithErr(3, 30, 0.3)
	s.AddWithErr(1, 10, 0.1)
	s.AddWithErr(2, 20, 0.2)
	s.SortByX()
	for i, want := range []float64{0.1, 0.2, 0.3} {
		if s.StdErr[i] != want {
			t.Errorf("StdErr[%d] = %v, want %v (points %v)", i, s.StdErr[i], want, s.Points)
		}
		if s.Points[i].X != float64(i+1) {
			t.Errorf("Points[%d].X = %v, want %v", i, s.Points[i].X, i+1)
		}
	}
}

// TestAddWithErrPadsEarlierPoints: mixing Add and AddWithErr zero-pads the
// bound slice so it stays parallel to Points.
func TestAddWithErrPadsEarlierPoints(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.AddWithErr(3, 30, 0.5)
	if len(s.StdErr) != 3 || s.StdErr[0] != 0 || s.StdErr[1] != 0 || s.StdErr[2] != 0.5 {
		t.Errorf("StdErr = %v, want [0 0 0.5]", s.StdErr)
	}
}
