// Package stats provides the statistical utilities the metric suite and the
// figure harness share: CCDFs and rank distributions, Pearson correlation,
// least-squares fits in linear and log-log space (power-law exponent
// estimation), and a small Series type representing one plotted curve.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is a single (X, Y) sample of a curve.
type Point struct{ X, Y float64 }

// Series is one named curve of a figure, e.g. the expansion of one topology.
//
// StdErr, when non-nil, parallels Points with a per-point standard error of
// the Y estimate: the sampled-estimator contract. nil means "no bound
// attached" (exhaustive legacy metrics); an all-zero slice means the series
// was fully enumerated, so the sampling error is exactly zero. Code that
// appends to Points via Add keeps StdErr nil; use AddWithErr to grow both.
type Series struct {
	Name   string
	Points []Point
	StdErr []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// AddWithErr appends a sample with its standard error, padding StdErr with
// zeros if earlier samples were added without one.
func (s *Series) AddWithErr(x, y, se float64) {
	for len(s.StdErr) < len(s.Points) {
		s.StdErr = append(s.StdErr, 0)
	}
	s.Points = append(s.Points, Point{x, y})
	s.StdErr = append(s.StdErr, se)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// SortByX orders the samples by increasing X, carrying any per-point
// standard errors along with their points.
func (s *Series) SortByX() {
	if s.StdErr == nil {
		sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
		return
	}
	for len(s.StdErr) < len(s.Points) {
		s.StdErr = append(s.StdErr, 0)
	}
	idx := make([]int, len(s.Points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.Points[idx[a]].X < s.Points[idx[b]].X })
	pts := make([]Point, len(idx))
	ses := make([]float64, len(idx))
	for i, j := range idx {
		pts[i] = s.Points[j]
		ses[i] = s.StdErr[j]
	}
	s.Points, s.StdErr = pts, ses
}

// YAt returns the Y value at the sample with the largest X <= x, or the
// first sample's Y if x precedes all samples. The series must be sorted.
func (s *Series) YAt(x float64) float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].X > x })
	if i == 0 {
		return s.Points[0].Y
	}
	return s.Points[i-1].Y
}

// MaxY returns the largest Y value, or NaN for an empty series.
func (s *Series) MaxY() float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	max := s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y > max {
			max = p.Y
		}
	}
	return max
}

// CCDF returns the complementary cumulative distribution of the integer
// sample xs: points (k, P(X >= k)) for each distinct value k. This is the
// "complementary cumulative frequency" plotted in the paper's Appendix A.
func CCDF(xs []int) Series {
	if len(xs) == 0 {
		return Series{}
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	n := float64(len(sorted))
	var s Series
	for i := 0; i < len(sorted); {
		k := sorted[i]
		// P(X >= k) = fraction of samples at index >= i.
		s.Add(float64(k), float64(len(sorted)-i)/n)
		j := i
		for j < len(sorted) && sorted[j] == k {
			j++
		}
		i = j
	}
	return s
}

// RankDistribution sorts values descending and returns points
// (rank/len, value): the normalized rank plots of Figures 3 and 4.
func RankDistribution(values []float64) Series {
	sorted := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var s Series
	n := float64(len(sorted))
	for i, v := range sorted {
		s.Add(float64(i+1)/n, v)
	}
	return s
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanStdErrFPC returns the standard error of the sample mean of xs drawn
// without replacement from a population of size pop, with the finite
// population correction sqrt((N-k)/(N-1)) applied. It is exactly zero when
// the sample covers the whole population — which is how full-enumeration
// runs report zero-width bounds — and shrinks as the sample grows. Returns
// 0 for samples of size < 2 or nonsensical pop.
func MeanStdErrFPC(xs []float64, pop int) float64 {
	k := len(xs)
	if k < 2 || pop < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(k-1))
	se := sd / math.Sqrt(float64(k))
	if k >= pop {
		return 0
	}
	return se * math.Sqrt(float64(pop-k)/float64(pop-1))
}

// PropStdErrFPC returns the standard error of a sample proportion p
// estimated from k draws without replacement out of a population of pop,
// finite-population corrected. Zero when the sample is exhaustive.
func PropStdErrFPC(p float64, k, pop int) float64 {
	if k < 2 || pop < 2 || k >= pop {
		return 0
	}
	se := math.Sqrt(p * (1 - p) / float64(k))
	return se * math.Sqrt(float64(pop-k)/float64(pop-1))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 if either variable has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Fit is the result of a least-squares line fit y = Slope*x + Intercept.
type Fit struct {
	Slope, Intercept float64
	R2               float64
}

// LinearFit fits a least-squares line through the points.
func LinearFit(pts []Point) Fit {
	n := float64(len(pts))
	if n < 2 {
		return Fit{R2: 0}
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for _, p := range pts {
		dx, dy := p.X-mx, p.Y-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{Intercept: my}
	}
	slope := sxy / sxx
	f := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		f.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		f.R2 = 1
	}
	return f
}

// LogLogFit fits log(y) = Slope*log(x) + Intercept over points with
// positive coordinates: the slope estimates a power-law exponent.
func LogLogFit(pts []Point) Fit {
	var lp []Point
	for _, p := range pts {
		if p.X > 0 && p.Y > 0 {
			lp = append(lp, Point{math.Log(p.X), math.Log(p.Y)})
		}
	}
	return LinearFit(lp)
}

// SemiLogFit fits log(y) = Slope*x + Intercept over points with positive Y:
// the fit quality distinguishes exponential from polynomial growth.
func SemiLogFit(pts []Point) Fit {
	var lp []Point
	for _, p := range pts {
		if p.Y > 0 {
			lp = append(lp, Point{p.X, math.Log(p.Y)})
		}
	}
	return LinearFit(lp)
}

// Bucketize aggregates raw (x, y) samples into geometric buckets of the
// given ratio (>1) and returns one averaged point per non-empty bucket.
// Metric curves keyed by ball size use this to tame sampling noise, like
// the paper's averaging of same-radius balls.
func Bucketize(pts []Point, ratio float64) Series {
	if ratio <= 1 {
		panic("stats: Bucketize ratio must exceed 1")
	}
	type acc struct {
		sx, sy float64
		n      int
	}
	buckets := map[int]*acc{}
	for _, p := range pts {
		if p.X <= 0 {
			continue
		}
		b := int(math.Floor(math.Log(p.X) / math.Log(ratio)))
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.sx += p.X
		a.sy += p.Y
		a.n++
	}
	var s Series
	for _, a := range buckets {
		s.Add(a.sx/float64(a.n), a.sy/float64(a.n))
	}
	s.SortByX()
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by nearest-rank on a
// sorted copy. NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// FractionAbove returns the fraction of values strictly above the threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cnt := 0
	for _, x := range xs {
		if x > threshold {
			cnt++
		}
	}
	return float64(cnt) / float64(len(xs))
}
