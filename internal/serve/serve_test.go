package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
)

// quickSuite is a suite configuration small enough that a Tree request
// completes in tens of milliseconds.
func quickSuite() core.SuiteOptions {
	return core.SuiteOptions{
		Sources: 4, MaxBallSize: 300, EigenRank: 8, LinkSources: 16,
		Seed: 5, SampleBudget: 8, SkipHierarchy: true,
	}
}

func quickSet() core.PaperSetOptions {
	return core.PaperSetOptions{Seed: 3, Scale: 0.12}
}

func suiteBody(t *testing.T) []byte {
	t.Helper()
	req := SuiteRequest{Network: "Tree", Set: quickSet(), Suite: quickSuite()}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// soloSuiteBody runs one suite request against a fresh server and returns
// the response bytes — the reference every other serving mode must match.
func soloSuiteBody(t *testing.T, opts Options) []byte {
	t.Helper()
	ts := httptest.NewServer(New(opts).Handler())
	defer ts.Close()
	code, _, body := postJSON(t, ts.URL+"/v1/suite", suiteBody(t))
	if code != http.StatusOK {
		t.Fatalf("solo suite: status %d: %s", code, body)
	}
	return body
}

// TestServeDedup is the singleflight contract: N identical concurrent
// requests execute exactly one suite, every waiter beyond the first counts
// as a dedup hit, and all responses are byte-identical to a solo run.
func TestServeDedup(t *testing.T) {
	want := soloSuiteBody(t, Options{Workers: 2})

	s := New(Options{Workers: 2, MaxInFlight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, body := postJSON(t, ts.URL+"/v1/suite", suiteBody(t))
			if code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, code, body)
				return
			}
			if src := hdr.Get("X-Topocmp-Source"); src != "computed" && src != "dedup" {
				t.Errorf("request %d: source %q", i, src)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("request %d: body differs from solo run (%d vs %d bytes)", i, len(b), len(want))
		}
	}
	if got := s.reg.Counter("serve.suite_runs").Value(); got != 1 {
		t.Fatalf("suite_runs = %d, want 1", got)
	}
	if got := s.reg.Counter("serve.dedup_hits").Value(); got != n-1 {
		t.Fatalf("dedup_hits = %d, want %d", got, n-1)
	}
	if got := s.reg.Counter("serve.requests").Value(); got != n {
		t.Fatalf("requests = %d, want %d", got, n)
	}
}

// TestServeMatchesDirect pins the byte-identity contract across every
// serving mode: the response body equals the deterministic marshal of the
// entry a direct core.RunSuite produces, whether the server computed it,
// memoized it, restored it from a CLI-warmed disk cache, or ran with dedup
// disabled.
func TestServeMatchesDirect(t *testing.T) {
	// Direct reference: what the CLI pipeline would compute and cache.
	n := core.BuildNetwork("Tree", quickSet())
	res := core.RunSuite(n, quickSuite())
	ent := experiments.MakeSuiteEntry(res, experiments.Summarize(n))
	want, err := marshalBody(ent)
	if err != nil {
		t.Fatal(err)
	}

	if got := soloSuiteBody(t, Options{Workers: 2}); !bytes.Equal(got, want) {
		t.Fatalf("computed body differs from direct run")
	}
	if got := soloSuiteBody(t, Options{Workers: 1, DisableDedup: true}); !bytes.Equal(got, want) {
		t.Fatalf("dedup-disabled body differs from direct run")
	}

	// Disk-cache path: warm the store the way a CLI run would, then serve
	// from a fresh server that computes nothing.
	dir := t.TempDir()
	store, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Set: quickSet(), Suite: quickSuite()}
	if err := store.Put(experiments.SuiteKey(cfg, "Tree"), ent); err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2, Cache: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, hdr, body := postJSON(t, ts.URL+"/v1/suite", suiteBody(t))
	if code != http.StatusOK {
		t.Fatalf("cache-path status %d: %s", code, body)
	}
	if src := hdr.Get("X-Topocmp-Source"); src != "cache" {
		t.Fatalf("source = %q, want cache", src)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("cache-served body differs from direct run")
	}
	if got := s.reg.Counter("serve.suite_runs").Value(); got != 0 {
		t.Fatalf("suite_runs = %d, want 0 (cache hit)", got)
	}

	// Memo path: a second identical request on a compute server attaches to
	// the completed flight.
	s2 := New(Options{Workers: 2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	postJSON(t, ts2.URL+"/v1/suite", suiteBody(t))
	_, hdr2, body2 := postJSON(t, ts2.URL+"/v1/suite", suiteBody(t))
	if src := hdr2.Get("X-Topocmp-Source"); src != "dedup" {
		t.Fatalf("memo source = %q, want dedup", src)
	}
	if !bytes.Equal(body2, want) {
		t.Fatalf("memo-served body differs from direct run")
	}
	if got := s2.reg.Counter("serve.suite_runs").Value(); got != 1 {
		t.Fatalf("suite_runs = %d, want 1", got)
	}
}

// TestServeMetricCoalesce checks the shared-sweep path: concurrent metric
// requests with overlapping center sets are batched into shared MSBFS
// sweeps, and every coalesced response is byte-identical to its solo run.
func TestServeMetricCoalesce(t *testing.T) {
	metricBody := func(seed int64, metric string) []byte {
		b, err := json.Marshal(MetricRequest{
			Network: "Tree", Set: quickSet(), Metric: metric, Sources: 32, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seeds := []int64{1, 2, 3, 4}
	// Solo references, each from a fresh coalescing-disabled server.
	want := map[string][]byte{}
	for _, seed := range seeds {
		for _, m := range []string{"expansion", "eccentricity"} {
			ts := httptest.NewServer(New(Options{Workers: 2, Window: -1}).Handler())
			code, _, body := postJSON(t, ts.URL+"/v1/metric", metricBody(seed, m))
			ts.Close()
			if code != http.StatusOK {
				t.Fatalf("solo metric: status %d: %s", code, body)
			}
			want[fmt.Sprintf("%s/%d", m, seed)] = body
		}
	}

	s := New(Options{Workers: 2, MaxInFlight: 16, Window: 25 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var wg sync.WaitGroup
	for _, seed := range seeds {
		for _, m := range []string{"expansion", "eccentricity"} {
			wg.Add(1)
			go func(seed int64, m string) {
				defer wg.Done()
				code, _, body := postJSON(t, ts.URL+"/v1/metric", metricBody(seed, m))
				if code != http.StatusOK {
					t.Errorf("metric %s/%d: status %d: %s", m, seed, code, body)
					return
				}
				if !bytes.Equal(body, want[fmt.Sprintf("%s/%d", m, seed)]) {
					t.Errorf("metric %s/%d: coalesced body differs from solo", m, seed)
				}
			}(seed, m)
		}
	}
	wg.Wait()
	batches := s.reg.Counter("serve.coalesce_batches").Value()
	submitted := s.reg.Counter("serve.coalesced_sources").Value()
	swept := s.reg.Counter("serve.coalesce_swept").Value()
	if batches < 1 {
		t.Fatalf("coalesce_batches = %d, want >= 1", batches)
	}
	if swept > submitted {
		t.Fatalf("swept %d > submitted %d: union grew past its inputs", swept, submitted)
	}
	// 8 requests of 32 centers each over a 1093-node graph must overlap;
	// if every request swept alone, no sharing happened.
	if batches >= 8 && swept == submitted {
		t.Fatalf("no sharing: %d batches, swept == submitted == %d", batches, swept)
	}
}

// noCache is the cached() stub for white-box serveKeyed tests.
func noCache() (any, bool) { return nil, false }

// TestServeSaturation pins bounded admission deterministically with a
// blocking compute: with MaxInFlight=1 and one computation in flight, a
// request for a different key is shed with 429 + Retry-After, while a
// request for the same key attaches instead of shedding.
func TestServeSaturation(t *testing.T) {
	s := New(Options{Workers: 2, MaxInFlight: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	first := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.serveKeyed(first, context.Background(), "k1", "x", noCache,
			func(ctx context.Context, _ int) (any, error) {
				close(started)
				<-block
				return &metricEntry{Network: "a"}, nil
			})
	}()
	<-started

	shed := httptest.NewRecorder()
	s.serveKeyed(shed, context.Background(), "k2", "x", noCache,
		func(ctx context.Context, _ int) (any, error) {
			t.Error("saturated compute ran")
			return nil, nil
		})
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", shed.Code)
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.reg.Counter("serve.rejected").Value(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	// Same key attaches past the admission bound.
	attached := httptest.NewRecorder()
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.serveKeyed(attached, context.Background(), "k1", "x", noCache,
			func(ctx context.Context, _ int) (any, error) {
				t.Error("dedup-able compute ran twice")
				return nil, nil
			})
	}()
	for s.reg.Counter("serve.dedup_hits").Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if first.Code != http.StatusOK || attached.Code != http.StatusOK {
		t.Fatalf("codes = %d, %d, want 200, 200", first.Code, attached.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), attached.Body.Bytes()) {
		t.Fatal("attached body differs from initiator's")
	}
}

// TestServeCancellation threads a waiter's deadline into the computation:
// when the only waiter gives up, the compute context is canceled, the
// waiter sees 504, and the errored flight is forgotten so a retry computes.
func TestServeCancellation(t *testing.T) {
	s := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	computeCanceled := make(chan struct{})
	started := make(chan struct{})
	w := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.serveKeyed(w, ctx, "k1", "x", noCache,
			func(cctx context.Context, _ int) (any, error) {
				close(started)
				<-cctx.Done()
				close(computeCanceled)
				return nil, cctx.Err()
			})
	}()
	<-started
	cancel()
	<-done
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", w.Code)
	}
	select {
	case <-computeCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context never canceled after last waiter left")
	}
	// The errored flight must not be memoized.
	for i := 0; i < 5000; i++ {
		s.mu.Lock()
		_, present := s.flights["k1"]
		s.mu.Unlock()
		if !present {
			break
		}
		time.Sleep(time.Millisecond)
	}
	w2 := httptest.NewRecorder()
	s.serveKeyed(w2, context.Background(), "k1", "x", noCache,
		func(cctx context.Context, _ int) (any, error) {
			return &metricEntry{Network: "retry"}, nil
		})
	if w2.Code != http.StatusOK {
		t.Fatalf("retry status = %d: %s", w2.Code, w2.Body.String())
	}
}

// TestServeBadRequests covers the request-validation surface.
func TestServeBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 1}).Handler())
	defer ts.Close()
	cases := []struct {
		path string
		body string
		want int
	}{
		{"/v1/suite", `{"Network":"Nope"}`, http.StatusBadRequest},
		{"/v1/suite", `{"Network":"Tree","Bogus":1}`, http.StatusBadRequest},
		{"/v1/suite", `{`, http.StatusBadRequest},
		{"/v1/metric", `{"Network":"Tree","Metric":"distortion"}`, http.StatusBadRequest},
		{"/v1/metric", `{"Network":"Nope","Metric":"expansion"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, body := postJSON(t, ts.URL+c.path, []byte(c.body))
		if code != c.want {
			t.Errorf("POST %s %s: status %d, want %d (%s)", c.path, c.body, code, c.want, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/suite")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/suite: %d, want 405", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	var nets networksResponse
	if err := json.NewDecoder(resp.Body).Decode(&nets); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nets.Networks) != len(experiments.AllTableNames) {
		t.Fatalf("networks = %v", nets.Networks)
	}
}
