// Package serve is the request-coalescing serving layer behind cmd/topocmpd:
// a long-running HTTP daemon answering generator+metric queries over the
// same SuiteOptions/PaperSetOptions vocabulary the CLI runs. Three admission
// mechanisms make many concurrent clients cheap:
//
//   - Singleflight dedup. Every request is content-addressed by the exact
//     key the experiment pipeline caches under (experiments.SuiteKey — the
//     dedup key contract IS the cache key contract), so concurrent requests
//     for the same work attach to one in-flight execution, later requests
//     serve from the in-process memo, and a disk store warmed by a CLI run
//     satisfies daemon requests without computing anything.
//
//   - Cross-request sweep coalescing. Concurrent distance-metric requests
//     against the same graph submit their BFS centers to a per-engine
//     coalescer (see coalesce.go), which batches a short admission window's
//     worth of submissions into one shared MSBFS strip set; the per-request
//     metric assembly then reads the warm cum-profile cache. Level counts
//     are order-independent integers, so coalesced responses are
//     byte-identical to solo ones.
//
//   - Bounded admission. At most MaxInFlight suites compute at once (excess
//     requests that cannot dedup or hit the cache are shed with 429 +
//     Retry-After), each granted an equal share of one weighted worker
//     semaphore — the same no-oversubscription discipline as the pipeline's
//     Prefetch — and each carries its request context into the suite so a
//     hung-up client cancels work nobody is waiting for.
//
// Responses are built solely from the cacheable entry forms (SuiteEntry,
// metricEntry), never from transient state, so the computed, dedup, memo and
// disk-cache paths all marshal the same bytes. Per-request metadata (trace
// id, which path served it) travels in X-Topocmp-* headers only.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/obs"
)

// Options configures a Server. The zero value serves with NumCPU workers,
// two suite slots, a 2ms coalescing window, no deadline and no disk cache.
type Options struct {
	// Workers is the global worker budget shared by every computation the
	// server runs (suite stages, shared sweeps); 0 uses runtime.NumCPU.
	Workers int
	// MaxInFlight caps concurrently *computing* suites; requests beyond it
	// that cannot be served by dedup or the cache are shed with 429.
	// 0 means 2.
	MaxInFlight int
	// Window is the sweep-coalescing admission window: how long the first
	// distance-metric request against a graph waits for peers before the
	// shared sweep runs. 0 uses 2ms; negative disables coalescing (the
	// engine's per-center claim protocol still dedups overlap).
	Window time.Duration
	// Deadline, when positive, bounds every request that does not carry its
	// own TimeoutSeconds. The deadline cancels waiting and, when the last
	// waiter gives up, the computation itself.
	Deadline time.Duration
	// Cache is the optional content-addressed store shared with CLI runs;
	// nil serves memory-only.
	Cache *cache.Store
	// Tracer, when non-nil, receives one span per computed request. The span
	// tree grows with traffic, so this is a debugging aid, not a default.
	Tracer *obs.Tracer
	// DisableDedup turns off singleflight (every request computes) — the
	// naive baseline BenchmarkServe measures against.
	DisableDedup bool
	// KeepStages bounds completed per-request progress stages retained for
	// /debug/progress; older ones are forgotten. 0 means 64.
	KeepStages int
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o *Options) maxInFlight() int {
	if o.MaxInFlight > 0 {
		return o.MaxInFlight
	}
	return 2
}

func (o *Options) window() time.Duration {
	if o.Window == 0 {
		return 2 * time.Millisecond
	}
	if o.Window < 0 {
		return 0
	}
	return o.Window
}

func (o *Options) keepStages() int {
	if o.KeepStages > 0 {
		return o.KeepStages
	}
	return 64
}

// sem is a weighted counting semaphore (the pipeline's no-oversubscription
// primitive): acquire(k) blocks until k of the n tokens are free. Suite
// runs hold their granted width, shared sweeps hold the width they fan to.
type sem struct {
	mu    sync.Mutex
	cond  *sync.Cond
	avail int
}

func newSem(n int) *sem {
	s := &sem{avail: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *sem) acquire(k int) {
	s.mu.Lock()
	for s.avail < k {
		s.cond.Wait()
	}
	s.avail -= k
	s.mu.Unlock()
}

func (s *sem) release(k int) {
	s.mu.Lock()
	s.avail += k
	s.cond.Broadcast()
	s.mu.Unlock()
}

// flight is one keyed execution: the initiating request computes, every
// concurrent identical request attaches and waits on done. A completed
// flight stays in the map as the in-process memo for its key; an errored
// one is removed so a later request retries. The waiter refcount threads
// client interest into the computation: when the last waiter detaches, the
// compute context is canceled.
type flight struct {
	key  string
	done chan struct{}
	body []byte // valid after done when err == nil
	err  error

	mu      sync.Mutex
	waiters int
	cancel  context.CancelFunc
}

func (f *flight) attach() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

func (f *flight) detach() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel() // no-op once the computation has finished
	}
}

// Server answers suite and metric queries with singleflight dedup, sweep
// coalescing and bounded admission. Create one with New; it has no Close —
// the owner drains via http.Server.Shutdown and the computations it cancels.
type Server struct {
	opts   Options
	reg    *obs.Registry
	prog   *obs.Progress
	tracer *obs.Tracer

	tokens *sem // weighted worker budget, opts.workers() tokens

	mu       sync.Mutex
	flights  map[string]*flight
	inflight int      // flights currently computing (admission-bounded)
	recent   []string // completed per-request stage names, oldest first

	netMu sync.Mutex
	onces map[string]*sync.Once
	nets  map[string]*core.Network
	msets map[string]*core.MeasuredSet

	engMu   sync.Mutex
	engines map[string]*engineEntry

	traceSeq atomic.Int64

	cRequests         *obs.Counter
	cDedup            *obs.Counter
	cCacheHits        *obs.Counter
	cSuiteRuns        *obs.Counter
	cMetricRuns       *obs.Counter
	cRejected         *obs.Counter
	cCoalesceBatches  *obs.Counter
	cCoalescedSources *obs.Counter
	cCoalesceSwept    *obs.Counter
	hLatency          *obs.Histogram
}

// New returns a server over the options. The server owns its metrics
// registry and progress tracker (reachable via Metrics/Progress for
// samplers); the optional cache store is instrumented into the registry so
// /metrics shows cache traffic alongside the serve.* counters.
func New(opts Options) *Server {
	reg := obs.NewRegistry()
	opts.Cache.Instrument(reg)
	s := &Server{
		opts:    opts,
		reg:     reg,
		prog:    obs.NewProgress(),
		tracer:  opts.Tracer,
		tokens:  newSem(opts.workers()),
		flights: map[string]*flight{},
		onces:   map[string]*sync.Once{},
		nets:    map[string]*core.Network{},
		msets:   map[string]*core.MeasuredSet{},
		engines: map[string]*engineEntry{},

		cRequests:         reg.Counter("serve.requests"),
		cDedup:            reg.Counter("serve.dedup_hits"),
		cCacheHits:        reg.Counter("serve.cache_hits"),
		cSuiteRuns:        reg.Counter("serve.suite_runs"),
		cMetricRuns:       reg.Counter("serve.metric_runs"),
		cRejected:         reg.Counter("serve.rejected"),
		cCoalesceBatches:  reg.Counter("serve.coalesce_batches"),
		cCoalescedSources: reg.Counter("serve.coalesced_sources"),
		cCoalesceSwept:    reg.Counter("serve.coalesce_swept"),
		hLatency:          reg.Histogram("serve.latency"),
	}
	return s
}

// Metrics returns the server's metrics registry (serve.*, ball.*, cache.*).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Progress returns the server's live progress tracker.
func (s *Server) Progress() *obs.Progress { return s.prog }

// Handler returns the server's full mux: the observability plane
// (/metrics, /debug/progress, /debug/trace, /debug/pprof/) plus
//
//	POST /v1/suite     run (or dedup/serve) a full metric suite
//	POST /v1/metric    run one coalescible distance metric
//	GET  /v1/networks  list servable network names
//	GET  /healthz      liveness probe
func (s *Server) Handler() http.Handler {
	mux := obs.NewDebugMux(s.reg, s.prog, s.tracer)
	mux.HandleFunc("/v1/suite", s.handleSuite)
	mux.HandleFunc("/v1/metric", s.handleMetric)
	mux.HandleFunc("/v1/networks", s.handleNetworks)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// SuiteRequest is the /v1/suite body: which network to measure and the
// exact option structs the CLI uses, so a request describes the same work a
// `reproduce` invocation would (and shares its cache entries). Fields with
// no JSON presence (Metrics, Span, Progress) cannot be set remotely.
type SuiteRequest struct {
	Network string
	Set     core.PaperSetOptions
	Suite   core.SuiteOptions
	// TimeoutSeconds, when positive, overrides the server's default
	// per-request deadline.
	TimeoutSeconds float64
}

// knownNetwork reports whether the experiment inventory can build name.
func knownNetwork(name string) bool {
	for _, n := range experiments.AllTableNames {
		if n == name {
			return true
		}
	}
	return false
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.hLatency.Observe(time.Since(t0)) }()
	s.cRequests.Add(1)
	var req SuiteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !knownNetwork(req.Network) {
		http.Error(w, fmt.Sprintf("unknown network %q", req.Network), http.StatusBadRequest)
		return
	}
	cfg := experiments.Config{Set: req.Set, Suite: req.Suite}
	key := experiments.SuiteKey(cfg, req.Network)
	s.stamp(w, key)

	ctx, cancel := s.requestCtx(r, req.TimeoutSeconds)
	defer cancel()

	s.serveKeyed(w, ctx, key, "suite:"+req.Network,
		func() (any, bool) { // disk fast path
			var ent experiments.SuiteEntry
			if !s.opts.Cache.Get(key, &ent) {
				return nil, false
			}
			return &ent, true
		},
		func(cctx context.Context, width int) (any, error) {
			s.tokens.acquire(width)
			defer s.tokens.release(width)
			n := s.network(cfg.Set, req.Network)
			opts := cfg.Suite
			opts.Parallelism = width
			opts.Metrics = s.reg
			res, err := s.runSuite(cctx, key, req.Network, n, opts)
			if err != nil {
				return nil, err
			}
			ent := experiments.MakeSuiteEntry(res, experiments.Summarize(n))
			s.opts.Cache.Put(key, ent) //nolint:errcheck // best-effort persist
			return ent, nil
		})
}

// runSuite wraps core.RunSuiteCtx with the server's per-request
// observability: a span under the tracer root and a live progress stage fed
// by the suite's ball engine, pruned once KeepStages newer requests finish.
func (s *Server) runSuite(ctx context.Context, key, network string, n *core.Network, opts core.SuiteOptions) (*core.SuiteResult, error) {
	sp := s.tracer.Root().Start("suite:" + network)
	defer sp.End()
	stage := "suite:" + network + "@" + key[:8]
	st := s.prog.Register(stage)
	st.Run()
	opts.Span = sp
	opts.Progress = st
	res, err := core.RunSuiteCtx(ctx, n, opts)
	st.Done()
	s.retireStage(stage)
	if err != nil {
		return nil, err
	}
	s.cSuiteRuns.Add(1)
	return res, nil
}

// serveKeyed is the singleflight spine shared by the suite and metric
// endpoints: attach to an in-flight or memoized execution for key, serve
// the disk fast path, or admit a new computation (shedding with 429 when
// MaxInFlight are already computing). compute receives a context canceled
// when every waiter is gone and the worker width it was granted; its result
// is marshaled once and the bytes serve every waiter, so all paths are
// byte-identical.
func (s *Server) serveKeyed(w http.ResponseWriter, ctx context.Context, key, label string,
	cached func() (any, bool), compute func(ctx context.Context, width int) (any, error)) {
	dedup := !s.opts.DisableDedup
	if dedup {
		s.mu.Lock()
		if f := s.flights[key]; f != nil {
			f.attach()
			s.mu.Unlock()
			s.cDedup.Add(1)
			s.await(w, ctx, f, "dedup")
			return
		}
		s.mu.Unlock()
	}
	if v, ok := cached(); ok {
		s.cCacheHits.Add(1)
		s.respond(w, "cache", v)
		return
	}
	s.mu.Lock()
	if dedup {
		if f := s.flights[key]; f != nil { // raced with another admitter
			f.attach()
			s.mu.Unlock()
			s.cDedup.Add(1)
			s.await(w, ctx, f, "dedup")
			return
		}
	}
	if s.inflight >= s.opts.maxInFlight() {
		s.mu.Unlock()
		s.cRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "saturated: max in-flight computations reached", http.StatusTooManyRequests)
		return
	}
	s.inflight++
	width := s.opts.workers() / s.inflight
	if width < 1 {
		width = 1
	}
	cctx, ccancel := context.WithCancel(context.Background())
	if s.opts.Deadline > 0 {
		cctx, ccancel = context.WithTimeout(context.Background(), s.opts.Deadline)
	}
	f := &flight{key: key, done: make(chan struct{}), waiters: 1, cancel: ccancel}
	if dedup {
		s.flights[key] = f
	}
	s.mu.Unlock()

	go func() {
		// Token discipline is the compute callback's: suite runs hold their
		// granted width for their whole duration, metric runs lean on the
		// coalescer's sweep (which holds the full budget) instead of holding
		// tokens while they wait on it — holding here would deadlock the two.
		v, err := compute(cctx, width)
		if err == nil {
			f.body, err = marshalBody(v)
		}
		f.err = err
		close(f.done)
		s.mu.Lock()
		s.inflight--
		if err != nil && dedup {
			delete(s.flights, key) // let a later request retry
		}
		s.mu.Unlock()
	}()
	s.await(w, ctx, f, "computed")
}

// await serves a flight's outcome to one waiter, or gives up at the
// request's deadline (detaching, which cancels abandoned work).
func (s *Server) await(w http.ResponseWriter, ctx context.Context, f *flight, source string) {
	defer f.detach()
	select {
	case <-f.done:
		if f.err != nil {
			http.Error(w, "computation failed: "+f.err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Topocmp-Source", source)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(f.body) //nolint:errcheck // client went away
	case <-ctx.Done():
		http.Error(w, "request deadline exceeded", http.StatusGatewayTimeout)
	}
}

func (s *Server) respond(w http.ResponseWriter, source string, v any) {
	body, err := marshalBody(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Topocmp-Source", source)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(body) //nolint:errcheck // client went away
}

// marshalBody is the one serializer every path funnels through: the entry
// forms contain only structs and slices (no maps), so encoding/json is
// deterministic and gob round-trips bit-exact — computed, memo, dedup and
// disk-cache responses are byte-identical.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: encode response: %w", err)
	}
	return append(b, '\n'), nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// stamp attaches the per-request trace id and the content-address prefix —
// response metadata lives in headers only, never in the (cacheable) body.
func (s *Server) stamp(w http.ResponseWriter, key string) {
	w.Header().Set("X-Topocmp-Trace", fmt.Sprintf("r%06d", s.traceSeq.Add(1)))
	w.Header().Set("X-Topocmp-Key", key[:16])
}

func (s *Server) requestCtx(r *http.Request, timeoutSeconds float64) (context.Context, context.CancelFunc) {
	d := s.opts.Deadline
	if timeoutSeconds > 0 {
		d = time.Duration(timeoutSeconds * float64(time.Second))
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// retireStage records a completed per-request progress stage and forgets
// the oldest beyond KeepStages, so a long-lived daemon's /debug/progress
// stays bounded.
func (s *Server) retireStage(name string) {
	keep := s.opts.keepStages()
	s.mu.Lock()
	s.recent = append(s.recent, name)
	var drop []string
	if len(s.recent) > keep {
		drop = s.recent[:len(s.recent)-keep]
		s.recent = append([]string(nil), s.recent[len(s.recent)-keep:]...)
	}
	s.mu.Unlock()
	for _, n := range drop {
		s.prog.Forget(n)
	}
}

// onceFor returns the named once-guard, creating it on first use (the same
// idiom as the pipeline Runner's build guards).
func (s *Server) onceFor(name string) *sync.Once {
	s.netMu.Lock()
	defer s.netMu.Unlock()
	o := s.onces[name]
	if o == nil {
		o = new(sync.Once)
		s.onces[name] = o
	}
	return o
}

// network returns the named network under the set options, building it at
// most once per (set, name) and holding it for the server's lifetime —
// long-lived graph state is what lets engines and their caches be shared
// across requests. AS and RL share one measurement-pipeline run per set.
func (s *Server) network(set core.PaperSetOptions, name string) *core.Network {
	key := set.CacheKey() + "|" + name
	s.onceFor("net:" + key).Do(func() {
		var n *core.Network
		switch name {
		case "AS", "RL":
			ms := s.measuredSet(set)
			if name == "AS" {
				n = ms.AS
			} else {
				n = ms.RL
			}
		default:
			n = core.BuildNetwork(name, set)
		}
		s.netMu.Lock()
		s.nets[key] = n
		s.netMu.Unlock()
	})
	s.netMu.Lock()
	defer s.netMu.Unlock()
	return s.nets[key]
}

func (s *Server) measuredSet(set core.PaperSetOptions) *core.MeasuredSet {
	key := set.CacheKey()
	s.onceFor("measured:" + key).Do(func() {
		opts := set
		opts.Metrics = s.reg
		ms := core.BuildMeasured(opts)
		s.netMu.Lock()
		s.msets[key] = ms
		s.netMu.Unlock()
	})
	s.netMu.Lock()
	defer s.netMu.Unlock()
	return s.msets[key]
}

// networksResponse is the /v1/networks body.
type networksResponse struct {
	Networks []string `json:"networks"`
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(networksResponse{Networks: experiments.AllTableNames}) //nolint:errcheck
}
