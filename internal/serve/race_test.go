package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestServeRaceShort hammers one server with mixed concurrent traffic at
// P=4 — the tier-2 `go test -race ./internal/serve` target. It exercises
// every shared structure at once: the flights map (identical suite
// requests deduping), the coalescer (overlapping metric requests from
// distinct seeds), the shared engine caches, the weighted semaphore under
// suite/sweep contention, and the observability plane serving mid-run.
func TestServeRaceShort(t *testing.T) {
	// MaxInFlight covers all 12 distinct keys at once — admission shedding
	// has its own deterministic test; this one wants maximum overlap.
	s := New(Options{Workers: 4, MaxInFlight: 16, Window: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, v any) (int, []byte) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, buf.Bytes()
	}

	var wg sync.WaitGroup
	// Four identical suite requests: exactly one run, three dedups.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := post("/v1/suite", SuiteRequest{
				Network: "Tree", Set: quickSet(), Suite: quickSuite(),
			})
			if code != http.StatusOK {
				t.Errorf("suite: status %d: %s", code, body)
			}
		}()
	}
	// Overlapping metric traffic through the coalescer.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			metric := "expansion"
			if i%2 == 1 {
				metric = "eccentricity"
			}
			code, body := post("/v1/metric", MetricRequest{
				Network: "Tree", Set: quickSet(), Metric: metric,
				Sources: 24, Seed: int64(1 + i/2),
			})
			if code != http.StatusOK {
				t.Errorf("metric %d: status %d: %s", i, code, body)
			}
		}(i)
	}
	// The debug plane races the computations on purpose.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, path := range []string{"/metrics", "/debug/progress", "/healthz"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if got := s.reg.Counter("serve.suite_runs").Value(); got != 1 {
		t.Fatalf("suite_runs = %d, want 1", got)
	}
	if got := s.reg.Counter("serve.dedup_hits").Value(); got < 3 {
		t.Fatalf("dedup_hits = %d, want >= 3", got)
	}
}
