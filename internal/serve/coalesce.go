// Cross-request sweep coalescing: the /v1/metric endpoint and the
// per-engine admission window that batches concurrent distance-metric
// requests into shared MSBFS strips.
//
// Why coalescing cannot change results: the shared sweep only pre-warms the
// engine's cum-profile cache (one bit-parallel pass over the union of the
// requests' centers). A CumProfile is the per-radius ball-size vector —
// integer level counts, independent of which batch or route computed them
// (the engine's contract, pinned by its golden tests) — so the per-request
// metric assembly reads the same values it would have computed alone, in
// the same deterministic center order. Byte-identity with solo runs follows
// for free; the window only decides how many CSR passes the server spends
// to get there.
package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"slices"
	"sync"
	"time"

	"topocmp/internal/ball"
	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/metrics"
	"topocmp/internal/stats"
)

// engineEntry is one (set, network) pair's long-lived ball engine and its
// coalescer. The engine's profile caches persist across requests, so
// repeat queries against a warm graph skip kernel work entirely.
type engineEntry struct {
	eng  *ball.Engine
	coal *coalescer
}

// engine returns the shared engine for (set, name), creating it (and its
// coalescer) on first use.
func (s *Server) engine(set core.PaperSetOptions, name string) *engineEntry {
	key := set.CacheKey() + "|" + name
	s.engMu.Lock()
	defer s.engMu.Unlock()
	e := s.engines[key]
	if e == nil {
		eng := ball.NewEngine(s.network(set, name).Graph, s.opts.workers())
		eng.Instrument(s.reg)
		e = &engineEntry{eng: eng, coal: newCoalescer(s, eng, s.opts.window())}
		s.engines[key] = e
	}
	return e
}

// coalescer batches concurrent center submissions against one engine into
// shared sweeps. The first submission of a batch opens the admission
// window; every submission arriving within it joins the batch; at close the
// union of centers runs through one CumProfiles call (the bit-parallel
// multi-source kernel) under the full worker budget, and every submitter
// resumes against the warm cache. A window of 0 disables batching — the
// engine's per-center claim protocol still dedups exact overlap between
// concurrent calls, just without the strip sharing.
type coalescer struct {
	s      *Server
	eng    *ball.Engine
	window time.Duration

	mu  sync.Mutex
	cur *sweepBatch
}

type sweepBatch struct {
	done      chan struct{}
	centers   map[int32]struct{}
	submitted int
}

func newCoalescer(s *Server, eng *ball.Engine, window time.Duration) *coalescer {
	return &coalescer{s: s, eng: eng, window: window}
}

// warm blocks until the submitted centers' cum profiles are in the engine
// cache (or returns immediately with batching disabled, leaving the metric
// itself to compute them).
func (c *coalescer) warm(centers []int32) {
	if c.window <= 0 {
		return
	}
	c.mu.Lock()
	b := c.cur
	if b == nil {
		b = &sweepBatch{done: make(chan struct{}), centers: map[int32]struct{}{}}
		c.cur = b
		go c.flush(b)
	}
	for _, v := range centers {
		b.centers[v] = struct{}{}
	}
	b.submitted += len(centers)
	c.mu.Unlock()
	<-b.done
}

func (c *coalescer) flush(b *sweepBatch) {
	time.Sleep(c.window)
	c.mu.Lock()
	if c.cur == b {
		c.cur = nil // submissions from here on open the next batch
	}
	c.mu.Unlock()
	union := make([]int32, 0, len(b.centers))
	for v := range b.centers {
		union = append(union, v)
	}
	slices.Sort(union)
	// The shared sweep holds the whole worker budget for its duration: it
	// is the one place metric traffic fans out, so the weighted semaphore
	// keeps it honest against concurrently admitted suites.
	w := c.s.opts.workers()
	c.s.tokens.acquire(w)
	c.eng.SetParallelism(w) // a window-disabled request may have narrowed it
	c.eng.CumProfiles(union)
	c.s.tokens.release(w)
	c.s.cCoalesceBatches.Add(1)
	c.s.cCoalescedSources.Add(int64(b.submitted))
	c.s.cCoalesceSwept.Add(int64(len(union)))
	close(b.done)
}

// MetricRequest is the /v1/metric body: one coalescible distance metric
// over one network. Supported metrics are "expansion" (Figure 2a-style
// E(h)) and "eccentricity" (the Figure 7 node-diameter distribution);
// both only need ball sizes, which is what makes their sweeps shareable.
type MetricRequest struct {
	Network string
	Set     core.PaperSetOptions
	Metric  string
	// Sources caps sampled BFS centers (0 = a 64-center default; negative =
	// every node). Seed drives the center sampling (0 = 1). BinWidth is the
	// eccentricity histogram bin (0 = 0.1).
	Sources        int
	Seed           int64
	BinWidth       float64
	TimeoutSeconds float64
}

func (q *MetricRequest) defaults() {
	if q.Sources == 0 {
		q.Sources = 64
	}
	if q.Sources < 0 {
		q.Sources = 0 // ball.Centers: 0 samples every node
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	if q.BinWidth == 0 {
		q.BinWidth = 0.1
	}
}

// metricEntry is the cacheable (and only) response form of /v1/metric.
type metricEntry struct {
	Network string
	Metric  string
	Series  stats.Series
}

func (s *Server) handleMetric(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.hLatency.Observe(time.Since(t0)) }()
	s.cRequests.Add(1)
	var req MetricRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !knownNetwork(req.Network) {
		http.Error(w, fmt.Sprintf("unknown network %q", req.Network), http.StatusBadRequest)
		return
	}
	req.defaults()
	if req.Metric != "expansion" && req.Metric != "eccentricity" {
		http.Error(w, fmt.Sprintf("unknown metric %q (want expansion or eccentricity)", req.Metric),
			http.StatusBadRequest)
		return
	}
	key := cache.Key(req.Set.CacheKey(),
		fmt.Sprintf("servemetric:%s,src=%d,seed=%d,bin=%g", req.Metric, req.Sources, req.Seed, req.BinWidth),
		"net:"+req.Network)
	s.stamp(w, key)

	ctx, cancel := s.requestCtx(r, req.TimeoutSeconds)
	defer cancel()

	s.serveKeyed(w, ctx, key, "metric:"+req.Network,
		func() (any, bool) {
			var ent metricEntry
			if !s.opts.Cache.Get(key, &ent) {
				return nil, false
			}
			return &ent, true
		},
		func(cctx context.Context, width int) (any, error) {
			ent, err := s.computeMetric(cctx, req, width)
			if err != nil {
				return nil, err
			}
			s.opts.Cache.Put(key, ent) //nolint:errcheck // best-effort persist
			return ent, nil
		})
}

// computeMetric runs one distance metric through the shared engine. The
// request's center set is derived deterministically from (Sources, Seed)
// exactly as the metric itself will derive it, submitted to the coalescer
// for the shared warm sweep, and then the metric assembles its series from
// the warm cache — the assembly's kernel work all hit in the sweep, so it
// holds no tokens (holding while waiting on the sweep would deadlock
// against the sweep's full-budget acquire). With coalescing disabled the
// request runs the kernels itself under its granted width instead.
func (s *Server) computeMetric(ctx context.Context, req MetricRequest, width int) (*metricEntry, error) {
	e := s.engine(req.Set, req.Network)
	g := e.eng.Graph()
	cfg := ball.Config{MaxSources: req.Sources, Rand: rand.New(rand.NewSource(req.Seed))}
	centers := ball.Centers(g, &cfg)
	if s.opts.window() > 0 {
		e.coal.warm(centers)
	} else {
		s.tokens.acquire(width)
		defer s.tokens.release(width)
		e.eng.SetParallelism(width)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ent := &metricEntry{Network: req.Network, Metric: req.Metric}
	switch req.Metric {
	case "expansion":
		ent.Series = metrics.ExpansionWith(e.eng, ball.Config{
			MaxSources: req.Sources,
			Rand:       rand.New(rand.NewSource(req.Seed)),
		})
	case "eccentricity":
		ent.Series = metrics.EccentricityDistributionWith(e.eng, req.Sources, req.BinWidth,
			rand.New(rand.NewSource(req.Seed)))
	}
	s.cMetricRuns.Add(1)
	return ent, nil
}
