package plot

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topocmp/internal/stats"
)

func sample() []stats.Series {
	a := stats.Series{Name: "Tree"}
	b := stats.Series{Name: "Mesh/30x30"}
	for x := 1.0; x <= 100; x *= 2 {
		a.Add(x, x*x)
		b.Add(x, x)
	}
	return []stats.Series{a, b}
}

func TestWriteDat(t *testing.T) {
	dir := t.TempDir()
	paths, err := WriteDat(dir, "fig2a", sample())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if filepath.Base(paths[1]) != "fig2a_mesh_30x30.dat" {
		t.Fatalf("sanitized name = %s", filepath.Base(paths[1]))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	if !strings.HasPrefix(content, "# fig2a: Tree\n") {
		t.Fatalf("header missing: %q", content[:30])
	}
	if !strings.Contains(content, "1 1\n") || !strings.Contains(content, "64 4096\n") {
		t.Fatalf("points missing:\n%s", content)
	}
}

func TestASCIIPlots(t *testing.T) {
	var buf bytes.Buffer
	err := ASCII(&buf, sample(), Options{Title: "expansion", XScale: Log, YScale: Log})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "expansion") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*=Tree") || !strings.Contains(out, "+=Mesh/30x30") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 17 {
		t.Fatalf("plot rows missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("glyphs missing")
	}
}

func TestASCIIEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCII(&buf, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no plottable points") {
		t.Fatalf("empty message missing: %q", buf.String())
	}
}

func TestASCIILogSkipsNonPositive(t *testing.T) {
	s := stats.Series{Name: "s"}
	s.Add(0, 5)  // skipped on log x
	s.Add(10, 0) // skipped on log y
	s.Add(10, 10)
	var buf bytes.Buffer
	if err := ASCII(&buf, []stats.Series{s}, Options{XScale: Log, YScale: Log}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "no plottable points") {
		t.Fatal("positive point should plot")
	}
}
