// Package plot renders metric curves: gnuplot-style .dat files mirroring
// the inputs behind the paper's figures, and quick ASCII plots for terminal
// inspection of curve shapes.
package plot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"topocmp/internal/stats"
)

// WriteDat writes one series per file into dir as "<figure>_<series>.dat",
// two columns "x y" per line, and returns the file paths.
func WriteDat(dir, figure string, series []stats.Series) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, s := range series {
		name := sanitize(s.Name)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.dat", sanitize(figure), name))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# %s: %s\n", figure, s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%g %g\n", p.X, p.Y)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func sanitize(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Axis scaling for ASCII plots.
type Scale int

// Axis scales.
const (
	Linear Scale = iota
	Log
)

// Options configures an ASCII plot.
type Options struct {
	Width, Height  int   // plot area in characters; defaults 64×16
	XScale, YScale Scale // axis scaling
	Title          string
}

// ASCII renders the series into a crude character plot, one glyph per
// series, useful for eyeballing the qualitative shapes the paper's
// conclusions rest on.
func ASCII(w io.Writer, series []stats.Series, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 64
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}
	glyphs := "*+o#x%@&"
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	tx := func(x float64) float64 {
		if opts.XScale == Log {
			if x <= 0 {
				return math.NaN()
			}
			return math.Log10(x)
		}
		return x
	}
	ty := func(y float64) float64 {
		if opts.YScale == Log {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range series {
		for _, p := range s.Points {
			x, y := tx(p.X), ty(p.Y)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		_, err := fmt.Fprintln(w, "(no plottable points)")
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			x, y := tx(p.X), ty(p.Y)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			cx := int((x - minX) / (maxX - minX) * float64(opts.Width-1))
			cy := int((y - minY) / (maxY - minY) * float64(opts.Height-1))
			row := opts.Height - 1 - cy
			grid[row][cx] = g
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintln(w, opts.Title); err != nil {
			return err
		}
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s|\n", row); err != nil {
			return err
		}
	}
	var legend strings.Builder
	for si, s := range series {
		if si > 0 {
			legend.WriteString("  ")
		}
		fmt.Fprintf(&legend, "%c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	_, err := fmt.Fprintln(w, legend.String())
	return err
}
