package ball

import (
	"sync"

	"topocmp/internal/obs"
)

// Pool is the unified leased-workspace primitive behind every scratch family
// in the repository: BFS/subgraph traversal scratch, the cut/flow kernel
// bundles, bit-parallel MSBFS and Brandes strips, and the metric-local
// workspaces (distortion's tree scratch, hierarchy's cover arrays). It wraps
// sync.Pool with the lease discipline those families share — check out, use
// exclusively, put back — and makes the traffic observable: gets counts
// checkouts, allocs counts the checkouts that had to build a fresh
// workspace, so reuse is always gets minus allocs.
//
// Workspace contents never influence results: a leased workspace behaves
// bit-identically to a fresh one (epoch-stamped arrays, fully rewritten
// buffers), so pooling is invisible to the determinism contract. Both
// counters are optional; an uninstrumented pool costs a nil check per event.
type Pool[T any] struct {
	pool   sync.Pool
	gets   *obs.Counter
	allocs *obs.Counter

	mu   sync.Mutex
	kept []T
	keep int
}

// NewPool returns a pool that builds fresh workspaces with fresh.
func NewPool[T any](fresh func() T) *Pool[T] {
	p := &Pool[T]{}
	p.pool.New = func() any {
		p.allocs.Add(1)
		return fresh()
	}
	return p
}

// Instrument attaches the checkout counters; nil counters stay silent.
// Attach before the first Get — the alloc counter is read inside the pool's
// miss path.
func (p *Pool[T]) Instrument(gets, allocs *obs.Counter) {
	p.gets, p.allocs = gets, allocs
}

// Keep retains up to n returned workspaces on a strong free list consulted
// before the GC-clearable sync.Pool. sync.Pool drops its contents within two
// collections, which is right for small scratch but pathological for
// workspaces holding hundreds of megabytes: every few calls the buffers are
// freed, reallocated, and page-faulted back in, and the kernel time dwarfs
// the work they serve. Kept workspaces live until the pool itself is
// unreachable, so reserve Keep for a small n on the heavyweight families.
func (p *Pool[T]) Keep(n int) {
	p.mu.Lock()
	p.keep = n
	p.mu.Unlock()
}

// Get leases a workspace. The caller owns it exclusively until Put.
func (p *Pool[T]) Get() T {
	p.gets.Add(1)
	p.mu.Lock()
	if len(p.kept) > 0 {
		x := p.kept[len(p.kept)-1]
		p.kept = p.kept[:len(p.kept)-1]
		p.mu.Unlock()
		return x
	}
	p.mu.Unlock()
	return p.pool.Get().(T)
}

// Put returns a leased workspace to the pool.
func (p *Pool[T]) Put(x T) {
	p.mu.Lock()
	if len(p.kept) < p.keep {
		p.kept = append(p.kept, x)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.pool.Put(x)
}

// Lease runs fn with a leased workspace and returns it afterwards, the
// common single-scope checkout written as one call.
func (p *Pool[T]) Lease(fn func(T)) {
	x := p.Get()
	defer p.Put(x)
	fn(x)
}
