package ball

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"topocmp/internal/obs"
)

// TestCumProfilesMatchFullProfiles: the batched kernel path must produce
// exactly the Cum rows of the scalar full-profile path, at every batch
// width (the 70-center set spans two kernel batches).
func TestCumProfilesMatchFullProfiles(t *testing.T) {
	g := engineTestGraph()
	centers := make([]int32, 70)
	for i := range centers {
		centers[i] = int32(i * 5)
	}
	cums := NewEngine(g, 1).CumProfiles(centers)
	full := NewEngine(g, 1).Profiles(centers)
	for i, c := range centers {
		if cums[i].Center != c {
			t.Fatalf("center %d: got %d", c, cums[i].Center)
		}
		if !reflect.DeepEqual(cums[i].Cum, full[i].Cum) {
			t.Fatalf("center %d: cum rows differ: %v vs %v", c, cums[i].Cum, full[i].Cum)
		}
		if cums[i].Eccentricity() != full[i].Eccentricity() ||
			cums[i].Size(2) != full[i].Size(2) {
			t.Fatalf("center %d: accessor mismatch", c)
		}
	}
}

// TestCumProfileCacheCoherence pins the coherence rule between the two
// caches: a completed full profile satisfies cum requests without a kernel
// pass, and a cum entry never downgrades or preempts a full profile.
func TestCumProfileCacheCoherence(t *testing.T) {
	g := engineTestGraph()
	e := NewEngine(g, 1)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	// Full first: the cum request reads the full profile's Cum storage and
	// runs no kernel batch.
	p := e.Profile(5)
	c := e.CumProfiles([]int32{5})[0]
	if &c.Cum[0] != &p.Cum[0] {
		t.Fatal("cum request did not share the cached full profile's Cum")
	}
	if n := reg.Snapshot().Counters["ball.msbfs_batches"]; n != 0 {
		t.Fatalf("full-profile hit ran %d kernel batches, want 0", n)
	}

	// Cum first: a kernel batch runs, and a later Profile call still
	// computes (and caches) the full ordered pass.
	c7 := e.CumProfiles([]int32{7})[0]
	snap := reg.Snapshot()
	if snap.Counters["ball.msbfs_batches"] != 1 || snap.Counters["ball.msbfs_sources"] != 1 {
		t.Fatalf("cum miss: batches=%d sources=%d, want 1/1",
			snap.Counters["ball.msbfs_batches"], snap.Counters["ball.msbfs_sources"])
	}
	p7 := e.Profile(7)
	if len(p7.Order) == 0 || !reflect.DeepEqual(p7.Cum, c7.Cum) {
		t.Fatal("full profile after cum entry is missing Order or disagrees on Cum")
	}
	if e.Profile(7) != p7 {
		t.Fatal("cum entry displaced the cached full profile")
	}
	// Once the full profile exists it satisfies further cum requests.
	if got := e.CumProfiles([]int32{7})[0]; &got.Cum[0] != &p7.Cum[0] {
		t.Fatal("cum request after full profile did not read the full cache")
	}
	if n := reg.Snapshot().Counters["ball.msbfs_batches"]; n != 1 {
		t.Fatalf("cum request after full profile ran a kernel batch (total %d)", n)
	}

	// Repeated cum requests hit the cum cache, not the kernel.
	e.CumProfiles([]int32{9, 11})
	before := reg.Snapshot().Counters["ball.msbfs_batches"]
	e.CumProfiles([]int32{9, 11})
	if n := reg.Snapshot().Counters["ball.msbfs_batches"]; n != before {
		t.Fatalf("warm cum request ran a kernel batch (%d -> %d)", before, n)
	}
}

// TestMSBFSRaceShort exercises the batched distance path on a P=4 engine
// under the race detector: concurrent CumProfiles calls over overlapping
// center sets, racing Profile calls on some of the same centers. Every
// result must be bit-identical to the sequential P=1 engine.
func TestMSBFSRaceShort(t *testing.T) {
	g := engineTestGraph()
	n := g.NumNodes()
	want := make(map[int32][]int32, n)
	ref := NewEngine(g, 1)
	for v := int32(0); v < int32(n); v++ {
		want[v] = ref.Profile(v).Cum
	}

	e := NewEngine(g, 4)
	r := rand.New(rand.NewSource(55))
	sets := make([][]int32, 8)
	for i := range sets {
		sets[i] = make([]int32, 96) // spans two kernel batches, overlaps heavily
		for j := range sets[i] {
			sets[i][j] = int32(r.Intn(n))
		}
	}
	var wg sync.WaitGroup
	for i := range sets {
		wg.Add(1)
		go func(centers []int32) {
			defer wg.Done()
			got := e.CumProfiles(centers)
			for j, c := range centers {
				if !reflect.DeepEqual(got[j].Cum, want[c]) {
					t.Errorf("center %d: concurrent cum differs from sequential", c)
					return
				}
			}
		}(sets[i])
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 24; k++ {
				c := int32(r.Intn(n))
				p := e.Profile(c)
				if !reflect.DeepEqual(p.Cum, want[c]) {
					t.Errorf("center %d: concurrent full profile differs", c)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
}

// TestWideMSBFSRaceShort is the tier-2 race target for the multi-word
// kernel: a P=4 engine batching a center set large enough that batchWidth
// picks strips wider than one 64-bit word, raced against scalar Profile
// calls on overlapping centers. Results must be bit-identical to the
// sequential engine.
func TestWideMSBFSRaceShort(t *testing.T) {
	g := engineTestGraph()
	n := g.NumNodes()
	want := make(map[int32][]int32, n)
	ref := NewEngine(g, 1)
	for v := int32(0); v < int32(n); v++ {
		want[v] = ref.Profile(v).Cum
	}

	e := NewEngine(g, 4)
	reg := obs.NewRegistry()
	e.Instrument(reg)
	centers := make([]int32, n) // pending/parallel = 100 -> two-word strips
	for i := range centers {
		centers[i] = int32(i)
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 2; rep++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := e.CumProfiles(centers)
			for j, c := range centers {
				if !reflect.DeepEqual(got[j].Cum, want[c]) {
					t.Errorf("center %d: wide cum differs from sequential", c)
					return
				}
			}
		}()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 16; k++ {
				c := int32(r.Intn(n))
				p := e.Profile(c)
				if !reflect.DeepEqual(p.Cum, want[c]) {
					t.Errorf("center %d: racing full profile differs", c)
					return
				}
			}
		}(int64(rep))
	}
	wg.Wait()
	if w := reg.Gauge("ball.msbfs_width").Value(); w <= 64 {
		t.Fatalf("expected a multi-word batch width, recorded %d", w)
	}
}
