package ball

import (
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
)

func TestVisitPathBallSizes(t *testing.T) {
	g := canonical.Linear(11)
	sizes := map[int]int{} // radius -> size for center 5
	Visit(g, Config{}, func(b Ball) {
		if b.Center == 5 {
			sizes[b.Radius] = len(b.Nodes)
		}
	})
	for h, want := range map[int]int{1: 3, 2: 5, 5: 11} {
		if sizes[h] != want {
			t.Fatalf("radius %d size = %d, want %d", h, sizes[h], want)
		}
	}
}

func TestVisitRespectsMaxRadius(t *testing.T) {
	g := canonical.Linear(30)
	maxSeen := 0
	Visit(g, Config{MaxRadius: 3}, func(b Ball) {
		if b.Radius > maxSeen {
			maxSeen = b.Radius
		}
	})
	if maxSeen != 3 {
		t.Fatalf("max radius = %d, want 3", maxSeen)
	}
}

func TestVisitRespectsMaxBallSize(t *testing.T) {
	g := canonical.Tree(3, 5)
	Visit(g, Config{MaxBallSize: 40}, func(b Ball) {
		if len(b.Nodes) > 40 {
			t.Fatalf("ball size %d exceeds cap", len(b.Nodes))
		}
	})
}

func TestVisitRespectsMinBallSize(t *testing.T) {
	g := canonical.Mesh(6, 6)
	Visit(g, Config{MinBallSize: 5}, func(b Ball) {
		if len(b.Nodes) < 5 {
			t.Fatalf("ball size %d below floor", len(b.Nodes))
		}
	})
}

func TestCentersSampling(t *testing.T) {
	g := canonical.Mesh(10, 10)
	cfg := Config{MaxSources: 7, Rand: rand.New(rand.NewSource(1))}
	cs := Centers(g, &cfg)
	if len(cs) != 7 {
		t.Fatalf("centers = %d, want 7", len(cs))
	}
	seen := map[int32]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatal("duplicate center")
		}
		seen[c] = true
	}
	cfgAll := Config{}
	if got := len(Centers(g, &cfgAll)); got != 100 {
		t.Fatalf("all centers = %d, want 100", got)
	}
}

func TestBallNodesAreWithinRadius(t *testing.T) {
	g := canonical.Mesh(8, 8)
	Visit(g, Config{MaxSources: 5}, func(b Ball) {
		dist, _ := g.BFS(b.Center)
		for _, v := range b.Nodes {
			if int(dist[v]) > b.Radius {
				t.Fatalf("node %d at distance %d in radius-%d ball", v, dist[v], b.Radius)
			}
		}
		// Completeness: every node within radius is present.
		count := 0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			if int(dist[v]) <= b.Radius {
				count++
			}
		}
		if count != len(b.Nodes) {
			t.Fatalf("ball has %d nodes, want %d", len(b.Nodes), count)
		}
	})
}

func TestSubgraphMatchesBall(t *testing.T) {
	g := canonical.Tree(2, 5)
	var checked bool
	Visit(g, Config{MaxSources: 3}, func(b Ball) {
		sub := Subgraph(g, b)
		if sub.NumNodes() != len(b.Nodes) {
			t.Fatalf("subgraph nodes = %d, want %d", sub.NumNodes(), len(b.Nodes))
		}
		if !sub.IsConnected() {
			t.Fatal("ball subgraph must be connected")
		}
		checked = true
	})
	if !checked {
		t.Fatal("no balls visited")
	}
}
