package ball

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"topocmp/internal/flow"
	"topocmp/internal/graph"
	"topocmp/internal/obs"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// Engine grows balls for one graph over a reusable worker pool. It keeps
// per-worker BFS and subgraph scratch (epoch-stamped arrays and reused
// queues, so steady-state ball growth is allocation-free) and a shared
// ball-profile cache, so every metric that grows balls from the same center
// shares one BFS pass per (graph, center) instead of recomputing it.
// Distance-only metrics take the batched path instead: CumProfiles sweeps
// up to 64 centers per CSR pass through the bit-parallel MSBFS kernel into
// a coherent cum-only side cache.
//
// Determinism contract: results are assembled in center order and every
// per-center RNG is derived from seed+centerIndex, so the output is
// bit-identical at every parallelism, including the sequential pool of
// width 1.
type Engine struct {
	g *graph.Graph
	// parallel is the worker-pool width, atomic so a serving layer can
	// retune a long-lived engine between (or during) requests: forEach and
	// batchWidth read it once per call, and results are width-independent,
	// so a concurrent change only shifts where the work runs.
	parallel atomic.Int64

	scratch *Pool[*workerScratch]
	kernels *Pool[*Kernels]
	msbfs   *Pool[*graph.MSBFSScratch]

	mu       sync.Mutex
	profiles map[int32]*profileEntry
	cums     map[int32]*cumEntry

	diamOnce sync.Once
	diam     int

	// Resolved metric handles (nil until Instrument): each event on the
	// ball hot path costs at most one atomic add, and nothing at all when
	// uninstrumented beyond a nil check. Pool traffic (gets/allocs per
	// scratch family) is carried by the Pool leases themselves.
	mProfiles       *obs.Counter // balls grown (one BFS pass each)
	mBFSVisits      *obs.Counter // nodes visited across those passes
	mSubgraphs      *obs.Counter // induced ball subgraphs materialized
	mMSBFSBatches   *obs.Counter // bit-parallel distance batches run
	mMSBFSSources   *obs.Counter // sources swept across those batches
	mMSBFSWidth     *obs.Gauge   // batch width the last wide sweep chose
	mDistScalar     *obs.Counter // centers the diameter probe routed to scalar BFS
	mBrandesBatches *obs.Counter // bit-parallel Brandes batches run by kernel consumers
	mBrandesScalar  *obs.Counter // subgraphs the probe kept on scalar Brandes

	// prog, when set, receives balls-done/total work counters so a live
	// /debug/progress can turn the suite's ball traffic into a completion
	// fraction. Nil (the default) costs one nil check per profile.
	prog *obs.ProgressStage
}

// Kernels bundles one worker's reusable solver scratch: a multilevel-
// partition workspace, a Dinic network, a BFS scratch, the bit-parallel
// MSBFS and Brandes strips, and a spare int32 buffer. The engine pools one
// bundle per worker and hands it to BallPointsKernels callbacks, so the
// expensive per-ball kernels (resilience's balanced bisection, the surface
// max-flow sweep, distortion's betweenness election) run allocation-free in
// steady state. Kernel state never influences results — workspace-backed
// solvers are bit-identical to fresh ones — so pooling is invisible to the
// determinism contract.
type Kernels struct {
	Part    *partition.Workspace
	Flow    *flow.Network
	BFS     *graph.BFSScratch
	MSBFS   *graph.MSBFSScratch
	Brandes *graph.BrandesScratch
	// Ints is a spare reusable buffer (surface node lists and similar
	// per-ball worksets); contents are unspecified between balls.
	Ints []int32

	eng *Engine // counter backref; nil for bundles built outside an engine
}

// CountBrandes records kernel-consumer Brandes traffic under the engine's
// ball.* namespace: batches bit-parallel batches run, and scalar subgraphs
// the diameter probe kept on the scalar path. Safe on bundles built outside
// an engine.
func (k *Kernels) CountBrandes(batches, scalar int64) {
	if k.eng == nil {
		return
	}
	k.eng.mBrandesBatches.Add(batches)
	k.eng.mBrandesScalar.Add(scalar)
}

// workerScratch bundles one worker's reusable traversal buffers.
type workerScratch struct {
	bfs *graph.BFSScratch
	sub *graph.SubgraphScratch
}

type profileEntry struct {
	once sync.Once
	p    *Profile
	// pub is p republished for opportunistic readers (the cum-profile path
	// peeks at completed full profiles without entering the once).
	pub atomic.Pointer[Profile]
}

// cumEntry is one center's cum-only profile. Unlike profileEntry's
// sync.Once, completion is a closed channel: batched computation fills many
// entries per kernel run, and late arrivals wait on exactly the entries
// another call claimed.
type cumEntry struct {
	done chan struct{}
	c    *CumProfile
}

// NewEngine returns an engine for g with the given worker-pool width;
// parallelism <= 0 uses runtime.NumCPU, 1 runs strictly sequentially.
func NewEngine(g *graph.Graph, parallelism int) *Engine {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	e := &Engine{g: g,
		profiles: map[int32]*profileEntry{}, cums: map[int32]*cumEntry{}}
	e.parallel.Store(int64(parallelism))
	e.scratch = NewPool(func() *workerScratch {
		return &workerScratch{bfs: graph.NewBFSScratch(), sub: graph.NewSubgraphScratch()}
	})
	e.kernels = NewPool(func() *Kernels {
		return &Kernels{Part: partition.NewWorkspace(), Flow: &flow.Network{},
			BFS: graph.NewBFSScratch(), MSBFS: graph.NewMSBFSScratch(),
			Brandes: graph.NewBrandesScratch(), eng: e}
	})
	e.msbfs = NewPool(graph.NewMSBFSScratch)
	return e
}

// Instrument resolves the engine's counters from the registry (under the
// ball.* namespace: profiles, bfs_visits, subgraphs; scratch_gets/
// scratch_allocs, kernel_gets/kernel_allocs, msbfs_gets/msbfs_allocs for
// the leased-workspace pools — reuse is gets minus allocs; msbfs_batches/
// msbfs_sources/msbfs_width for the bit-parallel distance kernel's traffic;
// dist_scalar and brandes_batches/brandes_scalar for the diameter probe's
// routing decisions). Call it before the first ball grows; a nil registry
// leaves the engine uninstrumented.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.mProfiles = reg.Counter("ball.profiles")
	e.mBFSVisits = reg.Counter("ball.bfs_visits")
	e.mSubgraphs = reg.Counter("ball.subgraphs")
	e.scratch.Instrument(reg.Counter("ball.scratch_gets"), reg.Counter("ball.scratch_allocs"))
	e.kernels.Instrument(reg.Counter("ball.kernel_gets"), reg.Counter("ball.kernel_allocs"))
	e.msbfs.Instrument(reg.Counter("ball.msbfs_gets"), reg.Counter("ball.msbfs_allocs"))
	e.mMSBFSBatches = reg.Counter("ball.msbfs_batches")
	e.mMSBFSSources = reg.Counter("ball.msbfs_sources")
	e.mMSBFSWidth = reg.Gauge("ball.msbfs_width")
	e.mDistScalar = reg.Counter("ball.dist_scalar")
	e.mBrandesBatches = reg.Counter("ball.brandes_batches")
	e.mBrandesScalar = reg.Counter("ball.brandes_scalar")
}

// SetProgress attaches a live progress stage: every Profiles/CumProfiles
// request adds its center count to the stage's work total and one done
// unit per center completed, so the stage's fraction tracks the suite's
// ball traffic in flight. Cache hits count as completed work too — each
// call contributes matching total and done units, so the fraction is
// monotone and ends at 1. A nil stage (the default) disables the counters.
// Progress never influences results.
func (e *Engine) SetProgress(st *obs.ProgressStage) { e.prog = st }

// Graph returns the graph the engine grows balls on.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Parallelism returns the worker-pool width.
func (e *Engine) Parallelism() int { return int(e.parallel.Load()) }

// SetParallelism retunes the worker-pool width of a live engine; p <= 0
// uses runtime.NumCPU. Safe under concurrent use: the fan-out helpers read
// the width once per call, and results are bit-identical at every width, so
// an in-flight call simply keeps the width it started with. The serving
// layer uses this to grant each admitted request a share of the global
// worker budget without rebuilding the engine (and its warm caches).
func (e *Engine) SetParallelism(p int) {
	if p <= 0 {
		p = runtime.NumCPU()
	}
	e.parallel.Store(int64(p))
}

// ApproxDiameter returns the double-sweep diameter estimate for the
// engine's graph, computed once on first use and cached. The batched
// kernels consult it to route high-diameter graphs (lattices) onto scalar
// paths where bit-parallel batching loses.
func (e *Engine) ApproxDiameter() int {
	e.diamOnce.Do(func() {
		ws := e.scratch.Get()
		e.diam = graph.ApproxDiameter(e.g, ws.bfs)
		e.scratch.Put(ws)
	})
	return e.diam
}

// Profile is one center's cached ball profile: everything a single BFS pass
// reveals about the balls around the center.
type Profile struct {
	Center int32
	// Order holds the center's component in BFS order, so Order[:Cum[h]]
	// is the ball of radius h. Shared storage — do not modify.
	Order []int32
	// Cum[h] is the ball size at radius h; len(Cum) == eccentricity+1.
	Cum []int32

	mu   sync.Mutex
	subs []*subEntry // ball subgraphs by radius, built at most once each
}

type subEntry struct {
	once sync.Once
	g    *graph.Graph
}

// Eccentricity returns the center's hop radius within its component.
func (p *Profile) Eccentricity() int { return len(p.Cum) - 1 }

// Size returns |ball(Center, h)|, saturating beyond the eccentricity.
func (p *Profile) Size(h int) int {
	if h >= len(p.Cum) {
		h = len(p.Cum) - 1
	}
	return int(p.Cum[h])
}

// BallAt returns the members of ball(Center, h) in BFS order. The slice
// shares the profile's storage and must not be modified.
func (p *Profile) BallAt(h int) []int32 { return p.Order[:p.Size(h)] }

// Profile returns the center's ball profile, computing and caching it on
// first use. Safe for concurrent use; duplicate work is suppressed.
func (e *Engine) Profile(center int32) *Profile {
	e.mu.Lock()
	ent := e.profiles[center]
	if ent == nil {
		ent = &profileEntry{}
		e.profiles[center] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		ws := e.scratch.Get()
		ent.p = computeProfile(e.g, ws.bfs, center)
		e.scratch.Put(ws)
		ent.pub.Store(ent.p)
		e.mProfiles.Add(1)
		e.mBFSVisits.Add(int64(len(ent.p.Order)))
	})
	return ent.p
}

func computeProfile(g *graph.Graph, s *graph.BFSScratch, center int32) *Profile {
	order := s.BFS(g, center)
	own := make([]int32, len(order))
	copy(own, order)
	ecc := int(s.Dist(order[len(order)-1]))
	cum := make([]int32, ecc+1)
	for _, v := range order {
		cum[s.Dist(v)]++
	}
	for h := 1; h <= ecc; h++ {
		cum[h] += cum[h-1]
	}
	return &Profile{Center: center, Order: own, Cum: cum}
}

// Profiles returns the centers' profiles in center order, fanning the
// missing ones out over the worker pool.
func (e *Engine) Profiles(centers []int32) []*Profile {
	out := make([]*Profile, len(centers))
	e.prog.AddTotal(int64(len(centers)))
	e.forEach(len(centers), func(i int) {
		out[i] = e.Profile(centers[i])
		e.prog.Add(1)
	})
	return out
}

// CumProfile is the order-free slice of a ball profile: the cumulative ball
// sizes per radius, without the Order membership a full Profile carries.
// Ball-size counts are order-independent, so a CumProfile derived from the
// bit-parallel kernel is identical to the Cum of a scalar full profile.
type CumProfile struct {
	Center int32
	// Cum[h] is the ball size at radius h; len(Cum) == eccentricity+1.
	// Shared storage — do not modify.
	Cum []int32
}

// Eccentricity returns the center's hop radius within its component.
func (c *CumProfile) Eccentricity() int { return len(c.Cum) - 1 }

// Size returns |ball(Center, h)|, saturating beyond the eccentricity.
func (c *CumProfile) Size(h int) int {
	if h >= len(c.Cum) {
		h = len(c.Cum) - 1
	}
	return int(c.Cum[h])
}

// MSBFSDiameterCutoff routes high-diameter graphs off the bit-parallel
// distance sweeps: past this estimated diameter the per-level frontiers are
// thin and the mask strips repeat work every level, and a scalar BFS per
// center wins (the wave-1 benchmarks measured ~2.5x regressions on
// lattices). The double-sweep probe is cached per engine. Exported so the
// hierarchy sweeps route their sigma batches on the same threshold — for
// them the cutoff also guards exactness: lattice-like graphs are the ones
// whose binomial path counts could leave float64's exact-integer range.
const MSBFSDiameterCutoff = 32

// CumProfiles returns the centers' cum-only profiles in center order. The
// misses run through the bit-parallel MSBFS kernel in multi-word batches of
// up to graph.MSBFSMaxWidth sources (one CSR sweep per batch, counts-only —
// no distance matrix), fanned over the worker pool — the fast path for
// distance-only metrics (expansion, eccentricity, path lengths) that never
// materialize ball membership. High-diameter graphs route to a scalar BFS
// per center instead (see MSBFSDiameterCutoff); level counts are integers
// either way, so the routing and batch width are invisible in the results.
//
// Cache coherence with full profiles: a completed full profile satisfies a
// cum request directly (its Cum is shared, no kernel pass runs), while cum
// entries live in a side cache that Profile never consults — so a cum entry
// can never downgrade or preempt a cached full profile, and a later
// Profile(center) still computes (and caches) the full ordered pass.
func (e *Engine) CumProfiles(centers []int32) []*CumProfile {
	out := make([]*CumProfile, len(centers))
	ents := make([]*cumEntry, len(centers))
	var mine, theirs []int // indices this call computes vs. waits on
	e.mu.Lock()
	for i, c := range centers {
		if pe := e.profiles[c]; pe != nil {
			if p := pe.pub.Load(); p != nil {
				out[i] = &CumProfile{Center: c, Cum: p.Cum}
				continue
			}
		}
		ent := e.cums[c]
		if ent == nil {
			ent = &cumEntry{done: make(chan struct{})}
			e.cums[c] = ent
			mine = append(mine, i)
		} else {
			theirs = append(theirs, i)
		}
		ents[i] = ent
	}
	e.mu.Unlock()
	// Work units for the live progress fraction: satisfied-from-cache
	// centers complete instantly; "mine" completes as the kernels run.
	e.prog.AddTotal(int64(len(centers)))
	e.prog.Add(int64(len(centers) - len(mine)))
	if len(mine) > 0 && e.ApproxDiameter() > MSBFSDiameterCutoff {
		e.forEach(len(mine), func(j int) {
			idx := mine[j]
			ws := e.scratch.Get()
			cum := cumFromBFS(e.g, ws.bfs, centers[idx])
			e.scratch.Put(ws)
			ent := ents[idx]
			ent.c = &CumProfile{Center: centers[idx], Cum: cum}
			out[idx] = ent.c
			close(ent.done)
			e.prog.Add(1)
		})
		e.mDistScalar.Add(int64(len(mine)))
	} else if len(mine) > 0 {
		width := e.batchWidth(len(mine))
		e.mMSBFSWidth.Set(int64(width))
		batches := (len(mine) + width - 1) / width
		e.forEach(batches, func(b int) {
			lo := b * width
			hi := lo + width
			if hi > len(mine) {
				hi = len(mine)
			}
			batch := mine[lo:hi]
			sources := make([]int32, len(batch))
			for j, idx := range batch {
				sources[j] = centers[idx]
			}
			ms := e.msbfs.Get()
			ms.RunLevels(e.g, sources)
			for j, idx := range batch {
				levels := ms.LevelCounts(j)
				cum := make([]int32, len(levels))
				run := int32(0)
				for h, cnt := range levels {
					run += cnt
					cum[h] = run
				}
				ent := ents[idx]
				ent.c = &CumProfile{Center: sources[j], Cum: cum}
				out[idx] = ent.c
				close(ent.done)
			}
			e.msbfs.Put(ms)
			e.mMSBFSBatches.Add(1)
			e.mMSBFSSources.Add(int64(len(batch)))
			e.prog.Add(int64(len(batch)))
		})
	}
	// Entries claimed by a concurrent call: their owner always completes
	// its batches before waiting on anyone else, so this cannot cycle.
	for _, i := range theirs {
		<-ents[i].done
		out[i] = ents[i].c
	}
	return out
}

// batchWidth picks the wide sweep's mask width from the engine's pool size.
func (e *Engine) batchWidth(pending int) int {
	return BatchWidth(pending, e.Parallelism())
}

// BatchWidth picks a bit-parallel mask-strip width for pending work items
// spread over parallel workers: as wide as the pending work allows without
// starving the pool, rounded up to whole 64-bit words and clamped to
// [MSBFSWidth, MSBFSMaxWidth]. Shared by the engine's distance sweeps and
// the hierarchy layer's sigma batches so every batched kernel sizes strips
// by the same rule.
func BatchWidth(pending, parallel int) int {
	if parallel < 1 {
		parallel = 1
	}
	width := (pending + parallel - 1) / parallel
	if width < graph.MSBFSWidth {
		width = graph.MSBFSWidth
	}
	if width > graph.MSBFSMaxWidth {
		width = graph.MSBFSMaxWidth
	}
	words := (width + graph.MSBFSWordBits - 1) / graph.MSBFSWordBits
	return words * graph.MSBFSWordBits
}

// cumFromBFS builds one center's cumulative ball sizes from a scalar BFS —
// the per-center route for graphs the diameter probe keeps off the
// bit-parallel sweeps. The counts are identical to the kernel's.
func cumFromBFS(g *graph.Graph, s *graph.BFSScratch, center int32) []int32 {
	order := s.BFS(g, center)
	ecc := int(s.Dist(order[len(order)-1]))
	cum := make([]int32, ecc+1)
	for _, v := range order {
		cum[s.Dist(v)]++
	}
	for h := 1; h <= ecc; h++ {
		cum[h] += cum[h-1]
	}
	return cum
}

// BallSubgraph returns the induced subgraph of ball(p.Center, h), built at
// most once per (center, radius) and shared by every metric that asks.
func (e *Engine) BallSubgraph(p *Profile, h int) *graph.Graph {
	if h > p.Eccentricity() {
		h = p.Eccentricity()
	}
	p.mu.Lock()
	for len(p.subs) <= h {
		p.subs = append(p.subs, &subEntry{})
	}
	ent := p.subs[h]
	p.mu.Unlock()
	ent.once.Do(func() {
		ws := e.scratch.Get()
		ent.g = ws.sub.Induced(e.g, p.BallAt(h))
		e.scratch.Put(ws)
		e.mSubgraphs.Add(1)
	})
	return ent.g
}

// forEach runs work(i) for i in [0, n) over the worker pool. With a pool of
// width 1 the calls run inline in index order.
func (e *Engine) forEach(n int, work func(i int)) {
	parallel := e.Parallelism()
	if parallel <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	workers := parallel
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// BallPoints grows balls per cfg around the sampled centers, fanning
// centers out over the worker pool, and collects one point per accepted
// ball — X the ball size, Y from perBall on the ball's induced subgraph —
// assembled in deterministic (center, radius) order. perBall runs on worker
// goroutines and receives a per-center RNG seeded seed+centerIndex; it must
// not retain sub, which is shared through the engine's subgraph cache.
func (e *Engine) BallPoints(cfg Config, seed int64, perBall func(sub *graph.Graph, rng *rand.Rand) (y float64, ok bool)) []stats.Point {
	return e.BallPointsKernels(cfg, seed,
		func(sub *graph.Graph, _ int, rng *rand.Rand, _ *Kernels) (float64, bool) {
			return perBall(sub, rng)
		})
}

// BallPointsKernels is BallPoints for kernel-backed metrics: perBall
// additionally receives the ball's radius and a pooled per-worker Kernels
// bundle whose solvers it may use freely for the duration of the call. The
// bundle is checked out once per center and returned to the pool
// afterwards, so consecutive balls (and consecutive centers on the same
// worker) reuse the same workspaces. Kernel contents carry no state between
// balls that affects results, preserving the bit-identical-at-every-
// parallelism contract.
func (e *Engine) BallPointsKernels(cfg Config, seed int64, perBall func(sub *graph.Graph, radius int, rng *rand.Rand, k *Kernels) (y float64, ok bool)) []stats.Point {
	cfg.defaults()
	centers := Centers(e.g, &cfg)
	profs := e.Profiles(centers)
	perCenter := make([][]stats.Point, len(centers))
	e.forEach(len(centers), func(i int) {
		p := profs[i]
		rng := rand.New(rand.NewSource(seed + int64(i)))
		k := e.kernels.Get()
		defer e.kernels.Put(k)
		maxR := p.Eccentricity()
		if cfg.MaxRadius > 0 && maxR > cfg.MaxRadius {
			maxR = cfg.MaxRadius
		}
		var pts []stats.Point
		for h := 1; h <= maxR; h++ {
			sz := p.Size(h)
			if cfg.MaxBallSize > 0 && sz > cfg.MaxBallSize {
				break
			}
			if sz < cfg.MinBallSize {
				continue
			}
			sub := e.BallSubgraph(p, h)
			if y, ok := perBall(sub, h, rng, k); ok {
				pts = append(pts, stats.Point{X: float64(sz), Y: y})
			}
		}
		perCenter[i] = pts
	})
	total := 0
	for _, pts := range perCenter {
		total += len(pts)
	}
	out := make([]stats.Point, 0, total)
	for _, pts := range perCenter {
		out = append(out, pts...)
	}
	return out
}
