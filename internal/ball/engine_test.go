package ball

import (
	"math/rand"
	"reflect"
	"testing"

	"topocmp/internal/graph"
	"topocmp/internal/obs"
	"topocmp/internal/stats"
)

func engineTestGraph() *graph.Graph {
	r := rand.New(rand.NewSource(42))
	n := 400
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Graph()
}

func TestProfileMatchesBFS(t *testing.T) {
	g := engineTestGraph()
	e := NewEngine(g, 1)
	for src := int32(0); src < 30; src++ {
		p := e.Profile(src)
		dist, order := g.BFS(src)
		if p.Center != src || len(p.Order) != len(order) {
			t.Fatalf("src %d: profile covers %d nodes, want %d", src, len(p.Order), len(order))
		}
		ecc := int(dist[order[len(order)-1]])
		if p.Eccentricity() != ecc {
			t.Fatalf("src %d: eccentricity %d, want %d", src, p.Eccentricity(), ecc)
		}
		for h := 0; h <= ecc+2; h++ {
			want := 0
			for _, v := range order {
				if int(dist[v]) <= h {
					want++
				}
			}
			if p.Size(h) != want {
				t.Fatalf("src %d: ball size at h=%d is %d, want %d", src, h, p.Size(h), want)
			}
		}
	}
}

func TestProfileCacheSharesOneBFS(t *testing.T) {
	g := engineTestGraph()
	e := NewEngine(g, 1)
	p1 := e.Profile(5)
	p2 := e.Profile(5)
	if p1 != p2 {
		t.Fatal("same center computed twice: profile cache missed")
	}
	// Parallel Profiles over overlapping center sets must reuse entries.
	profs := e.Profiles([]int32{3, 5, 7})
	if profs[1] != p1 {
		t.Fatal("Profiles did not reuse the cached profile")
	}
}

func TestBallSubgraphMatchesSubgraph(t *testing.T) {
	g := engineTestGraph()
	e := NewEngine(g, 1)
	p := e.Profile(0)
	for h := 1; h <= p.Eccentricity(); h++ {
		got := e.BallSubgraph(p, h)
		want := g.Subgraph(p.BallAt(h))
		if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("h=%d: got %d nodes/%d edges, want %d/%d", h,
				got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
		}
		if e.BallSubgraph(p, h) != got {
			t.Fatalf("h=%d: ball subgraph not cached", h)
		}
	}
}

// ballPointsAt runs one deterministic-but-RNG-consuming BallPoints pass at
// the given parallelism.
func ballPointsAt(g *graph.Graph, parallelism int) []stats.Point {
	e := NewEngine(g, parallelism)
	cfg := Config{MaxSources: 24, MaxBallSize: 300, MinBallSize: 2,
		Rand: rand.New(rand.NewSource(1))}
	return e.BallPoints(cfg, 77, func(sub *graph.Graph, rng *rand.Rand) (float64, bool) {
		// Consume the per-center RNG so scheduling bugs would show up.
		return float64(sub.NumEdges()) + float64(rng.Intn(3)), true
	})
}

func TestBallPointsParallelMatchesSequential(t *testing.T) {
	g := engineTestGraph()
	seq := ballPointsAt(g, 1)
	if len(seq) == 0 {
		t.Fatal("no points produced")
	}
	for _, workers := range []int{2, 4, 8} {
		par := ballPointsAt(g, workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallelism %d: points differ from sequential", workers)
		}
	}
}

func TestVisitMatchesProfiles(t *testing.T) {
	// Visit (the legacy sequential walk) and the engine must agree on every
	// grown ball.
	g := engineTestGraph()
	e := NewEngine(g, 1)
	cfg := Config{MaxSources: 10, MaxBallSize: 250, Rand: rand.New(rand.NewSource(3))}
	type key struct {
		center int32
		radius int
	}
	sizes := map[key]int{}
	Visit(g, cfg, func(b Ball) {
		sizes[key{b.Center, b.Radius}] = len(b.Nodes)
	})
	if len(sizes) == 0 {
		t.Fatal("no balls visited")
	}
	for k, sz := range sizes {
		if got := e.Profile(k.center).Size(k.radius); got != sz {
			t.Fatalf("ball (%d, %d): Visit saw %d nodes, profile says %d",
				k.center, k.radius, sz, got)
		}
	}
}

// TestEngineInstrumentation: an instrumented engine reports balls grown,
// BFS visits and subgraph builds through the registry, counting cached
// reuse exactly once.
func TestEngineInstrumentation(t *testing.T) {
	g := engineTestGraph()
	e := NewEngine(g, 1)
	reg := obs.NewRegistry()
	e.Instrument(reg)

	p := e.Profile(5)
	e.Profile(5) // cached: no second BFS
	e.BallSubgraph(p, 1)
	e.BallSubgraph(p, 1) // cached: no second build

	snap := reg.Snapshot()
	if snap.Counters["ball.profiles"] != 1 {
		t.Errorf("profiles = %d, want 1", snap.Counters["ball.profiles"])
	}
	if snap.Counters["ball.bfs_visits"] != int64(len(p.Order)) {
		t.Errorf("bfs_visits = %d, want %d", snap.Counters["ball.bfs_visits"], len(p.Order))
	}
	if snap.Counters["ball.subgraphs"] != 1 {
		t.Errorf("subgraphs = %d, want 1", snap.Counters["ball.subgraphs"])
	}
	gets, allocs := snap.Counters["ball.scratch_gets"], snap.Counters["ball.scratch_allocs"]
	if gets != 2 || allocs < 1 || allocs > gets {
		t.Errorf("scratch gets=%d allocs=%d", gets, allocs)
	}

	// An uninstrumented engine takes the same calls as pure no-ops.
	plain := NewEngine(g, 1)
	plain.BallSubgraph(plain.Profile(5), 1)
}
