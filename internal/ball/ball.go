// Package ball implements the paper's ball-growing technique (§3.2.1): all
// metrics other than expansion are computed on the subgraphs induced by
// balls of increasing radius around (sampled) nodes, so that graphs of very
// different sizes can be compared at the same scale.
package ball

import (
	"math/rand"
	"sort"

	"topocmp/internal/graph"
)

// Config controls how balls are grown.
type Config struct {
	// MaxSources caps how many ball centers are sampled; 0 means every
	// node. The paper samples centers for large graphs to keep computation
	// times reasonable (its footnotes 12 and 14).
	MaxSources int
	// MaxRadius stops growing at this radius; 0 grows to the center's
	// eccentricity.
	MaxRadius int
	// MaxBallSize skips balls larger than this (0 = unlimited); expensive
	// per-ball metrics use it to bound their cost.
	MaxBallSize int
	// MinBallSize skips balls smaller than this; avoids noise from trivial
	// subgraphs in per-ball metrics.
	MinBallSize int
	// Rand drives center sampling; nil uses a fixed seed.
	Rand *rand.Rand
}

func (c *Config) defaults() {
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(1))
	}
}

// Ball is one grown ball: the center, hop radius, and member nodes (ids in
// the parent graph, in BFS order from the center).
type Ball struct {
	Center int32
	Radius int
	Nodes  []int32
}

// Visit grows balls of every radius around each sampled center and invokes
// fn once per (center, radius) with the ball's member prefix. The slice
// passed to fn is only valid during the call. Growth around a center stops
// once the ball covers the center's whole component, exceeds MaxBallSize,
// or reaches MaxRadius.
func Visit(g *graph.Graph, cfg Config, fn func(b Ball)) {
	cfg.defaults()
	s := graph.NewBFSScratch()
	for _, src := range Centers(g, &cfg) {
		order := s.BFS(g, src)
		// order is sorted by distance already (BFS property).
		maxR := int(s.Dist(order[len(order)-1]))
		if cfg.MaxRadius > 0 && maxR > cfg.MaxRadius {
			maxR = cfg.MaxRadius
		}
		idx := 0
		for h := 1; h <= maxR; h++ {
			for idx < len(order) && int(s.Dist(order[idx])) <= h {
				idx++
			}
			if cfg.MaxBallSize > 0 && idx > cfg.MaxBallSize {
				break
			}
			if idx < cfg.MinBallSize {
				continue
			}
			fn(Ball{Center: src, Radius: h, Nodes: order[:idx]})
		}
	}
}

// Centers returns the sampled ball centers for the configuration.
func Centers(g *graph.Graph, cfg *Config) []int32 {
	cfg.defaults()
	n := g.NumNodes()
	if cfg.MaxSources <= 0 || cfg.MaxSources >= n {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	perm := cfg.Rand.Perm(n)
	out := make([]int32, cfg.MaxSources)
	for i := range out {
		out[i] = int32(perm[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subgraph extracts the induced subgraph of a ball.
func Subgraph(g *graph.Graph, b Ball) *graph.Graph {
	return g.Subgraph(b.Nodes)
}
