package obs

// This file is the live observability plane's HTTP surface: a stdlib
// net/http server mounting Prometheus metrics, the progress DAG, a
// span-tree snapshot and the runtime profiling endpoints. cmd/reproduce
// mounts it behind -http; the topocmpd daemon (ROADMAP item 1) mounts the
// same mux directly.

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is a running debug HTTP server. Close it to stop serving;
// closing never affects results — the endpoints only read snapshots.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugMux builds the observability mux over live sources (any of
// which may be nil — the endpoints then serve empty bodies):
//
//	/metrics          Prometheus text exposition of reg, with histogram buckets
//	/debug/progress   JSON ProgressSnapshot of prog (stage states, fractions, ETA)
//	/debug/trace      live span-tree snapshot of tr (text; ?format=chrome for trace-event JSON)
//	/debug/pprof/*    the standard runtime profiles
//
// Every handler snapshots under the sources' own locks, so serving races
// nothing and perturbs nothing but the scheduler.
func NewDebugMux(reg *Registry, prog *Progress, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "topocmp debug server\n\n/metrics\n/debug/progress\n/debug/trace\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		prog.WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			tr.WriteChromeTrace(w) //nolint:errcheck // client went away
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr.WriteTree(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer listens on addr (host:port; port 0 picks a free one —
// read the choice back from Addr) and serves NewDebugMux in the
// background.
func StartDebugServer(addr string, reg *Registry, prog *Progress, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: NewDebugMux(reg, prog, tr)}}
	go ds.srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return ds, nil
}

// Addr returns the server's bound address ("" on nil).
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server immediately. No-op on nil.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
