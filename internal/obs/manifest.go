package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
)

// StageTiming is one top-level stage's duration for the manifest.
type StageTiming struct {
	Name            string  `json:"name"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// StageTimings extracts the root span's direct children — the run's
// stages — in start order.
func StageTimings(root *Span) []StageTiming {
	if root == nil {
		return nil
	}
	var out []StageTiming
	for _, c := range root.byStart() {
		out = append(out, StageTiming{Name: c.Name(), DurationSeconds: c.Duration().Seconds()})
	}
	return out
}

// Manifest is the per-run record written next to the artifacts
// (results/run.json): which tool at which configuration produced the
// directory, under which cache schema, through which stages, ending at
// which metric values. An output directory carrying one is
// self-describing — the manifest alone reconstructs the invocation.
type Manifest struct {
	Tool               string        `json:"tool"`
	GoVersion          string        `json:"go_version"`
	CacheSchemaVersion int           `json:"cache_schema_version"`
	Seed               int64         `json:"seed"`
	Workers            int           `json:"workers"`
	CacheDir           string        `json:"cache_dir,omitempty"`
	Config             any           `json:"config,omitempty"`
	Stages             []StageTiming `json:"stages,omitempty"`
	TotalSeconds       float64       `json:"total_seconds"`
	Metrics            Snapshot      `json:"metrics"`
}

// Write renders the manifest as indented JSON at path, atomically
// (temp file + rename), so a concurrent reader never sees a torn file.
func (m *Manifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadManifest loads a manifest written by Write. Config decodes as
// generic JSON (map[string]any); callers needing the concrete type can
// re-unmarshal it.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
