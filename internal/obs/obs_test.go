package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilSafety drives every exported method on nil receivers: the no-op
// default must never panic, and disabled lookups must return nils that are
// themselves no-ops.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil {
		t.Fatal("nil tracer returned a span")
	}
	if err := tr.WriteTree(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var sp *Span
	if c := sp.Start("child"); c != nil {
		t.Fatal("nil span started a real child")
	}
	sp.End()
	sp.SetAttr("k", 1)
	if sp.Name() != "" || sp.Depth() != 0 || sp.Duration() != 0 {
		t.Fatal("nil span reported non-zero state")
	}
	if sp.Children() != nil || sp.Attrs() != nil {
		t.Fatal("nil span reported children or attrs")
	}
	if sh := sp.Shape(); sh.Name != "" || sh.Children != nil {
		t.Fatal("nil span reported a shape")
	}

	var reg *Registry
	c := reg.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a counter")
	}
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := reg.Gauge("x")
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := reg.Histogram("x")
	h.Observe(time.Second)
	if st := h.Stats(); st.Count != 0 || st.Buckets != nil {
		t.Fatal("nil histogram recorded")
	}
	if snap := reg.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot non-empty")
	}
	if StageTimings(nil) != nil {
		t.Fatal("nil root produced stages")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	// No span in ctx: Start is a no-op passthrough.
	ctx2, sp := Start(ctx, "orphan")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start without a tracer created a span")
	}

	tr := NewTracer("root")
	ctx = With(ctx, tr.Root())
	ctx, a := Start(ctx, "a")
	if a == nil || FromContext(ctx) != a {
		t.Fatal("Start did not thread the child through the context")
	}
	_, b := Start(ctx, "b")
	b.End()
	a.End()
	want := Shape{Name: "root", Children: []Shape{{Name: "a", Children: []Shape{{Name: "b"}}}}}
	if got := tr.Root().Shape(); !reflect.DeepEqual(got, want) {
		t.Fatalf("shape = %+v, want %+v", got, want)
	}
}

// TestShapeCanonical: sibling order in a Shape is by name, independent of
// creation order — the property that makes span trees comparable across
// worker widths.
func TestShapeCanonical(t *testing.T) {
	mk := func(names []string) Shape {
		tr := NewTracer("root")
		for _, n := range names {
			tr.Root().Start(n).End()
		}
		return tr.Root().Shape()
	}
	a := mk([]string{"x", "y", "z"})
	b := mk([]string{"z", "x", "y"})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shapes differ by creation order: %+v vs %+v", a, b)
	}
}

func TestWriteTreeAndChromeTrace(t *testing.T) {
	tr := NewTracer("run")
	st := tr.Root().Start("stage")
	st.SetAttr("width", 3)
	n1 := st.Start("net:A")
	n1.Start("build:A").End()
	n1.End()
	st.End()
	tr.Root().End()

	var tree bytes.Buffer
	if err := tr.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	out := tree.String()
	for _, want := range []string{"run", "stage", "net:A", "build:A", "width=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("tree has %d lines, want 4:\n%s", lines, out)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 4 {
		t.Fatalf("trace has %d events, want 4", len(decoded.TraceEvents))
	}
	for _, ev := range decoded.TraceEvents {
		if ev["ph"] != "X" {
			t.Errorf("event %v is not a complete event", ev["name"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event %v has no numeric ts", ev["name"])
		}
	}
}

// TestChromeTraceLanes: overlapping siblings must land on distinct tids,
// nested children may share their parent's.
func TestChromeTraceLanes(t *testing.T) {
	tr := NewTracer("run")
	// Start two children and end them out of order so their intervals
	// overlap.
	a := tr.Root().Start("a")
	b := tr.Root().Start("b")
	time.Sleep(time.Millisecond)
	a.End()
	b.End()
	tr.Root().End()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	tids := map[string]int{}
	for _, ev := range decoded.TraceEvents {
		tids[ev.Name] = ev.Tid
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping siblings share tid %d", tids["a"])
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("c") != reg.Counter("c") {
		t.Fatal("same name returned distinct counters")
	}
	reg.Counter("c").Add(2)
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(7)
	reg.Histogram("h").Observe(2 * time.Millisecond)
	reg.Histogram("h").Observe(4 * time.Millisecond)

	snap := reg.Snapshot()
	if snap.Counters["c"] != 5 {
		t.Errorf("counter = %d, want 5", snap.Counters["c"])
	}
	if snap.Gauges["g"] != 7 {
		t.Errorf("gauge = %d, want 7", snap.Gauges["g"])
	}
	h := snap.Histograms["h"]
	if h.Count != 2 || h.SumNs != (6*time.Millisecond).Nanoseconds() {
		t.Errorf("histogram = %+v", h)
	}
	if h.MinNs != (2*time.Millisecond).Nanoseconds() || h.MaxNs != (4*time.Millisecond).Nanoseconds() {
		t.Errorf("histogram min/max = %+v", h)
	}

	var buf bytes.Buffer
	if err := snap.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"counter", "gauge", "histogram", "count=2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	tr := NewTracer("run")
	tr.Root().Start("stage one").End()
	tr.Root().Start("stage two").End()
	tr.Root().End()
	reg := NewRegistry()
	reg.Counter("pipeline.network_builds").Add(11)

	path := filepath.Join(t.TempDir(), "run.json")
	m := &Manifest{
		Tool:               "reproduce",
		GoVersion:          "go-test",
		CacheSchemaVersion: 1,
		Seed:               42,
		Workers:            3,
		Stages:             StageTimings(tr.Root()),
		TotalSeconds:       tr.Root().Duration().Seconds(),
		Metrics:            reg.Snapshot(),
	}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Workers != 3 || got.CacheSchemaVersion != 1 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if len(got.Stages) != 2 || got.Stages[0].Name != "stage one" {
		t.Errorf("stages = %+v", got.Stages)
	}
	if got.Metrics.Counters["pipeline.network_builds"] != 11 {
		t.Errorf("metrics = %+v", got.Metrics)
	}
}

func TestHistogramBucketsSaturate(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second) // clamps to 0
	h.Observe(0)
	h.Observe(100 * time.Hour) // beyond the last bucket
	st := h.Stats()
	if st.Count != 3 || st.MinNs != 0 || st.MaxNs != (100*time.Hour).Nanoseconds() {
		t.Fatalf("stats = %+v", st)
	}
}
