package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSpansAndCounters hammers one tracer and one registry from
// many goroutines — the tier-2 `go test -race ./internal/obs` target. It
// mirrors the pipeline's real shape: concurrent children under one parent,
// attrs set from workers, shared counters and histograms, and exports
// racing with live spans.
func TestConcurrentSpansAndCounters(t *testing.T) {
	tr := NewTracer("root")
	tr.OnStart = func(s *Span) { _ = s.Name() }
	tr.OnEnd = func(s *Span) { _ = s.Duration() }
	reg := NewRegistry()
	parent := tr.Root().Start("stage")

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := parent.Start("work")
				sp.SetAttr("worker", w)
				reg.Counter("events").Add(1)
				reg.Gauge("level").Set(int64(w))
				reg.Histogram("latency").Observe(time.Duration(i) * time.Microsecond)
				sp.End()
			}
		}(w)
	}
	// Exports race with the writers on purpose.
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		_ = tr.WriteChromeTrace(&buf)
		_ = reg.Snapshot()
		_ = parent.Shape()
		buf.Reset()
	}
	wg.Wait()
	parent.End()
	tr.Root().End()

	if got := reg.Counter("events").Value(); got != workers*50 {
		t.Fatalf("events = %d, want %d", got, workers*50)
	}
	if got := len(parent.Children()); got != workers*50 {
		t.Fatalf("children = %d, want %d", got, workers*50)
	}
	if st := reg.Histogram("latency").Stats(); st.Count != workers*50 {
		t.Fatalf("histogram count = %d", st.Count)
	}
}
