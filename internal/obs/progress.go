package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// StageState is one progress stage's lifecycle position. Stages move
// pending → running → done, or pending → cached when a result store
// satisfied the stage without computation.
type StageState string

// The stage lifecycle states reported by /debug/progress.
const (
	StagePending StageState = "pending"
	StageRunning StageState = "running"
	StageCached  StageState = "cached"
	StageDone    StageState = "done"
)

// Progress tracks the run's stage DAG for live reporting: every stage's
// state, its elapsed time, and optional work counters (balls done / total
// from the ball engines) that turn a running stage into a completion
// fraction and an ETA. Like the rest of the package it is nil-safe — a nil
// *Progress hands out nil stages whose every method no-ops — and all
// methods are safe for concurrent use. Registration order is display
// order, so the DAG reads in schedule order in /debug/progress.
type Progress struct {
	clock func() time.Time
	start time.Time

	mu     sync.Mutex
	stages []*ProgressStage
	byName map[string]*ProgressStage
}

// NewProgress returns an empty tracker on the wall clock.
func NewProgress() *Progress {
	return NewProgressClock(time.Now)
}

// NewProgressClock is NewProgress with an injected clock; the golden
// /debug/progress test pins exact JSON through it.
func NewProgressClock(clock func() time.Time) *Progress {
	return &Progress{clock: clock, start: clock(), byName: map[string]*ProgressStage{}}
}

// Register returns the named stage, creating it in state pending on first
// request — idempotent, so schedulers and lazy accessors can both claim
// the same stage. Nil receivers hand out nil stages.
func (p *Progress) Register(name string) *ProgressStage {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.byName[name]
	if st == nil {
		st = &ProgressStage{p: p, name: name, state: StagePending}
		p.byName[name] = st
		p.stages = append(p.stages, st)
	}
	return st
}

// Forget removes the named stage from the DAG (no-op when absent or on a
// nil tracker). Long-running servers prune completed per-request stages
// with it so /debug/progress stays bounded; a ProgressStage handle held
// across Forget keeps working, it just no longer appears in snapshots.
func (p *Progress) Forget(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.byName[name]
	if st == nil {
		return
	}
	delete(p.byName, name)
	for i, s := range p.stages {
		if s == st {
			p.stages = append(p.stages[:i], p.stages[i+1:]...)
			break
		}
	}
}

// ProgressStage is one tracked unit of the run. Work counters are
// optional: stages that never call AddTotal report state and elapsed time
// only.
type ProgressStage struct {
	p    *Progress
	name string

	mu      sync.Mutex
	state   StageState
	started time.Time
	ended   time.Time

	done  atomic.Int64
	total atomic.Int64
}

// Run marks the stage running (recording its start time). No-op on nil.
func (s *ProgressStage) Run() { s.transition(StageRunning) }

// Done marks the stage completed. No-op on nil.
func (s *ProgressStage) Done() { s.transition(StageDone) }

// Cached marks the stage satisfied from a result store without
// computation. No-op on nil.
func (s *ProgressStage) Cached() { s.transition(StageCached) }

func (s *ProgressStage) transition(to StageState) {
	if s == nil {
		return
	}
	now := s.p.clock()
	s.mu.Lock()
	switch to {
	case StageRunning:
		if s.state == StagePending {
			s.state = StageRunning
			s.started = now
		}
	case StageDone, StageCached:
		if s.state != StageDone && s.state != StageCached {
			s.state = to
			if s.started.IsZero() {
				s.started = now
			}
			s.ended = now
		}
	}
	s.mu.Unlock()
}

// AddTotal grows the stage's expected work-unit count (safe from many
// goroutines; the ball engines add each batch of scheduled centers).
// No-op on nil.
func (s *ProgressStage) AddTotal(n int64) {
	if s != nil {
		s.total.Add(n)
	}
}

// Add records n completed work units. No-op on nil.
func (s *ProgressStage) Add(n int64) {
	if s != nil {
		s.done.Add(n)
	}
}

// StageStatus is one stage's JSON image in a ProgressSnapshot.
type StageStatus struct {
	Name           string     `json:"name"`
	State          StageState `json:"state"`
	DoneUnits      int64      `json:"done_units,omitempty"`
	TotalUnits     int64      `json:"total_units,omitempty"`
	Fraction       float64    `json:"fraction"`
	ElapsedSeconds float64    `json:"elapsed_seconds,omitempty"`
}

// ProgressSnapshot is the point-in-time JSON served at /debug/progress:
// per-stage states in registration order plus an overall completion
// fraction (stages weighted equally — coarse, but monotone) and the ETA it
// implies at the current rate. ETASeconds is 0 until the fraction is
// positive.
type ProgressSnapshot struct {
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Fraction       float64       `json:"fraction"`
	ETASeconds     float64       `json:"eta_seconds,omitempty"`
	Stages         []StageStatus `json:"stages"`
}

// Snapshot copies out the current stage states. On a nil tracker it
// returns an empty snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	var snap ProgressSnapshot
	if p == nil {
		return snap
	}
	now := p.clock()
	snap.ElapsedSeconds = now.Sub(p.start).Seconds()
	p.mu.Lock()
	stages := make([]*ProgressStage, len(p.stages))
	copy(stages, p.stages)
	p.mu.Unlock()
	sum := 0.0
	for _, st := range stages {
		ss := st.status(now)
		sum += ss.Fraction
		snap.Stages = append(snap.Stages, ss)
	}
	if len(snap.Stages) > 0 {
		snap.Fraction = sum / float64(len(snap.Stages))
	}
	if snap.Fraction > 0 && snap.Fraction < 1 {
		snap.ETASeconds = snap.ElapsedSeconds * (1 - snap.Fraction) / snap.Fraction
	}
	return snap
}

func (s *ProgressStage) status(now time.Time) StageStatus {
	s.mu.Lock()
	state := s.state
	started, ended := s.started, s.ended
	s.mu.Unlock()
	ss := StageStatus{
		Name:       s.name,
		State:      state,
		DoneUnits:  s.done.Load(),
		TotalUnits: s.total.Load(),
	}
	switch state {
	case StageDone, StageCached:
		ss.Fraction = 1
		ss.ElapsedSeconds = ended.Sub(started).Seconds()
	case StageRunning:
		if ss.TotalUnits > 0 {
			ss.Fraction = float64(ss.DoneUnits) / float64(ss.TotalUnits)
			if ss.Fraction > 1 {
				ss.Fraction = 1
			}
		}
		ss.ElapsedSeconds = now.Sub(started).Seconds()
	}
	return ss
}

// WriteJSON renders the snapshot as indented JSON — the /debug/progress
// response body. No-op (empty object) on nil.
func (p *Progress) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}
