package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer owns one run's span tree. The zero Tracer is not usable; create
// one with NewTracer. A nil *Tracer hands out nil spans, so a disabled
// trace costs nothing beyond nil checks.
type Tracer struct {
	start time.Time
	root  *Span
	clock func() time.Time

	// OnStart and OnEnd, when set, are invoked for every span as it starts
	// and ends (the root excepted). They run on the goroutine that starts
	// or ends the span, so they must be safe for concurrent use. Set them
	// before the first span starts.
	OnStart func(*Span)
	OnEnd   func(*Span)
}

// NewTracer returns a tracer whose root span is open and named rootName.
func NewTracer(rootName string) *Tracer {
	return NewTracerClock(rootName, time.Now)
}

// NewTracerClock is NewTracer with an injected clock: every span start,
// end and live-duration read consults clock() instead of time.Now. The
// golden export tests pin Chrome traces and span trees to exact bytes
// through it; production callers use NewTracer.
func NewTracerClock(rootName string, clock func() time.Time) *Tracer {
	t := &Tracer{clock: clock, start: clock()}
	t.root = &Span{tracer: t, name: rootName, start: t.start}
	return t
}

// Root returns the tracer's root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of work. All methods are safe on a nil receiver
// and for concurrent use; children may be started from many goroutines.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	depth  int
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	ended    bool
}

// Start begins a child span. On a nil receiver it returns nil.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, name: name, depth: s.depth + 1, start: s.tracer.clock()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	if f := s.tracer.OnStart; f != nil {
		f(c)
	}
	return c
}

// End closes the span, fixing its monotonic duration. Extra Ends are
// ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = s.tracer.clock().Sub(s.start)
	s.mu.Unlock()
	if f := s.tracer.OnEnd; f != nil {
		f(s)
	}
}

// SetAttr attaches a key/value annotation (carried into both exports).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Depth returns the span's distance from the root (the root is 0).
func (s *Span) Depth() int {
	if s == nil {
		return 0
	}
	return s.depth
}

// Duration returns the span's fixed duration, or the live elapsed time if
// it has not ended yet.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return s.tracer.clock().Sub(s.start)
	}
	return s.dur
}

// Children returns a snapshot of the span's children in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Attrs returns a snapshot of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Shape is the timing-free skeleton of a span subtree: names and hierarchy
// only, siblings in name order. Two runs of the same configuration produce
// equal Shapes regardless of scheduling, worker width or machine speed —
// the span-tree determinism contract tested by cmd/reproduce.
type Shape struct {
	Name     string
	Children []Shape
}

// Shape returns the canonical skeleton of the subtree rooted at s.
func (s *Span) Shape() Shape {
	if s == nil {
		return Shape{}
	}
	sh := Shape{Name: s.name}
	for _, c := range s.Children() {
		sh.Children = append(sh.Children, c.Shape())
	}
	sort.Slice(sh.Children, func(i, j int) bool { return sh.Children[i].Name < sh.Children[j].Name })
	return sh
}

// byStart returns the span's children sorted by start time (name breaks
// ties, so the order is stable for display).
func (s *Span) byStart() []*Span {
	cs := s.Children()
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].start.Equal(cs[j].start) {
			return cs[i].name < cs[j].name
		}
		return cs[i].start.Before(cs[j].start)
	})
	return cs
}

// WriteTree renders the span tree as an indented human summary, children
// in start order:
//
//	reproduce                          12.3s
//	  Pipeline: networks and suites    10.1s
//	    net:AS                          4.2s
//	      build:AS                      1.0s
//	      suite:AS                      3.2s  [width=2]
func (t *Tracer) WriteTree(w io.Writer) error {
	if t == nil {
		return nil
	}
	var walk func(s *Span, indent string) error
	walk = func(s *Span, indent string) error {
		line := fmt.Sprintf("%s%-*s %8.3fs", indent, 36-len(indent), s.Name(), s.Duration().Seconds())
		if attrs := s.Attrs(); len(attrs) > 0 {
			line += "  ["
			for i, a := range attrs {
				if i > 0 {
					line += " "
				}
				line += fmt.Sprintf("%s=%v", a.Key, a.Value)
			}
			line += "]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range s.byStart() {
			if err := walk(c, indent+"  "); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, "")
}

// traceEvent is one Chrome trace-event ("X" complete event).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // µs since trace start
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the span tree in the Chrome trace-event JSON
// format (load it at chrome://tracing or ui.perfetto.dev). Spans that ran
// concurrently are placed on separate tracks ("tid" lanes) by a greedy
// assignment: a child shares its parent's lane when the lane is free at its
// start time, otherwise it gets a fresh lane for its whole subtree, so
// nested events always nest and overlapping events never collide.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	var events []traceEvent
	nextTid := 1
	var walk func(s *Span, tid int)
	walk = func(s *Span, tid int) {
		ev := traceEvent{
			Name: s.Name(), Cat: "span", Ph: "X",
			Ts:  s.start.Sub(t.start).Microseconds(),
			Dur: s.Duration().Microseconds(),
			Pid: 1, Tid: tid,
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			ev.Args = map[string]any{}
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
		// Lane 0 of this nesting level is the parent's own lane; it is free
		// again once the previously placed child has ended.
		type lane struct {
			tid int
			end time.Time
		}
		lanes := []lane{{tid: tid}}
		for _, c := range s.byStart() {
			placed := -1
			for i := range lanes {
				if !lanes[i].end.After(c.start) {
					placed = i
					break
				}
			}
			if placed == -1 {
				lanes = append(lanes, lane{tid: nextTid})
				nextTid++
				placed = len(lanes) - 1
			}
			lanes[placed].end = c.start.Add(c.Duration())
			walk(c, lanes[placed].tid)
		}
	}
	walk(t.root, 0)
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
