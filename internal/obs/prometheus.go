package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `<name>_total`, gauges verbatim, and
// duration histograms as `<name>_seconds` with cumulative power-of-two
// `le` buckets plus `_sum` and `_count`. Metric names are sanitized to the
// Prometheus charset (runs of other characters become one underscore, so
// "ball.msbfs_batches" exports as "ball_msbfs_batches"). Families appear
// in sorted-name order and the rendering is deterministic for a given set
// of values — the golden-test contract, and what lets `/metrics` diffs
// across runs mean something.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PrometheusName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PrometheusName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePrometheusHistogram(w, PrometheusName(name)+"_seconds", s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePrometheusHistogram(w io.Writer, name string, h HistogramStats) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := int64(0)
	for i, c := range h.Buckets {
		cum += c
		le := strconv.FormatFloat(float64(HistBucketUpperNs(i))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name,
		strconv.FormatFloat(float64(h.SumNs)/1e9, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// PrometheusName sanitizes a registry metric name for the Prometheus
// exposition: every run of characters outside [a-zA-Z0-9_:] collapses to
// one underscore, and a leading digit gains an underscore prefix.
func PrometheusName(name string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			pendingSep = true
			continue
		}
		if pendingSep && b.Len() > 0 {
			b.WriteByte('_')
		}
		pendingSep = false
		if b.Len() == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}
