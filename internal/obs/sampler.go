package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// Sample is one point of the run's time series: elapsed wall-clock since
// the sampler started, the process memory posture at that instant, and the
// registry's counter/gauge values. Histograms are omitted — they are
// cumulative distributions, and their count/sum already surface through
// /metrics; the time series tracks the cheap scalar signals.
type Sample struct {
	ElapsedMs      int64            `json:"elapsed_ms"`
	HeapBytes      int64            `json:"heap_bytes"`
	SysBytes       int64            `json:"sys_bytes"`
	RSSBytes       int64            `json:"rss_bytes,omitempty"`
	NumGC          int64            `json:"num_gc"`
	GCPauseTotalNs int64            `json:"gc_pause_total_ns"`
	Counters       map[string]int64 `json:"counters,omitempty"`
	Gauges         map[string]int64 `json:"gauges,omitempty"`
}

// Sampler periodically snapshots a registry plus heap/RSS/GC gauges into a
// bounded ring of samples — the live time-series behind run_timeseries.json
// and anything a serving daemon wants to chart. The ring keeps the most
// recent Capacity samples, so a long-running process holds a sliding
// window instead of growing without bound. A nil *Sampler no-ops on every
// method, mirroring the rest of the package's disabled-is-free contract.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	start    time.Time

	mu   sync.Mutex
	ring []Sample
	head int // next write position
	n    int // samples currently held

	stop chan struct{}
	done chan struct{}
}

// DefaultSampleInterval is the sampling period when NewSampler is given a
// non-positive interval. One registry snapshot plus a ReadMemStats costs
// tens of microseconds, so at this period the sampler's overhead is well
// under 1% of wall-clock (the budget recorded in EXPERIMENTS.md).
const DefaultSampleInterval = 250 * time.Millisecond

// DefaultSampleCapacity bounds the ring when NewSampler is given a
// non-positive capacity: 4096 samples ≈ 17 minutes at the default
// interval, a few MB at typical registry sizes.
const DefaultSampleCapacity = 4096

// NewSampler returns a stopped sampler over reg. Non-positive interval or
// capacity select the defaults.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		ring:     make([]Sample, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the sampling period (0 on nil).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Start launches the background sampling goroutine. It takes one sample
// immediately, then one per interval until Stop. No-op on nil.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.start = time.Now()
	s.record()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.record()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts the sampling goroutine, takes one final sample so the series
// always covers the full run, and waits for the goroutine to exit. Safe to
// call once per Start; no-op on nil.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.record()
}

// record appends one sample to the ring, evicting the oldest at capacity.
func (s *Sampler) record() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	snap := s.reg.Snapshot()
	sample := Sample{
		ElapsedMs:      time.Since(s.start).Milliseconds(),
		HeapBytes:      int64(ms.HeapInuse),
		SysBytes:       int64(ms.Sys),
		NumGC:          int64(ms.NumGC),
		GCPauseTotalNs: int64(ms.PauseTotalNs),
		Counters:       snap.Counters,
		Gauges:         snap.Gauges,
	}
	if rss, ok := ReadRSS(); ok {
		sample.RSSBytes = rss
	}
	s.mu.Lock()
	s.ring[s.head] = sample
	s.head = (s.head + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Samples returns the held samples in chronological order (nil on a nil
// sampler).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(s.head-s.n+i+len(s.ring))%len(s.ring)])
	}
	return out
}

// TimeSeries is the JSON image of a sampler's window, written as
// <out>/run_timeseries.json next to the run manifest.
type TimeSeries struct {
	IntervalMs int64    `json:"interval_ms"`
	Samples    []Sample `json:"samples"`
}

// WriteFile renders the current window as indented JSON at path,
// atomically (temp file + rename). No-op on nil.
func (s *Sampler) WriteFile(path string) error {
	if s == nil {
		return nil
	}
	ts := TimeSeries{IntervalMs: s.interval.Milliseconds(), Samples: s.Samples()}
	data, err := json.MarshalIndent(ts, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".timeseries-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
