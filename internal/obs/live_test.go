package obs

// Golden and behavioral tests for the live observability plane: exact-byte
// pins for the Chrome trace export, the Prometheus exposition and the
// /debug/progress JSON (all through injected clocks, so the bytes are
// stable on any machine), plus sampler ring/race coverage and an
// in-process debug-server round trip.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic span/progress times.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestGoldenChromeTrace(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracerClock("root", clk.Now)
	root := tr.Root()

	clk.Advance(1 * time.Millisecond)
	alpha := root.Start("alpha")
	clk.Advance(2 * time.Millisecond)
	beta := alpha.Start("beta")
	clk.Advance(5 * time.Millisecond)
	beta.End()
	clk.Advance(1 * time.Millisecond)
	alpha.End()
	clk.Advance(1 * time.Millisecond)
	gamma := root.Start("gamma")
	gamma.SetAttr("width", 2)
	clk.Advance(5 * time.Millisecond)
	gamma.End()
	clk.Advance(1 * time.Millisecond)
	root.End()

	var buf strings.Builder
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"root","cat":"span","ph":"X","ts":0,"dur":16000,"pid":1,"tid":0},` +
		`{"name":"alpha","cat":"span","ph":"X","ts":1000,"dur":8000,"pid":1,"tid":0},` +
		`{"name":"beta","cat":"span","ph":"X","ts":3000,"dur":5000,"pid":1,"tid":0},` +
		`{"name":"gamma","cat":"span","ph":"X","ts":10000,"dur":5000,"pid":1,"tid":0,"args":{"width":2}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("chrome trace mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}

func TestGoldenPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.builds").Add(3)
	r.Gauge("mem.heap").Set(42)
	h := r.Histogram("ball.bfs")
	h.Observe(500 * time.Nanosecond) // bucket 0: [0, 1µs)
	h.Observe(1 * time.Microsecond)  // bucket 1: [1µs, 2µs)
	h.Observe(3 * time.Microsecond)  // bucket 2: [2µs, 4µs)
	h.Observe(3 * time.Microsecond)

	var buf strings.Builder
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE pipeline_builds_total counter",
		"pipeline_builds_total 3",
		"# TYPE mem_heap gauge",
		"mem_heap 42",
		"# TYPE ball_bfs_seconds histogram",
		`ball_bfs_seconds_bucket{le="1e-06"} 1`,
		`ball_bfs_seconds_bucket{le="2e-06"} 2`,
		`ball_bfs_seconds_bucket{le="4e-06"} 4`,
		`ball_bfs_seconds_bucket{le="+Inf"} 4`,
		"ball_bfs_seconds_sum 7.5e-06",
		"ball_bfs_seconds_count 4",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPrometheusName(t *testing.T) {
	for in, want := range map[string]string{
		"ball.msbfs_batches": "ball_msbfs_batches",
		"mem.pipeline//rss":  "mem_pipeline_rss",
		"9lives":             "_9lives",
		"already_fine:x":     "already_fine:x",
	} {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

// progressFixture drives a four-stage DAG to a mid-run state on a fake
// clock: one stage done, one cached, one running with declared work units,
// one still pending. Overall fraction is exactly 0.5, so the golden ETA
// equals the elapsed time.
func progressFixture(clk *fakeClock) *Progress {
	p := NewProgressClock(clk.Now)
	a, b := p.Register("a"), p.Register("b")
	c, _ := p.Register("c"), p.Register("d")
	clk.Advance(1 * time.Second)
	a.Run()
	clk.Advance(1 * time.Second)
	a.Done()
	b.Cached()
	c.Run()
	c.AddTotal(8)
	clk.Advance(2 * time.Second)
	return p
}

const goldenProgressJSON = `{
  "elapsed_seconds": 4,
  "fraction": 0.5,
  "eta_seconds": 4,
  "stages": [
    {
      "name": "a",
      "state": "done",
      "fraction": 1,
      "elapsed_seconds": 1
    },
    {
      "name": "b",
      "state": "cached",
      "fraction": 1
    },
    {
      "name": "c",
      "state": "running",
      "total_units": 8,
      "fraction": 0,
      "elapsed_seconds": 2
    },
    {
      "name": "d",
      "state": "pending",
      "fraction": 0
    }
  ]
}
`

func TestGoldenProgressJSON(t *testing.T) {
	p := progressFixture(newFakeClock())
	var buf strings.Builder
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenProgressJSON {
		t.Errorf("progress JSON mismatch:\ngot:\n%s\nwant:\n%s", got, goldenProgressJSON)
	}
}

func TestProgressTransitions(t *testing.T) {
	clk := newFakeClock()
	p := NewProgressClock(clk.Now)
	st := p.Register("x")
	if again := p.Register("x"); again != st {
		t.Error("Register is not idempotent")
	}

	// Done without Run: the stage still terminates, with zero elapsed.
	st.Done()
	st.Run()    // too late — terminal states are sticky
	st.Cached() // likewise
	snap := p.Snapshot()
	if snap.Stages[0].State != StageDone || snap.Stages[0].Fraction != 1 {
		t.Errorf("stage after Done = %+v", snap.Stages[0])
	}

	// Work counters clamp: more done than total never exceeds fraction 1.
	over := p.Register("over")
	over.Run()
	over.AddTotal(2)
	over.Add(5)
	if f := p.Snapshot().Stages[1].Fraction; f != 1 {
		t.Errorf("overfull running stage fraction = %v, want 1", f)
	}
}

// TestDebugMuxEndpoints pins the handlers' status codes, content types and
// bodies over the same fixtures as the golden tests — this is the
// /debug/progress golden through the actual HTTP surface.
func TestDebugMuxEndpoints(t *testing.T) {
	clk := newFakeClock()
	prog := progressFixture(clk)
	reg := NewRegistry()
	reg.Counter("pipeline.builds").Add(3)
	tr := NewTracerClock("root", clk.Now)
	mux := NewDebugMux(reg, prog, tr)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/progress")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/progress status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("/debug/progress content-type = %q", ct)
	}
	if rec.Body.String() != goldenProgressJSON {
		t.Errorf("/debug/progress body mismatch:\n%s", rec.Body.String())
	}

	rec = get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if want := "pipeline_builds_total 3\n"; !strings.Contains(rec.Body.String(), want) {
		t.Errorf("/metrics body lacks %q:\n%s", want, rec.Body.String())
	}

	rec = get("/debug/trace")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "root") {
		t.Errorf("/debug/trace = %d %q", rec.Code, rec.Body.String())
	}
	rec = get("/debug/trace?format=chrome")
	var chrome map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Errorf("/debug/trace?format=chrome is not JSON: %v", err)
	}

	if rec = get("/"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Errorf("index = %d %q", rec.Code, rec.Body.String())
	}
	if rec = get("/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", rec.Code)
	}
	if rec = get("/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", rec.Code)
	}
}

// TestDebugServerRoundTrip starts the real listener on a kernel-chosen port
// and fetches the endpoints over TCP.
func TestDebugServerRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x").Add(1)
	ds, err := StartDebugServer("127.0.0.1:0", reg, NewProgress(), NewTracer("root"))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	for _, path := range []string{"/metrics", "/debug/progress", "/debug/trace"} {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d %q", path, resp.StatusCode, body)
		}
	}
	if err := ds.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSamplerRingAndFile(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("work").Add(7)
	reg.Gauge("level").Set(3)

	// Capacity 4 with 6 manual records: the ring keeps the latest 4.
	s := NewSampler(reg, time.Hour, 4)
	s.start = time.Now()
	for i := 0; i < 6; i++ {
		reg.Counter("work").Add(1)
		s.record()
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(samples))
	}
	for i, smp := range samples {
		if smp.HeapBytes <= 0 || smp.SysBytes <= 0 {
			t.Errorf("sample %d lacks memory stats: %+v", i, smp)
		}
		if i > 0 && smp.ElapsedMs < samples[i-1].ElapsedMs {
			t.Errorf("samples out of order at %d: %d < %d", i, smp.ElapsedMs, samples[i-1].ElapsedMs)
		}
		if want := int64(8 + 2 + i); smp.Counters["work"] != want {
			t.Errorf("sample %d work counter = %d, want %d", i, smp.Counters["work"], want)
		}
	}

	path := filepath.Join(t.TempDir(), "ts.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ts TimeSeries
	if err := json.Unmarshal(data, &ts); err != nil {
		t.Fatal(err)
	}
	if ts.IntervalMs != time.Hour.Milliseconds() || len(ts.Samples) != 4 {
		t.Errorf("file round trip: interval %d, %d samples", ts.IntervalMs, len(ts.Samples))
	}
}

// TestSamplerRaceShort runs the sampler at a tight interval while writers
// hammer the registry — the tier-2 race-detector coverage for the live
// plane's only always-on background goroutine.
func TestSamplerRaceShort(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, time.Millisecond, 64)
	s.Start()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				reg.Counter(fmt.Sprintf("c%d", w)).Add(1)
				reg.Gauge("g").Set(int64(i))
				reg.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s.Stop()
	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("sampler recorded %d samples, want >= 2 (start + final)", len(samples))
	}
	final := samples[len(samples)-1]
	var sum int64
	for w := 0; w < 4; w++ {
		sum += final.Counters[fmt.Sprintf("c%d", w)]
	}
	if sum != 8000 {
		t.Errorf("final sample counters sum = %d, want 8000", sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q")
	// 100 observations at 1ms and 100 at 16ms: p50 falls in the 1ms
	// bucket's range and p95/p99 in the 16ms bucket's.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
		h.Observe(16 * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 200 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.P50Ns < int64(time.Millisecond) || st.P50Ns > int64(2*time.Millisecond) {
		t.Errorf("p50 = %s, want within [1ms, 2ms]", time.Duration(st.P50Ns))
	}
	for _, q := range []int64{st.P95Ns, st.P99Ns} {
		if q < int64(8*time.Millisecond) || q > int64(16*time.Millisecond) {
			t.Errorf("tail quantile = %s, want within [8ms, 16ms]", time.Duration(q))
		}
	}
	if st.P50Ns > st.P95Ns || st.P95Ns > st.P99Ns {
		t.Errorf("quantiles not monotone: %d %d %d", st.P50Ns, st.P95Ns, st.P99Ns)
	}
	// Quantiles clamp to the observed extremes, not bucket edges.
	if st.P99Ns > st.MaxNs {
		t.Errorf("p99 %d exceeds max %d", st.P99Ns, st.MaxNs)
	}
}

func TestProgressForget(t *testing.T) {
	p := NewProgress()
	a := p.Register("a")
	b := p.Register("b")
	a.Run()
	a.Done()
	b.Run()
	p.Forget("a")
	snap := p.Snapshot()
	if len(snap.Stages) != 1 || snap.Stages[0].Name != "b" {
		t.Fatalf("stages after Forget = %+v", snap.Stages)
	}
	// A held handle keeps working after Forget; re-registering the name
	// creates a fresh stage rather than resurrecting the old one.
	a.Add(1)
	if got := p.Register("a"); got == a {
		t.Fatal("Register returned the forgotten stage")
	}
	p.Forget("missing") // no-op
	var nilP *Progress
	nilP.Forget("x") // nil-safe
}
