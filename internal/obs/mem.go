package obs

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// CaptureMem records the process's current memory posture into gauges under
// the given prefix: <prefix>.heap_bytes (Go heap in use), <prefix>.sys_bytes
// (total bytes obtained from the OS by the runtime), <prefix>.rss_bytes
// (resident set size, when the platform exposes it), plus the collector's
// trajectory — <prefix>.num_gc (completed GC cycles) and
// <prefix>.gc_pause_total_ns (cumulative stop-the-world pause) — so a
// per-stage memory series also explains GC-driven RSS dips: a stage whose
// rss_bytes drops while num_gc jumps shed heap, it didn't do less work.
// The pipeline calls this after each stage so a -metrics run yields a
// per-stage memory trajectory alongside the operation counters. Safe on a
// nil registry.
func (r *Registry) CaptureMem(prefix string) {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(prefix + ".heap_bytes").Set(int64(ms.HeapInuse))
	r.Gauge(prefix + ".sys_bytes").Set(int64(ms.Sys))
	r.Gauge(prefix + ".num_gc").Set(int64(ms.NumGC))
	r.Gauge(prefix + ".gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	if rss, ok := ReadRSS(); ok {
		r.Gauge(prefix + ".rss_bytes").Set(rss)
	}
}

// ReadRSS returns the process resident set size in bytes, read from
// /proc/self/statm. The second result is false on platforms without procfs
// or on any parse failure — callers degrade to heap-only gauges.
func ReadRSS() (int64, bool) {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * int64(os.Getpagesize()), true
}
