package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use standalone; a nil *Counter drops every Add, so instrumented
// code calls Add unconditionally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set level (worker widths, inventory sizes).
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current level (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the gauge's level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two duration buckets: bucket i
// counts observations in [1µs<<(i-1), 1µs<<i), bucket 0 everything under
// 1µs, the last bucket everything at or beyond ~1.1h.
const histBuckets = 33

// Histogram records durations in power-of-two microsecond buckets plus
// count/sum/min/max. A nil *Histogram drops every Observe.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

// Observe records one duration (no-op on nil).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// HistogramStats is a histogram snapshot; durations are nanoseconds so the
// JSON form is unit-unambiguous.
type HistogramStats struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
}

// Stats snapshots the histogram.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramStats{
		Count: h.count,
		SumNs: h.sum.Nanoseconds(),
		MinNs: h.min.Nanoseconds(),
		MaxNs: h.max.Nanoseconds(),
	}
}

// Registry hands out named metrics, creating each on first request and
// returning the same instance afterwards, so concurrent instrumentation
// sites share one atomic. A nil *Registry hands out nil metrics — the
// no-op default that keeps disabled instrumentation free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram (nil on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON (map keys marshal in sorted order, so the encoding is
// deterministic for a given set of values).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies out the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// WriteTable renders the snapshot as aligned "kind name value" lines in
// name order within each kind — the -metrics stdout rendering.
func (s Snapshot) WriteTable(w io.Writer) error {
	write := func(kind string, names []string, value func(string) string) error {
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "%-9s %-34s %s\n", kind, name, value(name)); err != nil {
				return err
			}
		}
		return nil
	}
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	if err := write("counter", names, func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	if err := write("gauge", names, func(n string) string {
		return fmt.Sprintf("%d", s.Gauges[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	return write("histogram", names, func(n string) string {
		h := s.Histograms[n]
		return fmt.Sprintf("count=%d sum=%s min=%s max=%s",
			h.Count, time.Duration(h.SumNs), time.Duration(h.MinNs), time.Duration(h.MaxNs))
	})
}
