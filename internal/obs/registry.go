package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use standalone; a nil *Counter drops every Add, so instrumented
// code calls Add unconditionally.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set level (worker widths, inventory sizes).
type Gauge struct{ v atomic.Int64 }

// Set records the gauge's current level (no-op on nil).
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the gauge's level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two duration buckets: bucket i
// counts observations in [1µs<<(i-1), 1µs<<i), bucket 0 everything under
// 1µs, the last bucket everything at or beyond ~1.1h.
const histBuckets = 33

// Histogram records durations in power-of-two microsecond buckets plus
// count/sum/min/max. A nil *Histogram drops every Observe.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

// Observe records one duration (no-op on nil).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// HistogramStats is a histogram snapshot; durations are nanoseconds so the
// JSON form is unit-unambiguous. Buckets holds the power-of-two bucket
// counts, trimmed after the last non-empty bucket (Buckets[i] counts
// observations with upper bound HistBucketUpperNs(i)); P50Ns/P95Ns/P99Ns
// are approximate quantiles interpolated within those buckets, clamped to
// the observed min/max.
type HistogramStats struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	P50Ns   int64   `json:"p50_ns,omitempty"`
	P95Ns   int64   `json:"p95_ns,omitempty"`
	P99Ns   int64   `json:"p99_ns,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// HistBucketUpperNs returns the exclusive upper bound of bucket i in
// nanoseconds: bucket 0 covers [0, 1µs), bucket i covers
// [1µs<<(i-1), 1µs<<i). The final bucket (histBuckets-1) is unbounded;
// its nominal bound still follows the doubling rule.
func HistBucketUpperNs(i int) int64 {
	return int64(time.Microsecond) << uint(i)
}

// Stats snapshots the histogram.
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistogramStats{
		Count: h.count,
		SumNs: h.sum.Nanoseconds(),
		MinNs: h.min.Nanoseconds(),
		MaxNs: h.max.Nanoseconds(),
	}
	last := -1
	for i, c := range h.buckets {
		if c > 0 {
			last = i
		}
	}
	if last >= 0 {
		st.Buckets = make([]int64, last+1)
		copy(st.Buckets, h.buckets[:last+1])
		st.P50Ns = h.quantileLocked(0.50)
		st.P95Ns = h.quantileLocked(0.95)
		st.P99Ns = h.quantileLocked(0.99)
	}
	return st
}

// quantileLocked approximates the q-quantile from the bucket counts by
// linear interpolation inside the bucket holding the target rank, clamped
// to the observed [min, max]. Called with h.mu held and h.count > 0.
func (h *Histogram) quantileLocked(q float64) int64 {
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = HistBucketUpperNs(i - 1)
		}
		hi := HistBucketUpperNs(i)
		if hi > h.max.Nanoseconds() {
			hi = h.max.Nanoseconds()
		}
		v := float64(lo)
		if c > 0 && hi > lo {
			v += (rank - prev) / float64(c) * float64(hi-lo)
		}
		ns := int64(v)
		if minNs := h.min.Nanoseconds(); ns < minNs {
			ns = minNs
		}
		if maxNs := h.max.Nanoseconds(); ns > maxNs {
			ns = maxNs
		}
		return ns
	}
	return h.max.Nanoseconds()
}

// Registry hands out named metrics, creating each on first request and
// returning the same instance afterwards, so concurrent instrumentation
// sites share one atomic. A nil *Registry hands out nil metrics — the
// no-op default that keeps disabled instrumentation free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram (nil on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, shaped for
// JSON (map keys marshal in sorted order, so the encoding is
// deterministic for a given set of values).
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot copies out the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Stats()
		}
	}
	return s
}

// WriteTable renders the snapshot as aligned "kind name value" lines in
// name order within each kind — the -metrics stdout rendering.
func (s Snapshot) WriteTable(w io.Writer) error {
	write := func(kind string, names []string, value func(string) string) error {
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "%-9s %-34s %s\n", kind, name, value(name)); err != nil {
				return err
			}
		}
		return nil
	}
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	if err := write("counter", names, func(n string) string {
		return fmt.Sprintf("%d", s.Counters[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	if err := write("gauge", names, func(n string) string {
		return fmt.Sprintf("%d", s.Gauges[n])
	}); err != nil {
		return err
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	return write("histogram", names, func(n string) string {
		h := s.Histograms[n]
		line := fmt.Sprintf("count=%d sum=%s min=%s max=%s",
			h.Count, time.Duration(h.SumNs), time.Duration(h.MinNs), time.Duration(h.MaxNs))
		if h.Count > 0 {
			line += fmt.Sprintf(" p50=%s p95=%s p99=%s",
				time.Duration(h.P50Ns), time.Duration(h.P95Ns), time.Duration(h.P99Ns))
		}
		return line
	})
}
