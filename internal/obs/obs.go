// Package obs is the reproduction pipeline's stdlib-only observability
// layer: hierarchical spans (a lightweight trace of what work ran, where,
// under which parent), a registry of named counters/gauges/duration
// histograms, and a per-run manifest that makes an output directory
// self-describing.
//
// Everything is nil-safe by design: a nil *Tracer, *Span, *Registry,
// *Counter, *Gauge or *Histogram accepts every call as a no-op, so
// instrumented code never branches on "observability enabled" and the hot
// path of a disabled run pays at most a nil check. An enabled counter costs
// one atomic add. Spans record monotonic durations (time.Since on the
// monotonic clock) and are exported either as a Chrome trace-event JSON
// (chrome://tracing, Perfetto) or as an indented human-readable tree.
//
// Beyond the in-memory exit-time exports, the package is a live
// observability plane: Snapshot.WritePrometheus renders the registry in
// the Prometheus text exposition (histogram buckets included), Sampler
// snapshots the registry plus heap/RSS/GC gauges into a bounded
// time-series ring (persisted as run_timeseries.json), Progress tracks
// the run's stage DAG (pending/running/cached/done, work-counter
// completion fractions, ETA), and StartDebugServer mounts /metrics,
// /debug/progress, /debug/trace and /debug/pprof/* on a stdlib net/http
// server while the run executes. Everything stays stdlib-only and
// dependency-free so every internal package can link against it, and
// none of it influences results — the endpoints and the sampler only read
// snapshots.
package obs

import "context"

type ctxKey struct{}

// With returns a context carrying the span; Start on the returned context
// creates children of it.
func With(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start begins a child span of the span carried by ctx and returns a
// context carrying the child. With no span in ctx (tracing disabled) it
// returns ctx and a nil span, on which every method is a no-op.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Start(name)
	return With(ctx, child), child
}
