// Package cache is a content-addressed on-disk result store for the
// experiment pipeline. Values are addressed by a deterministic hash of the
// configuration that produced them (paper-set options, suite options,
// network or artifact name) plus a code schema version, so a re-run of
// `reproduce` with an unchanged configuration skips network generation and
// measurement entirely, while any change to scale, seed or result format
// invalidates exactly the entries it must.
//
// Values are encoded with encoding/gob, which round-trips float64 bits
// exactly: a result decoded from the cache is byte-identical, when
// rendered, to the freshly computed one. Writes are atomic
// (temp file + rename), so concurrent writers — the pipeline stores suite
// results from many goroutines — never expose a torn entry.
package cache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"topocmp/internal/obs"
)

// SchemaVersion is folded into every key. Bump it whenever the meaning or
// encoding of stored results changes (new suite fields, altered metric
// algorithms), so stale entries miss instead of decoding into wrong shapes.
// Version 2: stats.Series gained per-point StdErr bounds,
// hierarchy.Result gained Nodes, and SuiteOptions gained SampleBudget.
const SchemaVersion = 2

// Key derives the content address for a result produced under the given
// canonical description parts (e.g. the paper-set key, the suite key and a
// network name). The schema version is always included.
func Key(parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d", SchemaVersion)
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		fmt.Fprintf(h, "|%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts store traffic. DecodeErrors counts entries that existed on
// disk but failed to decode — corruption, truncation or a schema drift the
// version constant missed — and were evicted so the next run rebuilds them.
type Stats struct {
	Hits, Misses, Puts, DecodeErrors int64
}

// Store is a directory of gob-encoded entries named by their key. A nil
// *Store is valid and behaves as an always-miss, drop-writes cache, so
// callers don't need to branch on "caching enabled".
//
// Traffic counters are obs.Counters: standalone by default, or shared with
// a run's metrics registry via Instrument, where they appear as
// cache.hits / cache.misses / cache.puts / cache.decode_errors alongside
// cache.get and cache.put duration histograms.
type Store struct {
	dir          string
	hits         *obs.Counter
	misses       *obs.Counter
	puts         *obs.Counter
	decodeErrors *obs.Counter
	getTime      *obs.Histogram // nil unless instrumented
	putTime      *obs.Histogram // nil unless instrumented
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{
		dir:          dir,
		hits:         &obs.Counter{},
		misses:       &obs.Counter{},
		puts:         &obs.Counter{},
		decodeErrors: &obs.Counter{},
	}, nil
}

// Instrument rebinds the store's counters to the registry (as cache.hits,
// cache.misses, cache.puts, cache.decode_errors) and enables the cache.get
// and cache.put duration histograms. Call it right after Open, before any
// traffic — counts accumulated before the rebind stay on the old counters.
func (s *Store) Instrument(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.hits = reg.Counter("cache.hits")
	s.misses = reg.Counter("cache.misses")
	s.puts = reg.Counter("cache.puts")
	s.decodeErrors = reg.Counter("cache.decode_errors")
	s.getTime = reg.Histogram("cache.get")
	s.putTime = reg.Histogram("cache.put")
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) path(key string) string {
	// Two-level fan-out keeps directories small at full-sweep scales.
	return filepath.Join(s.dir, key[:2], key[2:]+".gob")
}

// Has reports whether an entry exists on disk for key, without reading or
// decoding it (a corrupt entry still reports true until a Get evicts it).
// Existence probes are not traffic, so no hit/miss counter moves — the
// serving layer uses Has to route saturated requests: a request whose
// result is already on disk is served instead of shed. Always false on a
// nil store.
func (s *Store) Has(key string) bool {
	if s == nil {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Get decodes the entry for key into v (a pointer) and reports whether it
// was found. An entry that exists but fails to decode — corrupt, truncated,
// or written under a schema the version constant failed to capture — is
// counted as a decode error (not a miss), evicted from disk, and reported
// as not found, so the caller rebuilds it once instead of tripping over the
// bad bytes on every future run.
func (s *Store) Get(key string, v any) bool {
	if s == nil {
		return false
	}
	if s.getTime != nil {
		t0 := time.Now()
		defer func() { s.getTime.Observe(time.Since(t0)) }()
	}
	path := s.path(key)
	f, err := os.Open(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		s.decodeErrors.Add(1)
		os.Remove(path) //nolint:errcheck // best-effort eviction
		return false
	}
	s.hits.Add(1)
	return true
}

// Put stores v under key atomically. A nil store drops the write.
func (s *Store) Put(key string, v any) error {
	if s == nil {
		return nil
	}
	if s.putTime != nil {
		t0 := time.Now()
		defer func() { s.putTime.Observe(time.Since(t0)) }()
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		return fmt.Errorf("cache: encode %s: %w", strings.TrimSuffix(key, "\n"), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Stats returns the store's traffic counters since Open.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:         s.hits.Value(),
		Misses:       s.misses.Value(),
		Puts:         s.puts.Value(),
		DecodeErrors: s.decodeErrors.Value(),
	}
}
