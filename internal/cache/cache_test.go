package cache

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	Name   string
	Values []float64
	N      int
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "AS", Values: []float64{1.5, math.Pi, 1e-300, math.MaxFloat64}, N: 7}
	key := Key("set", "suite", "AS")
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Get(key, &out) {
		t.Fatal("expected hit after Put")
	}
	if out.Name != in.Name || out.N != in.N || len(out.Values) != len(in.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Values {
		// Bit-exact float round trip is what makes cached output
		// byte-identical to fresh output.
		if math.Float64bits(out.Values[i]) != math.Float64bits(in.Values[i]) {
			t.Fatalf("value %d: %x vs %x", i,
				math.Float64bits(out.Values[i]), math.Float64bits(in.Values[i]))
		}
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissAndCorruptEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	key := Key("nothing")
	if s.Get(key, &out) {
		t.Fatal("unexpected hit")
	}
	// A truncated/corrupt entry must read as a miss, not an error.
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Get(key, &out) {
		t.Fatal("corrupt entry should miss")
	}
	if st := s.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

func TestKeyDiscriminates(t *testing.T) {
	base := Key("a", "b")
	for name, k := range map[string]string{
		"different part":  Key("a", "c"),
		"split boundary":  Key("ab"),
		"reordered parts": Key("b", "a"),
		"extra part":      Key("a", "b", ""),
	} {
		if k == base {
			t.Errorf("%s: key collision", name)
		}
	}
	if Key("a", "b") != base {
		t.Error("key not deterministic")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	var out payload
	if s.Get(Key("x"), &out) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(Key("x"), payload{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestConcurrentAccess is the tier-2 race target for the store: many
// goroutines writing and reading overlapping keys must never observe a torn
// entry (atomic rename) or race on the counters.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := Key("shared", fmt.Sprint(i%5))
				in := payload{Name: "n", Values: []float64{float64(i)}, N: i % 5}
				if err := s.Put(key, in); err != nil {
					t.Error(err)
					return
				}
				var out payload
				if s.Get(key, &out) && len(out.Values) != 1 {
					t.Errorf("torn read: %+v", out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
