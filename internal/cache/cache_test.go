package cache

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"topocmp/internal/obs"
)

type payload struct {
	Name   string
	Values []float64
	N      int
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "AS", Values: []float64{1.5, math.Pi, 1e-300, math.MaxFloat64}, N: 7}
	key := Key("set", "suite", "AS")
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if !s.Get(key, &out) {
		t.Fatal("expected hit after Put")
	}
	if out.Name != in.Name || out.N != in.N || len(out.Values) != len(in.Values) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Values {
		// Bit-exact float round trip is what makes cached output
		// byte-identical to fresh output.
		if math.Float64bits(out.Values[i]) != math.Float64bits(in.Values[i]) {
			t.Fatalf("value %d: %x vs %x", i,
				math.Float64bits(out.Values[i]), math.Float64bits(in.Values[i]))
		}
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissAndCorruptEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	key := Key("nothing")
	if s.Get(key, &out) {
		t.Fatal("unexpected hit")
	}
	// A truncated/corrupt entry reads as not-found but is distinguished
	// from a plain miss: counted as a decode error and evicted, so the
	// rebuilt entry can land cleanly.
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Get(key, &out) {
		t.Fatal("corrupt entry should read as not found")
	}
	if st := s.Stats(); st.Misses != 1 || st.DecodeErrors != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 decode error", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not evicted: %v", err)
	}
	// The rebuild path: a fresh Put over the evicted slot hits cleanly.
	if err := s.Put(key, payload{Name: "rebuilt", N: 3}); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, &out) || out.Name != "rebuilt" {
		t.Fatalf("rebuild after eviction failed: %+v", out)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.DecodeErrors != 1 {
		t.Fatalf("stats after rebuild = %+v", st)
	}
}

// TestInstrumentSharesRegistry: an instrumented store reports its traffic
// through the run's metrics registry, and Stats() reads the same counters,
// so the manifest and the pipeline summary always reconcile.
func TestInstrumentSharesRegistry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Instrument(reg)
	key := Key("instrumented")
	var out payload
	s.Get(key, &out) // miss
	if err := s.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Get(key, &out) // hit
	snap := reg.Snapshot()
	if snap.Counters["cache.misses"] != 1 || snap.Counters["cache.hits"] != 1 ||
		snap.Counters["cache.puts"] != 1 {
		t.Fatalf("registry counters = %+v", snap.Counters)
	}
	st := s.Stats()
	if st.Hits != snap.Counters["cache.hits"] || st.Misses != snap.Counters["cache.misses"] ||
		st.Puts != snap.Counters["cache.puts"] {
		t.Fatalf("Stats %+v does not reconcile with registry %+v", st, snap.Counters)
	}
	if snap.Histograms["cache.get"].Count != 2 || snap.Histograms["cache.put"].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
}

func TestKeyDiscriminates(t *testing.T) {
	base := Key("a", "b")
	for name, k := range map[string]string{
		"different part":  Key("a", "c"),
		"split boundary":  Key("ab"),
		"reordered parts": Key("b", "a"),
		"extra part":      Key("a", "b", ""),
	} {
		if k == base {
			t.Errorf("%s: key collision", name)
		}
	}
	if Key("a", "b") != base {
		t.Error("key not deterministic")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	var out payload
	if s.Get(Key("x"), &out) {
		t.Fatal("nil store hit")
	}
	if err := s.Put(Key("x"), payload{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestConcurrentAccess is the tier-2 race target for the store: many
// goroutines writing and reading overlapping keys must never observe a torn
// entry (atomic rename) or race on the counters.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := Key("shared", fmt.Sprint(i%5))
				in := payload{Name: "n", Values: []float64{float64(i)}, N: i % 5}
				if err := s.Put(key, in); err != nil {
					t.Error(err)
					return
				}
				var out payload
				if s.Get(key, &out) && len(out.Values) != 1 {
					t.Errorf("torn read: %+v", out)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestHasProbesWithoutTraffic(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("set", "suite", "probe")
	if s.Has(key) {
		t.Fatal("Has on empty store")
	}
	if err := s.Put(key, payload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if !s.Has(key) {
		t.Fatal("Has after Put")
	}
	// Existence probes are not traffic: only the Put moved a counter.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	var nilStore *Store
	if nilStore.Has(key) {
		t.Fatal("Has on nil store")
	}
}
