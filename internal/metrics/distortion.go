package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// Distortion computes D(n): for the subgraph inside an n-node ball, the
// average distance on a spanning tree T between the endpoints of each graph
// edge, minimized over candidate trees (§3.2.1). Following the paper's
// heuristic (footnote 14), the ball's "center" is the node the most
// shortest-path pairs traverse; the BFS tree rooted there (and at a few
// runner-up candidates — "our own heuristics") provides the spanning trees.
func Distortion(g *graph.Graph, cfg ball.Config, roots int) stats.Series {
	if roots <= 0 {
		roots = 3
	}
	return DistortionWith(ball.NewEngine(g, 1), cfg, roots)
}

// DistortionWith is Distortion over an engine: balls grow on the worker
// pool and their subgraphs come from the shared ball cache.
func DistortionWith(e *ball.Engine, cfg ball.Config, roots int) stats.Series {
	if roots <= 0 {
		roots = 3
	}
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	raw := e.BallPoints(cfg, 0, func(sub *graph.Graph, _ *rand.Rand) (float64, bool) {
		d := SubgraphDistortion(sub, roots)
		return d, d > 0
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "distortion"
	return s
}

// SubgraphDistortion returns the distortion estimate for one connected
// graph: the minimum, over BFS trees rooted at the top `roots` betweenness
// candidates, of the average tree distance between edge endpoints. Returns
// 0 for graphs with no edges.
func SubgraphDistortion(sub *graph.Graph, roots int) float64 {
	n := sub.NumNodes()
	if n < 2 || sub.NumEdges() == 0 {
		return 0
	}
	centers := topBetweenness(sub, roots)
	// One scratch set serves every candidate root: each BFS rewrites the
	// tree arrays in full, and the edge list is the same for all roots.
	parent := make([]int32, n)
	depth := make([]int32, n)
	queue := make([]int32, 0, n)
	edges := sub.Edges()
	best := -1.0
	for _, c := range centers {
		d := bfsTreeDistortion(sub, c, parent, depth, queue, edges)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// topBetweenness returns up to k nodes with the highest approximate
// betweenness, computed by Brandes' accumulation from a sample of sources.
func topBetweenness(g *graph.Graph, k int) []int32 {
	n := g.NumNodes()
	sources := n
	const maxSources = 24
	if sources > maxSources {
		sources = maxSources
	}
	bc := make([]float64, n)
	r := rand.New(rand.NewSource(int64(n)*7919 + 17))
	perm := r.Perm(n)
	delta := make([]float64, n)
	for si := 0; si < sources; si++ {
		s := int32(perm[si])
		dist, sigma, order := g.BFSCounts(s)
		for i := range delta {
			delta[i] = 0
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range g.Neighbors(w) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	// Partial top-k selection by (betweenness desc, id asc): one insertion
	// pass over bc into a k-slot slice, instead of materializing and
	// selection-sorting an n-entry candidate slice per ball.
	if k > n {
		k = n
	}
	top := make([]int32, 0, k)
	for v := int32(0); v < int32(n); v++ {
		pos := len(top)
		for pos > 0 && bc[top[pos-1]] < bc[v] {
			pos--
		}
		if pos == k {
			continue
		}
		if len(top) < k {
			top = append(top, 0)
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		top[pos] = v
	}
	return top
}

// bfsTreeDistortion builds the BFS tree rooted at root and returns the
// average tree distance between the endpoints of every graph edge. Tree
// distances use parent walks (depth-bounded, cheap on BFS trees). The
// parent/depth/queue scratch and the edge list are caller-owned so they can
// be reused across roots.
func bfsTreeDistortion(g *graph.Graph, root int32,
	parent, depth, queue []int32, edges []graph.Edge) float64 {

	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	depth[root] = 0
	queue = append(queue[:0], root)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	total, count := 0.0, 0
	for _, e := range edges {
		total += float64(treeDist(parent, depth, e.U, e.V))
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// treeDist walks u and v up to their lowest common ancestor.
func treeDist(parent, depth []int32, u, v int32) int32 {
	d := int32(0)
	for depth[u] > depth[v] {
		u = parent[u]
		d++
	}
	for depth[v] > depth[u] {
		v = parent[v]
		d++
	}
	for u != v {
		u = parent[u]
		v = parent[v]
		d += 2
	}
	return d
}
