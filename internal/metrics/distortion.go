package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// Distortion computes D(n): for the subgraph inside an n-node ball, the
// average distance on a spanning tree T between the endpoints of each graph
// edge, minimized over candidate trees (§3.2.1). Following the paper's
// heuristic (footnote 14), the ball's "center" is the node the most
// shortest-path pairs traverse; the BFS tree rooted there (and at a few
// runner-up candidates — "our own heuristics") provides the spanning trees.
func Distortion(g *graph.Graph, cfg ball.Config, roots int) stats.Series {
	if roots <= 0 {
		roots = 3
	}
	return DistortionWith(ball.NewEngine(g, 1), cfg, roots)
}

// DistortionWith is Distortion over an engine: balls grow on the worker
// pool, their subgraphs come from the shared ball cache, and the center
// election runs on the engine's leased kernel bundles.
func DistortionWith(e *ball.Engine, cfg ball.Config, roots int) stats.Series {
	if roots <= 0 {
		roots = 3
	}
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	raw := e.BallPointsKernels(cfg, 0, func(sub *graph.Graph, _ int, _ *rand.Rand, k *ball.Kernels) (float64, bool) {
		d := SubgraphDistortionKernels(sub, roots, BetweennessAuto, k)
		return d, d > 0
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "distortion"
	return s
}

// BetweennessMode selects the Brandes accumulation path for the center
// election in SubgraphDistortion.
type BetweennessMode int

const (
	// BetweennessAuto probes the subgraph's diameter (cheap double BFS
	// sweep) and routes: past the cutoff the frontiers are thin and the
	// scalar path wins; otherwise the bit-parallel kernel batches every
	// sampled source through one shared level sweep.
	BetweennessAuto BetweennessMode = iota
	// BetweennessScalar forces the per-source scalar accumulation.
	BetweennessScalar
	// BetweennessBitParallel forces the batched kernel.
	BetweennessBitParallel
)

// brandesDiameterCutoff is BetweennessAuto's routing threshold, matching
// the distance sweeps' cutoff in internal/ball: high-diameter subgraphs
// (lattice balls) keep the scalar path.
const brandesDiameterCutoff = 32

// distScratch is the distortion workspace family — the spanning-tree arrays
// and the betweenness accumulators — leased per subgraph through the
// unified ball.Pool layer. Traversal scratch (BFS, Brandes strips) comes
// from the ball.Kernels bundle instead, so engine-driven calls share the
// per-worker kernels every other ball metric uses.
type distScratch struct {
	parent, depth, queue []int32
	sources              []int32
	bc, delta            []float64
}

var distPool = ball.NewPool(func() *distScratch { return &distScratch{} })

// standaloneKernels serves the entry points that run without an engine
// lease (direct SubgraphDistortion calls): the same bundle shape, pooled
// through the same layer, minus the engine's counters.
var standaloneKernels = ball.NewPool(func() *ball.Kernels {
	return &ball.Kernels{BFS: graph.NewBFSScratch(), Brandes: graph.NewBrandesScratch()}
})

// SubgraphDistortion returns the distortion estimate for one connected
// graph: the minimum, over BFS trees rooted at the top `roots` betweenness
// candidates, of the average tree distance between edge endpoints. Returns
// 0 for graphs with no edges.
func SubgraphDistortion(sub *graph.Graph, roots int) float64 {
	k := standaloneKernels.Get()
	defer standaloneKernels.Put(k)
	return SubgraphDistortionKernels(sub, roots, BetweennessAuto, k)
}

// SubgraphDistortionKernels is SubgraphDistortion on a leased kernel
// bundle: the betweenness election runs on k's BFS scratch or bit-parallel
// Brandes strips per mode, and the tree arrays come from the pooled
// distortion workspace, so the per-ball hot path is allocation-free.
func SubgraphDistortionKernels(sub *graph.Graph, roots int, mode BetweennessMode, k *ball.Kernels) float64 {
	n := sub.NumNodes()
	if n < 2 || sub.NumEdges() == 0 {
		return 0
	}
	ws := distPool.Get()
	defer distPool.Put(ws)
	centers := topBetweenness(sub, roots, mode, k, ws)
	// One scratch set serves every candidate root: each BFS rewrites the
	// tree arrays in full, and the edge sweep order is fixed by the CSR.
	ws.parent = growInts(ws.parent, n)
	ws.depth = growInts(ws.depth, n)
	ws.queue = growInts(ws.queue, n)[:0]
	best := -1.0
	for _, c := range centers {
		d := bfsTreeDistortion(sub, c, ws.parent, ws.depth, ws.queue)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// topBetweenness returns up to k nodes with the highest approximate
// betweenness, computed by Brandes' accumulation from a sample of sources —
// scalar per source or bit-parallel per batch, per mode.
func topBetweenness(g *graph.Graph, k int, mode BetweennessMode, kn *ball.Kernels, ws *distScratch) []int32 {
	n := g.NumNodes()
	sources := n
	const maxSources = 24
	if sources > maxSources {
		sources = maxSources
	}
	ws.bc = growFloats(ws.bc, n)
	bc := ws.bc
	for i := range bc {
		bc[i] = 0
	}
	r := rand.New(rand.NewSource(int64(n)*7919 + 17))
	perm := r.Perm(n)
	if mode == BetweennessAuto {
		if graph.ApproxDiameter(g, kn.BFS) > brandesDiameterCutoff {
			mode = BetweennessScalar
		} else {
			mode = BetweennessBitParallel
		}
	}
	if mode == BetweennessBitParallel {
		ws.sources = ws.sources[:0]
		for si := 0; si < sources; si++ {
			ws.sources = append(ws.sources, int32(perm[si]))
		}
		batches := int64(0)
		for lo := 0; lo < len(ws.sources); lo += graph.BrandesWidth {
			hi := lo + graph.BrandesWidth
			if hi > len(ws.sources) {
				hi = len(ws.sources)
			}
			kn.Brandes.Accumulate(g, ws.sources[lo:hi], bc)
			batches++
		}
		kn.CountBrandes(batches, 0)
	} else {
		kn.CountBrandes(0, 1)
		// The scalar fallback runs the exact accumulation (and float
		// ordering) of the original per-source loop, on pooled epoch-
		// stamped scratch instead of three fresh arrays per source.
		ws.delta = growFloats(ws.delta, n)
		delta := ws.delta
		s := kn.BFS
		for si := 0; si < sources; si++ {
			src := int32(perm[si])
			order := s.Counts(g, src)
			for i := range delta {
				delta[i] = 0
			}
			for i := len(order) - 1; i >= 0; i-- {
				w := order[i]
				dw := s.Dist(w)
				for _, v := range g.Neighbors(w) {
					if s.Dist(v) == dw-1 {
						delta[v] += s.Sigma(v) / s.Sigma(w) * (1 + delta[w])
					}
				}
				if w != src {
					bc[w] += delta[w]
				}
			}
		}
	}
	// Partial top-k selection by (betweenness desc, id asc): one insertion
	// pass over bc into a k-slot slice, instead of materializing and
	// selection-sorting an n-entry candidate slice per ball.
	if k > n {
		k = n
	}
	top := make([]int32, 0, k)
	for v := int32(0); v < int32(n); v++ {
		pos := len(top)
		for pos > 0 && bc[top[pos-1]] < bc[v] {
			pos--
		}
		if pos == k {
			continue
		}
		if len(top) < k {
			top = append(top, 0)
		}
		copy(top[pos+1:], top[pos:len(top)-1])
		top[pos] = v
	}
	return top
}

// growInts returns b resized to n, reallocating only on growth.
func growInts(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// growFloats returns b resized to n, reallocating only on growth.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// bfsTreeDistortion builds the BFS tree rooted at root and returns the
// average tree distance between the endpoints of every graph edge. Tree
// distances use parent walks (depth-bounded, cheap on BFS trees); edges are
// swept straight off the CSR in (U, V) order, so no edge list is ever
// materialized. The parent/depth/queue scratch is caller-owned so it can be
// reused across roots.
func bfsTreeDistortion(g *graph.Graph, root int32, parent, depth, queue []int32) float64 {
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	depth[root] = 0
	queue = append(queue[:0], root)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	total, count := 0.0, 0
	for u := int32(0); u < int32(g.NumNodes()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				total += float64(treeDist(parent, depth, u, v))
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// treeDist walks u and v up to their lowest common ancestor.
func treeDist(parent, depth []int32, u, v int32) int32 {
	d := int32(0)
	for depth[u] > depth[v] {
		u = parent[u]
		d++
	}
	for depth[v] > depth[u] {
		v = parent[v]
		d++
	}
	for u != v {
		u = parent[u]
		v = parent[v]
		d += 2
	}
	return d
}
