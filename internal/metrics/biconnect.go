package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// BiconnectedComponents counts the biconnected components of g with an
// iterative Hopcroft–Tarjan edge-stack algorithm. Isolated nodes contribute
// no component; a bridge edge is its own component.
func BiconnectedComponents(g *graph.Graph) int {
	n := g.NumNodes()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	childIdx := make([]int, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	count := 0
	timer := int32(0)
	var stack []int32
	for s := int32(0); s < int32(n); s++ {
		if disc[s] != -1 || g.Degree(s) == 0 {
			continue
		}
		stack = stack[:0]
		stack = append(stack, s)
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			nb := g.Neighbors(u)
			if childIdx[u] < len(nb) {
				v := nb[childIdx[u]]
				childIdx[u]++
				if disc[v] == -1 {
					parent[v] = u
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, v)
				} else if v != parent[u] && disc[v] < disc[u] {
					if disc[v] < low[u] {
						low[u] = disc[v]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if p := parent[u]; p != -1 {
					if low[u] < low[p] {
						low[p] = low[u]
					}
					if low[u] >= disc[p] {
						// u's subtree hangs off articulation point p: one
						// biconnected component.
						count++
					}
				}
			}
		}
	}
	return count
}

// BiconnectivityCurve computes the number of biconnected components within
// ball subgraphs as a function of ball size (Figure 8(d-f)).
func BiconnectivityCurve(g *graph.Graph, cfg ball.Config) stats.Series {
	return BiconnectivityCurveWith(ball.NewEngine(g, 1), cfg)
}

// BiconnectivityCurveWith is BiconnectivityCurve over an engine: balls grow
// on the worker pool and their subgraphs come from the shared ball cache.
func BiconnectivityCurveWith(e *ball.Engine, cfg ball.Config) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 2
	}
	raw := e.BallPoints(cfg, 0, func(sub *graph.Graph, _ *rand.Rand) (float64, bool) {
		return float64(BiconnectedComponents(sub)), true
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "biconnectivity"
	return s
}
