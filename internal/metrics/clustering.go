package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// ClusteringCoefficient computes the Watts–Strogatz clustering coefficient
// used by Bu and Towsley: the average over nodes of degree >= 2 of the
// fraction of neighbor pairs that are themselves linked.
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumNodes()
	total, counted := 0.0, 0
	for v := int32(0); v < int32(n); v++ {
		nb := g.Neighbors(v)
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nb[i], nb[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// ClusteringCurve computes the clustering coefficient of ball subgraphs as
// a function of ball size, the ball-growing form of the clustering metric
// the paper reports in Figure 10 and §4.4.
func ClusteringCurve(g *graph.Graph, cfg ball.Config) stats.Series {
	return ClusteringCurveWith(ball.NewEngine(g, 1), cfg)
}

// ClusteringCurveWith is ClusteringCurve over an engine: balls grow on the
// worker pool and their subgraphs come from the shared ball cache.
func ClusteringCurveWith(e *ball.Engine, cfg ball.Config) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	raw := e.BallPoints(cfg, 0, func(sub *graph.Graph, _ *rand.Rand) (float64, bool) {
		return ClusteringCoefficient(sub), true
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "clustering"
	return s
}
