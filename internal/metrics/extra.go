package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/flow"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// The paper's footnote 22 lists two further metrics the authors computed
// ("the average path length between any two nodes in a ball of size n, and
// the expected max-flow between the center of a ball of size n and any node
// on the surface of the ball") that "do not contradict our findings but do
// not add to them either". Both are implemented here for completeness and
// for the ablation benches.

// BallPathLengthCurve computes the average pairwise shortest-path length of
// ball subgraphs as a function of ball size.
func BallPathLengthCurve(g *graph.Graph, cfg ball.Config) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	var raw []stats.Point
	ball.Visit(g, cfg, func(b ball.Ball) {
		sub := ball.Subgraph(g, b)
		sources := sub.NumNodes()
		if sources > 24 {
			sources = 24
		}
		raw = append(raw, stats.Point{
			X: float64(sub.NumNodes()),
			Y: AveragePathLength(sub, sources),
		})
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "ballpathlength"
	return s
}

// SurfaceMaxFlowCurve computes the expected unit-capacity max flow from a
// ball's center to nodes on its surface (nodes at exactly the ball radius),
// as a function of ball size. One subgraph scratch, BFS scratch and Dinic
// network are reused across every ball, so the sweep allocates only the
// per-ball subgraphs themselves; the sampling RNG sequence is unchanged, so
// the series is byte-identical to the historical implementation.
func SurfaceMaxFlowCurve(g *graph.Graph, cfg ball.Config, flowSamples int) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	if flowSamples <= 0 {
		flowSamples = 8
	}
	r := rand.New(rand.NewSource(29))
	subScratch := graph.NewSubgraphScratch()
	bfs := graph.NewBFSScratch()
	var nw flow.Network
	var surface []int32
	var raw []stats.Point
	ball.Visit(g, cfg, func(b ball.Ball) {
		sub := subScratch.Induced(g, b.Nodes)
		// The center is node 0 of the subgraph (BFS order); surface nodes
		// are those at distance Radius.
		bfs.BFS(sub, 0)
		surface = surface[:0]
		for v := int32(0); v < int32(sub.NumNodes()); v++ {
			if int(bfs.Dist(v)) == b.Radius {
				surface = append(surface, v)
			}
		}
		if len(surface) == 0 {
			return
		}
		nw.Reset(sub)
		total, samples := 0.0, 0
		for i := 0; i < flowSamples && i < len(surface); i++ {
			t := surface[r.Intn(len(surface))]
			total += float64(nw.MaxFlow(0, t))
			samples++
		}
		raw = append(raw, stats.Point{
			X: float64(sub.NumNodes()),
			Y: total / float64(samples),
		})
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "surfacemaxflow"
	return s
}

// SurfaceMaxFlowCurveWith is the engine form of SurfaceMaxFlowCurve: balls,
// subgraphs and BFS passes come from the engine's shared caches, the Dinic
// solver and surface buffer come from the pooled per-worker kernel bundle,
// and each center samples surface targets with an RNG derived from
// seed+centerIndex — so the series is bit-identical at every engine
// parallelism (it intentionally differs from the legacy single-RNG
// sequential curve, which is kept for cached-artifact compatibility).
func SurfaceMaxFlowCurveWith(e *ball.Engine, cfg ball.Config, flowSamples int, seed int64) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 3
	}
	if flowSamples <= 0 {
		flowSamples = 8
	}
	raw := e.BallPointsKernels(cfg, seed,
		func(sub *graph.Graph, radius int, rng *rand.Rand, k *ball.Kernels) (float64, bool) {
			k.BFS.BFS(sub, 0)
			k.Ints = k.Ints[:0]
			for v := int32(0); v < int32(sub.NumNodes()); v++ {
				if int(k.BFS.Dist(v)) == radius {
					k.Ints = append(k.Ints, v)
				}
			}
			surface := k.Ints
			if len(surface) == 0 {
				return 0, false
			}
			k.Flow.Reset(sub)
			total, samples := 0.0, 0
			for i := 0; i < flowSamples && i < len(surface); i++ {
				t := surface[rng.Intn(len(surface))]
				total += float64(k.Flow.MaxFlow(0, t))
				samples++
			}
			return total / float64(samples), true
		})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "surfacemaxflow"
	return s
}
