package metrics

import (
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/linalg"
	"topocmp/internal/stats"
)

// EigenvalueSpectrum returns the k largest adjacency eigenvalues of g as a
// rank-vs-value series: the metric of Faloutsos et al. plotted in the
// paper's Figure 7(a-c). Only positive eigenvalues are reported (the
// paper's "rank of positive eigenvalues"). Small graphs use the dense
// Jacobi solver; larger ones use Lanczos.
func EigenvalueSpectrum(g *graph.Graph, k int) stats.Series {
	n := g.NumNodes()
	out := stats.Series{Name: "eigenvalues"}
	if n == 0 || k <= 0 {
		return out
	}
	var eig []float64
	if n <= 128 {
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for _, e := range g.Edges() {
			a[e.U][e.V] = 1
			a[e.V][e.U] = 1
		}
		eig = linalg.JacobiEigenvalues(a)
	} else {
		iters := 3*k + 16
		if iters > n {
			iters = n
		}
		mv := linalg.AdjacencyMatVec(g.Neighbors, n)
		eig = linalg.Lanczos(mv, n, k, iters, rand.New(rand.NewSource(7)))
	}
	rank := 1
	for _, v := range eig {
		if v <= 0 || rank > k {
			break
		}
		out.Add(float64(rank), v)
		rank++
	}
	return out
}
