package metrics

import (
	"math"
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/linalg"
	"topocmp/internal/stats"
)

// This file implements the related-work metrics the paper discusses in §2:
// the Laplacian spectrum analysis of Vukadinovic et al. (whose multiplicity
// of eigenvalue 1 separates AS graphs from grids and random trees — a
// *local* property, per the paper's reading), and the small-world
// comparison of Watts and Strogatz.

// LaplacianSpectrum returns all eigenvalues of the graph Laplacian
// L = D - A in descending order, computed densely; intended for graphs up
// to a few hundred nodes (subsample or use balls for larger ones).
func LaplacianSpectrum(g *graph.Graph) []float64 {
	n := g.NumNodes()
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for v := int32(0); v < int32(n); v++ {
		a[v][v] = float64(g.Degree(v))
	}
	for _, e := range g.Edges() {
		a[e.U][e.V] = -1
		a[e.V][e.U] = -1
	}
	return linalg.JacobiEigenvalues(a)
}

// EigenvalueOneMultiplicity returns the (approximate) multiplicity of
// eigenvalue 1 in the Laplacian spectrum, Vukadinovic et al.'s
// discriminator: it counts pendant structure (degree-1 nodes and their
// attachments), high in AS-like graphs and zero in grids.
func EigenvalueOneMultiplicity(g *graph.Graph, tol float64) int {
	if tol <= 0 {
		tol = 1e-8
	}
	count := 0
	for _, ev := range LaplacianSpectrum(g) {
		if math.Abs(ev-1) <= tol {
			count++
		}
	}
	return count
}

// SmallWorld holds the Watts–Strogatz comparison of a graph against a
// same-size, same-degree random baseline.
type SmallWorld struct {
	Clustering       float64 // graph clustering coefficient
	PathLength       float64 // average shortest path length
	RandomClustering float64 // expected for G(n,m): k/n
	RandomPathLength float64 // expected: ln n / ln k
	Sigma            float64 // (C/Crand) / (L/Lrand); >> 1 is small-world
}

// SmallWorldness computes the small-world coefficient sigma with analytic
// random-graph baselines. pathSamples bounds the APL estimation (0 = all
// sources).
func SmallWorldness(g *graph.Graph, pathSamples int) SmallWorld {
	n := float64(g.NumNodes())
	k := g.AvgDegree()
	sw := SmallWorld{
		Clustering: ClusteringCoefficient(g),
		PathLength: AveragePathLength(g, pathSamples),
	}
	if n > 1 && k > 1 {
		sw.RandomClustering = k / n
		sw.RandomPathLength = math.Log(n) / math.Log(k)
	}
	if sw.RandomClustering > 0 && sw.RandomPathLength > 0 &&
		sw.PathLength > 0 && sw.Clustering > 0 {
		sw.Sigma = (sw.Clustering / sw.RandomClustering) /
			(sw.PathLength / sw.RandomPathLength)
	}
	return sw
}

// HopPlot returns the Faloutsos et al. hop-plot: the number of node pairs
// within h hops (including self-pairs), as a function of h, averaged over
// sampled sources and extrapolated to the full graph. The paper notes its
// expansion metric is a normalized relative of this.
func HopPlot(g *graph.Graph, maxSources int, r *rand.Rand) stats.Series {
	if r == nil {
		r = rand.New(rand.NewSource(31))
	}
	n := g.NumNodes()
	out := stats.Series{Name: "hopplot"}
	if n == 0 {
		return out
	}
	sources := n
	if maxSources > 0 && maxSources < n {
		sources = maxSources
	}
	perm := r.Perm(n)
	// Per-source cumulative reach profiles, saturated to the global
	// maximum eccentricity. The sources sweep through the bit-parallel
	// MSBFS kernel 64 at a time; the cum profiles are integer counts, so
	// the series matches the scalar per-source BFS exactly.
	var profiles [][]float64
	maxEcc := 0
	ms := graph.NewMSBFSScratch()
	for lo := 0; lo < sources; lo += graph.MSBFSWidth {
		hi := lo + graph.MSBFSWidth
		if hi > sources {
			hi = sources
		}
		batch := make([]int32, hi-lo)
		for i := range batch {
			batch[i] = int32(perm[lo+i])
		}
		ms.Run(g, batch)
		for i := range batch {
			levels := ms.LevelCounts(i)
			cum := make([]float64, len(levels))
			run := 0.0
			for h, cnt := range levels {
				run += float64(cnt)
				cum[h] = run
			}
			profiles = append(profiles, cum)
			if ecc := len(levels) - 1; ecc > maxEcc {
				maxEcc = ecc
			}
		}
	}
	scale := float64(n) / float64(sources)
	for h := 0; h <= maxEcc; h++ {
		sum := 0.0
		for _, cum := range profiles {
			if h < len(cum) {
				sum += cum[h]
			} else {
				sum += cum[len(cum)-1]
			}
		}
		out.Add(float64(h), sum*scale)
	}
	return out
}
