package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// Resilience computes R(n): the average minimum cut-set size of a balanced
// bipartition of the subgraph inside an n-node ball (§3.2.1). The metric is
// keyed by ball *size*, not radius, to factor out expansion differences.
// Raw (size, cut) samples are averaged into geometric buckets.
func Resilience(g *graph.Graph, cfg ball.Config, popts partition.Options) stats.Series {
	seed := int64(1)
	if popts.Rand != nil {
		seed = popts.Rand.Int63()
	}
	return ResilienceWith(ball.NewEngine(g, 1), cfg, popts, seed)
}

// ResilienceWith is Resilience over an engine. Each center partitions its
// balls with an RNG derived from seed+centerIndex (popts.Rand is ignored),
// which keeps the series bit-identical at every engine parallelism.
func ResilienceWith(e *ball.Engine, cfg ball.Config, popts partition.Options, seed int64) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 2
	}
	raw := e.BallPoints(cfg, seed, func(sub *graph.Graph, rng *rand.Rand) (float64, bool) {
		o := popts
		o.Rand = rng
		return float64(partition.CutSize(sub, o)), true
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "resilience"
	return s
}

// bucketRatio groups ball sizes into geometric buckets roughly matching the
// paper's log-scale sampling of ball sizes.
const bucketRatio = 1.45
