package metrics

import (
	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// Resilience computes R(n): the average minimum cut-set size of a balanced
// bipartition of the subgraph inside an n-node ball (§3.2.1). The metric is
// keyed by ball *size*, not radius, to factor out expansion differences.
// Raw (size, cut) samples are averaged into geometric buckets.
func Resilience(g *graph.Graph, cfg ball.Config, popts partition.Options) stats.Series {
	var raw []stats.Point
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 2
	}
	ball.Visit(g, cfg, func(b ball.Ball) {
		sub := ball.Subgraph(g, b)
		cut := partition.CutSize(sub, popts)
		raw = append(raw, stats.Point{X: float64(sub.NumNodes()), Y: float64(cut)})
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "resilience"
	return s
}

// bucketRatio groups ball sizes into geometric buckets roughly matching the
// paper's log-scale sampling of ball sizes.
const bucketRatio = 1.45
