package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// Resilience computes R(n): the average minimum cut-set size of a balanced
// bipartition of the subgraph inside an n-node ball (§3.2.1). The metric is
// keyed by ball *size*, not radius, to factor out expansion differences.
// Raw (size, cut) samples are averaged into geometric buckets.
//
// Seed-derivation contract: popts.Rand, when set, is consulted exactly once
// — a single Int63 draw supplies the engine seed — and never again; every
// per-ball RNG is derived from that seed downstream. A nil popts.Rand means
// the fixed seed 1. The field is cleared before the work starts so no code
// below this wrapper can observe (or advance) the caller's RNG.
func Resilience(g *graph.Graph, cfg ball.Config, popts partition.Options) stats.Series {
	seed := int64(1)
	if popts.Rand != nil {
		seed = popts.Rand.Int63()
		popts.Rand = nil
	}
	return ResilienceWith(ball.NewEngine(g, 1), cfg, popts, seed)
}

// ResilienceWith is Resilience over an engine. Each center partitions its
// balls with an RNG derived from seed+centerIndex (popts.Rand is ignored),
// which keeps the series bit-identical at every engine parallelism. Cut
// computations run on the engine's pooled per-worker partition workspaces,
// so steady-state partitioning does not allocate.
func ResilienceWith(e *ball.Engine, cfg ball.Config, popts partition.Options, seed int64) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 2
	}
	raw := e.BallPointsKernels(cfg, seed,
		func(sub *graph.Graph, _ int, rng *rand.Rand, k *ball.Kernels) (float64, bool) {
			o := popts
			o.Rand = rng
			return float64(partition.CutSizeWith(k.Part, sub, o)), true
		})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "resilience"
	return s
}

// bucketRatio groups ball sizes into geometric buckets roughly matching the
// paper's log-scale sampling of ball sizes.
const bucketRatio = 1.45
