// Package metrics implements the paper's eight topology metrics: the three
// basic discriminators (expansion, resilience, distortion — §3.2.1) and the
// five auxiliary metrics of Appendix B (eigenvalue spectrum, node-diameter
// distribution, vertex cover, biconnectivity, attack/error tolerance), plus
// the Bu–Towsley clustering coefficient used in §4.4. Every ball-based
// metric follows the paper's ball-growing technique via internal/ball.
package metrics

import (
	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// Expansion computes E(h): the average fraction of the graph's nodes that
// fall within a ball of radius h, averaged over (sampled) centers. This is
// the reachability-style metric of Phillips et al. normalized by graph size
// so that differently sized graphs are comparable (§3.2.1).
func Expansion(g *graph.Graph, cfg ball.Config) stats.Series {
	n := g.NumNodes()
	out := stats.Series{Name: "expansion"}
	if n == 0 {
		return out
	}
	centers := ball.Centers(g, &cfg)
	sums := expansionSums(g, centers)
	total := float64(n)
	for h, s := range sums {
		out.Add(float64(h), s/float64(len(centers))/total)
	}
	return out
}

// expansionSums returns sums[h] = Σ_centers |ball(center, h)| for h from 0
// to the maximum eccentricity among centers, with saturated contributions
// from centers of smaller eccentricity.
func expansionSums(g *graph.Graph, centers []int32) []float64 {
	type profile struct {
		cum []int // cum[h] = ball size at radius h
	}
	profiles := make([]profile, 0, len(centers))
	maxEcc := 0
	for _, src := range centers {
		dist, order := g.BFS(src)
		ecc := int(dist[order[len(order)-1]])
		cum := make([]int, ecc+1)
		idx := 0
		for h := 0; h <= ecc; h++ {
			for idx < len(order) && int(dist[order[idx]]) <= h {
				idx++
			}
			cum[h] = idx
		}
		profiles = append(profiles, profile{cum})
		if ecc > maxEcc {
			maxEcc = ecc
		}
	}
	sums := make([]float64, maxEcc+1)
	for _, p := range profiles {
		for h := 0; h <= maxEcc; h++ {
			if h < len(p.cum) {
				sums[h] += float64(p.cum[h])
			} else {
				sums[h] += float64(p.cum[len(p.cum)-1])
			}
		}
	}
	return sums
}
