// Package metrics implements the paper's eight topology metrics: the three
// basic discriminators (expansion, resilience, distortion — §3.2.1) and the
// five auxiliary metrics of Appendix B (eigenvalue spectrum, node-diameter
// distribution, vertex cover, biconnectivity, attack/error tolerance), plus
// the Bu–Towsley clustering coefficient used in §4.4. Every ball-based
// metric follows the paper's ball-growing technique via internal/ball.
package metrics

import (
	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// Expansion computes E(h): the average fraction of the graph's nodes that
// fall within a ball of radius h, averaged over (sampled) centers. This is
// the reachability-style metric of Phillips et al. normalized by graph size
// so that differently sized graphs are comparable (§3.2.1).
func Expansion(g *graph.Graph, cfg ball.Config) stats.Series {
	return ExpansionWith(ball.NewEngine(g, 1), cfg)
}

// ExpansionWith is Expansion over an engine: expansion only needs ball
// sizes, so the per-center passes run through the engine's bit-parallel
// distance kernel (up to 64 centers per CSR sweep) and land in its cum
// profile cache, where metrics sampling the same centers reuse them.
// Cached full profiles satisfy the request directly; the series is
// byte-identical to the scalar per-center path.
func ExpansionWith(e *ball.Engine, cfg ball.Config) stats.Series {
	g := e.Graph()
	n := g.NumNodes()
	out := stats.Series{Name: "expansion"}
	if n == 0 {
		return out
	}
	centers := ball.Centers(g, &cfg)
	profiles := e.CumProfiles(centers)
	maxEcc := 0
	for _, p := range profiles {
		if ecc := p.Eccentricity(); ecc > maxEcc {
			maxEcc = ecc
		}
	}
	// Sum |ball(center, h)| over centers (in center order, so the float
	// accumulation is deterministic), saturating centers of smaller
	// eccentricity. Each E(h) is the mean over sampled centers of the
	// per-center reach fraction, so it carries a finite-population-corrected
	// standard error over those per-center fractions: zero when every node
	// served as a center, shrinking as the sample budget grows.
	total := float64(n)
	fracs := make([]float64, len(profiles))
	for h := 0; h <= maxEcc; h++ {
		sum := 0.0
		for i, p := range profiles {
			f := float64(p.Size(h))
			sum += f
			fracs[i] = f / total
		}
		out.AddWithErr(float64(h), sum/float64(len(profiles))/total,
			stats.MeanStdErrFPC(fracs, n))
	}
	return out
}
