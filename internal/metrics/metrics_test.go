package metrics

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/partition"
)

func defaultCfg(sources int) ball.Config {
	return ball.Config{MaxSources: sources, Rand: rand.New(rand.NewSource(1))}
}

// --- Expansion ---

func TestExpansionPath(t *testing.T) {
	g := canonical.Linear(10)
	s := Expansion(g, ball.Config{})
	// E(0) = 1/10; E at eccentricity = 1.
	if math.Abs(s.Points[0].Y-0.1) > 1e-9 {
		t.Fatalf("E(0) = %v, want 0.1", s.Points[0].Y)
	}
	last := s.Points[len(s.Points)-1]
	if math.Abs(last.Y-1) > 1e-9 {
		t.Fatalf("E(max) = %v, want 1", last.Y)
	}
}

func TestExpansionMonotone(t *testing.T) {
	g := canonical.Tree(3, 5)
	s := Expansion(g, ball.Config{})
	for i := 1; i < s.Len(); i++ {
		if s.Points[i].Y < s.Points[i-1].Y-1e-12 {
			t.Fatalf("expansion not monotone at %d", i)
		}
	}
}

func TestExpansionTreeFasterThanMesh(t *testing.T) {
	tree := canonical.Tree(3, 6)   // 1093 nodes
	mesh := canonical.Mesh(33, 33) // 1089 nodes
	st := Expansion(tree, defaultCfg(50))
	sm := Expansion(mesh, defaultCfg(50))
	// The forms differ — exponential vs quadratic — which shows at radius
	// ~10: the tree (diameter 12) has nearly saturated while the mesh
	// (diameter 64) has only reached ~2h^2/N of its nodes.
	if st.YAt(10) < 3*sm.YAt(10) {
		t.Fatalf("tree E(10)=%v not >> mesh E(10)=%v", st.YAt(10), sm.YAt(10))
	}
}

func TestExpansionEmptyGraph(t *testing.T) {
	if s := Expansion(canonical.Linear(0), ball.Config{}); s.Len() != 0 {
		t.Fatal("empty graph should give empty series")
	}
}

// --- Resilience ---

func TestResilienceTreeLow(t *testing.T) {
	g := canonical.Tree(3, 6)
	s := Resilience(g, defaultCfg(12), partition.Options{})
	// Tiny balls around internal nodes are stars, whose balanced cut is
	// necessarily ~n/2; and a complete k-ary tree needs ~log n cuts for a
	// balanced split. The tree's signature is therefore *flat, low*
	// resilience: bounded by ~log n everywhere, far below the mesh's
	// sqrt(n) and the random graph's kn.
	for _, p := range s.Points {
		if p.X >= 25 {
			bound := 2*math.Log2(p.X) + 2
			if p.Y > bound {
				t.Fatalf("tree resilience %v at size %v; want <= %v", p.Y, p.X, bound)
			}
		}
	}
}

func TestResilienceRandomGrows(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := canonical.Random(r, 1200, 0.004) // avg degree ~4.8
	s := Resilience(g, defaultCfg(10), partition.Options{})
	if s.Len() < 3 {
		t.Fatalf("too few resilience points: %d", s.Len())
	}
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	if last.Y <= first.Y {
		t.Fatalf("random resilience should grow: %v -> %v", first.Y, last.Y)
	}
	// Roughly linear in n: R(n)/n should not collapse.
	if last.Y < last.X/20 {
		t.Fatalf("random resilience %v too small for ball size %v", last.Y, last.X)
	}
}

func TestResilienceOrdering(t *testing.T) {
	// At comparable ball sizes: tree << mesh << random.
	r := rand.New(rand.NewSource(3))
	tree := canonical.Tree(2, 9)
	mesh := canonical.Mesh(32, 32)
	random := canonical.Random(r, 1100, 0.004)
	st := Resilience(tree, defaultCfg(8), partition.Options{})
	sm := Resilience(mesh, defaultCfg(8), partition.Options{})
	sr := Resilience(random, defaultCfg(8), partition.Options{})
	size := 400.0
	if !(st.YAt(size) < sm.YAt(size) && sm.YAt(size) < sr.YAt(size)) {
		t.Fatalf("ordering violated: tree=%v mesh=%v random=%v",
			st.YAt(size), sm.YAt(size), sr.YAt(size))
	}
}

// --- Distortion ---

func TestDistortionTreeIsOne(t *testing.T) {
	g := canonical.Tree(3, 5)
	s := Distortion(g, defaultCfg(10), 3)
	for _, p := range s.Points {
		if math.Abs(p.Y-1) > 1e-9 {
			t.Fatalf("tree distortion = %v at size %v, want 1", p.Y, p.X)
		}
	}
}

func TestDistortionCompleteIsTwoish(t *testing.T) {
	g := canonical.Complete(30)
	d := SubgraphDistortion(g, 3)
	// Star spanning tree: center edges distance 1 (29 edges), other pairs 2.
	if d < 1.5 || d > 2.05 {
		t.Fatalf("complete-graph distortion = %v, want ~1.93", d)
	}
}

func TestDistortionMeshGrows(t *testing.T) {
	mesh := canonical.Mesh(25, 25)
	s := Distortion(mesh, defaultCfg(8), 3)
	if s.Len() < 3 {
		t.Fatalf("too few points: %d", s.Len())
	}
	small, large := s.Points[0].Y, s.Points[s.Len()-1].Y
	if large <= small {
		t.Fatalf("mesh distortion should grow with ball size: %v -> %v", small, large)
	}
	if large < 2 {
		t.Fatalf("mesh distortion at large balls = %v, want > 2", large)
	}
}

func TestDistortionPLRGLowerThanMesh(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(4)), plrg.Params{N: 1500, Beta: 2.2})
	mesh := canonical.Mesh(30, 30)
	sg := Distortion(g, defaultCfg(8), 3)
	sm := Distortion(mesh, defaultCfg(8), 3)
	size := 500.0
	if sg.YAt(size) >= sm.YAt(size) {
		t.Fatalf("PLRG distortion %v should be below mesh %v at size %v",
			sg.YAt(size), sm.YAt(size), size)
	}
}

func TestSubgraphDistortionDegenerate(t *testing.T) {
	if d := SubgraphDistortion(canonical.Linear(1), 3); d != 0 {
		t.Fatalf("single node distortion = %v", d)
	}
	if d := SubgraphDistortion(canonical.Linear(2), 3); math.Abs(d-1) > 1e-9 {
		t.Fatalf("K2 distortion = %v, want 1", d)
	}
}

// --- Eigenvalues ---

func TestEigenvalueSpectrumStar(t *testing.T) {
	// Star with 16 leaves: positive eigenvalues are just 4 (= sqrt(16)).
	b := graph.NewBuilder(17)
	for i := int32(1); i <= 16; i++ {
		b.AddEdge(0, i)
	}
	s := EigenvalueSpectrum(b.Graph(), 5)
	if s.Len() < 1 || math.Abs(s.Points[0].Y-4) > 1e-8 {
		t.Fatalf("star spectrum = %+v, want top 4", s.Points)
	}
}

func TestEigenvalueSpectrumLargeUsesLanczos(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(5)), plrg.Params{N: 1200, Beta: 2.2})
	s := EigenvalueSpectrum(g, 20)
	if s.Len() < 10 {
		t.Fatalf("spectrum too short: %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.Points[i].Y > s.Points[i-1].Y+1e-9 {
			t.Fatalf("spectrum not descending at rank %d", i)
		}
	}
	// Top adjacency eigenvalue >= sqrt(max degree).
	if s.Points[0].Y < math.Sqrt(float64(g.MaxDegree()))-1e-6 {
		t.Fatalf("top eigenvalue %v below sqrt(maxdeg) %v",
			s.Points[0].Y, math.Sqrt(float64(g.MaxDegree())))
	}
}

// --- Eccentricity ---

func TestEccentricityDistribution(t *testing.T) {
	g := canonical.Mesh(12, 12)
	s := EccentricityDistribution(g, 0, 0.1)
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Y
		if p.X < 0.3 || p.X > 2.2 {
			t.Fatalf("normalized eccentricity %v out of plausible range", p.X)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram mass = %v, want 1", sum)
	}
}

func TestEccentricityTreeOneSided(t *testing.T) {
	// Paper footnote 23: the tree's diameter distribution is one-sided —
	// most nodes (the leaves) sit at maximum eccentricity.
	g := canonical.Tree(3, 6)
	s := EccentricityDistribution(g, 200, 0.1)
	// Mass above the mean should dominate.
	above := 0.0
	for _, p := range s.Points {
		if p.X >= 1.0 {
			above += p.Y
		}
	}
	if above < 0.5 {
		t.Fatalf("tree eccentricity mass above mean = %v, want > 0.5", above)
	}
}

// --- Vertex cover ---

func TestVertexCoverStar(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := int32(1); i < 10; i++ {
		b.AddEdge(0, i)
	}
	cover := VertexCover(b.Graph())
	if len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("star cover = %v, want [0]", cover)
	}
}

func TestVertexCoverValid(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := canonical.Random(r, 300, 0.02)
	cover := VertexCover(g)
	in := make(map[int32]bool, len(cover))
	for _, v := range cover {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e.U] && !in[e.V] {
			t.Fatalf("edge %v uncovered", e)
		}
	}
	// 2-approximation bound vs trivial lower bound E/maxdeg.
	lower := float64(g.NumEdges()) / float64(g.MaxDegree())
	if float64(len(cover)) > 2*float64(g.NumNodes()) || float64(len(cover)) < lower {
		t.Fatalf("cover size %d implausible", len(cover))
	}
}

func TestWeightedVertexCoverAccessLink(t *testing.T) {
	// All pairs share node 0 with weight 1; cover = {0}, value 1 — the
	// paper's access-link example.
	pairs := [][2]int32{{0, 1}, {0, 2}, {0, 3}}
	w := map[int32]float64{0: 1, 1: 5, 2: 5, 3: 5}
	if v := WeightedVertexCover(pairs, w); math.Abs(v-1) > 1e-9 {
		t.Fatalf("access-link cover value = %v, want 1", v)
	}
}

func TestWeightedVertexCoverIsCover(t *testing.T) {
	pairs := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	w := map[int32]float64{0: 1, 1: 2, 2: 1, 3: 2}
	v := WeightedVertexCover(pairs, w)
	// Optimal picks nodes 0 and 2 (value 2); the 2-approx pays at most 4.
	if v < 2-1e-9 || v > 4+1e-9 {
		t.Fatalf("cycle cover value = %v, want in [2,4]", v)
	}
}

// --- Biconnectivity ---

func TestBiconnectedComponentsKnown(t *testing.T) {
	cases := []struct {
		build func() *graph.Graph
		want  int
		name  string
	}{
		{func() *graph.Graph { return canonical.Linear(5) }, 4, "path"},
		{func() *graph.Graph { return canonical.Complete(6) }, 1, "complete"},
		{func() *graph.Graph {
			// Two triangles sharing a vertex.
			b := graph.NewBuilder(5)
			b.AddEdge(0, 1)
			b.AddEdge(1, 2)
			b.AddEdge(2, 0)
			b.AddEdge(2, 3)
			b.AddEdge(3, 4)
			b.AddEdge(4, 2)
			return b.Graph()
		}, 2, "two triangles"},
		{func() *graph.Graph { return canonical.Tree(2, 4) }, 30, "binary tree"},
		{func() *graph.Graph { return canonical.Mesh(4, 4) }, 1, "mesh"},
	}
	for _, c := range cases {
		if got := BiconnectedComponents(c.build()); got != c.want {
			t.Fatalf("%s: components = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestBiconnectivityCurveTreeEqualsEdges(t *testing.T) {
	g := canonical.Tree(3, 5)
	s := BiconnectivityCurve(g, defaultCfg(10))
	// In a tree every edge is its own biconnected component: count = n-1.
	for _, p := range s.Points {
		if math.Abs(p.Y-(p.X-1)) > p.X*0.2+2 {
			t.Fatalf("tree biconnectivity %v at size %v, want ~size-1", p.Y, p.X)
		}
	}
}

// --- Tolerance ---

func TestAttackToleranceHeavyTailPeaks(t *testing.T) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(7)), plrg.Params{N: 3000, Beta: 2.2})
	fracs := []float64{0, 0.01, 0.03, 0.05, 0.10}
	att := AttackTolerance(g, fracs, 30)
	err := ErrorTolerance(g, fracs, 30, rand.New(rand.NewSource(8)))
	// Removing hubs must hurt more than random removal (the scale-free
	// attack-vulnerability result of Albert et al.).
	if att.Points[2].Y <= err.Points[2].Y {
		t.Fatalf("attack APL %v should exceed error APL %v",
			att.Points[2].Y, err.Points[2].Y)
	}
	if att.Points[0].Y != err.Points[0].Y {
		t.Fatalf("f=0 baselines differ: %v vs %v", att.Points[0].Y, err.Points[0].Y)
	}
}

func TestAveragePathLength(t *testing.T) {
	g := canonical.Complete(20)
	if apl := AveragePathLength(g, 0); math.Abs(apl-1) > 1e-9 {
		t.Fatalf("complete APL = %v, want 1", apl)
	}
	p := canonical.Linear(3) // distances 1,1,2 -> mean 4/3
	if apl := AveragePathLength(p, 0); math.Abs(apl-4.0/3) > 1e-9 {
		t.Fatalf("path APL = %v, want 4/3", apl)
	}
	if apl := AveragePathLength(canonical.Linear(1), 0); apl != 0 {
		t.Fatalf("singleton APL = %v", apl)
	}
}

// --- Clustering ---

func TestClusteringCoefficientKnown(t *testing.T) {
	if c := ClusteringCoefficient(canonical.Complete(5)); math.Abs(c-1) > 1e-9 {
		t.Fatalf("K5 clustering = %v, want 1", c)
	}
	if c := ClusteringCoefficient(canonical.Tree(3, 4)); c != 0 {
		t.Fatalf("tree clustering = %v, want 0", c)
	}
	// Triangle with a pendant edge: nodes of the triangle have C=1 except
	// the one with the pendant (degree 3, 1 of 3 pairs linked).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 3)
	want := (1.0/3 + 1 + 1) / 3
	if c := ClusteringCoefficient(b.Graph()); math.Abs(c-want) > 1e-9 {
		t.Fatalf("clustering = %v, want %v", c, want)
	}
}

func TestClusteringCurveMeshZero(t *testing.T) {
	// Grid has no triangles.
	s := ClusteringCurve(canonical.Mesh(12, 12), defaultCfg(10))
	for _, p := range s.Points {
		if p.Y != 0 {
			t.Fatalf("mesh clustering %v at size %v, want 0", p.Y, p.X)
		}
	}
}

func BenchmarkExpansionPLRG(b *testing.B) {
	g := plrg.MustGenerate(rand.New(rand.NewSource(9)), plrg.Params{N: 5000, Beta: 2.2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Expansion(g, defaultCfg(32))
	}
}

func BenchmarkResilienceMesh(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Resilience(g, defaultCfg(4), partition.Options{})
	}
}

// BenchmarkSurfaceMaxFlow covers both surface-flow paths: the legacy
// sequential curve (scratch-reuse optimized, byte-identical output) and the
// engine form with pooled per-worker kernels.
func BenchmarkSurfaceMaxFlow(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SurfaceMaxFlowCurve(g, defaultCfg(4), 6)
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SurfaceMaxFlowCurveWith(ball.NewEngine(g, 1), defaultCfg(4), 6, 1)
		}
	})
}
