package metrics

import (
	"math/rand"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/partition"
	"topocmp/internal/stats"
)

// goldenPLRG is the fixed seeded power-law graph all metric golden values
// below are pinned on.
func goldenPLRG() *graph.Graph {
	return plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 600, Beta: 2.246})
}

// coverFingerprint folds the cover's node sequence into one value, so a
// change anywhere in the greedy pop order shows up, not just a size change.
func coverFingerprint(cover []int32) (int, int64) {
	fp := int64(0)
	for _, v := range cover {
		fp = fp*1000003 + int64(v)
	}
	return len(cover), fp
}

// TestVertexCoverGolden pins the exact cover node sequences. greedyCover's
// typed heap must pop in container/heap's historical order; a fingerprint
// drift here means cover curves change and warm suite caches go stale.
func TestVertexCoverGolden(t *testing.T) {
	if n, fp := coverFingerprint(VertexCover(goldenPLRG())); n != 125 || fp != 5066101263106862863 {
		t.Errorf("plrg cover = (%d, %d), want (125, 5066101263106862863)", n, fp)
	}
	if n, fp := coverFingerprint(VertexCover(canonical.Mesh(20, 20))); n != 200 || fp != -6181670630353296150 {
		t.Errorf("mesh cover = (%d, %d), want (200, -6181670630353296150)", n, fp)
	}
}

func sameSeries(t *testing.T, name string, got stats.Series, want []stats.Point) {
	t.Helper()
	if len(got.Points) != len(want) {
		t.Fatalf("%s: %d points, want %d", name, len(got.Points), len(want))
	}
	for i, p := range got.Points {
		if p.X != want[i].X || p.Y != want[i].Y {
			t.Errorf("%s[%d] = (%v, %v), want (%v, %v)", name, i, p.X, p.Y, want[i].X, want[i].Y)
		}
	}
}

// TestResilienceSeriesGolden pins the full resilience series on the seeded
// power-law graph, bit for bit. This is the end-to-end guard on the kernel
// rewrite: centers, per-center seed derivation, workspace-backed cuts and
// bucketization all have to match the historical pipeline exactly.
func TestResilienceSeriesGolden(t *testing.T) {
	s := Resilience(goldenPLRG(),
		ball.Config{MaxSources: 6, MaxBallSize: 400, Rand: rand.New(rand.NewSource(2))},
		partition.Options{})
	sameSeries(t, "resilience", s, []stats.Point{
		{X: 2, Y: 1}, {X: 3, Y: 1}, {X: 4, Y: 2}, {X: 6, Y: 3}, {X: 7.5, Y: 3},
		{X: 17, Y: 8.5}, {X: 24, Y: 11}, {X: 39, Y: 7}, {X: 42, Y: 6.5},
		{X: 74, Y: 9.5}, {X: 109.5, Y: 21.5}, {X: 153.5, Y: 21.5},
		{X: 227, Y: 27.5}, {X: 330.875, Y: 49.75}, {X: 383.5, Y: 57.5},
	})
}

// TestSurfaceMaxFlowSeriesGolden pins the legacy sequential surface-max-flow
// series bit for bit: cached experiment artifacts depend on its single
// shared RNG sequence, which the scratch-reuse optimization must not touch.
func TestSurfaceMaxFlowSeriesGolden(t *testing.T) {
	s := SurfaceMaxFlowCurve(goldenPLRG(),
		ball.Config{MaxSources: 6, MaxBallSize: 400, Rand: rand.New(rand.NewSource(2))}, 4)
	sameSeries(t, "surfacemaxflow", s, []stats.Point{
		{X: 3, Y: 1}, {X: 4, Y: 1}, {X: 6, Y: 1}, {X: 7.5, Y: 1},
		{X: 17, Y: 1}, {X: 24, Y: 1}, {X: 39, Y: 1.5}, {X: 42, Y: 1.375},
		{X: 74, Y: 1}, {X: 109.5, Y: 1.25}, {X: 153.5, Y: 1.625},
		{X: 227, Y: 1}, {X: 330.875, Y: 1.03125}, {X: 383.5, Y: 1},
	})
}

// TestResilienceWorkspaceMatchesFresh checks the pooled-kernel resilience
// path against a reference that partitions every ball with a throwaway
// solver, at engine parallelism 1 and 4: recycled workspaces must change
// nothing, and neither may the worker pool width.
func TestResilienceWorkspaceMatchesFresh(t *testing.T) {
	g := goldenPLRG()
	cfg := func() ball.Config {
		return ball.Config{
			MaxSources:  6,
			MaxBallSize: 400,
			MinBallSize: 2,
			Rand:        rand.New(rand.NewSource(2)),
		}
	}
	const seed = 1
	freshRaw := ball.NewEngine(g, 1).BallPoints(cfg(), seed,
		func(sub *graph.Graph, rng *rand.Rand) (float64, bool) {
			return float64(partition.CutSize(sub, partition.Options{Rand: rng})), true
		})
	fresh := stats.Bucketize(freshRaw, bucketRatio)
	for _, par := range []int{1, 4} {
		got := ResilienceWith(ball.NewEngine(g, par), cfg(), partition.Options{}, seed)
		if len(got.Points) != len(fresh.Points) {
			t.Fatalf("parallelism %d: %d points, want %d", par, len(got.Points), len(fresh.Points))
		}
		for i, p := range got.Points {
			if p.X != fresh.Points[i].X || p.Y != fresh.Points[i].Y {
				t.Fatalf("parallelism %d point %d: (%v, %v) != fresh (%v, %v)",
					par, i, p.X, p.Y, fresh.Points[i].X, fresh.Points[i].Y)
			}
		}
	}
}
