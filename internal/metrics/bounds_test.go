package metrics

import (
	"math/rand"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

func boundsTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 1200, Beta: 2.246})
	if g.NumNodes() < 200 {
		t.Fatalf("test graph too small: %d nodes", g.NumNodes())
	}
	return g
}

func meanStdErr(s stats.Series) float64 {
	if len(s.StdErr) == 0 {
		return 0
	}
	sum := 0.0
	for _, se := range s.StdErr {
		sum += se
	}
	return sum / float64(len(s.StdErr))
}

func maxStdErr(s stats.Series) float64 {
	max := 0.0
	for _, se := range s.StdErr {
		if se > max {
			max = se
		}
	}
	return max
}

// TestExpansionBoundsShrinkWithBudget checks the sampled-estimator
// contract on expansion: a larger sampling budget must tighten the
// confidence bounds, and a full enumeration must report zero-width bounds.
func TestExpansionBoundsShrinkWithBudget(t *testing.T) {
	g := boundsTestGraph(t)
	run := func(budget int) stats.Series {
		return ExpansionWith(ball.NewEngine(g, 1), ball.Config{
			MaxSources: budget, Rand: rand.New(rand.NewSource(5)),
		})
	}
	small, large := run(16), run(g.NumNodes()/2)
	if len(small.StdErr) != len(small.Points) || len(large.StdErr) != len(large.Points) {
		t.Fatal("expansion series missing per-point bounds")
	}
	if ms, ml := meanStdErr(small), meanStdErr(large); ml >= ms {
		t.Errorf("bounds did not shrink: budget 16 mean stderr %v, budget %d mean stderr %v",
			ms, g.NumNodes()/2, ml)
	}
	if ms := meanStdErr(small); ms == 0 {
		t.Error("sampled expansion reported zero-width bounds")
	}
	full := run(0) // 0 = every node
	if m := maxStdErr(full); m != 0 {
		t.Errorf("full enumeration: want zero-width bounds, got max stderr %v", m)
	}
}

// TestEccentricityBoundsShrinkWithBudget does the same for the
// node-eccentricity distribution's per-bin proportions.
func TestEccentricityBoundsShrinkWithBudget(t *testing.T) {
	g := boundsTestGraph(t)
	run := func(budget int) stats.Series {
		return EccentricityDistributionWith(ball.NewEngine(g, 1), budget, 0.1,
			rand.New(rand.NewSource(5)))
	}
	small, large := run(24), run(g.NumNodes()/2)
	if len(small.StdErr) != len(small.Points) || len(large.StdErr) != len(large.Points) {
		t.Fatal("eccentricity series missing per-point bounds")
	}
	if ms, ml := maxStdErr(small), maxStdErr(large); ml >= ms {
		t.Errorf("bounds did not shrink: budget 24 max stderr %v, larger budget max stderr %v", ms, ml)
	}
	if m := maxStdErr(run(0)); m != 0 {
		t.Errorf("full enumeration: want zero-width bounds, got max stderr %v", m)
	}
}

// TestAveragePathLengthBounds checks the per-source path-length estimator:
// the point estimate must be untouched by the bound computation, bounds
// must shrink with budget, and full enumeration must be exactly zero-width.
func TestAveragePathLengthBounds(t *testing.T) {
	g := boundsTestGraph(t)
	apl, seFull := AveragePathLengthBounds(g, 0)
	if seFull != 0 {
		t.Errorf("full enumeration: want stderr exactly 0, got %v", seFull)
	}
	if legacy := AveragePathLength(g, 0); legacy != apl {
		t.Errorf("AveragePathLength %v != AveragePathLengthBounds %v", legacy, apl)
	}
	_, seSmall := AveragePathLengthBounds(g, 12)
	_, seLarge := AveragePathLengthBounds(g, g.NumNodes()/2)
	if seSmall == 0 {
		t.Error("sampled run reported a zero-width bound")
	}
	if seLarge >= seSmall {
		t.Errorf("bounds did not shrink: budget 12 stderr %v, half-graph stderr %v", seSmall, seLarge)
	}
}

// TestToleranceCurvesCarryBounds checks that the attack/error removal
// curves attach one bound per removal fraction.
func TestToleranceCurvesCarryBounds(t *testing.T) {
	g := boundsTestGraph(t)
	fr := []float64{0, 0.05}
	att := AttackTolerance(g, fr, 32)
	if len(att.StdErr) != len(att.Points) {
		t.Fatalf("attack: %d bounds for %d points", len(att.StdErr), len(att.Points))
	}
	full := AttackTolerance(g, []float64{0}, 0)
	if full.StdErr[0] != 0 {
		t.Errorf("attack full enumeration: want zero-width bound, got %v", full.StdErr[0])
	}
}
