package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// EccentricityDistribution computes the node-diameter distribution of
// Figure 7(d-f): the histogram of node eccentricities normalized by the
// mean eccentricity, binned at binWidth (the paper uses ~0.1), with Y the
// fraction of sampled nodes per bin. maxSamples bounds the number of BFS
// runs (0 = all nodes).
func EccentricityDistribution(g *graph.Graph, maxSamples int, binWidth float64) stats.Series {
	return EccentricityDistributionWith(ball.NewEngine(g, 1), maxSamples, binWidth,
		rand.New(rand.NewSource(11)))
}

// EccentricityDistributionWith is EccentricityDistribution over an engine,
// with rng driving the node sampling. Eccentricities only need distances,
// so sampling runs through the engine's bit-parallel distance kernel and
// its cum-profile cache: when rng matches the expansion metric's center
// sampling the two metrics share one batched kernel pass per 64 centers.
func EccentricityDistributionWith(e *ball.Engine, maxSamples int, binWidth float64, rng *rand.Rand) stats.Series {
	out := stats.Series{Name: "eccentricity"}
	g := e.Graph()
	n := g.NumNodes()
	if n == 0 {
		return out
	}
	if binWidth <= 0 {
		binWidth = 0.1
	}
	cfg := ball.Config{MaxSources: maxSamples, Rand: rng}
	centers := ball.Centers(g, &cfg)
	profiles := e.CumProfiles(centers)
	sum := 0.0
	for _, p := range profiles {
		sum += float64(p.Eccentricity())
	}
	mean := sum / float64(len(profiles))
	if mean == 0 {
		return out
	}
	bins := map[int]int{}
	for _, p := range profiles {
		bins[int(float64(p.Eccentricity())/mean/binWidth)]++
	}
	// Each bin height is a sample proportion over the sampled centers, so it
	// carries a finite-population-corrected proportion standard error —
	// exactly zero when every node was sampled.
	for b, cnt := range bins {
		p := float64(cnt) / float64(len(profiles))
		out.AddWithErr(float64(b)*binWidth+binWidth/2, p,
			stats.PropStdErrFPC(p, len(profiles), n))
	}
	out.SortByX()
	return out
}
