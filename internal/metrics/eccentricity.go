package metrics

import (
	"math/rand"

	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// EccentricityDistribution computes the node-diameter distribution of
// Figure 7(d-f): the histogram of node eccentricities normalized by the
// mean eccentricity, binned at binWidth (the paper uses ~0.1), with Y the
// fraction of sampled nodes per bin. maxSamples bounds the number of BFS
// runs (0 = all nodes).
func EccentricityDistribution(g *graph.Graph, maxSamples int, binWidth float64) stats.Series {
	out := stats.Series{Name: "eccentricity"}
	n := g.NumNodes()
	if n == 0 {
		return out
	}
	if binWidth <= 0 {
		binWidth = 0.1
	}
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	if maxSamples > 0 && maxSamples < n {
		r := rand.New(rand.NewSource(11))
		perm := r.Perm(n)
		nodes = nodes[:maxSamples]
		for i := range nodes {
			nodes[i] = int32(perm[i])
		}
	}
	eccs := make([]float64, 0, len(nodes))
	sum := 0.0
	for _, v := range nodes {
		e := float64(g.Eccentricity(v))
		eccs = append(eccs, e)
		sum += e
	}
	mean := sum / float64(len(eccs))
	if mean == 0 {
		return out
	}
	bins := map[int]int{}
	for _, e := range eccs {
		bins[int(e/mean/binWidth)]++
	}
	for b, cnt := range bins {
		out.Add(float64(b)*binWidth+binWidth/2, float64(cnt)/float64(len(eccs)))
	}
	out.SortByX()
	return out
}
