package metrics

import (
	"math"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
)

func TestLaplacianSpectrumKnown(t *testing.T) {
	// Laplacian of K_n: eigenvalues n (n-1 times) and 0 (once).
	eig := LaplacianSpectrum(canonical.Complete(5))
	if math.Abs(eig[0]-5) > 1e-9 || math.Abs(eig[3]-5) > 1e-9 {
		t.Fatalf("K5 Laplacian = %v", eig)
	}
	if math.Abs(eig[4]) > 1e-9 {
		t.Fatalf("smallest eigenvalue = %v, want 0", eig[4])
	}
	// Path P2: eigenvalues 2, 0.
	eig = LaplacianSpectrum(canonical.Linear(2))
	if math.Abs(eig[0]-2) > 1e-9 || math.Abs(eig[1]) > 1e-9 {
		t.Fatalf("P2 Laplacian = %v", eig)
	}
}

func TestLaplacianZeroMultiplicityEqualsComponents(t *testing.T) {
	// The multiplicity of eigenvalue 0 equals the number of components.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	eig := LaplacianSpectrum(b.Graph())
	zeros := 0
	for _, ev := range eig {
		if math.Abs(ev) < 1e-9 {
			zeros++
		}
	}
	if zeros != 3 {
		t.Fatalf("zero multiplicity = %d, want 3", zeros)
	}
}

func TestEigenvalueOneMultiplicity(t *testing.T) {
	// A star K_{1,k} has Laplacian eigenvalues {0, 1 (k-1 times), k+1}.
	b := graph.NewBuilder(6)
	for i := int32(1); i < 6; i++ {
		b.AddEdge(0, i)
	}
	if m := EigenvalueOneMultiplicity(b.Graph(), 1e-8); m != 4 {
		t.Fatalf("star multiplicity = %d, want 4", m)
	}
	// Grids have none (Vukadinovic et al.'s discriminator).
	if m := EigenvalueOneMultiplicity(canonical.Mesh(4, 4), 1e-8); m != 0 {
		t.Fatalf("mesh multiplicity = %d, want 0", m)
	}
}

func TestEigenvalueOneSeparatesASLikeFromMesh(t *testing.T) {
	g := plrg.MustGenerate(newRand(11), plrg.Params{N: 120, Beta: 2.1})
	plrgMult := EigenvalueOneMultiplicity(g, 1e-6)
	meshMult := EigenvalueOneMultiplicity(canonical.Mesh(10, 10), 1e-6)
	if plrgMult <= meshMult {
		t.Fatalf("PLRG multiplicity %d should exceed mesh %d", plrgMult, meshMult)
	}
}

func TestSmallWorldness(t *testing.T) {
	// A PLRG is small-world-ish: high sigma driven by short paths; a large
	// mesh is not.
	g := plrg.MustGenerate(newRand(12), plrg.Params{N: 1500, Beta: 2.0})
	sw := SmallWorldness(g, 32)
	if sw.PathLength <= 1 || sw.Clustering < 0 {
		t.Fatalf("bad small-world stats %+v", sw)
	}
	mesh := SmallWorldness(canonical.Mesh(25, 25), 32)
	if mesh.Sigma >= 1 {
		t.Fatalf("mesh sigma = %v, want < 1 (not small-world)", mesh.Sigma)
	}
}

func TestHopPlotMonotoneAndSaturates(t *testing.T) {
	g := canonical.Tree(3, 5)
	s := HopPlot(g, 0, nil)
	n := float64(g.NumNodes())
	if s.Points[0].Y != n { // h=0: every node reaches itself
		t.Fatalf("hopplot(0) = %v, want %v", s.Points[0].Y, n)
	}
	for i := 1; i < s.Len(); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			t.Fatal("hop plot must be nondecreasing")
		}
	}
	last := s.Points[s.Len()-1]
	if math.Abs(last.Y-n*n) > 1e-6 {
		t.Fatalf("hopplot(max) = %v, want n^2 = %v", last.Y, n*n)
	}
}

func TestHopPlotSampled(t *testing.T) {
	g := canonical.Mesh(12, 12)
	full := HopPlot(g, 0, nil)
	sampled := HopPlot(g, 30, newRand(13))
	// Sampled estimate should be within ~25% of full at mid radius.
	h := 6.0
	f, sgot := full.YAt(h), sampled.YAt(h)
	if math.Abs(f-sgot)/f > 0.25 {
		t.Fatalf("sampled hopplot %v deviates from full %v", sgot, f)
	}
}
