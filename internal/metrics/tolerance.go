package metrics

import (
	"math/rand"
	"sort"

	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// AttackTolerance computes the Albert–Jeong–Barabási attack-tolerance curve
// (Figure 9(a-c)): the average pairwise shortest path length within the
// largest component after removing each fraction f of nodes in decreasing
// degree order.
func AttackTolerance(g *graph.Graph, fractions []float64, pathSamples int) stats.Series {
	order := nodesByDegreeDesc(g)
	s := removalCurve(g, order, fractions, pathSamples)
	s.Name = "attack"
	return s
}

// ErrorTolerance is AttackTolerance with uniformly random removal order
// (Figure 9(d-f)).
func ErrorTolerance(g *graph.Graph, fractions []float64, pathSamples int, r *rand.Rand) stats.Series {
	if r == nil {
		r = rand.New(rand.NewSource(13))
	}
	n := g.NumNodes()
	order := make([]int32, n)
	for i, p := range r.Perm(n) {
		order[i] = int32(p)
	}
	s := removalCurve(g, order, fractions, pathSamples)
	s.Name = "error"
	return s
}

func nodesByDegreeDesc(g *graph.Graph) []int32 {
	n := g.NumNodes()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

func removalCurve(g *graph.Graph, order []int32, fractions []float64, pathSamples int) stats.Series {
	var s stats.Series
	n := g.NumNodes()
	for _, f := range fractions {
		k := int(f * float64(n))
		sub, _ := g.RemoveNodes(order[:k])
		lc, _ := sub.LargestComponent()
		apl, se := AveragePathLengthBounds(lc, pathSamples)
		s.AddWithErr(f, apl, se)
	}
	return s
}

// AveragePathLength estimates the mean pairwise shortest-path length of a
// connected graph from up to maxSources source nodes (0 = all). The sources
// sweep through the bit-parallel MSBFS kernel, 64 per CSR pass, and the
// per-source sums come off its level counts; every partial sum is an exact
// integer in float64, so the result is identical to the scalar per-source
// BFS it replaced.
func AveragePathLength(g *graph.Graph, maxSources int) float64 {
	apl, _ := AveragePathLengthBounds(g, maxSources)
	return apl
}

// AveragePathLengthBounds is AveragePathLength plus a standard-error bound
// on the estimate: the finite-population-corrected standard error of the
// per-source mean path lengths, treating the sampled sources as a draw
// without replacement from the n nodes. When every node serves as a source
// the bound is exactly zero. The point estimate itself is byte-identical to
// the historic AveragePathLength (total distance over total pairs, not the
// mean of per-source means).
func AveragePathLengthBounds(g *graph.Graph, maxSources int) (apl, stderr float64) {
	n := g.NumNodes()
	if n < 2 {
		return 0, 0
	}
	sources := n
	if maxSources > 0 && maxSources < n {
		sources = maxSources
	}
	r := rand.New(rand.NewSource(int64(n)))
	perm := r.Perm(n)
	ms := graph.NewMSBFSScratch()
	totalDist, totalPairs := 0.0, 0.0
	perSource := make([]float64, 0, sources)
	for lo := 0; lo < sources; lo += graph.MSBFSWidth {
		hi := lo + graph.MSBFSWidth
		if hi > sources {
			hi = sources
		}
		batch := make([]int32, hi-lo)
		for i := range batch {
			batch[i] = int32(perm[lo+i])
		}
		ms.Run(g, batch)
		for i := range batch {
			srcDist, srcPairs := 0.0, -1.0 // the source itself is not a pair
			for h, cnt := range ms.LevelCounts(i) {
				srcDist += float64(h) * float64(cnt)
				srcPairs += float64(cnt)
			}
			totalDist += srcDist
			totalPairs += srcPairs
			if srcPairs > 0 {
				perSource = append(perSource, srcDist/srcPairs)
			}
		}
	}
	if totalPairs == 0 {
		return 0, 0
	}
	return totalDist / totalPairs, stats.MeanStdErrFPC(perSource, n)
}
