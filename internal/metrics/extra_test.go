package metrics

import (
	"math"
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestBallPathLengthCurveGrows(t *testing.T) {
	g := canonical.Mesh(20, 20)
	s := BallPathLengthCurve(g, defaultCfg(8))
	if s.Len() < 3 {
		t.Fatalf("points = %d", s.Len())
	}
	if s.Points[s.Len()-1].Y <= s.Points[0].Y {
		t.Fatal("mesh ball path length should grow with ball size")
	}
}

func TestBallPathLengthCompleteIsOne(t *testing.T) {
	g := canonical.Complete(40)
	s := BallPathLengthCurve(g, defaultCfg(5))
	for _, p := range s.Points {
		if math.Abs(p.Y-1) > 1e-9 {
			t.Fatalf("complete ball APL = %v at size %v", p.Y, p.X)
		}
	}
}

func TestSurfaceMaxFlowTreeIsOne(t *testing.T) {
	// In a tree there is exactly one path from the center to any surface
	// node.
	g := canonical.Tree(3, 5)
	s := SurfaceMaxFlowCurve(g, defaultCfg(8), 4)
	for _, p := range s.Points {
		if math.Abs(p.Y-1) > 1e-9 {
			t.Fatalf("tree surface flow = %v at size %v, want 1", p.Y, p.X)
		}
	}
}

func TestSurfaceMaxFlowRandomExceedsTree(t *testing.T) {
	// Random graphs offer multiple disjoint routes outward.
	r := defaultCfg(6)
	random := canonical.Random(newRand(3), 800, 0.008) // avg degree ~6.4
	s := SurfaceMaxFlowCurve(random, r, 6)
	if s.Len() == 0 {
		t.Fatal("no points")
	}
	last := s.Points[s.Len()-1]
	if last.Y < 1.5 {
		t.Fatalf("random surface flow = %v, want > 1.5", last.Y)
	}
}
