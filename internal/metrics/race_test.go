package metrics_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/metrics"
)

// TestBrandesRaceShort is the tier-2 race target for the betweenness
// reroute: a four-worker ball engine drives the distortion metric (whose
// top-roots ranking runs through the pooled Brandes kernels) concurrently
// with direct standalone SubgraphDistortion calls leasing from the shared
// workspace pools. The parallel series must stay bit-identical to the
// sequential engine, and the standalone values bit-identical to each other.
func TestBrandesRaceShort(t *testing.T) {
	g := canonical.Random(rand.New(rand.NewSource(31)), 300, 0.025)
	cfg := func() ball.Config {
		return ball.Config{MaxSources: 8, MaxBallSize: 220, Rand: rand.New(rand.NewSource(5))}
	}
	seq := metrics.DistortionWith(ball.NewEngine(g, 1), cfg(), 6)
	if len(seq.Points) == 0 {
		t.Fatal("empty distortion series")
	}
	sub := canonical.Random(rand.New(rand.NewSource(12)), 90, 0.08)
	wantSub := metrics.SubgraphDistortion(sub, 6)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		par := metrics.DistortionWith(ball.NewEngine(g, 4), cfg(), 6)
		if len(par.Points) != len(seq.Points) {
			t.Errorf("parallel series has %d points, sequential %d",
				len(par.Points), len(seq.Points))
			return
		}
		for i := range seq.Points {
			if par.Points[i] != seq.Points[i] {
				t.Errorf("point %d: parallel %v != sequential %v",
					i, par.Points[i], seq.Points[i])
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if got := metrics.SubgraphDistortion(sub, 6); math.Float64bits(got) != math.Float64bits(wantSub) {
					t.Errorf("standalone distortion %v != %v", got, wantSub)
					return
				}
			}
		}()
	}
	wg.Wait()
}
