package metrics

import (
	"math/rand"

	"topocmp/internal/ball"
	"topocmp/internal/graph"
	"topocmp/internal/stats"
)

// VertexCover returns an approximate minimum vertex cover of g: the better
// of the maximal-matching 2-approximation and a greedy max-degree cover.
// The size of this set is the paper's vertex-cover metric (Figure 8(a-c)).
func VertexCover(g *graph.Graph) []int32 {
	m := matchingCover(g)
	gr := greedyCover(g)
	if len(gr) < len(m) {
		return gr
	}
	return m
}

// VertexCoverCurve computes the vertex-cover size of ball subgraphs as a
// function of ball size, the ball-growing form used in Figure 8(a-c).
func VertexCoverCurve(g *graph.Graph, cfg ball.Config) stats.Series {
	return VertexCoverCurveWith(ball.NewEngine(g, 1), cfg)
}

// VertexCoverCurveWith is VertexCoverCurve over an engine: balls grow on
// the worker pool and their subgraphs come from the shared ball cache.
func VertexCoverCurveWith(e *ball.Engine, cfg ball.Config) stats.Series {
	if cfg.MinBallSize == 0 {
		cfg.MinBallSize = 2
	}
	raw := e.BallPoints(cfg, 0, func(sub *graph.Graph, _ *rand.Rand) (float64, bool) {
		return float64(len(VertexCover(sub))), true
	})
	s := stats.Bucketize(raw, bucketRatio)
	s.Name = "vertexcover"
	return s
}

// matchingCover takes both endpoints of a greedily built maximal matching —
// the classical 2-approximation.
func matchingCover(g *graph.Graph) []int32 {
	n := g.NumNodes()
	used := make([]bool, n)
	var cover []int32
	for u := int32(0); u < int32(n); u++ {
		if used[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if !used[v] && v != u {
				used[u] = true
				used[v] = true
				cover = append(cover, u, v)
				break
			}
		}
	}
	return cover
}

// greedyCover repeatedly takes the node with the most uncovered incident
// edges, using a lazily updated max-heap. The heap is a typed port of
// container/heap's sift order (same Init / Push / Pop element movement), so
// the cover comes out byte-identical to the historical boxed version while
// the hot loop stays free of per-element interface allocations.
func greedyCover(g *graph.Graph) []int32 {
	n := g.NumNodes()
	uncov := make([]int, n) // uncovered incident edges per node
	inCover := make([]bool, n)
	h := make([]coverCand, 0, n)
	for v := int32(0); v < int32(n); v++ {
		uncov[v] = g.Degree(v)
		if uncov[v] > 0 {
			h = append(h, coverCand{v, uncov[v]})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		coverDown(h, i, len(h))
	}
	var cover []int32
	for len(h) > 0 {
		last := len(h) - 1
		h[0], h[last] = h[last], h[0]
		coverDown(h, 0, last)
		c := h[last]
		h = h[:last]
		u := c.v
		if inCover[u] || c.count != uncov[u] {
			continue // stale entry
		}
		if uncov[u] == 0 {
			break
		}
		inCover[u] = true
		cover = append(cover, u)
		uncov[u] = 0
		for _, v := range g.Neighbors(u) {
			if !inCover[v] && uncov[v] > 0 {
				uncov[v]--
				if uncov[v] > 0 {
					h = append(h, coverCand{v, uncov[v]})
					coverUp(h, len(h)-1)
				}
			}
		}
	}
	return cover
}

type coverCand struct {
	v     int32
	count int
}

// coverLess orders candidates by uncovered count descending, node id
// ascending — a strict total order, so heap pops are fully deterministic.
func coverLess(a, b coverCand) bool {
	if a.count != b.count {
		return a.count > b.count
	}
	return a.v < b.v
}

func coverUp(h []coverCand, j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !coverLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func coverDown(h []coverCand, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && coverLess(h[j2], h[j1]) {
			j = j2
		}
		if !coverLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// WeightedVertexCover computes a 2-approximate minimum weighted vertex
// cover of the pair graph given as edges over nodes with weights, using the
// local-ratio (primal-dual) rule: for each uncovered pair, pay the smaller
// residual weight on both endpoints; a node whose residual hits zero joins
// the cover. It returns the total original weight of the cover. This is the
// subroutine behind the paper's link values (§5).
func WeightedVertexCover(pairs [][2]int32, weight map[int32]float64) float64 {
	residual := make(map[int32]float64, len(weight))
	for v, w := range weight {
		residual[v] = w
	}
	inCover := make(map[int32]bool)
	for _, p := range pairs {
		u, v := p[0], p[1]
		if inCover[u] || inCover[v] {
			continue
		}
		ru, rv := residual[u], residual[v]
		m := ru
		if rv < m {
			m = rv
		}
		residual[u] = ru - m
		residual[v] = rv - m
		if residual[u] <= 1e-12 {
			inCover[u] = true
		}
		if residual[v] <= 1e-12 && v != u {
			inCover[v] = true
		}
	}
	total := 0.0
	for v := range inCover {
		total += weight[v]
	}
	return total
}
