// Package partition implements balanced graph bisection in the style of
// Karypis–Kumar multilevel partitioning ("A Fast and High Quality Multilevel
// Scheme for Partitioning Irregular Graphs", SISC 1998), the heuristic the
// paper uses ([25]) to compute its resilience metric: the minimum cut-set
// size of a balanced bi-partition.
//
// The pipeline is the classic three phases:
//
//  1. Coarsening by heavy-edge matching until the graph is small.
//  2. Initial bisection of the coarsest graph by greedy BFS region growing
//     from several seeds, keeping the best cut.
//  3. Uncoarsening with Fiduccia–Mattheyses refinement (hill climbing plus
//     negative-gain exploration with rollback to the best prefix) at each
//     level.
//
// All internal iteration orders are deterministic, so a fixed Options.Rand
// reproduces the same partition.
//
// The solver is allocation-free in steady state: every phase runs on a
// Workspace whose level arena (CSR-flattened weighted graphs, matching and
// side buffers, the FM gain heap) is grown once and recycled across calls.
// Resilience partitions hundreds of thousands of ball subgraphs per suite,
// so hot paths hold a Workspace (one per worker — it is not safe for
// concurrent use) and call CutSizeWith / BisectWith; the package-level
// CutSize / Bisect wrappers build a throwaway Workspace per call.
package partition

import (
	"math/rand"
	"slices"

	"topocmp/internal/graph"
)

// wedge is a weighted adjacency entry.
type wedge struct {
	to int32
	w  int32
}

// level is one rung of the multilevel hierarchy: a CSR-flattened weighted
// graph (node weights count collapsed original vertices, edge weights count
// collapsed original edges; adjacency runs are sorted by target id for
// deterministic iteration), the cmap projecting this level's nodes onto the
// next-coarser level, and this level's side buffer. All slices are owned by
// the workspace and recycled across calls.
type level struct {
	nodeW []int32
	off   []int32
	adj   []wedge
	cmap  []int32
	side  []bool
}

func (l *level) numNodes() int { return len(l.nodeW) }

func (l *level) edgesOf(v int32) []wedge { return l.adj[l.off[v]:l.off[v+1]] }

func (l *level) totalNodeW() int {
	t := 0
	for _, x := range l.nodeW {
		t += int(x)
	}
	return t
}

// fromGraph loads g into the level as the finest rung: unit node and edge
// weights, adjacency copied straight out of g's CSR (already sorted).
func (l *level) fromGraph(g *graph.Graph) {
	n := g.NumNodes()
	l.nodeW = growInt32(l.nodeW, n)
	for i := range l.nodeW {
		l.nodeW[i] = 1
	}
	l.off = growInt32(l.off, n+1)
	l.adj = growWedge(l.adj, 2*g.NumEdges())
	idx := int32(0)
	for v := int32(0); v < int32(n); v++ {
		l.off[v] = idx
		for _, u := range g.Neighbors(v) {
			l.adj[idx] = wedge{u, 1}
			idx++
		}
	}
	l.off[n] = idx
}

// Workspace holds every buffer the multilevel pipeline needs, grown on
// first use and recycled across calls, so steady-state bisection does not
// allocate. A Workspace is not safe for concurrent use; give each worker
// its own (the ball engine pools one per worker).
type Workspace struct {
	levels []*level

	perm    []int   // coarsening visit order (Fisher–Yates into a reused buffer)
	match   []int32 // heavy-edge matching partner
	memberA []int32 // finest member of each coarse node
	memberB []int32 // second member, -1 for unmatched singletons

	acc    graph.Stamp // coarse-adjacency merge liveness, one epoch per coarse node
	accPos []int32     // position of a stamped target in the open adjacency run

	visit graph.Stamp // region-growing visited marks, one epoch per seed
	queue []int32
	cand  []bool // candidate side assignment per region-growing seed

	gain    []int // FM gains
	moved   []bool
	history []int32
	heap    []moveCand
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Options tunes the bisection.
type Options struct {
	// Balance is the maximum allowed share of total node weight on the
	// heavier side; the paper's "approximately n/2" corresponds to ~0.55.
	Balance float64
	// Seeds is the number of region-growing starts tried on the coarsest
	// graph.
	Seeds int
	// Refinements is the number of FM passes per uncoarsening level.
	Refinements int
	// Rand drives tie-breaking; nil uses a fixed seed.
	Rand *rand.Rand
}

func (o *Options) defaults() {
	if o.Balance == 0 {
		o.Balance = 0.55
	}
	if o.Seeds == 0 {
		o.Seeds = 4
	}
	if o.Refinements == 0 {
		o.Refinements = 4
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// Bisect computes a balanced bipartition of g and returns the cut size (the
// number of edges crossing the partition) and the side assignment. Graphs
// with fewer than two nodes have cut 0. One-shot convenience over a
// throwaway Workspace; hot paths should hold a Workspace and call
// BisectWith.
func Bisect(g *graph.Graph, opts Options) (int, []bool) {
	return BisectWith(NewWorkspace(), g, opts)
}

// CutSize is a convenience wrapper returning only the cut value.
func CutSize(g *graph.Graph, opts Options) int {
	c, _ := bisect(NewWorkspace(), g, opts)
	return c
}

// BisectWith is Bisect running on ws's recycled buffers. The returned side
// slice is freshly allocated (it does not alias the workspace), so callers
// may retain it across further calls.
func BisectWith(ws *Workspace, g *graph.Graph, opts Options) (int, []bool) {
	cut, side := bisect(ws, g, opts)
	out := make([]bool, g.NumNodes())
	copy(out, side)
	return cut, out
}

// CutSizeWith is CutSize running on ws's recycled buffers; it performs no
// per-call allocation once the workspace is warm.
func CutSizeWith(ws *Workspace, g *graph.Graph, opts Options) int {
	c, _ := bisect(ws, g, opts)
	return c
}

// bisect runs the three phases; the returned side aliases workspace storage
// and is valid until the next call.
func bisect(ws *Workspace, g *graph.Graph, opts Options) (int, []bool) {
	opts.defaults()
	n := g.NumNodes()
	if n < 2 {
		l0 := ws.level0()
		l0.side = growBool(l0.side, n)
		for i := range l0.side {
			l0.side[i] = false
		}
		return 0, l0.side
	}
	const coarsestSize = 48
	l0 := ws.level0()
	l0.fromGraph(g)
	depth := 0
	cur := l0
	for cur.numNodes() > coarsestSize {
		next := ws.levelAt(depth + 1)
		ws.coarsen(cur, next, opts.Rand)
		if next.numNodes() >= cur.numNodes() {
			break // no progress
		}
		depth++
		cur = next
	}
	cur.side = growBool(cur.side, cur.numNodes())
	ws.initialBisection(cur, cur.side, &opts)
	ws.refine(cur, cur.side, &opts)
	for i := depth - 1; i >= 0; i-- {
		lv := ws.levels[i]
		lv.side = growBool(lv.side, lv.numNodes())
		for v := range lv.side {
			lv.side[v] = ws.levels[i+1].side[lv.cmap[v]]
		}
		ws.refine(lv, lv.side, &opts)
	}
	return cutOf(l0, l0.side), l0.side
}

func (ws *Workspace) level0() *level { return ws.levelAt(0) }

func (ws *Workspace) levelAt(i int) *level {
	for len(ws.levels) <= i {
		ws.levels = append(ws.levels, &level{})
	}
	return ws.levels[i]
}

// permInto refills ws.perm with opts.Rand.Perm(n) using the exact
// math/rand.Perm recurrence, so the RNG stream (and therefore every
// downstream tie-break) is bit-identical to the historical Perm call while
// reusing one buffer.
func (ws *Workspace) permInto(r *rand.Rand, n int) []int {
	if cap(ws.perm) < n {
		ws.perm = make([]int, n)
	}
	m := ws.perm[:n]
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// coarsen performs heavy-edge matching on fine (visit nodes in random
// order, match each unmatched node with its unmatched neighbor of heaviest
// edge weight, smallest id on ties) and contracts the matching into coarse.
func (ws *Workspace) coarsen(fine, coarse *level, r *rand.Rand) {
	n := fine.numNodes()
	ws.match = growInt32(ws.match, n)
	match := ws.match
	for i := range match {
		match[i] = -1
	}
	for _, ui := range ws.permInto(r, n) {
		u := int32(ui)
		if match[u] != -1 {
			continue
		}
		bestV, bestW := int32(-1), int32(-1)
		for _, e := range fine.edgesOf(u) {
			if match[e.to] == -1 && e.to != u && e.w > bestW {
				bestV, bestW = e.to, e.w
			}
		}
		if bestV >= 0 {
			match[u] = bestV
			match[bestV] = u
		} else {
			match[u] = u
		}
	}
	fine.cmap = growInt32(fine.cmap, n)
	cmap := fine.cmap
	for i := range cmap {
		cmap[i] = -1
	}
	ws.memberA = growInt32(ws.memberA, n)
	ws.memberB = growInt32(ws.memberB, n)
	next := int32(0)
	for u := int32(0); u < int32(n); u++ {
		if cmap[u] != -1 {
			continue
		}
		cmap[u] = next
		ws.memberA[next] = u
		ws.memberB[next] = -1
		if match[u] != u && match[u] >= 0 {
			cmap[match[u]] = next
			ws.memberB[next] = match[u]
		}
		next++
	}
	nc := int(next)

	// Contract: per coarse node, merge its members' neighbor runs with an
	// epoch-stamped accumulator (deterministic replacement for the
	// historical per-node map), then sort the run by target id — the same
	// sorted, weight-summed adjacency the map build produced.
	coarse.nodeW = growInt32(coarse.nodeW, nc)
	for i := range coarse.nodeW[:nc] {
		coarse.nodeW[i] = 0
	}
	coarse.off = growInt32(coarse.off, nc+1)
	coarse.adj = coarse.adj[:0]
	ws.accPos = growInt32(ws.accPos, nc)
	for cu := int32(0); cu < next; cu++ {
		ws.acc.Begin(nc)
		start := len(coarse.adj)
		coarse.off[cu] = int32(start)
		for _, u := range [2]int32{ws.memberA[cu], ws.memberB[cu]} {
			if u < 0 {
				continue
			}
			coarse.nodeW[cu] += fine.nodeW[u]
			for _, e := range fine.edgesOf(u) {
				cv := cmap[e.to]
				if cv == cu {
					continue
				}
				if ws.acc.Visit(cv) {
					ws.accPos[cv] = int32(len(coarse.adj) - start)
					coarse.adj = append(coarse.adj, wedge{cv, e.w})
				} else {
					coarse.adj[start+int(ws.accPos[cv])].w += e.w
				}
			}
		}
		slices.SortFunc(coarse.adj[start:], func(a, b wedge) int {
			return int(a.to) - int(b.to)
		})
	}
	coarse.off[nc] = int32(len(coarse.adj))
}

// initialBisection grows a region by BFS from several random seeds and
// writes the assignment with the smallest cut into best.
func (ws *Workspace) initialBisection(l *level, best []bool, opts *Options) {
	n := l.numNodes()
	total := l.totalNodeW()
	ws.cand = growBool(ws.cand, n)
	bestCut := -1
	for s := 0; s < opts.Seeds; s++ {
		seed := int32(opts.Rand.Intn(n))
		ws.visit.Begin(n)
		cand := ws.cand
		for i := range cand {
			cand[i] = false
		}
		ws.queue = append(ws.queue[:0], seed)
		ws.visit.Visit(seed)
		grown := 0
		for head := 0; head < len(ws.queue) && grown*2 < total; head++ {
			u := ws.queue[head]
			cand[u] = true
			grown += int(l.nodeW[u])
			for _, e := range l.edgesOf(u) {
				if ws.visit.Visit(e.to) {
					ws.queue = append(ws.queue, e.to)
				}
			}
		}
		for v := int32(0); grown*2 < total && v < int32(n); v++ {
			if !cand[v] {
				cand[v] = true
				grown += int(l.nodeW[v])
			}
		}
		cut := cutOf(l, cand)
		if bestCut == -1 || cut < bestCut {
			bestCut = cut
			copy(best, cand)
		}
	}
}

// moveCand is a heap entry: a candidate node move with the gain it had when
// pushed. Entries go stale when neighboring moves change the gain; stale
// entries are discarded lazily on pop. Ties break on node id so refinement
// is deterministic.
type moveCand struct {
	v    int32
	gain int
}

// The gain heap is a typed port of container/heap's sift algorithms (same
// Init / Push / Pop element order, so pop order is bit-identical to the
// historical heap.Interface implementation) without the per-operation `any`
// boxing.

func gainLess(h []moveCand, i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}

func gainDown(h []moveCand, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && gainLess(h, j2, j1) {
			j = j2
		}
		if !gainLess(h, j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func gainUp(h []moveCand, j int) {
	for {
		i := (j - 1) / 2
		if i == j || !gainLess(h, j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// refine runs Fiduccia–Mattheyses passes: each pass tentatively moves every
// node once in best-gain-first order (negative gains included, balance
// respected), then rolls back to the prefix of moves with the smallest cut.
func (ws *Workspace) refine(l *level, side []bool, opts *Options) {
	n := l.numNodes()
	total := l.totalNodeW()
	maxSide := int(opts.Balance * float64(total))
	if maxSide*2 < total {
		maxSide = (total + 1) / 2
	}
	ws.gain = growInt(ws.gain, n)
	ws.moved = growBool(ws.moved, n)
	gain, moved := ws.gain, ws.moved
	for pass := 0; pass < opts.Refinements; pass++ {
		weightTrue := 0
		for v := 0; v < n; v++ {
			if side[v] {
				weightTrue += int(l.nodeW[v])
			}
		}
		for v := int32(0); v < int32(n); v++ {
			g := 0
			for _, e := range l.edgesOf(v) {
				if side[e.to] == side[v] {
					g -= int(e.w)
				} else {
					g += int(e.w)
				}
			}
			gain[v] = g
		}
		h := ws.heap[:0]
		for v := int32(0); v < int32(n); v++ {
			h = append(h, moveCand{v, gain[v]})
		}
		for i := len(h)/2 - 1; i >= 0; i-- {
			gainDown(h, i, len(h))
		}
		for i := range moved {
			moved[i] = false
		}
		history := ws.history[:0]
		cumGain, bestGain, bestPrefix := 0, 0, 0
		for len(h) > 0 {
			last := len(h) - 1
			h[0], h[last] = h[last], h[0]
			gainDown(h, 0, last)
			c := h[last]
			h = h[:last]
			v := c.v
			if moved[v] || c.gain != gain[v] {
				continue
			}
			var newTrue int
			if side[v] {
				newTrue = weightTrue - int(l.nodeW[v])
			} else {
				newTrue = weightTrue + int(l.nodeW[v])
			}
			if newTrue > maxSide || total-newTrue > maxSide {
				continue
			}
			weightTrue = newTrue
			side[v] = !side[v]
			moved[v] = true
			history = append(history, v)
			cumGain += gain[v]
			gain[v] = -gain[v]
			if cumGain > bestGain {
				bestGain = cumGain
				bestPrefix = len(history)
			}
			for _, e := range l.edgesOf(v) {
				if moved[e.to] {
					continue
				}
				if side[e.to] == side[v] {
					gain[e.to] -= 2 * int(e.w)
				} else {
					gain[e.to] += 2 * int(e.w)
				}
				h = append(h, moveCand{e.to, gain[e.to]})
				gainUp(h, len(h)-1)
			}
		}
		// Roll back moves beyond the best prefix.
		for i := len(history) - 1; i >= bestPrefix; i-- {
			side[history[i]] = !side[history[i]]
		}
		ws.heap = h[:0]
		ws.history = history[:0]
		if bestGain == 0 {
			break
		}
	}
}

func cutOf(l *level, side []bool) int {
	cut := 0
	for u := int32(0); u < int32(l.numNodes()); u++ {
		for _, e := range l.edgesOf(u) {
			if u < e.to && side[u] != side[e.to] {
				cut += int(e.w)
			}
		}
	}
	return cut
}

// growInt32 returns buf resliced to length n, reallocating only when the
// capacity is short. Contents are unspecified.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func growWedge(buf []wedge, n int) []wedge {
	if cap(buf) < n {
		return make([]wedge, n)
	}
	return buf[:n]
}
