// Package partition implements balanced graph bisection in the style of
// Karypis–Kumar multilevel partitioning ("A Fast and High Quality Multilevel
// Scheme for Partitioning Irregular Graphs", SISC 1998), the heuristic the
// paper uses ([25]) to compute its resilience metric: the minimum cut-set
// size of a balanced bi-partition.
//
// The pipeline is the classic three phases:
//
//  1. Coarsening by heavy-edge matching until the graph is small.
//  2. Initial bisection of the coarsest graph by greedy BFS region growing
//     from several seeds, keeping the best cut.
//  3. Uncoarsening with Fiduccia–Mattheyses refinement (hill climbing plus
//     negative-gain exploration with rollback to the best prefix) at each
//     level.
//
// All internal iteration orders are deterministic, so a fixed Options.Rand
// reproduces the same partition.
package partition

import (
	"container/heap"
	"math/rand"
	"sort"

	"topocmp/internal/graph"
)

// wedge is a weighted adjacency entry.
type wedge struct {
	to int32
	w  int
}

// weighted is the internal multilevel representation: node weights count
// collapsed original vertices, edge weights count collapsed original edges.
// Adjacency lists are sorted by target id for deterministic iteration.
type weighted struct {
	nodeW []int
	adj   [][]wedge
}

func fromGraph(g *graph.Graph) *weighted {
	n := g.NumNodes()
	w := &weighted{nodeW: make([]int, n), adj: make([][]wedge, n)}
	for v := int32(0); v < int32(n); v++ {
		w.nodeW[v] = 1
		nb := g.Neighbors(v)
		w.adj[v] = make([]wedge, len(nb))
		for i, u := range nb {
			w.adj[v][i] = wedge{u, 1}
		}
	}
	return w
}

func (w *weighted) numNodes() int { return len(w.nodeW) }

func (w *weighted) totalNodeW() int {
	t := 0
	for _, x := range w.nodeW {
		t += x
	}
	return t
}

// Options tunes the bisection.
type Options struct {
	// Balance is the maximum allowed share of total node weight on the
	// heavier side; the paper's "approximately n/2" corresponds to ~0.55.
	Balance float64
	// Seeds is the number of region-growing starts tried on the coarsest
	// graph.
	Seeds int
	// Refinements is the number of FM passes per uncoarsening level.
	Refinements int
	// Rand drives tie-breaking; nil uses a fixed seed.
	Rand *rand.Rand
}

func (o *Options) defaults() {
	if o.Balance == 0 {
		o.Balance = 0.55
	}
	if o.Seeds == 0 {
		o.Seeds = 4
	}
	if o.Refinements == 0 {
		o.Refinements = 4
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
}

// Bisect computes a balanced bipartition of g and returns the cut size (the
// number of edges crossing the partition) and the side assignment. Graphs
// with fewer than two nodes have cut 0.
func Bisect(g *graph.Graph, opts Options) (int, []bool) {
	opts.defaults()
	n := g.NumNodes()
	if n < 2 {
		return 0, make([]bool, n)
	}
	w := fromGraph(g)
	return bisectWeighted(w, &opts)
}

// CutSize is a convenience wrapper returning only the cut value.
func CutSize(g *graph.Graph, opts Options) int {
	c, _ := Bisect(g, opts)
	return c
}

func bisectWeighted(w *weighted, opts *Options) (int, []bool) {
	const coarsestSize = 48
	type level struct {
		w    *weighted
		cmap []int32 // fine node -> coarse node
	}
	var levels []level
	cur := w
	for cur.numNodes() > coarsestSize {
		cmap, coarse := coarsen(cur, opts.Rand)
		if coarse.numNodes() >= cur.numNodes() {
			break // no progress
		}
		levels = append(levels, level{w: cur, cmap: cmap})
		cur = coarse
	}
	side := initialBisection(cur, opts)
	refine(cur, side, opts)
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]bool, lv.w.numNodes())
		for v := range fine {
			fine[v] = side[lv.cmap[v]]
		}
		side = fine
		refine(lv.w, side, opts)
	}
	return cutOf(w, side), side
}

// coarsen performs heavy-edge matching: visit nodes in random order, match
// each unmatched node with its unmatched neighbor of heaviest edge weight
// (smallest id on ties).
func coarsen(w *weighted, r *rand.Rand) ([]int32, *weighted) {
	n := w.numNodes()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(n)
	for _, ui := range order {
		u := int32(ui)
		if match[u] != -1 {
			continue
		}
		bestV, bestW := int32(-1), -1
		for _, e := range w.adj[u] {
			if match[e.to] == -1 && e.to != u && e.w > bestW {
				bestV, bestW = e.to, e.w
			}
		}
		if bestV >= 0 {
			match[u] = bestV
			match[bestV] = u
		} else {
			match[u] = u
		}
	}
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for u := int32(0); u < int32(n); u++ {
		if cmap[u] != -1 {
			continue
		}
		cmap[u] = next
		if match[u] != u && match[u] >= 0 {
			cmap[match[u]] = next
		}
		next++
	}
	coarse := &weighted{nodeW: make([]int, next), adj: make([][]wedge, next)}
	accum := make([]map[int32]int, next)
	for i := range accum {
		accum[i] = map[int32]int{}
	}
	for u := int32(0); u < int32(n); u++ {
		cu := cmap[u]
		coarse.nodeW[cu] += w.nodeW[u]
		for _, e := range w.adj[u] {
			cv := cmap[e.to]
			if cu != cv {
				accum[cu][cv] += e.w
			}
		}
	}
	for cu := range accum {
		lst := make([]wedge, 0, len(accum[cu]))
		for cv, ew := range accum[cu] {
			lst = append(lst, wedge{cv, ew})
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i].to < lst[j].to })
		coarse.adj[cu] = lst
	}
	return cmap, coarse
}

// initialBisection grows a region by BFS from several random seeds and keeps
// the assignment with the smallest cut.
func initialBisection(w *weighted, opts *Options) []bool {
	n := w.numNodes()
	total := w.totalNodeW()
	bestCut := -1
	var best []bool
	for s := 0; s < opts.Seeds; s++ {
		seed := int32(opts.Rand.Intn(n))
		side := make([]bool, n)
		visited := make([]bool, n)
		queue := []int32{seed}
		visited[seed] = true
		grown := 0
		for head := 0; head < len(queue) && grown*2 < total; head++ {
			u := queue[head]
			side[u] = true
			grown += w.nodeW[u]
			for _, e := range w.adj[u] {
				if !visited[e.to] {
					visited[e.to] = true
					queue = append(queue, e.to)
				}
			}
		}
		for v := int32(0); grown*2 < total && v < int32(n); v++ {
			if !side[v] {
				side[v] = true
				grown += w.nodeW[v]
			}
		}
		cut := cutOf(w, side)
		if bestCut == -1 || cut < bestCut {
			bestCut = cut
			best = side
		}
	}
	return best
}

// moveCand is a heap entry: a candidate node move with the gain it had when
// pushed. Entries go stale when neighboring moves change the gain; stale
// entries are discarded lazily on pop. Ties break on node id so refinement
// is deterministic.
type moveCand struct {
	v    int32
	gain int
}

type gainHeap []moveCand

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(moveCand)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refine runs Fiduccia–Mattheyses passes: each pass tentatively moves every
// node once in best-gain-first order (negative gains included, balance
// respected), then rolls back to the prefix of moves with the smallest cut.
func refine(w *weighted, side []bool, opts *Options) {
	n := w.numNodes()
	total := w.totalNodeW()
	maxSide := int(opts.Balance * float64(total))
	if maxSide*2 < total {
		maxSide = (total + 1) / 2
	}
	gain := make([]int, n)
	for pass := 0; pass < opts.Refinements; pass++ {
		weightTrue := 0
		for v := 0; v < n; v++ {
			if side[v] {
				weightTrue += w.nodeW[v]
			}
		}
		for v := int32(0); v < int32(n); v++ {
			g := 0
			for _, e := range w.adj[v] {
				if side[e.to] == side[v] {
					g -= e.w
				} else {
					g += e.w
				}
			}
			gain[v] = g
		}
		h := make(gainHeap, 0, n)
		for v := int32(0); v < int32(n); v++ {
			h = append(h, moveCand{v, gain[v]})
		}
		heap.Init(&h)
		moved := make([]bool, n)
		var history []int32
		cumGain, bestGain, bestPrefix := 0, 0, 0
		for h.Len() > 0 {
			c := heap.Pop(&h).(moveCand)
			v := c.v
			if moved[v] || c.gain != gain[v] {
				continue
			}
			var newTrue int
			if side[v] {
				newTrue = weightTrue - w.nodeW[v]
			} else {
				newTrue = weightTrue + w.nodeW[v]
			}
			if newTrue > maxSide || total-newTrue > maxSide {
				continue
			}
			weightTrue = newTrue
			side[v] = !side[v]
			moved[v] = true
			history = append(history, v)
			cumGain += gain[v]
			gain[v] = -gain[v]
			if cumGain > bestGain {
				bestGain = cumGain
				bestPrefix = len(history)
			}
			for _, e := range w.adj[v] {
				if moved[e.to] {
					continue
				}
				if side[e.to] == side[v] {
					gain[e.to] -= 2 * e.w
				} else {
					gain[e.to] += 2 * e.w
				}
				heap.Push(&h, moveCand{e.to, gain[e.to]})
			}
		}
		// Roll back moves beyond the best prefix.
		for i := len(history) - 1; i >= bestPrefix; i-- {
			side[history[i]] = !side[history[i]]
		}
		if bestGain == 0 {
			break
		}
	}
}

func cutOf(w *weighted, side []bool) int {
	cut := 0
	for u := 0; u < w.numNodes(); u++ {
		for _, e := range w.adj[u] {
			if int32(u) < e.to && side[u] != side[e.to] {
				cut += e.w
			}
		}
	}
	return cut
}
