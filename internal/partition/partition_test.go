package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/graph"
)

// balanced verifies the side assignment respects the balance bound.
func balanced(side []bool, balance float64) bool {
	t := 0
	for _, s := range side {
		if s {
			t++
		}
	}
	n := len(side)
	heavier := t
	if n-t > heavier {
		heavier = n - t
	}
	return float64(heavier) <= balance*float64(n)+1
}

// trueCut counts edges crossing the partition.
func trueCut(g *graph.Graph, side []bool) int {
	cut := 0
	for _, e := range g.Edges() {
		if side[e.U] != side[e.V] {
			cut++
		}
	}
	return cut
}

func TestTreeCutIsTiny(t *testing.T) {
	// A balanced bipartition of a path cuts exactly 1 edge.
	g := canonical.Linear(100)
	cut, side := Bisect(g, Options{})
	if cut != trueCut(g, side) {
		t.Fatalf("reported cut %d != actual %d", cut, trueCut(g, side))
	}
	if cut != 1 {
		t.Fatalf("path cut = %d, want 1", cut)
	}
	if !balanced(side, 0.56) {
		t.Fatal("partition unbalanced")
	}
}

func TestBinaryTreeCutSmall(t *testing.T) {
	g := canonical.Tree(2, 9) // 1023 nodes
	cut, side := Bisect(g, Options{})
	if !balanced(side, 0.56) {
		t.Fatal("partition unbalanced")
	}
	// A tree always admits a small balanced cut; the heuristic should find
	// a cut far below the mesh/random regime.
	if cut > 12 {
		t.Fatalf("tree cut = %d, want small (<= 12)", cut)
	}
}

func TestMeshCutNearSqrtN(t *testing.T) {
	g := canonical.Mesh(24, 24) // 576 nodes
	cut, side := Bisect(g, Options{})
	if !balanced(side, 0.56) {
		t.Fatal("partition unbalanced")
	}
	// Optimal is 24 (a straight cut); heuristics should stay within ~2x.
	if cut < 24 || cut > 60 {
		t.Fatalf("mesh cut = %d, want in [24, 60]", cut)
	}
}

func TestRandomCutLarge(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := canonical.Random(r, 600, 0.02) // avg degree ~12
	cut, side := Bisect(g, Options{})
	if !balanced(side, 0.56) {
		t.Fatal("partition unbalanced")
	}
	// Random graph bisection width is Θ(E); expect a cut comparable to a
	// constant fraction of edges, far above the mesh regime.
	if cut < g.NumEdges()/8 {
		t.Fatalf("random cut = %d of %d edges; too small", cut, g.NumEdges())
	}
}

func TestOrderingTreeMeshRandom(t *testing.T) {
	// The calibration the paper relies on: R(tree) << R(mesh) << R(random)
	// at comparable sizes.
	r := rand.New(rand.NewSource(2))
	tree := canonical.Tree(2, 9)                       // 1023
	mesh := canonical.Mesh(32, 32)                     // 1024
	random := canonical.Random(r, 1100, 4.18/1100.0*2) // ~avg degree 4
	tc := CutSize(tree, Options{})
	mc := CutSize(mesh, Options{})
	rc := CutSize(random, Options{})
	if !(tc < mc && mc < rc) {
		t.Fatalf("cut ordering tree=%d mesh=%d random=%d violated", tc, mc, rc)
	}
}

func TestTinyGraphs(t *testing.T) {
	if c, _ := Bisect(canonical.Linear(0), Options{}); c != 0 {
		t.Fatal("empty graph cut != 0")
	}
	if c, _ := Bisect(canonical.Linear(1), Options{}); c != 0 {
		t.Fatal("single node cut != 0")
	}
	if c, _ := Bisect(canonical.Linear(2), Options{}); c != 1 {
		t.Fatalf("two-node path cut = %d, want 1", c)
	}
	if c, _ := Bisect(canonical.Complete(2), Options{}); c != 1 {
		t.Fatal("K2 cut != 1")
	}
}

func TestCompleteGraphCut(t *testing.T) {
	g := canonical.Complete(16)
	cut, _ := Bisect(g, Options{})
	if cut != 64 { // 8*8 crossing edges
		t.Fatalf("K16 balanced cut = %d, want 64", cut)
	}
}

// Property: the reported cut always equals the actual crossing-edge count
// and the partition is balanced.
func TestCutConsistencyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%120 + 10
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Graph()
		cut, side := Bisect(g, Options{Rand: rand.New(rand.NewSource(seed + 1))})
		return cut == trueCut(g, side) && balanced(side, 0.58)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWithFixedRand(t *testing.T) {
	g := canonical.Mesh(15, 15)
	c1 := CutSize(g, Options{Rand: rand.New(rand.NewSource(3))})
	c2 := CutSize(g, Options{Rand: rand.New(rand.NewSource(3))})
	if c1 != c2 {
		t.Fatalf("same seed gave cuts %d and %d", c1, c2)
	}
}

func TestScalingSanity(t *testing.T) {
	// Mesh cut should grow roughly like sqrt(n): quadrupling the mesh
	// should about double the cut.
	small := CutSize(canonical.Mesh(12, 12), Options{})
	large := CutSize(canonical.Mesh(24, 24), Options{})
	ratio := float64(large) / float64(small)
	if ratio < 1.3 || ratio > 3.5 {
		t.Fatalf("mesh cut scaling ratio = %.2f (small=%d large=%d), want ~2",
			ratio, small, large)
	}
	if math.IsNaN(ratio) {
		t.Fatal("NaN ratio")
	}
}

func BenchmarkBisectMesh900(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CutSize(g, Options{Rand: rand.New(rand.NewSource(int64(i)))})
	}
}

// BenchmarkCutSize contrasts a throwaway solver per call against a warm
// reused workspace on the same 900-node mesh; the delta is the arena the
// workspace keeps out of the allocator.
func BenchmarkCutSize(b *testing.B) {
	g := canonical.Mesh(30, 30)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CutSize(g, Options{Rand: rand.New(rand.NewSource(1))})
		}
	})
	b.Run("workspace", func(b *testing.B) {
		ws := NewWorkspace()
		CutSizeWith(ws, g, Options{Rand: rand.New(rand.NewSource(1))}) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			CutSizeWith(ws, g, Options{Rand: rand.New(rand.NewSource(1))})
		}
	})
}
