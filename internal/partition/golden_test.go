package partition

import (
	"math/rand"
	"testing"

	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/graph"
)

// TestCutSizeGolden pins exact cut values on fixed seeded graphs. The
// multilevel pipeline is deterministic for a fixed Options.Rand, and the
// workspace rewrite is required to preserve the coarsening / matching /
// refinement order bit-for-bit, so these values must never drift: a change
// here means resilience series change and every warm suite cache goes stale.
func TestCutSizeGolden(t *testing.T) {
	mesh := canonical.Mesh(20, 20)
	tree := canonical.Tree(3, 6)
	random := canonical.Random(rand.New(rand.NewSource(7)), 300, 0.03)
	p := plrg.MustGenerate(rand.New(rand.NewSource(3)), plrg.Params{N: 600, Beta: 2.246})

	cases := []struct {
		name string
		got  int
		want int
	}{
		{"mesh20", CutSize(mesh, Options{Rand: rand.New(rand.NewSource(11))}), 20},
		{"tree3x6", CutSize(tree, Options{Rand: rand.New(rand.NewSource(12))}), 5},
		{"random300", CutSize(random, Options{Rand: rand.New(rand.NewSource(13))}), 355},
		{"plrg600", CutSize(p, Options{Rand: rand.New(rand.NewSource(14))}), 54},
		{"plrg600-defaults", CutSize(p, Options{}), 36},
		{"mesh20-seeds12", CutSize(mesh, Options{Seeds: 12, Rand: rand.New(rand.NewSource(15))}), 20},
		{"plrg600-bal.52-ref6", CutSize(p, Options{Balance: 0.52, Refinements: 6, Rand: rand.New(rand.NewSource(16))}), 63},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: cut = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestWorkspaceMatchesFresh interleaves one reused workspace across graphs
// of different sizes and shapes and checks every answer against a fresh
// one-shot computation: recycled level arenas, heaps and side buffers must
// never leak state between calls.
func TestWorkspaceMatchesFresh(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"mesh", canonical.Mesh(17, 17)},
		{"linear3", canonical.Linear(3)}, // below the coarsest size
		{"tree", canonical.Tree(2, 8)},
		{"random", canonical.Random(rand.New(rand.NewSource(9)), 220, 0.04)},
		{"single", canonical.Linear(1)},
		{"mesh-again", canonical.Mesh(17, 17)},
	}
	ws := NewWorkspace()
	// big → small → big, so shrinking inputs exercise stale high-index
	// levels and oversized recycled buffers.
	for round := 0; round < 3; round++ {
		for _, gc := range graphs {
			seed := int64(100*round + 1)
			reused := CutSizeWith(ws, gc.g, Options{Rand: rand.New(rand.NewSource(seed))})
			fresh := CutSize(gc.g, Options{Rand: rand.New(rand.NewSource(seed))})
			if reused != fresh {
				t.Fatalf("round %d %s: workspace cut %d != fresh cut %d",
					round, gc.name, reused, fresh)
			}
			cutB, side := BisectWith(ws, gc.g, Options{Rand: rand.New(rand.NewSource(seed))})
			if cutB != fresh {
				t.Fatalf("round %d %s: BisectWith cut %d != fresh cut %d",
					round, gc.name, cutB, fresh)
			}
			if len(side) != gc.g.NumNodes() {
				t.Fatalf("round %d %s: side length %d != %d nodes",
					round, gc.name, len(side), gc.g.NumNodes())
			}
			if cutB != trueCut(gc.g, side) {
				t.Fatalf("round %d %s: reported cut %d != actual %d",
					round, gc.name, cutB, trueCut(gc.g, side))
			}
		}
	}
}
