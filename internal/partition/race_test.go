package partition_test

import (
	"math/rand"
	"testing"

	"topocmp/internal/ball"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/metrics"
	"topocmp/internal/partition"
)

// TestResilienceRaceShort drives the pooled partition workspaces from a
// four-worker ball engine — the tier-2 race target for this package. Under
// the race detector this catches any sharing between per-worker kernel
// bundles; the parallel series must also stay bit-identical to sequential.
func TestResilienceRaceShort(t *testing.T) {
	g := canonical.Random(rand.New(rand.NewSource(21)), 260, 0.03)
	cfg := func() ball.Config {
		return ball.Config{MaxSources: 8, MaxBallSize: 200, Rand: rand.New(rand.NewSource(5))}
	}
	seq := metrics.ResilienceWith(ball.NewEngine(g, 1), cfg(), partition.Options{}, 7)
	par := metrics.ResilienceWith(ball.NewEngine(g, 4), cfg(), partition.Options{}, 7)
	if len(seq.Points) == 0 {
		t.Fatal("empty resilience series")
	}
	if len(par.Points) != len(seq.Points) {
		t.Fatalf("parallel series has %d points, sequential %d", len(par.Points), len(seq.Points))
	}
	for i := range seq.Points {
		if par.Points[i] != seq.Points[i] {
			t.Fatalf("point %d: parallel %v != sequential %v", i, par.Points[i], seq.Points[i])
		}
	}
}
