// Package rng provides the deterministic random-variate helpers the
// topology generators share: discrete power-law (zeta) samplers, Pareto and
// Weibull variates for heavy-tailed sizes, and weighted selection. All
// functions take an explicit *rand.Rand so that every generated topology is
// reproducible from a seed.
package rng

import (
	"math"
	"math/rand"
	"sort"
)

// PowerLawDegrees draws n degrees from the discrete distribution
// P(k) ∝ k^(-beta) for k in [1, kmax], the distribution the PLRG generator
// assigns to nodes. It precomputes the CDF once, so sampling is O(log kmax)
// per draw.
func PowerLawDegrees(r *rand.Rand, n int, beta float64, kmax int) []int {
	if kmax < 1 {
		kmax = 1
	}
	cdf := powerLawCDF(beta, kmax)
	out := make([]int, n)
	for i := range out {
		out[i] = sampleCDF(r, cdf) + 1
	}
	return out
}

// powerLawCDF returns the cumulative distribution over k = 1..kmax with
// weights k^(-beta).
func powerLawCDF(beta float64, kmax int) []float64 {
	cdf := make([]float64, kmax)
	sum := 0.0
	for k := 1; k <= kmax; k++ {
		sum += math.Pow(float64(k), -beta)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

func sampleCDF(r *rand.Rand, cdf []float64) int {
	u := r.Float64()
	return sort.SearchFloat64s(cdf, u)
}

// Pareto draws a continuous Pareto variate with minimum xm and shape alpha:
// P(X > x) = (xm/x)^alpha for x >= xm.
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedParetoInt draws an integer-valued Pareto variate clamped to
// [min, max]. Used for heavy-tailed AS sizes and router counts.
func BoundedParetoInt(r *rand.Rand, min, max int, alpha float64) int {
	if min >= max {
		return min
	}
	v := int(Pareto(r, float64(min), alpha))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Weibull draws a Weibull variate with scale lambda and shape k. Broido and
// Claffy report Internet degree distributions are well modeled by Weibull
// tails; we use it for optional degree assignment variants.
func Weibull(r *rand.Rand, lambda, k float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return lambda * math.Pow(-math.Log(u), 1/k)
}

// WeightedChoice returns an index drawn with probability proportional to
// weights[i]. It returns -1 if all weights are zero or the slice is empty.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// WeightedChoiceInt is WeightedChoice over integer weights.
func WeightedChoiceInt(r *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	u := r.Intn(total)
	acc := 0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes xs in place.
func Shuffle[T any](r *rand.Rand, xs []T) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleInts returns k distinct integers drawn uniformly from [0, n). If
// k >= n it returns all of [0, n) in random order. It uses a partial
// Fisher–Yates so the cost is O(k) extra space beyond the map.
func SampleInts(r *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		Shuffle(r, out)
		return out
	}
	chosen := make(map[int]int, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		vj, ok := chosen[j]
		if !ok {
			vj = j
		}
		vi, ok := chosen[i]
		if !ok {
			vi = i
		}
		chosen[j] = vi
		out[i] = vj
	}
	return out
}
