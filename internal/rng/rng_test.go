package rng

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPowerLawDegreesRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds := PowerLawDegrees(r, 5000, 2.2, 1000)
	if len(ds) != 5000 {
		t.Fatalf("len = %d", len(ds))
	}
	for _, d := range ds {
		if d < 1 || d > 1000 {
			t.Fatalf("degree %d out of range", d)
		}
	}
}

func TestPowerLawDegreesTail(t *testing.T) {
	// With beta = 2.2 the fraction of degree-1 nodes should dominate and the
	// empirical CCDF should be heavy-tailed: some degree >= 30 should appear
	// in a large sample.
	r := rand.New(rand.NewSource(2))
	ds := PowerLawDegrees(r, 20000, 2.2, 2000)
	ones, big := 0, 0
	for _, d := range ds {
		if d == 1 {
			ones++
		}
		if d >= 30 {
			big++
		}
	}
	if frac := float64(ones) / float64(len(ds)); frac < 0.5 {
		t.Fatalf("degree-1 fraction = %.3f, want > 0.5", frac)
	}
	if big == 0 {
		t.Fatal("no node with degree >= 30; tail too light")
	}
}

func TestPowerLawExponentEmpirical(t *testing.T) {
	// The ratio P(1)/P(2) should be close to 2^beta.
	r := rand.New(rand.NewSource(3))
	beta := 2.5
	ds := PowerLawDegrees(r, 200000, beta, 500)
	var c1, c2 int
	for _, d := range ds {
		switch d {
		case 1:
			c1++
		case 2:
			c2++
		}
	}
	got := float64(c1) / float64(c2)
	want := math.Pow(2, beta)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("P(1)/P(2) = %.3f, want ~%.3f", got, want)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if v := Pareto(r, 3, 1.5); v < 3 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestBoundedParetoIntClamps(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		v := BoundedParetoInt(r, 2, 50, 1.1)
		if v < 2 || v > 50 {
			t.Fatalf("value %d outside [2,50]", v)
		}
	}
	if v := BoundedParetoInt(r, 7, 7, 1.0); v != 7 {
		t.Fatalf("degenerate range: got %d, want 7", v)
	}
}

func TestWeibullPositive(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		if v := Weibull(r, 2, 0.5); v <= 0 {
			t.Fatalf("Weibull nonpositive: %v", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	if WeightedChoice(r, nil) != -1 {
		t.Fatal("empty weights should return -1")
	}
	if WeightedChoice(r, []float64{0, 0}) != -1 {
		t.Fatal("zero weights should return -1")
	}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(r, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weighted counts not ordered: %v", counts)
	}
	if got := float64(counts[2]) / 30000; math.Abs(got-0.7) > 0.03 {
		t.Fatalf("heavy weight frequency %.3f, want ~0.7", got)
	}
}

func TestWeightedChoiceInt(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	if WeightedChoiceInt(r, []int{0, 0, 0}) != -1 {
		t.Fatal("zero weights should return -1")
	}
	for i := 0; i < 100; i++ {
		if got := WeightedChoiceInt(r, []int{0, 5, 0}); got != 1 {
			t.Fatalf("got index %d, want 1", got)
		}
	}
}

// Property: SampleInts returns k distinct values in range.
func TestSampleIntsProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		k := int(kRaw) % (n + 20)
		r := rand.New(rand.NewSource(seed))
		s := SampleInts(r, n, k)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsUniform(t *testing.T) {
	// Every element should be roughly equally likely to appear.
	r := rand.New(rand.NewSource(9))
	counts := make([]int, 10)
	for trial := 0; trial < 20000; trial++ {
		for _, v := range SampleInts(r, 10, 3) {
			counts[v]++
		}
	}
	sort.Ints(counts)
	if float64(counts[0])/float64(counts[9]) < 0.9 {
		t.Fatalf("sampling skew too high: %v", counts)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	xs := []int{1, 2, 3, 4, 5, 6}
	ys := append([]int(nil), xs...)
	Shuffle(r, ys)
	sort.Ints(ys)
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("shuffle lost elements: %v", ys)
		}
	}
}
