package main

import (
	"math/rand"
	"testing"
)

func TestGenerateAllTypes(t *testing.T) {
	gp := genParams{
		n: 300, beta: 2.2, alpha: 0.1, wbeta: 0.4, p: 0.02,
		k: 3, depth: 4, rows: 10, cols: 12, m: 2,
	}
	types := []string{
		"plrg", "waxman", "transitstub", "tiers", "tree", "mesh",
		"random", "complete", "linear", "ba", "brite", "bt", "inet",
		"internet-as",
	}
	for _, typ := range types {
		g, err := generate(rand.New(rand.NewSource(1)), typ, gp)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s: empty graph", typ)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	gp := genParams{n: 300, k: 2, depth: 3, rows: 5, cols: 7, p: 0.05, beta: 2.2, alpha: 0.1, wbeta: 0.4, m: 2}
	cases := map[string]int{
		"tree":     15, // 2^4 - 1
		"mesh":     35,
		"complete": 300,
		"linear":   300,
	}
	for typ, want := range cases {
		g, err := generate(rand.New(rand.NewSource(2)), typ, gp)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != want {
			t.Fatalf("%s: nodes = %d, want %d", typ, g.NumNodes(), want)
		}
	}
}

func TestGenerateUnknownType(t *testing.T) {
	if _, err := generate(rand.New(rand.NewSource(1)), "nope", genParams{}); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestGenerateInvalidParams(t *testing.T) {
	if _, err := generate(rand.New(rand.NewSource(1)), "plrg", genParams{n: 1, beta: 2.2}); err == nil {
		t.Fatal("expected validation error")
	}
}
