// Command topogen generates network topologies to edge-list files.
//
// Usage:
//
//	topogen -type plrg -n 10000 -beta 2.246 -seed 1 -o plrg.edges
//	topogen -type waxman -n 5000 -alpha 0.005 -wbeta 0.30 -o wax.edges
//	topogen -type transitstub -o ts.edges          # paper parameters
//	topogen -type tiers -o tiers.edges             # paper parameters
//	topogen -type tree -k 3 -depth 6 -o tree.edges
//	topogen -type mesh -rows 30 -cols 30 -o mesh.edges
//	topogen -type random -n 5018 -p 0.0008 -o rand.edges
//	topogen -type ba|brite|bt|inet -n 9000 -o g.edges
//	topogen -type internet-as -n 10941 -o as.edges # simulated Internet
//
// With -o "-" (the default) the edge list goes to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"topocmp/internal/gen/ba"
	"topocmp/internal/gen/brite"
	"topocmp/internal/gen/bt"
	"topocmp/internal/gen/canonical"
	"topocmp/internal/gen/inet"
	"topocmp/internal/gen/plrg"
	"topocmp/internal/gen/tiers"
	"topocmp/internal/gen/transitstub"
	"topocmp/internal/gen/waxman"
	"topocmp/internal/graph"
	"topocmp/internal/internetsim"
)

func main() {
	var (
		typ    = flag.String("type", "plrg", "generator: plrg, waxman, transitstub, tiers, tree, mesh, random, complete, linear, ba, brite, bt, inet, internet-as")
		n      = flag.Int("n", 10000, "node count (where applicable)")
		seed   = flag.Int64("seed", 1, "RNG seed")
		out    = flag.String("o", "-", "output path, or - for stdout")
		beta   = flag.Float64("beta", 2.246, "power-law exponent (plrg, inet)")
		alpha  = flag.Float64("alpha", 0.005, "Waxman alpha")
		wbeta  = flag.Float64("wbeta", 0.30, "Waxman beta")
		p      = flag.Float64("p", 0.0008, "edge probability (random)")
		k      = flag.Int("k", 3, "tree arity")
		depth  = flag.Int("depth", 6, "tree depth")
		rows   = flag.Int("rows", 30, "mesh rows")
		cols   = flag.Int("cols", 30, "mesh cols")
		m      = flag.Int("m", 2, "links per node (ba, brite, bt)")
		format = flag.String("format", "edgelist", "output format: edgelist or dot")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	g, err := generate(r, *typ, genParams{
		n: *n, beta: *beta, alpha: *alpha, wbeta: *wbeta, p: *p,
		k: *k, depth: *depth, rows: *rows, cols: *cols, m: *m,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if err := write(g, *out, *format, *typ); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "topogen: %s: %d nodes, %d edges, avg degree %.2f\n",
		*typ, g.NumNodes(), g.NumEdges(), g.AvgDegree())
}

type genParams struct {
	n                     int
	beta, alpha, wbeta, p float64
	k, depth, rows, cols  int
	m                     int
}

func generate(r *rand.Rand, typ string, gp genParams) (*graph.Graph, error) {
	switch typ {
	case "plrg":
		return plrg.Generate(r, plrg.Params{N: gp.n, Beta: gp.beta})
	case "waxman":
		return waxman.Generate(r, waxman.Params{N: gp.n, Alpha: gp.alpha, Beta: gp.wbeta})
	case "transitstub":
		return transitstub.Generate(r, transitstub.Paper())
	case "tiers":
		return tiers.Generate(r, tiers.Paper())
	case "tree":
		return canonical.Tree(gp.k, gp.depth), nil
	case "mesh":
		return canonical.Mesh(gp.rows, gp.cols), nil
	case "random":
		return canonical.Random(r, gp.n, gp.p), nil
	case "complete":
		return canonical.Complete(gp.n), nil
	case "linear":
		return canonical.Linear(gp.n), nil
	case "ba":
		return ba.Generate(r, ba.Params{N: gp.n, M: gp.m})
	case "brite":
		return brite.Generate(r, brite.Params{N: gp.n, M: gp.m, Placement: brite.PlacementHeavyTailed})
	case "bt":
		return bt.Generate(r, bt.Params{N: gp.n, M: gp.m, P: 0.47, BetaGLP: 0.64})
	case "inet":
		return inet.Generate(r, inet.Params{N: gp.n, Beta: gp.beta})
	case "internet-as":
		as, err := internetsim.GenerateAS(r, internetsim.ASParams{NumAS: gp.n})
		if err != nil {
			return nil, err
		}
		return as.Graph, nil
	default:
		return nil, fmt.Errorf("unknown generator %q", typ)
	}
}

func write(g *graph.Graph, path, format, name string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "edgelist":
		return g.WriteEdgeList(w)
	case "dot":
		return g.WriteDOT(w, name, nil)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
