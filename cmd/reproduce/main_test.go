package main

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/obs"
)

// tinyConfig is the smallest configuration that still exercises every
// pipeline stage; the end-to-end tests share it to bound their runtime.
func tinyConfig() experiments.Config {
	return experiments.Config{
		Set: core.PaperSetOptions{Seed: 1, Scale: 0.06},
		Suite: core.SuiteOptions{Sources: 3, MaxBallSize: 200, EigenRank: 6,
			LinkSources: 32, Seed: 1},
	}
}

// readTree loads every rendered artifact under dir, keyed by relative path.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no output files under %s", dir)
	}
	return files
}

func sameTree(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	for path, data := range a {
		other, ok := b[path]
		if !ok {
			t.Errorf("%s: %s missing from second run", label, path)
			continue
		}
		if !bytes.Equal(data, other) {
			t.Errorf("%s: %s differs", label, path)
		}
	}
	for path := range b {
		if _, ok := a[path]; !ok {
			t.Errorf("%s: %s only in second run", label, path)
		}
	}
}

// TestReproduceDeterminism is the end-to-end acceptance check: the full
// artifact set must be byte-identical between -j 1 and -j N, and a warm
// cache rerun must reproduce it byte-identically with zero network builds
// and zero suite runs.
func TestReproduceDeterminism(t *testing.T) {
	cfg := tinyConfig()
	base := t.TempDir()
	cacheDir := filepath.Join(base, "cache")

	seqCfg := cfg
	seqCfg.Suite.Parallelism = 1
	seqOut := filepath.Join(base, "seq")
	if _, _, err := run(seqCfg, 1, "", seqOut, obsOptions{}); err != nil {
		t.Fatal(err)
	}

	parCfg := cfg
	parCfg.Suite.Parallelism = 3
	coldOut := filepath.Join(base, "cold")
	cold, _, err := run(parCfg, 3, cacheDir, coldOut, obsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.NetworkBuilds == 0 || st.SuiteRuns == 0 {
		t.Fatalf("cold run did no work: %d builds / %d suite runs",
			st.NetworkBuilds, st.SuiteRuns)
	}

	warmOut := filepath.Join(base, "warm")
	warm, _, err := run(parCfg, 3, cacheDir, warmOut, obsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.NetworkBuilds != 0 || st.SuiteRuns != 0 {
		t.Fatalf("warm rerun recomputed: %d builds / %d suite runs",
			st.NetworkBuilds, st.SuiteRuns)
	}

	seq := readTree(t, seqOut)
	coldTree := readTree(t, coldOut)
	warmTree := readTree(t, warmOut)
	sameTree(t, "-j 3 vs -j 1", seq, coldTree)
	sameTree(t, "warm cache vs cold", coldTree, warmTree)
}

// TestObsDisabledByteIdentical checks the observability layer's core
// contract: turning on -trace/-metrics never changes the artifacts. A plain
// run and an instrumented run must render byte-identical output directories
// (the manifest aside, which only exists when instrumented), and the
// manifest's counters must reconcile with the pipeline's actual behavior —
// in particular a warm-cache rerun records zero builds, zero suite runs and
// an all-hit cache.
func TestObsDisabledByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.Suite.Parallelism = 2
	base := t.TempDir()
	cacheDir := filepath.Join(base, "cache")

	plainOut := filepath.Join(base, "plain")
	if _, _, err := run(cfg, 2, "", plainOut, obsOptions{}); err != nil {
		t.Fatal(err)
	}

	coldOut := filepath.Join(base, "cold")
	_, tr, err := run(cfg, 2, cacheDir, coldOut, obsOptions{Trace: true, Metrics: true, Sample: true})
	if err != nil {
		t.Fatal(err)
	}

	plain := readTree(t, plainOut)
	cold := readTree(t, coldOut)
	if _, ok := cold["run.json"]; !ok {
		t.Error("instrumented run did not write run.json")
	}
	tsData, ok := cold["run_timeseries.json"]
	if !ok {
		t.Error("sampling run did not write run_timeseries.json")
	}
	var ts obs.TimeSeries
	if err := json.Unmarshal(tsData, &ts); err != nil {
		t.Fatalf("run_timeseries.json is not valid JSON: %v", err)
	}
	if len(ts.Samples) == 0 {
		t.Error("run_timeseries.json holds no samples")
	}
	last := ts.Samples[len(ts.Samples)-1]
	if last.HeapBytes == 0 || last.Counters["pipeline.suite_runs"] == 0 {
		t.Errorf("final sample incomplete: %+v", last)
	}
	delete(cold, "run.json")
	delete(cold, "run_timeseries.json")
	sameTree(t, "obs on vs off", plain, cold)

	// The Chrome export of the instrumented run must be valid trace-event
	// JSON covering the pipeline's spans.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"reproduce", "Pipeline: networks and suites", "net:AS", "build:AS", "suite:AS"} {
		if !names[want] {
			t.Errorf("chrome trace missing span %q", want)
		}
	}

	// Cold manifest: real work happened and was recorded.
	coldMan, err := obs.ReadManifest(filepath.Join(coldOut, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	if coldMan.Metrics.Counters["pipeline.network_builds"] == 0 ||
		coldMan.Metrics.Counters["pipeline.suite_runs"] == 0 {
		t.Errorf("cold manifest recorded no work: %+v", coldMan.Metrics.Counters)
	}
	if len(coldMan.Stages) == 0 {
		t.Error("cold manifest has no stage timings")
	}

	// Warm rerun: the manifest must record a zero-compute, all-hit run.
	warmOut := filepath.Join(base, "warm")
	if _, _, err := run(cfg, 2, cacheDir, warmOut, obsOptions{Metrics: true, Sample: true}); err != nil {
		t.Fatal(err)
	}
	warm := readTree(t, warmOut)
	delete(warm, "run.json")
	delete(warm, "run_timeseries.json")
	sameTree(t, "warm obs vs plain", plain, warm)
	man, err := obs.ReadManifest(filepath.Join(warmOut, "run.json"))
	if err != nil {
		t.Fatal(err)
	}
	c := man.Metrics.Counters
	for _, name := range []string{"pipeline.network_builds", "pipeline.suite_runs",
		"cache.misses", "cache.puts", "cache.decode_errors"} {
		if c[name] != 0 {
			t.Errorf("warm manifest: %s = %d, want 0", name, c[name])
		}
	}
	if c["cache.hits"] == 0 {
		t.Error("warm manifest: cache.hits = 0, want > 0")
	}
	if man.CacheSchemaVersion == 0 || man.GoVersion == "" || man.Tool != "reproduce" {
		t.Errorf("manifest identity fields incomplete: %+v", man)
	}
}

// TestParseScale pins the -scale argument contract: presets resolve to
// their multipliers, positive finite numbers pass through, and everything
// else — zero, negatives, NaN/Inf, absurd magnitudes, unknown words — is
// rejected with a clear error instead of launching a doomed build.
func TestParseScale(t *testing.T) {
	for arg, want := range core.ScalePresets {
		got, err := parseScale(arg)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v; want %v, nil", arg, got, err, want)
		}
	}
	for _, tc := range []struct {
		arg  string
		want float64
	}{{"0.25", 0.25}, {"1", 1}, {"3.81", 3.81}, {"100", 100}, {"1000", 1000}} {
		got, err := parseScale(tc.arg)
		if err != nil || got != tc.want {
			t.Errorf("parseScale(%q) = %v, %v; want %v, nil", tc.arg, got, err, tc.want)
		}
	}
	for _, arg := range []string{
		"0", "-1", "-0.5", "NaN", "+Inf", "-Inf", "1001", "1e9",
		"", "huge", "1m?", "0x10", "25%",
	} {
		if got, err := parseScale(arg); err == nil {
			t.Errorf("parseScale(%q) = %v, want error", arg, got)
		}
	}
}

func TestStageSlug(t *testing.T) {
	for in, want := range map[string]string{
		"Pipeline: networks and suites":             "pipeline_networks_and_suites",
		"Figure 2: expansion/resilience/distortion": "figure_2_expansion_resilience_distortion",
		"Figure 2 (degree-based variants, j-l)":     "figure_2_degree_based_variants_j_l",
		"Summary vs. paper":                         "summary_vs_paper",
	} {
		if got := stageSlug(in); got != want {
			t.Errorf("stageSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSpanTreeDeterministicShape checks the trace determinism contract: the
// same configuration yields the same span names and hierarchy whatever the
// worker budget — only the timings may differ.
func TestSpanTreeDeterministicShape(t *testing.T) {
	base := t.TempDir()

	seqCfg := tinyConfig()
	seqCfg.Suite.Parallelism = 1
	_, seqTr, err := run(seqCfg, 1, "", filepath.Join(base, "seq"), obsOptions{})
	if err != nil {
		t.Fatal(err)
	}

	parCfg := tinyConfig()
	parCfg.Suite.Parallelism = 3
	_, parTr, err := run(parCfg, 3, "", filepath.Join(base, "par"), obsOptions{})
	if err != nil {
		t.Fatal(err)
	}

	seqShape := seqTr.Root().Shape()
	parShape := parTr.Root().Shape()
	if !reflect.DeepEqual(seqShape, parShape) {
		t.Errorf("span tree shape differs between -j 1 and -j 3:\n%+v\nvs\n%+v", seqShape, parShape)
	}
	if len(seqShape.Children) == 0 {
		t.Fatal("root span has no stage children")
	}
}
