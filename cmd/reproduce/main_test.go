package main

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"topocmp/internal/core"
	"topocmp/internal/experiments"
)

// readTree loads every rendered artifact under dir, keyed by relative path.
func readTree(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatalf("no output files under %s", dir)
	}
	return files
}

func sameTree(t *testing.T, label string, a, b map[string][]byte) {
	t.Helper()
	for path, data := range a {
		other, ok := b[path]
		if !ok {
			t.Errorf("%s: %s missing from second run", label, path)
			continue
		}
		if !bytes.Equal(data, other) {
			t.Errorf("%s: %s differs", label, path)
		}
	}
	for path := range b {
		if _, ok := a[path]; !ok {
			t.Errorf("%s: %s only in second run", label, path)
		}
	}
}

// TestReproduceDeterminism is the end-to-end acceptance check: the full
// artifact set must be byte-identical between -j 1 and -j N, and a warm
// cache rerun must reproduce it byte-identically with zero network builds
// and zero suite runs.
func TestReproduceDeterminism(t *testing.T) {
	cfg := experiments.Config{
		Set: core.PaperSetOptions{Seed: 1, Scale: 0.06},
		Suite: core.SuiteOptions{Sources: 3, MaxBallSize: 200, EigenRank: 6,
			LinkSources: 32, Seed: 1},
	}
	base := t.TempDir()
	cacheDir := filepath.Join(base, "cache")

	seqCfg := cfg
	seqCfg.Suite.Parallelism = 1
	seqOut := filepath.Join(base, "seq")
	if _, err := run(seqCfg, 1, "", seqOut); err != nil {
		t.Fatal(err)
	}

	parCfg := cfg
	parCfg.Suite.Parallelism = 3
	coldOut := filepath.Join(base, "cold")
	cold, err := run(parCfg, 3, cacheDir, coldOut)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.NetworkBuilds == 0 || st.SuiteRuns == 0 {
		t.Fatalf("cold run did no work: %d builds / %d suite runs",
			st.NetworkBuilds, st.SuiteRuns)
	}

	warmOut := filepath.Join(base, "warm")
	warm, err := run(parCfg, 3, cacheDir, warmOut)
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.NetworkBuilds != 0 || st.SuiteRuns != 0 {
		t.Fatalf("warm rerun recomputed: %d builds / %d suite runs",
			st.NetworkBuilds, st.SuiteRuns)
	}

	seq := readTree(t, seqOut)
	coldTree := readTree(t, coldOut)
	warmTree := readTree(t, warmOut)
	sameTree(t, "-j 3 vs -j 1", seq, coldTree)
	sameTree(t, "warm cache vs cold", coldTree, warmTree)
}
