// Command reproduce regenerates every table and figure of the paper into an
// output directory: gnuplot-ready .dat files per figure panel, text tables,
// ASCII previews, and a summary comparing each qualitative result against
// the paper's published tables.
//
// Usage:
//
//	reproduce [-out results] [-seed 1] [-scale 0.3] [-full] [-quick]
//	          [-j N] [-cache dir]
//
// -j sets the pipeline's worker budget (0 = all cores, 1 = sequential);
// output files are byte-identical at every width. -cache names an on-disk
// result cache: a re-run with an unchanged configuration restores every
// suite result from it and performs zero network builds and zero suite
// runs, while a changed seed or scale invalidates only the affected
// entries.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"topocmp/internal/cache"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/plot"
	"topocmp/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Int64("seed", 1, "experiment seed")
	scale := flag.Float64("scale", 0, "network scale override (0 = per-mode default)")
	full := flag.Bool("full", false, "paper-scale run (tens of minutes)")
	quick := flag.Bool("quick", false, "CI-scale run (a few minutes)")
	workers := flag.Int("j", 0, "pipeline worker budget (0 = all cores, 1 = sequential)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = no caching)")
	flag.Parse()

	cfg := experiments.Config{
		Set:   core.PaperSetOptions{Seed: *seed, Scale: 0.25},
		Suite: core.SuiteOptions{Sources: 16, MaxBallSize: 2000, EigenRank: 40, LinkSources: 448, Seed: *seed},
	}
	if *quick {
		cfg = experiments.QuickConfig(*seed)
	}
	if *full {
		cfg = experiments.FullConfig(*seed)
	}
	if *scale > 0 {
		cfg.Set.Scale = *scale
	}
	cfg.Suite.Parallelism = *workers
	if _, err := run(cfg, *workers, *cacheDir, *out); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

// run renders every artifact into out and returns the runner for its
// pipeline statistics. Stage banners, timings and cache counters go to
// stdout only — the files under out are byte-identical across worker
// widths and cache states.
func run(cfg experiments.Config, workers int, cacheDir, out string) (*experiments.Runner, error) {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return nil, err
	}
	r := experiments.NewRunner(cfg)
	r.Workers = workers
	if cacheDir != "" {
		store, err := cache.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		r.Cache = store
	}

	start := time.Now()
	stage := func(title string, f func() error) error {
		fmt.Printf("== %s ==\n", title)
		t0 := time.Now()
		if err := f(); err != nil {
			return err
		}
		fmt.Printf("   %-28s %8.1fs\n", title, time.Since(t0).Seconds())
		return nil
	}

	if err := stage("Pipeline: networks and suites", func() error {
		r.Prefetch()
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Table 1: network inventory", func() error {
		return writeTable1(r, out)
	}); err != nil {
		return r, err
	}

	groups := []struct {
		key   string
		names []string
	}{
		{"canonical", experiments.CanonicalNames},
		{"measured", experiments.MeasuredNames},
		{"generated", experiments.GeneratedNames},
	}
	if err := stage("Figure 2: expansion/resilience/distortion", func() error {
		for _, g := range groups {
			p := r.Figure2(g.key, g.names)
			if err := writePanel(out, "fig2_"+g.key, p.Expansion, p.Resilience, p.Distortion); err != nil {
				return err
			}
			preview(p.Expansion, "expansion "+g.key, plot.Options{YScale: plot.Log})
		}
		return nil
	}); err != nil {
		return r, err
	}
	if err := stage("Figure 2 (degree-based variants, j-l)", func() error {
		vp := r.Figure12()
		if err := writePanel(out, "fig2_variants", vp.Expansion, vp.Resilience, vp.Distortion); err != nil {
			return err
		}
		_, err := plot.WriteDat(out, "fig12_ccdf", vp.CCDF)
		return err
	}); err != nil {
		return r, err
	}

	if err := stage("Tables 2 and 3: signatures", func() error {
		if err := writeRows(filepath.Join(out, "table2_canonical.txt"), r.Table2()); err != nil {
			return err
		}
		rows := r.Table3()
		if err := writeRows(filepath.Join(out, "table3_classification.txt"), rows); err != nil {
			return err
		}
		return core.WriteTable(os.Stdout, rows)
	}); err != nil {
		return r, err
	}

	if err := stage("Figures 3/4: link value distributions", func() error {
		lv := r.Figure3([]string{"Tree", "Mesh", "Random", "RL", "AS", "TS", "Tiers", "Waxman", "PLRG"})
		_, err := plot.WriteDat(out, "fig3_linkvalues", lv)
		return err
	}); err != nil {
		return r, err
	}

	if err := stage("Table 4: hierarchy groups", func() error {
		return writeTable4(r, out)
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 5: link value / degree correlation", func() error {
		return writeFigure5(r, out)
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 6: degree distributions", func() error {
		for _, g := range groups {
			if _, err := plot.WriteDat(out, "fig6_"+g.key, r.Figure6(g.names)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 7: eigenvalues and eccentricity", func() error {
		for _, g := range groups {
			names := g.names
			if g.key == "measured" {
				names = append([]string{"PLRG"}, names...)
			}
			if _, err := plot.WriteDat(out, "fig7_eigen_"+g.key, r.Figure7Eigen(names)); err != nil {
				return err
			}
			if _, err := plot.WriteDat(out, "fig7_ecc_"+g.key, r.Figure7Ecc(names)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 8: vertex cover and biconnectivity", func() error {
		for _, g := range groups {
			if _, err := plot.WriteDat(out, "fig8_cover_"+g.key, r.Figure8Cover(g.names)); err != nil {
				return err
			}
			if _, err := plot.WriteDat(out, "fig8_bicon_"+g.key, r.Figure8Bicon(g.names)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 9: attack and error tolerance", func() error {
		for _, g := range groups {
			att, errTol := r.Figure9(g.names)
			if _, err := plot.WriteDat(out, "fig9_attack_"+g.key, att); err != nil {
				return err
			}
			if _, err := plot.WriteDat(out, "fig9_error_"+g.key, errTol); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 10: clustering", func() error {
		for _, g := range groups {
			if _, err := plot.WriteDat(out, "fig10_"+g.key, r.Figure10(g.names)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 11: parameter space", func() error {
		return writeFigure11(r, out)
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 13: PLRG reconnection", func() error {
		rp := r.Figure13()
		return writePanel(out, "fig13", rp.Expansion, rp.Resilience, rp.Distortion)
	}); err != nil {
		return r, err
	}

	if err := stage("Figure 14: variant link values", func() error {
		_, err := plot.WriteDat(out, "fig14_linkvalues", r.Figure14())
		return err
	}); err != nil {
		return r, err
	}

	if err := stage("Appendix D.1: connectivity methods", func() error {
		cp := r.ConnectivityVariants()
		return writePanel(out, "appD_connectivity", cp.Expansion, cp.Resilience, cp.Distortion)
	}); err != nil {
		return r, err
	}

	if err := stage("Null model: degree-preserving rewiring", func() error {
		rwp := r.RewiringPanel()
		return writePanel(out, "nullmodel_rewire", rwp.Expansion, rwp.Resilience, rwp.Distortion)
	}); err != nil {
		return r, err
	}

	if err := stage("Extras (beyond the paper)", func() error {
		return writeExtras(r.Extras(), out)
	}); err != nil {
		return r, err
	}

	if err := stage("Summary vs. paper", func() error {
		return writeSummary(r, out)
	}); err != nil {
		return r, err
	}

	st := r.Stats()
	fmt.Printf("pipeline: %d network builds, %d suite runs", st.NetworkBuilds, st.SuiteRuns)
	if r.Cache != nil {
		fmt.Printf(", cache %d hits / %d misses / %d writes", st.CacheHits, st.CacheMisses, st.CachePuts)
	}
	fmt.Printf(", total %.1fs\n", time.Since(start).Seconds())
	return r, nil
}

// writeExtras renders the beyond-the-paper artifacts: footnote 22's two
// metrics, hop plots, small-world coefficients, Weibull tail fits of the
// degree CCDFs, the AS size/degree coupling and the BGP vantage-coverage
// curve.
func writeExtras(e experiments.ExtrasData, out string) error {
	if _, err := plot.WriteDat(out, "extra_ballpathlen", e.PathLength); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_surfaceflow", e.MaxFlow); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_hopplot", e.Hop); err != nil {
		return err
	}

	f, err := os.Create(filepath.Join(out, "extras.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Network\tSmallWorldSigma\tClustering\tAPL\tWeibullK\tWeibullR2")
	for _, row := range e.Rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\t%.2f\t%.2f\n",
			row.Name, row.Sigma, row.Clustering, row.PathLength, row.WeibullK, row.WeibullR2)
	}
	fmt.Fprintf(tw, "\nAS size/degree correlation (Tangmunarunkit et al. 2001): %.3f\n",
		e.SizeDegreeCorrelation)
	cov := e.Coverage
	fmt.Fprintf(tw, "BGP coverage: 1 vantage %.2f -> %d vantages %.2f (Chang et al. 2002)\n",
		cov.Points[0].Y, cov.Len(), cov.Points[cov.Len()-1].Y)
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writePanel(out, prefix string, exp, res, dist []stats.Series) error {
	if _, err := plot.WriteDat(out, prefix+"_expansion", exp); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, prefix+"_resilience", res); err != nil {
		return err
	}
	_, err := plot.WriteDat(out, prefix+"_distortion", dist)
	return err
}

func preview(series []stats.Series, title string, opts plot.Options) {
	opts.Title = title
	plot.ASCII(os.Stdout, series, opts)
}

func writeTable1(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table1_inventory.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Type\tTopology\tNodes\tEdges\tAvgDegree\tMaxDegree")
	for _, d := range r.Table1() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\n",
			d.Category, d.Name, d.Nodes, d.Edges, d.AvgDegree, d.MaxDegree)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeRows(path string, rows []core.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteTable(f, rows); err != nil {
		return err
	}
	return f.Close()
}

func writeTable4(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table4_hierarchy.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tHierarchy\tExpected")
	for _, row := range r.Table4() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.Name, row.Class, core.ExpectedHierarchy[row.Name])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure5(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig5_correlation.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tCorrelation")
	for _, row := range r.Figure5() {
		fmt.Fprintf(tw, "%s\t%.3f\n", row.Name, row.Correlation)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure11(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig11_parameters.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Generator\tParams\tNodes\tAvgDegree\tSignature")
	for _, row := range r.Figure11() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%s\n",
			row.Generator, row.Params, row.Nodes, row.AvgDegree, row.Signature)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeSummary(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "summary.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Check\tExpected\tGot\tMatch")
	matches, total := 0, 0
	for _, c := range r.Summary() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\n", c.Name, c.Expected, c.Got, c.Match)
		total++
		if c.Match {
			matches++
		}
	}
	fmt.Fprintf(tw, "TOTAL\t\t\t%d/%d\n", matches, total)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("summary: %d/%d checks match the paper\n", matches, total)
	return f.Close()
}
