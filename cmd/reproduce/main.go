// Command reproduce regenerates every table and figure of the paper into an
// output directory: gnuplot-ready .dat files per figure panel, text tables,
// ASCII previews, and a summary comparing each qualitative result against
// the paper's published tables.
//
// Usage:
//
//	reproduce [-out results] [-seed 1] [-scale 0.3] [-full] [-quick]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"text/tabwriter"

	"topocmp/internal/ball"
	"topocmp/internal/bgp"
	"topocmp/internal/core"
	"topocmp/internal/experiments"
	"topocmp/internal/internetsim"
	"topocmp/internal/metrics"
	"topocmp/internal/plot"
	"topocmp/internal/stats"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Int64("seed", 1, "experiment seed")
	scale := flag.Float64("scale", 0, "network scale override (0 = per-mode default)")
	full := flag.Bool("full", false, "paper-scale run (tens of minutes)")
	quick := flag.Bool("quick", false, "CI-scale run (a few minutes)")
	flag.Parse()

	cfg := experiments.Config{
		Set:   core.PaperSetOptions{Seed: *seed, Scale: 0.25},
		Suite: core.SuiteOptions{Sources: 16, MaxBallSize: 2000, EigenRank: 40, LinkSources: 448, Seed: *seed},
	}
	if *quick {
		cfg = experiments.QuickConfig(*seed)
	}
	if *full {
		cfg = experiments.FullConfig(*seed)
	}
	if *scale > 0 {
		cfg.Set.Scale = *scale
	}
	if err := run(cfg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	r := experiments.NewRunner(cfg)

	fmt.Println("== Table 1: network inventory ==")
	if err := writeTable1(r, out); err != nil {
		return err
	}

	groups := []struct {
		key   string
		names []string
	}{
		{"canonical", experiments.CanonicalNames},
		{"measured", experiments.MeasuredNames},
		{"generated", experiments.GeneratedNames},
	}
	for _, g := range groups {
		fmt.Printf("== Figure 2 (%s) ==\n", g.key)
		p := r.Figure2(g.key, g.names)
		if err := writePanel(out, "fig2_"+g.key, p.Expansion, p.Resilience, p.Distortion); err != nil {
			return err
		}
		preview(p.Expansion, "expansion "+g.key, plot.Options{YScale: plot.Log})
	}
	fmt.Println("== Figure 2 (degree-based variants, j-l) ==")
	vp := r.Figure12()
	if err := writePanel(out, "fig2_variants", vp.Expansion, vp.Resilience, vp.Distortion); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "fig12_ccdf", vp.CCDF); err != nil {
		return err
	}

	fmt.Println("== Tables 2 and 3: signatures ==")
	if err := writeRows(filepath.Join(out, "table2_canonical.txt"), r.Table2()); err != nil {
		return err
	}
	rows := r.Table3()
	if err := writeRows(filepath.Join(out, "table3_classification.txt"), rows); err != nil {
		return err
	}
	core.WriteTable(os.Stdout, rows)

	fmt.Println("== Figures 3/4: link value distributions ==")
	lv := r.Figure3([]string{"Tree", "Mesh", "Random", "RL", "AS", "TS", "Tiers", "Waxman", "PLRG"})
	if _, err := plot.WriteDat(out, "fig3_linkvalues", lv); err != nil {
		return err
	}

	fmt.Println("== Table 4: hierarchy groups ==")
	if err := writeTable4(r, out); err != nil {
		return err
	}

	fmt.Println("== Figure 5: link value / degree correlation ==")
	if err := writeFigure5(r, out); err != nil {
		return err
	}

	fmt.Println("== Figure 6: degree distributions ==")
	for _, g := range groups {
		if _, err := plot.WriteDat(out, "fig6_"+g.key, r.Figure6(g.names)); err != nil {
			return err
		}
	}

	fmt.Println("== Figure 7: eigenvalues and eccentricity ==")
	for _, g := range groups {
		names := g.names
		if g.key == "measured" {
			names = append([]string{"PLRG"}, names...)
		}
		if _, err := plot.WriteDat(out, "fig7_eigen_"+g.key, r.Figure7Eigen(names)); err != nil {
			return err
		}
		if _, err := plot.WriteDat(out, "fig7_ecc_"+g.key, r.Figure7Ecc(names)); err != nil {
			return err
		}
	}

	fmt.Println("== Figure 8: vertex cover and biconnectivity ==")
	for _, g := range groups {
		if _, err := plot.WriteDat(out, "fig8_cover_"+g.key, r.Figure8Cover(g.names)); err != nil {
			return err
		}
		if _, err := plot.WriteDat(out, "fig8_bicon_"+g.key, r.Figure8Bicon(g.names)); err != nil {
			return err
		}
	}

	fmt.Println("== Figure 9: attack and error tolerance ==")
	for _, g := range groups {
		att, errTol := r.Figure9(g.names)
		if _, err := plot.WriteDat(out, "fig9_attack_"+g.key, att); err != nil {
			return err
		}
		if _, err := plot.WriteDat(out, "fig9_error_"+g.key, errTol); err != nil {
			return err
		}
	}

	fmt.Println("== Figure 10: clustering ==")
	for _, g := range groups {
		if _, err := plot.WriteDat(out, "fig10_"+g.key, r.Figure10(g.names)); err != nil {
			return err
		}
	}

	fmt.Println("== Figure 11: parameter space ==")
	if err := writeFigure11(r, out); err != nil {
		return err
	}

	fmt.Println("== Figure 13: PLRG reconnection ==")
	rp := r.Figure13()
	if err := writePanel(out, "fig13", rp.Expansion, rp.Resilience, rp.Distortion); err != nil {
		return err
	}

	fmt.Println("== Figure 14: variant link values ==")
	if _, err := plot.WriteDat(out, "fig14_linkvalues", r.Figure14()); err != nil {
		return err
	}

	fmt.Println("== Appendix D.1: connectivity methods ==")
	cp := r.ConnectivityVariants()
	if err := writePanel(out, "appD_connectivity", cp.Expansion, cp.Resilience, cp.Distortion); err != nil {
		return err
	}

	fmt.Println("== Null model: degree-preserving rewiring ==")
	rwp := r.RewiringPanel()
	if err := writePanel(out, "nullmodel_rewire", rwp.Expansion, rwp.Resilience, rwp.Distortion); err != nil {
		return err
	}

	fmt.Println("== Extras (beyond the paper) ==")
	if err := writeExtras(r, out); err != nil {
		return err
	}

	fmt.Println("== Summary vs. paper ==")
	return writeSummary(r, out)
}

// writeExtras emits the beyond-the-paper artifacts: footnote 22's two
// metrics, hop plots, small-world coefficients, Weibull tail fits of the
// degree CCDFs, the AS size/degree coupling and the BGP vantage-coverage
// curve.
func writeExtras(r *experiments.Runner, out string) error {
	names := []string{"AS", "PLRG", "Mesh", "Tree"}
	var pathLen, maxFlow, hop []stats.Series
	seed := r.Cfg.Suite.Seed
	for _, name := range names {
		g := r.Network(name).Graph
		cfg := ball.Config{MaxSources: r.Cfg.Suite.Sources,
			MaxBallSize: r.Cfg.Suite.MaxBallSize,
			Rand:        rand.New(rand.NewSource(seed))}
		s := metrics.BallPathLengthCurve(g, cfg)
		s.Name = name
		pathLen = append(pathLen, s)
		cfg.Rand = rand.New(rand.NewSource(seed))
		f := metrics.SurfaceMaxFlowCurve(g, cfg, 6)
		f.Name = name
		maxFlow = append(maxFlow, f)
		h := metrics.HopPlot(g, 4*r.Cfg.Suite.Sources, rand.New(rand.NewSource(seed)))
		h.Name = name
		hop = append(hop, h)
	}
	if _, err := plot.WriteDat(out, "extra_ballpathlen", pathLen); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_surfaceflow", maxFlow); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, "extra_hopplot", hop); err != nil {
		return err
	}

	f, err := os.Create(filepath.Join(out, "extras.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Network\tSmallWorldSigma\tClustering\tAPL\tWeibullK\tWeibullR2")
	for _, name := range names {
		g := r.Network(name).Graph
		sw := metrics.SmallWorldness(g, 2*r.Cfg.Suite.Sources)
		wb := stats.FitWeibullTail(stats.CCDF(g.Degrees()))
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\t%.2f\t%.2f\n",
			name, sw.Sigma, sw.Clustering, sw.PathLength, wb.K, wb.R2)
	}
	ms := r.Measured()
	sd := internetsim.SizeDegreeData(ms.TruthAS, ms.TruthRL)
	fmt.Fprintf(tw, "\nAS size/degree correlation (Tangmunarunkit et al. 2001): %.3f\n",
		sd.Correlation())
	vantages := bgp.PickVantages(ms.TruthAS.Graph, 12, rand.New(rand.NewSource(seed)))
	cov := bgp.CoverageCurve(ms.TruthAS.Annotated, vantages)
	fmt.Fprintf(tw, "BGP coverage: 1 vantage %.2f -> %d vantages %.2f (Chang et al. 2002)\n",
		cov.Points[0].Y, cov.Len(), cov.Points[cov.Len()-1].Y)
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writePanel(out, prefix string, exp, res, dist []stats.Series) error {
	if _, err := plot.WriteDat(out, prefix+"_expansion", exp); err != nil {
		return err
	}
	if _, err := plot.WriteDat(out, prefix+"_resilience", res); err != nil {
		return err
	}
	_, err := plot.WriteDat(out, prefix+"_distortion", dist)
	return err
}

func preview(series []stats.Series, title string, opts plot.Options) {
	opts.Title = title
	plot.ASCII(os.Stdout, series, opts)
}

func writeTable1(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table1_inventory.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Type\tTopology\tNodes\tEdges\tAvgDegree\tMaxDegree")
	for _, d := range r.Table1() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\n",
			d.Category, d.Name, d.Nodes, d.Edges, d.AvgDegree, d.MaxDegree)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeRows(path string, rows []core.Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteTable(f, rows); err != nil {
		return err
	}
	return f.Close()
}

func writeTable4(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "table4_hierarchy.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tHierarchy\tExpected")
	for _, row := range r.Table4() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.Name, row.Class, core.ExpectedHierarchy[row.Name])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure5(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig5_correlation.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Topology\tCorrelation")
	for _, row := range r.Figure5() {
		fmt.Fprintf(tw, "%s\t%.3f\n", row.Name, row.Correlation)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeFigure11(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "fig11_parameters.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Generator\tParams\tNodes\tAvgDegree\tSignature")
	for _, row := range r.Figure11() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\t%s\n",
			row.Generator, row.Params, row.Nodes, row.AvgDegree, row.Signature)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func writeSummary(r *experiments.Runner, out string) error {
	f, err := os.Create(filepath.Join(out, "summary.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	tw := tabwriter.NewWriter(f, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Check\tExpected\tGot\tMatch")
	matches, total := 0, 0
	for _, c := range r.Summary() {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\n", c.Name, c.Expected, c.Got, c.Match)
		total++
		if c.Match {
			matches++
		}
	}
	fmt.Fprintf(tw, "TOTAL\t\t\t%d/%d\n", matches, total)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("summary: %d/%d checks match the paper\n", matches, total)
	return f.Close()
}
